#!/usr/bin/env bash
# Static-analysis and correctness driver.
#
# Runs, in order:
#   1. flightnn_lint (tools/flightnn_lint): self-test, then the real tree
#   2. clang-format check over src/, tests/, bench/, examples/, tools/
#   3. clang-tidy, parallel via run-clang-tidy when available (falls back to
#      the FLIGHTNN_ENABLE_CLANG_TIDY compile gate otherwise)
#   4. sanitizer presets (debug-asan, debug-ubsan) build + ctest
#
# Each stage is gated on tool availability: a missing clang-format or
# clang-tidy produces a SKIP, not a failure, so the script is usable both in
# CI (where the tools are installed) and in minimal local containers (where
# only gcc may exist). Sanitizer stages only need a working compiler and are
# never skipped unless --no-sanitizers is given.
#
# Usage: tools/run_static_analysis.sh
#          [--fix] [--no-lint] [--no-format] [--no-tidy] [--no-sanitizers]
#
#   --fix  apply fixes instead of just checking: clang-format -i over the
#          tree and run-clang-tidy -fix (the tidy fallback path cannot fix).
#
# Exit code: 0 if every stage that ran passed, 1 otherwise.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

RUN_LINT=1
RUN_FORMAT=1
RUN_TIDY=1
RUN_SANITIZERS=1
FIX=0
for arg in "$@"; do
  case "${arg}" in
    --fix) FIX=1 ;;
    --no-lint) RUN_LINT=0 ;;
    --no-format) RUN_FORMAT=0 ;;
    --no-tidy) RUN_TIDY=0 ;;
    --no-sanitizers) RUN_SANITIZERS=0 ;;
    *)
      echo "unknown option: ${arg}" >&2
      echo "usage: $0 [--fix] [--no-lint] [--no-format] [--no-tidy]" \
           "[--no-sanitizers]" >&2
      exit 2
      ;;
  esac
done

JOBS="${FLIGHTNN_JOBS:-$(nproc 2>/dev/null || echo 2)}"
FAILURES=0
SUMMARY=()

note() { printf '\n==> %s\n' "$*"; }
record() { SUMMARY+=("$1"); }

find_tool() {
  # Accept both plain and Debian-style versioned names (clang-tidy-18 ...).
  local base="$1"
  if command -v "${base}" > /dev/null 2>&1; then
    command -v "${base}"
    return 0
  fi
  local candidate
  for version in 20 19 18 17 16 15 14; do
    candidate="${base}-${version}"
    if command -v "${candidate}" > /dev/null 2>&1; then
      command -v "${candidate}"
      return 0
    fi
  done
  return 1
}

# A compilation database for the database-driven stages (flightnn_lint,
# run-clang-tidy). Any configured build tree exports one; configure the
# default tree if none exists yet.
compile_db() {
  local candidate
  for candidate in build build/debug build/tidy build/release; do
    if [[ -f "${candidate}/compile_commands.json" ]]; then
      echo "${candidate}/compile_commands.json"
      return 0
    fi
  done
  cmake -B build -S . > /dev/null
  echo "build/compile_commands.json"
}

# --- 1. flightnn_lint ------------------------------------------------------
if [[ ${RUN_LINT} -eq 1 ]]; then
  note "flightnn_lint"
  if PYTHON="$(find_tool python3)"; then
    LINT=tools/flightnn_lint/flightnn_lint.py
    LINT_OK=1
    "${PYTHON}" "${LINT}" --selftest || LINT_OK=0
    "${PYTHON}" "${LINT}" --compile-commands "$(compile_db)" || LINT_OK=0
    if [[ ${LINT_OK} -eq 1 ]]; then
      record "lint: PASS"
    else
      record "lint: FAIL"
      FAILURES=$((FAILURES + 1))
    fi
  else
    record "lint: SKIP (python3 not installed)"
  fi
else
  record "lint: SKIP (--no-lint)"
fi

# --- 2. clang-format -------------------------------------------------------
if [[ ${RUN_FORMAT} -eq 1 ]]; then
  note "clang-format check"
  if CLANG_FORMAT="$(find_tool clang-format)"; then
    mapfile -t FILES < <(git ls-files -- 'src/**/*.cpp' 'src/**/*.hpp' \
      'tests/*.cpp' 'bench/*.cpp' 'examples/*.cpp' 'tools/*.cpp')
    if [[ ${FIX} -eq 1 ]]; then
      "${CLANG_FORMAT}" -i "${FILES[@]}"
      record "format: FIXED (${#FILES[@]} files)"
    elif "${CLANG_FORMAT}" --dry-run -Werror "${FILES[@]}"; then
      record "format: PASS (${#FILES[@]} files)"
    else
      record "format: FAIL (run: $0 --fix)"
      FAILURES=$((FAILURES + 1))
    fi
  else
    record "format: SKIP (clang-format not installed)"
  fi
else
  record "format: SKIP (--no-format)"
fi

# --- 3. clang-tidy ---------------------------------------------------------
if [[ ${RUN_TIDY} -eq 1 ]]; then
  note "clang-tidy"
  if CLANG_TIDY="$(find_tool clang-tidy)"; then
    if RUN_CLANG_TIDY="$(find_tool run-clang-tidy)"; then
      # Parallel mode: one clang-tidy process per core over the compilation
      # database, restricted to src/ translation units.
      DB="$(compile_db)"
      TIDY_ARGS=(-clang-tidy-binary "${CLANG_TIDY}" -p "$(dirname "${DB}")" \
                 -j "${JOBS}" -quiet "${REPO_ROOT}/src/.*")
      if [[ ${FIX} -eq 1 ]]; then
        TIDY_ARGS=(-fix "${TIDY_ARGS[@]}")
      fi
      if "${RUN_CLANG_TIDY}" "${TIDY_ARGS[@]}"; then
        record "tidy: PASS (run-clang-tidy -j ${JOBS})"
      else
        record "tidy: FAIL"
        FAILURES=$((FAILURES + 1))
      fi
    else
      # Fallback: the compile-time gate (serial, cannot apply fixes).
      TIDY_BUILD="build/tidy"
      if cmake -B "${TIDY_BUILD}" -S . -DCMAKE_BUILD_TYPE=Debug \
          -DFLIGHTNN_ENABLE_CLANG_TIDY=ON \
        && cmake --build "${TIDY_BUILD}" -j "${JOBS}"; then
        record "tidy: PASS (compile gate)"
      else
        record "tidy: FAIL"
        FAILURES=$((FAILURES + 1))
      fi
    fi
  else
    record "tidy: SKIP (clang-tidy not installed)"
  fi
else
  record "tidy: SKIP (--no-tidy)"
fi

# --- 4. sanitizer presets --------------------------------------------------
if [[ ${RUN_SANITIZERS} -eq 1 ]]; then
  for preset in debug-asan debug-ubsan; do
    note "sanitizer preset: ${preset}"
    if cmake --preset "${preset}" \
      && cmake --build --preset "${preset}" -j "${JOBS}" \
      && ctest --preset "${preset}" -j "${JOBS}"; then
      record "${preset}: PASS"
    else
      record "${preset}: FAIL"
      FAILURES=$((FAILURES + 1))
    fi
  done
else
  record "sanitizers: SKIP (--no-sanitizers)"
fi

note "summary"
for line in "${SUMMARY[@]}"; do
  echo "  ${line}"
done

if [[ ${FAILURES} -gt 0 ]]; then
  echo "FAILED: ${FAILURES} stage(s) failed" >&2
  exit 1
fi
echo "OK: all stages that ran passed"
