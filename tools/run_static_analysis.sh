#!/usr/bin/env bash
# Static-analysis and correctness driver.
#
# Runs, in order:
#   1. clang-format check over src/, tests/, bench/, examples/, tools/
#   2. clang-tidy gate (configure with FLIGHTNN_ENABLE_CLANG_TIDY=ON + build)
#   3. sanitizer presets (debug-asan, debug-ubsan) build + ctest
#
# Each stage is gated on tool availability: a missing clang-format or
# clang-tidy produces a SKIP, not a failure, so the script is usable both in
# CI (where the tools are installed) and in minimal local containers (where
# only gcc may exist). Sanitizer stages only need a working compiler and are
# never skipped unless --no-sanitizers is given.
#
# Usage: tools/run_static_analysis.sh [--no-format] [--no-tidy] [--no-sanitizers]
# Exit code: 0 if every stage that ran passed, 1 otherwise.

set -u -o pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

RUN_FORMAT=1
RUN_TIDY=1
RUN_SANITIZERS=1
for arg in "$@"; do
  case "${arg}" in
    --no-format) RUN_FORMAT=0 ;;
    --no-tidy) RUN_TIDY=0 ;;
    --no-sanitizers) RUN_SANITIZERS=0 ;;
    *)
      echo "unknown option: ${arg}" >&2
      echo "usage: $0 [--no-format] [--no-tidy] [--no-sanitizers]" >&2
      exit 2
      ;;
  esac
done

JOBS="${FLIGHTNN_JOBS:-$(nproc 2>/dev/null || echo 2)}"
FAILURES=0
SUMMARY=()

note() { printf '\n==> %s\n' "$*"; }
record() { SUMMARY+=("$1"); }

find_tool() {
  # Accept both plain and Debian-style versioned names (clang-tidy-18 ...).
  local base="$1"
  if command -v "${base}" > /dev/null 2>&1; then
    command -v "${base}"
    return 0
  fi
  local candidate
  for version in 20 19 18 17 16 15 14; do
    candidate="${base}-${version}"
    if command -v "${candidate}" > /dev/null 2>&1; then
      command -v "${candidate}"
      return 0
    fi
  done
  return 1
}

# --- 1. clang-format -------------------------------------------------------
if [[ ${RUN_FORMAT} -eq 1 ]]; then
  note "clang-format check"
  if CLANG_FORMAT="$(find_tool clang-format)"; then
    mapfile -t FILES < <(git ls-files -- 'src/**/*.cpp' 'src/**/*.hpp' \
      'tests/*.cpp' 'bench/*.cpp' 'examples/*.cpp' 'tools/*.cpp')
    if "${CLANG_FORMAT}" --dry-run -Werror "${FILES[@]}"; then
      record "format: PASS (${#FILES[@]} files)"
    else
      record "format: FAIL (run: ${CLANG_FORMAT} -i <files>)"
      FAILURES=$((FAILURES + 1))
    fi
  else
    record "format: SKIP (clang-format not installed)"
  fi
else
  record "format: SKIP (--no-format)"
fi

# --- 2. clang-tidy ---------------------------------------------------------
if [[ ${RUN_TIDY} -eq 1 ]]; then
  note "clang-tidy gate"
  if find_tool clang-tidy > /dev/null; then
    TIDY_BUILD="build/tidy"
    if cmake -B "${TIDY_BUILD}" -S . -DCMAKE_BUILD_TYPE=Debug \
        -DFLIGHTNN_ENABLE_CLANG_TIDY=ON \
      && cmake --build "${TIDY_BUILD}" -j "${JOBS}"; then
      record "tidy: PASS"
    else
      record "tidy: FAIL"
      FAILURES=$((FAILURES + 1))
    fi
  else
    record "tidy: SKIP (clang-tidy not installed)"
  fi
else
  record "tidy: SKIP (--no-tidy)"
fi

# --- 3. sanitizer presets --------------------------------------------------
if [[ ${RUN_SANITIZERS} -eq 1 ]]; then
  for preset in debug-asan debug-ubsan; do
    note "sanitizer preset: ${preset}"
    if cmake --preset "${preset}" \
      && cmake --build --preset "${preset}" -j "${JOBS}" \
      && ctest --preset "${preset}" -j "${JOBS}"; then
      record "${preset}: PASS"
    else
      record "${preset}: FAIL"
      FAILURES=$((FAILURES + 1))
    fi
  done
else
  record "sanitizers: SKIP (--no-sanitizers)"
fi

note "summary"
for line in "${SUMMARY[@]}"; do
  echo "  ${line}"
done

if [[ ${FAILURES} -gt 0 ]]; then
  echo "FAILED: ${FAILURES} stage(s) failed" >&2
  exit 1
fi
echo "OK: all stages that ran passed"
