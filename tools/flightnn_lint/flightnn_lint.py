#!/usr/bin/env python3
"""flightnn_lint: FLightNN-specific invariant lint over compile_commands.json.

Dependency-free (Python stdlib only). Four rules, each anchored on the
marker macros from src/support/annotations.hpp:

  hot-no-alloc        No heap allocation reachable from a FLIGHTNN_HOT
                      function. Direct allocation evidence in the body is a
                      violation; calls into un-annotated functions defined in
                      this tree are followed transitively. FLIGHTNN_COLD_ALLOC
                      callees are trusted grow-once boundaries and stop the
                      traversal; FLIGHTNN_HOT callees are checked on their own.
  int-kernel-no-float No float/double types or floating-point literals inside
                      a FLIGHTNN_INT_KERNEL body: the bit-exactness argument
                      for the shift kernels depends on integer-only math.
  raw-mutex           std::mutex / std::condition_variable (and variants) are
                      forbidden in src/ outside support/annotated_mutex.hpp;
                      everything else must use the annotated wrappers so clang
                      -Wthread-safety sees every lock.
  api-entry-check     A FLIGHTNN_API_ENTRY function must validate its inputs:
                      a FLIGHTNN_CHECK must appear within the first
                      API_ENTRY_CHECK_WINDOW lines of the body.

Suppressions: `// FLIGHTNN_LINT_SUPPRESS(rule-name): justification` on the
violating line or the line directly above it. The justification is
mandatory; an empty one is itself reported (rule `suppress-justification`).

Self-test: `--selftest` runs the linter over tools/flightnn_lint/fixtures/,
where every seeded violation is declared with `// EXPECT-VIOLATION: rule`
on the line where it must fire. Extra, missing, or mis-ruled findings fail
the self-test -- this is the proof that each rule actually bites.

Exit status: 0 clean, 1 violations found, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

ANNOTATIONS = ("FLIGHTNN_HOT", "FLIGHTNN_COLD_ALLOC", "FLIGHTNN_INT_KERNEL",
               "FLIGHTNN_API_ENTRY")

# A FLIGHTNN_API_ENTRY body must reach a FLIGHTNN_CHECK within this many
# lines (covers a leading validation loop over a batch).
API_ENTRY_CHECK_WINDOW = 10

# Direct heap-allocation evidence. Matched against comment/string-stripped
# code, so message text never fires.
ALLOC_PATTERNS: list[tuple[str, re.Pattern]] = [
    ("operator new", re.compile(r"\bnew\b(?!\s*\()")),
    ("operator new", re.compile(r"\bnew\s*\(")),
    ("make_unique/make_shared", re.compile(r"\bmake_(?:unique|shared)\b")),
    ("malloc family", re.compile(r"\b(?:malloc|calloc|realloc|strdup)\s*\(")),
    ("container growth", re.compile(
        r"\.\s*(?:push_back|emplace_back|emplace|resize|reserve|assign|"
        r"insert|append)\s*\(")),
    ("string build", re.compile(r"\bstd::(?:to_string|ostringstream|"
                                r"stringstream|string\s*\()")),
]

RAW_MUTEX_PATTERN = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable|"
    r"condition_variable_any)\b")

FLOAT_TYPE_PATTERN = re.compile(r"\b(?:float|double|long\s+double)\b")
FLOAT_LITERAL_PATTERN = re.compile(
    r"(?<![\w.])(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?[fFlL]?"
    r"|(?<![\w.])\d+[eE][+-]?\d+[fFlL]?"
    r"|(?<![\w.])\d+[fF]\b")

SUPPRESS_PATTERN = re.compile(
    r"//\s*FLIGHTNN_LINT_SUPPRESS\(([a-z0-9-]+)\)\s*(?::\s*(.*))?")

EXPECT_PATTERN = re.compile(r"//\s*EXPECT-VIOLATION:\s*([a-z0-9-]+)")
EXPECT_NEXT_PATTERN = re.compile(
    r"//\s*EXPECT-VIOLATION-NEXT-LINE:\s*([a-z0-9-]+)")

# Call names never worth resolving: control flow, casts, and the std-ish
# method names that would collide with unrelated definitions.
CALL_IGNORE = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "static_assert", "defined", "assert",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "size", "data", "begin", "end", "empty", "clear", "front", "back",
    "c_str", "get", "at", "count", "find", "min", "max", "abs", "move",
    "forward", "swap", "exchange", "value", "shape", "rank", "numel",
}

KEYWORDS = {"if", "for", "while", "switch", "catch", "return", "do", "else",
            "sizeof", "alignof", "decltype", "static_assert", "noexcept",
            "alignas", "throw", "new", "delete", "operator", "requires"}


@dataclass
class Violation:
    rule: str
    path: Path
    line: int  # 1-based
    message: str

    def render(self, root: Path) -> str:
        try:
            rel = self.path.relative_to(root)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Function:
    name: str
    path: Path
    line: int            # 1-based line of the body-opening brace
    body_start: int      # offset just after '{' in the stripped text
    body_end: int        # offset of the matching '}'
    annotations: frozenset[str] = frozenset()


@dataclass
class SourceFile:
    path: Path
    raw: str
    stripped: str        # comments/strings blanked, newlines preserved
    line_offsets: list[int] = field(default_factory=list)

    def line_of(self, offset: int) -> int:
        lo, hi = 0, len(self.line_offsets) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.line_offsets[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def raw_line(self, line: int) -> str:
        lines = self.raw.splitlines()
        return lines[line - 1] if 1 <= line <= len(lines) else ""


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string and char literals, preserving offsets."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
        elif c in "\"'":
            quote = c
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                        i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


def load_source(path: Path) -> SourceFile:
    raw = path.read_text(encoding="utf-8", errors="replace")
    stripped = strip_comments_and_strings(raw)
    src = SourceFile(path=path, raw=raw, stripped=stripped)
    offset = 0
    for line in raw.splitlines(keepends=True):
        src.line_offsets.append(offset)
        offset += len(line)
    if not src.line_offsets:
        src.line_offsets.append(0)
    return src


def match_brace(text: str, open_index: int) -> int:
    """Offset of the '}' matching the '{' at open_index, or -1."""
    depth = 0
    for i in range(open_index, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


DEF_NAME_PATTERN = re.compile(r"([A-Za-z_~]\w*)\s*$")


def find_functions(src: SourceFile) -> list[Function]:
    """Lexical function-definition scan.

    Walks every top-level-ish '(' group: a definition is a name followed by
    a balanced parameter list, optional specifier tokens, then '{'. Control
    flow keywords and lambda introducers are rejected by name.
    """
    text = src.stripped
    functions: list[Function] = []
    i = 0
    n = len(text)
    while i < n:
        if text[i] != "(":
            i += 1
            continue
        name_match = DEF_NAME_PATTERN.search(text, 0, i)
        if not name_match or name_match.group(1) in KEYWORDS:
            i += 1
            continue
        name = name_match.group(1)
        # Balance the parameter list.
        depth, j = 0, i
        while j < n:
            if text[j] == "(":
                depth += 1
            elif text[j] == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        if j >= n:
            break
        # Skip specifiers between ')' and the body '{' / declaration ';'.
        k = j + 1
        body_at = -1
        while k < n:
            c = text[k]
            if c == "{":
                body_at = k
                break
            if c in ";=":  # declaration, pure-virtual, or default member init
                break
            if c == ":":  # constructor initializer list: scan to its '{'
                brace = text.find("{", k)
                semi = text.find(";", k)
                if brace != -1 and (semi == -1 or brace < semi):
                    body_at = brace
                break
            if c == "(":  # e.g. attribute args: skip balanced group
                d2 = 0
                while k < n:
                    if text[k] == "(":
                        d2 += 1
                    elif text[k] == ")":
                        d2 -= 1
                        if d2 == 0:
                            break
                    k += 1
            elif not (c.isalnum() or c in "_&*>- \t\n"):
                break
            k += 1
        if body_at == -1:
            i = j + 1
            continue
        close = match_brace(text, body_at)
        if close == -1:
            i = j + 1
            continue
        # Annotations apply if a marker macro appears shortly before the
        # name (same declaration: scan back past the return type, stopping
        # at the previous statement boundary).
        decl_start = max(text.rfind(";", 0, name_match.start(1)),
                         text.rfind("}", 0, name_match.start(1)),
                         text.rfind("{", 0, name_match.start(1)))
        decl = text[decl_start + 1:name_match.start(1)]
        annotations = frozenset(a for a in ANNOTATIONS
                                if re.search(rf"\b{a}\b", decl))
        functions.append(Function(
            name=name, path=src.path, line=src.line_of(body_at),
            body_start=body_at + 1, body_end=close,
            annotations=annotations))
        i = body_at + 1
    return functions


def declared_annotations(src: SourceFile) -> dict[str, set[str]]:
    """name -> annotations, from declarations as well as definitions.

    Needed because e.g. tensor::pool::acquire carries FLIGHTNN_COLD_ALLOC on
    its header declaration while the definition lives in a .cpp file.
    """
    result: dict[str, set[str]] = {}
    for annotation in ANNOTATIONS:
        for match in re.finditer(
                rf"\b{annotation}\b[^;{{()]*?([A-Za-z_]\w*)\s*\(",
                src.stripped):
            result.setdefault(match.group(1), set()).add(annotation)
    return result


class Linter:
    def __init__(self, root: Path, sources: list[SourceFile]):
        self.root = root
        self.sources = sources
        self.functions: list[tuple[SourceFile, Function]] = []
        self.by_name: dict[str, list[tuple[SourceFile, Function]]] = {}
        self.annotation_index: dict[str, set[str]] = {}
        self.violations: list[Violation] = []
        self._alloc_memo: dict[tuple[str, int], tuple | None] = {}
        for src in sources:
            for fn in find_functions(src):
                self.functions.append((src, fn))
                self.by_name.setdefault(fn.name, []).append((src, fn))
            for name, annotations in declared_annotations(src).items():
                self.annotation_index.setdefault(name, set()).update(
                    annotations)
        for _, fn in self.functions:
            self.annotation_index.setdefault(fn.name, set()).update(
                fn.annotations)

    # -- suppression handling ------------------------------------------------

    def report(self, rule: str, src: SourceFile, line: int, message: str):
        for candidate in (line, line - 1):
            match = SUPPRESS_PATTERN.search(src.raw_line(candidate))
            if match and match.group(1) == rule:
                justification = (match.group(2) or "").strip()
                if not justification:
                    self.violations.append(Violation(
                        "suppress-justification", src.path, candidate,
                        f"FLIGHTNN_LINT_SUPPRESS({rule}) requires a "
                        f"non-empty justification after ':'"))
                return
        self.violations.append(Violation(rule, src.path, line, message))

    # -- rule: raw-mutex -----------------------------------------------------

    def lint_raw_mutex(self, src: SourceFile):
        if src.path.name == "annotated_mutex.hpp":
            return
        for match in RAW_MUTEX_PATTERN.finditer(src.stripped):
            self.report(
                "raw-mutex", src, src.line_of(match.start()),
                f"{match.group(0)} is forbidden in src/: use "
                f"support::Mutex / support::CondVar from "
                f"support/annotated_mutex.hpp so clang thread-safety "
                f"analysis sees the lock")

    # -- rule: int-kernel-no-float -------------------------------------------

    def lint_int_kernel(self, src: SourceFile, fn: Function):
        body = src.stripped[fn.body_start:fn.body_end]
        for pattern, what in ((FLOAT_TYPE_PATTERN, "floating-point type"),
                              (FLOAT_LITERAL_PATTERN,
                               "floating-point literal")):
            for match in pattern.finditer(body):
                self.report(
                    "int-kernel-no-float", src,
                    src.line_of(fn.body_start + match.start()),
                    f"{what} '{match.group(0).strip()}' inside "
                    f"FLIGHTNN_INT_KERNEL '{fn.name}': integer kernels must "
                    f"stay bit-exact (keep dequantization in the caller)")

    # -- rule: api-entry-check -----------------------------------------------

    def lint_api_entry(self, src: SourceFile, fn: Function):
        body = src.stripped[fn.body_start:fn.body_end]
        first_line = src.line_of(fn.body_start)
        window_lines = body.splitlines()[:API_ENTRY_CHECK_WINDOW]
        if any("FLIGHTNN_CHECK" in line for line in window_lines):
            return
        self.report(
            "api-entry-check", src, first_line,
            f"FLIGHTNN_API_ENTRY '{fn.name}' must validate inputs with "
            f"FLIGHTNN_CHECK within its first {API_ENTRY_CHECK_WINDOW} "
            f"lines")

    # -- rule: hot-no-alloc --------------------------------------------------

    @staticmethod
    def _mask_check_args(body: str) -> str:
        """Blank FLIGHTNN_CHECK/DCHECK argument lists (offset-preserving).

        The check macros evaluate their message arguments lazily -- only on
        the failure path, which is cold by definition -- so allocation
        evidence inside them (to_string, shape printing) is not hot-path
        allocation.
        """
        out = list(body)
        for match in re.finditer(r"\bFLIGHTNN_D?CHECK\w*\s*\(", body):
            depth, i = 0, match.end() - 1
            while i < len(body):
                if body[i] == "(":
                    depth += 1
                elif body[i] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                if body[i] != "\n":
                    out[i] = " "
                i += 1
        return "".join(out)

    def _direct_alloc(self, src: SourceFile, fn: Function):
        """Yield (offset, description) of direct allocation evidence."""
        body = self._mask_check_args(src.stripped[fn.body_start:fn.body_end])
        for what, pattern in ALLOC_PATTERNS:
            for match in pattern.finditer(body):
                yield fn.body_start + match.start(), what

    def _callee_allocates(self, name: str, depth: int,
                          stack: tuple[str, ...]):
        """First (file, line, what, chain) found in callee `name`, or None."""
        if depth > 4 or name in stack:
            return None
        annotations = self.annotation_index.get(name, set())
        if "FLIGHTNN_COLD_ALLOC" in annotations:  # trusted grow-once boundary
            return None
        if "FLIGHTNN_HOT" in annotations:  # linted as its own root
            return None
        memo_key = (name, 0)
        if memo_key in self._alloc_memo:
            return self._alloc_memo[memo_key]
        result = None
        for src, fn in self.by_name.get(name, []):
            for offset, what in self._direct_alloc(src, fn):
                result = (src, src.line_of(offset), what, stack + (name,))
                break
            if result:
                break
            result = self._transitive_alloc(src, fn, depth, stack + (name,))
            if result:
                break
        self._alloc_memo[memo_key] = result
        return result

    def _transitive_alloc(self, src: SourceFile, fn: Function, depth: int,
                          stack: tuple[str, ...]):
        body = self._mask_check_args(src.stripped[fn.body_start:fn.body_end])
        seen: set[str] = set()
        for match in re.finditer(r"([A-Za-z_]\w*)\s*\(", body):
            callee = match.group(1)
            if callee in CALL_IGNORE or callee in seen or callee == fn.name:
                continue
            seen.add(callee)
            if callee not in self.by_name:
                continue
            found = self._callee_allocates(callee, depth + 1, stack)
            if found:
                return found
        return None

    def lint_hot_no_alloc(self, src: SourceFile, fn: Function):
        for offset, what in self._direct_alloc(src, fn):
            self.report(
                "hot-no-alloc", src, src.line_of(offset),
                f"{what} in FLIGHTNN_HOT '{fn.name}': the steady-state "
                f"inference path must not touch the heap (use the scratch "
                f"arena / buffer pool, or justify with a suppression)")
        # Transitive: report at the call site inside the HOT body.
        body = self._mask_check_args(src.stripped[fn.body_start:fn.body_end])
        seen: set[str] = set()
        for match in re.finditer(r"([A-Za-z_]\w*)\s*\(", body):
            callee = match.group(1)
            if callee in CALL_IGNORE or callee in seen or callee == fn.name:
                continue
            seen.add(callee)
            if callee not in self.by_name:
                continue
            found = self._callee_allocates(callee, 1, (fn.name,))
            if found:
                callee_src, callee_line, what, chain = found
                self.report(
                    "hot-no-alloc", src,
                    src.line_of(fn.body_start + match.start()),
                    f"FLIGHTNN_HOT '{fn.name}' reaches {what} at "
                    f"{callee_src.path.name}:{callee_line} via "
                    f"{' -> '.join(chain)}: annotate the callee "
                    f"FLIGHTNN_COLD_ALLOC if it is a grow-once boundary, "
                    f"FLIGHTNN_HOT to lint it directly, or suppress with "
                    f"justification")

    # -- driver --------------------------------------------------------------

    def run(self) -> list[Violation]:
        for src in self.sources:
            if "/src/" in str(src.path).replace("\\", "/") + "/":
                self.lint_raw_mutex(src)
        for src, fn in self.functions:
            if "FLIGHTNN_INT_KERNEL" in fn.annotations:
                self.lint_int_kernel(src, fn)
            if "FLIGHTNN_API_ENTRY" in fn.annotations:
                self.lint_api_entry(src, fn)
            if "FLIGHTNN_HOT" in fn.annotations:
                self.lint_hot_no_alloc(src, fn)
        self.violations.sort(key=lambda v: (str(v.path), v.line, v.rule))
        return self.violations


def collect_files(compile_commands: Path | None, src_root: Path) -> list[Path]:
    files: set[Path] = set()
    if compile_commands is not None:
        try:
            entries = json.loads(compile_commands.read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"flightnn_lint: cannot read {compile_commands}: {error}",
                  file=sys.stderr)
            raise SystemExit(2)
        for entry in entries:
            path = Path(entry["directory"], entry["file"]).resolve()
            if src_root.resolve() in path.parents and path.exists():
                files.add(path)
    # Headers never appear in compile_commands; lint them all.
    for header in src_root.rglob("*.hpp"):
        files.add(header.resolve())
    # Without compile_commands (or with a stale one), fall back to every
    # translation unit in the tree so the lint never silently narrows.
    if compile_commands is None:
        for source in src_root.rglob("*.cpp"):
            files.add(source.resolve())
    return sorted(files)


def run_lint(paths: list[Path], root: Path) -> int:
    sources = [load_source(p) for p in paths]
    violations = Linter(root, sources).run()
    for violation in violations:
        print(violation.render(root))
    if violations:
        print(f"flightnn_lint: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"flightnn_lint: clean ({len(sources)} files)", file=sys.stderr)
    return 0


def run_selftest(fixtures: Path, root: Path) -> int:
    paths = sorted(fixtures.rglob("*.cpp")) + sorted(fixtures.rglob("*.hpp"))
    if not paths:
        print(f"flightnn_lint: no fixtures under {fixtures}", file=sys.stderr)
        return 2
    sources = [load_source(p) for p in paths]
    violations = Linter(root, sources).run()

    expected: set[tuple[Path, int, str]] = set()
    for src in sources:
        for i, line in enumerate(src.raw.splitlines(), start=1):
            match = EXPECT_NEXT_PATTERN.search(line)
            if match:
                expected.add((src.path, i + 1, match.group(1)))
                continue
            match = EXPECT_PATTERN.search(line)
            if match:
                expected.add((src.path, i, match.group(1)))

    actual = {(v.path, v.line, v.rule) for v in violations}
    missing = expected - actual
    unexpected = actual - expected
    for path, line, rule in sorted(missing, key=str):
        print(f"SELFTEST MISSING  {path.name}:{line}: expected [{rule}] "
              f"to fire", file=sys.stderr)
    for path, line, rule in sorted(unexpected, key=str):
        print(f"SELFTEST EXTRA    {path.name}:{line}: [{rule}] fired "
              f"unexpectedly", file=sys.stderr)
    if missing or unexpected:
        return 1
    print(f"flightnn_lint selftest: {len(expected)} seeded violation(s) "
          f"across {len(sources)} fixture(s), all fired exactly",
          file=sys.stderr)
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--compile-commands", type=Path, default=None,
                        help="compile_commands.json from the build tree")
    parser.add_argument("--src-root", type=Path, default=None,
                        help="source root to lint (default: <repo>/src)")
    parser.add_argument("--selftest", action="store_true",
                        help="lint the seeded-violation fixtures instead of "
                             "the real tree and verify every rule fires")
    args = parser.parse_args()

    here = Path(__file__).resolve().parent
    repo_root = here.parent.parent
    if args.selftest:
        return run_selftest(here / "fixtures", repo_root)
    src_root = args.src_root or repo_root / "src"
    if not src_root.is_dir():
        print(f"flightnn_lint: no such source root: {src_root}",
              file=sys.stderr)
        return 2
    files = collect_files(args.compile_commands, src_root)
    if not files:
        print("flightnn_lint: nothing to lint", file=sys.stderr)
        return 2
    return run_lint(files, repo_root)


if __name__ == "__main__":
    sys.exit(main())
