// Seeded violations for the int-kernel-no-float rule.

namespace fixture {

// Clean: pure integer arithmetic, the shape the rule exists to protect.
FLIGHTNN_INT_KERNEL long long integer_dot(const int* a, const int* b,
                                          long long n) {
  long long acc = 0;
  for (long long i = 0; i < n; ++i) {
    acc += static_cast<long long>(a[i]) * b[i];
  }
  return acc;
}

FLIGHTNN_INT_KERNEL long long leaky_kernel(const int* a, long long n) {
  double scale = 1.5;  // EXPECT-VIOLATION: int-kernel-no-float
  long long acc = 0;
  for (long long i = 0; i < n; ++i) {
    acc += a[i];
  }
  float bias = 0.0F;   // EXPECT-VIOLATION: int-kernel-no-float
  return acc + static_cast<long long>(scale + bias);
}

// Clean: floats in an un-annotated sibling are out of scope.
float dequantize_in_caller(long long acc, float scale) {
  return static_cast<float>(acc) * scale;
}

}  // namespace fixture
