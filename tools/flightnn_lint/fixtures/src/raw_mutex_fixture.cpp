// Seeded violations for the raw-mutex rule.

#include <condition_variable>
#include <mutex>

namespace fixture {

struct RawLocking {
  std::mutex mutex_;                // EXPECT-VIOLATION: raw-mutex
  std::condition_variable ready_;   // EXPECT-VIOLATION: raw-mutex
  std::shared_mutex table_lock_;    // EXPECT-VIOLATION: raw-mutex
};

// Clean: the token inside a string literal is not a use.
const char* kAdvice = "never hold a std::mutex across execute_batch";

// Clean: std::condition_variable in a comment is not a use either.

// Clean: std::once_flag is not a lock; call_once has no annotated wrapper.
struct OnceIsFine {
  std::once_flag shutdown_once_;
};

}  // namespace fixture
