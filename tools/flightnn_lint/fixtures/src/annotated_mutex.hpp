// Clean fixture: a file named annotated_mutex.hpp is the one place raw
// std::mutex / std::condition_variable are allowed -- it is the wrapper.

#include <condition_variable>
#include <mutex>

namespace fixture {

class Mutex {
 public:
  void lock() { mutex_.lock(); }
  void unlock() { mutex_.unlock(); }

 private:
  std::mutex mutex_;
  std::condition_variable unused_;
};

}  // namespace fixture
