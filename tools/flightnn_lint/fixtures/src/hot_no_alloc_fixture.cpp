// Seeded violations for the hot-no-alloc rule. Never compiled -- the
// self-test lints this file and verifies each EXPECT-VIOLATION fires on its
// exact line, and nothing else does.

namespace fixture {

// Un-annotated helper: allocating here is fine on its own, but reaching it
// from a FLIGHTNN_HOT function is the transitive violation below.
int helper_allocates(int n) {
  int* block = new int[n];
  int head = block[0];
  delete[] block;
  return head;
}

// Trusted grow-once boundary: the traversal must stop at the annotation
// instead of descending into the push_back.
FLIGHTNN_COLD_ALLOC void grow_once_boundary(int value) {
  fixture_buffer.push_back(value);
}

FLIGHTNN_HOT int direct_allocation(int n) {
  auto* block = new int[n];     // EXPECT-VIOLATION: hot-no-alloc
  fixture_buffer.push_back(n);  // EXPECT-VIOLATION: hot-no-alloc
  return block[0];
}

FLIGHTNN_HOT int transitive_allocation(int n) {
  return helper_allocates(n);  // EXPECT-VIOLATION: hot-no-alloc
}

FLIGHTNN_HOT int cold_boundary_is_trusted(int n) {
  grow_once_boundary(n);  // clean: callee is FLIGHTNN_COLD_ALLOC
  return n;
}

FLIGHTNN_HOT int check_messages_are_cold(int n) {
  // Clean: FLIGHTNN_CHECK evaluates its message lazily, so the to_string
  // only runs on the (cold) failure path.
  FLIGHTNN_CHECK(n > 0, "bad n: ", std::to_string(n));
  return n;
}

FLIGHTNN_HOT void suppressed_with_justification() {
  // FLIGHTNN_LINT_SUPPRESS(hot-no-alloc): grow-once scratch, reused across calls
  fixture_scratch.reserve(64);
}

FLIGHTNN_HOT void suppressed_without_justification() {
  // EXPECT-VIOLATION-NEXT-LINE: suppress-justification
  // FLIGHTNN_LINT_SUPPRESS(hot-no-alloc):
  fixture_scratch.reserve(64);
}

}  // namespace fixture
