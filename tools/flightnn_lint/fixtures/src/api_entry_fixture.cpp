// Seeded violations for the api-entry-check rule.

namespace fixture {

FLIGHTNN_API_ENTRY int entry_without_check(int n) {  // EXPECT-VIOLATION: api-entry-check
  return n + 1;
}

// Clean: opens with a FLIGHTNN_CHECK.
FLIGHTNN_API_ENTRY int entry_with_check(int n) {
  FLIGHTNN_CHECK(n >= 0, "n must be non-negative, got ", n);
  return n + 1;
}

// Clean: a leading validation loop still reaches FLIGHTNN_CHECK within the
// rule's line window.
FLIGHTNN_API_ENTRY int entry_with_check_loop(const int* values, int n) {
  for (int i = 0; i < n; ++i) {
    FLIGHTNN_CHECK(values[i] >= 0, "value ", i, " is negative");
  }
  return n;
}

}  // namespace fixture
