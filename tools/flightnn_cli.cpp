// flightnn: command-line front end to the library.
//
//   flightnn train   --network 1 --dataset cifar10 --quantizer flightnn
//                    [--epochs 5] [--width-scale 0.25] [--lambda1 2.4e-4]
//                    [--threshold-lr 0.02] [--checkpoint out.ckpt]
//   flightnn eval    --network 1 --dataset cifar10 --quantizer flightnn
//                    --checkpoint out.ckpt [--top-k 1] [--engine integer|float]
//   flightnn export  --network 1 --dataset cifar10 --quantizer lightnn2
//                    --checkpoint out.ckpt --pack out.flnn
//   flightnn predict --network 1 --dataset cifar10 --quantizer flightnn
//                    --checkpoint out.ckpt [--index 0]
//
// Datasets are the synthetic stand-ins (cifar10 / svhn / cifar100 /
// imagenet); networks are the paper's Table-1 ids (1-8).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/quantize_model.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "eval/storage.hpp"
#include "inference/quantized_network.hpp"
#include "models/networks.hpp"
#include "serialize/model_io.hpp"
#include "support/argparse.hpp"

namespace {

using namespace flightnn;

data::DatasetSpec dataset_by_name(const std::string& name, double scale) {
  if (name == "cifar10") return data::cifar10_like(static_cast<float>(scale));
  if (name == "svhn") return data::svhn_like(static_cast<float>(scale));
  if (name == "cifar100") return data::cifar100_like(static_cast<float>(scale));
  if (name == "imagenet") return data::imagenet_like(static_cast<float>(scale));
  throw std::invalid_argument("unknown dataset: " + name +
                              " (cifar10|svhn|cifar100|imagenet)");
}

// Build the network + install the requested quantizer.
std::unique_ptr<nn::Sequential> build(const support::ArgParser& args,
                                      const data::DatasetSpec& spec) {
  const int network_id = args.get_int("--network");
  models::BuildOptions build;
  build.in_channels = spec.channels;
  build.classes = spec.classes;
  build.width_scale = static_cast<float>(args.get_double("--width-scale"));
  build.seed = static_cast<std::uint64_t>(args.get_int("--seed"));
  auto model = models::build_network(models::table1_network(network_id), build);

  const std::string quantizer = args.get("--quantizer");
  if (quantizer == "full") {
    // no transform
  } else if (quantizer == "lightnn1") {
    core::install_lightnn(*model, 1);
  } else if (quantizer == "lightnn2") {
    core::install_lightnn(*model, 2);
  } else if (quantizer == "fixed4") {
    core::install_fixed_point(*model, 4);
  } else if (quantizer == "flightnn") {
    core::FLightNNConfig fl;
    fl.lambdas = {static_cast<float>(args.get_double("--lambda0")),
                  static_cast<float>(args.get_double("--lambda1"))};
    core::install_flightnn(*model, fl);
  } else {
    throw std::invalid_argument(
        "unknown quantizer: " + quantizer +
        " (full|lightnn1|lightnn2|fixed4|flightnn)");
  }
  return model;
}

void add_common_flags(support::ArgParser& args) {
  args.add_flag("--network", "Table-1 network id (1-8)", "1");
  args.add_flag("--dataset", "cifar10|svhn|cifar100|imagenet", "cifar10");
  args.add_flag("--dataset-scale", "dataset size multiplier", "0.5");
  args.add_flag("--noise", "override dataset noise level (-1 = preset)", "-1");
  args.add_flag("--quantizer", "full|lightnn1|lightnn2|fixed4|flightnn",
                "flightnn");
  args.add_flag("--width-scale", "channel-count multiplier", "0.25");
  args.add_flag("--seed", "build/train seed", "1");
  args.add_flag("--lambda0", "FLightNN level-0 group-lasso weight", "8e-5");
  args.add_flag("--lambda1", "FLightNN level-1 group-lasso weight", "2.4e-4");
}

data::TrainTest load_data(const support::ArgParser& args,
                          data::DatasetSpec& spec_out) {
  spec_out = dataset_by_name(args.get("--dataset"),
                             args.get_double("--dataset-scale"));
  const double noise = args.get_double("--noise");
  if (noise >= 0.0) spec_out.noise = static_cast<float>(noise);
  return data::make_synthetic(spec_out);
}

int cmd_train(const std::vector<std::string>& argv) {
  support::ArgParser args("flightnn train", "train a quantized model");
  add_common_flags(args);
  args.add_flag("--epochs", "training epochs", "5");
  args.add_flag("--batch-size", "mini-batch size", "32");
  args.add_flag("--lr", "Adam learning rate", "3e-3");
  args.add_flag("--threshold-lr", "FLightNN threshold learning rate", "0.02");
  args.add_flag("--checkpoint", "write checkpoint here", "");
  if (!args.parse(argv)) {
    std::fprintf(stderr, "%s\n%s", args.error().c_str(), args.usage().c_str());
    return 2;
  }

  data::DatasetSpec spec;
  const auto split = load_data(args, spec);
  auto model = build(args, spec);

  core::TrainConfig train;
  train.epochs = args.get_int("--epochs");
  train.batch_size = args.get_int("--batch-size");
  train.learning_rate = static_cast<float>(args.get_double("--lr"));
  train.threshold_learning_rate =
      static_cast<float>(args.get_double("--threshold-lr"));
  train.seed = static_cast<std::uint64_t>(args.get_int("--seed"));
  train.verbose = true;

  core::Trainer trainer(*model, train);
  const int top_k = spec.name == "imagenet-syn" ? 5 : 1;
  const auto fit = trainer.fit(split.train, split.test, top_k);
  std::printf("test accuracy (top-%d): %.2f%%\n", top_k,
              fit.test_accuracy * 100.0);
  std::printf("mean k: %.2f, storage: %.4f MB\n", eval::model_mean_k(*model),
              eval::model_storage_bytes(*model) / (1024.0 * 1024.0));

  const std::string checkpoint = args.get("--checkpoint");
  if (!checkpoint.empty()) {
    serialize::save_state(*model, checkpoint);
    std::printf("checkpoint written: %s\n", checkpoint.c_str());
  }
  return 0;
}

int cmd_eval(const std::vector<std::string>& argv) {
  support::ArgParser args("flightnn eval", "evaluate a checkpoint");
  add_common_flags(args);
  args.add_flag("--checkpoint", "checkpoint to load", std::nullopt);
  args.add_flag("--top-k", "top-k accuracy", "1");
  args.add_flag("--engine", "float|integer", "float");
  if (!args.parse(argv)) {
    std::fprintf(stderr, "%s\n%s", args.error().c_str(), args.usage().c_str());
    return 2;
  }

  data::DatasetSpec spec;
  const auto split = load_data(args, spec);
  auto model = build(args, spec);
  serialize::load_state(*model, args.get("--checkpoint"));

  const int top_k = args.get_int("--top-k");
  if (args.get("--engine") == "integer") {
    auto network = inference::QuantizedNetwork::compile(
        *model, tensor::Shape{1, spec.channels, spec.height, spec.width});
    inference::NetworkOpCounts counts{};
    const double accuracy = network.evaluate(split.test, top_k, &counts);
    std::printf("integer-engine accuracy (top-%d): %.2f%%\n", top_k,
                accuracy * 100.0);
    std::printf("per image: %lld shifts, %lld adds, %lld float MACs\n",
                static_cast<long long>(counts.shifts / counts.images),
                static_cast<long long>(counts.adds / counts.images),
                static_cast<long long>(counts.float_macs / counts.images));
  } else {
    core::TrainConfig unused;
    core::Trainer trainer(*model, unused);
    std::printf("float-path accuracy (top-%d): %.2f%%\n", top_k,
                trainer.evaluate(split.test, top_k) * 100.0);
  }
  return 0;
}

int cmd_export(const std::vector<std::string>& argv) {
  support::ArgParser args("flightnn export", "pack a checkpoint for deployment");
  add_common_flags(args);
  args.add_flag("--checkpoint", "checkpoint to load", std::nullopt);
  args.add_flag("--pack", "write packed model here", std::nullopt);
  if (!args.parse(argv)) {
    std::fprintf(stderr, "%s\n%s", args.error().c_str(), args.usage().c_str());
    return 2;
  }

  data::DatasetSpec spec;
  (void)load_data(args, spec);
  auto model = build(args, spec);
  serialize::load_state(*model, args.get("--checkpoint"));

  const auto packed = serialize::pack_quantized(*model);
  const auto bytes = serialize::serialize_packed(packed);
  std::FILE* file = std::fopen(args.get("--pack").c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", args.get("--pack").c_str());
    return 1;
  }
  std::fwrite(bytes.data(), 1, bytes.size(), file);
  std::fclose(file);
  std::printf("packed %zu layers, %.0f payload bytes -> %s\n",
              packed.layers.size(), packed.total_bytes(),
              args.get("--pack").c_str());
  return 0;
}

int cmd_predict(const std::vector<std::string>& argv) {
  support::ArgParser args("flightnn predict", "classify one test image");
  add_common_flags(args);
  args.add_flag("--checkpoint", "checkpoint to load", std::nullopt);
  args.add_flag("--index", "test-set image index", "0");
  if (!args.parse(argv)) {
    std::fprintf(stderr, "%s\n%s", args.error().c_str(), args.usage().c_str());
    return 2;
  }

  data::DatasetSpec spec;
  const auto split = load_data(args, spec);
  auto model = build(args, spec);
  serialize::load_state(*model, args.get("--checkpoint"));

  const auto index = static_cast<std::int64_t>(args.get_int("--index"));
  auto network = inference::QuantizedNetwork::compile(
      *model, tensor::Shape{1, spec.channels, spec.height, spec.width});
  const tensor::Tensor logits = network.run(split.test.image(index));
  std::int64_t best = 0;
  for (std::int64_t c = 1; c < logits.numel(); ++c) {
    if (logits[c] > logits[best]) best = c;
  }
  std::printf("image %lld: predicted class %lld, true class %d\n",
              static_cast<long long>(index), static_cast<long long>(best),
              split.test.labels[static_cast<std::size_t>(index)]);
  return 0;
}

void print_global_usage() {
  std::printf(
      "flightnn <command> [flags]\n"
      "commands:\n"
      "  train    train a quantized model on a synthetic dataset\n"
      "  eval     evaluate a checkpoint (float or integer engine)\n"
      "  export   pack a checkpoint's shift terms for deployment\n"
      "  predict  classify one test image with the integer engine\n"
      "run `flightnn <command> --help-placeholder x` to list flags.\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_global_usage();
    return 2;
  }
  const std::string command = argv[1];
  std::vector<std::string> rest(argv + 2, argv + argc);
  try {
    if (command == "train") return cmd_train(rest);
    if (command == "eval") return cmd_eval(rest);
    if (command == "export") return cmd_export(rest);
    if (command == "predict") return cmd_predict(rest);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  print_global_usage();
  return 2;
}
