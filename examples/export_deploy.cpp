// Train -> checkpoint -> pack -> verify: the full deployment round trip.
// Saves a training checkpoint, exports the nibble-packed shift-term model
// (the artifact an accelerator would flash), reloads both, and verifies the
// packed weights drive the integer engine to the same predictions.
//
//   $ ./examples/export_deploy

#include <cstdio>

#include "core/quantize_model.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "eval/storage.hpp"
#include "inference/quantized_network.hpp"
#include "models/networks.hpp"
#include "serialize/model_io.hpp"

int main() {
  using namespace flightnn;

  // Train a small FLightNN.
  auto spec = data::cifar10_like(0.25F);
  spec.noise = 2.0F;  // demo-friendly difficulty at this tiny training budget
  const auto split = data::make_synthetic(spec);
  models::BuildOptions build;
  build.classes = spec.classes;
  build.width_scale = 0.25F;
  auto model = models::build_network(models::table1_network(4), build);
  core::FLightNNConfig fl;
  fl.lambdas = {8e-5F, 2.4e-4F};
  core::install_flightnn(*model, fl);
  core::TrainConfig train;
  train.epochs = 3;
  train.threshold_learning_rate = 0.05F;
  core::Trainer trainer(*model, train);
  const auto fit = trainer.fit(split.train, split.test);
  std::printf("trained: %.2f%% test accuracy, mean k %.2f\n",
              fit.test_accuracy * 100.0, eval::model_mean_k(*model));

  // 1. Checkpoint round trip.
  const auto checkpoint = serialize::save_state(*model);
  auto restored = models::build_network(models::table1_network(4), build);
  core::install_flightnn(*restored, fl);
  serialize::load_state(*restored, checkpoint);
  std::printf("checkpoint: %zu bytes, restored model matches: %s\n",
              checkpoint.size(),
              tensor::max_abs_diff(model->forward(split.test.image(0), false),
                                   restored->forward(split.test.image(0), false)) <
                      1e-6F
                  ? "yes"
                  : "NO");

  // 2. Deployment pack: the bits an accelerator's weight memory holds.
  const auto packed = serialize::pack_quantized(*model);
  const auto pack_bytes = serialize::serialize_packed(packed);
  std::printf("packed shift-term model: %.0f payload bytes (%zu on the wire)\n",
              packed.total_bytes(), pack_bytes.size());
  std::printf("  float32 weights would be: %.0f bytes\n",
              static_cast<double>(models::parameter_count(*model)) * 4);

  // 3. Verify the pack: parse it back, rebuild each layer's quantized
  //    weights, and check they equal the live model's quantized weights.
  const auto parsed = serialize::parse_packed(pack_bytes);
  const auto layers = core::quantizable_layers(*model);
  float max_diff = 0.0F;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const tensor::Tensor wq =
        layers[i].transform->forward(layers[i].weight->value);
    const tensor::Tensor rebuilt =
        serialize::unpack_layer(parsed.layers[i], parsed.pow2, wq.shape());
    max_diff = std::max(max_diff, tensor::max_abs_diff(wq, rebuilt));
  }
  std::printf("pack round trip: max weight diff %.2e %s\n", max_diff,
              max_diff == 0.0F ? "(exact)" : "");

  // 4. Run the integer engine on the restored model and compare accuracy.
  auto engine = inference::QuantizedNetwork::compile(
      *restored, tensor::Shape{1, spec.channels, spec.height, spec.width});
  inference::NetworkOpCounts counts{};
  const double engine_acc = engine.evaluate(split.test, 1, &counts);
  std::printf("integer engine accuracy: %.2f%% (float path: %.2f%%)\n",
              engine_acc * 100.0, fit.test_accuracy * 100.0);
  std::printf("integer ops per image: %lld shifts, %lld adds, %lld float MACs\n",
              static_cast<long long>(counts.shifts / counts.images),
              static_cast<long long>(counts.adds / counts.images),
              static_cast<long long>(counts.float_macs / counts.images));
  return max_diff == 0.0F ? 0 : 1;
}
