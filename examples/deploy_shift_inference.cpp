// Deployment scenario: take a trained FLightNN layer, decompose it into
// single-shift filters (Fig. 3) and run it on the integer shift-add engine
// -- the same datapath a LightNN-1 FPGA/ASIC design implements -- then
// verify the integer engine agrees with the float path, compile the whole
// trained network, and serve a burst of client-shaped requests through the
// serving::Server dynamic batcher, reporting the per-request queue/compute
// timing the unified InferenceResult carries.
//
//   $ ./examples/deploy_shift_inference [--threads N] [--max-batch B]
//                                       [--queue-delay-ms D] [--profile]
//                                       [--mem-budget MIB]
//                                       [--save-artifact PATH]
//                                       [--load-artifact PATH]
//
// --save-artifact writes the compiled network as a flat deployment artifact
// (serialize/artifact.hpp) after training. --load-artifact skips training
// entirely: the artifact is mmap-ed, fixed up in O(#sections), and served
// directly -- the production cold-start path.
//
// --threads sets the runtime pool size for both training and the shift
// engine (0 = FLIGHTNN_NUM_THREADS / hardware default). Outputs are
// bit-identical at every thread count. --max-batch / --queue-delay-ms are
// the dynamic batcher's flush knobs (DESIGN.md §11). --profile additionally
// prints per-layer wall time, shift-term counts, the kernel tier (scalar
// vs avx2) each layer dispatched to, and the planned-arena scratch each
// layer fetches (QuantizedNetwork::profile) -- the deployment check that a
// host is actually on the vector fast path.
//
// --mem-budget caps the deployment's inference memory (MiB, 0 = unlimited):
// the memory plan's per-thread peak (planned arena + quantization scratch +
// activation working set) is reported against the budget, and when the
// requested batch would overshoot, the dynamic batcher's flush size is
// capped so the in-flight input set fits (DESIGN.md §15). The plan itself
// never changes -- the knob trades throughput for footprint, not accuracy.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "core/quantize_model.hpp"
#include "core/trainer.hpp"
#include "inference/memory_plan.hpp"
#include "data/dataset.hpp"
#include "inference/quantized_network.hpp"
#include "inference/shift_engine.hpp"
#include "models/networks.hpp"
#include "nn/conv2d.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/inference_request.hpp"
#include "runtime/thread_pool.hpp"
#include "serialize/artifact.hpp"
#include "serving/server.hpp"
#include "support/argparse.hpp"
#include "support/table.hpp"

namespace {

// Report the memory plan's footprint against --mem-budget and, when the
// requested flush size would overshoot, cap it so the in-flight input set
// fits. Returns the (possibly reduced) max_batch. budget_mib == 0 means
// unlimited (report only).
int apply_mem_budget(const flightnn::inference::QuantizedNetwork& network,
                     std::int64_t channels, std::int64_t height,
                     std::int64_t width, int budget_mib, int max_batch) {
  using namespace flightnn;
  const inference::MemoryPlan* plan = network.memory_plan();
  if (plan == nullptr) {
    std::printf("\nmemory plan: none (dynamic arena route)%s\n",
                budget_mib > 0 ? "; --mem-budget has no planned peak to "
                                 "enforce, batch unchanged"
                               : "");
    return max_batch;
  }
  const auto threads = static_cast<std::size_t>(runtime::num_threads());
  const std::size_t per_thread =
      plan->planned_per_thread_bytes() + plan->activation_peak_bytes();
  const std::size_t fixed = threads * per_thread;
  const std::size_t per_image =
      static_cast<std::size_t>(channels * height * width) * sizeof(float);
  const double mib = 1024.0 * 1024.0;
  std::printf(
      "\nmemory plan: arena %.1f KiB + quant %.1f KiB + activations %.1f KiB "
      "= %.2f MiB/thread x %zu threads = %.2f MiB planned peak\n",
      static_cast<double>(plan->arena_capacity_bytes()) / 1024.0,
      static_cast<double>(plan->quant_peak_bytes()) / 1024.0,
      static_cast<double>(plan->activation_peak_bytes()) / 1024.0,
      static_cast<double>(per_thread) / mib, threads,
      static_cast<double>(fixed) / mib);
  if (budget_mib <= 0) return max_batch;

  const std::size_t budget =
      static_cast<std::size_t>(budget_mib) * (std::size_t{1} << 20);
  const std::size_t batch_bytes =
      static_cast<std::size_t>(max_batch) * per_image;
  if (fixed + batch_bytes <= budget) {
    std::printf("mem budget: %d MiB >= %.2f MiB planned peak + %.2f MiB "
                "batch inputs -- within budget, batch stays %d\n",
                budget_mib, static_cast<double>(fixed) / mib,
                static_cast<double>(batch_bytes) / mib, max_batch);
    return max_batch;
  }
  if (fixed + per_image > budget) {
    std::printf("mem budget: %d MiB is below the planned per-thread peak "
                "(%.2f MiB) -- degrading to batch 1; expect the budget to "
                "be exceeded by the fixed working set\n",
                budget_mib, static_cast<double>(fixed) / mib);
    return 1;
  }
  const int capped = std::max(
      1, static_cast<int>((budget - fixed) / per_image));
  std::printf("mem budget: %d MiB < planned peak + %d-image inputs -- "
              "capping dynamic batch %d -> %d\n",
              budget_mib, max_batch, max_batch, std::min(capped, max_batch));
  return std::min(capped, max_batch);
}

// Push a burst of client-shaped requests (1-4 images each) through the
// dynamic batcher and print the per-request timing table. Shared between
// the freshly-trained path and the artifact cold-start path -- the network
// serves identically regardless of where its plans live.
int serve_burst(const flightnn::inference::QuantizedNetwork& network,
                std::int64_t channels, std::int64_t height, std::int64_t width,
                int max_batch, double queue_delay_ms) {
  using namespace flightnn;
  const runtime::BatchRunner runner(network);
  serving::ServerConfig serve;
  serve.max_batch = max_batch;
  serve.max_queue_delay_s = queue_delay_ms * 1e-3;
  serving::Server server(runner, serve);
  std::printf(
      "\nserving config: threads=%d max_batch=%d max_queue_delay=%.1fms "
      "queue_bound=%zu images, mode=%s\n",
      runtime::num_threads(), server.config().max_batch,
      server.config().max_queue_delay_s * 1e3,
      server.config().max_queue_images,
      server.config().block_on_full ? "block-on-full" : "reject-on-overload");

  support::Rng rng(1234);
  constexpr int kRequests = 6;
  std::vector<std::future<runtime::InferenceResult>> futures;
  std::vector<std::int64_t> sizes;
  for (int r = 0; r < kRequests; ++r) {
    runtime::InferenceRequest inference_request;
    inference_request.id = static_cast<std::uint64_t>(r + 1);
    const int images_in_request = r % 4 + 1;
    for (int i = 0; i < images_in_request; ++i) {
      inference_request.images.push_back(tensor::Tensor::randn(
          tensor::Shape{channels, height, width}, rng));
    }
    sizes.push_back(images_in_request);
    auto submission = server.submit(std::move(inference_request));
    if (submission.status != serving::SubmitStatus::Ok) {
      std::fprintf(stderr, "request %d not admitted: %s\n", r + 1,
                   serving::to_string(submission.status));
      return 1;
    }
    futures.push_back(std::move(submission.result));
  }

  support::Table serve_table({"request", "images", "queue (ms)",
                              "compute (ms)", "rode batch", "top-1",
                              "shifts", "adds"});
  for (std::size_t r = 0; r < futures.size(); ++r) {
    const runtime::InferenceResult result = futures[r].get();
    serve_table.add_row(
        {std::to_string(result.id), std::to_string(sizes[r]),
         support::format_fixed(result.timing.queue_seconds * 1e3, 2),
         support::format_fixed(result.timing.compute_seconds * 1e3, 2),
         std::to_string(result.timing.batch_size),
         std::to_string(result.argmax.empty() ? -1 : result.argmax[0]),
         std::to_string(result.counts.shifts),
         std::to_string(result.counts.adds)});
  }
  server.shutdown();
  const auto stats = server.stats();
  std::printf("per-request timing (%lld dynamic batches executed):\n%s",
              static_cast<long long>(stats.batches),
              serve_table.to_string().c_str());
  return 0;
}

// Break one image's inference cost down per step: where the wall time goes,
// how many single-shift terms each shift layer executes, and which kernel
// tier (scalar / avx2) each layer dispatched to. Shared between the
// freshly-trained path and the artifact cold-start path, so a deployment
// can confirm its mmap-loaded plans landed on the vector fast path.
void print_profile(const flightnn::inference::QuantizedNetwork& network,
                   std::int64_t channels, std::int64_t height,
                   std::int64_t width) {
  using namespace flightnn;
  support::Rng rng(99);
  tensor::Tensor image =
      tensor::Tensor::randn(tensor::Shape{channels, height, width}, rng);
  const auto steps = network.profile(image, /*repeats=*/20);
  double total_us = 0.0;
  for (const auto& step : steps) total_us += step.seconds * 1e6;
  support::Table table({"step", "kernel", "scratch", "layout", "time (us)",
                        "% of total", "terms", "shifts", "adds",
                        "float MACs"});
  for (const auto& step : steps) {
    const double us = step.seconds * 1e6;
    table.add_row({step.name, step.kernel_tier,
                   step.planned_scratch_bytes > 0
                       ? std::to_string(step.planned_scratch_bytes) + "B"
                       : "-",
                   step.planned_layout, support::format_fixed(us, 1),
                   support::format_fixed(100.0 * us / total_us, 1),
                   std::to_string(step.terms), std::to_string(step.shifts),
                   std::to_string(step.adds),
                   std::to_string(step.float_macs)});
  }
  std::printf("\nper-layer profile (%zu steps, %.1f us/image total):\n%s",
              steps.size(), total_us, table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flightnn;

  support::ArgParser parser("deploy_shift_inference",
                            "decompose a trained layer onto the shift engine");
  parser.add_flag("--threads", "runtime pool size (0 = env/hardware default)",
                  "0");
  parser.add_flag("--max-batch", "dynamic batcher flush size (images)", "8");
  parser.add_flag("--queue-delay-ms", "dynamic batcher flush deadline", "2");
  parser.add_flag("--mem-budget",
                  "inference memory budget in MiB (0 = unlimited)", "0");
  parser.add_flag("--save-artifact",
                  "write the compiled network as a deployment artifact", "");
  parser.add_flag("--load-artifact",
                  "serve an existing artifact (skips training)", "");
  std::vector<std::string> args(argv + 1, argv + argc);
  // --profile is a bare switch (no value).
  const auto profile_it = std::find(args.begin(), args.end(),
                                    std::string("--profile"));
  const bool profile = profile_it != args.end();
  if (profile) args.erase(profile_it);
  if (!parser.parse(args)) {
    std::fprintf(stderr,
                 "%s\n%s  --profile: per-layer wall time / term counts\n",
                 parser.error().c_str(), parser.usage().c_str());
    return 1;
  }
  runtime::set_num_threads(parser.get_int("--threads"));
  std::printf("runtime threads: %d\n", runtime::num_threads());

  // --- Artifact cold-start path: mmap, fix up, serve. No training. --------
  if (const std::string load_path = parser.get("--load-artifact");
      !load_path.empty()) {
    try {
      const auto t0 = std::chrono::steady_clock::now();
      const serialize::ArtifactModel artifact =
          serialize::ArtifactModel::load(load_path);
      const double load_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0).count();
      std::printf(
          "loaded artifact %s: %zu bytes, input [%lld, %lld, %lld], "
          "%zu steps, cold start %.2f ms\n",
          load_path.c_str(), artifact.size(),
          static_cast<long long>(artifact.input_c()),
          static_cast<long long>(artifact.input_h()),
          static_cast<long long>(artifact.input_w()),
          artifact.network().step_count(), load_ms);
      const int batch = apply_mem_budget(
          artifact.network(), artifact.input_c(), artifact.input_h(),
          artifact.input_w(), parser.get_int("--mem-budget"),
          parser.get_int("--max-batch"));
      const int status = serve_burst(artifact.network(), artifact.input_c(),
                                     artifact.input_h(), artifact.input_w(),
                                     batch,
                                     parser.get_double("--queue-delay-ms"));
      if (status == 0 && profile) {
        print_profile(artifact.network(), artifact.input_c(),
                      artifact.input_h(), artifact.input_w());
      }
      return status;
    } catch (const serialize::ArtifactError& error) {
      std::fprintf(stderr, "cannot serve %s: %s\n", load_path.c_str(),
                   error.what());
      return 1;
    }
  }

  // Train a small FLightNN (as in quickstart, fewer epochs).
  auto spec = data::cifar10_like(0.25F);
  spec.noise = 2.0F;  // demo-friendly difficulty at this tiny training budget
  const auto split = data::make_synthetic(spec);
  models::BuildOptions build;
  build.classes = spec.classes;
  build.width_scale = 0.25F;
  auto model = models::build_network(models::table1_network(1), build);
  core::FLightNNConfig fl;
  fl.lambdas = {2e-5F, 6e-5F};
  core::install_flightnn(*model, fl);
  core::TrainConfig train;
  train.epochs = 2;
  core::Trainer trainer(*model, train);
  (void)trainer.fit(split.train, split.test);

  // Pick the deepest conv layer and compile it for the shift engine.
  nn::Conv2d* target = nullptr;
  model->visit([&](nn::Layer& layer) {
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) target = conv;
  });
  if (target == nullptr) {
    std::fprintf(stderr, "no conv layer found\n");
    return 1;
  }

  const quant::Pow2Config pow2;
  tensor::Tensor wq = target->quantized_weight();
  inference::ShiftConv2d engine(wq, /*k_max=*/2, pow2, target->stride(),
                                target->padding());

  std::printf("compiled conv layer: %lld filters -> %lld single-shift terms\n",
              static_cast<long long>(target->out_channels()),
              static_cast<long long>(engine.term_count()));
  int histogram[3] = {0, 0, 0};
  for (int k : engine.filter_k()) ++histogram[k];
  std::printf("filter k histogram: k=0: %d, k=1: %d, k=2: %d\n", histogram[0],
              histogram[1], histogram[2]);

  // Feed it activation-shaped random data and compare against the float
  // reference convolution on the same quantized operands.
  support::Rng rng(42);
  const std::int64_t side = 8;
  tensor::Tensor act = tensor::Tensor::randn(
      tensor::Shape{target->in_channels(), side, side}, rng);
  const auto qact = inference::quantize_image(act, 8);

  inference::OpCounts counts{};
  tensor::Tensor engine_out = engine.run(qact, &counts);
  tensor::Tensor reference = inference::reference_conv(
      wq, inference::dequantize(qact), target->stride(), target->padding());

  const float diff = tensor::max_abs_diff(engine_out, reference);
  std::printf("\ninteger engine vs float reference: max |diff| = %.2e %s\n",
              diff, diff < 1e-4F ? "(bit-exact modulo fp32 storage)" : "(MISMATCH!)");
  std::printf("op census for one %lldx%lld input: %lld shifts, %lld adds\n",
              static_cast<long long>(side), static_cast<long long>(side),
              static_cast<long long>(counts.shifts),
              static_cast<long long>(counts.adds));
  const double macs = static_cast<double>(
      target->out_channels() * target->in_channels() * 9 * side * side);
  std::printf("shifts per multiply-equivalent: %.2f (k=2 everywhere would be 2.0)\n",
              static_cast<double>(counts.shifts) / macs);
  if (diff >= 1e-4F) return 1;

  // --- Serve the whole trained network through the dynamic batcher --------
  // Compile the model to the integer plan and push a burst of
  // production-shaped requests (1-4 images each) through serving::Server.
  // Each InferenceResult reports how long the request queued, how long its
  // fused batch computed, and which dynamic batch size it rode in -- the
  // per-request observability the serving API carries natively.
  const auto network = inference::QuantizedNetwork::compile(
      *model, tensor::Shape{1, spec.channels, spec.height, spec.width});

  // --save-artifact: freeze the compiled network into the flat deployment
  // blob a later --load-artifact run (or any serving replica) can mmap.
  if (const std::string save_path = parser.get("--save-artifact");
      !save_path.empty()) {
    const auto program = inference::compile_program(
        *model, tensor::Shape{1, spec.channels, spec.height, spec.width});
    serialize::save_artifact(program, save_path);
    const auto blob = serialize::build_artifact(program);
    std::printf("\nsaved deployment artifact: %s (%zu bytes, %zu ops)\n",
                save_path.c_str(), blob.size(), program.ops.size());
  }

  const int batch = apply_mem_budget(network, spec.channels, spec.height,
                                     spec.width, parser.get_int("--mem-budget"),
                                     parser.get_int("--max-batch"));
  const int serve_status =
      serve_burst(network, spec.channels, spec.height, spec.width, batch,
                  parser.get_double("--queue-delay-ms"));
  if (serve_status != 0) return serve_status;

  if (profile) {
    print_profile(network, spec.channels, spec.height, spec.width);
  }
  return 0;
}
