// Hardware-designer scenario (the paper's Fig. 1 motivation): a product has
// a throughput floor and wants the most accurate model that meets it.
// LightNN-1 and LightNN-2 give two isolated operating points; sweeping the
// FLightNN lambda produces a continuous front to pick from.
//
//   $ ./examples/design_space_exploration

#include <cstdio>

#include "core/quantize_model.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "eval/pareto.hpp"
#include "eval/storage.hpp"
#include "hw/asic_model.hpp"
#include "hw/fpga_model.hpp"
#include "models/networks.hpp"

int main() {
  using namespace flightnn;

  auto spec = data::cifar10_like(0.25F);
  spec.noise = 2.0F;  // demo-friendly difficulty at this tiny training budget
  const auto split = data::make_synthetic(spec);
  const auto network = models::table1_network(1);

  // Hardware models run on the full-size topology.
  models::BuildOptions full_size;
  full_size.classes = spec.classes;
  full_size.act_bits = 0;
  auto reference = models::build_network(network, full_size);
  const auto layer = hw::largest_layer(*reference, tensor::Shape{1, 3, 32, 32});
  const hw::FpgaModel fpga;
  const hw::AsicModel asic;

  struct Candidate {
    std::string label;
    double accuracy, throughput, energy_uj, mean_k;
  };
  std::vector<Candidate> candidates;

  auto train_one = [&](const std::string& label, int lightnn_k,
                       std::vector<float> lambdas, float threshold_lr) {
    models::BuildOptions build;
    build.classes = spec.classes;
    build.width_scale = 0.25F;
    build.seed = 12;
    auto model = models::build_network(network, build);
    if (lightnn_k > 0) {
      core::install_lightnn(*model, lightnn_k);
    } else {
      core::FLightNNConfig fl;
      fl.lambdas = std::move(lambdas);
      core::install_flightnn(*model, fl);
    }
    core::TrainConfig train;
    train.epochs = 3;
    train.threshold_learning_rate = threshold_lr;
    core::Trainer trainer(*model, train);
    const auto fit = trainer.fit(split.train, split.test);
    const double mean_k = eval::model_mean_k(*model);
    const auto hw_spec = lightnn_k > 0 ? hw::QuantSpec::lightnn(lightnn_k)
                                       : hw::QuantSpec::flightnn(mean_k);
    candidates.push_back({label, fit.test_accuracy * 100.0,
                          fpga.evaluate(layer, hw_spec).throughput,
                          asic.layer_energy_uj(layer, hw_spec), mean_k});
  };

  std::printf("training the candidate set...\n");
  train_one("L-2", 2, {}, 1e-3F);
  train_one("L-1", 1, {}, 1e-3F);
  // Three calibrated FLightNN operating points: dense (~k=2), balanced,
  // sparse (~k=1). See EXPERIMENTS.md "Calibration".
  train_one("FL-dense", 0, {1e-5F, 3e-5F}, 1e-3F);
  train_one("FL-balanced", 0, {8e-5F, 2.4e-4F}, 0.05F);
  train_one("FL-sparse", 0, {1e-5F, 1e-3F}, 0.1F);

  std::printf("\n%-16s %10s %14s %12s %8s\n", "model", "acc(%)",
              "thpt(img/s)", "energy(uJ)", "mean k");
  for (const auto& c : candidates) {
    std::printf("%-16s %10.2f %14.0f %12.4f %8.2f\n", c.label.c_str(),
                c.accuracy, c.throughput, c.energy_uj, c.mean_k);
  }

  // The design query: most accurate model meeting a throughput floor set
  // halfway between the L-2 and L-1 operating points -- a target neither
  // plain LightNN can serve well.
  const double l2_thpt = candidates[0].throughput;
  const double l1_thpt = candidates[1].throughput;
  const double floor_thpt = 0.5 * (l2_thpt + l1_thpt);
  std::printf("\ndesign constraint: throughput >= %.0f images/s\n", floor_thpt);
  const Candidate* best = nullptr;
  for (const auto& c : candidates) {
    if (c.throughput >= floor_thpt && (best == nullptr || c.accuracy > best->accuracy)) {
      best = &c;
    }
  }
  if (best == nullptr) {
    std::printf("no candidate meets the constraint\n");
    return 1;
  }
  std::printf("selected: %s (%.2f%% accuracy at %.0f images/s)\n",
              best->label.c_str(), best->accuracy, best->throughput);
  std::printf(
      "a pure LightNN designer would be forced to L-1 here; the FLightNN\n"
      "sweep usually offers a point above it in accuracy.\n");
  return 0;
}
