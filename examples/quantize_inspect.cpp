// Fig. 2 walkthrough: trace the FLightNN quantization flow on a single
// convolutional filter, printing each level's residual norm, the threshold
// comparison, and the power-of-two terms that survive.
//
//   $ ./examples/quantize_inspect

#include <cstdio>

#include "core/decompose.hpp"
#include "core/flightnn_transform.hpp"
#include "support/rng.hpp"

int main() {
  using namespace flightnn;

  support::Rng rng(7);
  const std::int64_t elems = 9;  // one 3x3 single-channel filter
  tensor::Tensor w = tensor::Tensor::randn(tensor::Shape{1, elems}, rng, 0.0F, 0.3F);

  std::printf("full-precision filter w:\n  ");
  for (std::int64_t i = 0; i < elems; ++i) std::printf("%+7.4f ", w[i]);
  std::printf("\n\n");

  for (const auto thresholds : {std::vector<float>{0.0F, 0.0F},
                                std::vector<float>{0.0F, 0.30F},
                                std::vector<float>{0.95F, 0.30F}}) {
    core::FLightNNTransform transform;
    transform.set_thresholds(thresholds);
    std::printf("thresholds t = (%.2f, %.2f)  [Fig. 2 flow]\n", thresholds[0],
                thresholds[1]);

    // Re-run the flow manually for display.
    tensor::Tensor residual = w;
    for (int level = 0; level < 2; ++level) {
      const double norm = residual.l2_norm();
      const bool fires = norm > thresholds[static_cast<std::size_t>(level)];
      std::printf("  level %d: ||r|| = %.4f %s t_%d = %.2f -> %s\n", level,
                  norm, fires ? ">" : "<=", level,
                  thresholds[static_cast<std::size_t>(level)],
                  fires ? "emit R(r), continue" : "stop");
      if (!fires) break;
      tensor::Tensor rounded = quant::round_to_pow2(residual, quant::Pow2Config{});
      std::printf("    R(r) = ");
      for (std::int64_t i = 0; i < elems; ++i) std::printf("%+7.4f ", rounded[i]);
      std::printf("\n");
      residual -= rounded;
    }

    tensor::Tensor q = transform.forward(w);
    const int k = transform.filter_k(w)[0];
    std::printf("  => k_i = %d, quantized filter:\n     ", k);
    for (std::int64_t i = 0; i < elems; ++i) std::printf("%+7.4f ", q[i]);
    tensor::Tensor error = w - q;
    std::printf("\n  => approximation error ||w - Q(w)|| = %.4f\n\n",
                error.l2_norm());
  }

  std::printf(
      "reading: t = 0 keeps two shift terms per weight; raising t_1 drops\n"
      "the refinement term (k_i = 1); raising t_0 past ||w|| prunes the\n"
      "whole filter (k_i = 0). Training learns t instead of hand-picking.\n");
  return 0;
}
