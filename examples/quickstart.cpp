// Quickstart: train a FLightNN on a synthetic CIFAR-10-like task and
// inspect what the differentiable k-selection learned.
//
//   $ ./examples/quickstart
//
// Walks the whole public API surface: dataset -> model builder ->
// install_flightnn -> Trainer (Algorithm 1) -> per-filter k / storage
// reporting.

#include <cstdio>

#include "core/quantize_model.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "eval/storage.hpp"
#include "models/networks.hpp"

int main() {
  using namespace flightnn;

  // 1. A small synthetic classification task (stand-in for CIFAR-10).
  auto spec = data::cifar10_like(/*scale=*/0.5F);
  spec.noise = 3.0F;  // demo-friendly difficulty at this training budget
  const auto split = data::make_synthetic(spec);
  std::printf("dataset: %s, %lld train / %lld test images, %d classes\n",
              spec.name.c_str(), static_cast<long long>(split.train.size()),
              static_cast<long long>(split.test.size()), spec.classes);

  // 2. Network 1 from the paper's Table 1 (VGG-7), at quarter width so the
  //    example finishes in seconds.
  models::BuildOptions build;
  build.classes = spec.classes;
  build.width_scale = 0.25F;
  auto model = models::build_network(models::table1_network(1), build);
  std::printf("model: VGG-7 proxy with %lld parameters\n",
              static_cast<long long>(models::parameter_count(*model)));

  // 3. Install FLightNN quantization: per-filter flexible k, k_max = 2.
  //    The group-lasso coefficients here are the "balanced" operating point
  //    (EXPERIMENTS.md): strong enough to push some filters to one shift at
  //    this reduced training scale.
  core::FLightNNConfig fl;
  fl.lambdas = {8e-5F, 2.4e-4F};
  const auto transforms = core::install_flightnn(*model, fl);

  // 4. Train with Algorithm 1 (Adam on weights, biases and thresholds).
  core::TrainConfig train;
  train.epochs = 4;
  train.batch_size = 32;
  train.learning_rate = 3e-3F;
  train.threshold_learning_rate = 0.05F;
  train.verbose = true;
  core::Trainer trainer(*model, train);
  const auto fit = trainer.fit(split.train, split.test);
  std::printf("test accuracy: %.2f%% (chance %.1f%%)\n",
              fit.test_accuracy * 100.0, 100.0 / spec.classes);

  // 5. Inspect the learned k profile: how many shifts each layer's filters
  //    ended up with, and what that means for storage.
  std::printf("\nper-layer k profile (filters using 0 / 1 / 2 shifts):\n");
  int layer_index = 0;
  for (const auto& layer : core::quantizable_layers(*model)) {
    auto* transform = dynamic_cast<core::FLightNNTransform*>(layer.transform);
    if (transform == nullptr) continue;
    int histogram[3] = {0, 0, 0};
    for (int k : transform->filter_k(layer.weight->value)) ++histogram[k];
    std::printf("  layer %2d: k=0: %3d  k=1: %3d  k=2: %3d  (t = %.3f, %.3f)\n",
                layer_index++, histogram[0], histogram[1], histogram[2],
                transform->thresholds()[0], transform->thresholds()[1]);
  }
  std::printf("\nmean k over all weights: %.2f\n", eval::model_mean_k(*model));
  std::printf("storage: %.3f MB (vs %.3f MB full precision)\n",
              eval::model_storage_bytes(*model) / (1024.0 * 1024.0),
              static_cast<double>(models::parameter_count(*model)) * 4.0 /
                  (1024.0 * 1024.0));
  return 0;
}
