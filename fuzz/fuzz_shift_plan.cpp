// Fuzz harness for ShiftPlan compilation (inference/shift_plan).
//
// The input bytes are decoded as a little program that builds a bounded
// core::Decomposition -- the same structure parse_packed hands to the
// compiler when a deployment pack is loaded -- with *no* validity
// filtering: filters may be addressed out of range, signs may be arbitrary
// bytes, exponents may fall outside the config window. compile_conv /
// compile_linear must either accept the decomposition or reject it with a
// typed CheckFailure; anything else (sanitizer finding, uncaught exception)
// is a crash.
//
// On success the compiled plan's structural invariants are asserted:
// filter_begin is a monotone prefix-sum table ending at entries(), and all
// per-entry streams have equal length.

#include <cstdint>
#include <exception>
#include <vector>

#include "core/decompose.hpp"
#include "inference/shift_plan.hpp"
#include "quant/pow2.hpp"
#include "support/check.hpp"

#include "fuzz_driver.hpp"

namespace {

using flightnn::core::Decomposition;
using flightnn::core::Pow2FilterTerm;
using flightnn::inference::ShiftPlan;
using flightnn::quant::Pow2Config;
using flightnn::quant::Pow2Term;

// Sequential byte reader; returns 0 past the end so every input decodes to
// *some* program (short inputs just build small decompositions).
class ByteProgram {
 public:
  ByteProgram(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() { return cursor_ < size_ ? data_[cursor_++] : 0; }
  std::int8_t i8() { return static_cast<std::int8_t>(u8()); }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t cursor_ = 0;
};

// Size clamps keep per-input cost flat (the compiler is O(entries)); the
// interesting state space is in the *values*, not the counts.
constexpr int kMaxFilters = 16;
constexpr int kMaxTerms = 32;
constexpr int kMaxElements = 64;

void check_plan_invariants(const ShiftPlan& plan, bool spatial) {
  const auto filters = static_cast<std::size_t>(plan.filters);
  if (plan.filter_begin.size() != filters + 1) std::terminate();
  if (plan.filter_gain.size() != filters) std::terminate();
  if (plan.filter_begin.front() != 0) std::terminate();
  for (std::size_t f = 0; f < filters; ++f) {
    if (plan.filter_begin[f] > plan.filter_begin[f + 1]) std::terminate();
  }
  const auto entries = static_cast<std::size_t>(plan.entries());
  if (plan.filter_begin.back() != plan.entries()) std::terminate();
  if (plan.shift.size() != entries || plan.sign.size() != entries) {
    std::terminate();
  }
  if (spatial && (plan.channel.size() != entries ||
                  plan.ky.size() != entries || plan.kx.size() != entries)) {
    std::terminate();
  }
}

void fuzz_compile(const std::uint8_t* data, std::size_t size) {
  ByteProgram program(data, size);

  Pow2Config config;
  // Window placement is fuzzer-chosen; the [-32, 31] span covers in-range,
  // boundary, and far-out-of-range exponents relative to it.
  config.e_min = -static_cast<int>(program.u8() % 63) - 1;  // [-63, -1]
  config.e_max = config.e_min + static_cast<int>(program.u8() % 64);
  config.flush_to_zero = (program.u8() & 1) != 0;

  const int filters = static_cast<int>(program.u8() % (kMaxFilters + 1));
  const int terms = static_cast<int>(program.u8() % (kMaxTerms + 1));
  const std::int64_t in_channels = static_cast<std::int64_t>(program.u8() % 5);
  const std::int64_t kernel = static_cast<std::int64_t>(program.u8() % 8);

  Decomposition decomposition;
  decomposition.filter_k.assign(static_cast<std::size_t>(filters), 0);
  decomposition.elements_per_filter = program.i8();  // may be negative
  for (int t = 0; t < terms; ++t) {
    Pow2FilterTerm term;
    // Deliberately unclamped: out-of-range filters must be *rejected*, not
    // masked away before the compiler sees them.
    term.filter = program.i8();
    term.level = static_cast<int>(program.u8() % 4);
    const int elements = static_cast<int>(program.u8() % (kMaxElements + 1));
    term.elements.reserve(static_cast<std::size_t>(elements));
    for (int e = 0; e < elements; ++e) {
      Pow2Term w;
      w.sign = program.i8();      // arbitrary, not just {-1, 0, 1}
      w.exponent = program.i8();  // arbitrary, often outside the window
      term.elements.push_back(w);
    }
    if (term.filter >= 0 && term.filter < filters) {
      decomposition.filter_k[static_cast<std::size_t>(term.filter)] += 1;
    }
    decomposition.terms.push_back(std::move(term));
  }

  try {
    const ShiftPlan plan =
        ShiftPlan::compile_conv(decomposition, config, in_channels, kernel);
    check_plan_invariants(plan, /*spatial=*/true);
  } catch (const flightnn::support::CheckFailure&) {
    // typed rejection: bad geometry, out-of-range filter/sign/shift
  }
  try {
    const ShiftPlan plan = ShiftPlan::compile_linear(decomposition, config);
    check_plan_invariants(plan, /*spatial=*/false);
  } catch (const flightnn::support::CheckFailure&) {
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  flightnn::support::set_check_policy(flightnn::support::CheckPolicy::kThrow);
  fuzz_compile(data, size);
  return 0;
}
