// Fuzz harness for the deployment-artifact loader (serialize/artifact).
// The artifact is the format that crosses trust boundaries -- a serving
// host maps whatever file it is pointed at -- so the loader must treat
// every byte as hostile. The harness feeds raw bytes to the full
// load_buffer path (header, checksum, section table, op records, deep plan
// validation, engine adoption); a typed ArtifactError or CheckFailure is
// the expected outcome for malformed input. Inputs the loader *accepts*
// are executed: a bounded-size network runs one zero image end to end, so
// any plan the validators let through is also proven safe to execute under
// the sanitizers (the kernels index plan streams unchecked by design).

#include <cstdint>
#include <vector>

#include "inference/network_program.hpp"
#include "serialize/artifact.hpp"
#include "support/check.hpp"
#include "tensor/tensor.hpp"

#include "fuzz_driver.hpp"

namespace {

using flightnn::inference::NetworkProgram;
using flightnn::inference::ProgramOp;
using flightnn::serialize::ArtifactError;
using flightnn::serialize::ArtifactModel;

// Accepted artifacts are attacker-shaped, so cap the work one input may
// demand before running it: geometry small enough that activations stay in
// the kilobyte range. Anything bigger is validated but not executed.
bool cheap_to_run(const NetworkProgram& program) {
  if (program.ops.size() > 256) return false;
  if (program.input_c * program.input_h * program.input_w > 4096) return false;
  for (const ProgramOp& op : program.ops) {
    if (op.out_channels > 512 || op.in_channels > 512) return false;
    if (op.kernel > 8 || op.window > 16) return false;
    if (op.padding > 8 || op.stride > 16) return false;
    if (op.plan.entries() > (1 << 16)) return false;
    if (op.weights.numel() > (1 << 16)) return false;
  }
  return true;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Expected rejections must throw, not abort, regardless of environment.
  flightnn::support::set_check_policy(flightnn::support::CheckPolicy::kThrow);
  try {
    const NetworkProgram program =
        flightnn::serialize::parse_artifact(data, size);
    if (!cheap_to_run(program)) return 0;
    const ArtifactModel model = ArtifactModel::load_buffer(data, size);
    const flightnn::tensor::Tensor image(flightnn::tensor::Shape{
        model.input_c(), model.input_h(), model.input_w()});
    try {
      (void)model.network().run(image);
    } catch (const flightnn::support::CheckFailure&) {
      // A validated artifact may still hit a runtime shape contract (e.g.
      // a residual join whose branches disagree); rejecting is fine, only
      // sanitizer findings count.
    }
  } catch (const ArtifactError&) {
    // clean typed rejection -- the expected outcome for hostile bytes
  } catch (const flightnn::support::CheckFailure&) {
    // contract check below the loader
  }
  return 0;
}
