#pragma once

// Shared entry-point shim for the fuzz harnesses. Each harness defines
// LLVMFuzzerTestOneInput; how it gets driven depends on the build:
//
//   - FLIGHTNN_FUZZ=ON (clang, the debug-fuzz preset): libFuzzer provides
//     main() and mutates inputs under ASan+UBSan. This is the exploration
//     mode that grows fuzz/corpus/.
//   - default (any compiler, including the portable GCC build): this header
//     provides a standalone main() that replays every file (or every file
//     inside every directory) passed on the command line exactly once. The
//     checked-in corpus replayed this way is the fuzz regression test that
//     runs in tier-1 ctest -- every past crasher stays fixed, on every
//     compiler, without a libFuzzer dependency.
//
// A harness returns 0 from LLVMFuzzerTestOneInput for both accepted and
// cleanly-rejected inputs; only undefined behavior (caught by the
// sanitizers) or an uncaught exception counts as a finding.

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

#if !defined(FLIGHTNN_FUZZ_LIBFUZZER)

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace flightnn::fuzz {

inline int replay_file(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "fuzz: cannot open %s\n", path.string().c_str());
    return 1;
  }
  std::vector<std::uint8_t> data((std::istreambuf_iterator<char>(file)),
                                 std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(data.data(), data.size());
  return 0;
}

}  // namespace flightnn::fuzz

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  int failures = 0;
  long replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const fs::path arg(argv[i]);
    if (fs::is_directory(arg)) {
      for (const auto& entry : fs::directory_iterator(arg)) {
        if (!entry.is_regular_file()) continue;
        failures += flightnn::fuzz::replay_file(entry.path());
        ++replayed;
      }
    } else {
      failures += flightnn::fuzz::replay_file(arg);
      ++replayed;
    }
  }
  std::fprintf(stderr, "fuzz: replayed %ld input(s), %d unreadable\n",
               replayed, failures);
  return failures == 0 ? 0 : 1;
}

#endif  // !FLIGHTNN_FUZZ_LIBFUZZER
