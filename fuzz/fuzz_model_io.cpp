// Fuzz harness for the model deserialization boundary (serialize/model_io).
// Both on-disk formats are parsed from fully hostile bytes:
//
//   - parse_packed: the deployment-pack format. On success the pack is
//     unpacked layer by layer (exercising the nibble walk against the
//     parser's consistency checks) and re-serialized, asserting the
//     parse -> serialize round trip is byte-identical -- a lossless-parser
//     invariant that catches fields the parser accepts but ignores.
//   - load_state: the training-checkpoint format, replayed against a small
//     real model so parameter/batch-norm/threshold counts are all exercised.
//
// Typed rejections (std::runtime_error from the parsers, CheckFailure from
// deeper contract checks) are the *expected* outcome for malformed input;
// only sanitizer findings and uncaught exception types count as crashes.

#include <cstring>
#include <exception>
#include <memory>
#include <stdexcept>
#include <vector>

#include "models/networks.hpp"
#include "nn/sequential.hpp"
#include "serialize/model_io.hpp"
#include "support/check.hpp"
#include "tensor/tensor.hpp"

#include "fuzz_driver.hpp"

namespace {

using flightnn::serialize::PackedModel;

// The checkpoint target: a tiny real network, built once. load_state only
// mutates tensor contents (never shapes), so reusing it across inputs is
// safe and keeps per-input cost flat.
flightnn::nn::Sequential& checkpoint_model() {
  static std::unique_ptr<flightnn::nn::Sequential> model = [] {
    flightnn::models::BuildOptions build;
    build.classes = 10;
    build.width_scale = 0.125F;
    build.seed = 7;
    return flightnn::models::build_network(flightnn::models::table1_network(1),
                                           build);
  }();
  return *model;
}

void fuzz_parse_packed(const std::vector<std::uint8_t>& buffer) {
  PackedModel model;
  try {
    model = flightnn::serialize::parse_packed(buffer);
  } catch (const std::runtime_error&) {
    return;  // clean rejection
  }
  // Accepted packs must satisfy the unpack preconditions the parser
  // guarantees: consistent nibble streams and bounded filter_k. Walk every
  // layer to prove it (ASan patrols the nibble reads). Out-of-budget
  // exponent codes are data-level rejections (invalid_argument, which also
  // covers CheckFailure), not crashes.
  for (const auto& layer : model.layers) {
    if (layer.filters <= 0 || layer.elements_per_filter <= 0) continue;
    if (layer.filters * layer.elements_per_filter > 1 << 20) continue;
    const flightnn::tensor::Shape shape{layer.filters,
                                        layer.elements_per_filter};
    try {
      (void)flightnn::serialize::unpack_layer(layer, model.pow2, shape);
    } catch (const std::invalid_argument&) {
    }
  }
  // Lossless-parser invariant: what the parser accepted re-serializes to
  // the exact input bytes.
  const std::vector<std::uint8_t> again =
      flightnn::serialize::serialize_packed(model);
  if (again.size() != buffer.size() ||
      (!buffer.empty() &&
       std::memcmp(again.data(), buffer.data(), buffer.size()) != 0)) {
    std::terminate();  // surfaced as a crash artifact
  }
}

void fuzz_load_state(const std::vector<std::uint8_t>& buffer) {
  try {
    flightnn::serialize::load_state(checkpoint_model(), buffer);
  } catch (const std::runtime_error&) {
    // clean rejection (shape/count mismatch, truncation, bad magic)
  } catch (const flightnn::support::CheckFailure&) {
    // contract check below the parser (e.g. tensor shape validation)
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Expected rejections must throw, not abort, regardless of environment.
  flightnn::support::set_check_policy(flightnn::support::CheckPolicy::kThrow);
  const std::vector<std::uint8_t> buffer(data, data + size);
  fuzz_parse_packed(buffer);
  fuzz_load_state(buffer);
  return 0;
}
