// Regenerates the checked-in seed corpus under fuzz/corpus/.
//
//   make_seed_corpus <output-dir>     (normally fuzz/corpus)
//
// Two kinds of seeds are emitted per harness:
//
//   - valid blobs produced by the repo's own serializers, so the fuzzers
//     start from deep inside the accepted grammar instead of spending their
//     budget rediscovering the magic header;
//   - one regression seed per parser hardening check (bad magic, truncation,
//     out-of-range exponent window, hostile layer count, k above k_max,
//     inconsistent nibble stream, exponent code above e_max, ...). Replaying
//     these in tier-1 ctest keeps every past finding fixed.
//
// Every seed is deterministic: rerunning this tool reproduces the corpus
// byte for byte.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/quantize_model.hpp"
#include "inference/network_program.hpp"
#include "models/networks.hpp"
#include "nn/sequential.hpp"
#include "serialize/artifact.hpp"
#include "serialize/model_io.hpp"

namespace fs = std::filesystem;

namespace {

using Bytes = std::vector<std::uint8_t>;

void write_seed(const fs::path& dir, const std::string& name,
                const Bytes& data) {
  std::ofstream file(dir / name, std::ios::binary);
  file.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size()));
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", (dir / name).string().c_str());
    std::exit(1);
  }
  std::printf("  %-28s %5zu bytes\n", name.c_str(), data.size());
}

// Little-endian u32 patch at a fixed offset (the pack header is
// magic[10] e_min@10 e_max@14 flush@18 k_max@22 layer_count@26).
void patch_u32(Bytes& data, std::size_t offset, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    data[offset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(value >> (8 * i));
  }
}

// Deterministic filler for the unstructured seeds (xorshift32).
Bytes pseudo_random(std::size_t count, std::uint32_t state) {
  Bytes data(count);
  for (auto& byte : data) {
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    byte = static_cast<std::uint8_t>(state);
  }
  return data;
}

// The same model fuzz_model_io replays checkpoints against; the valid
// checkpoint seed must load cleanly there.
std::unique_ptr<flightnn::nn::Sequential> harness_model() {
  flightnn::models::BuildOptions build;
  build.classes = 10;
  build.width_scale = 0.125F;
  build.seed = 7;
  return flightnn::models::build_network(flightnn::models::table1_network(1),
                                         build);
}

void emit_model_io(const fs::path& dir) {
  using flightnn::serialize::PackedLayer;
  using flightnn::serialize::PackedModel;

  auto model = harness_model();
  write_seed(dir, "ckpt_valid", flightnn::serialize::save_state(*model));

  flightnn::core::install_lightnn(*model, 2);
  const PackedModel packed = flightnn::serialize::pack_quantized(*model);
  const Bytes pack_valid = flightnn::serialize::serialize_packed(packed);
  write_seed(dir, "pack_valid", pack_valid);

  {
    Bytes ckpt = flightnn::serialize::save_state(*model);
    ckpt[0] ^= 0xFF;
    write_seed(dir, "ckpt_bad_magic", ckpt);
    ckpt[0] ^= 0xFF;
    ckpt.resize(ckpt.size() / 2);
    write_seed(dir, "ckpt_truncated", ckpt);
  }

  {
    Bytes mutated = pack_valid;
    mutated[0] ^= 0xFF;
    write_seed(dir, "pack_bad_magic", mutated);
  }
  {
    Bytes mutated = pack_valid;
    mutated.resize(mutated.size() * 2 / 3);
    write_seed(dir, "pack_truncated", mutated);
  }
  {
    Bytes mutated = pack_valid;
    patch_u32(mutated, 18, 2);  // flush_to_zero must be exactly 0 or 1
    write_seed(dir, "pack_flush_flag_2", mutated);
  }
  {
    Bytes mutated = pack_valid;
    patch_u32(mutated, 10, 0);  // e_min = -128, below exp2_int's range
    write_seed(dir, "pack_emin_oob", mutated);
  }
  {
    Bytes mutated = pack_valid;
    patch_u32(mutated, 26, 0xFFFFFFFFU);  // hostile up-front allocation
    write_seed(dir, "pack_huge_layer_count", mutated);
  }

  {
    // filter_k entry above the model-wide k_max.
    PackedModel hostile;
    hostile.k_max = 1;
    PackedLayer layer;
    layer.filters = 1;
    layer.elements_per_filter = 1;
    layer.filter_k = {3};
    layer.nibbles = {0x11};  // matches term_count so only the k check fires
    hostile.layers.push_back(layer);
    write_seed(dir, "pack_k_over_kmax",
               flightnn::serialize::serialize_packed(hostile));
  }
  {
    // Nibble stream longer than filter_k implies (smuggled payload).
    PackedModel hostile;
    hostile.k_max = 2;
    PackedLayer layer;
    layer.filters = 1;
    layer.elements_per_filter = 2;
    layer.filter_k = {1};        // 2 terms -> 1 nibble byte expected
    layer.nibbles = {0x11, 0x11};
    hostile.layers.push_back(layer);
    write_seed(dir, "pack_bad_nibble_len",
               flightnn::serialize::serialize_packed(hostile));
  }
  {
    // Parses cleanly, but the single nibble code names exponent e_min + 6,
    // above the pack's own e_max: unpack_layer must reject it.
    PackedModel hostile;
    hostile.pow2.e_min = -6;
    hostile.pow2.e_max = -4;
    hostile.k_max = 1;
    PackedLayer layer;
    layer.filters = 1;
    layer.elements_per_filter = 1;
    layer.filter_k = {1};
    layer.nibbles = {0x07};  // +2^(e_min + 6)
    hostile.layers.push_back(layer);
    write_seed(dir, "pack_exp_above_emax",
               flightnn::serialize::serialize_packed(hostile));
  }

  write_seed(dir, "empty", {});
  write_seed(dir, "random_256", pseudo_random(256, 0x5EEDU));
}

void emit_shift_plan(const fs::path& dir) {
  // Byte programs for fuzz_shift_plan's decoder: header is
  // { e_min, e_max_span, flush, filters, terms, in_channels, kernel,
  //   elements_per_filter }, then per term { filter, level, count, then
  //   count x { sign, exponent } }.
  write_seed(dir, "empty", {});
  write_seed(dir, "zeros_16", Bytes(16, 0));
  write_seed(dir, "valid_small",
             {5, 6, 1, 4, 2, 3, 3, 9,
              /*term0*/ 0, 1, 2, /*w*/ 1, 0xFB, /*w*/ 0xFF, 0xFC,
              /*term1*/ 3, 0, 1, /*w*/ 1, 0xFA});
  write_seed(dir, "oob_filter",
             {5, 6, 0, 2, 1, 1, 1, 4,
              /*term0*/ 0x7F, 0, 1, /*w*/ 1, 0xFB});
  write_seed(dir, "negative_filter",
             {5, 6, 0, 2, 1, 1, 1, 4,
              /*term0*/ 0x80, 0, 1, /*w*/ 1, 0xFB});
  write_seed(dir, "bad_sign",
             {5, 6, 0, 2, 1, 1, 1, 4,
              /*term0*/ 0, 0, 1, /*w*/ 5, 0xFB});
  write_seed(dir, "far_exponent",
             {5, 6, 0, 2, 1, 1, 1, 4,
              /*term0*/ 0, 0, 1, /*w*/ 1, 0x40});
  write_seed(dir, "zero_geometry",
             {5, 6, 0, 2, 1, 0, 0, 4,
              /*term0*/ 0, 0, 1, /*w*/ 1, 0xFB});
  write_seed(dir, "max_counts", pseudo_random(512, 0xF1A9U));
}

// One deterministic seed per corruption class of the artifact loader's
// validation ladder (header, checksum, section table, op records, plan
// streams), plus two valid artifacts -- a tiny VGG and a tiny ResNet (for
// residual-segment coverage) -- built by the repo's own compiler.
void emit_artifact(const fs::path& dir) {
  namespace ser = flightnn::serialize;
  using ser::ArtifactHeader;
  using ser::OpRecord;
  using ser::SectionDesc;
  using ser::SectionKind;

  const auto compile_blob = [](int network_id, float width_scale) {
    flightnn::models::BuildOptions build;
    build.classes = 4;
    build.width_scale = width_scale;
    build.seed = 7;
    auto model = flightnn::models::build_network(
        flightnn::models::table1_network(network_id), build);
    flightnn::core::install_lightnn(*model, 2);
    const auto program = flightnn::inference::compile_program(
        *model, flightnn::tensor::Shape{1, 3, 8, 8});
    return ser::build_artifact(program);
  };
  const Bytes vgg = compile_blob(4, 0.125F);
  write_seed(dir, "artifact_vgg_valid", vgg);
  write_seed(dir, "artifact_resnet_valid", compile_blob(2, 0.0625F));

  const auto header_of = [](const Bytes& blob) {
    ArtifactHeader header;
    std::memcpy(&header, blob.data(), sizeof(header));
    return header;
  };
  const auto patch_header = [&](Bytes blob, auto mutate) {
    ArtifactHeader header = header_of(blob);
    mutate(header);
    std::memcpy(blob.data(), &header, sizeof(header));
    return blob;
  };
  const auto section_at = [&](const Bytes& blob, std::size_t index) {
    SectionDesc desc;
    std::memcpy(&desc, blob.data() + sizeof(ArtifactHeader) +
                           index * sizeof(SectionDesc), sizeof(desc));
    return desc;
  };
  // Find a section by kind; exits if the fixture lacks it.
  const auto find_kind = [&](const Bytes& blob, SectionKind kind) {
    const ArtifactHeader header = header_of(blob);
    for (std::uint32_t i = 0; i < header.section_count; ++i) {
      const SectionDesc desc = section_at(blob, i);
      if (desc.kind == static_cast<std::uint32_t>(kind)) return desc;
    }
    std::fprintf(stderr, "artifact fixture lacks section kind %u\n",
                 static_cast<unsigned>(kind));
    std::exit(1);
  };
  const auto resealed = [](Bytes blob) {
    ser::rewrite_artifact_checksum(blob);
    return blob;
  };

  {
    Bytes mutated = vgg;
    mutated[0] ^= 0xFF;
    write_seed(dir, "artifact_bad_magic", mutated);
  }
  write_seed(dir, "artifact_bad_version",
             patch_header(vgg, [](ArtifactHeader& h) { h.version = 99; }));
  write_seed(dir, "artifact_bad_input_geom",
             patch_header(vgg, [](ArtifactHeader& h) { h.input_c = -1; }));
  {
    Bytes mutated = vgg;
    mutated.back() ^= 0x01;  // payload flip without reseal
    write_seed(dir, "artifact_bad_checksum", mutated);
  }
  {
    Bytes mutated = vgg;
    mutated.resize(sizeof(ArtifactHeader) / 2);
    write_seed(dir, "artifact_truncated_header", mutated);
    mutated = vgg;
    mutated.resize(mutated.size() - 48);
    write_seed(dir, "artifact_truncated_payload", mutated);
  }
  {
    Bytes mutated = vgg;  // misalign the first per-op section
    SectionDesc desc = section_at(mutated, 1);
    desc.offset += 4;
    std::memcpy(mutated.data() + sizeof(ArtifactHeader) + sizeof(SectionDesc),
                &desc, sizeof(desc));
    write_seed(dir, "artifact_section_misaligned", resealed(mutated));
  }
  {
    Bytes mutated = vgg;  // section range escaping the file
    SectionDesc desc = section_at(mutated, 1);
    desc.bytes = ~std::uint64_t{0} / 2;
    std::memcpy(mutated.data() + sizeof(ArtifactHeader) + sizeof(SectionDesc),
                &desc, sizeof(desc));
    write_seed(dir, "artifact_section_oob", resealed(mutated));
  }
  {
    Bytes mutated = vgg;  // first op record: unknown kind
    const SectionDesc program = find_kind(mutated, SectionKind::kProgram);
    OpRecord record;
    std::memcpy(&record, mutated.data() + program.offset, sizeof(record));
    record.kind = 0xAB;
    std::memcpy(mutated.data() + program.offset, &record, sizeof(record));
    write_seed(dir, "artifact_bad_op_kind", resealed(mutated));
  }
  {
    Bytes mutated = vgg;  // plan sign outside {-1, +1}
    const SectionDesc sign = find_kind(mutated, SectionKind::kPlanSign);
    mutated[sign.offset] = 5;
    write_seed(dir, "artifact_bad_sign", resealed(mutated));
  }
  {
    Bytes mutated = vgg;  // shift beyond the exponent window
    const SectionDesc shift = find_kind(mutated, SectionKind::kPlanShift);
    mutated[shift.offset] = 60;
    write_seed(dir, "artifact_bad_shift", resealed(mutated));
  }
  {
    Bytes mutated = vgg;  // non-monotone filter prefix
    const SectionDesc begin = find_kind(mutated, SectionKind::kPlanFilterBegin);
    std::int64_t hostile = -1;
    std::memcpy(mutated.data() + begin.offset + 8, &hostile, sizeof(hostile));
    write_seed(dir, "artifact_bad_filter_begin", resealed(mutated));
  }
  {
    Bytes mutated = vgg;  // overflow gain disagreeing with the entries
    const SectionDesc gain = find_kind(mutated, SectionKind::kPlanFilterGain);
    std::int64_t value = 0;
    std::memcpy(&value, mutated.data() + gain.offset, sizeof(value));
    value += 1;
    std::memcpy(mutated.data() + gain.offset, &value, sizeof(value));
    write_seed(dir, "artifact_bad_gain", resealed(mutated));
  }

  write_seed(dir, "empty", {});
  write_seed(dir, "random_512", pseudo_random(512, 0xA97FAC7U));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 1;
  }
  const fs::path root(argv[1]);
  const fs::path model_io = root / "model_io";
  const fs::path shift_plan = root / "shift_plan";
  const fs::path artifact = root / "artifact";
  fs::create_directories(model_io);
  fs::create_directories(shift_plan);
  fs::create_directories(artifact);
  std::printf("%s:\n", model_io.string().c_str());
  emit_model_io(model_io);
  std::printf("%s:\n", shift_plan.string().c_str());
  emit_shift_plan(shift_plan);
  std::printf("%s:\n", artifact.string().c_str());
  emit_artifact(artifact);
  return 0;
}
