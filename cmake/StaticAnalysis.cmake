# clang-tidy integration. When FLIGHTNN_ENABLE_CLANG_TIDY is ON the tidy
# command is stored in FLIGHTNN_CLANG_TIDY_COMMAND; src/CMakeLists.txt sets
# CMAKE_CXX_CLANG_TIDY from it so the gate covers the library code but not
# tests/bench (GTest/benchmark macro expansions drown the signal there).
# Checks live in the top-level .clang-tidy; warnings are promoted to errors
# so a tidy finding fails the build.

set(FLIGHTNN_CLANG_TIDY_COMMAND "" CACHE INTERNAL "clang-tidy command line")

if(FLIGHTNN_ENABLE_CLANG_TIDY)
  find_program(FLIGHTNN_CLANG_TIDY_EXE
      NAMES clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18
            clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14)
  if(NOT FLIGHTNN_CLANG_TIDY_EXE)
    message(FATAL_ERROR
        "FLIGHTNN_ENABLE_CLANG_TIDY=ON but clang-tidy was not found in PATH. "
        "Install clang-tidy or reconfigure with -DFLIGHTNN_ENABLE_CLANG_TIDY=OFF.")
  endif()
  set(FLIGHTNN_CLANG_TIDY_COMMAND
      "${FLIGHTNN_CLANG_TIDY_EXE};--warnings-as-errors=*"
      CACHE INTERNAL "clang-tidy command line")
  # Tidy needs a compilation database for header filtering in some setups.
  set(CMAKE_EXPORT_COMPILE_COMMANDS ON)
  message(STATUS "FLightNN: clang-tidy gate enabled (${FLIGHTNN_CLANG_TIDY_EXE})")
endif()
