# Wires FLIGHTNN_SANITIZE into every target configured after this point.
# Accepts a ;- or ,-separated list ("address;undefined", "thread", "memory").
# All sanitizer builds also force FLIGHTNN_DCHECK on (FLIGHTNN_FORCE_DCHECKS)
# so debug-only contracts are exercised under the same instrumentation, and
# disable sanitizer recovery so the first report fails the run.

if(FLIGHTNN_SANITIZE)
  string(REPLACE "," ";" _flightnn_san_list "${FLIGHTNN_SANITIZE}")

  foreach(_flightnn_clang_only memory integer)
    if("${_flightnn_clang_only}" IN_LIST _flightnn_san_list AND
       NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
      message(FATAL_ERROR
          "FLIGHTNN_SANITIZE=${_flightnn_clang_only} requires clang (current "
          "compiler: ${CMAKE_CXX_COMPILER_ID}). "
          "Use -DCMAKE_CXX_COMPILER=clang++.")
    endif()
  endforeach()
  if("thread" IN_LIST _flightnn_san_list AND
     ("address" IN_LIST _flightnn_san_list OR
      "memory" IN_LIST _flightnn_san_list))
    message(FATAL_ERROR
        "FLIGHTNN_SANITIZE: thread cannot be combined with address/memory.")
  endif()

  string(REPLACE ";" "," _flightnn_san "${_flightnn_san_list}")
  message(STATUS "FLightNN: sanitizers enabled: ${_flightnn_san}")

  add_compile_options(
    -fsanitize=${_flightnn_san}
    -fno-omit-frame-pointer
    -fno-sanitize-recover=all
    -g
  )
  add_link_options(-fsanitize=${_flightnn_san})
  # The integer group's unsigned-overflow check is carved out: unsigned
  # wraparound is defined behavior and the RNG (support/rng) and hash-style
  # mixing rely on it by design. Everything else in the group (implicit
  # truncations, sign changes, signed shifts) stays fatal.
  if("integer" IN_LIST _flightnn_san_list)
    add_compile_options(-fno-sanitize=unsigned-integer-overflow)
  endif()
  add_compile_definitions(FLIGHTNN_FORCE_DCHECKS=1)

  unset(_flightnn_san)
  unset(_flightnn_san_list)
endif()
