// Reproduces Table 6: FPGA resource utilization (BRAM / DSP / FF / LUT) and
// speedup for the largest layers of networks 7 and 8 under every quantized
// model. Purely structural -- no training required: the FLightNN rows use
// representative mean-k values matching the paper's FL7a/b and FL8a/b
// operating points.

#include <cstdio>

#include "bench_common.hpp"
#include "hw/fpga_model.hpp"
#include "support/table.hpp"

int main() {
  using namespace flightnn;
  bench::print_preamble("Table 6 (FPGA resource utilization, networks 7-8)");

  const hw::FpgaModel fpga;
  support::Table table({"ID", "Model", "BRAM", "DSP", "FF", "LUT",
                        "Bound", "Batch", "Speedup"});

  struct Row {
    const char* label;
    hw::QuantSpec spec;
  };

  for (int network_id : {7, 8}) {
    const auto network = models::table1_network(network_id);
    models::BuildOptions build;
    build.classes = network_id == 7 ? 100 : 50;
    build.act_bits = 0;
    auto model = models::build_network(network, build);
    const auto layer =
        hw::largest_layer(*model, tensor::Shape{1, 3, 32, 32});

    std::vector<Row> rows;
    const std::string id = std::to_string(network_id);
    if (network_id == 7) {
      rows = {{"Full", hw::QuantSpec::full()},
              {"L-2 8W8A", hw::QuantSpec::lightnn(2)},
              {"L-1 4W8A", hw::QuantSpec::lightnn(1)},
              {"FP 4W8A", hw::QuantSpec::fixed_point(4, 8)},
              {"FL7a", hw::QuantSpec::flightnn(1.05)},
              {"FL7b", hw::QuantSpec::flightnn(1.7)}};
    } else {
      // Table 6's network 8 block, like Table 5, is relative to L-2.
      rows = {{"L-2 8W8A", hw::QuantSpec::lightnn(2)},
              {"L-1 4W8A", hw::QuantSpec::lightnn(1)},
              {"FL8a", hw::QuantSpec::flightnn(1.7)},
              {"FL8b", hw::QuantSpec::flightnn(1.9)}};
    }

    const double baseline = fpga.evaluate(layer, rows.front().spec).throughput;
    table.add_separator();
    for (const auto& row : rows) {
      const auto report = fpga.evaluate(layer, row.spec);
      table.add_row({id, row.label, std::to_string(report.bram_used),
                     std::to_string(report.dsp_used),
                     std::to_string(report.ff_used),
                     std::to_string(report.lut_used),
                     report.compute_bound + (report.bram_bound ? "+BRAM" : ""),
                     std::to_string(report.batch),
                     support::format_speedup(report.throughput / baseline)});
    }
  }

  const auto& device = fpga.resources();
  table.add_separator();
  table.add_row({"", "Available", std::to_string(device.bram18),
                 std::to_string(device.dsp), std::to_string(device.ff),
                 std::to_string(device.lut), "", "", ""});
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "paper shape check: (F)LightNNs collapse DSP usage to the control\n"
      "constant and trade it for LUT; Full/FP are DSP-bound, shifts are\n"
      "fabric-bound with BRAM capping the batch.\n");
  return 0;
}
