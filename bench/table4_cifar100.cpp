// Reproduces Table 4: accuracy and FPGA throughput on CIFAR-100 for
// networks 6 and 7 (ResNet-18/128, ResNet-18/256).

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace flightnn;
  bench::print_preamble("Table 4 (CIFAR-100: accuracy, storage, throughput)");

  support::Table table(
      {"ID", "Model", "Accuracy(%)", "Storage(MB)", "Throughput(img/s)",
       "Speedup"});
  for (int network_id : {6, 7}) {
    auto config =
        bench::bench_experiment(network_id, data::cifar100_like(0.5F));
    const auto result = eval::run_experiment(config);
    table.add_separator();
    for (auto& row : eval::table_rows(result)) table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
