#pragma once

// Shared setup for the ablation benches: one small task and one small
// network so the ablations isolate the training-algorithm variable under
// test rather than model/task capacity.

#include <memory>

#include "bench_common.hpp"
#include "core/quantize_model.hpp"
#include "support/table.hpp"
#include "eval/storage.hpp"
#include "models/networks.hpp"

namespace flightnn::bench {

inline data::TrainTest ablation_task() {
  auto spec = data::cifar10_like(0.75F * bench_scale());
  spec.seed = 21;
  return data::make_synthetic(spec);
}

inline std::unique_ptr<nn::Sequential> ablation_model(std::uint64_t seed = 4) {
  models::BuildOptions build;
  build.classes = 10;
  build.width_scale = 0.25F;
  build.seed = seed;
  return models::build_network(models::table1_network(1), build);
}

struct AblationRow {
  std::string label;
  double accuracy = 0.0;
  double mean_k = 0.0;
  double storage_mb = 0.0;
};

inline AblationRow measure(const std::string& label, nn::Sequential& model,
                           const data::TrainTest& split,
                           core::TrainConfig train) {
  core::Trainer trainer(model, train);
  const auto fit = trainer.fit(split.train, split.test);
  AblationRow row;
  row.label = label;
  row.accuracy = fit.test_accuracy * 100.0;
  row.mean_k = eval::model_mean_k(model);
  row.storage_mb = eval::model_storage_bytes(model) / (1024.0 * 1024.0);
  return row;
}

inline void print_rows(const std::vector<AblationRow>& rows) {
  support::Table table({"Variant", "Accuracy(%)", "mean k", "Storage(MB)"});
  for (const auto& row : rows) {
    table.add_row({row.label, support::format_fixed(row.accuracy, 2),
                   support::format_fixed(row.mean_k, 2),
                   support::format_fixed(row.storage_mb, 4)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace flightnn::bench
