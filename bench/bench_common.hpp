#pragma once

// Shared configuration for the table/figure reproduction harnesses.
//
// All benches train reduced-size proxies of the paper's networks on
// synthetic datasets (see DESIGN.md "Substitutions"); hardware numbers come
// from the analytic FPGA/ASIC models evaluated on the *full-size*
// topologies. The FLIGHTNN_BENCH_SCALE environment variable (default 1.0)
// scales dataset sizes and epochs for quicker smoke runs, e.g.
//   FLIGHTNN_BENCH_SCALE=0.2 ./bench/table2_cifar10

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_json.hpp"
#include "core/trainer.hpp"
#include "eval/experiment.hpp"

namespace flightnn::bench {

inline float bench_scale() {
  const char* env = std::getenv("FLIGHTNN_BENCH_SCALE");
  if (env == nullptr) return 1.0F;
  const float scale = std::strtof(env, nullptr);
  return scale > 0.0F ? scale : 1.0F;
}

// Baseline training setup used by the table benches. Epochs scale with the
// global bench scale (at least 1).
inline core::TrainConfig bench_train_config(int epochs = 5) {
  core::TrainConfig train;
  train.epochs = std::max(1, static_cast<int>(epochs * bench_scale() + 0.5F));
  train.batch_size = 32;
  train.learning_rate = 3e-3F;
  train.threshold_learning_rate = 1e-3F;
  train.lr_decay = 0.85F;
  train.seed = 7;
  return train;
}

// Width scale each Table-1 network trains at in the benches: large nets get
// smaller proxies so every bench finishes in minutes on one core. Hardware
// numbers always come from the unscaled topology.
inline float bench_width_scale(int network_id) {
  switch (network_id) {
    case 3: return 0.1F;   // VGG-7/512
    case 7: return 0.1F;   // ResNet-18/256
    case 8: return 0.15F;  // ResNet-10/256
    case 2:
    case 6: return 0.2F;   // ResNet-18/128
    default: return 0.25F;
  }
}

// Standard experiment config for one network on one dataset.
inline eval::ExperimentConfig bench_experiment(int network_id,
                                               data::DatasetSpec dataset,
                                               float width_scale = 0.0F) {
  if (width_scale <= 0.0F) width_scale = bench_width_scale(network_id);
  eval::ExperimentConfig config;
  config.network_id = network_id;
  dataset.train_size = std::max<std::int64_t>(
      64, static_cast<std::int64_t>(dataset.train_size * bench_scale()));
  dataset.test_size = std::max<std::int64_t>(
      64, static_cast<std::int64_t>(dataset.test_size * bench_scale()));
  config.dataset = dataset;
  config.train = bench_train_config();
  config.build.width_scale = width_scale;
  config.seed = 1;
  return config;
}

// The three calibrated FLightNN operating points used by the figure benches
// (see EXPERIMENTS.md "Calibration"): dense stays at k ~ 2 (L-2-like),
// balanced mixes 1- and 2-shift filters, sparse drives nearly all filters
// to one shift (L-1-like storage).
struct FlOperatingPoint {
  const char* name;
  std::vector<float> lambdas;
  float threshold_lr;
};

inline std::vector<FlOperatingPoint> fl_operating_points() {
  return {
      {"FL-dense", {1e-5F, 3e-5F}, 1e-3F},
      {"FL-balanced", {8e-5F, 2.4e-4F}, 0.05F},
      {"FL-sparse", {1e-5F, 1e-3F}, 0.1F},
  };
}

inline void print_preamble(const char* what) {
  std::printf("== FLightNN reproduction: %s ==\n", what);
  std::printf(
      "substrate: synthetic datasets + analytic ZC706 FPGA / 65nm ASIC "
      "models (DESIGN.md); bench scale %.2f\n\n",
      bench_scale());
}

}  // namespace flightnn::bench
