// Reproduces Fig. 6: the accuracy-storage Pareto front on CIFAR-100 for
// LightNN-1, LightNN-2 and FLightNN across networks with varied filter
// counts (width sweep). The paper's claim: the FLightNN front is an upper
// bound on the LightNN-only front (it pushes the front, not just fills it).
// We verify with the hypervolume indicator.

#include <cstdio>

#include "bench_common.hpp"
#include "core/quantize_model.hpp"
#include "eval/pareto.hpp"
#include "eval/storage.hpp"

int main() {
  using namespace flightnn;
  bench::print_preamble("Fig. 6 (accuracy-storage Pareto, width sweep)");

  auto dataset_spec = data::cifar100_like(0.4F * bench::bench_scale());
  const auto split = data::make_synthetic(dataset_spec);
  const auto network = models::table1_network(6);

  std::vector<eval::ParetoPoint> lightnn_points, flightnn_points;
  std::printf("family,width_scale,storage_MB,accuracy_pct,mean_k\n");

  for (float width_scale : {0.1F, 0.2F, 0.3F}) {
    for (int family = 0; family < 3; ++family) {  // 0: L-1, 1: L-2, 2: FL
      models::BuildOptions build;
      build.in_channels = dataset_spec.channels;
      build.classes = dataset_spec.classes;
      build.width_scale = width_scale;
      build.seed = 3;
      auto model = models::build_network(network, build);
      const char* label = "";
      auto train = bench::bench_train_config(4);
      switch (family) {
        case 0:
          core::install_lightnn(*model, 1);
          label = "L-1";
          break;
        case 1:
          core::install_lightnn(*model, 2);
          label = "L-2";
          break;
        default: {
          core::FLightNNConfig fl;
          fl.lambdas = {8e-5F, 2.4e-4F};  // the balanced operating point
          core::install_flightnn(*model, fl);
          train.threshold_learning_rate = 0.05F;
          label = "FL";
          break;
        }
      }
      core::Trainer trainer(*model, train);
      const auto fit = trainer.fit(split.train, split.test);
      const double storage_mb =
          eval::model_storage_bytes(*model) / (1024.0 * 1024.0);
      const double accuracy = fit.test_accuracy * 100.0;
      std::printf("%s,%.2f,%.4f,%.2f,%.2f\n", label, width_scale, storage_mb,
                  accuracy, eval::model_mean_k(*model));
      eval::ParetoPoint point{storage_mb, accuracy, label};
      if (family == 2) flightnn_points.push_back(point);
      else lightnn_points.push_back(point);
    }
  }

  // Hypervolume comparison (reference: worst cost / worst quality overall).
  double ref_cost = 0.0, ref_quality = 1e9;
  for (const auto* points : {&lightnn_points, &flightnn_points}) {
    for (const auto& p : *points) {
      ref_cost = std::max(ref_cost, p.cost);
      ref_quality = std::min(ref_quality, p.quality);
    }
  }
  const double hv_lightnn =
      eval::hypervolume(lightnn_points, ref_cost, ref_quality);
  auto combined = lightnn_points;
  combined.insert(combined.end(), flightnn_points.begin(), flightnn_points.end());
  const double hv_with_fl = eval::hypervolume(combined, ref_cost, ref_quality);

  std::printf("\nhypervolume LightNN-only front: %.4f\n", hv_lightnn);
  std::printf("hypervolume with FLightNN points: %.4f\n", hv_with_fl);
  std::printf(
      "paper shape check (Fig. 6): adding FLightNN points never lowers and\n"
      "typically raises the front's hypervolume -- FL pushes the Pareto "
      "front.\n");
  return 0;
}
