// Ablation 3 (DESIGN.md Sec. 5): the group-lasso regularizer on residual
// norms (Sec. 4.3). Compare the paper's regularizer against no
// regularization and against plain L2 weight decay of matched strength.
// Only the group-lasso on residuals should reduce mean k (it pulls residual
// norms below the thresholds); L2 shrinks weights but not specifically the
// residuals.

#include "ablation_common.hpp"

int main() {
  using namespace flightnn;
  bench::print_preamble("ablation: group-lasso residual reg vs none vs L2");

  const auto split = bench::ablation_task();
  std::vector<bench::AblationRow> rows;

  // All three variants share the same threshold learning rate so the only
  // difference is the regularizer acting on the weights.
  auto base_train = bench::bench_train_config(5);
  base_train.threshold_learning_rate = 0.05F;
  {
    auto model = bench::ablation_model();
    core::FLightNNConfig fl;
    fl.lambdas = {8e-5F, 2.4e-4F};
    core::install_flightnn(*model, fl);
    rows.push_back(bench::measure("group lasso on residuals (paper)", *model,
                                  split, base_train));
  }
  {
    auto model = bench::ablation_model();
    core::FLightNNConfig fl;
    fl.lambdas = {0.0F, 0.0F};
    core::install_flightnn(*model, fl);
    rows.push_back(bench::measure("no regularization", *model, split,
                                  base_train));
  }
  {
    auto model = bench::ablation_model();
    core::FLightNNConfig fl;
    fl.lambdas = {0.0F, 0.0F};
    core::install_flightnn(*model, fl);
    auto train = base_train;
    train.weight_decay = 1e-4F;  // plain L2 via the optimizer
    rows.push_back(bench::measure("plain L2 weight decay", *model, split, train));
  }
  bench::print_rows(rows);
  std::printf(
      "shape check: only the residual group lasso moves mean k below 2;\n"
      "the other variants stay at the k = 2 initialization.\n");
  return 0;
}
