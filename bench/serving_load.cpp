// Open-loop load generator for the serving runtime: sweeps offered QPS
// against a serving::Server and reports the traffic-shaped metrics the
// ROADMAP's "millions of users" north star needs -- p50/p95/p99 latency,
// reject rate under admission control, achieved vs offered throughput,
// saturation throughput, and the dynamic-batch-size histogram the batcher
// actually executed. Open loop means arrivals follow a fixed schedule
// derived from the offered rate regardless of completions, so queueing
// delay shows up in the latency percentiles instead of silently throttling
// the generator (the FINN-R-style deployment view of quantized inference).
//
//   $ ./bench/serving_load [--threads N] [--max-batch B] [--delay-ms D]
//                          [--queue Q] [--duration S] [--width-scale S]
//                          [--json PATH] [--smoke]
//
// Offered rates are chosen relative to a measured capacity estimate (one
// full max_batch request timed directly on the BatchRunner), so the sweep
// brackets saturation on any machine. Requests carry 1-4 images, cycling,
// to mimic production per-client payloads. Results land in
// BENCH_serving.json stamped with the git revision.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/quantize_model.hpp"
#include "inference/quantized_network.hpp"
#include "inference/shift_kernels.hpp"
#include "models/networks.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/inference_request.hpp"
#include "runtime/thread_pool.hpp"
#include "serving/server.hpp"
#include "support/argparse.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace flightnn;
using Clock = std::chrono::steady_clock;

double percentile(std::vector<double>& sorted_values, double p) {
  if (sorted_values.empty()) return 0.0;
  const auto n = static_cast<double>(sorted_values.size());
  auto index = static_cast<std::size_t>(std::ceil(p * n)) - 1;
  index = std::min(index, sorted_values.size() - 1);
  return sorted_values[index];
}

struct LevelResult {
  double offered_frac = 0.0;
  double offered_request_s = 0.0;
  double offered_img_s = 0.0;
  std::int64_t offered = 0;
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;
  double reject_rate = 0.0;
  double achieved_img_s = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch = 0.0;
  std::vector<std::int64_t> batch_histogram;
};

// Drive one offered-QPS level against a fresh server. The generator thread
// is the calling thread: submissions follow the precomputed schedule and
// never wait on completions (open loop); futures are redeemed afterwards.
LevelResult run_level(const runtime::BatchRunner& runner,
                      const serving::ServerConfig& config,
                      const std::vector<runtime::InferenceRequest>& templates,
                      double offered_request_s, double duration_s) {
  serving::Server server(runner, config);
  const auto interarrival =
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(1.0 / offered_request_s));

  std::vector<std::future<runtime::InferenceResult>> futures;
  std::vector<double> request_images;
  LevelResult level;
  const auto start = Clock::now();
  const auto end = start + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(duration_s));
  std::int64_t i = 0;
  for (;;) {
    const auto arrival = start + i * interarrival;
    if (arrival >= end) break;
    std::this_thread::sleep_until(arrival);
    const auto& source =
        templates[static_cast<std::size_t>(i) % templates.size()];
    runtime::InferenceRequest request;
    request.id = static_cast<std::uint64_t>(i);
    request.images = source.images;  // tensor copies draw from the pool
    ++level.offered;
    auto submission = server.submit(std::move(request));
    if (submission.status == serving::SubmitStatus::Ok) {
      ++level.accepted;
      futures.push_back(std::move(submission.result));
      request_images.push_back(
          static_cast<double>(source.images.size()));
    } else {
      ++level.rejected;
    }
    ++i;
  }

  // Redeem every accepted future; latency is the per-request queue wait
  // plus the fused batch's compute time, as reported by the result itself.
  std::vector<double> latencies_ms;
  latencies_ms.reserve(futures.size());
  double completed_images = 0.0;
  for (std::size_t f = 0; f < futures.size(); ++f) {
    const runtime::InferenceResult result = futures[f].get();
    latencies_ms.push_back((result.timing.queue_seconds +
                            result.timing.compute_seconds) *
                           1e3);
    completed_images += request_images[f];
  }
  const auto drained = Clock::now();
  server.shutdown();

  const auto stats = server.stats();
  const double wall = std::chrono::duration<double>(drained - start).count();
  level.offered_request_s = offered_request_s;
  level.reject_rate =
      level.offered > 0
          ? static_cast<double>(level.rejected) /
                static_cast<double>(level.offered)
          : 0.0;
  level.achieved_img_s = wall > 0.0 ? completed_images / wall : 0.0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  level.p50_ms = percentile(latencies_ms, 0.50);
  level.p95_ms = percentile(latencies_ms, 0.95);
  level.p99_ms = percentile(latencies_ms, 0.99);
  level.batch_histogram = stats.batch_size_histogram;
  std::int64_t batched_images = 0;
  for (std::size_t k = 0; k < level.batch_histogram.size(); ++k) {
    batched_images +=
        static_cast<std::int64_t>(k) * level.batch_histogram[k];
  }
  level.mean_batch = stats.batches > 0
                         ? static_cast<double>(batched_images) /
                               static_cast<double>(stats.batches)
                         : 0.0;
  return level;
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser parser("serving_load",
                            "open-loop QPS sweep against the serving runtime");
  parser.add_flag("--threads", "runtime pool size (0 = env/hardware default)",
                  "0");
  parser.add_flag("--max-batch", "dynamic batcher flush size (images)", "8");
  parser.add_flag("--delay-ms", "dynamic batcher flush deadline (ms)", "2");
  parser.add_flag("--queue", "admission bound (queued images)", "64");
  parser.add_flag("--duration", "seconds of offered load per level", "2");
  parser.add_flag("--width-scale", "channel-width multiplier of network 1",
                  "0.25");
  parser.add_flag("--json", "result file path", "BENCH_serving.json");
  std::vector<std::string> args(argv + 1, argv + argc);
  const auto smoke_it = std::find(args.begin(), args.end(), "--smoke");
  const bool smoke = smoke_it != args.end();
  if (smoke) args.erase(smoke_it);
  if (!parser.parse(args)) {
    std::fprintf(stderr,
                 "%s\n%s  --smoke: CI-sized run (short levels, 2-point sweep)\n",
                 parser.error().c_str(), parser.usage().c_str());
    return 1;
  }
  runtime::set_num_threads(parser.get_int("--threads"));
  const double duration_s =
      smoke ? 0.3 : parser.get_double("--duration");
  const std::vector<double> fractions =
      smoke ? std::vector<double>{0.5, 1.2}
            : std::vector<double>{0.2, 0.5, 0.8, 1.1, 1.5};

  serving::ServerConfig config;
  config.max_batch = parser.get_int("--max-batch");
  config.max_queue_delay_s = parser.get_double("--delay-ms") * 1e-3;
  config.max_queue_images =
      static_cast<std::size_t>(parser.get_int("--queue"));

  models::BuildOptions build;
  build.classes = 10;
  build.width_scale = static_cast<float>(parser.get_double("--width-scale"));
  build.seed = 1;
  auto model = models::build_network(models::table1_network(1), build);
  core::install_lightnn(*model, 2);
  const auto network = inference::QuantizedNetwork::compile(
      *model, tensor::Shape{1, 3, 32, 32});
  const runtime::BatchRunner runner(network);

  // Request templates: 1-4 images each, cycling, seeded once.
  support::Rng rng(2);
  std::vector<runtime::InferenceRequest> templates;
  double images_per_request = 0.0;
  for (int t = 0; t < 8; ++t) {
    runtime::InferenceRequest request;
    const int images = t % 4 + 1;
    for (int i = 0; i < images; ++i) {
      request.images.push_back(
          tensor::Tensor::randn(tensor::Shape{3, 32, 32}, rng));
    }
    images_per_request += images;
    templates.push_back(std::move(request));
  }
  images_per_request /= static_cast<double>(templates.size());

  // Capacity estimate: one full max_batch request timed directly on the
  // runner (median of repeats). The sweep offers fractions of this, so it
  // brackets saturation on fast and slow machines alike.
  runtime::InferenceRequest probe;
  for (int i = 0; i < config.max_batch; ++i) {
    probe.images.push_back(
        tensor::Tensor::randn(tensor::Shape{3, 32, 32}, rng));
  }
  runtime::InferenceResult probe_result;
  runner.run(probe, probe_result);  // warm-up
  std::vector<double> probe_samples;
  const int probe_repeats = smoke ? 3 : 9;
  for (int r = 0; r < probe_repeats; ++r) {
    runner.run(probe, probe_result);
    probe_samples.push_back(probe_result.timing.compute_seconds);
  }
  std::sort(probe_samples.begin(), probe_samples.end());
  const double batch_seconds = probe_samples[probe_samples.size() / 2];
  const double capacity_img_s =
      static_cast<double>(config.max_batch) / batch_seconds;
  runtime::InferenceRequest single;
  single.images.push_back(probe.images[0]);
  runtime::InferenceResult single_result;
  runner.run(single, single_result);
  runner.run(single, single_result);
  const double single_image_ms =
      single_result.timing.compute_seconds * 1e3;

  std::printf(
      "serving config: threads=%d max_batch=%d max_queue_delay=%.1fms "
      "queue_bound=%zu images\n",
      runtime::num_threads(), config.max_batch,
      config.max_queue_delay_s * 1e3, config.max_queue_images);
  std::printf(
      "capacity estimate: %.1f img/s (full batch of %d in %.2f ms); "
      "single image %.2f ms\n\n",
      capacity_img_s, config.max_batch, batch_seconds * 1e3,
      single_image_ms);

  support::Table table({"offered img/s", "frac", "achieved img/s", "p50 ms",
                        "p95 ms", "p99 ms", "reject %", "mean batch"});
  std::vector<std::string> sweep_json;
  double saturation_img_s = 0.0;
  for (const double frac : fractions) {
    const double offered_img_s = capacity_img_s * frac;
    const double offered_request_s = offered_img_s / images_per_request;
    const LevelResult level =
        run_level(runner, config, templates, offered_request_s, duration_s);
    saturation_img_s = std::max(saturation_img_s, level.achieved_img_s);
    table.add_row({support::format_fixed(offered_img_s, 1),
                   support::format_fixed(frac, 2),
                   support::format_fixed(level.achieved_img_s, 1),
                   support::format_fixed(level.p50_ms, 2),
                   support::format_fixed(level.p95_ms, 2),
                   support::format_fixed(level.p99_ms, 2),
                   support::format_fixed(level.reject_rate * 100.0, 1),
                   support::format_fixed(level.mean_batch, 2)});

    bench::JsonObject point;
    point.add_number("offered_frac", frac);
    point.add_number("offered_img_per_s", offered_img_s);
    point.add_number("offered_request_per_s", offered_request_s);
    point.add_int("offered", level.offered);
    point.add_int("accepted", level.accepted);
    point.add_int("rejected", level.rejected);
    point.add_number("reject_rate", level.reject_rate);
    point.add_number("achieved_img_per_s", level.achieved_img_s);
    point.add_number("p50_ms", level.p50_ms);
    point.add_number("p95_ms", level.p95_ms);
    point.add_number("p99_ms", level.p99_ms);
    point.add_number("mean_batch", level.mean_batch);
    std::vector<std::string> histogram;
    for (const std::int64_t count : level.batch_histogram) {
      histogram.push_back(std::to_string(count));
    }
    point.add("batch_size_histogram", bench::json_array(histogram));
    sweep_json.push_back(point.to_string(2));
  }

  std::printf("%s\nsaturation throughput: %.1f img/s%s\n",
              table.to_string().c_str(), saturation_img_s,
              smoke ? " (smoke)" : "");

  bench::JsonObject out;
  out.add_string("bench", "serving");
  out.add_string("git_sha", bench::git_sha());
  out.add_bool("smoke", smoke);
  out.add_int("threads", runtime::num_threads());
  out.add_int("max_batch", config.max_batch);
  out.add_number("max_queue_delay_ms", config.max_queue_delay_s * 1e3);
  out.add_int("max_queue_images",
              static_cast<long long>(config.max_queue_images));
  out.add_number("duration_s_per_level", duration_s);
  out.add_number("width_scale", parser.get_double("--width-scale"));
  out.add_number("images_per_request_mean", images_per_request);
  out.add_number("capacity_est_img_per_s", capacity_img_s);
  out.add_number("single_image_ms", single_image_ms);
  out.add("qps_sweep", bench::json_array(sweep_json));
  out.add_number("saturation_img_per_s", saturation_img_s);
  bench::add_host_info(
      out, inference::kernel_tier_name(inference::active_shift_kernels().tier));
  const std::string json_path = parser.get("--json");
  if (!bench::write_json_file(json_path, out)) {
    std::fprintf(stderr, "FATAL: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
