// Ablation 1 (DESIGN.md Sec. 5): the sigmoid-relaxed threshold gradient.
// The paper's differentiable k-selection trains the thresholds t; the
// ablation freezes them at their initialization (threshold learning rate 0),
// so k adapts only through the regularizer shrinking residual norms.
// Trainable thresholds should find sparser / better-balanced operating
// points for the same lambda.

#include "ablation_common.hpp"

int main() {
  using namespace flightnn;
  bench::print_preamble("ablation: trainable vs frozen thresholds");

  const auto split = bench::ablation_task();
  std::vector<bench::AblationRow> rows;

  for (const bool trainable : {true, false}) {
    auto model = bench::ablation_model();
    core::FLightNNConfig fl;
    fl.lambdas = {8e-5F, 2.4e-4F};  // balanced operating point
    core::install_flightnn(*model, fl);
    auto train = bench::bench_train_config(5);
    train.threshold_learning_rate = trainable ? 0.05F : 0.0F;
    rows.push_back(bench::measure(
        trainable ? "trainable thresholds (paper)" : "frozen thresholds",
        *model, split, train));
  }
  bench::print_rows(rows);
  return 0;
}
