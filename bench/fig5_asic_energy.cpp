// Reproduces Fig. 5: accuracy vs ASIC computational energy (largest layer,
// one image) for all eight networks. Accuracy comes from training reduced
// proxies; energy from the 65nm-class AsicModel on the full-size topology.
// Output is one CSV-like block per network: exactly the scatter data behind
// each subplot.

#include <cstdio>

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace flightnn;
  bench::print_preamble("Fig. 5 (accuracy vs ASIC energy, all 8 networks)");

  struct NetPlan {
    int id;
    data::DatasetSpec dataset;
    int top_k;
    bool include_full_fp;
  };
  const std::vector<NetPlan> plans = {
      {1, data::cifar10_like(0.5F), 1, true},
      {2, data::cifar10_like(0.5F), 1, true},
      {3, data::cifar10_like(0.5F), 1, true},
      {4, data::svhn_like(0.5F), 1, true},
      {5, data::svhn_like(0.5F), 1, true},
      {6, data::cifar100_like(0.5F), 1, true},
      {7, data::cifar100_like(0.5F), 1, true},
      {8, data::imagenet_like(0.6F), 5, false},
  };

  for (const auto& plan : plans) {
    auto config = bench::bench_experiment(plan.id, plan.dataset);
    config.top_k = plan.top_k;
    // The paper's Fig. 5 omits Full everywhere (off-scale) and FP for net 8.
    config.include_full = false;
    config.include_fixed_point = plan.include_full_fp;
    const auto result = eval::run_experiment(config);

    std::printf("# network %d (%s, %s)\n", plan.id, plan.dataset.name.c_str(),
                plan.id == 8 ? "top-5" : "top-1");
    std::printf("model,energy_uJ,accuracy_pct,mean_k\n");
    for (const auto& variant : result.variants) {
      std::printf("%s,%.4f,%.2f,%.2f\n", variant.label.c_str(),
                  variant.energy_uj, variant.accuracy, variant.mean_k);
    }
    std::printf("\n");
  }
  std::printf(
      "paper shape check: per network, energy ordering L-1 < FP < L-2 with\n"
      "FLightNNs interpolating; accuracy ordering roughly the reverse, so\n"
      "FL points fill the Pareto gap between L-1 and L-2 (Fig. 5).\n");
  return 0;
}
