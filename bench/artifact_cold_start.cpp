// Cold-start microbench for the deployment artifact (serialize/artifact).
//
// Measures the wall-clock cost of bringing a servable network up from disk
// along the two supported paths:
//
//   checkpoint: build_network + install_lightnn + load_state (stream-parse
//               of every tensor) + QuantizedNetwork::compile (requantize +
//               shift-plan compilation from scratch)
//   artifact:   ArtifactModel::load (mmap + O(#sections) validation; plan
//               streams are zero-copy views into the mapping)
//
// Both paths must produce byte-identical logits -- the bench memcmp-checks
// them on a handful of images and exits nonzero on any mismatch, so a wrong
// artifact can never post a good number. Results go to BENCH_artifact.json.
//
// Usage: artifact_cold_start [--width-scale W] [--repeats N]
//                            [--json PATH] [--smoke]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/quantize_model.hpp"
#include "inference/network_program.hpp"
#include "inference/quantized_network.hpp"
#include "inference/shift_kernels.hpp"
#include "models/networks.hpp"
#include "runtime/thread_pool.hpp"
#include "serialize/artifact.hpp"
#include "serialize/model_io.hpp"
#include "support/argparse.hpp"
#include "support/rng.hpp"
#include "tensor/tensor.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define FLIGHTNN_BENCH_HAS_PID 1
#endif

namespace flightnn {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr std::int64_t kChannels = 3;
constexpr std::int64_t kHeight = 32;
constexpr std::int64_t kWidth = 32;

std::unique_ptr<nn::Sequential> fresh_model(float width_scale) {
  models::BuildOptions build;
  build.classes = 10;
  build.width_scale = width_scale;
  build.seed = 1;
  auto model = models::build_network(models::table1_network(1), build);
  core::install_lightnn(*model, 2);
  return model;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// One full checkpoint cold start: stream-parse the state file into a fresh
// model, then requantize and compile the shift plans. Returns the network so
// the caller can check logits; *elapsed_ms receives the timing.
inference::QuantizedNetwork checkpoint_cold_start(const std::string& path,
                                                  float width_scale,
                                                  double* elapsed_ms) {
  const auto start = std::chrono::steady_clock::now();
  auto model = fresh_model(width_scale);
  serialize::load_state(*model, path);
  auto network =
      inference::QuantizedNetwork::compile(*model,
                                           Shape{1, kChannels, kHeight, kWidth});
  *elapsed_ms = ms_since(start);
  return network;
}

std::vector<std::uint8_t> logits_bytes(const inference::QuantizedNetwork& net,
                                       const std::vector<Tensor>& images) {
  std::vector<std::uint8_t> bytes;
  for (const Tensor& image : images) {
    const Tensor logits = net.run(image);
    const auto* raw = reinterpret_cast<const std::uint8_t*>(logits.data());
    bytes.insert(bytes.end(), raw,
                 raw + static_cast<std::size_t>(logits.numel()) *
                           sizeof(float));
  }
  return bytes;
}

}  // namespace
}  // namespace flightnn

int main(int argc, char** argv) {
  using namespace flightnn;

  support::ArgParser parser("artifact_cold_start",
                            "checkpoint vs mmap-artifact cold-start latency");
  parser.add_flag("--width-scale", "channel-width multiplier of network 1",
                  "0.5");
  parser.add_flag("--repeats", "timed repetitions per path (best-of)", "15");
  parser.add_flag("--json", "result file path", "BENCH_artifact.json");
  std::vector<std::string> args(argv + 1, argv + argc);
  const auto smoke_it = std::find(args.begin(), args.end(), "--smoke");
  const bool smoke = smoke_it != args.end();
  if (smoke) args.erase(smoke_it);
  if (!parser.parse(args)) {
    std::fprintf(stderr, "%s\n%s  --smoke: CI-sized run (3 repeats)\n",
                 parser.error().c_str(), parser.usage().c_str());
    return 1;
  }
  runtime::set_num_threads(1);
  const auto width_scale =
      static_cast<float>(parser.get_double("--width-scale"));
  const int repeats = smoke ? 3 : std::max(1, parser.get_int("--repeats"));

#ifdef FLIGHTNN_BENCH_HAS_PID
  const std::string tag = std::to_string(static_cast<long>(::getpid()));
#else
  const std::string tag = "0";
#endif
  const std::string ckpt_path = "/tmp/flightnn_bench_" + tag + ".ckpt";
  const std::string artifact_path = "/tmp/flightnn_bench_" + tag + ".flnart";

  // Stage both files once. The artifact is compiled from the *same* model
  // instance the checkpoint captures, so the two cold-start paths race to
  // reconstruct the identical network.
  auto model = fresh_model(width_scale);
  serialize::save_state(*model, ckpt_path);
  const inference::NetworkProgram program = inference::compile_program(
      *model, Shape{1, kChannels, kHeight, kWidth});
  serialize::save_artifact(program, artifact_path);
  const std::vector<std::uint8_t> artifact_blob =
      serialize::build_artifact(program);
  const std::vector<std::uint8_t> ckpt_blob = serialize::save_state(*model);
  model.reset();

  std::printf("== FLightNN artifact cold start ==\n");
  std::printf("network 1 (VGG-7 proxy) width %.3f, input %lldx%lldx%lld\n",
              static_cast<double>(width_scale),
              static_cast<long long>(kChannels),
              static_cast<long long>(kHeight),
              static_cast<long long>(kWidth));
  std::printf("checkpoint %zu bytes, artifact %zu bytes, repeats %d%s\n\n",
              ckpt_blob.size(), artifact_blob.size(), repeats,
              smoke ? " (smoke)" : "");

  // Correctness gate before any timing: both paths must agree bit-for-bit.
  support::Rng rng(4242);
  std::vector<Tensor> images;
  for (int i = 0; i < 4; ++i) {
    images.push_back(Tensor::randn(Shape{kChannels, kHeight, kWidth}, rng));
  }
  double first_ckpt_ms = 0.0;
  const auto reference =
      checkpoint_cold_start(ckpt_path, width_scale, &first_ckpt_ms);
  const auto reference_logits = logits_bytes(reference, images);
  {
    const serialize::ArtifactModel artifact =
        serialize::ArtifactModel::load(artifact_path);
    const auto artifact_logits = logits_bytes(artifact.network(), images);
    if (artifact_logits.size() != reference_logits.size() ||
        std::memcmp(artifact_logits.data(), reference_logits.data(),
                    reference_logits.size()) != 0) {
      std::fprintf(stderr,
                   "FATAL: artifact logits differ from checkpoint logits\n");
      std::remove(ckpt_path.c_str());
      std::remove(artifact_path.c_str());
      return 1;
    }
  }

  // Timed runs. Best-of reporting: cold start is a latency number and the
  // interesting figure is the cost of the work itself, not scheduler noise;
  // the file cache is warm for both paths after the staging writes above.
  double best_ckpt_ms = first_ckpt_ms;
  double best_artifact_ms = 1e300;
  for (int i = 0; i < repeats; ++i) {
    double elapsed = 0.0;
    const auto net = checkpoint_cold_start(ckpt_path, width_scale, &elapsed);
    (void)net;
    best_ckpt_ms = std::min(best_ckpt_ms, elapsed);
  }
  for (int i = 0; i < repeats; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const serialize::ArtifactModel artifact =
        serialize::ArtifactModel::load(artifact_path);
    best_artifact_ms = std::min(best_artifact_ms, ms_since(start));
  }
  std::remove(ckpt_path.c_str());
  std::remove(artifact_path.c_str());

  const double speedup = best_ckpt_ms / best_artifact_ms;
  std::printf("checkpoint cold start: %9.3f ms (best of %d)\n", best_ckpt_ms,
              repeats);
  std::printf("artifact   cold start: %9.3f ms (best of %d)\n",
              best_artifact_ms, repeats);
  std::printf("speedup: %.1fx, logits memcmp-identical on %zu images\n",
              speedup, images.size());

  bench::JsonObject out;
  out.add_string("bench", "artifact_cold_start");
  out.add_string("git", bench::git_sha());
  out.add_bool("smoke", smoke);
  out.add_int("repeats", repeats);
  out.add_number("width_scale", width_scale);
  out.add_int("checkpoint_bytes", static_cast<long long>(ckpt_blob.size()));
  out.add_int("artifact_bytes", static_cast<long long>(artifact_blob.size()));
  out.add_number("checkpoint_cold_start_ms", best_ckpt_ms);
  out.add_number("artifact_cold_start_ms", best_artifact_ms);
  out.add_number("speedup", speedup);
  out.add_bool("logits_identical", true);
  bench::add_host_info(
      out, inference::kernel_tier_name(inference::active_shift_kernels().tier));
  const std::string json_path = parser.get("--json");
  if (!bench::write_json_file(json_path, out)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
