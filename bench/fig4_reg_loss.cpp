// Reproduces Fig. 4: the two components of the regularization loss and
// their sum as a function of a scalar weight value in [0, 2], with
// lambda_0 = 1e-5 and lambda_1 = 3e-5 -- exactly the paper's setting.
//
// The first term lambda_0*||w|| grows linearly; the second term
// lambda_1*||w - R(w)|| is a sawtooth that vanishes at exact powers of two
// (0.25, 0.5, 1.0, 2.0 ...), which is what pulls weights onto the shift grid.

#include <cstdio>

#include "core/flightnn_transform.hpp"
#include "support/table.hpp"

int main() {
  using namespace flightnn;
  std::printf("== FLightNN reproduction: Fig. 4 (regularization loss curve) ==\n\n");

  core::FLightNNConfig first_only;
  first_only.lambdas = {1e-5F, 0.0F};
  core::FLightNNConfig second_only;
  second_only.lambdas = {0.0F, 3e-5F};
  core::FLightNNConfig total;
  total.lambdas = {1e-5F, 3e-5F};
  core::FLightNNTransform term0(first_only), term1(second_only), sum(total);

  std::printf("%10s %14s %14s %14s\n", "weight", "lambda0*||r0||",
              "lambda1*||r1||", "total");
  for (int i = 0; i <= 80; ++i) {
    const float w_value = 0.025F * static_cast<float>(i);
    tensor::Tensor w(tensor::Shape{1, 1}, std::vector<float>{w_value});
    std::printf("%10.3f %14.3e %14.3e %14.3e\n", w_value,
                term0.regularization(w, nullptr),
                term1.regularization(w, nullptr),
                sum.regularization(w, nullptr));
  }
  std::printf(
      "\npaper shape check: term0 linear in |w|; term1 sawtooth with zeros\n"
      "at powers of two; total peaks between grid points (Fig. 4).\n");
  return 0;
}
