// Ablation 2 (DESIGN.md Sec. 5): gradual quantization. The paper credits
// FLightNN's edge over LightNN-1 at equal storage to starting at k = 2
// everywhere (t initialized to 0) and tightening during training, instead
// of training single-shift weights from scratch. Compare:
//   (a) FLightNN, t init 0, strong lambda  -> gradual (paper)
//   (b) FLightNN, t init huge at level 1   -> immediate single-shift
//   (c) LightNN-1 from scratch             -> the baseline the paper beats

#include "ablation_common.hpp"

int main() {
  using namespace flightnn;
  bench::print_preamble("ablation: gradual vs immediate quantization");

  const auto split = bench::ablation_task();
  std::vector<bench::AblationRow> rows;
  auto train = bench::bench_train_config(5);
  // The sparse operating point: nearly every filter ends at one shift, so
  // all three variants below land at (close to) L-1 storage.
  train.threshold_learning_rate = 0.1F;
  const std::vector<float> strong_lambda = {1e-5F, 1e-3F};

  {
    auto model = bench::ablation_model();
    core::FLightNNConfig fl;
    fl.lambdas = strong_lambda;
    core::install_flightnn(*model, fl);  // t = 0: starts at k = 2 (gradual)
    rows.push_back(bench::measure("FL gradual (t init 0, paper)", *model,
                                  split, train));
  }
  {
    auto model = bench::ablation_model();
    core::FLightNNConfig fl;
    fl.lambdas = strong_lambda;
    const auto transforms = core::install_flightnn(*model, fl);
    // Force level 1 off from the start: immediate single-shift everywhere.
    for (auto* transform : transforms) transform->set_thresholds({0.0F, 1e9F});
    rows.push_back(
        bench::measure("FL immediate (level 1 disabled)", *model, split, train));
  }
  {
    auto model = bench::ablation_model();
    core::install_lightnn(*model, 1);
    rows.push_back(bench::measure("LightNN-1 from scratch", *model, split, train));
  }
  bench::print_rows(rows);
  std::printf(
      "paper shape check (Sec. 5.2): the gradual variant matches or beats\n"
      "both immediate variants at comparable final storage.\n");
  return 0;
}
