#pragma once

// Minimal JSON emission for benchmark result files (BENCH_*.json). The
// benches record their measured numbers together with the git revision so a
// result file is traceable to the code that produced it. No external JSON
// dependency: the writer only needs objects, arrays, strings and numbers.

#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "runtime/scratch_arena.hpp"
#include "support/simd.hpp"

namespace flightnn::bench {

// Short git revision of the working tree, or "unknown" outside a checkout.
inline std::string git_sha() {
  FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buffer[64] = {0};
  std::string sha;
  if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) sha = buffer;
  ::pclose(pipe);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  return sha.empty() ? "unknown" : sha;
}

// The one escaping routine every BENCH_*.json writer goes through: strings
// reaching the result files (git SHAs, config names, host info) must not be
// able to break the document, so quotes, backslashes and control characters
// are escaped here and nowhere else.
inline std::string json_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Incremental writer producing one top-level object. Keys are emitted in
// call order; values are raw JSON fragments produced by the helpers below.
class JsonObject {
 public:
  void add(const std::string& key, const std::string& raw_json) {
    fields_.push_back("\"" + json_escape(key) + "\": " + raw_json);
  }
  void add_string(const std::string& key, const std::string& value) {
    add(key, "\"" + json_escape(value) + "\"");
  }
  void add_number(const std::string& key, double value) {
    std::ostringstream out;
    out << value;
    add(key, out.str());
  }
  void add_int(const std::string& key, long long value) {
    add(key, std::to_string(value));
  }
  void add_bool(const std::string& key, bool value) {
    add(key, value ? "true" : "false");
  }

  [[nodiscard]] std::string to_string(int indent = 0) const {
    const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
    std::string out = "{\n";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out += pad + fields_[i];
      if (i + 1 < fields_.size()) out += ",";
      out += "\n";
    }
    out += std::string(static_cast<std::size_t>(indent), ' ') + "}";
    return out;
  }

 private:
  std::vector<std::string> fields_;
};

inline std::string json_array(const std::vector<std::string>& raw_items) {
  std::string out = "[";
  for (std::size_t i = 0; i < raw_items.size(); ++i) {
    out += raw_items[i];
    if (i + 1 < raw_items.size()) out += ", ";
  }
  return out + "]";
}

inline bool write_json_file(const std::string& path,
                            const JsonObject& object) {
  FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string text = object.to_string() + "\n";
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), file) == text.size();
  std::fclose(file);
  return ok;
}

// Process peak resident set in KiB (getrusage ru_maxrss; Linux reports KiB,
// macOS bytes -- normalized here). 0 on platforms without getrusage. A
// memory-footprint claim (DESIGN.md §15) is only checkable against what the
// OS actually charged the process, so every BENCH_*.json carries this.
inline long long peak_rss_kib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<long long>(usage.ru_maxrss) / 1024;
#else
  return static_cast<long long>(usage.ru_maxrss);
#endif
#else
  return 0;
#endif
}

// Host provenance block every BENCH_*.json carries: a throughput or kernel
// number is only comparable to another run if the CPU topology and the ISA
// tier the dispatcher picked are known. `dispatch_tier` is the tier the
// bench actually ran with (active_shift_kernels().tier's name), which can
// differ from the detected ISA under FLIGHTNN_FORCE_SCALAR or the test
// override. The memory fields record what the run actually cost: the OS's
// peak-RSS charge and the calling thread's scratch-arena footprint at
// emission time (workers' arenas are per-thread and not visible here).
inline void add_host_info(JsonObject& object, const std::string& dispatch_tier) {
  JsonObject host;
  host.add_int("hardware_concurrency",
               static_cast<long long>(std::thread::hardware_concurrency()));
  host.add_bool("avx2", support::cpu_has_avx2());
  host.add_bool("fma", support::cpu_has_fma());
  host.add_string("dispatch_tier", dispatch_tier);
  host.add_int("peak_rss_kib", peak_rss_kib());
  host.add_int("main_thread_arena_bytes",
               static_cast<long long>(
                   runtime::ScratchArena::current().footprint_bytes()));
  object.add("host", host.to_string(2));
}

// Splice `object` into an existing BENCH_*.json under `key`, so a second
// writer (e.g. kernels_microbench) can extend a file another bench produced
// without a JSON parser. Relies on write_json_file's output shape: the file
// is one top-level object ending "}\n". Fails (returns false) if the file
// is missing or does not end in '}', leaving it untouched.
inline bool merge_into_json_file(const std::string& path,
                                 const std::string& key,
                                 const JsonObject& object) {
  FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) return false;
  std::string text;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), in)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(in);
  while (!text.empty() &&
         (text.back() == '\n' || text.back() == '\r' || text.back() == ' ')) {
    text.pop_back();
  }
  if (text.size() < 2 || text.back() != '}') return false;
  text.pop_back();
  while (!text.empty() &&
         (text.back() == '\n' || text.back() == '\r' || text.back() == ' ')) {
    text.pop_back();
  }
  const bool empty_object = !text.empty() && text.back() == '{';
  text += std::string(empty_object ? "\n" : ",\n") + "  \"" +
          json_escape(key) + "\": " + object.to_string(2) + "\n}\n";
  FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) return false;
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), out) == text.size();
  std::fclose(out);
  return ok;
}

}  // namespace flightnn::bench
