// Memory footprint of the planned-arena runtime (DESIGN.md §15): the
// offline memory plan's claimed bytes vs what execution actually consumes.
// A Table-1 CIFAR-10 network runs twice over the same inputs -- once on the
// planned arena (the default), once with planning disabled (the dynamic
// grow-once oracle) -- and the bench records:
//
//   - planned arena capacity vs the arena block the planned run actually
//     allocated (must agree within alignment slack), and that every planned
//     fetch hit its extent (plan_misses == 0),
//   - the dynamic arena's grow-once high-water for the same program, i.e.
//     what the plan's temporal packing saves over one-buffer-per-slot,
//   - planned vs dynamic whole-network throughput (interleaved A/B; the
//     plan removes bookkeeping, so planned must not be slower),
//   - bit-identity of planned and dynamic logits at 1 and 4 threads (the
//     plan moves bytes, never values),
//   - process peak RSS at cold start, after compile, and at steady state
//     (getrusage; the whole-process view the OS bills).
//
//   $ ./bench/memory_footprint [--batch N] [--repeats R] [--width-scale S]
//                              [--json PATH] [--smoke]
//
// Measurements land in BENCH_memory.json stamped with the git revision.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "core/quantize_model.hpp"
#include "inference/memory_plan.hpp"
#include "inference/quantized_network.hpp"
#include "inference/shift_kernels.hpp"
#include "models/networks.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/inference_request.hpp"
#include "runtime/scratch_arena.hpp"
#include "runtime/thread_pool.hpp"
#include "support/argparse.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace flightnn;

bool bitwise_equal(const std::vector<tensor::Tensor>& a,
                   const std::vector<tensor::Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].shape() != b[i].shape()) return false;
    if (std::memcmp(a[i].data(), b[i].data(),
                    static_cast<std::size_t>(a[i].numel()) * sizeof(float)) !=
        0) {
      return false;
    }
  }
  return true;
}

// Steady-state img/s: one warm-up batch, then timed repeats into a reused
// result.
double throughput(const runtime::BatchRunner& runner,
                  const runtime::InferenceRequest& request, int repeats,
                  runtime::InferenceResult& result) {
  runner.run(request, result);
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < repeats; ++r) runner.run(request, result);
  const auto stop = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration<double>(stop - start).count() / repeats;
  return static_cast<double>(request.images.size()) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser parser("memory_footprint",
                            "planned-arena bytes vs measured footprint");
  parser.add_flag("--batch", "images per inference batch", "32");
  parser.add_flag("--repeats", "timed repetitions per configuration", "5");
  parser.add_flag("--width-scale", "channel-width multiplier of network 1",
                  "0.25");
  parser.add_flag("--json", "result file path", "BENCH_memory.json");
  std::vector<std::string> args(argv + 1, argv + argc);
  const auto smoke_it = std::find(args.begin(), args.end(), "--smoke");
  const bool smoke = smoke_it != args.end();
  if (smoke) args.erase(smoke_it);
  if (!parser.parse(args)) {
    std::fprintf(stderr,
                 "%s\n%s  --smoke: CI-sized run (tiny batch, one repeat)\n",
                 parser.error().c_str(), parser.usage().c_str());
    return 1;
  }
  const std::int64_t batch = smoke ? 4 : parser.get_int("--batch");
  const int repeats = smoke ? 1 : parser.get_int("--repeats");

  const long long rss_cold_kib = bench::peak_rss_kib();

  models::BuildOptions build;
  build.classes = 10;
  build.width_scale = static_cast<float>(parser.get_double("--width-scale"));
  build.seed = 1;
  auto model = models::build_network(models::table1_network(1), build);
  core::install_lightnn(*model, 2);

  runtime::set_num_threads(1);
  // Planned network (the default route) and its dynamic-arena twin, compiled
  // from the same model with planning forced off. Same program, same
  // engines; only where scratch bytes live differs.
  const auto planned = inference::QuantizedNetwork::compile(
      *model, tensor::Shape{1, 3, 32, 32});
  inference::set_memory_planning_override(0);
  const auto dynamic = inference::QuantizedNetwork::compile(
      *model, tensor::Shape{1, 3, 32, 32});
  inference::set_memory_planning_override(-1);
  if (planned.memory_plan() == nullptr ||
      dynamic.memory_plan() != nullptr) {
    std::fprintf(stderr, "FATAL: planning override did not take\n");
    return 1;
  }
  const inference::MemoryPlan& plan = *planned.memory_plan();
  const long long rss_compiled_kib = bench::peak_rss_kib();

  const runtime::BatchRunner planned_runner(planned);
  const runtime::BatchRunner dynamic_runner(dynamic);

  support::Rng rng(2);
  runtime::InferenceRequest request;
  request.images.reserve(static_cast<std::size_t>(batch));
  for (std::int64_t i = 0; i < batch; ++i) {
    request.images.push_back(
        tensor::Tensor::randn(tensor::Shape{3, 32, 32}, rng));
  }

  // --- Dynamic high-water (grow-once, one buffer per slot) -----------------
  // Measured before any planned run touches this thread's arena, so the
  // footprint is purely the dynamic slots.
  runtime::InferenceResult dyn_result;
  dynamic_runner.run(request, dyn_result);
  const std::size_t dynamic_high_water =
      runtime::ScratchArena::current().footprint_bytes();

  // --- Planned block, measured -------------------------------------------
  // Trim the arena so the planned run's footprint is the planned block
  // alone; every fetch must hit its planned extent.
  runtime::ScratchArena::current().trim();
  runtime::ScratchArena::current().reset_plan_counters();
  runtime::InferenceResult plan_result;
  planned_runner.run(request, plan_result);
  const std::size_t planned_measured =
      runtime::ScratchArena::current().footprint_bytes();
  const std::uint64_t hits = runtime::ScratchArena::current().planned_hits();
  const std::uint64_t misses = runtime::ScratchArena::current().plan_misses();
  if (misses != 0 || hits == 0) {
    std::fprintf(stderr,
                 "FATAL: planned fetches missed their extents "
                 "(%llu hits, %llu misses)\n",
                 static_cast<unsigned long long>(hits),
                 static_cast<unsigned long long>(misses));
    return 1;
  }
  if (!bitwise_equal(plan_result.logits, dyn_result.logits)) {
    std::fprintf(stderr, "FATAL: planned logits differ from dynamic\n");
    return 1;
  }
  const std::size_t planned_capacity = plan.arena_capacity_bytes();
  // The arena block is the capacity plus one alignment pad (and footprint
  // accounting adds the pad once more); anything beyond that slack means
  // the plan under-claimed.
  const double measured_over_planned =
      planned_capacity == 0
          ? 1.0
          : static_cast<double>(planned_measured) /
                static_cast<double>(planned_capacity);
  const std::size_t alignment_slack = 2 * runtime::kArenaAlignment;
  if (planned_measured > planned_capacity + alignment_slack) {
    std::fprintf(stderr,
                 "FATAL: planned arena measured %zu bytes, plan claimed %zu "
                 "(+%zu slack)\n",
                 planned_measured, planned_capacity, alignment_slack);
    return 1;
  }

  // --- Logits identity across thread counts --------------------------------
  std::vector<std::string> identity_json;
  for (const int threads : {1, 4}) {
    runtime::set_num_threads(threads);
    runtime::InferenceResult a, b;
    planned_runner.run(request, a);
    dynamic_runner.run(request, b);
    const bool identical = bitwise_equal(a.logits, b.logits);
    bench::JsonObject point;
    point.add_int("threads", threads);
    point.add_bool("planned_dynamic_bit_identical", identical);
    identity_json.push_back(point.to_string(2));
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: planned vs dynamic logits differ at %d threads\n",
                   threads);
      return 1;
    }
  }

  // --- Throughput A/B (1 thread, interleaved) ------------------------------
  runtime::set_num_threads(1);
  runtime::InferenceResult scratch_result;
  double planned_img_s = 0.0, dynamic_img_s = 0.0;
  const int rounds = smoke ? 1 : 3;
  for (int r = 0; r < rounds; ++r) {
    planned_img_s = std::max(
        planned_img_s, throughput(planned_runner, request, repeats,
                                  scratch_result));
    dynamic_img_s = std::max(
        dynamic_img_s, throughput(dynamic_runner, request, repeats,
                                  scratch_result));
  }
  const double planned_speedup = planned_img_s / dynamic_img_s;
  const long long rss_steady_kib = bench::peak_rss_kib();

  // --- Report --------------------------------------------------------------
  const auto kib = [](std::size_t bytes) {
    return static_cast<double>(bytes) / 1024.0;
  };
  support::Table table({"quantity", "bytes", "KiB"});
  table.add_row({"planned arena capacity", std::to_string(planned_capacity),
                 support::format_fixed(kib(planned_capacity), 1)});
  table.add_row({"planned arena measured", std::to_string(planned_measured),
                 support::format_fixed(kib(planned_measured), 1)});
  table.add_row({"dynamic high-water", std::to_string(dynamic_high_water),
                 support::format_fixed(kib(dynamic_high_water), 1)});
  table.add_row({"activation peak",
                 std::to_string(plan.activation_peak_bytes()),
                 support::format_fixed(kib(plan.activation_peak_bytes()), 1)});
  table.add_row({"quant scratch peak", std::to_string(plan.quant_peak_bytes()),
                 support::format_fixed(kib(plan.quant_peak_bytes()), 1)});
  table.add_row({"planned per-thread total",
                 std::to_string(plan.planned_per_thread_bytes()),
                 support::format_fixed(kib(plan.planned_per_thread_bytes()),
                                       1)});
  std::printf("batch=%lld repeats=%d%s\n\n%s\n",
              static_cast<long long>(batch), repeats, smoke ? " (smoke)" : "",
              table.to_string().c_str());
  std::printf("planned fetches: %llu hits, %llu misses\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses));
  std::printf("measured/planned arena ratio: %.3f (alignment slack only)\n",
              measured_over_planned);
  std::printf(
      "throughput (1 thread): planned %.1f img/s vs dynamic %.1f img/s "
      "(%.2fx)\n",
      planned_img_s, dynamic_img_s, planned_speedup);
  std::printf(
      "peak RSS: %lld KiB cold -> %lld KiB compiled -> %lld KiB steady "
      "(cold-start delta %lld KiB)\n",
      rss_cold_kib, rss_compiled_kib, rss_steady_kib,
      rss_steady_kib - rss_cold_kib);
  std::printf("planned vs dynamic logits bit-identical at 1 and 4 threads\n");

  // --- Result file ---------------------------------------------------------
  const char* active_tier =
      inference::kernel_tier_name(inference::active_shift_kernels().tier);
  bench::JsonObject out;
  out.add_string("bench", "memory");
  out.add_string("git_sha", bench::git_sha());
  out.add_bool("smoke", smoke);
  out.add_int("batch", batch);
  out.add_int("repeats", repeats);
  out.add_number("width_scale", parser.get_double("--width-scale"));
  out.add_int("planned_arena_capacity_bytes",
              static_cast<long long>(planned_capacity));
  out.add_int("planned_arena_measured_bytes",
              static_cast<long long>(planned_measured));
  out.add_number("measured_over_planned_ratio", measured_over_planned);
  out.add_int("dynamic_arena_high_water_bytes",
              static_cast<long long>(dynamic_high_water));
  out.add_int("activation_peak_bytes",
              static_cast<long long>(plan.activation_peak_bytes()));
  out.add_int("quant_peak_bytes",
              static_cast<long long>(plan.quant_peak_bytes()));
  out.add_int("planned_per_thread_bytes",
              static_cast<long long>(plan.planned_per_thread_bytes()));
  out.add_int("planned_fetch_hits", static_cast<long long>(hits));
  out.add_int("planned_fetch_misses", static_cast<long long>(misses));
  out.add_number("planned_img_per_s_1thread", planned_img_s);
  out.add_number("dynamic_img_per_s_1thread", dynamic_img_s);
  out.add_number("planned_speedup_vs_dynamic", planned_speedup);
  out.add("thread_identity", bench::json_array(identity_json));
  out.add_int("rss_cold_kib", rss_cold_kib);
  out.add_int("rss_compiled_kib", rss_compiled_kib);
  out.add_int("rss_steady_kib", rss_steady_kib);
  out.add_int("rss_cold_start_delta_kib", rss_steady_kib - rss_cold_kib);
  bench::add_host_info(out, active_tier);
  const std::string json_path = parser.get("--json");
  if (!bench::write_json_file(json_path, out)) {
    std::fprintf(stderr, "FATAL: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
