// Reproduces Table 3: accuracy and FPGA throughput on SVHN for networks 4
// and 5 (VGG-4/64, VGG-4/128).

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace flightnn;
  bench::print_preamble("Table 3 (SVHN: accuracy, storage, throughput)");

  support::Table table(
      {"ID", "Model", "Accuracy(%)", "Storage(MB)", "Throughput(img/s)",
       "Speedup"});
  for (int network_id : {4, 5}) {
    auto config = bench::bench_experiment(network_id, data::svhn_like());
    const auto result = eval::run_experiment(config);
    table.add_separator();
    for (auto& row : eval::table_rows(result)) table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
