// Training throughput of the GEMM fast path: train-step time of the Table-1
// CIFAR-10 network (id 1, VGG-7/64 proxy) with FLightNN quantization
// installed, measured three ways:
//   1. GEMM path vs the retained naive reference kernels, 1 thread
//      (the tentpole target: >= 3x);
//   2. thread sweep of the GEMM path (near-linear scaling at batch >= 32);
//   3. determinism: the epoch's regularizer loss must be bit-identical at
//      every thread count (fixed-block reductions, DESIGN.md §10).
//
//   $ ./bench/training_throughput [--batch N] [--steps S] [--width-scale W]
//                                 [--repeats R] [--json PATH] [--smoke]
//
// Each configuration is run --repeats times and the fastest epoch is kept:
// the kernels are deterministic, so the minimum is the run least disturbed
// by other tenants of the machine. Measurements land in BENCH_training.json
// stamped with the git revision.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/quantize_model.hpp"
#include "inference/shift_kernels.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "models/networks.hpp"
#include "nn/layer.hpp"
#include "runtime/thread_pool.hpp"
#include "support/argparse.hpp"
#include "support/table.hpp"

namespace {

using namespace flightnn;

struct EpochRun {
  double step_seconds = 0.0;
  core::EpochStats stats;
};

// Build a fresh model (identical weights every call: fixed build seed),
// install FLightNN, and time one training epoch. A fresh model per run keeps
// the measured work identical -- training mutates weights, so reusing one
// model would hand later runs a different optimization trajectory.
EpochRun run_epoch_once(const data::Dataset& train, std::int64_t batch,
                        float width_scale) {
  models::BuildOptions build;
  build.classes = 10;
  build.width_scale = width_scale;
  build.seed = 1;
  auto model = models::build_network(models::table1_network(1), build);
  core::install_flightnn(*model, core::FLightNNConfig{});

  core::TrainConfig config = bench::bench_train_config(1);
  config.epochs = 1;
  config.batch_size = batch;
  core::Trainer trainer(*model, config);

  const auto start = std::chrono::steady_clock::now();
  EpochRun run;
  run.stats = trainer.train_epoch(train);
  const auto stop = std::chrono::steady_clock::now();
  const auto steps = (train.size() + batch - 1) / batch;
  run.step_seconds = std::chrono::duration<double>(stop - start).count() /
                     static_cast<double>(steps);
  return run;
}

// Best-of-N wrapper: every repeat does identical work (fresh model, fixed
// seeds), so timing differences are pure machine noise and the minimum is
// the honest estimate. The stats are identical across repeats by
// construction; keep the ones from the fastest run.
EpochRun run_epoch(const data::Dataset& train, std::int64_t batch,
                   float width_scale, int repeats) {
  EpochRun best = run_epoch_once(train, batch, width_scale);
  for (int r = 1; r < repeats; ++r) {
    EpochRun run = run_epoch_once(train, batch, width_scale);
    if (run.step_seconds < best.step_seconds) best = run;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser parser("training_throughput",
                            "train-step time of the GEMM fast path vs the "
                            "naive reference kernels");
  parser.add_flag("--batch", "images per training batch", "32");
  parser.add_flag("--steps", "training steps per measured epoch", "8");
  parser.add_flag("--width-scale", "channel-width multiplier of network 1",
                  "1.0");
  parser.add_flag("--repeats", "timed runs per configuration; fastest kept",
                  "3");
  parser.add_flag("--json", "result file path", "BENCH_training.json");
  std::vector<std::string> args(argv + 1, argv + argc);
  // --smoke is a bare switch: tiny dataset, for CI.
  const auto smoke_it = std::find(args.begin(), args.end(), "--smoke");
  const bool smoke = smoke_it != args.end();
  if (smoke) args.erase(smoke_it);
  if (!parser.parse(args)) {
    std::fprintf(stderr,
                 "%s\n%s  --smoke: CI-sized run (tiny dataset)\n",
                 parser.error().c_str(), parser.usage().c_str());
    return 1;
  }
  const std::int64_t batch = smoke ? 8 : parser.get_int("--batch");
  const std::int64_t steps = smoke ? 2 : parser.get_int("--steps");
  const int repeats =
      smoke ? 1 : std::max(1, static_cast<int>(parser.get_int("--repeats")));
  const auto width_scale =
      static_cast<float>(smoke ? 0.25 : parser.get_double("--width-scale"));

  bench::print_preamble("training throughput (GEMM fast path)");

  data::DatasetSpec spec = data::cifar10_like();
  spec.train_size = batch * steps;
  spec.test_size = 1;  // unused; keep generation cheap
  const data::Dataset train = data::make_synthetic(spec).train;

  // --- GEMM vs reference kernels, 1 thread --------------------------------
  runtime::set_num_threads(1);
  nn::set_train_kernel_path(nn::TrainKernelPath::kReference);
  const EpochRun reference = run_epoch(train, batch, width_scale, repeats);
  nn::set_train_kernel_path(nn::TrainKernelPath::kGemm);
  const EpochRun gemm1 = run_epoch(train, batch, width_scale, repeats);
  const double kernel_speedup = reference.step_seconds / gemm1.step_seconds;
  std::printf(
      "train step, 1 thread: reference %.1f ms, GEMM %.1f ms (%.2fx)\n\n",
      reference.step_seconds * 1e3, gemm1.step_seconds * 1e3, kernel_speedup);

  // --- Thread sweep of the GEMM path --------------------------------------
  //
  // On a single-core host the sweep is expectedly flat (oversubscribed
  // threads time-slice one core); near-linear scaling only shows with real
  // cores. hardware_concurrency lands in the JSON so readers can tell the
  // two situations apart.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<int> sweep{1, 2, 4};
  if (hw > 4) sweep.push_back(hw);

  support::Table table({"threads", "ms/step", "img/s", "speedup vs 1",
                        "reg loss identical"});
  std::vector<std::string> sweep_json;
  double baseline_s = 0.0;
  float baseline_reg = 0.0F;
  bool deterministic = true;
  for (const int threads : sweep) {
    runtime::set_num_threads(threads);
    const EpochRun run =
        threads == 1 ? gemm1 : run_epoch(train, batch, width_scale, repeats);
    if (threads == 1) {
      baseline_s = run.step_seconds;
      baseline_reg = run.stats.mean_reg_loss;
    }
    // Bitwise, not approximate: the whole training step is built from
    // partition-invariant kernels and fixed-block reductions.
    const bool identical =
        std::memcmp(&run.stats.mean_reg_loss, &baseline_reg, sizeof(float)) ==
        0;
    deterministic = deterministic && identical;
    table.add_row({std::to_string(threads),
                   support::format_fixed(run.step_seconds * 1e3, 1),
                   support::format_fixed(static_cast<double>(batch) /
                                             run.step_seconds,
                                         1),
                   support::format_fixed(baseline_s / run.step_seconds, 2),
                   identical ? "yes" : "NO (BUG)"});
    bench::JsonObject point;
    point.add_int("threads", threads);
    point.add_number("ms_per_step", run.step_seconds * 1e3);
    point.add_number("img_per_s",
                     static_cast<double>(batch) / run.step_seconds);
    point.add_number("speedup_vs_1", baseline_s / run.step_seconds);
    point.add_bool("reg_loss_bit_identical", identical);
    sweep_json.push_back(point.to_string(2));
  }
  std::printf("batch=%lld steps=%lld width=%.2f%s\n\n%s\n",
              static_cast<long long>(batch), static_cast<long long>(steps),
              static_cast<double>(width_scale), smoke ? " (smoke)" : "",
              table.to_string().c_str());
  if (!deterministic) {
    std::fprintf(stderr,
                 "FATAL: regularizer loss differs across thread counts\n");
    return 1;
  }

  // --- Result file --------------------------------------------------------
  bench::JsonObject out;
  out.add_string("bench", "training");
  out.add_string("git_sha", bench::git_sha());
  out.add_bool("smoke", smoke);
  out.add_int("batch", batch);
  out.add_int("steps", steps);
  out.add_int("repeats", repeats);
  out.add_int("hardware_concurrency", hw);
  out.add_number("width_scale", static_cast<double>(width_scale));
  out.add_number("reference_ms_per_step", reference.step_seconds * 1e3);
  out.add_number("gemm_ms_per_step_1thread", gemm1.step_seconds * 1e3);
  out.add_number("gemm_speedup_vs_reference_1thread", kernel_speedup);
  out.add("thread_sweep", bench::json_array(sweep_json));
  out.add_bool("reg_loss_bit_identical_across_threads", deterministic);
  bench::add_host_info(
      out, inference::kernel_tier_name(inference::active_shift_kernels().tier));
  const std::string json_path = parser.get("--json");
  if (!bench::write_json_file(json_path, out)) {
    std::fprintf(stderr, "FATAL: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  runtime::set_num_threads(0);
  return 0;
}
