// Extension beyond the paper: k_max = 3. The paper fixes the largest shift
// count at 2 (Sec. 5.1); the quantizer, training algorithm, decomposition
// and hardware models here are all generic in k, so this bench explores the
// finer Pareto front k in {0..3} buys: LightNN-3 as a new accuracy anchor
// and FLightNN-3 operating points between L-1 and L-3.

#include <cstdio>

#include "ablation_common.hpp"
#include "hw/asic_model.hpp"

int main() {
  using namespace flightnn;
  bench::print_preamble("extension: k_max = 3 (beyond the paper's k <= 2)");

  const auto split = bench::ablation_task();
  const hw::AsicModel asic;
  hw::LayerCost layer;  // network 1's largest layer, as in fig1
  layer.out_channels = layer.in_channels = 64;
  layer.kernel = 3;
  layer.in_h = layer.in_w = layer.out_h = layer.out_w = 8;

  struct Row {
    std::string label;
    double accuracy, mean_k, energy_uj;
  };
  std::vector<Row> rows;

  auto run = [&](const std::string& label, int lightnn_k, int k_max,
                 std::vector<float> lambdas, float threshold_lr) {
    auto model = bench::ablation_model();
    auto train = bench::bench_train_config(5);
    if (lightnn_k > 0) {
      core::install_lightnn(*model, lightnn_k);
    } else {
      core::FLightNNConfig fl;
      fl.k_max = k_max;
      fl.lambdas = std::move(lambdas);
      core::install_flightnn(*model, fl);
      train.threshold_learning_rate = threshold_lr;
    }
    core::Trainer trainer(*model, train);
    const auto fit = trainer.fit(split.train, split.test);
    const double mean_k = eval::model_mean_k(*model);
    const auto spec = lightnn_k > 0 ? hw::QuantSpec::lightnn(lightnn_k)
                                    : hw::QuantSpec::flightnn(mean_k);
    rows.push_back({label, fit.test_accuracy * 100.0, mean_k,
                    asic.layer_energy_uj(layer, spec)});
  };

  run("L-1", 1, 0, {}, 0.0F);
  run("L-2", 2, 0, {}, 0.0F);
  run("L-3", 3, 0, {}, 0.0F);
  // FLightNN with three levels: lambda ramps over levels as in the paper's
  // two-level (1e-5, 3e-5) pattern.
  run("FL3-dense", 0, 3, {1e-5F, 3e-5F, 9e-5F}, 1e-3F);
  run("FL3-balanced", 0, 3, {8e-5F, 2.4e-4F, 7.2e-4F}, 0.02F);
  run("FL3-sparse", 0, 3, {1e-5F, 1e-3F, 3e-3F}, 0.1F);

  std::printf("%-14s %10s %8s %12s\n", "model", "acc(%)", "mean k", "energy(uJ)");
  for (const auto& row : rows) {
    std::printf("%-14s %10.2f %8.2f %12.4f\n", row.label.c_str(), row.accuracy,
                row.mean_k, row.energy_uj);
  }
  std::printf(
      "\nshape check: L-3 adds little accuracy over L-2 at 1.5x its energy\n"
      "(diminishing returns of extra shift terms -- why the paper stops at\n"
      "2); FLightNN-3 mean k stays closer to 2 than 3 for the same reason.\n");
  return 0;
}
