// Ablation 4 (DESIGN.md Sec. 5): per-filter vs per-layer k. The paper picks
// per-filter granularity: it preserves structural sparsity (Fig. 3 keeps
// the LightNN-1 engine applicable) while giving a much larger design space
// than one k per layer. Per-layer k forces every filter in a layer to the
// same depth, so the accuracy/cost trade-off is coarser.

#include "ablation_common.hpp"

int main() {
  using namespace flightnn;
  bench::print_preamble("ablation: per-filter vs per-layer k granularity");

  const auto split = bench::ablation_task();
  std::vector<bench::AblationRow> rows;

  auto train = bench::bench_train_config(5);
  train.threshold_learning_rate = 0.05F;
  for (const bool per_layer : {false, true}) {
    auto model = bench::ablation_model();
    core::FLightNNConfig fl;
    fl.lambdas = {8e-5F, 2.4e-4F};
    fl.per_layer = per_layer;
    core::install_flightnn(*model, fl);
    rows.push_back(bench::measure(
        per_layer ? "per-layer k" : "per-filter k (paper)", *model, split,
        train));
  }
  bench::print_rows(rows);
  std::printf(
      "shape check: per-filter k reaches intermediate mean-k operating\n"
      "points; per-layer k snaps each layer to 1 or 2 shifts wholesale.\n");
  return 0;
}
