// Reproduces Table 5: top-5 accuracy and FPGA throughput on the ImageNet
// proxy for network 8 (reduced-width ResNet-10). Like the paper, only L-2,
// L-1 and the two FLightNNs are trained (no Full / FP4 baselines), and the
// speedup column is relative to L-2.

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace flightnn;
  bench::print_preamble("Table 5 (ImageNet proxy: top-5 accuracy, throughput)");

  auto config = bench::bench_experiment(8, data::imagenet_like(0.6F));
  config.top_k = 5;
  config.include_full = false;
  config.include_fixed_point = false;
  const auto result = eval::run_experiment(config);

  support::Table table(
      {"ID", "Model", "Top-5 Acc(%)", "Storage(MB)", "Throughput(img/s)",
       "Speedup"});
  for (auto& row : eval::table_rows(result)) table.add_row(std::move(row));
  std::printf("%s\n", table.to_string().c_str());
  std::printf("speedup baseline: L-2 (as in the paper's Table 5).\n");
  return 0;
}
