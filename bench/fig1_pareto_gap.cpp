// Reproduces Fig. 1's motivating observation: with only LightNN-1 and
// LightNN-2 the accuracy/energy Pareto front is two isolated points with a
// gap between them; sweeping the FLightNN regularization strength lambda
// produces operating points inside (and above) that gap, making the front
// continuous.

#include <cstdio>

#include "bench_common.hpp"
#include "core/quantize_model.hpp"
#include "eval/storage.hpp"
#include "hw/asic_model.hpp"

int main() {
  using namespace flightnn;
  bench::print_preamble("Fig. 1 (the L-1 / L-2 gap and how FLightNN fills it)");

  auto dataset_spec = data::cifar10_like(bench::bench_scale());
  const auto split = data::make_synthetic(dataset_spec);
  const auto network = models::table1_network(1);

  models::BuildOptions build;
  build.in_channels = dataset_spec.channels;
  build.classes = dataset_spec.classes;
  build.width_scale = 0.25F;
  build.seed = 2;

  // Energy comes from the full-size network's largest layer.
  models::BuildOptions full_size = build;
  full_size.width_scale = 1.0F;
  full_size.act_bits = 0;
  auto reference = models::build_network(network, full_size);
  const auto layer = hw::largest_layer(*reference, tensor::Shape{1, 3, 32, 32});
  const hw::AsicModel asic;

  std::printf("model,energy_uJ,accuracy_pct,mean_k\n");
  auto run = [&](const char* label, int lightnn_k,
                 const bench::FlOperatingPoint* point) {
    auto model = models::build_network(network, build);
    auto train = bench::bench_train_config(5);
    if (lightnn_k > 0) {
      core::install_lightnn(*model, lightnn_k);
    } else {
      core::FLightNNConfig fl;
      fl.lambdas = point->lambdas;
      core::install_flightnn(*model, fl);
      train.threshold_learning_rate = point->threshold_lr;
    }
    core::Trainer trainer(*model, train);
    const auto fit = trainer.fit(split.train, split.test);
    const double mean_k = eval::model_mean_k(*model);
    const auto spec = lightnn_k > 0 ? hw::QuantSpec::lightnn(lightnn_k)
                                    : hw::QuantSpec::flightnn(mean_k);
    std::printf("%s,%.4f,%.2f,%.2f\n", label,
                asic.layer_energy_uj(layer, spec), fit.test_accuracy * 100.0,
                mean_k);
  };

  run("L-1", 1, nullptr);
  run("L-2", 2, nullptr);
  for (const auto& point : bench::fl_operating_points()) {
    run(point.name, 0, &point);
  }
  std::printf(
      "\npaper shape check (Fig. 1): the FL rows land at energies strictly\n"
      "between the L-1 and L-2 points, giving a continuous trade-off.\n");
  return 0;
}
