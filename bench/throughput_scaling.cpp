// Throughput of the compiled shift-plan runtime: images/second of a Table-1
// CIFAR-10 network (id 1, VGG-7/64) swept over thread counts, the
// whole-network speedup of the compiled plan over the pre-plan reference
// engine, per-term kernel cost, and the sparsity payoff of a 50%-pruned
// layer vs its dense twin. The parallelism is across batch elements
// (BatchRunner) composed with output-filter blocks inside each kernel, all
// drawing from one shared pool -- so scaling reflects the whole runtime,
// not a single kernel.
//
//   $ ./bench/throughput_scaling [--batch N] [--repeats R] [--width-scale S]
//                                [--json PATH] [--smoke]
//
// Results are bit-identical across thread counts (asserted per sweep), so
// the img/s column is the only thing that changes. Measurements land in a
// BENCH_shift_engine.json file stamped with the git revision.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/quantize_model.hpp"
#include "inference/quantized_network.hpp"
#include "inference/shift_engine.hpp"
#include "models/networks.hpp"
#include "quant/lightnn.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/inference_request.hpp"
#include "runtime/thread_pool.hpp"
#include "support/argparse.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace flightnn;

double run_once(const runtime::BatchRunner& runner,
                const runtime::InferenceRequest& request, int repeats,
                std::vector<tensor::Tensor>* logits_out) {
  // One warm-up pass (pool spin-up, cache warming), then timed repeats into
  // a reused result -- the zero-allocation steady state the runtime is
  // built around.
  runtime::InferenceResult result;
  runner.run(request, result);
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < repeats; ++r) {
    runner.run(request, result);
  }
  const auto stop = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration<double>(stop - start).count() / repeats;
  if (logits_out != nullptr) *logits_out = std::move(result.logits);
  return static_cast<double>(request.images.size()) / seconds;
}

bool bitwise_equal(const std::vector<tensor::Tensor>& a,
                   const std::vector<tensor::Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].shape() != b[i].shape()) return false;
    if (std::memcmp(a[i].data(), b[i].data(),
                    static_cast<std::size_t>(a[i].numel()) * sizeof(float)) !=
        0) {
      return false;
    }
  }
  return true;
}

// Median-of-repeats wall time of one engine run, in seconds.
template <typename Fn>
double time_layer(int repeats, const Fn& fn) {
  fn();  // warm-up
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    samples.push_back(std::chrono::duration<double>(stop - start).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser parser("throughput_scaling",
                            "img/s of a Table-1 CIFAR-10 network vs threads");
  parser.add_flag("--batch", "images per inference batch", "32");
  parser.add_flag("--repeats", "timed repetitions per thread count", "3");
  parser.add_flag("--width-scale", "channel-width multiplier of network 1",
                  "0.25");
  parser.add_flag("--json", "result file path", "BENCH_shift_engine.json");
  std::vector<std::string> args(argv + 1, argv + argc);
  // --smoke is a bare switch: tiny batch / single repeat, for CI.
  const auto smoke_it = std::find(args.begin(), args.end(), "--smoke");
  const bool smoke = smoke_it != args.end();
  if (smoke) args.erase(smoke_it);
  if (!parser.parse(args)) {
    std::fprintf(stderr, "%s\n%s  --smoke: CI-sized run (tiny batch, one repeat)\n",
                 parser.error().c_str(), parser.usage().c_str());
    return 1;
  }
  const std::int64_t batch = smoke ? 4 : parser.get_int("--batch");
  const int repeats = smoke ? 1 : parser.get_int("--repeats");
  const int layer_repeats = smoke ? 3 : 15;

  models::BuildOptions build;
  build.classes = 10;
  build.width_scale = static_cast<float>(parser.get_double("--width-scale"));
  build.seed = 1;
  auto model = models::build_network(models::table1_network(1), build);
  core::install_lightnn(*model, 2);

  runtime::set_num_threads(1);
  const auto network = inference::QuantizedNetwork::compile(
      *model, tensor::Shape{1, 3, 32, 32});
  inference::CompileOptions reference_options;
  reference_options.use_reference_engine = true;
  const auto reference_network = inference::QuantizedNetwork::compile(
      *model, tensor::Shape{1, 3, 32, 32}, reference_options);
  const runtime::BatchRunner runner(network);
  const runtime::BatchRunner reference_runner(reference_network);
  std::printf("plan: %s\n", network.describe().c_str());

  support::Rng rng(2);
  runtime::InferenceRequest request;
  request.images.reserve(static_cast<std::size_t>(batch));
  for (std::int64_t i = 0; i < batch; ++i) {
    request.images.push_back(
        tensor::Tensor::randn(tensor::Shape{3, 32, 32}, rng));
  }

  const int hw = runtime::num_threads();
  std::vector<int> sweep{1, 2, 4};
  if (hw > 4) sweep.push_back(hw);

  // --- Thread sweep (compiled plan) --------------------------------------
  support::Table table({"threads", "img/s", "speedup vs 1", "bit-identical"});
  std::vector<std::string> sweep_json;
  double baseline = 0.0;
  std::vector<tensor::Tensor> reference;
  for (const int threads : sweep) {
    runtime::set_num_threads(threads);
    std::vector<tensor::Tensor> logits;
    const double throughput = run_once(runner, request, repeats, &logits);
    if (threads == 1) {
      baseline = throughput;
      reference = std::move(logits);
    }
    const bool identical =
        threads == 1 || bitwise_equal(reference, logits);
    table.add_row({std::to_string(threads),
                   support::format_fixed(throughput, 1),
                   support::format_fixed(throughput / baseline, 2),
                   identical ? "yes" : "NO (BUG)"});
    bench::JsonObject point;
    point.add_int("threads", threads);
    point.add_number("img_per_s", throughput);
    point.add_number("speedup_vs_1", throughput / baseline);
    sweep_json.push_back(point.to_string(2));
    if (!identical) {
      std::fprintf(stderr, "FATAL: %d-thread output differs from serial\n",
                   threads);
      return 1;
    }
  }

  // --- Plan vs pre-plan reference engine, whole network, 1 thread ---------
  runtime::set_num_threads(1);
  const double plan_img_s = run_once(runner, request, repeats, nullptr);
  const double ref_img_s =
      run_once(reference_runner, request, repeats, nullptr);
  const double engine_speedup = plan_img_s / ref_img_s;

  // --- Per-term kernel cost + sparsity payoff on one conv layer -----------
  // Dense 32x32x3x3 layer vs the same layer with half its filters pruned:
  // plan work is proportional to surviving entries, so the pruned layer
  // should run close to 2x faster.
  const quant::Pow2Config pow2;
  support::Rng layer_rng(3);
  tensor::Tensor w = tensor::Tensor::randn(tensor::Shape{32, 32, 3, 3},
                                           layer_rng, 0.0F, 0.3F);
  tensor::Tensor wq_dense = quant::quantize_lightnn(w, 2, pow2);
  tensor::Tensor wq_pruned(wq_dense);
  const std::int64_t filter_numel = 32 * 3 * 3;
  for (std::int64_t f = 0; f < 16; ++f) {
    float* row = wq_pruned.data() + f * filter_numel;
    std::fill(row, row + filter_numel, 0.0F);
  }
  const inference::ShiftConv2d dense(wq_dense, 2, pow2, 1, 1);
  const inference::ShiftConv2d pruned(wq_pruned, 2, pow2, 1, 1);
  tensor::Tensor layer_img =
      tensor::Tensor::randn(tensor::Shape{32, 16, 16}, layer_rng);
  const auto qimg = inference::quantize_image(layer_img, 8);
  const double dense_s =
      time_layer(layer_repeats, [&] { (void)dense.run(qimg); });
  const double pruned_s =
      time_layer(layer_repeats, [&] { (void)pruned.run(qimg); });
  const double sparse_speedup = dense_s / pruned_s;
  const double ns_per_term =
      dense_s * 1e9 / static_cast<double>(dense.term_count());

  std::printf("\nbatch=%lld repeats=%d hardware_concurrency-default=%d%s\n\n%s",
              static_cast<long long>(batch), repeats, hw,
              smoke ? " (smoke)" : "", table.to_string().c_str());
  std::printf(
      "\nplan vs reference engine (1 thread): %.1f img/s vs %.1f img/s "
      "(%.2fx)\n",
      plan_img_s, ref_img_s, engine_speedup);
  std::printf("dense conv layer: %.3f ms (%lld terms, %.1f ns/term)\n",
              dense_s * 1e3, static_cast<long long>(dense.term_count()),
              ns_per_term);
  std::printf("50%%-pruned layer: %.3f ms (%.2fx faster than dense)\n",
              pruned_s * 1e3, sparse_speedup);

  // --- Result file --------------------------------------------------------
  bench::JsonObject out;
  out.add_string("bench", "shift_engine");
  out.add_string("git_sha", bench::git_sha());
  out.add_bool("smoke", smoke);
  out.add_int("batch", batch);
  out.add_int("repeats", repeats);
  out.add_number("width_scale", parser.get_double("--width-scale"));
  out.add("thread_sweep", bench::json_array(sweep_json));
  out.add_number("plan_img_per_s_1thread", plan_img_s);
  out.add_number("reference_img_per_s_1thread", ref_img_s);
  out.add_number("plan_speedup_vs_reference", engine_speedup);
  out.add_number("dense_layer_ms", dense_s * 1e3);
  out.add_number("pruned50_layer_ms", pruned_s * 1e3);
  out.add_number("pruned50_speedup_vs_dense", sparse_speedup);
  out.add_number("ns_per_term_dense_conv", ns_per_term);
  const std::string json_path = parser.get("--json");
  if (!bench::write_json_file(json_path, out)) {
    std::fprintf(stderr, "FATAL: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
