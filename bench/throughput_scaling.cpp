// Throughput of the compiled shift-plan runtime: images/second of a Table-1
// CIFAR-10 network (id 1, VGG-7/64) swept over thread counts, the
// whole-network speedup of the compiled plan over the pre-plan reference
// engine, per-term kernel cost, and the sparsity payoff of a 50%-pruned
// layer vs its dense twin. The parallelism is across batch elements
// (BatchRunner) composed with output-filter blocks inside each kernel, all
// drawing from one shared pool -- so scaling reflects the whole runtime,
// not a single kernel.
//
//   $ ./bench/throughput_scaling [--batch N] [--repeats R] [--width-scale S]
//                                [--json PATH] [--smoke]
//
// Results are bit-identical across thread counts (asserted per sweep), so
// the img/s column is the only thing that changes. Measurements land in a
// BENCH_shift_engine.json file stamped with the git revision.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "core/quantize_model.hpp"
#include "inference/quantized_network.hpp"
#include "inference/shift_engine.hpp"
#include "inference/shift_kernels.hpp"
#include "inference/shift_plan.hpp"
#include "models/networks.hpp"
#include "quant/lightnn.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/inference_request.hpp"
#include "runtime/thread_pool.hpp"
#include "support/argparse.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace flightnn;

double run_once(const runtime::BatchRunner& runner,
                const runtime::InferenceRequest& request, int repeats,
                std::vector<tensor::Tensor>* logits_out) {
  // One warm-up pass (pool spin-up, cache warming), then timed repeats into
  // a reused result -- the zero-allocation steady state the runtime is
  // built around.
  runtime::InferenceResult result;
  runner.run(request, result);
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < repeats; ++r) {
    runner.run(request, result);
  }
  const auto stop = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration<double>(stop - start).count() / repeats;
  if (logits_out != nullptr) *logits_out = std::move(result.logits);
  return static_cast<double>(request.images.size()) / seconds;
}

bool bitwise_equal(const std::vector<tensor::Tensor>& a,
                   const std::vector<tensor::Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].shape() != b[i].shape()) return false;
    if (std::memcmp(a[i].data(), b[i].data(),
                    static_cast<std::size_t>(a[i].numel()) * sizeof(float)) !=
        0) {
      return false;
    }
  }
  return true;
}

// Median-of-repeats wall time of one engine run, in seconds.
template <typename Fn>
double time_layer(int repeats, const Fn& fn) {
  fn();  // warm-up
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    samples.push_back(std::chrono::duration<double>(stop - start).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// Interleaved A/B medians: one sample of `a`, one of `b`, repeated. Slow
// clock drift (turbo ramp-up, VM steal time) then hits both sides equally,
// which block-wise timing does not guarantee -- and the A/B ratio is the
// number this bench is accepted on.
template <typename FnA, typename FnB>
std::pair<double, double> time_layer_ab(int repeats, const FnA& a,
                                        const FnB& b) {
  a();
  b();  // warm-up
  std::vector<double> sa, sb;
  sa.reserve(static_cast<std::size_t>(repeats));
  sb.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    auto start = std::chrono::steady_clock::now();
    a();
    auto stop = std::chrono::steady_clock::now();
    sa.push_back(std::chrono::duration<double>(stop - start).count());
    start = std::chrono::steady_clock::now();
    b();
    stop = std::chrono::steady_clock::now();
    sb.push_back(std::chrono::duration<double>(stop - start).count());
  }
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  return {sa[sa.size() / 2], sb[sb.size() / 2]};
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser parser("throughput_scaling",
                            "img/s of a Table-1 CIFAR-10 network vs threads");
  parser.add_flag("--batch", "images per inference batch", "32");
  parser.add_flag("--repeats", "timed repetitions per thread count", "3");
  parser.add_flag("--width-scale", "channel-width multiplier of network 1",
                  "0.25");
  parser.add_flag("--json", "result file path", "BENCH_shift_engine.json");
  std::vector<std::string> args(argv + 1, argv + argc);
  // --smoke is a bare switch: tiny batch / single repeat, for CI.
  const auto smoke_it = std::find(args.begin(), args.end(), "--smoke");
  const bool smoke = smoke_it != args.end();
  if (smoke) args.erase(smoke_it);
  if (!parser.parse(args)) {
    std::fprintf(stderr, "%s\n%s  --smoke: CI-sized run (tiny batch, one repeat)\n",
                 parser.error().c_str(), parser.usage().c_str());
    return 1;
  }
  const std::int64_t batch = smoke ? 4 : parser.get_int("--batch");
  const int repeats = smoke ? 1 : parser.get_int("--repeats");
  const int layer_repeats = smoke ? 3 : 15;

  models::BuildOptions build;
  build.classes = 10;
  build.width_scale = static_cast<float>(parser.get_double("--width-scale"));
  build.seed = 1;
  auto model = models::build_network(models::table1_network(1), build);
  core::install_lightnn(*model, 2);

  runtime::set_num_threads(1);
  const auto network = inference::QuantizedNetwork::compile(
      *model, tensor::Shape{1, 3, 32, 32});
  inference::CompileOptions reference_options;
  reference_options.use_reference_engine = true;
  const auto reference_network = inference::QuantizedNetwork::compile(
      *model, tensor::Shape{1, 3, 32, 32}, reference_options);
  const runtime::BatchRunner runner(network);
  const runtime::BatchRunner reference_runner(reference_network);
  std::printf("plan: %s\n", network.describe().c_str());

  support::Rng rng(2);
  runtime::InferenceRequest request;
  request.images.reserve(static_cast<std::size_t>(batch));
  for (std::int64_t i = 0; i < batch; ++i) {
    request.images.push_back(
        tensor::Tensor::randn(tensor::Shape{3, 32, 32}, rng));
  }

  const int hw = runtime::num_threads();
  std::vector<int> sweep{1, 2, 4};
  if (hw > 4) sweep.push_back(hw);

  // --- Thread sweep (compiled plan) --------------------------------------
  support::Table table({"threads", "img/s", "speedup vs 1", "bit-identical"});
  std::vector<std::string> sweep_json;
  double baseline = 0.0;
  std::vector<tensor::Tensor> reference;
  for (const int threads : sweep) {
    runtime::set_num_threads(threads);
    std::vector<tensor::Tensor> logits;
    const double throughput = run_once(runner, request, repeats, &logits);
    if (threads == 1) {
      baseline = throughput;
      reference = std::move(logits);
    }
    const bool identical =
        threads == 1 || bitwise_equal(reference, logits);
    table.add_row({std::to_string(threads),
                   support::format_fixed(throughput, 1),
                   support::format_fixed(throughput / baseline, 2),
                   identical ? "yes" : "NO (BUG)"});
    bench::JsonObject point;
    point.add_int("threads", threads);
    point.add_number("img_per_s", throughput);
    point.add_number("speedup_vs_1", throughput / baseline);
    sweep_json.push_back(point.to_string(2));
    if (!identical) {
      std::fprintf(stderr, "FATAL: %d-thread output differs from serial\n",
                   threads);
      return 1;
    }
  }

  // --- Plan vs pre-plan reference engine, whole network, 1 thread ---------
  runtime::set_num_threads(1);
  const double plan_img_s = run_once(runner, request, repeats, nullptr);
  std::vector<tensor::Tensor> ref_logits;
  const double ref_img_s =
      run_once(reference_runner, request, repeats, &ref_logits);
  const double engine_speedup = plan_img_s / ref_img_s;

  // --- Per-term kernel cost + sparsity payoff on one conv layer -----------
  // Dense 32x32x3x3 layer vs the same layer with half its filters pruned:
  // plan work is proportional to surviving entries, so the pruned layer
  // should run close to 2x faster.
  const quant::Pow2Config pow2;
  support::Rng layer_rng(3);
  tensor::Tensor w = tensor::Tensor::randn(tensor::Shape{32, 32, 3, 3},
                                           layer_rng, 0.0F, 0.3F);
  tensor::Tensor wq_dense = quant::quantize_lightnn(w, 2, pow2);
  tensor::Tensor wq_pruned(wq_dense);
  const std::int64_t filter_numel = 32 * 3 * 3;
  for (std::int64_t f = 0; f < 16; ++f) {
    float* row = wq_pruned.data() + f * filter_numel;
    std::fill(row, row + filter_numel, 0.0F);
  }
  const inference::ShiftConv2d dense(wq_dense, 2, pow2, 1, 1);
  const inference::ShiftConv2d pruned(wq_pruned, 2, pow2, 1, 1);
  tensor::Tensor layer_img =
      tensor::Tensor::randn(tensor::Shape{32, 32, 32}, layer_rng);
  const auto qimg = inference::quantize_image(layer_img, 8);

  // --- Scalar vs vectorized plan path -------------------------------------
  // Same compiled plan, only the dispatch tier changes (test override pins
  // it per sample, interleaved, then clears). The ratio is the interior-conv
  // kernel speedup the vector tier buys on this host -- ~1.0x on machines
  // without AVX2 (tier 1 falls back to the scalar table) or under
  // FLIGHTNN_FORCE_SCALAR. Pruning must not change the tier a layer
  // dispatches to: a pruned plan has fewer entries, not a different layout.
  const inference::KernelTier active = inference::active_shift_kernels().tier;
  const char* active_tier = inference::kernel_tier_name(active);
  if (std::string(dense.kernel_tier(8)) != pruned.kernel_tier(8)) {
    std::fprintf(stderr, "FATAL: pruning changed kernel tier (%s vs %s)\n",
                 dense.kernel_tier(8), pruned.kernel_tier(8));
    return 1;
  }
  const auto [dense_vector_s, dense_scalar_s] = time_layer_ab(
      layer_repeats,
      [&] {
        inference::set_kernel_tier_override(1);
        (void)dense.run(qimg);
      },
      [&] {
        inference::set_kernel_tier_override(0);
        (void)dense.run(qimg);
      });
  inference::set_kernel_tier_override(-1);
  const double dense_s =
      active == inference::KernelTier::kAvx2 ? dense_vector_s : dense_scalar_s;
  const double pruned_s =
      time_layer(layer_repeats, [&] { (void)pruned.run(qimg); });
  const double sparse_speedup = dense_s / pruned_s;
  const double ns_per_term =
      dense_s * 1e9 / static_cast<double>(dense.term_count());

  // --- Interior kernel proper, both tier tables over the same plan --------
  // The whole-layer A/B above includes the guarded border walk and the float
  // dequantize tail, which run identical code on both tiers (~12% of a 32x32
  // output plane plus one float pass) and dilute the ratio. The acceptance
  // number times the dispatched interior kernel alone: the layer's compiled
  // streams, the same derived per-entry offsets the engine builds
  // (channel plane + kernel tap), per-filter zeroed planes, interleaved
  // sampling as above. On hosts without AVX2 the kAvx2 table falls back to
  // scalar and the ratio reads ~1.0x.
  const inference::ShiftPlan& dense_plan = dense.plan();
  const std::int64_t lw = 32;
  const std::int64_t lhw = lw * lw;
  std::vector<std::int64_t> entry_off(
      static_cast<std::size_t>(dense_plan.entries()));
  for (std::size_t e = 0; e < entry_off.size(); ++e) {
    entry_off[e] = static_cast<std::int64_t>(dense_plan.channel[e]) * lhw +
                   static_cast<std::int64_t>(dense_plan.ky[e]) * lw +
                   dense_plan.kx[e];
  }
  const inference::ConvInteriorGeom interior{lw, lw, 1, 1, lw - 1, 1, lw - 1};
  const auto run_interior = [&](inference::ConvInteriorFn fn,
                                std::int32_t* acc) {
    for (std::int64_t f = 0; f < 32; ++f) {
      std::fill(acc, acc + lhw, std::int32_t{0});
      fn(qimg.values.data(), entry_off.data(), dense_plan.mult.data(),
         dense_plan.filter_begin[static_cast<std::size_t>(f)],
         dense_plan.filter_begin[static_cast<std::size_t>(f) + 1], interior,
         acc);
    }
  };
  const inference::ConvInteriorFn scalar_fn =
      inference::shift_kernels_for(inference::KernelTier::kScalar)
          .conv_interior_i32;
  const inference::ConvInteriorFn vector_fn =
      inference::shift_kernels_for(inference::KernelTier::kAvx2)
          .conv_interior_i32;
  std::vector<std::int32_t> acc_scalar(static_cast<std::size_t>(lhw), 0);
  std::vector<std::int32_t> acc_vector(static_cast<std::size_t>(lhw), 0);
  run_interior(scalar_fn, acc_scalar.data());
  run_interior(vector_fn, acc_vector.data());
  if (std::memcmp(acc_scalar.data(), acc_vector.data(),
                  acc_scalar.size() * sizeof(std::int32_t)) != 0) {
    std::fprintf(stderr,
                 "FATAL: interior kernel tiers disagree on the last filter "
                 "plane\n");
    return 1;
  }
  const auto [interior_vector_s, interior_scalar_s] = time_layer_ab(
      layer_repeats, [&] { run_interior(vector_fn, acc_vector.data()); },
      [&] { run_interior(scalar_fn, acc_scalar.data()); });
  const double interior_conv_vector_speedup =
      interior_scalar_s / interior_vector_s;

  inference::set_kernel_tier_override(0);
  std::vector<tensor::Tensor> scalar_logits;
  const double scalar_img_s =
      run_once(runner, request, repeats, &scalar_logits);
  inference::set_kernel_tier_override(-1);
  // All three engines -- vectorized plan (thread-sweep baseline `reference`),
  // scalar plan, and the pre-plan reference term walk -- must produce
  // byte-identical logits: the tiers regroup the same integer addends.
  if (!bitwise_equal(reference, scalar_logits) ||
      !bitwise_equal(reference, ref_logits)) {
    std::fprintf(stderr,
                 "FATAL: kernel tiers disagree (vector vs scalar vs "
                 "reference logits)\n");
    return 1;
  }

  std::printf("\nbatch=%lld repeats=%d hardware_concurrency-default=%d%s\n\n%s",
              static_cast<long long>(batch), repeats, hw,
              smoke ? " (smoke)" : "", table.to_string().c_str());
  std::printf(
      "\nplan vs reference engine (1 thread): %.1f img/s vs %.1f img/s "
      "(%.2fx)\n",
      plan_img_s, ref_img_s, engine_speedup);
  std::printf("dense conv layer: %.3f ms (%lld terms, %.1f ns/term, %s tier)\n",
              dense_s * 1e3, static_cast<long long>(dense.term_count()),
              ns_per_term, active_tier);
  std::printf("50%%-pruned layer: %.3f ms (%.2fx faster than dense)\n",
              pruned_s * 1e3, sparse_speedup);
  std::printf("scalar-tier dense conv layer: %.3f ms\n", dense_scalar_s * 1e3);
  std::printf(
      "interior conv kernel: %.3f ms scalar vs %.3f ms vector -> "
      "%.2fx vector speedup\n",
      interior_scalar_s * 1e3, interior_vector_s * 1e3,
      interior_conv_vector_speedup);
  std::printf(
      "scalar-tier whole network (1 thread): %.1f img/s (vs %.1f img/s %s "
      "tier); vector/scalar/reference logits bit-identical\n",
      scalar_img_s, plan_img_s, active_tier);

  // --- Result file --------------------------------------------------------
  bench::JsonObject out;
  out.add_string("bench", "shift_engine");
  out.add_string("git_sha", bench::git_sha());
  out.add_bool("smoke", smoke);
  out.add_int("batch", batch);
  out.add_int("repeats", repeats);
  out.add_number("width_scale", parser.get_double("--width-scale"));
  out.add("thread_sweep", bench::json_array(sweep_json));
  out.add_number("plan_img_per_s_1thread", plan_img_s);
  out.add_number("reference_img_per_s_1thread", ref_img_s);
  out.add_number("plan_speedup_vs_reference", engine_speedup);
  out.add_number("dense_layer_ms", dense_s * 1e3);
  out.add_number("pruned50_layer_ms", pruned_s * 1e3);
  out.add_number("pruned50_speedup_vs_dense", sparse_speedup);
  out.add_number("ns_per_term_dense_conv", ns_per_term);
  out.add_string("dispatch_tier", active_tier);
  out.add_number("dense_layer_vector_ms", dense_vector_s * 1e3);
  out.add_number("dense_layer_scalar_ms", dense_scalar_s * 1e3);
  out.add_number("interior_kernel_vector_ms", interior_vector_s * 1e3);
  out.add_number("interior_kernel_scalar_ms", interior_scalar_s * 1e3);
  out.add_number("interior_conv_vector_speedup", interior_conv_vector_speedup);
  out.add_number("scalar_img_per_s_1thread", scalar_img_s);
  out.add_bool("tiers_bit_identical", true);
  bench::add_host_info(out, active_tier);
  const std::string json_path = parser.get("--json");
  if (!bench::write_json_file(json_path, out)) {
    std::fprintf(stderr, "FATAL: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
