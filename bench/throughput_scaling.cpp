// Throughput scaling of the batched inference runtime: images/second of a
// Table-1 CIFAR-10 network (id 1, VGG-7/64) compiled to the integer
// shift-add plan, swept over thread counts. The parallelism is across batch
// elements (BatchRunner) composed with output-filter blocks inside each
// kernel, all drawing from one shared pool -- so scaling reflects the whole
// runtime, not a single kernel.
//
//   $ ./bench/throughput_scaling [--batch N] [--repeats R] [--width-scale S]
//
// Results are bit-identical across thread counts (asserted per sweep), so
// the img/s column is the only thing that changes.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/quantize_model.hpp"
#include "inference/quantized_network.hpp"
#include "models/networks.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/thread_pool.hpp"
#include "support/argparse.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace flightnn;

double run_once(const runtime::BatchRunner& runner,
                const std::vector<tensor::Tensor>& images, int repeats,
                std::vector<tensor::Tensor>* logits_out) {
  // One warm-up pass (pool spin-up, cache warming), then timed repeats.
  runtime::BatchResult result = runner.run(images);
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < repeats; ++r) {
    result = runner.run(images);
  }
  const auto stop = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration<double>(stop - start).count() / repeats;
  if (logits_out != nullptr) *logits_out = std::move(result.logits);
  return static_cast<double>(images.size()) / seconds;
}

bool bitwise_equal(const std::vector<tensor::Tensor>& a,
                   const std::vector<tensor::Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].shape() != b[i].shape()) return false;
    if (std::memcmp(a[i].data(), b[i].data(),
                    static_cast<std::size_t>(a[i].numel()) * sizeof(float)) !=
        0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser parser("throughput_scaling",
                            "img/s of a Table-1 CIFAR-10 network vs threads");
  parser.add_flag("--batch", "images per inference batch", "32");
  parser.add_flag("--repeats", "timed repetitions per thread count", "3");
  parser.add_flag("--width-scale", "channel-width multiplier of network 1",
                  "0.25");
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!parser.parse(args)) {
    std::fprintf(stderr, "%s\n%s", parser.error().c_str(),
                 parser.usage().c_str());
    return 1;
  }
  const std::int64_t batch = parser.get_int("--batch");
  const int repeats = parser.get_int("--repeats");

  models::BuildOptions build;
  build.classes = 10;
  build.width_scale = static_cast<float>(parser.get_double("--width-scale"));
  build.seed = 1;
  auto model = models::build_network(models::table1_network(1), build);
  core::install_lightnn(*model, 2);

  runtime::set_num_threads(1);
  const auto network = inference::QuantizedNetwork::compile(
      *model, tensor::Shape{1, 3, 32, 32});
  const runtime::BatchRunner runner(network);
  std::printf("plan: %s\n", network.describe().c_str());

  support::Rng rng(2);
  std::vector<tensor::Tensor> images;
  images.reserve(static_cast<std::size_t>(batch));
  for (std::int64_t i = 0; i < batch; ++i) {
    images.push_back(tensor::Tensor::randn(tensor::Shape{3, 32, 32}, rng));
  }

  const int hw = runtime::num_threads();
  std::vector<int> sweep{1, 2, 4};
  if (hw > 4) sweep.push_back(hw);

  support::Table table({"threads", "img/s", "speedup vs 1", "bit-identical"});
  double baseline = 0.0;
  std::vector<tensor::Tensor> reference;
  for (const int threads : sweep) {
    runtime::set_num_threads(threads);
    std::vector<tensor::Tensor> logits;
    const double throughput = run_once(runner, images, repeats, &logits);
    if (threads == 1) {
      baseline = throughput;
      reference = std::move(logits);
    }
    const bool identical =
        threads == 1 || bitwise_equal(reference, logits);
    table.add_row({std::to_string(threads),
                   support::format_fixed(throughput, 1),
                   support::format_fixed(throughput / baseline, 2),
                   identical ? "yes" : "NO (BUG)"});
    if (!identical) {
      std::fprintf(stderr, "FATAL: %d-thread output differs from serial\n",
                   threads);
      return 1;
    }
  }
  runtime::set_num_threads(1);

  std::printf("\nbatch=%lld repeats=%d hardware_concurrency-default=%d\n\n%s",
              static_cast<long long>(batch), repeats, hw,
              table.to_string().c_str());
  return 0;
}
