// Reproduces Table 2: accuracy and FPGA throughput on CIFAR-10 for networks
// 1, 2 and 3 (VGG-7/64, ResNet-18/128, VGG-7/512) across Full, L-2, L-1,
// FP4W8A and two FLightNNs.

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace flightnn;
  bench::print_preamble("Table 2 (CIFAR-10: accuracy, storage, throughput)");

  support::Table table(
      {"ID", "Model", "Accuracy(%)", "Storage(MB)", "Throughput(img/s)",
       "Speedup"});
  for (int network_id : {1, 2, 3}) {
    auto config =
        bench::bench_experiment(network_id, data::cifar10_like(0.5F));
    const auto result = eval::run_experiment(config);
    table.add_separator();
    for (auto& row : eval::table_rows(result)) table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "paper shape check: L-1 ~ 2x L-2 throughput; FP4 between L-2 and L-1;\n"
      "FL_a near L-1 speed at higher accuracy; FL_b near L-2 accuracy.\n");
  return 0;
}
