// google-benchmark microbenchmarks for the compute kernels: quantizers,
// the shift-add inference engine vs the float reference convolution, and
// the Fig. 3 decomposition. These quantify the CPU-side costs; the
// hardware win of shifts is modeled in hw/ (a CPU has a multiplier either
// way, so shift-vs-multiply parity here is expected -- the interesting
// numbers are quantization and decomposition overheads).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/decompose.hpp"
#include "core/flightnn_transform.hpp"
#include "inference/shift_engine.hpp"
#include "nn/conv2d.hpp"
#include "quant/lightnn.hpp"
#include "runtime/thread_pool.hpp"
#include "support/rng.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace flightnn;

tensor::Tensor random_weights(std::int64_t out_ch, std::int64_t in_ch,
                              std::uint64_t seed) {
  support::Rng rng(seed);
  return tensor::Tensor::randn(tensor::Shape{out_ch, in_ch, 3, 3}, rng, 0.0F,
                               0.3F);
}

void BM_QuantizeLightNN(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  tensor::Tensor w = random_weights(64, 64, 1);
  const quant::Pow2Config config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::quantize_lightnn(w, k, config));
  }
  state.SetItemsProcessed(state.iterations() * w.numel());
}
BENCHMARK(BM_QuantizeLightNN)->Arg(1)->Arg(2);

void BM_QuantizeFLightNN(benchmark::State& state) {
  tensor::Tensor w = random_weights(64, 64, 2);
  core::FLightNNTransform transform;
  for (auto _ : state) {
    benchmark::DoNotOptimize(transform.forward(w));
  }
  state.SetItemsProcessed(state.iterations() * w.numel());
}
BENCHMARK(BM_QuantizeFLightNN);

void BM_FLightNNThresholdBackward(benchmark::State& state) {
  tensor::Tensor w = random_weights(64, 64, 3);
  core::FLightNNTransform transform;
  support::Rng rng(4);
  tensor::Tensor grad_wq = tensor::Tensor::randn(w.shape(), rng);
  tensor::Tensor grad_w(w.shape());
  for (auto _ : state) {
    transform.zero_internal_grads();
    transform.backward(w, grad_wq, grad_w);
    benchmark::DoNotOptimize(transform.threshold_grads());
  }
  state.SetItemsProcessed(state.iterations() * w.numel());
}
BENCHMARK(BM_FLightNNThresholdBackward);

void BM_Decompose(benchmark::State& state) {
  tensor::Tensor w = random_weights(64, 64, 5);
  const quant::Pow2Config config;
  tensor::Tensor wq = quant::quantize_lightnn(w, 2, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::decompose_to_lightnn1(wq, 2, config));
  }
  state.SetItemsProcessed(state.iterations() * w.numel());
}
BENCHMARK(BM_Decompose);

void BM_ShiftEngineConv(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  support::Rng rng(6);
  const quant::Pow2Config config;
  tensor::Tensor w = random_weights(32, 32, 7);
  tensor::Tensor wq = quant::quantize_lightnn(w, k, config);
  tensor::Tensor img = tensor::Tensor::randn(tensor::Shape{32, 16, 16}, rng);
  const auto qimg = inference::quantize_image(img, 8);
  inference::ShiftConv2d engine(wq, k, config, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(qimg));
  }
  // One "item" = one MAC-equivalent.
  state.SetItemsProcessed(state.iterations() * 32 * 32 * 16 * 16 * 9);
}
BENCHMARK(BM_ShiftEngineConv)->Arg(1)->Arg(2);

// The pre-plan reference term-walk on the same layer: the seed engine the
// compiled plan is measured against. BM_ShiftEngineConv/2 vs
// BM_ShiftEngineConvReference/2 is the per-layer plan speedup.
void BM_ShiftEngineConvReference(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  support::Rng rng(6);
  const quant::Pow2Config config;
  tensor::Tensor w = random_weights(32, 32, 7);
  tensor::Tensor wq = quant::quantize_lightnn(w, k, config);
  tensor::Tensor img = tensor::Tensor::randn(tensor::Shape{32, 16, 16}, rng);
  const auto qimg = inference::quantize_image(img, 8);
  inference::ShiftConv2d engine(wq, k, config, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_reference(qimg));
  }
  state.SetItemsProcessed(state.iterations() * 32 * 32 * 16 * 16 * 9);
}
BENCHMARK(BM_ShiftEngineConvReference)->Arg(1)->Arg(2);

// Sparsity elision payoff: the same layer with a fraction of its filters
// pruned to zero. Arg is the pruned percentage; plan work is proportional
// to surviving entries, so 50 should run ~2x faster than 0.
void BM_ShiftEngineConvSparse(benchmark::State& state) {
  const auto pruned_percent = static_cast<std::int64_t>(state.range(0));
  support::Rng rng(6);
  const quant::Pow2Config config;
  tensor::Tensor w = random_weights(32, 32, 7);
  tensor::Tensor wq = quant::quantize_lightnn(w, 2, config);
  const std::int64_t pruned_filters = 32 * pruned_percent / 100;
  const std::int64_t filter_numel = 32 * 3 * 3;
  for (std::int64_t f = 0; f < pruned_filters; ++f) {
    float* row = wq.data() + f * filter_numel;
    for (std::int64_t i = 0; i < filter_numel; ++i) row[i] = 0.0F;
  }
  tensor::Tensor img = tensor::Tensor::randn(tensor::Shape{32, 16, 16}, rng);
  const auto qimg = inference::quantize_image(img, 8);
  inference::ShiftConv2d engine(wq, 2, config, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(qimg));
  }
  state.SetItemsProcessed(state.iterations() * 32 * 32 * 16 * 16 * 9);
}
BENCHMARK(BM_ShiftEngineConvSparse)->Arg(0)->Arg(50)->Arg(90);

// One-time plan-compilation cost (decompose + SoA lowering), amortized over
// an engine's lifetime.
void BM_PlanCompile(benchmark::State& state) {
  const quant::Pow2Config config;
  tensor::Tensor w = random_weights(64, 64, 13);
  tensor::Tensor wq = quant::quantize_lightnn(w, 2, config);
  for (auto _ : state) {
    inference::ShiftConv2d engine(wq, 2, config, 1, 1);
    benchmark::DoNotOptimize(engine.plan().entries());
  }
  state.SetItemsProcessed(state.iterations() * w.numel());
}
BENCHMARK(BM_PlanCompile);

// Same shift-add convolution with the output-filter blocks fanned out over
// the runtime pool. Arg is the thread count; Arg(1) should match
// BM_ShiftEngineConv/2 (the serial fast path) to within noise.
void BM_ShiftEngineConvParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  support::Rng rng(6);
  const quant::Pow2Config config;
  tensor::Tensor w = random_weights(32, 32, 7);
  tensor::Tensor wq = quant::quantize_lightnn(w, 2, config);
  tensor::Tensor img = tensor::Tensor::randn(tensor::Shape{32, 16, 16}, rng);
  const auto qimg = inference::quantize_image(img, 8);
  inference::ShiftConv2d engine(wq, 2, config, 1, 1);
  runtime::set_num_threads(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(qimg));
  }
  runtime::set_num_threads(1);
  state.SetItemsProcessed(state.iterations() * 32 * 32 * 16 * 16 * 9);
}
BENCHMARK(BM_ShiftEngineConvParallel)->Arg(1)->Arg(2)->Arg(4);

// Batched float Conv2d forward (training-path kernel), parallel across the
// batch dimension. Arg is the thread count.
void BM_Conv2dForwardBatchParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  support::Rng rng(12);
  nn::Conv2d conv(16, 16, 3, 1, 1, /*with_bias=*/true, rng);
  tensor::Tensor x =
      tensor::Tensor::randn(tensor::Shape{8, 16, 16, 16}, rng);
  runtime::set_num_threads(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x, false));
  }
  runtime::set_num_threads(1);
  state.SetItemsProcessed(state.iterations() * 8 * 16 * 16 * 16 * 16 * 9);
}
BENCHMARK(BM_Conv2dForwardBatchParallel)->Arg(1)->Arg(2)->Arg(4);

void BM_ReferenceFloatConv(benchmark::State& state) {
  support::Rng rng(8);
  tensor::Tensor w = random_weights(32, 32, 9);
  tensor::Tensor img = tensor::Tensor::randn(tensor::Shape{32, 16, 16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(inference::reference_conv(w, img, 1, 1));
  }
  state.SetItemsProcessed(state.iterations() * 32 * 32 * 16 * 16 * 9);
}
BENCHMARK(BM_ReferenceFloatConv);

void BM_Im2ColGemmConv(benchmark::State& state) {
  support::Rng rng(10);
  tensor::Tensor w = random_weights(32, 32, 11);
  tensor::Tensor img = tensor::Tensor::randn(tensor::Shape{32, 16, 16}, rng);
  const tensor::ConvGeometry geom{32, 16, 16, 3, 1, 1};
  std::vector<float> cols(
      static_cast<std::size_t>(geom.patch_size() * geom.out_h() * geom.out_w()));
  tensor::Tensor out(tensor::Shape{32, geom.out_h(), geom.out_w()});
  for (auto _ : state) {
    tensor::im2col(img.data(), geom, cols.data());
    tensor::gemm(w.data(), cols.data(), out.data(), 32, geom.patch_size(),
                 geom.out_h() * geom.out_w());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 32 * 32 * 16 * 16 * 9);
}
BENCHMARK(BM_Im2ColGemmConv);

}  // namespace

// Custom main so CI can pass a bare `--smoke` switch: it becomes a short
// minimum measuring time, keeping the full suite under a few seconds.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  char min_time[] = "--benchmark_min_time=0.01";
  const auto smoke = std::find_if(args.begin(), args.end(), [](char* arg) {
    return std::strcmp(arg, "--smoke") == 0;
  });
  if (smoke != args.end()) *smoke = min_time;
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
