// google-benchmark microbenchmarks for the compute kernels: quantizers,
// the shift-add inference engine vs the float reference convolution, and
// the Fig. 3 decomposition. These quantify the CPU-side costs; the
// hardware win of shifts is modeled in hw/ (a CPU has a multiplier either
// way, so shift-vs-multiply parity here is expected -- the interesting
// numbers are quantization and decomposition overheads).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/decompose.hpp"
#include "core/flightnn_transform.hpp"
#include "inference/shift_engine.hpp"
#include "inference/shift_kernels.hpp"
#include "nn/conv2d.hpp"
#include "quant/lightnn.hpp"
#include "runtime/thread_pool.hpp"
#include "support/rng.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace flightnn;

tensor::Tensor random_weights(std::int64_t out_ch, std::int64_t in_ch,
                              std::uint64_t seed) {
  support::Rng rng(seed);
  return tensor::Tensor::randn(tensor::Shape{out_ch, in_ch, 3, 3}, rng, 0.0F,
                               0.3F);
}

void BM_QuantizeLightNN(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  tensor::Tensor w = random_weights(64, 64, 1);
  const quant::Pow2Config config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::quantize_lightnn(w, k, config));
  }
  state.SetItemsProcessed(state.iterations() * w.numel());
}
BENCHMARK(BM_QuantizeLightNN)->Arg(1)->Arg(2);

void BM_QuantizeFLightNN(benchmark::State& state) {
  tensor::Tensor w = random_weights(64, 64, 2);
  core::FLightNNTransform transform;
  for (auto _ : state) {
    benchmark::DoNotOptimize(transform.forward(w));
  }
  state.SetItemsProcessed(state.iterations() * w.numel());
}
BENCHMARK(BM_QuantizeFLightNN);

void BM_FLightNNThresholdBackward(benchmark::State& state) {
  tensor::Tensor w = random_weights(64, 64, 3);
  core::FLightNNTransform transform;
  support::Rng rng(4);
  tensor::Tensor grad_wq = tensor::Tensor::randn(w.shape(), rng);
  tensor::Tensor grad_w(w.shape());
  for (auto _ : state) {
    transform.zero_internal_grads();
    transform.backward(w, grad_wq, grad_w);
    benchmark::DoNotOptimize(transform.threshold_grads());
  }
  state.SetItemsProcessed(state.iterations() * w.numel());
}
BENCHMARK(BM_FLightNNThresholdBackward);

void BM_Decompose(benchmark::State& state) {
  tensor::Tensor w = random_weights(64, 64, 5);
  const quant::Pow2Config config;
  tensor::Tensor wq = quant::quantize_lightnn(w, 2, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::decompose_to_lightnn1(wq, 2, config));
  }
  state.SetItemsProcessed(state.iterations() * w.numel());
}
BENCHMARK(BM_Decompose);

void BM_ShiftEngineConv(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  support::Rng rng(6);
  const quant::Pow2Config config;
  tensor::Tensor w = random_weights(32, 32, 7);
  tensor::Tensor wq = quant::quantize_lightnn(w, k, config);
  tensor::Tensor img = tensor::Tensor::randn(tensor::Shape{32, 16, 16}, rng);
  const auto qimg = inference::quantize_image(img, 8);
  inference::ShiftConv2d engine(wq, k, config, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(qimg));
  }
  // One "item" = one MAC-equivalent.
  state.SetItemsProcessed(state.iterations() * 32 * 32 * 16 * 16 * 9);
}
BENCHMARK(BM_ShiftEngineConv)->Arg(1)->Arg(2);

// The pre-plan reference term-walk on the same layer: the seed engine the
// compiled plan is measured against. BM_ShiftEngineConv/2 vs
// BM_ShiftEngineConvReference/2 is the per-layer plan speedup.
void BM_ShiftEngineConvReference(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  support::Rng rng(6);
  const quant::Pow2Config config;
  tensor::Tensor w = random_weights(32, 32, 7);
  tensor::Tensor wq = quant::quantize_lightnn(w, k, config);
  tensor::Tensor img = tensor::Tensor::randn(tensor::Shape{32, 16, 16}, rng);
  const auto qimg = inference::quantize_image(img, 8);
  inference::ShiftConv2d engine(wq, k, config, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_reference(qimg));
  }
  state.SetItemsProcessed(state.iterations() * 32 * 32 * 16 * 16 * 9);
}
BENCHMARK(BM_ShiftEngineConvReference)->Arg(1)->Arg(2);

// Sparsity elision payoff: the same layer with a fraction of its filters
// pruned to zero. Arg is the pruned percentage; plan work is proportional
// to surviving entries, so 50 should run ~2x faster than 0.
void BM_ShiftEngineConvSparse(benchmark::State& state) {
  const auto pruned_percent = static_cast<std::int64_t>(state.range(0));
  support::Rng rng(6);
  const quant::Pow2Config config;
  tensor::Tensor w = random_weights(32, 32, 7);
  tensor::Tensor wq = quant::quantize_lightnn(w, 2, config);
  const std::int64_t pruned_filters = 32 * pruned_percent / 100;
  const std::int64_t filter_numel = 32 * 3 * 3;
  for (std::int64_t f = 0; f < pruned_filters; ++f) {
    float* row = wq.data() + f * filter_numel;
    for (std::int64_t i = 0; i < filter_numel; ++i) row[i] = 0.0F;
  }
  tensor::Tensor img = tensor::Tensor::randn(tensor::Shape{32, 16, 16}, rng);
  const auto qimg = inference::quantize_image(img, 8);
  inference::ShiftConv2d engine(wq, 2, config, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(qimg));
  }
  state.SetItemsProcessed(state.iterations() * 32 * 32 * 16 * 16 * 9);
}
BENCHMARK(BM_ShiftEngineConvSparse)->Arg(0)->Arg(50)->Arg(90);

// One-time plan-compilation cost (decompose + SoA lowering), amortized over
// an engine's lifetime.
void BM_PlanCompile(benchmark::State& state) {
  const quant::Pow2Config config;
  tensor::Tensor w = random_weights(64, 64, 13);
  tensor::Tensor wq = quant::quantize_lightnn(w, 2, config);
  for (auto _ : state) {
    inference::ShiftConv2d engine(wq, 2, config, 1, 1);
    benchmark::DoNotOptimize(engine.plan().entries());
  }
  state.SetItemsProcessed(state.iterations() * w.numel());
}
BENCHMARK(BM_PlanCompile);

// The same plan executed under a pinned kernel tier (Arg: 0 = scalar,
// 1 = AVX2; on a host without AVX2 the dispatcher falls back and both args
// measure the scalar kernels). The ratio Arg(0)/Arg(1) is the per-layer
// vectorization speedup; the machine-readable ns/term rows land in
// BENCH_shift_engine.json (see emit_kernel_tier_rows below).
void BM_ShiftEngineConvTier(benchmark::State& state) {
  const int tier = static_cast<int>(state.range(0));
  support::Rng rng(6);
  const quant::Pow2Config config;
  tensor::Tensor w = random_weights(32, 32, 7);
  tensor::Tensor wq = quant::quantize_lightnn(w, 2, config);
  tensor::Tensor img = tensor::Tensor::randn(tensor::Shape{32, 16, 16}, rng);
  const auto qimg = inference::quantize_image(img, 8);
  inference::ShiftConv2d engine(wq, 2, config, 1, 1);
  inference::set_kernel_tier_override(tier);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(qimg));
  }
  inference::set_kernel_tier_override(-1);
  state.SetItemsProcessed(state.iterations() * 32 * 32 * 16 * 16 * 9);
}
BENCHMARK(BM_ShiftEngineConvTier)->Arg(0)->Arg(1);

// Same shift-add convolution with the output-filter blocks fanned out over
// the runtime pool. Arg is the thread count; Arg(1) should match
// BM_ShiftEngineConv/2 (the serial fast path) to within noise.
void BM_ShiftEngineConvParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  support::Rng rng(6);
  const quant::Pow2Config config;
  tensor::Tensor w = random_weights(32, 32, 7);
  tensor::Tensor wq = quant::quantize_lightnn(w, 2, config);
  tensor::Tensor img = tensor::Tensor::randn(tensor::Shape{32, 16, 16}, rng);
  const auto qimg = inference::quantize_image(img, 8);
  inference::ShiftConv2d engine(wq, 2, config, 1, 1);
  runtime::set_num_threads(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(qimg));
  }
  runtime::set_num_threads(1);
  state.SetItemsProcessed(state.iterations() * 32 * 32 * 16 * 16 * 9);
}
BENCHMARK(BM_ShiftEngineConvParallel)->Arg(1)->Arg(2)->Arg(4);

// Batched float Conv2d forward (training-path kernel), parallel across the
// batch dimension. Arg is the thread count.
void BM_Conv2dForwardBatchParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  support::Rng rng(12);
  nn::Conv2d conv(16, 16, 3, 1, 1, /*with_bias=*/true, rng);
  tensor::Tensor x =
      tensor::Tensor::randn(tensor::Shape{8, 16, 16, 16}, rng);
  runtime::set_num_threads(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x, false));
  }
  runtime::set_num_threads(1);
  state.SetItemsProcessed(state.iterations() * 8 * 16 * 16 * 16 * 16 * 9);
}
BENCHMARK(BM_Conv2dForwardBatchParallel)->Arg(1)->Arg(2)->Arg(4);

void BM_ReferenceFloatConv(benchmark::State& state) {
  support::Rng rng(8);
  tensor::Tensor w = random_weights(32, 32, 9);
  tensor::Tensor img = tensor::Tensor::randn(tensor::Shape{32, 16, 16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(inference::reference_conv(w, img, 1, 1));
  }
  state.SetItemsProcessed(state.iterations() * 32 * 32 * 16 * 16 * 9);
}
BENCHMARK(BM_ReferenceFloatConv);

void BM_Im2ColGemmConv(benchmark::State& state) {
  support::Rng rng(10);
  tensor::Tensor w = random_weights(32, 32, 11);
  tensor::Tensor img = tensor::Tensor::randn(tensor::Shape{32, 16, 16}, rng);
  const tensor::ConvGeometry geom{32, 16, 16, 3, 1, 1};
  std::vector<float> cols(
      static_cast<std::size_t>(geom.patch_size() * geom.out_h() * geom.out_w()));
  tensor::Tensor out(tensor::Shape{32, geom.out_h(), geom.out_w()});
  for (auto _ : state) {
    tensor::im2col(img.data(), geom, cols.data());
    tensor::gemm(w.data(), cols.data(), out.data(), 32, geom.patch_size(),
                 geom.out_h() * geom.out_w());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 32 * 32 * 16 * 16 * 9);
}
BENCHMARK(BM_Im2ColGemmConv);

// Scalar-vs-vector per-kernel rows (ns/term), spliced into the
// BENCH_shift_engine.json that throughput_scaling writes so the kernel
// numbers live next to the whole-network numbers instead of stdout-only.
// Measures one conv layer (conv_interior kernel + scalar border) and one
// linear layer (shift_dot kernel) under both tiers, asserting byte-identical
// output; falls back to a standalone file when the target does not exist.
int emit_kernel_tier_rows(const std::string& path, bool smoke) {
  runtime::set_num_threads(1);
  const int repeats = smoke ? 5 : 25;
  const quant::Pow2Config config;
  support::Rng rng(21);

  tensor::Tensor wc = random_weights(32, 32, 7);
  tensor::Tensor wcq = quant::quantize_lightnn(wc, 2, config);
  const inference::ShiftConv2d conv(wcq, 2, config, 1, 1);
  tensor::Tensor img = tensor::Tensor::randn(tensor::Shape{32, 32, 32}, rng);
  const auto qimg = inference::quantize_image(img, 8);

  tensor::Tensor wl =
      tensor::Tensor::randn(tensor::Shape{256, 512}, rng, 0.0F, 0.3F);
  tensor::Tensor wlq = quant::quantize_lightnn(wl, 2, config);
  const inference::ShiftLinear linear(wlq, 2, config);
  tensor::Tensor vec = tensor::Tensor::randn(tensor::Shape{512}, rng);
  const auto qvec = inference::quantize_tensor(vec, 8);

  // Interleaved scalar/vector sampling: alternating single runs so slow
  // clock drift (turbo ramp-up, VM steal time) hits both tiers equally --
  // block-wise timing systematically favors whichever tier runs later.
  std::vector<double> cs, cv, ls, lv;
  for (std::vector<double>* v : {&cs, &cv, &ls, &lv}) {
    v->reserve(static_cast<std::size_t>(repeats));
  }
  const auto sample = [](int tier, const auto& fn) {
    inference::set_kernel_tier_override(tier);
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
  };
  sample(0, [&] { (void)conv.run(qimg); });  // warm-up both tiers
  sample(1, [&] { (void)conv.run(qimg); });
  for (int r = 0; r < repeats; ++r) {
    cs.push_back(sample(0, [&] { (void)conv.run(qimg); }));
    cv.push_back(sample(1, [&] { (void)conv.run(qimg); }));
    ls.push_back(sample(0, [&] { (void)linear.run(qvec); }));
    lv.push_back(sample(1, [&] { (void)linear.run(qvec); }));
  }
  const auto median = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double conv_scalar_s = median(cs);
  const double conv_vec_s = median(cv);
  const double lin_scalar_s = median(ls);
  const double lin_vec_s = median(lv);
  inference::set_kernel_tier_override(0);
  const tensor::Tensor conv_scalar_out = conv.run(qimg);
  const tensor::Tensor lin_scalar_out = linear.run(qvec);
  inference::set_kernel_tier_override(1);
  const tensor::Tensor conv_vec_out = conv.run(qimg);
  const tensor::Tensor lin_vec_out = linear.run(qvec);
  inference::set_kernel_tier_override(-1);
  if (std::memcmp(conv_scalar_out.data(), conv_vec_out.data(),
                  static_cast<std::size_t>(conv_scalar_out.numel()) *
                      sizeof(float)) != 0 ||
      std::memcmp(lin_scalar_out.data(), lin_vec_out.data(),
                  static_cast<std::size_t>(lin_scalar_out.numel()) *
                      sizeof(float)) != 0) {
    std::fprintf(stderr, "FATAL: scalar and vector kernel outputs differ\n");
    return 1;
  }

  const double conv_terms = static_cast<double>(conv.term_count());
  const double lin_terms = static_cast<double>(linear.term_count());
  // ns per single-shift term per output pixel for the conv layer (the plan
  // visits every term once per output position), plain ns/term for linear.
  const double conv_positions = 32.0 * 32.0;
  bench::JsonObject rows;
  rows.add_string(
      "vector_tier",
      inference::kernel_tier_name(
          inference::shift_kernels_for(inference::KernelTier::kAvx2).tier));
  rows.add_int("repeats", repeats);
  rows.add_number("conv_interior_scalar_ns_per_term",
                  conv_scalar_s * 1e9 / (conv_terms * conv_positions));
  rows.add_number("conv_interior_vector_ns_per_term",
                  conv_vec_s * 1e9 / (conv_terms * conv_positions));
  rows.add_number("conv_interior_vector_speedup", conv_scalar_s / conv_vec_s);
  rows.add_number("shift_dot_scalar_ns_per_term",
                  lin_scalar_s * 1e9 / lin_terms);
  rows.add_number("shift_dot_vector_ns_per_term", lin_vec_s * 1e9 / lin_terms);
  rows.add_number("shift_dot_vector_speedup", lin_scalar_s / lin_vec_s);
  rows.add_bool("tiers_bit_identical", true);

  if (bench::merge_into_json_file(path, "kernels_microbench", rows)) {
    std::printf("merged kernel tier rows into %s\n", path.c_str());
  } else {
    bench::JsonObject out;
    out.add_string("bench", "kernels_microbench");
    out.add_string("git_sha", bench::git_sha());
    bench::add_host_info(out, inference::kernel_tier_name(
                                  inference::active_shift_kernels().tier));
    out.add("kernels_microbench", rows.to_string(2));
    const std::string fallback = "BENCH_kernels_microbench.json";
    if (!bench::write_json_file(fallback, out)) {
      std::fprintf(stderr, "FATAL: could not write %s\n", fallback.c_str());
      return 1;
    }
    std::printf("%s not found; wrote kernel tier rows to %s\n", path.c_str(),
                fallback.c_str());
  }
  std::printf(
      "conv interior: %.2fx vector speedup; shift_dot: %.2fx vector "
      "speedup (bit-identical)\n",
      conv_scalar_s / conv_vec_s, lin_scalar_s / lin_vec_s);
  return 0;
}

}  // namespace

// Custom main so CI can pass a bare `--smoke` switch (it becomes a short
// minimum measuring time, keeping the full suite under a few seconds) and
// `--bench-json PATH` (the BENCH_shift_engine.json to splice the kernel
// tier rows into; default looks in the working directory).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string bench_json = "BENCH_shift_engine.json";
  const auto json_it = std::find_if(args.begin(), args.end(), [](char* arg) {
    return std::strcmp(arg, "--bench-json") == 0;
  });
  if (json_it != args.end() && json_it + 1 != args.end()) {
    bench_json = *(json_it + 1);
    args.erase(json_it, json_it + 2);
  }
  char min_time[] = "--benchmark_min_time=0.01";
  const auto smoke = std::find_if(args.begin(), args.end(), [](char* arg) {
    return std::strcmp(arg, "--smoke") == 0;
  });
  const bool is_smoke = smoke != args.end();
  if (is_smoke) *smoke = min_time;
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return emit_kernel_tier_rows(bench_json, is_smoke);
}
