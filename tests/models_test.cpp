#include "models/networks.hpp"

#include <gtest/gtest.h>

#include "core/quantize_model.hpp"
#include "nn/conv2d.hpp"

namespace flightnn::models {
namespace {

TEST(Table1Test, AllEightConfigsExist) {
  const auto all = table1_all();
  ASSERT_EQ(all.size(), 8u);
  EXPECT_EQ(all[0].structure, Structure::kVgg);
  EXPECT_EQ(all[1].structure, Structure::kResNet);
  EXPECT_EQ(all[7].depth, 10);
  EXPECT_THROW((void)table1_network(0), std::invalid_argument);
  EXPECT_THROW((void)table1_network(9), std::invalid_argument);
}

TEST(Table1Test, ParameterCountsMatchPaperWithinTolerance) {
  // Build each network at full width and compare against Table 1's numbers.
  // Paper counts conv + fc weights; we allow 30% slack for head/bn details.
  for (const auto& config : table1_all()) {
    BuildOptions opt;
    opt.classes = config.paper_dataset == "CIFAR-100" ? 100
                  : config.paper_dataset == "ImageNet" ? 50
                                                       : 10;
    opt.act_bits = 0;
    auto model = build_network(config, opt);
    const double params_m =
        static_cast<double>(parameter_count(*model)) / 1e6;
    EXPECT_GT(params_m, config.params_approx_m * 0.6)
        << "network " << config.id;
    EXPECT_LT(params_m, config.params_approx_m * 1.4)
        << "network " << config.id;
  }
}

TEST(BuildTest, VggDepthMatchesConvCount) {
  for (int id : {1, 3, 4, 5}) {
    const auto config = table1_network(id);
    BuildOptions opt;
    opt.act_bits = 0;
    auto model = build_network(config, opt);
    int convs = 0;
    model->visit([&](nn::Layer& layer) {
      if (dynamic_cast<nn::Conv2d*>(&layer) != nullptr) ++convs;
    });
    EXPECT_EQ(convs, config.depth) << "network " << id;
  }
}

TEST(BuildTest, ResNetConvCount) {
  // Depth counts trunk convolutions: stem + 2 per block. Projection
  // shortcuts add 1x1 convs on top.
  const auto config = table1_network(8);  // ResNet-10
  BuildOptions opt;
  opt.act_bits = 0;
  auto model = build_network(config, opt);
  int convs3x3 = 0, convs1x1 = 0;
  model->visit([&](nn::Layer& layer) {
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      if (conv->kernel() == 3) ++convs3x3;
      else ++convs1x1;
    }
  });
  EXPECT_EQ(convs3x3, 9);   // stem + 4 blocks x 2
  EXPECT_EQ(convs1x1, 3);   // stages 2-4 projections
}

TEST(BuildTest, ForwardShapes) {
  support::Rng rng(1);
  for (int id = 1; id <= 8; ++id) {
    const auto config = table1_network(id);
    BuildOptions opt;
    opt.classes = 10;
    opt.width_scale = 0.25F;  // keep the test fast
    auto model = build_network(config, opt);
    tensor::Tensor x = tensor::Tensor::randn(tensor::Shape{2, 3, 32, 32}, rng);
    tensor::Tensor y = model->forward(x, false);
    EXPECT_EQ(y.shape(), (tensor::Shape{2, 10})) << "network " << id;
  }
}

TEST(BuildTest, ActQuantToggles) {
  const auto config = table1_network(4);
  BuildOptions with_quant;
  with_quant.act_bits = 8;
  auto quantized = build_network(config, with_quant);
  int aq = 0;
  quantized->visit([&](nn::Layer& layer) {
    if (layer.name() == "act_quant") ++aq;
  });
  EXPECT_GT(aq, 0);

  BuildOptions without;
  without.act_bits = 0;
  auto full = build_network(config, without);
  aq = 0;
  full->visit([&](nn::Layer& layer) {
    if (layer.name() == "act_quant") ++aq;
  });
  EXPECT_EQ(aq, 0);
}

TEST(BuildTest, WidthScaleShrinksParams) {
  const auto config = table1_network(5);
  BuildOptions big, small;
  big.width_scale = 1.0F;
  small.width_scale = 0.25F;
  auto model_big = build_network(config, big);
  auto model_small = build_network(config, small);
  EXPECT_LT(parameter_count(*model_small), parameter_count(*model_big) / 4);
}

TEST(BuildTest, DeterministicInSeed) {
  const auto config = table1_network(4);
  BuildOptions opt;
  opt.seed = 11;
  auto a = build_network(config, opt);
  auto b = build_network(config, opt);
  auto pa = a->parameters();
  auto pb = b->parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_LT(tensor::max_abs_diff(pa[i]->value, pb[i]->value), 1e-9F);
  }
}

TEST(BuildTest, ConvWidthsProgressions) {
  EXPECT_EQ(conv_widths(table1_network(1)),
            (std::vector<std::int64_t>{8, 16, 16, 32, 32, 64, 64}));
  EXPECT_EQ(conv_widths(table1_network(4)),
            (std::vector<std::int64_t>{16, 32, 32, 64}));
  const auto resnet18 = conv_widths(table1_network(2));
  EXPECT_EQ(resnet18.size(), 17u);  // stem + 8 blocks x 2
  EXPECT_EQ(resnet18.front(), 16);
  EXPECT_EQ(resnet18.back(), 128);
}

TEST(QuantizeModelTest, InstallersCoverAllQuantizableLayers) {
  const auto config = table1_network(4);
  BuildOptions opt;
  opt.width_scale = 0.5F;
  auto model = build_network(config, opt);
  const auto layers = core::quantizable_layers(*model);
  EXPECT_EQ(layers.size(), 5u);  // 4 convs + 1 linear head

  core::install_lightnn(*model, 2);
  for (const auto& layer : core::quantizable_layers(*model)) {
    ASSERT_NE(layer.transform, nullptr);
    EXPECT_EQ(layer.transform->describe(), "lightnn-k2");
  }

  const auto transforms = core::install_flightnn(*model, core::FLightNNConfig{});
  EXPECT_EQ(transforms.size(), 5u);
  for (const auto& layer : core::quantizable_layers(*model)) {
    EXPECT_EQ(layer.transform->describe(), "flightnn[kmax=2]");
  }

  core::install_full_precision(*model);
  for (const auto& layer : core::quantizable_layers(*model)) {
    EXPECT_EQ(layer.transform, nullptr);
  }
}

}  // namespace
}  // namespace flightnn::models
