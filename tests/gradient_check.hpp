#pragma once

// Finite-difference gradient checking for Layer implementations. The probe
// loss is L = sum(output * G) for a fixed random G, whose analytic gradient
// w.r.t. the output is simply G; layers then propagate it back and we compare
// each input/parameter partial against a central difference.

#include <cmath>
#include <gtest/gtest.h>

#include "nn/layer.hpp"
#include "support/rng.hpp"
#include "tensor/tensor.hpp"

namespace flightnn::testing {

inline float probe_loss(const tensor::Tensor& output, const tensor::Tensor& g) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < output.numel(); ++i) {
    acc += static_cast<double>(output[i]) * g[i];
  }
  return static_cast<float>(acc);
}

// Check dL/d(input) for a layer. `epsilon` and `tolerance` default to values
// that work for smooth layers in float32; pass looser ones for kinked
// layers (ReLU-family) or use inputs away from kinks.
inline void check_input_gradient(nn::Layer& layer, const tensor::Tensor& input,
                                 std::uint64_t seed, float epsilon = 1e-3F,
                                 float tolerance = 2e-2F) {
  support::Rng rng(seed);
  tensor::Tensor out = layer.forward(input, /*training=*/true);
  tensor::Tensor g = tensor::Tensor::randn(out.shape(), rng);
  tensor::Tensor grad_input = layer.backward(g);
  ASSERT_EQ(grad_input.shape(), input.shape());

  for (std::int64_t i = 0; i < input.numel(); ++i) {
    tensor::Tensor plus = input;
    tensor::Tensor minus = input;
    plus[i] += epsilon;
    minus[i] -= epsilon;
    const float lp = probe_loss(layer.forward(plus, true), g);
    const float lm = probe_loss(layer.forward(minus, true), g);
    const float numeric = (lp - lm) / (2.0F * epsilon);
    const float analytic = grad_input[i];
    const float scale = std::max({1.0F, std::fabs(numeric), std::fabs(analytic)});
    EXPECT_NEAR(analytic / scale, numeric / scale, tolerance)
        << "input element " << i;
  }
}

// Check dL/d(param) for one parameter of a layer.
inline void check_param_gradient(nn::Layer& layer, const tensor::Tensor& input,
                                 nn::Parameter& param, std::uint64_t seed,
                                 float epsilon = 1e-3F, float tolerance = 2e-2F) {
  support::Rng rng(seed);
  tensor::Tensor out = layer.forward(input, /*training=*/true);
  tensor::Tensor g = tensor::Tensor::randn(out.shape(), rng);
  param.zero_grad();
  (void)layer.backward(g);
  tensor::Tensor analytic = param.grad;

  for (std::int64_t i = 0; i < param.value.numel(); ++i) {
    const float original = param.value[i];
    param.value[i] = original + epsilon;
    const float lp = probe_loss(layer.forward(input, true), g);
    param.value[i] = original - epsilon;
    const float lm = probe_loss(layer.forward(input, true), g);
    param.value[i] = original;
    const float numeric = (lp - lm) / (2.0F * epsilon);
    const float scale =
        std::max({1.0F, std::fabs(numeric), std::fabs(analytic[i])});
    EXPECT_NEAR(analytic[i] / scale, numeric / scale, tolerance)
        << "param " << param.name << " element " << i;
  }
}

}  // namespace flightnn::testing
