// Integration test for the eval::run_experiment harness at a very small
// scale: checks the variant roster, the structural relationships between
// variants (storage ratios, throughput ordering, mean-k ranges), and the
// table renderer. Accuracy values are asserted only against chance.

#include <gtest/gtest.h>

#include "eval/experiment.hpp"
#include "eval/storage.hpp"

namespace flightnn::eval {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.network_id = 4;  // smallest topology (VGG-4/64)
  config.dataset = data::svhn_like(0.1F);
  config.dataset.train_size = 512;
  config.dataset.test_size = 128;
  config.dataset.noise = 1.0F;  // keep the tiny budget learnable
  config.train.epochs = 4;
  config.train.batch_size = 32;
  config.build.width_scale = 0.25F;
  return config;
}

class ExperimentTest : public ::testing::Test {
 protected:
  // One shared run for all assertions (training is the expensive part).
  static const ExperimentResult& result() {
    static const ExperimentResult shared = run_experiment(tiny_config());
    return shared;
  }
};

TEST_F(ExperimentTest, VariantRoster) {
  const auto& variants = result().variants;
  ASSERT_EQ(variants.size(), 6u);
  EXPECT_EQ(variants[0].label, "Full");
  EXPECT_EQ(variants[1].label, "L-2 8W8A");
  EXPECT_EQ(variants[2].label, "L-1 4W8A");
  EXPECT_EQ(variants[3].label, "FP 4W8A");
  EXPECT_EQ(variants[4].label, "FL4a");
  EXPECT_EQ(variants[5].label, "FL4b");
}

TEST_F(ExperimentTest, AccuraciesAboveChance) {
  for (const auto& variant : result().variants) {
    EXPECT_GT(variant.accuracy, 100.0 / 10 * 1.5) << variant.label;
    EXPECT_LE(variant.accuracy, 100.0) << variant.label;
  }
}

TEST_F(ExperimentTest, StorageRatiosMatchEncodings) {
  const auto& v = result().variants;
  const double full = v[0].storage_bytes;
  EXPECT_NEAR(full / v[1].storage_bytes, 4.0, 0.6);  // L-2: 8 bits
  EXPECT_NEAR(full / v[2].storage_bytes, 8.0, 1.2);  // L-1: 4 bits
  EXPECT_NEAR(full / v[3].storage_bytes, 8.0, 1.2);  // FP4: 4 bits
  // FLightNNs sit between L-1 and L-2 (inclusive, plus small tag overhead).
  for (std::size_t i : {4u, 5u}) {
    EXPECT_GE(v[i].storage_bytes, v[2].storage_bytes * 0.98) << v[i].label;
    EXPECT_LE(v[i].storage_bytes, v[1].storage_bytes * 1.05) << v[i].label;
  }
}

TEST_F(ExperimentTest, ThroughputOrderingMatchesPaper) {
  const auto& v = result().variants;
  EXPECT_LT(v[0].fpga.throughput, v[1].fpga.throughput);  // Full < L-2
  EXPECT_LT(v[1].fpga.throughput, v[3].fpga.throughput);  // L-2 < FP4
  EXPECT_LT(v[3].fpga.throughput, v[2].fpga.throughput);  // FP4 < L-1
  // FL between L-2 and L-1 inclusive.
  for (std::size_t i : {4u, 5u}) {
    EXPECT_GE(v[i].fpga.throughput, v[1].fpga.throughput * 0.99) << v[i].label;
    EXPECT_LE(v[i].fpga.throughput, v[2].fpga.throughput * 1.01) << v[i].label;
  }
  // Speedup is relative to Full.
  EXPECT_DOUBLE_EQ(v[0].speedup, 1.0);
  EXPECT_GT(v[2].speedup, 5.0);
}

TEST_F(ExperimentTest, MeanKRanges) {
  const auto& v = result().variants;
  EXPECT_DOUBLE_EQ(v[0].mean_k, 1.0);
  EXPECT_DOUBLE_EQ(v[1].mean_k, 2.0);
  EXPECT_DOUBLE_EQ(v[2].mean_k, 1.0);
  for (std::size_t i : {4u, 5u}) {
    EXPECT_GE(v[i].mean_k, 0.0) << v[i].label;
    EXPECT_LE(v[i].mean_k, 2.0) << v[i].label;
  }
}

TEST_F(ExperimentTest, EnergyOrderingMatchesFig5) {
  const auto& v = result().variants;
  EXPECT_GT(v[0].energy_uj, v[1].energy_uj);  // Full >> L-2
  EXPECT_GT(v[1].energy_uj, v[2].energy_uj);  // L-2 > L-1
  EXPECT_GT(v[1].energy_uj, v[3].energy_uj);  // L-2 > FP4
}

TEST_F(ExperimentTest, TableRowsRender) {
  const auto rows = table_rows(result());
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& row : rows) {
    ASSERT_EQ(row.size(), 6u);
    EXPECT_EQ(row[0], "4");
    EXPECT_FALSE(row[2].empty());
  }
}

TEST_F(ExperimentTest, ImageNetStyleConfigSkipsBaselines) {
  auto config = tiny_config();
  config.include_full = false;
  config.include_fixed_point = false;
  config.top_k = 5;
  config.train.epochs = 1;
  const auto result = run_experiment(config);
  ASSERT_EQ(result.variants.size(), 4u);
  EXPECT_EQ(result.variants[0].label, "L-2 8W8A");
  // Speedup baseline falls back to L-2.
  EXPECT_DOUBLE_EQ(result.variants[0].speedup, 1.0);
  EXPECT_NEAR(result.variants[1].speedup, 2.0, 0.3);  // L-1 vs L-2
}

TEST(ReferenceStorageTest, SpecDrivenBits) {
  models::BuildOptions opt;
  opt.width_scale = 0.5F;
  auto model = models::build_network(models::table1_network(4), opt);
  const double full = reference_storage_bytes(*model, hw::QuantSpec::full());
  const double l2 = reference_storage_bytes(*model, hw::QuantSpec::lightnn(2));
  const double l1 = reference_storage_bytes(*model, hw::QuantSpec::lightnn(1));
  const double fl = reference_storage_bytes(*model, hw::QuantSpec::flightnn(1.5));
  EXPECT_NEAR(full / l2, 4.0, 0.5);
  EXPECT_NEAR(full / l1, 8.0, 1.0);
  EXPECT_GT(fl, l1);
  EXPECT_LT(fl, l2 * 1.05);
}

}  // namespace
}  // namespace flightnn::eval
