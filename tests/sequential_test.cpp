// Tests for Sequential and ResidualBlock containers, including end-to-end
// gradient checks through composed stacks.

#include <gtest/gtest.h>

#include "gradient_check.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/residual.hpp"
#include "nn/sequential.hpp"
#include "quant/lightnn.hpp"

namespace flightnn::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(SequentialTest, ChainsLayers) {
  support::Rng rng(1);
  Sequential seq;
  seq.emplace<Conv2d>(1, 2, 3, 1, 1, true, rng);
  seq.emplace<LeakyReLU>(0.01F);
  seq.emplace<GlobalAvgPool>();
  Tensor x = Tensor::randn(Shape{2, 1, 4, 4}, rng);
  Tensor y = seq.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 2}));
  EXPECT_EQ(seq.size(), 3u);
}

TEST(SequentialTest, CollectsParameters) {
  support::Rng rng(2);
  Sequential seq;
  seq.emplace<Conv2d>(1, 2, 3, 1, 1, true, rng);   // weight + bias
  seq.emplace<BatchNorm2d>(2);                      // gamma + beta
  seq.emplace<Linear>(2, 3, true, rng);             // weight + bias
  EXPECT_EQ(seq.parameters().size(), 6u);
}

TEST(SequentialTest, EndToEndGradient) {
  support::Rng rng(3);
  Sequential seq;
  seq.emplace<Conv2d>(1, 2, 3, 1, 1, true, rng);
  seq.emplace<LeakyReLU>(0.2F);
  seq.emplace<GlobalAvgPool>();
  seq.emplace<Linear>(2, 3, true, rng);
  Tensor x = Tensor::randn(Shape{1, 1, 4, 4}, rng);
  testing::check_input_gradient(seq, x, 70, 1e-2F, 3e-2F);
}

TEST(SequentialTest, CollectsTransforms) {
  support::Rng rng(4);
  Sequential seq;
  auto* conv = seq.emplace<Conv2d>(1, 2, 3, 1, 1, false, rng);
  conv->set_transform(std::make_shared<quant::LightNNTransform>(1));
  seq.emplace<LeakyReLU>();
  auto* lin = seq.emplace<Linear>(2, 2, false, rng);
  lin->set_transform(std::make_shared<quant::LightNNTransform>(2));
  EXPECT_EQ(seq.transforms().size(), 2u);
}

TEST(SequentialTest, VisitReachesAllLeaves) {
  support::Rng rng(5);
  Sequential seq;
  seq.emplace<Conv2d>(1, 2, 3, 1, 1, false, rng);
  seq.emplace<LeakyReLU>();
  int visited = 0;
  seq.visit([&](Layer&) { ++visited; });
  EXPECT_EQ(visited, 3);  // the Sequential itself + 2 leaves
}

ResidualBlock make_block(std::int64_t in_ch, std::int64_t out_ch,
                         std::int64_t stride, support::Rng& rng) {
  auto main_path = std::make_unique<Sequential>();
  main_path->emplace<Conv2d>(in_ch, out_ch, 3, stride, 1, false, rng);
  main_path->emplace<BatchNorm2d>(out_ch);
  main_path->emplace<LeakyReLU>(0.01F);
  main_path->emplace<Conv2d>(out_ch, out_ch, 3, 1, 1, false, rng);
  main_path->emplace<BatchNorm2d>(out_ch);
  std::unique_ptr<Sequential> shortcut;
  if (stride != 1 || in_ch != out_ch) {
    shortcut = std::make_unique<Sequential>();
    shortcut->emplace<Conv2d>(in_ch, out_ch, 1, stride, 0, false, rng);
    shortcut->emplace<BatchNorm2d>(out_ch);
  }
  auto post = std::make_unique<Sequential>();
  post->emplace<LeakyReLU>(0.01F);
  return ResidualBlock(std::move(main_path), std::move(shortcut), std::move(post));
}

TEST(ResidualBlockTest, IdentitySkipShape) {
  support::Rng rng(6);
  ResidualBlock block = make_block(4, 4, 1, rng);
  Tensor x = Tensor::randn(Shape{2, 4, 8, 8}, rng);
  EXPECT_EQ(block.forward(x, false).shape(), x.shape());
  EXPECT_FALSE(block.has_projection());
}

TEST(ResidualBlockTest, ProjectionSkipShape) {
  support::Rng rng(7);
  ResidualBlock block = make_block(4, 8, 2, rng);
  Tensor x = Tensor::randn(Shape{1, 4, 8, 8}, rng);
  EXPECT_EQ(block.forward(x, false).shape(), (Shape{1, 8, 4, 4}));
  EXPECT_TRUE(block.has_projection());
}

TEST(ResidualBlockTest, SkipPathCarriesSignal) {
  // Zero the main path entirely: output must equal post(skip(x)) = act(x).
  support::Rng rng(8);
  ResidualBlock block = make_block(2, 2, 1, rng);
  for (auto* param : block.parameters()) {
    if (param->name == "conv.weight" || param->name == "bn.gamma") {
      param->value.fill(0.0F);
    }
  }
  Tensor x(Shape{1, 2, 3, 3}, 1.0F);
  Tensor y = block.forward(x, false);
  // LeakyReLU(1.0) = 1.0.
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y[i], 1.0F);
}

TEST(ResidualBlockTest, GradientThroughIdentitySkip) {
  support::Rng rng(9);
  ResidualBlock block = make_block(2, 2, 1, rng);
  Tensor x = Tensor::randn(Shape{1, 2, 4, 4}, rng);
  testing::check_input_gradient(block, x, 71, 1e-2F, 4e-2F);
}

TEST(ResidualBlockTest, GradientThroughProjectionSkip) {
  support::Rng rng(10);
  ResidualBlock block = make_block(2, 4, 2, rng);
  Tensor x = Tensor::randn(Shape{1, 2, 4, 4}, rng);
  testing::check_input_gradient(block, x, 72, 1e-2F, 4e-2F);
}

TEST(ResidualBlockTest, ParametersFromAllBranches) {
  support::Rng rng(11);
  ResidualBlock with_proj = make_block(2, 4, 2, rng);
  // main: 2 convs (1 param each, no bias) + 2 bn (2 each) = 6
  // shortcut: conv + bn = 3; post: none. Total 9.
  EXPECT_EQ(with_proj.parameters().size(), 9u);
  ResidualBlock identity = make_block(2, 2, 1, rng);
  EXPECT_EQ(identity.parameters().size(), 6u);
}

TEST(ResidualBlockTest, NestedTransformsDiscovered) {
  support::Rng rng(12);
  Sequential model;
  auto main_path = std::make_unique<Sequential>();
  auto* conv = main_path->emplace<Conv2d>(2, 2, 3, 1, 1, false, rng);
  conv->set_transform(std::make_shared<quant::LightNNTransform>(1));
  main_path->emplace<BatchNorm2d>(2);
  auto post = std::make_unique<Sequential>();
  post->emplace<LeakyReLU>();
  model.add(std::make_unique<ResidualBlock>(std::move(main_path), nullptr,
                                            std::move(post)));
  EXPECT_EQ(model.transforms().size(), 1u);
}

}  // namespace
}  // namespace flightnn::nn
