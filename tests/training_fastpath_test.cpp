// Differential and determinism tests for the GEMM training fast path:
//   - property sweep: random conv geometries, GEMM forward/backward against
//     the retained naive reference kernels;
//   - finite-difference gradient checks running through the GEMM path;
//   - bitwise thread-count invariance of the layer kernels and of the
//     FLightNN regularizer / threshold gradients (fixed-block reductions).

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/flightnn_transform.hpp"
#include "gradient_check.hpp"
#include "nn/conv2d.hpp"
#include "nn/layer.hpp"
#include "nn/linear.hpp"
#include "quant/lightnn.hpp"
#include "runtime/thread_pool.hpp"
#include "support/rng.hpp"
#include "tensor/tensor.hpp"

namespace flightnn {
namespace {

void expect_tensor_close(const tensor::Tensor& actual,
                         const tensor::Tensor& expected, float tol,
                         const char* what) {
  ASSERT_EQ(actual.shape(), expected.shape()) << what;
  for (std::int64_t i = 0; i < actual.numel(); ++i) {
    const float scale =
        std::max({1.0F, std::fabs(actual[i]), std::fabs(expected[i])});
    ASSERT_NEAR(actual[i] / scale, expected[i] / scale, tol)
        << what << " element " << i;
  }
}

// One forward + backward on each path of the same layer, grads compared.
// The reference pass runs second so the fast pass cannot copy its caches.
void check_conv_paths(nn::Conv2d& conv, const tensor::Tensor& x,
                      support::Rng& rng) {
  tensor::Tensor out_fast = conv.forward(x, /*training=*/true);
  tensor::Tensor g = tensor::Tensor::randn(out_fast.shape(), rng);

  conv.weight().zero_grad();
  conv.bias().zero_grad();
  tensor::Tensor gin_fast = conv.backward(g);
  tensor::Tensor wgrad_fast = conv.weight().grad;
  tensor::Tensor bgrad_fast = conv.bias().grad;

  conv.weight().zero_grad();
  conv.bias().zero_grad();
  tensor::Tensor out_ref = conv.forward_reference(x, /*training=*/true);
  tensor::Tensor gin_ref = conv.backward_reference(g);

  // The paths reassociate float sums (blocked vs naive accumulation), so
  // compare within an accumulation-length-scaled tolerance, not bitwise.
  expect_tensor_close(out_fast, out_ref, 1e-4F, "conv output");
  expect_tensor_close(gin_fast, gin_ref, 1e-4F, "conv grad_input");
  expect_tensor_close(wgrad_fast, conv.weight().grad, 1e-4F, "conv grad_w");
  expect_tensor_close(bgrad_fast, conv.bias().grad, 1e-4F, "conv grad_b");
}

TEST(TrainingFastPathTest, ConvPropertySweep) {
  support::Rng rng(7);
  for (int trial = 0; trial < 12; ++trial) {
    const auto batch = static_cast<std::int64_t>(rng.uniform_index(3)) + 1;
    const auto in_ch = static_cast<std::int64_t>(rng.uniform_index(4)) + 1;
    const auto out_ch = static_cast<std::int64_t>(rng.uniform_index(6)) + 1;
    const auto kernel = static_cast<std::int64_t>(rng.uniform_index(3)) + 1;
    const auto stride = static_cast<std::int64_t>(rng.uniform_index(2)) + 1;
    const auto padding = static_cast<std::int64_t>(rng.uniform_index(3));
    const auto h = kernel + static_cast<std::int64_t>(rng.uniform_index(7));
    const auto w = kernel + static_cast<std::int64_t>(rng.uniform_index(7));
    SCOPED_TRACE(::testing::Message()
                 << "trial " << trial << ": N=" << batch << " C=" << in_ch
                 << " O=" << out_ch << " HxW=" << h << "x" << w
                 << " k=" << kernel << " s=" << stride << " p=" << padding);

    nn::Conv2d conv(in_ch, out_ch, kernel, stride, padding, /*with_bias=*/true,
                    rng);
    tensor::Tensor x =
        tensor::Tensor::randn(tensor::Shape{batch, in_ch, h, w}, rng);
    check_conv_paths(conv, x, rng);
  }
}

TEST(TrainingFastPathTest, LinearPathsAgree) {
  support::Rng rng(8);
  for (std::int64_t batch : {1, 3, 33}) {
    nn::Linear linear(19, 11, /*with_bias=*/true, rng);
    tensor::Tensor x =
        tensor::Tensor::randn(tensor::Shape{batch, 19}, rng);
    tensor::Tensor out_fast = linear.forward(x, /*training=*/true);
    tensor::Tensor g = tensor::Tensor::randn(out_fast.shape(), rng);

    linear.weight().zero_grad();
    linear.bias().zero_grad();
    tensor::Tensor gin_fast = linear.backward(g);
    tensor::Tensor wgrad_fast = linear.weight().grad;
    tensor::Tensor bgrad_fast = linear.bias().grad;

    linear.weight().zero_grad();
    linear.bias().zero_grad();
    tensor::Tensor out_ref = linear.forward_reference(x, /*training=*/true);
    tensor::Tensor gin_ref = linear.backward_reference(g);

    expect_tensor_close(out_fast, out_ref, 1e-4F, "linear output");
    expect_tensor_close(gin_fast, gin_ref, 1e-4F, "linear grad_input");
    expect_tensor_close(wgrad_fast, linear.weight().grad, 1e-4F,
                        "linear grad_w");
    expect_tensor_close(bgrad_fast, linear.bias().grad, 1e-4F,
                        "linear grad_b");
  }
}

// Finite-difference checks routed through the default (GEMM) kernel path.
TEST(TrainingFastPathTest, ConvGradientCheckOnGemmPath) {
  ASSERT_EQ(nn::train_kernel_path(), nn::TrainKernelPath::kGemm);
  support::Rng rng(9);
  nn::Conv2d conv(2, 3, 3, 1, 1, /*with_bias=*/true, rng);
  tensor::Tensor x = tensor::Tensor::randn(tensor::Shape{2, 2, 5, 5}, rng);
  testing::check_input_gradient(conv, x, 101);
  testing::check_param_gradient(conv, x, conv.weight(), 102);
  testing::check_param_gradient(conv, x, conv.bias(), 103);
}

TEST(TrainingFastPathTest, LinearGradientCheckOnGemmPath) {
  ASSERT_EQ(nn::train_kernel_path(), nn::TrainKernelPath::kGemm);
  support::Rng rng(10);
  nn::Linear linear(7, 5, /*with_bias=*/true, rng);
  tensor::Tensor x = tensor::Tensor::randn(tensor::Shape{4, 7}, rng);
  testing::check_input_gradient(linear, x, 104);
  testing::check_param_gradient(linear, x, linear.weight(), 105);
  testing::check_param_gradient(linear, x, linear.bias(), 106);
}

TEST(TrainingFastPathTest, ConvTrainStepBitIdenticalAcrossThreadCounts) {
  support::Rng rng(11);
  nn::Conv2d conv(3, 8, 3, 1, 1, /*with_bias=*/true, rng);
  tensor::Tensor x = tensor::Tensor::randn(tensor::Shape{4, 3, 12, 12}, rng);

  runtime::set_num_threads(1);
  tensor::Tensor out1 = conv.forward(x, /*training=*/true);
  tensor::Tensor g = tensor::Tensor::randn(out1.shape(), rng);
  conv.weight().zero_grad();
  conv.bias().zero_grad();
  tensor::Tensor gin1 = conv.backward(g);
  tensor::Tensor wgrad1 = conv.weight().grad;

  for (int threads : {2, 4, 7}) {
    runtime::set_num_threads(threads);
    tensor::Tensor out = conv.forward(x, /*training=*/true);
    conv.weight().zero_grad();
    conv.bias().zero_grad();
    tensor::Tensor gin = conv.backward(g);
    EXPECT_EQ(std::memcmp(out.data(), out1.data(),
                          static_cast<std::size_t>(out.numel()) *
                              sizeof(float)),
              0)
        << "forward, threads=" << threads;
    EXPECT_EQ(std::memcmp(gin.data(), gin1.data(),
                          static_cast<std::size_t>(gin.numel()) *
                              sizeof(float)),
              0)
        << "grad_input, threads=" << threads;
    EXPECT_EQ(std::memcmp(conv.weight().grad.data(), wgrad1.data(),
                          static_cast<std::size_t>(wgrad1.numel()) *
                              sizeof(float)),
              0)
        << "grad_w, threads=" << threads;
  }
  runtime::set_num_threads(0);
}

TEST(TrainingFastPathTest, RegularizerBitIdenticalAcrossThreadCounts) {
  support::Rng rng(12);
  core::FLightNNConfig config;
  config.k_max = 2;
  core::FLightNNTransform transform(config);
  tensor::Tensor w = tensor::Tensor::randn(tensor::Shape{64, 3, 3, 3}, rng,
                                           0.0F, 0.5F);
  tensor::Tensor grad_wq = tensor::Tensor::randn(w.shape(), rng);

  runtime::set_num_threads(1);
  tensor::Tensor reg_grad1(w.shape());
  const double loss1 = transform.regularization(w, &reg_grad1);
  transform.zero_internal_grads();
  tensor::Tensor unused(w.shape());
  transform.backward(w, grad_wq, unused);
  const std::vector<float> tgrads1 = transform.threshold_grads();

  for (int threads : {2, 4, 7}) {
    runtime::set_num_threads(threads);
    tensor::Tensor reg_grad(w.shape());
    const double loss = transform.regularization(w, &reg_grad);
    // The loss reduces through fixed filter blocks, so it must match down to
    // the last bit, not within a tolerance.
    EXPECT_EQ(loss, loss1) << "threads=" << threads;
    EXPECT_EQ(std::memcmp(reg_grad.data(), reg_grad1.data(),
                          static_cast<std::size_t>(reg_grad.numel()) *
                              sizeof(float)),
              0)
        << "reg grad, threads=" << threads;

    transform.zero_internal_grads();
    tensor::Tensor scratch(w.shape());
    transform.backward(w, grad_wq, scratch);
    const std::vector<float>& tgrads = transform.threshold_grads();
    ASSERT_EQ(tgrads.size(), tgrads1.size());
    EXPECT_EQ(std::memcmp(tgrads.data(), tgrads1.data(),
                          tgrads.size() * sizeof(float)),
              0)
        << "threshold grads, threads=" << threads;
  }
  runtime::set_num_threads(0);
}

TEST(TrainingFastPathTest, LightNNQuantizeBitIdenticalAcrossThreadCounts) {
  support::Rng rng(13);
  tensor::Tensor w =
      tensor::Tensor::randn(tensor::Shape{40000}, rng, 0.0F, 0.5F);

  runtime::set_num_threads(1);
  tensor::Tensor q1 = quant::quantize_lightnn(w, 2, {});
  for (int threads : {2, 4, 7}) {
    runtime::set_num_threads(threads);
    tensor::Tensor q = quant::quantize_lightnn(w, 2, {});
    EXPECT_EQ(std::memcmp(q.data(), q1.data(),
                          static_cast<std::size_t>(q.numel()) * sizeof(float)),
              0)
        << "threads=" << threads;
  }
  runtime::set_num_threads(0);
}

}  // namespace
}  // namespace flightnn
