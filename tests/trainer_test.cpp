// End-to-end tests of Algorithm 1: the trainer must actually learn, for
// every quantizer variant, on a small synthetic task -- and the FLightNN
// run must move its thresholds and produce a valid per-filter k profile.

#include <gtest/gtest.h>

#include "core/quantize_model.hpp"
#include "core/trainer.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace flightnn::core {
namespace {

data::TrainTest tiny_task(float noise = 0.5F) {
  data::DatasetSpec spec;
  spec.classes = 4;
  spec.channels = 1;
  spec.height = 8;
  spec.width = 8;
  spec.train_size = 256;
  spec.test_size = 128;
  spec.noise = noise;
  spec.max_shift = 1;
  spec.seed = 5;
  return data::make_synthetic(spec);
}

std::unique_ptr<nn::Sequential> tiny_model(int act_bits, std::uint64_t seed) {
  support::Rng rng(seed);
  auto model = std::make_unique<nn::Sequential>();
  model->emplace<nn::Conv2d>(1, 8, 3, 1, 1, false, rng);
  model->emplace<nn::BatchNorm2d>(8);
  model->emplace<nn::LeakyReLU>(0.01F);
  if (act_bits > 0) model->emplace<nn::ActivationQuant>(act_bits);
  model->emplace<nn::MaxPool2d>(2);
  model->emplace<nn::Conv2d>(8, 16, 3, 1, 1, false, rng);
  model->emplace<nn::BatchNorm2d>(16);
  model->emplace<nn::LeakyReLU>(0.01F);
  if (act_bits > 0) model->emplace<nn::ActivationQuant>(act_bits);
  model->emplace<nn::GlobalAvgPool>();
  model->emplace<nn::Linear>(16, 4, true, rng);
  return model;
}

TrainConfig fast_config(int epochs = 6) {
  TrainConfig config;
  config.epochs = epochs;
  config.batch_size = 32;
  config.learning_rate = 3e-3F;
  config.threshold_learning_rate = 1e-3F;
  config.seed = 9;
  return config;
}

TEST(TrainerTest, FullPrecisionLearns) {
  auto split = tiny_task();
  auto model = tiny_model(0, 1);
  Trainer trainer(*model, fast_config());
  const auto result = trainer.fit(split.train, split.test);
  EXPECT_GT(result.test_accuracy, 0.6) << "chance is 0.25";
  // Loss decreased over training.
  EXPECT_LT(result.epochs.back().mean_loss, result.epochs.front().mean_loss);
}

TEST(TrainerTest, LightNN2Learns) {
  auto split = tiny_task();
  auto model = tiny_model(8, 2);
  install_lightnn(*model, 2);
  Trainer trainer(*model, fast_config());
  EXPECT_GT(trainer.fit(split.train, split.test).test_accuracy, 0.55);
}

TEST(TrainerTest, LightNN1Learns) {
  auto split = tiny_task();
  auto model = tiny_model(8, 3);
  install_lightnn(*model, 1);
  Trainer trainer(*model, fast_config());
  EXPECT_GT(trainer.fit(split.train, split.test).test_accuracy, 0.5);
}

TEST(TrainerTest, FixedPointLearns) {
  auto split = tiny_task();
  auto model = tiny_model(8, 4);
  install_fixed_point(*model, 4);
  Trainer trainer(*model, fast_config());
  EXPECT_GT(trainer.fit(split.train, split.test).test_accuracy, 0.5);
}

TEST(TrainerTest, FLightNNLearnsAndReportsRegLoss) {
  auto split = tiny_task();
  auto model = tiny_model(8, 5);
  FLightNNConfig fl;
  fl.lambdas = {1e-5F, 3e-5F};
  const auto transforms = install_flightnn(*model, fl);
  Trainer trainer(*model, fast_config());
  const auto result = trainer.fit(split.train, split.test);
  EXPECT_GT(result.test_accuracy, 0.5);
  EXPECT_GT(result.epochs.front().mean_reg_loss, 0.0F);
  // Per-filter k values are valid for every layer.
  for (auto* transform : transforms) {
    (void)transform;
  }
  for (const auto& layer : quantizable_layers(*model)) {
    auto* fl_transform = dynamic_cast<FLightNNTransform*>(layer.transform);
    ASSERT_NE(fl_transform, nullptr);
    for (int k : fl_transform->filter_k(layer.weight->value)) {
      EXPECT_GE(k, 0);
      EXPECT_LE(k, 2);
    }
  }
}

TEST(TrainerTest, StrongRegularizationReducesMeanK) {
  // The paper's lambda knob: larger lambda -> smaller k_i on average.
  auto split = tiny_task();

  auto run = [&](float scale) {
    auto model = tiny_model(8, 6);
    FLightNNConfig fl;
    fl.lambdas = {1e-5F * scale, 3e-5F * scale};
    install_flightnn(*model, fl);
    Trainer trainer(*model, fast_config(8));
    (void)trainer.fit(split.train, split.test);
    double mean_k = 0.0;
    int layers = 0;
    for (const auto& layer : quantizable_layers(*model)) {
      auto* transform = dynamic_cast<FLightNNTransform*>(layer.transform);
      mean_k += transform->mean_k(layer.weight->value);
      ++layers;
    }
    return mean_k / layers;
  };

  const double weak = run(1.0F);
  const double strong = run(3000.0F);
  EXPECT_LE(strong, weak + 1e-9);
}

TEST(TrainerTest, DeterministicGivenSeed) {
  auto split = tiny_task();
  auto run = [&] {
    auto model = tiny_model(8, 7);
    install_lightnn(*model, 2);
    Trainer trainer(*model, fast_config(2));
    return trainer.fit(split.train, split.test).test_accuracy;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(TrainerTest, LrSchedules) {
  auto split = tiny_task();
  auto model = tiny_model(0, 9);
  TrainConfig config = fast_config(4);

  config.schedule = LrSchedule::kConstant;
  config.learning_rate = 2e-3F;
  Trainer constant(*model, config);
  EXPECT_FLOAT_EQ(constant.scheduled_learning_rate(0), 2e-3F);
  EXPECT_FLOAT_EQ(constant.scheduled_learning_rate(3), 2e-3F);

  config.schedule = LrSchedule::kStepDecay;
  config.lr_decay = 0.5F;
  Trainer step(*model, config);
  EXPECT_FLOAT_EQ(step.scheduled_learning_rate(0), 2e-3F);
  EXPECT_FLOAT_EQ(step.scheduled_learning_rate(2), 5e-4F);

  config.schedule = LrSchedule::kCosine;
  config.lr_min = 1e-4F;
  Trainer cosine(*model, config);
  EXPECT_FLOAT_EQ(cosine.scheduled_learning_rate(0), 2e-3F);
  EXPECT_FLOAT_EQ(cosine.scheduled_learning_rate(3), 1e-4F);  // last epoch
  EXPECT_GT(cosine.scheduled_learning_rate(1), cosine.scheduled_learning_rate(2));
}

TEST(TrainerTest, GradientClippingStillLearns) {
  auto split = tiny_task();
  auto model = tiny_model(0, 10);
  TrainConfig config = fast_config(4);
  config.grad_clip_norm = 1.0F;
  Trainer trainer(*model, config);
  const auto result = trainer.fit(split.train, split.test);
  EXPECT_GT(result.test_accuracy, 0.5);
}

TEST(TrainerTest, EarlyStoppingTriggersOnPlateau) {
  auto split = tiny_task();
  auto model = tiny_model(0, 11);
  TrainConfig config = fast_config(50);
  config.learning_rate = 0.0F;  // nothing improves: plateau immediately
  config.early_stop_patience = 2;
  Trainer trainer(*model, config);
  const auto result = trainer.fit(split.train, split.test);
  EXPECT_TRUE(result.stopped_early);
  EXPECT_LT(result.epochs.size(), 10u);
}

TEST(TrainerTest, EvaluateTopKExpandsAccuracy) {
  auto split = tiny_task();
  auto model = tiny_model(0, 8);
  Trainer trainer(*model, fast_config(2));
  (void)trainer.train_epoch(split.train);
  const double top1 = trainer.evaluate(split.test, 1);
  const double top3 = trainer.evaluate(split.test, 3);
  EXPECT_GE(top3, top1);
  EXPECT_LE(top3, 1.0);
}

}  // namespace
}  // namespace flightnn::core
