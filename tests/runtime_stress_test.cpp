// Seeded randomized stress test for the batched inference runtime: several
// client threads hammer one BatchRunner (shared immutable weights) with
// concurrent randomized requests while the kernels inside each request
// parallelize on the shared pool. Run under the `debug-tsan` preset this is
// the data-race gate for the whole runtime; in any build it also checks that
// every concurrent result is bit-identical to the serial reference.
//
// RNG conventions follow tests/properties_test.cpp: every stochastic site
// takes an explicit seed, derived per-thread so runs are reproducible.

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "core/quantize_model.hpp"
#include "inference/quantized_network.hpp"
#include "models/networks.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/inference_request.hpp"
#include "runtime/thread_pool.hpp"
#include "support/rng.hpp"

namespace flightnn {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr std::uint64_t kBaseSeed = 7000;
constexpr int kClientThreads = 4;
constexpr int kRequestsPerClient = 3;
constexpr std::int64_t kMaxBatch = 5;

runtime::InferenceRequest random_request(std::uint64_t seed,
                                         std::int64_t batch) {
  support::Rng rng(seed);
  runtime::InferenceRequest request;
  request.id = seed;
  request.images.reserve(static_cast<std::size_t>(batch));
  for (std::int64_t i = 0; i < batch; ++i) {
    request.images.push_back(Tensor::randn(Shape{3, 12, 12}, rng));
  }
  return request;
}

TEST(RuntimeStressTest, ConcurrentBatchRunnersOverSharedWeights) {
  models::BuildOptions build;
  build.classes = 10;
  build.width_scale = 0.125F;
  build.seed = kBaseSeed;
  auto model = models::build_network(models::table1_network(1), build);
  core::install_lightnn(*model, 2);

  runtime::set_num_threads(1);
  const auto network =
      inference::QuantizedNetwork::compile(*model, Shape{1, 3, 12, 12});
  const runtime::BatchRunner runner(network);

  // Serial references, computed before any concurrency starts. Request r of
  // client t uses batch size (t + r) % kMaxBatch + 1 -- odd sizes included.
  std::vector<std::vector<Tensor>> reference(
      static_cast<std::size_t>(kClientThreads * kRequestsPerClient));
  for (int t = 0; t < kClientThreads; ++t) {
    for (int r = 0; r < kRequestsPerClient; ++r) {
      const std::uint64_t seed =
          kBaseSeed + static_cast<std::uint64_t>(t * 100 + r);
      const std::int64_t batch = (t + r) % kMaxBatch + 1;
      const auto result = runner.run(random_request(seed, batch));
      reference[static_cast<std::size_t>(t * kRequestsPerClient + r)] =
          result.logits;
    }
  }

  // Hammer: every client thread issues its requests concurrently while the
  // pool parallelizes inside each forward pass (nested parallelism).
  runtime::set_num_threads(4);
  std::vector<std::vector<std::vector<Tensor>>> results(
      static_cast<std::size_t>(kClientThreads));
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      auto& mine = results[static_cast<std::size_t>(t)];
      mine.resize(kRequestsPerClient);
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const std::uint64_t seed =
            kBaseSeed + static_cast<std::uint64_t>(t * 100 + r);
        const std::int64_t batch = (t + r) % kMaxBatch + 1;
        mine[static_cast<std::size_t>(r)] =
            runner.run(random_request(seed, batch)).logits;
      }
    });
  }
  for (auto& client : clients) client.join();
  runtime::set_num_threads(1);

  for (int t = 0; t < kClientThreads; ++t) {
    for (int r = 0; r < kRequestsPerClient; ++r) {
      const auto& expected =
          reference[static_cast<std::size_t>(t * kRequestsPerClient + r)];
      const auto& actual =
          results[static_cast<std::size_t>(t)][static_cast<std::size_t>(r)];
      ASSERT_EQ(expected.size(), actual.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(expected[i].shape(), actual[i].shape());
        EXPECT_EQ(std::memcmp(expected[i].data(), actual[i].data(),
                              static_cast<std::size_t>(expected[i].numel()) *
                                  sizeof(float)),
                  0)
            << "client " << t << " request " << r << " image " << i;
      }
    }
  }
}

TEST(RuntimeStressTest, ConcurrentEvaluateIsDeterministic) {
  models::BuildOptions build;
  build.classes = 4;
  build.width_scale = 0.125F;
  build.seed = kBaseSeed + 1;
  auto model = models::build_network(models::table1_network(4), build);
  core::install_lightnn(*model, 1);

  data::DatasetSpec spec;
  spec.classes = 4;
  spec.height = 12;
  spec.width = 12;
  spec.train_size = 4;
  spec.test_size = 12;
  spec.seed = kBaseSeed + 2;
  const auto split = data::make_synthetic(spec);

  runtime::set_num_threads(1);
  const auto network =
      inference::QuantizedNetwork::compile(*model, Shape{1, 3, 12, 12});
  const runtime::BatchRunner runner(network);
  inference::NetworkOpCounts serial_counts{};
  const double serial = runner.evaluate(split.test, 1, &serial_counts);
  EXPECT_EQ(serial_counts.images, split.test.size());
  // The parallel evaluate must agree with the serial one and with the
  // QuantizedNetwork's own (always serial) evaluate.
  EXPECT_DOUBLE_EQ(serial, network.evaluate(split.test, 1));

  runtime::set_num_threads(7);
  inference::NetworkOpCounts parallel_counts{};
  const double parallel = runner.evaluate(split.test, 1, &parallel_counts);
  runtime::set_num_threads(1);
  EXPECT_DOUBLE_EQ(serial, parallel);
  EXPECT_EQ(serial_counts.shifts, parallel_counts.shifts);
  EXPECT_EQ(serial_counts.adds, parallel_counts.adds);
  EXPECT_EQ(serial_counts.float_macs, parallel_counts.float_macs);
  EXPECT_EQ(serial_counts.images, parallel_counts.images);
}

}  // namespace
}  // namespace flightnn
