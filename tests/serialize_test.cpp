// Tests for checkpoints (state round-trip through memory and disk) and
// deployment packs (nibble-packed shift terms that reconstruct the
// quantized weights exactly and realize the paper's bits-per-weight
// accounting).

#include "serialize/model_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define FLIGHTNN_SERIALIZE_TEST_HAS_PID 1
#endif

#include "core/quantize_model.hpp"
#include "core/trainer.hpp"
#include "eval/storage.hpp"
#include "models/networks.hpp"
#include "quant/lightnn.hpp"

namespace flightnn::serialize {
namespace {

using tensor::Shape;
using tensor::Tensor;

data::TrainTest tiny_task() {
  data::DatasetSpec spec;
  spec.classes = 3;
  spec.channels = 2;
  spec.height = 8;
  spec.width = 8;
  spec.train_size = 96;
  spec.test_size = 32;
  spec.noise = 0.8F;
  spec.seed = 11;
  return data::make_synthetic(spec);
}

std::unique_ptr<nn::Sequential> make_model(std::uint64_t seed = 3) {
  models::BuildOptions build;
  build.classes = 3;
  build.in_channels = 2;
  build.width_scale = 0.25F;
  build.seed = seed;
  return models::build_network(models::table1_network(4), build);
}

// Collision-free scratch file inside the gtest-managed temp dir: a fixed
// name races when several test binaries (or ctest shards) run concurrently.
std::string unique_temp_path(const char* stem) {
#ifdef FLIGHTNN_SERIALIZE_TEST_HAS_PID
  const std::string pid = std::to_string(static_cast<long>(::getpid()));
#else
  const std::string pid = "0";
#endif
  static int counter = 0;
  return ::testing::TempDir() + "/" + stem + "_" + pid + "_" +
         std::to_string(counter++) + ".bin";
}

// Train briefly so batch-norm running stats and thresholds are non-trivial.
void train_briefly(nn::Sequential& model, const data::TrainTest& split) {
  core::TrainConfig config;
  config.epochs = 1;
  config.threshold_learning_rate = 0.05F;
  core::Trainer trainer(model, config);
  (void)trainer.train_epoch(split.train);
}

TEST(CheckpointTest, RoundTripRestoresForwardExactly) {
  const auto split = tiny_task();
  auto original = make_model();
  core::install_flightnn(*original, core::FLightNNConfig{});
  train_briefly(*original, split);

  const auto buffer = save_state(*original);
  EXPECT_GT(buffer.size(), 100u);

  auto restored = make_model(99);  // different init
  core::install_flightnn(*restored, core::FLightNNConfig{});
  load_state(*restored, buffer);

  const Tensor image = split.test.image(0);
  const Tensor a = original->forward(image, false);
  const Tensor b = restored->forward(image, false);
  EXPECT_LT(tensor::max_abs_diff(a, b), 1e-7F);
}

TEST(CheckpointTest, RestoresThresholds) {
  const auto split = tiny_task();
  auto original = make_model();
  const auto transforms = core::install_flightnn(*original, core::FLightNNConfig{});
  train_briefly(*original, split);
  const auto trained_thresholds = transforms.front()->thresholds();

  auto restored = make_model(50);
  const auto new_transforms =
      core::install_flightnn(*restored, core::FLightNNConfig{});
  load_state(*restored, save_state(*original));
  EXPECT_EQ(new_transforms.front()->thresholds(), trained_thresholds);
}

TEST(CheckpointTest, DiskRoundTrip) {
  const auto split = tiny_task();
  auto model = make_model();
  train_briefly(*model, split);
  const std::string path = unique_temp_path("flightnn_ckpt");
  save_state(*model, path);

  auto restored = make_model(51);
  load_state(*restored, path);
  const Tensor image = split.test.image(1);
  EXPECT_LT(tensor::max_abs_diff(model->forward(image, false),
                                 restored->forward(image, false)),
            1e-7F);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsStructuralMismatch) {
  auto model = make_model();
  const auto buffer = save_state(*model);

  // Different width => shape mismatch.
  models::BuildOptions build;
  build.classes = 3;
  build.in_channels = 2;
  build.width_scale = 0.5F;
  auto wider = models::build_network(models::table1_network(4), build);
  EXPECT_THROW(load_state(*wider, buffer), std::runtime_error);

  // Corrupted magic.
  auto corrupted = buffer;
  corrupted[0] ^= 0xFF;
  EXPECT_THROW(load_state(*model, corrupted), std::runtime_error);

  // Truncation.
  auto truncated = buffer;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(load_state(*model, truncated), std::runtime_error);
}

TEST(PackTest, RoundTripReconstructsQuantizedWeights) {
  auto model = make_model();
  core::install_lightnn(*model, 2);

  const PackedModel packed = pack_quantized(*model);
  const auto layers = core::quantizable_layers(*model);
  ASSERT_EQ(packed.layers.size(), layers.size());

  for (std::size_t i = 0; i < layers.size(); ++i) {
    const Tensor wq = layers[i].transform->forward(layers[i].weight->value);
    const Tensor rebuilt =
        unpack_layer(packed.layers[i], packed.pow2, wq.shape());
    EXPECT_LT(tensor::max_abs_diff(wq, rebuilt), 1e-9F) << "layer " << i;
  }
}

TEST(PackTest, FLightNNPackHonorsPerFilterK) {
  auto model = make_model();
  const auto transforms = core::install_flightnn(*model, core::FLightNNConfig{});
  // Push half the filters to k=1 via thresholds.
  for (auto* transform : transforms) transform->set_thresholds({0.0F, 0.15F});

  const PackedModel packed = pack_quantized(*model);
  const auto layers = core::quantizable_layers(*model);
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const Tensor wq = layers[i].transform->forward(layers[i].weight->value);
    const Tensor rebuilt =
        unpack_layer(packed.layers[i], packed.pow2, wq.shape());
    EXPECT_LT(tensor::max_abs_diff(wq, rebuilt), 1e-9F) << "layer " << i;
  }
}

TEST(PackTest, PackedSizeTracksStorageAccounting) {
  auto model = make_model();
  core::install_lightnn(*model, 1);
  const PackedModel packed = pack_quantized(*model);
  // 4 bits per weight + 2-bit filter tags; eval::model_storage_bytes counts
  // 4 bits per weight for L-1 plus 32-bit non-weight params. The packed
  // stream covers only the quantized weights, so it must be <= and close to
  // the weight share of the accounting.
  std::int64_t weight_count = 0;
  for (const auto& layer : core::quantizable_layers(*model)) {
    weight_count += layer.weight->value.numel();
  }
  const double expected_bytes = static_cast<double>(weight_count) * 4 / 8.0;
  // Zero-valued terms do not shrink the stream: size is exactly 4 bits per
  // weight per used level, plus tags.
  EXPECT_GE(packed.total_bytes(), expected_bytes * 0.5);
  EXPECT_LE(packed.total_bytes(), expected_bytes * 1.2);
}

TEST(PackTest, SerializeParseRoundTrip) {
  auto model = make_model();
  core::install_lightnn(*model, 2);
  const PackedModel packed = pack_quantized(*model);
  const auto bytes = serialize_packed(packed);
  const PackedModel parsed = parse_packed(bytes);

  ASSERT_EQ(parsed.layers.size(), packed.layers.size());
  EXPECT_EQ(parsed.k_max, packed.k_max);
  EXPECT_EQ(parsed.pow2.e_min, packed.pow2.e_min);
  for (std::size_t i = 0; i < packed.layers.size(); ++i) {
    EXPECT_EQ(parsed.layers[i].filter_k, packed.layers[i].filter_k);
    EXPECT_EQ(parsed.layers[i].nibbles, packed.layers[i].nibbles);
  }

  auto corrupted = bytes;
  corrupted[2] ^= 0x55;
  EXPECT_THROW((void)parse_packed(corrupted), std::runtime_error);
}

TEST(PackTest, RejectsUnquantizedModels) {
  auto model = make_model();  // no transforms installed
  EXPECT_THROW((void)pack_quantized(*model), std::invalid_argument);
  core::install_fixed_point(*model, 4);
  EXPECT_THROW((void)pack_quantized(*model), std::invalid_argument);
}

}  // namespace
}  // namespace flightnn::serialize
