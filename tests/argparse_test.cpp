#include "support/argparse.hpp"

#include <gtest/gtest.h>

namespace flightnn::support {
namespace {

TEST(ArgParserTest, ParsesDeclaredFlags) {
  ArgParser args("prog", "test");
  args.add_flag("--epochs", "epochs", "5");
  args.add_flag("--name", "a name");
  EXPECT_TRUE(args.parse({"--epochs", "10", "--name", "x"}));
  EXPECT_EQ(args.get_int("--epochs"), 10);
  EXPECT_EQ(args.get("--name"), "x");
}

TEST(ArgParserTest, DefaultsApply) {
  ArgParser args("prog", "test");
  args.add_flag("--lr", "learning rate", "3e-3");
  EXPECT_TRUE(args.parse({}));
  EXPECT_NEAR(args.get_double("--lr"), 3e-3, 1e-9);
  EXPECT_TRUE(args.has("--lr"));
}

TEST(ArgParserTest, MissingRequiredFlagFails) {
  ArgParser args("prog", "test");
  args.add_flag("--input", "required");
  EXPECT_FALSE(args.parse({}));
  EXPECT_NE(args.error().find("--input"), std::string::npos);
}

TEST(ArgParserTest, UnknownFlagFails) {
  ArgParser args("prog", "test");
  args.add_flag("--known", "k", "1");
  EXPECT_FALSE(args.parse({"--unknown", "2"}));
  EXPECT_NE(args.error().find("--unknown"), std::string::npos);
}

TEST(ArgParserTest, MissingValueFails) {
  ArgParser args("prog", "test");
  args.add_flag("--flag", "f", "1");
  EXPECT_FALSE(args.parse({"--flag"}));
  EXPECT_NE(args.error().find("missing value"), std::string::npos);
}

TEST(ArgParserTest, ValueOverridesDefault) {
  ArgParser args("prog", "test");
  args.add_flag("--x", "x", "1");
  EXPECT_TRUE(args.parse({"--x", "2"}));
  EXPECT_EQ(args.get_int("--x"), 2);
}

TEST(ArgParserTest, UndeclaredGetThrows) {
  ArgParser args("prog", "test");
  EXPECT_TRUE(args.parse({}));
  EXPECT_THROW((void)args.get("--nope"), std::invalid_argument);
}

TEST(ArgParserTest, BadFlagNameThrows) {
  ArgParser args("prog", "test");
  EXPECT_THROW(args.add_flag("epochs", "no dashes"), std::invalid_argument);
}

TEST(ArgParserTest, UsageListsFlagsAndDefaults) {
  ArgParser args("prog", "does things");
  args.add_flag("--alpha", "the alpha", "0.5");
  args.add_flag("--beta", "the beta");
  const std::string usage = args.usage();
  EXPECT_NE(usage.find("does things"), std::string::npos);
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("default: 0.5"), std::string::npos);
  EXPECT_NE(usage.find("--beta"), std::string::npos);
}

}  // namespace
}  // namespace flightnn::support
