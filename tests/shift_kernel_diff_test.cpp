// Differential property suite for the vectorized shift-stream kernels: the
// AVX2 tier must be byte-identical to the scalar tier and to the pre-plan
// reference term walk under every geometry the plan compiler can produce --
// odd interior widths (16-wide / 8-wide / masked-tail paths), strides,
// paddings, k_max, pruning, thread counts, and artifact-adopted plans whose
// streams are zero-copy views into an mmap. The direct kernel tests run the
// dispatch-table function pointers on exactly-sized buffers, so the ASan CI
// preset turns any padded-stream or masked-lane overread into a hard
// failure (the vector kernels must touch no byte the scalar tier would
// not). Tier comparisons skip on hosts without AVX2, where tier 1 resolves
// to the scalar table and the comparison would be vacuous.

#include "inference/shift_kernels.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/quantize_model.hpp"
#include "inference/quantized_network.hpp"
#include "inference/shift_engine.hpp"
#include "models/networks.hpp"
#include "quant/lightnn.hpp"
#include "runtime/thread_pool.hpp"
#include "serialize/artifact.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"

namespace flightnn::inference {
namespace {

using tensor::Shape;
using tensor::Tensor;

// Restores runtime dispatch on scope exit so a failing assertion cannot
// leak a pinned tier into later tests.
struct TierGuard {
  TierGuard() = default;
  TierGuard(const TierGuard&) = delete;
  TierGuard& operator=(const TierGuard&) = delete;
  ~TierGuard() { set_kernel_tier_override(-1); }
};

bool host_has_vector_tier() {
  return shift_kernels_for(KernelTier::kAvx2).tier == KernelTier::kAvx2;
}

bool bytes_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

// Zero the first `filters` filter rows of an OIHW (or [out, in]) tensor.
void prune_filters(Tensor& wq, std::int64_t filters) {
  const std::int64_t row = wq.numel() / wq.shape()[0];
  for (std::int64_t f = 0; f < filters; ++f) {
    float* data = wq.data() + f * row;
    std::fill(data, data + row, 0.0F);
  }
}

// --- Engine-level sweeps ---------------------------------------------------

TEST(ShiftKernelDiffTest, ConvSweepTiersAndReferenceBitIdentical) {
  if (!host_has_vector_tier()) GTEST_SKIP() << "host lacks AVX2";
  TierGuard guard;
  const quant::Pow2Config config;
  support::Rng rng(101);
  // Odd input sides so interior widths hit the 16-wide, 8-wide and masked
  // tail paths; kernel 5 with padding 2 keeps borders wide.
  const Shape img_shape{3, 19, 17};
  Tensor img = Tensor::randn(img_shape, rng);
  const auto qimg = quantize_image(img, 8);
  for (const std::int64_t kernel : {1, 3, 5}) {
    for (const std::int64_t stride : {1, 2}) {
      for (const std::int64_t padding : {0, 1, 2}) {
        if (padding >= kernel) continue;  // degenerate: all-padding taps
        for (const int k_max : {1, 2, 3}) {
          for (const bool prune : {false, true}) {
            Tensor w = Tensor::randn(Shape{6, 3, kernel, kernel}, rng, 0.0F,
                                     0.3F);
            Tensor wq = quant::quantize_lightnn(w, k_max, config);
            if (prune) prune_filters(wq, 3);
            const ShiftConv2d engine(wq, k_max, config, stride, padding);
            set_kernel_tier_override(0);
            const Tensor scalar_out = engine.run(qimg);
            set_kernel_tier_override(1);
            const Tensor vector_out = engine.run(qimg);
            set_kernel_tier_override(-1);
            const Tensor reference_out = engine.run_reference(qimg);
            EXPECT_TRUE(bytes_equal(scalar_out, vector_out))
                << "k=" << kernel << " s=" << stride << " p=" << padding
                << " k_max=" << k_max << " prune=" << prune;
            EXPECT_TRUE(bytes_equal(vector_out, reference_out))
                << "k=" << kernel << " s=" << stride << " p=" << padding
                << " k_max=" << k_max << " prune=" << prune;
          }
        }
      }
    }
  }
}

TEST(ShiftKernelDiffTest, LinearSweepTiersAndReferenceBitIdentical) {
  if (!host_has_vector_tier()) GTEST_SKIP() << "host lacks AVX2";
  TierGuard guard;
  const quant::Pow2Config config;
  support::Rng rng(102);
  // Feature counts straddling the 8-lane padding boundary, including rows
  // whose entry counts land on 1/7/8/9 after pruning.
  for (const std::int64_t in_features : {1, 7, 8, 9, 31, 64}) {
    for (const std::int64_t out_features : {1, 5, 10}) {
      for (const int k_max : {1, 2}) {
        for (const bool prune : {false, true}) {
          Tensor w = Tensor::randn(Shape{out_features, in_features}, rng,
                                   0.0F, 0.3F);
          Tensor wq = quant::quantize_lightnn(w, k_max, config);
          if (prune) prune_filters(wq, out_features / 2);
          Tensor x = Tensor::randn(Shape{in_features}, rng);
          const auto qx = quantize_tensor(x, 8);
          const ShiftLinear engine(wq, k_max, config);
          set_kernel_tier_override(0);
          const Tensor scalar_out = engine.run(qx);
          set_kernel_tier_override(1);
          const Tensor vector_out = engine.run(qx);
          set_kernel_tier_override(-1);
          const Tensor reference_out = engine.run_reference(qx);
          EXPECT_TRUE(bytes_equal(scalar_out, vector_out))
              << "in=" << in_features << " out=" << out_features
              << " k_max=" << k_max << " prune=" << prune;
          EXPECT_TRUE(bytes_equal(vector_out, reference_out))
              << "in=" << in_features << " out=" << out_features
              << " k_max=" << k_max << " prune=" << prune;
        }
      }
    }
  }
}

// Pruning removes entries; it must not change which tier a layer dispatches
// to. Strided convs have no vector interior path and stay scalar.
TEST(ShiftKernelDiffTest, KernelTierReporting) {
  TierGuard guard;
  const quant::Pow2Config config;
  support::Rng rng(103);
  Tensor w = Tensor::randn(Shape{8, 4, 3, 3}, rng, 0.0F, 0.3F);
  Tensor wq = quant::quantize_lightnn(w, 2, config);
  Tensor wq_pruned(wq);
  prune_filters(wq_pruned, 4);
  const ShiftConv2d dense(wq, 2, config, 1, 1);
  const ShiftConv2d pruned(wq_pruned, 2, config, 1, 1);
  const ShiftConv2d strided(wq, 2, config, 2, 1);
  EXPECT_STREQ(dense.kernel_tier(8), pruned.kernel_tier(8));
  EXPECT_STREQ(strided.kernel_tier(8), "scalar");
  set_kernel_tier_override(0);
  EXPECT_STREQ(dense.kernel_tier(8), "scalar");
  set_kernel_tier_override(1);
  if (host_has_vector_tier()) {
    EXPECT_STREQ(dense.kernel_tier(8), "avx2");
  }
}

// --- Direct kernel-table differentials ------------------------------------
// Exactly-sized buffers: under ASan any read or write outside what the
// scalar tier touches (masked tail lanes, padded stream ends) aborts.

TEST(ShiftKernelDiffTest, ConvInteriorKernelDirect) {
  if (!host_has_vector_tier()) GTEST_SKIP() << "host lacks AVX2";
  const ConvInteriorFn scalar_fn =
      shift_kernels_for(KernelTier::kScalar).conv_interior_i32;
  const ConvInteriorFn vector_fn =
      shift_kernels_for(KernelTier::kAvx2).conv_interior_i32;
  support::Rng rng(104);
  const std::int64_t channels = 2;
  const std::int64_t kernel = 3;
  const std::int64_t padding = 1;
  // Input widths chosen so interior widths n = in_w - 2 sweep the kernel's
  // block decomposition: masked-only (n<8), 8+masked, 16+masked, 16+8+masked
  // and exact multiples; odd heights exercise the trailing single row.
  for (const std::int64_t in_w : {5, 9, 11, 16, 18, 23, 26, 34}) {
    for (const std::int64_t in_h : {4, 5, 9}) {
      const std::int64_t out_w = in_w;
      const std::int64_t out_h = in_h;
      std::vector<std::int32_t> in(
          static_cast<std::size_t>(channels * in_h * in_w));
      for (auto& v : in) {
        v = static_cast<std::int32_t>(rng.uniform_index(255)) - 127;
      }
      // Entry streams in plan layout: offsets into the input plane plus a
      // per-entry int32 multiplier. Entry counts 1/7/9/all exercise short
      // filters whose streams end mid-vector.
      std::vector<std::int64_t> off;
      std::vector<std::int32_t> mult;
      for (std::int64_t c = 0; c < channels; ++c) {
        for (std::int64_t ky = 0; ky < kernel; ++ky) {
          for (std::int64_t kx = 0; kx < kernel; ++kx) {
            off.push_back(c * in_h * in_w + ky * in_w + kx);
            mult.push_back(static_cast<std::int32_t>(rng.uniform_index(129)) -
                           64);
          }
        }
      }
      const ConvInteriorGeom geom{in_w, out_w,     padding,
                                  1,    out_h - 1, 1,
                                  out_w - 1};
      for (const std::int64_t entries :
           {std::int64_t{1}, std::int64_t{7}, std::int64_t{9},
            static_cast<std::int64_t>(off.size())}) {
        std::vector<std::int32_t> acc_scalar(
            static_cast<std::size_t>(out_h * out_w), 0);
        std::vector<std::int32_t> acc_vector(acc_scalar);
        scalar_fn(in.data(), off.data(), mult.data(), 0, entries, geom,
                  acc_scalar.data());
        vector_fn(in.data(), off.data(), mult.data(), 0, entries, geom,
                  acc_vector.data());
        EXPECT_EQ(acc_scalar, acc_vector)
            << "in_w=" << in_w << " in_h=" << in_h << " entries=" << entries;
      }
    }
  }
}

TEST(ShiftKernelDiffTest, ShiftDotKernelDirectWithPadding) {
  if (!host_has_vector_tier()) GTEST_SKIP() << "host lacks AVX2";
  const ShiftDotFn scalar_fn =
      shift_kernels_for(KernelTier::kScalar).shift_dot_i32;
  const ShiftDotFn vector_fn =
      shift_kernels_for(KernelTier::kAvx2).shift_dot_i32;
  support::Rng rng(105);
  std::vector<std::int32_t> in(37);
  for (auto& v : in) {
    v = static_cast<std::int32_t>(rng.uniform_index(255)) - 127;
  }
  for (std::int64_t len = 1; len <= 17; ++len) {
    // The plan pads each filter's stream to a lane multiple with
    // (element 0, mult 0) no-ops; the vector kernel runs to the padded end,
    // the scalar oracle over the unpadded entries. Buffers are exactly the
    // padded size -- one element further and ASan fires.
    const std::int64_t padded =
        (len + kShiftVectorLane - 1) / kShiftVectorLane * kShiftVectorLane;
    std::vector<std::int32_t> element(static_cast<std::size_t>(padded), 0);
    std::vector<std::int32_t> mult(static_cast<std::size_t>(padded), 0);
    for (std::int64_t e = 0; e < len; ++e) {
      element[static_cast<std::size_t>(e)] =
          static_cast<std::int32_t>(rng.uniform_index(in.size()));
      mult[static_cast<std::size_t>(e)] =
          static_cast<std::int32_t>(rng.uniform_index(129)) - 64;
    }
    const std::int64_t scalar_acc =
        scalar_fn(in.data(), element.data(), mult.data(), 0, len);
    const std::int64_t vector_acc =
        vector_fn(in.data(), element.data(), mult.data(), 0, padded);
    EXPECT_EQ(scalar_acc, vector_acc) << "len=" << len;
  }
}

// --- Whole network across thread counts and tiers --------------------------

std::uint32_t xorshift32(std::uint32_t& state) {
  state ^= state << 13;
  state ^= state >> 17;
  state ^= state << 5;
  return state;
}

void fill_grid(Tensor& tensor, std::uint32_t& state) {
  float* data = tensor.data();
  for (std::int64_t i = 0; i < tensor.numel(); ++i) {
    const auto raw = static_cast<int>(xorshift32(state) % 129U) - 64;
    data[i] = static_cast<float>(raw) / 64.0F;
  }
}

std::unique_ptr<nn::Sequential> small_model() {
  models::BuildOptions build;
  build.classes = 10;
  build.in_channels = 3;
  build.width_scale = 0.125F;
  build.seed = 23;
  auto model = models::build_network(models::table1_network(1), build);
  std::uint32_t state = 0x2545F491U;
  for (nn::Parameter* parameter : model->parameters()) {
    fill_grid(parameter->value, state);
  }
  core::install_lightnn(*model, 2);
  return model;
}

TEST(ShiftKernelDiffTest, WholeNetworkThreadAndTierSweep) {
  if (!host_has_vector_tier()) GTEST_SKIP() << "host lacks AVX2";
  TierGuard guard;
  auto model = small_model();
  const auto network =
      QuantizedNetwork::compile(*model, Shape{1, 3, 16, 16});
  support::Rng rng(106);
  Tensor image = Tensor::randn(Shape{3, 16, 16}, rng);
  set_kernel_tier_override(0);
  runtime::set_num_threads(1);
  const Tensor baseline = network.run(image);
  for (const int threads : {1, 2, 4, 7}) {
    runtime::set_num_threads(threads);
    for (const int tier : {0, 1}) {
      set_kernel_tier_override(tier);
      const Tensor logits = network.run(image);
      EXPECT_TRUE(bytes_equal(baseline, logits))
          << "threads=" << threads << " tier=" << tier;
    }
  }
  runtime::set_num_threads(1);
}

// --- Artifact-adopted plans (zero-copy mmap views) -------------------------

TEST(ShiftKernelDiffTest, ArtifactPlansRunBothTiersBitIdentical) {
  if (!host_has_vector_tier()) GTEST_SKIP() << "host lacks AVX2";
  TierGuard guard;
  runtime::set_num_threads(1);
  auto model = small_model();
  const Shape input_shape{1, 3, 16, 16};
  const auto direct = QuantizedNetwork::compile(*model, input_shape);
  auto program = compile_program(*model, input_shape);
  const std::string path = ::testing::TempDir() + "/shift_kernel_diff_" +
                           std::to_string(::testing::UnitTest::GetInstance()
                                              ->random_seed()) +
                           ".flnart";
  serialize::save_artifact(program, path);
  {
    // mmap-backed load: the adopted plans' core streams are views into the
    // mapping; the derived vector streams are rebuilt (and owned) by the
    // adopting constructors. Both tiers must match the weights-built
    // network byte for byte.
    const serialize::ArtifactModel mapped = serialize::ArtifactModel::load(path);
    support::Rng rng(107);
    Tensor image = Tensor::randn(Shape{3, 16, 16}, rng);
    set_kernel_tier_override(0);
    const Tensor direct_scalar = direct.run(image);
    const Tensor mapped_scalar = mapped.network().run(image);
    set_kernel_tier_override(1);
    const Tensor direct_vector = direct.run(image);
    const Tensor mapped_vector = mapped.network().run(image);
    EXPECT_TRUE(bytes_equal(direct_scalar, mapped_scalar));
    EXPECT_TRUE(bytes_equal(direct_scalar, direct_vector));
    EXPECT_TRUE(bytes_equal(direct_scalar, mapped_vector));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace flightnn::inference
