// Tests for the whole-network integer inference pipeline: the compiled plan
// must agree with the float eval-mode forward pass of the same trained
// model (same quantization points, same weights, folded batch norm), run
// its convolutions on the shift engine, and count operations consistently.

#include "inference/quantized_network.hpp"

#include <gtest/gtest.h>

#include "core/quantize_model.hpp"
#include "core/trainer.hpp"
#include "models/networks.hpp"

namespace flightnn::inference {
namespace {

using tensor::Shape;
using tensor::Tensor;

data::TrainTest small_task() {
  data::DatasetSpec spec;
  spec.classes = 4;
  spec.channels = 3;
  spec.height = 16;
  spec.width = 16;
  spec.train_size = 128;
  spec.test_size = 48;
  spec.noise = 1.0F;
  spec.seed = 77;
  return data::make_synthetic(spec);
}

std::unique_ptr<nn::Sequential> trained_model(int network_id, int quantizer,
                                              const data::TrainTest& split) {
  models::BuildOptions build;
  build.classes = 4;
  build.width_scale = 0.25F;
  build.seed = 5;
  auto model = models::build_network(models::table1_network(network_id), build);
  switch (quantizer) {
    case 1: core::install_lightnn(*model, 1); break;
    case 2: core::install_lightnn(*model, 2); break;
    case 3: core::install_flightnn(*model, core::FLightNNConfig{}); break;
    case 4: core::install_fixed_point(*model, 4); break;
    default: break;  // full precision
  }
  core::TrainConfig train;
  train.epochs = 2;
  train.batch_size = 32;
  core::Trainer trainer(*model, train);
  (void)trainer.fit(split.train, split.test);
  return model;
}

// Float eval-mode logits for one image.
Tensor float_logits(nn::Sequential& model, const Tensor& image) {
  return model.forward(image, /*training=*/false);
}

class PipelineAgreement : public ::testing::TestWithParam<int> {};

TEST_P(PipelineAgreement, LogitsMatchFloatEvalPath) {
  const int quantizer = GetParam();
  const auto split = small_task();
  auto model = trained_model(4, quantizer, split);
  const Shape input_shape{1, 3, 16, 16};
  auto network = QuantizedNetwork::compile(*model, input_shape);

  // Shift-coded classifiers add one quantization point the float model does
  // not have (the global-average-pool output is re-quantized to 8 bits
  // before the integer linear engine, as hardware requires), so agreement
  // is to that quantization step's granularity, not bit-exact.
  const float tolerance = quantizer >= 1 && quantizer <= 3 ? 6e-2F : 2e-3F;
  for (std::int64_t n = 0; n < 8; ++n) {
    const Tensor image = split.test.image(n);
    const Tensor expected = float_logits(*model, image);
    const Tensor actual = network.run(image);
    ASSERT_EQ(actual.numel(), expected.numel());
    for (std::int64_t c = 0; c < actual.numel(); ++c) {
      EXPECT_NEAR(actual[c], expected[c * 1], tolerance)
          << "quantizer " << quantizer << " image " << n << " class " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Quantizers, PipelineAgreement,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(QuantizedNetworkTest, ResNetCompilesAndMatches) {
  const auto split = small_task();
  auto model = trained_model(8, 2, split);  // ResNet-10, LightNN-2
  auto network = QuantizedNetwork::compile(*model, Shape{1, 3, 16, 16});
  const Tensor image = split.test.image(0);
  const Tensor expected = float_logits(*model, image);
  const Tensor actual = network.run(image);
  for (std::int64_t c = 0; c < actual.numel(); ++c) {
    EXPECT_NEAR(actual[c], expected[c], 3e-2F);
  }
  // Plan contains a residual step.
  EXPECT_NE(network.describe().find("residual"), std::string::npos);
}

TEST(QuantizedNetworkTest, AccuracyMatchesTrainerEvaluate) {
  const auto split = small_task();
  auto model = trained_model(4, 3, split);  // FLightNN
  auto network = QuantizedNetwork::compile(*model, Shape{1, 3, 16, 16});

  core::TrainConfig config;
  core::Trainer trainer(*model, config);
  const double float_acc = trainer.evaluate(split.test, 1);
  const double integer_acc = network.evaluate(split.test, 1);
  EXPECT_NEAR(integer_acc, float_acc, 0.05);
}

TEST(QuantizedNetworkTest, ShiftModelsUseNoFloatMacs) {
  const auto split = small_task();
  auto model = trained_model(4, 1, split);  // LightNN-1: everything shifts
  auto network = QuantizedNetwork::compile(*model, Shape{1, 3, 16, 16});
  NetworkOpCounts counts{};
  (void)network.run(split.test.image(0), &counts);
  EXPECT_EQ(counts.float_macs, 0);
  EXPECT_GT(counts.shifts, 0);
  EXPECT_EQ(counts.images, 1);
}

TEST(QuantizedNetworkTest, FullPrecisionModelUsesOnlyFloatMacs) {
  const auto split = small_task();
  auto model = trained_model(4, 0, split);
  auto network = QuantizedNetwork::compile(*model, Shape{1, 3, 16, 16});
  NetworkOpCounts counts{};
  (void)network.run(split.test.image(0), &counts);
  EXPECT_GT(counts.float_macs, 0);
  EXPECT_EQ(counts.shifts, 0);
}

TEST(QuantizedNetworkTest, OpCountsScaleWithK) {
  const auto split = small_task();
  auto model1 = trained_model(4, 1, split);
  auto model2 = trained_model(4, 2, split);
  auto net1 = QuantizedNetwork::compile(*model1, Shape{1, 3, 16, 16});
  auto net2 = QuantizedNetwork::compile(*model2, Shape{1, 3, 16, 16});
  NetworkOpCounts c1{}, c2{};
  (void)net1.run(split.test.image(0), &c1);
  (void)net2.run(split.test.image(0), &c2);
  EXPECT_GT(c2.shifts, c1.shifts);
  EXPECT_LE(c2.shifts, 2 * c1.shifts);
}

TEST(QuantizedNetworkTest, DescribeListsPlan) {
  const auto split = small_task();
  auto model = trained_model(4, 2, split);
  auto network = QuantizedNetwork::compile(*model, Shape{1, 3, 16, 16});
  const std::string plan = network.describe();
  EXPECT_NE(plan.find("quant(8b)"), std::string::npos);
  EXPECT_NE(plan.find("shift_conv"), std::string::npos);
  EXPECT_NE(plan.find("affine"), std::string::npos);
  EXPECT_NE(plan.find("shift_linear"), std::string::npos);
  EXPECT_GT(network.step_count(), 10u);
}

TEST(QuantizedNetworkTest, RejectsBadInputs) {
  const auto split = small_task();
  auto model = trained_model(4, 2, split);
  EXPECT_THROW(
      (void)QuantizedNetwork::compile(*model, Shape{3, 16, 16}),
      std::invalid_argument);
  auto network = QuantizedNetwork::compile(*model, Shape{1, 3, 16, 16});
  EXPECT_THROW((void)network.run(Tensor(Shape{2, 3, 16, 16})),
               std::invalid_argument);
}

TEST(QuantizedNetworkTest, ShiftLinearMatchesFloatLinear) {
  support::Rng rng(9);
  const quant::Pow2Config config;
  Tensor w = Tensor::randn(Shape{5, 12}, rng, 0.0F, 0.3F);
  Tensor wq = quant::quantize_lightnn(w, 2, config);
  Tensor bias = Tensor::randn(Shape{5}, rng);
  Tensor x = Tensor::randn(Shape{12}, rng);
  const auto qx = quantize_tensor(x, 8);

  ShiftLinear engine(wq, 2, config, bias);
  Tensor out = engine.run(qx);
  // Reference: float dot products on the dequantized operands.
  Tensor deq = dequantize(qx);
  for (std::int64_t o = 0; o < 5; ++o) {
    double acc = bias[o];
    for (std::int64_t e = 0; e < 12; ++e) acc += static_cast<double>(wq[o * 12 + e]) * deq[e];
    EXPECT_NEAR(out[o], static_cast<float>(acc), 1e-5F);
  }
}

}  // namespace
}  // namespace flightnn::inference
