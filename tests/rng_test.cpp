#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace flightnn::support {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(9);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RngTest, UniformIndexStaysInRange) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_index(7), 7u);
  }
}

TEST(RngTest, UniformIndexCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NormalMomentsAreStandard) {
  Rng rng(12);
  constexpr int kSamples = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.03);
}

TEST(RngTest, NormalWithParametersShiftsAndScales) {
  Rng rng(13);
  constexpr int kSamples = 50000;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) sum += rng.normal(5.0, 0.5);
  EXPECT_NEAR(sum / kSamples, 5.0, 0.02);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(14);
  std::vector<std::size_t> indices(50);
  std::iota(indices.begin(), indices.end(), 0);
  auto original = indices;
  rng.shuffle(indices);
  EXPECT_NE(indices, original);  // astronomically unlikely to be identity
  std::sort(indices.begin(), indices.end());
  EXPECT_EQ(indices, original);
}

TEST(RngTest, ShuffleEmptyAndSingletonAreNoops) {
  Rng rng(15);
  std::vector<std::size_t> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<std::size_t> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<std::size_t>{42});
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(16);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.next_u64() == child2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace flightnn::support
