#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace flightnn::data {
namespace {

DatasetSpec tiny_spec() {
  DatasetSpec spec;
  spec.classes = 4;
  spec.train_size = 120;
  spec.test_size = 40;
  spec.height = 8;
  spec.width = 8;
  spec.channels = 2;
  spec.seed = 99;
  return spec;
}

TEST(DatasetTest, ShapesAndLabelRanges) {
  const auto split = make_synthetic(tiny_spec());
  EXPECT_EQ(split.train.size(), 120);
  EXPECT_EQ(split.test.size(), 40);
  EXPECT_EQ(split.train.images.shape(), (tensor::Shape{120, 2, 8, 8}));
  for (int label : split.train.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
}

TEST(DatasetTest, DeterministicInSeed) {
  const auto a = make_synthetic(tiny_spec());
  const auto b = make_synthetic(tiny_spec());
  EXPECT_EQ(a.train.labels, b.train.labels);
  EXPECT_LT(tensor::max_abs_diff(a.train.images, b.train.images), 1e-9F);
}

TEST(DatasetTest, DifferentSeedsDiffer) {
  auto spec = tiny_spec();
  const auto a = make_synthetic(spec);
  spec.seed = 100;
  const auto b = make_synthetic(spec);
  EXPECT_GT(tensor::max_abs_diff(a.train.images, b.train.images), 0.1F);
}

TEST(DatasetTest, AllClassesRepresented) {
  const auto split = make_synthetic(tiny_spec());
  std::set<int> seen(split.train.labels.begin(), split.train.labels.end());
  EXPECT_EQ(seen.size(), 4u);
}

TEST(DatasetTest, SameClassSamplesCorrelateMoreThanCrossClass) {
  // Class identity must be learnable: same-class samples share a prototype.
  // Disable the shift augmentation here -- translations decorrelate the
  // high-frequency grating components even within a class.
  auto spec = tiny_spec();
  spec.noise = 0.3F;
  spec.max_shift = 0;
  const auto split = make_synthetic(spec);
  auto correlation = [&](std::int64_t i, std::int64_t j) {
    const std::int64_t n = spec.channels * spec.height * spec.width;
    const float* a = split.train.images.data() + i * n;
    const float* b = split.train.images.data() + j * n;
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (std::int64_t e = 0; e < n; ++e) {
      dot += static_cast<double>(a[e]) * b[e];
      na += static_cast<double>(a[e]) * a[e];
      nb += static_cast<double>(b[e]) * b[e];
    }
    return dot / std::sqrt(na * nb);
  };
  double same_sum = 0.0, cross_sum = 0.0;
  int same_count = 0, cross_count = 0;
  for (std::int64_t i = 0; i < 40; ++i) {
    for (std::int64_t j = i + 1; j < 40; ++j) {
      if (split.train.labels[static_cast<std::size_t>(i)] ==
          split.train.labels[static_cast<std::size_t>(j)]) {
        same_sum += correlation(i, j);
        ++same_count;
      } else {
        cross_sum += correlation(i, j);
        ++cross_count;
      }
    }
  }
  ASSERT_GT(same_count, 0);
  ASSERT_GT(cross_count, 0);
  EXPECT_GT(same_sum / same_count, cross_sum / cross_count + 0.2);
}

TEST(DatasetTest, ImageExtraction) {
  const auto split = make_synthetic(tiny_spec());
  tensor::Tensor img = split.train.image(3);
  EXPECT_EQ(img.shape(), (tensor::Shape{1, 2, 8, 8}));
  const std::int64_t n = img.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(img[i], split.train.images[3 * n + i]);
  }
  EXPECT_THROW((void)split.train.image(-1), std::out_of_range);
  EXPECT_THROW((void)split.train.image(1000), std::out_of_range);
}

TEST(DatasetTest, InvalidSpecThrows) {
  auto spec = tiny_spec();
  spec.classes = 1;
  EXPECT_THROW((void)make_synthetic(spec), std::invalid_argument);
}

TEST(DatasetTest, PresetSpecs) {
  EXPECT_EQ(cifar10_like().classes, 10);
  EXPECT_EQ(cifar100_like().classes, 100);
  EXPECT_EQ(svhn_like().classes, 10);
  EXPECT_EQ(imagenet_like().classes, 50);
  // Scale shrinks sample counts but never to zero.
  EXPECT_LT(cifar10_like(0.1F).train_size, cifar10_like().train_size);
  EXPECT_GE(cifar10_like(0.0001F).train_size, 1);
  // SVHN is configured easier (lower noise) than CIFAR-10; CIFAR-100 gets
  // its difficulty from the class count rather than the noise level.
  EXPECT_LT(svhn_like().noise, cifar10_like().noise);
}

TEST(BatchIteratorTest, CoversEpochExactlyOnce) {
  const auto split = make_synthetic(tiny_spec());
  support::Rng rng(1);
  BatchIterator it(split.train, 32, rng);
  tensor::Tensor images;
  std::vector<int> labels;
  std::int64_t total = 0;
  int batches = 0;
  while (it.next(images, labels)) {
    total += static_cast<std::int64_t>(labels.size());
    EXPECT_EQ(images.shape()[0], static_cast<std::int64_t>(labels.size()));
    ++batches;
  }
  EXPECT_EQ(total, 120);
  EXPECT_EQ(batches, 4);  // 32+32+32+24
  EXPECT_EQ(it.batches_per_epoch(), 4);
}

TEST(BatchIteratorTest, ShuffleChangesOrderAcrossEpochs) {
  const auto split = make_synthetic(tiny_spec());
  support::Rng rng(2);
  BatchIterator it(split.train, 120, rng);
  tensor::Tensor images;
  std::vector<int> first, second;
  it.next(images, first);
  it.reset();
  it.next(images, second);
  EXPECT_NE(first, second);
}

TEST(BatchIteratorTest, NoShufflePreservesOrder) {
  const auto split = make_synthetic(tiny_spec());
  support::Rng rng(3);
  BatchIterator it(split.train, 50, rng, /*shuffle=*/false);
  tensor::Tensor images;
  std::vector<int> labels;
  it.next(images, labels);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(labels[i], split.train.labels[i]);
  }
}

TEST(BatchIteratorTest, InvalidBatchSizeThrows) {
  const auto split = make_synthetic(tiny_spec());
  support::Rng rng(4);
  EXPECT_THROW(BatchIterator(split.train, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace flightnn::data
