#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"

namespace flightnn::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(SoftmaxCrossEntropyTest, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy loss;
  Tensor logits(Shape{2, 4});  // all zero -> uniform softmax
  const float l = loss.forward(logits, {0, 3});
  EXPECT_NEAR(l, std::log(4.0F), 1e-5F);
}

TEST(SoftmaxCrossEntropyTest, ConfidentCorrectPredictionLowLoss) {
  SoftmaxCrossEntropy loss;
  Tensor logits(Shape{1, 3}, std::vector<float>{10.0F, 0.0F, 0.0F});
  EXPECT_LT(loss.forward(logits, {0}), 1e-3F);
  EXPECT_GT(loss.forward(logits, {1}), 5.0F);
}

TEST(SoftmaxCrossEntropyTest, ShiftInvariance) {
  SoftmaxCrossEntropy loss;
  Tensor a(Shape{1, 3}, std::vector<float>{1.0F, 2.0F, 3.0F});
  Tensor b(Shape{1, 3}, std::vector<float>{101.0F, 102.0F, 103.0F});
  EXPECT_NEAR(loss.forward(a, {1}), loss.forward(b, {1}), 1e-5F);
}

TEST(SoftmaxCrossEntropyTest, GradientMatchesFiniteDifference) {
  SoftmaxCrossEntropy loss;
  support::Rng rng(1);
  Tensor logits = Tensor::randn(Shape{3, 5}, rng);
  const std::vector<int> labels{1, 4, 0};
  (void)loss.forward(logits, labels);
  Tensor grad = loss.backward();

  const float eps = 1e-3F;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    Tensor plus = logits, minus = logits;
    plus[i] += eps;
    minus[i] -= eps;
    SoftmaxCrossEntropy probe;
    const float numeric =
        (probe.forward(plus, labels) - probe.forward(minus, labels)) / (2 * eps);
    EXPECT_NEAR(grad[i], numeric, 2e-3F) << "element " << i;
  }
}

TEST(SoftmaxCrossEntropyTest, GradientRowsSumToZero) {
  SoftmaxCrossEntropy loss;
  support::Rng rng(2);
  Tensor logits = Tensor::randn(Shape{4, 6}, rng);
  (void)loss.forward(logits, {0, 1, 2, 3});
  Tensor grad = loss.backward();
  for (std::int64_t n = 0; n < 4; ++n) {
    double row_sum = 0.0;
    for (std::int64_t c = 0; c < 6; ++c) row_sum += grad[n * 6 + c];
    EXPECT_NEAR(row_sum, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropyTest, InvalidInputsThrow) {
  SoftmaxCrossEntropy loss;
  Tensor logits(Shape{2, 3});
  EXPECT_THROW((void)loss.forward(logits, {0}), std::invalid_argument);
  EXPECT_THROW((void)loss.forward(logits, {0, 3}), std::invalid_argument);
  EXPECT_THROW((void)loss.forward(Tensor(Shape{6}), {0}), std::invalid_argument);
  SoftmaxCrossEntropy fresh;
  EXPECT_THROW((void)fresh.backward(), std::logic_error);
}

TEST(TopKAccuracyTest, Top1) {
  Tensor logits(Shape{2, 3}, std::vector<float>{1, 5, 2, 9, 0, 3});
  EXPECT_DOUBLE_EQ(top_k_accuracy(logits, {1, 0}, 1), 1.0);
  EXPECT_DOUBLE_EQ(top_k_accuracy(logits, {0, 0}, 1), 0.5);
  EXPECT_DOUBLE_EQ(top_k_accuracy(logits, {0, 1}, 1), 0.0);
}

TEST(TopKAccuracyTest, Top5BroadensHits) {
  Tensor logits(Shape{1, 6}, std::vector<float>{6, 5, 4, 3, 2, 1});
  EXPECT_DOUBLE_EQ(top_k_accuracy(logits, {4}, 5), 1.0);
  EXPECT_DOUBLE_EQ(top_k_accuracy(logits, {5}, 5), 0.0);
}

TEST(TopKAccuracyTest, InvalidArgsThrow) {
  Tensor logits(Shape{1, 3});
  EXPECT_THROW((void)top_k_accuracy(logits, {0}, 0), std::invalid_argument);
  EXPECT_THROW((void)top_k_accuracy(logits, {0, 1}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace flightnn::nn
