#include "core/flightnn_transform.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "quant/lightnn.hpp"
#include "support/rng.hpp"

namespace flightnn::core {
namespace {

using tensor::Shape;
using tensor::Tensor;

Tensor random_filters(std::int64_t filters, std::int64_t elems,
                      std::uint64_t seed, float stddev = 0.3F) {
  support::Rng rng(seed);
  return Tensor::randn(Shape{filters, elems}, rng, 0.0F, stddev);
}

TEST(FLightNNTransformTest, ZeroThresholdsReproduceLightNNKmax) {
  // t = 0: every level with nonzero residual fires, so Q equals LightNN-k_max
  // (the paper's gradual-quantization starting point).
  FLightNNConfig config;
  config.k_max = 2;
  FLightNNTransform transform(config);
  Tensor w = random_filters(8, 27, 30);
  Tensor q = transform.forward(w);
  Tensor expected = quant::quantize_lightnn(w, 2, config.pow2);
  EXPECT_LT(tensor::max_abs_diff(q, expected), 1e-9F);
}

TEST(FLightNNTransformTest, HugeThresholdPrunesEverything) {
  FLightNNTransform transform;
  transform.set_thresholds({1e9F, 1e9F});
  Tensor w = random_filters(4, 9, 31);
  Tensor q = transform.forward(w);
  EXPECT_FLOAT_EQ(q.abs_max(), 0.0F);
  for (int k : transform.filter_k(w)) EXPECT_EQ(k, 0);
}

TEST(FLightNNTransformTest, IntermediateThresholdGivesKOne) {
  // First level fires (||w|| is large), second level's residual is small:
  // pick t_1 between the two norms.
  FLightNNTransform transform;
  Tensor w = random_filters(6, 27, 32);
  // Compute per-filter residual norm after one rounding step.
  Tensor r1 = w - quant::quantize_lightnn(w, 1, quant::Pow2Config{});
  double max_r1 = 0.0;
  for (std::int64_t i = 0; i < 6; ++i) {
    double norm_sq = 0.0;
    for (std::int64_t e = 0; e < 27; ++e) {
      norm_sq += static_cast<double>(r1[i * 27 + e]) * r1[i * 27 + e];
    }
    max_r1 = std::max(max_r1, std::sqrt(norm_sq));
  }
  transform.set_thresholds({0.0F, static_cast<float>(max_r1) + 1.0F});
  Tensor q = transform.forward(w);
  Tensor expected = quant::quantize_lightnn(w, 1, quant::Pow2Config{});
  EXPECT_LT(tensor::max_abs_diff(q, expected), 1e-9F);
  for (int k : transform.filter_k(w)) EXPECT_EQ(k, 1);
}

TEST(FLightNNTransformTest, PerFilterKIsIndependent) {
  // Craft two filters: one with large norm, one tiny; a threshold between
  // the two norms prunes only the tiny one.
  Tensor w(Shape{2, 4},
           std::vector<float>{0.5F, -0.5F, 0.5F, 0.5F,      // norm 1.0
                              0.01F, 0.01F, -0.01F, 0.01F}); // norm 0.02
  FLightNNTransform transform;
  transform.set_thresholds({0.1F, 1e9F});
  const auto ks = transform.filter_k(w);
  EXPECT_EQ(ks[0], 1);
  EXPECT_EQ(ks[1], 0);
  Tensor q = transform.forward(w);
  // Pruned filter quantizes to zero.
  for (int e = 4; e < 8; ++e) EXPECT_FLOAT_EQ(q[e], 0.0F);
  // Kept filter is exactly representable (values are powers of two).
  EXPECT_FLOAT_EQ(q[0], 0.5F);
}

TEST(FLightNNTransformTest, OutputAlwaysSumOfAtMostKmaxPowers) {
  FLightNNConfig config;
  config.k_max = 2;
  FLightNNTransform transform(config);
  transform.set_thresholds({0.05F, 0.4F});
  Tensor w = random_filters(16, 27, 33);
  Tensor q = transform.forward(w);
  EXPECT_TRUE(quant::is_sum_of_pow2(q, 2, config.pow2));
}

TEST(FLightNNTransformTest, MeanKBetweenZeroAndKmax) {
  FLightNNTransform transform;
  Tensor w = random_filters(32, 27, 34);
  const double mk = transform.mean_k(w);
  EXPECT_GE(mk, 0.0);
  EXPECT_LE(mk, 2.0);
  // With zero thresholds, nearly every filter uses both levels.
  EXPECT_GT(mk, 1.5);
}

TEST(FLightNNTransformTest, BackwardIsSteForWeights) {
  FLightNNTransform transform;
  Tensor w = random_filters(2, 4, 35);
  Tensor grad_wq(Shape{2, 4}, 1.5F);
  Tensor grad_w(Shape{2, 4}, 0.25F);
  transform.backward(w, grad_wq, grad_w);
  for (std::int64_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(grad_w[i], 1.75F);
}

TEST(FLightNNTransformTest, ThresholdGradSignMatchesEffect) {
  // Raising t_j can only remove quantization terms. If dL/dwq has the same
  // sign as the quantized weights (so removing terms reduces the dot
  // product), the sigmoid-relaxed gradient w.r.t. t must be negative of the
  // term's contribution: check the directional consistency against a
  // finite-difference of the *relaxed* objective.
  FLightNNConfig config;
  config.temperature = 0.5F;
  FLightNNTransform transform(config);
  Tensor w = random_filters(4, 9, 36);
  // Set thresholds near the operating point so sigma' is non-negligible.
  transform.set_thresholds({0.3F, 0.2F});

  Tensor q = transform.forward(w);
  Tensor grad_wq = q;  // dL/dwq = wq, i.e. L = 0.5 ||wq||^2
  Tensor grad_w(w.shape());
  transform.zero_internal_grads();
  transform.backward(w, grad_wq, grad_w);
  const auto grads = transform.threshold_grads();

  // For L = 0.5||Q||^2, raising a threshold removes R-terms, shrinking ||Q||:
  // dL/dt should be <= 0 for levels that are actually firing.
  const auto ks = transform.filter_k(w);
  bool any_level0_fires = false;
  for (int k : ks) any_level0_fires |= (k >= 1);
  ASSERT_TRUE(any_level0_fires);
  EXPECT_LE(grads[0], 0.0F);
}

TEST(FLightNNTransformTest, ThresholdGradZeroWhenFarFromBoundary) {
  // With temperature small and thresholds far below the residual norms,
  // sigma' ~ 0 everywhere: threshold gradients vanish.
  FLightNNConfig config;
  config.temperature = 0.01F;
  FLightNNTransform transform(config);
  Tensor w = random_filters(4, 27, 37, 0.5F);  // norms ~2.6, thresholds 0
  Tensor grad_wq(w.shape(), 1.0F);
  Tensor grad_w(w.shape());
  transform.backward(w, grad_wq, grad_w);
  for (float g : transform.threshold_grads()) {
    EXPECT_NEAR(g, 0.0F, 1e-6F);
  }
}

TEST(FLightNNTransformTest, StepMovesThresholdsAgainstGradient) {
  FLightNNConfig config;
  config.threshold_init = 0.5F;
  FLightNNTransform transform(config);
  Tensor w = random_filters(2, 4, 38);
  // Manufacture gradients directly.
  Tensor grad_wq(w.shape(), 0.0F);
  Tensor grad_w(w.shape());
  transform.backward(w, grad_wq, grad_w);  // zero grads
  // Inject known threshold gradients via a fake backward: easiest is to use
  // step with grads accumulated from a synthetic pass. Instead verify the
  // Adam step direction using regularization-free double-step:
  auto thresholds_before = transform.thresholds();
  transform.step_internal(0.1F);  // zero grads: no movement
  EXPECT_EQ(transform.thresholds(), thresholds_before);
}

TEST(FLightNNTransformTest, ThresholdsClampedNonNegative) {
  FLightNNConfig config;
  config.temperature = 10.0F;  // fat sigmoid: gradients flow
  FLightNNTransform transform(config);
  Tensor w = random_filters(4, 9, 39);
  // Push thresholds downward repeatedly: L = -sum(wq) gives dL/dwq = -1,
  // making "keep more terms" attractive (negative threshold pressure...
  // either way, thresholds must stay >= 0).
  for (int iter = 0; iter < 50; ++iter) {
    Tensor grad_wq(w.shape(), -1.0F);
    Tensor grad_w(w.shape());
    transform.zero_internal_grads();
    transform.backward(w, grad_wq, grad_w);
    transform.step_internal(0.05F);
  }
  for (float t : transform.thresholds()) EXPECT_GE(t, 0.0F);
}

TEST(FLightNNTransformTest, KeepAliveGuardCapsWholeFilterPruning) {
  FLightNNConfig config;
  config.max_prune_fraction = 0.25F;
  FLightNNTransform transform(config);
  Tensor w = random_filters(16, 9, 77);
  (void)transform.forward(w);  // records the norm quantile

  // Drive t_0 far above every filter norm, then step: the guard must cap it
  // at the 25% quantile, leaving at least 75% of filters alive.
  transform.set_thresholds({1e6F, 0.0F});
  Tensor grad_wq(w.shape());
  Tensor grad_w(w.shape());
  transform.backward(w, grad_wq, grad_w);
  transform.step_internal(0.0F);  // zero LR: only the clamp acts
  const auto ks = transform.filter_k(w);
  int alive = 0;
  for (int k : ks) alive += (k > 0) ? 1 : 0;
  EXPECT_GE(alive, 12);  // >= 75% of 16
}

TEST(FLightNNTransformTest, KeepAliveGuardDisabledAtFractionOne) {
  FLightNNConfig config;
  config.max_prune_fraction = 1.0F;
  FLightNNTransform transform(config);
  Tensor w = random_filters(8, 9, 78);
  (void)transform.forward(w);
  transform.set_thresholds({1e6F, 0.0F});
  Tensor grad_wq(w.shape());
  Tensor grad_w(w.shape());
  transform.backward(w, grad_wq, grad_w);
  transform.step_internal(0.0F);
  for (int k : transform.filter_k(w)) EXPECT_EQ(k, 0);  // everything pruned
}

TEST(FLightNNTransformTest, RegularizationValueMatchesDefinition) {
  // L_reg = sum_j lambda_j sum_i ||r_{i,j}||.
  FLightNNConfig config;
  config.lambdas = {2.0F, 3.0F};
  FLightNNTransform transform(config);
  Tensor w(Shape{1, 2}, std::vector<float>{0.6F, 0.0F});
  // r_0 = (0.6, 0), ||r_0|| = 0.6. R(0.6) = 0.5, r_1 = (0.1, 0), ||r_1|| = 0.1.
  const double expected = 2.0 * 0.6 + 3.0 * 0.1;
  EXPECT_NEAR(transform.regularization(w, nullptr), expected, 1e-6);
}

TEST(FLightNNTransformTest, RegularizationGradientMatchesFiniteDifference) {
  FLightNNConfig config;
  config.lambdas = {1e-2F, 3e-2F};
  FLightNNTransform transform(config);
  Tensor w = random_filters(3, 5, 40);
  Tensor grad(w.shape());
  const double base = transform.regularization(w, &grad);
  EXPECT_GT(base, 0.0);
  const float eps = 1e-3F;
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    Tensor plus = w, minus = w;
    plus[i] += eps;
    minus[i] -= eps;
    const double numeric = (transform.regularization(plus, nullptr) -
                            transform.regularization(minus, nullptr)) /
                           (2.0 * eps);
    // The loss is piecewise smooth; skip points whose rounding cell changed.
    const auto cell_changed = [&](const Tensor& x) {
      return tensor::max_abs_diff(
                 quant::quantize_lightnn(x, 2, config.pow2),
                 quant::quantize_lightnn(w, 2, config.pow2)) > 1e-9F;
    };
    if (cell_changed(plus) || cell_changed(minus)) continue;
    EXPECT_NEAR(grad[i], numeric, 5e-3F) << "element " << i;
  }
}

TEST(FLightNNTransformTest, RegularizationShrinksTowardPow2Grid) {
  // Gradient descent on L_reg alone must reduce the level-1 residuals:
  // weights drift toward exact powers of two.
  FLightNNConfig config;
  config.lambdas = {0.0F, 1.0F};  // only penalize the level-1 residual
  FLightNNTransform transform(config);
  Tensor w = random_filters(4, 9, 41);
  const double before = transform.regularization(w, nullptr);
  for (int iter = 0; iter < 100; ++iter) {
    Tensor grad(w.shape());
    (void)transform.regularization(w, &grad);
    w.add_scaled(grad, -0.01F);
  }
  const double after = transform.regularization(w, nullptr);
  EXPECT_LT(after, before * 0.7);
}

TEST(FLightNNTransformTest, ConfigValidation) {
  FLightNNConfig bad_k;
  bad_k.k_max = 0;
  EXPECT_THROW(FLightNNTransform{bad_k}, std::invalid_argument);
  FLightNNConfig bad_temp;
  bad_temp.temperature = 0.0F;
  EXPECT_THROW(FLightNNTransform{bad_temp}, std::invalid_argument);
  FLightNNTransform transform;
  EXPECT_THROW(transform.set_thresholds({1.0F}), std::invalid_argument);
  EXPECT_EQ(transform.describe(), "flightnn[kmax=2]");
}

TEST(FLightNNTransformTest, LambdasExtendedToKmax) {
  FLightNNConfig config;
  config.k_max = 4;
  config.lambdas = {1.0F};
  FLightNNTransform transform(config);
  EXPECT_EQ(transform.config().lambdas.size(), 4u);
  EXPECT_FLOAT_EQ(transform.config().lambdas[3], 1.0F);
}

}  // namespace
}  // namespace flightnn::core
