#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace flightnn::tensor {
namespace {

TEST(GemmTest, SmallKnownProduct) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  Tensor a(Shape{2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor b(Shape{2, 2}, std::vector<float>{5, 6, 7, 8});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c[0], 19.0F);
  EXPECT_FLOAT_EQ(c[1], 22.0F);
  EXPECT_FLOAT_EQ(c[2], 43.0F);
  EXPECT_FLOAT_EQ(c[3], 50.0F);
}

TEST(GemmTest, RectangularShapes) {
  Tensor a(Shape{2, 3}, std::vector<float>{1, 0, 2, 0, 1, -1});
  Tensor b(Shape{3, 1}, std::vector<float>{3, 4, 5});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 1}));
  EXPECT_FLOAT_EQ(c[0], 13.0F);
  EXPECT_FLOAT_EQ(c[1], -1.0F);
}

TEST(GemmTest, InnerDimMismatchThrows) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{2, 2});
  EXPECT_THROW((void)matmul(a, b), std::invalid_argument);
}

TEST(GemmTest, AccumulateFlag) {
  const float a[2] = {1.0F, 2.0F};
  const float b[2] = {3.0F, 4.0F};
  float c[1] = {10.0F};
  gemm(a, b, c, 1, 2, 1, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(c[0], 21.0F);
  gemm(a, b, c, 1, 2, 1, /*accumulate=*/false);
  EXPECT_FLOAT_EQ(c[0], 11.0F);
}

TEST(GemmTest, TransposedVariantsAgreeWithExplicitTranspose) {
  support::Rng rng(3);
  Tensor a = Tensor::randn(Shape{4, 5}, rng);
  Tensor b = Tensor::randn(Shape{4, 6}, rng);
  // matmul_tn(a, b) == a^T * b
  Tensor at(Shape{5, 4});
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) at[j * 4 + i] = a[i * 5 + j];
  }
  Tensor expected = matmul(at, b);
  Tensor actual = matmul_tn(a, b);
  EXPECT_LT(max_abs_diff(expected, actual), 1e-5F);

  // matmul_nt(a, c) == a * c^T
  Tensor c = Tensor::randn(Shape{7, 5}, rng);
  Tensor ct(Shape{5, 7});
  for (std::int64_t i = 0; i < 7; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) ct[j * 7 + i] = c[i * 5 + j];
  }
  Tensor expected2 = matmul(a, ct);
  Tensor actual2 = matmul_nt(a, c);
  EXPECT_LT(max_abs_diff(expected2, actual2), 1e-5F);
}

TEST(ConvGeometryTest, OutputSizes) {
  ConvGeometry g{3, 32, 32, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 32);
  EXPECT_EQ(g.out_w(), 32);
  EXPECT_EQ(g.patch_size(), 27);

  ConvGeometry strided{16, 32, 32, 3, 2, 1};
  EXPECT_EQ(strided.out_h(), 16);

  ConvGeometry valid{1, 5, 5, 3, 1, 0};
  EXPECT_EQ(valid.out_h(), 3);
}

TEST(Im2ColTest, IdentityKernelGeometry) {
  // 1x1 kernel, no padding: im2col is the identity layout.
  ConvGeometry g{2, 3, 3, 1, 1, 0};
  std::vector<float> image(18);
  for (std::size_t i = 0; i < image.size(); ++i) image[i] = static_cast<float>(i);
  std::vector<float> cols(static_cast<std::size_t>(g.patch_size() * 9));
  im2col(image.data(), g, cols.data());
  for (std::size_t i = 0; i < image.size(); ++i) EXPECT_EQ(cols[i], image[i]);
}

TEST(Im2ColTest, PaddingProducesZeros) {
  ConvGeometry g{1, 2, 2, 3, 1, 1};
  std::vector<float> image{1, 2, 3, 4};
  std::vector<float> cols(static_cast<std::size_t>(g.patch_size() * g.out_h() * g.out_w()));
  im2col(image.data(), g, cols.data());
  // Top-left output patch, kernel position (0,0) reads image(-1,-1) == 0.
  EXPECT_EQ(cols[0], 0.0F);
  // Kernel center (1,1) reads image(0,0) == 1 at output (0,0).
  const std::int64_t center_row = 1 * 3 + 1;  // ky=1, kx=1
  EXPECT_EQ(cols[static_cast<std::size_t>(center_row * 4)], 1.0F);
}

TEST(Col2ImTest, RoundTripAccumulatesCorrectly) {
  // col2im(im2col(x)) multiplies each pixel by the number of patches that
  // cover it. For a 3x3 kernel with padding 1 and stride 1 over a 4x4 image,
  // interior pixels are covered 9 times, corners 4 times.
  ConvGeometry g{1, 4, 4, 3, 1, 1};
  std::vector<float> image(16, 1.0F);
  std::vector<float> cols(static_cast<std::size_t>(g.patch_size() * 16));
  im2col(image.data(), g, cols.data());
  std::vector<float> back(16, 0.0F);
  col2im(cols.data(), g, back.data());
  EXPECT_FLOAT_EQ(back[5], 9.0F);   // interior (1,1)
  EXPECT_FLOAT_EQ(back[0], 4.0F);   // corner (0,0)
  EXPECT_FLOAT_EQ(back[1], 6.0F);   // edge (0,1)
}

TEST(Col2ImTest, AdjointOfIm2Col) {
  // col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)> for
  // all x, y -- the property conv backward depends on.
  support::Rng rng(44);
  const ConvGeometry g{2, 5, 5, 3, 2, 1};
  const std::int64_t cols_size = g.patch_size() * g.out_h() * g.out_w();
  std::vector<float> x(2 * 5 * 5), y(static_cast<std::size_t>(cols_size));
  for (auto& v : x) v = static_cast<float>(rng.normal());
  for (auto& v : y) v = static_cast<float>(rng.normal());

  std::vector<float> ax(static_cast<std::size_t>(cols_size));
  im2col(x.data(), g, ax.data());
  std::vector<float> aty(x.size(), 0.0F);
  col2im(y.data(), g, aty.data());

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) lhs += static_cast<double>(ax[i]) * y[i];
  for (std::size_t i = 0; i < x.size(); ++i) rhs += static_cast<double>(x[i]) * aty[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Im2ColTest, StridedExtraction) {
  ConvGeometry g{1, 4, 4, 2, 2, 0};
  std::vector<float> image(16);
  for (std::size_t i = 0; i < image.size(); ++i) image[i] = static_cast<float>(i);
  std::vector<float> cols(static_cast<std::size_t>(g.patch_size() * 4));
  im2col(image.data(), g, cols.data());
  // Patch row (ky=0, kx=0) should read pixels (0,0), (0,2), (2,0), (2,2).
  EXPECT_EQ(cols[0], 0.0F);
  EXPECT_EQ(cols[1], 2.0F);
  EXPECT_EQ(cols[2], 8.0F);
  EXPECT_EQ(cols[3], 10.0F);
}

}  // namespace
}  // namespace flightnn::tensor
