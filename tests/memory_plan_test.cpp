// Tests for the memory-budgeted execution planner (DESIGN.md §15): the
// offline liveness analysis + interval coloring in runtime/memory_plan.hpp
// and the NetworkProgram-level planner in inference/memory_plan.hpp.
//
// The planner's contract has three legs, each tested here:
//   1. Layout soundness (property): two buffers whose live intervals
//      overlap in time never overlap in the arena; every offset is
//      64-byte-aligned; every extent fits the claimed capacity.
//   2. Execution equivalence (differential): planned and dynamic-arena
//      runs of the same program produce byte-identical logits at every
//      thread count, including through an artifact save/load round trip.
//   3. Plan adequacy: executing a planned network serves every scratch
//      fetch from its planned extent (zero plan misses) across a sweep of
//      network geometries -- the planner's simulation of the kernels'
//      requests matches what the kernels actually ask for.

#include "inference/memory_plan.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/quantize_model.hpp"
#include "inference/network_program.hpp"
#include "inference/quantized_network.hpp"
#include "models/networks.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/inference_request.hpp"
#include "runtime/memory_plan.hpp"
#include "runtime/scratch_arena.hpp"
#include "runtime/thread_pool.hpp"
#include "serialize/artifact.hpp"
#include "support/rng.hpp"
#include "tensor/tensor.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define FLIGHTNN_MEMPLAN_TEST_HAS_PID 1
#endif

namespace flightnn {
namespace {

using tensor::Shape;
using tensor::Tensor;

// Restore the planning override (and thread count) whatever a test does.
struct PlanningOverrideGuard {
  ~PlanningOverrideGuard() {
    inference::set_memory_planning_override(-1);
    runtime::set_num_threads(1);
  }
};

bool temporally_overlap(const runtime::BufferInterval& a,
                        const runtime::BufferInterval& b) {
  return a.def_op <= b.last_use_op && b.def_op <= a.last_use_op;
}

// The layout-soundness property every colored interval set must satisfy.
void expect_sound_layout(const std::vector<runtime::BufferInterval>& intervals,
                         std::size_t capacity, const std::string& what) {
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const auto& a = intervals[i];
    if (a.bytes == 0) continue;
    ASSERT_NE(a.offset, runtime::kUnassignedOffset) << what << " interval " << i;
    EXPECT_EQ(a.offset % runtime::kArenaAlignment, 0U)
        << what << " interval " << i << " is misaligned";
    EXPECT_LE(a.offset + runtime::align_up(a.bytes), capacity)
        << what << " interval " << i << " overruns the arena";
    for (std::size_t j = i + 1; j < intervals.size(); ++j) {
      const auto& b = intervals[j];
      if (b.bytes == 0 || !temporally_overlap(a, b)) continue;
      const bool disjoint =
          a.offset + runtime::align_up(a.bytes) <= b.offset ||
          b.offset + runtime::align_up(b.bytes) <= a.offset;
      EXPECT_TRUE(disjoint)
          << what << ": intervals " << i << " and " << j
          << " are live together but share bytes (offsets " << a.offset
          << "+" << a.bytes << " vs " << b.offset << "+" << b.bytes << ")";
    }
  }
}

std::unique_ptr<nn::Sequential> make_model(int network_id, float width_scale,
                                           unsigned seed) {
  models::BuildOptions build;
  build.classes = 10;
  build.width_scale = width_scale;
  build.seed = seed;
  auto model = models::build_network(models::table1_network(network_id), build);
  core::install_lightnn(*model, 2);
  return model;
}

bool logits_equal(const std::vector<Tensor>& a, const std::vector<Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].shape() != b[i].shape()) return false;
    if (std::memcmp(a[i].data(), b[i].data(),
                    static_cast<std::size_t>(a[i].numel()) * sizeof(float)) !=
        0) {
      return false;
    }
  }
  return true;
}

runtime::InferenceRequest make_request(std::int64_t n, std::int64_t side,
                                       std::uint64_t seed) {
  support::Rng rng(seed);
  runtime::InferenceRequest request;
  for (std::int64_t i = 0; i < n; ++i) {
    request.images.push_back(Tensor::randn(Shape{3, side, side}, rng));
  }
  return request;
}

// --- 1. Coloring mechanics (runtime layer) ----------------------------------

TEST(ArenaColoringTest, OverlappingIntervalsGetDisjointBytes) {
  std::vector<runtime::BufferInterval> intervals;
  intervals.push_back({0, runtime::Scratch::kConvOffsets, 100, 0, 0,
                       runtime::kUnassignedOffset});
  intervals.push_back({0, runtime::Scratch::kConvAccumulator, 200, 0, 0,
                       runtime::kUnassignedOffset});
  intervals.push_back({1, runtime::Scratch::kConvOffsets, 300, 1, 1,
                       runtime::kUnassignedOffset});
  const std::size_t capacity = runtime::assign_arena_offsets(intervals);
  expect_sound_layout(intervals, capacity, "hand-built");
  // Ops 0 and 1 never run together: op 1 reuses op 0's space, so the arena
  // is sized by the widest instant, not the sum of all extents.
  EXPECT_LT(capacity, runtime::align_up(100) + runtime::align_up(200) +
                          runtime::align_up(300));
  EXPECT_GE(capacity, runtime::align_up(100) + runtime::align_up(200));
}

TEST(ArenaColoringTest, RandomIntervalSetsStaySound) {
  support::Rng rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<runtime::BufferInterval> intervals;
    const int n = 2 + static_cast<int>(rng.uniform_index(30));
    std::size_t total = 0;
    for (int i = 0; i < n; ++i) {
      runtime::BufferInterval interval;
      interval.op = static_cast<std::uint32_t>(i);
      interval.slot =
          static_cast<runtime::Scratch>(rng.uniform_index(2));
      interval.bytes = 1 + static_cast<std::size_t>(rng.uniform_index(4096));
      interval.def_op = static_cast<std::uint32_t>(rng.uniform_index(16));
      interval.last_use_op =
          interval.def_op + static_cast<std::uint32_t>(rng.uniform_index(8));
      total += runtime::align_up(interval.bytes);
      intervals.push_back(interval);
    }
    const std::size_t capacity = runtime::assign_arena_offsets(intervals);
    expect_sound_layout(intervals, capacity,
                        "trial " + std::to_string(trial));
    EXPECT_LE(capacity, total) << "coloring worse than stacking everything";
  }
}

// --- 2. Planner over real programs -------------------------------------------

TEST(MemoryPlanTest, Table1NetworkLayoutsAreSound) {
  for (const int id : {1, 2}) {  // VGG-7 and ResNet-18 (residual chains)
    auto model = make_model(id, 0.125F, 11);
    const auto program =
        inference::compile_program(*model, Shape{1, 3, 16, 16});
    const auto plan = inference::MemoryPlan::try_build(program);
    ASSERT_NE(plan, nullptr) << "network " << id;
    expect_sound_layout(plan->layout().intervals(),
                        plan->layout().capacity_bytes(),
                        "network " + std::to_string(id));
    // Every conv op must have planned scratch; the census must be coherent.
    EXPECT_EQ(plan->per_op().size(), program.ops.size());
    for (const auto& mem : plan->per_op()) {
      EXPECT_EQ(mem.scratch_bytes, mem.offsets_bytes + mem.accumulator_bytes);
      if (mem.kind == inference::ProgramOpKind::kShiftConv) {
        EXPECT_GT(mem.scratch_bytes, 0U);
        EXPECT_NE(mem.scratch_offset, runtime::kUnassignedOffset);
      }
    }
    EXPECT_GT(plan->arena_capacity_bytes(), 0U);
    EXPECT_GT(plan->activation_peak_bytes(), 0U);
    EXPECT_GT(plan->quant_peak_values(), 0U);
  }
}

TEST(MemoryPlanTest, PlannedVsDynamicLogitsBitIdentical) {
  const PlanningOverrideGuard guard;
  for (const int id : {1, 2}) {
    auto model = make_model(id, 0.125F, 23);

    inference::set_memory_planning_override(1);
    const auto planned =
        inference::QuantizedNetwork::compile(*model, Shape{1, 3, 16, 16});
    inference::set_memory_planning_override(0);
    const auto dynamic =
        inference::QuantizedNetwork::compile(*model, Shape{1, 3, 16, 16});
    inference::set_memory_planning_override(-1);
    ASSERT_NE(planned.memory_plan(), nullptr) << "network " << id;
    ASSERT_EQ(dynamic.memory_plan(), nullptr) << "network " << id;

    const runtime::BatchRunner planned_runner(planned);
    const runtime::BatchRunner dynamic_runner(dynamic);
    const auto request = make_request(6, 16, 900 + id);
    for (const int threads : {1, 4}) {
      runtime::set_num_threads(threads);
      runtime::InferenceResult a, b;
      planned_runner.run(request, a);
      dynamic_runner.run(request, b);
      EXPECT_TRUE(logits_equal(a.logits, b.logits))
          << "network " << id << " at " << threads
          << " threads: planned and dynamic logits differ";
    }
  }
}

TEST(MemoryPlanTest, PlannedFetchesNeverMissAcrossGeometries) {
  const PlanningOverrideGuard guard;
  runtime::set_num_threads(1);
  // Geometry sweep: both Table-1 structures at several widths and input
  // sides. Every planned fetch must hit its extent -- the planner's model
  // of the kernels' scratch requests has to be exact, not approximate.
  support::Rng rng(7);
  for (const int id : {1, 2}) {
    for (const float width : {0.125F, 0.25F}) {
      for (const std::int64_t side : {16, 24}) {
        auto model = make_model(id, width, 31);
        const auto network = inference::QuantizedNetwork::compile(
            *model, Shape{1, 3, side, side});
        ASSERT_NE(network.memory_plan(), nullptr);
        auto& arena = runtime::ScratchArena::current();
        arena.reset_plan_counters();
        const Tensor image = Tensor::randn(Shape{3, side, side}, rng);
        (void)network.run(image);
        EXPECT_EQ(arena.plan_misses(), 0U)
            << "network " << id << " width " << width << " side " << side;
        EXPECT_GT(arena.planned_hits(), 0U)
            << "network " << id << " width " << width << " side " << side;
      }
    }
  }
}

TEST(MemoryPlanTest, ArtifactRoundTripKeepsPlanAndLogits) {
  const PlanningOverrideGuard guard;
  runtime::set_num_threads(1);
  auto model = make_model(1, 0.125F, 47);
  const auto program = inference::compile_program(*model, Shape{1, 3, 16, 16});

#ifdef FLIGHTNN_MEMPLAN_TEST_HAS_PID
  const std::string pid = std::to_string(static_cast<long>(::getpid()));
#else
  const std::string pid = "0";
#endif
  const std::string path =
      ::testing::TempDir() + "/memory_plan_" + pid + ".flnart";
  serialize::save_artifact(program, path);

  const auto compiled =
      inference::QuantizedNetwork::compile(*model, Shape{1, 3, 16, 16});
  ASSERT_NE(compiled.memory_plan(), nullptr);
  {
    const serialize::ArtifactModel artifact =
        serialize::ArtifactModel::load(path);
    // The plan is rebuilt in-loader (format stays v1), and its layout is
    // as sound as the in-process one.
    const inference::MemoryPlan* plan = artifact.network().memory_plan();
    ASSERT_NE(plan, nullptr);
    expect_sound_layout(plan->layout().intervals(),
                        plan->layout().capacity_bytes(), "artifact");
    EXPECT_EQ(plan->arena_capacity_bytes(),
              compiled.memory_plan()->arena_capacity_bytes());

    const runtime::BatchRunner compiled_runner(compiled);
    const runtime::BatchRunner artifact_runner(artifact.network());
    const auto request = make_request(5, 16, 1234);
    for (const int threads : {1, 4}) {
      runtime::set_num_threads(threads);
      runtime::InferenceResult a, b;
      compiled_runner.run(request, a);
      artifact_runner.run(request, b);
      EXPECT_TRUE(logits_equal(a.logits, b.logits))
          << "artifact logits differ at " << threads << " threads";
    }
  }
  std::remove(path.c_str());
}

TEST(MemoryPlanTest, ReferenceEnginesAndEnvStayDynamic) {
  const PlanningOverrideGuard guard;
  auto model = make_model(1, 0.125F, 5);
  inference::CompileOptions reference;
  reference.use_reference_engine = true;
  const auto network = inference::QuantizedNetwork::compile(
      *model, Shape{1, 3, 16, 16}, reference);
  // Reference engines bypass the arena-backed kernels; planning them would
  // claim bytes nobody fetches.
  EXPECT_EQ(network.memory_plan(), nullptr);

  inference::set_memory_planning_override(0);
  EXPECT_FALSE(inference::memory_planning_enabled());
  inference::set_memory_planning_override(1);
  EXPECT_TRUE(inference::memory_planning_enabled());
}

TEST(MemoryPlanTest, ProfileReportsPlannedScratch) {
  const PlanningOverrideGuard guard;
  runtime::set_num_threads(1);
  auto model = make_model(1, 0.125F, 19);
  const auto network =
      inference::QuantizedNetwork::compile(*model, Shape{1, 3, 16, 16});
  ASSERT_NE(network.memory_plan(), nullptr);
  support::Rng rng(3);
  const Tensor image = Tensor::randn(Shape{3, 16, 16}, rng);
  const auto steps = network.profile(image, /*repeats=*/1);
  bool any_scratch = false;
  for (const auto& step : steps) {
    if (step.planned_scratch_bytes > 0) {
      any_scratch = true;
      EXPECT_NE(step.planned_layout, "-") << step.name;
    }
  }
  EXPECT_TRUE(any_scratch) << "no step reported planned scratch";
}

}  // namespace
}  // namespace flightnn
