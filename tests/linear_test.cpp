#include "nn/linear.hpp"

#include <gtest/gtest.h>

#include "gradient_check.hpp"
#include "quant/fixedpoint.hpp"

namespace flightnn::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(LinearTest, OutputShapeAndValue) {
  support::Rng rng(1);
  Linear lin(3, 2, true, rng);
  // y = x W^T + b with explicit values.
  lin.weight().value = Tensor(Shape{2, 3}, std::vector<float>{1, 0, -1, 2, 1, 0});
  lin.bias().value = Tensor(Shape{2}, std::vector<float>{0.5F, -0.5F});
  Tensor x(Shape{1, 3}, std::vector<float>{1, 2, 3});
  Tensor y = lin.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y[0], 1 - 3 + 0.5F);
  EXPECT_FLOAT_EQ(y[1], 2 + 2 - 0.5F);
}

TEST(LinearTest, InputGradient) {
  support::Rng rng(2);
  Linear lin(4, 3, true, rng);
  Tensor x = Tensor::randn(Shape{3, 4}, rng);
  testing::check_input_gradient(lin, x, 60);
}

TEST(LinearTest, WeightGradient) {
  support::Rng rng(3);
  Linear lin(3, 2, true, rng);
  Tensor x = Tensor::randn(Shape{4, 3}, rng);
  testing::check_param_gradient(lin, x, lin.weight(), 61);
}

TEST(LinearTest, BiasGradient) {
  support::Rng rng(4);
  Linear lin(3, 2, true, rng);
  Tensor x = Tensor::randn(Shape{4, 3}, rng);
  testing::check_param_gradient(lin, x, lin.bias(), 62);
}

TEST(LinearTest, TransformAppliesToWeights) {
  support::Rng rng(5);
  Linear lin(8, 4, false, rng);
  lin.set_transform(std::make_shared<quant::FixedPointTransform>(
      quant::FixedPointConfig{4}));
  Tensor wq = lin.quantized_weight();
  // Quantized: at most 15 distinct values.
  std::set<float> distinct;
  for (std::int64_t i = 0; i < wq.numel(); ++i) distinct.insert(wq[i]);
  EXPECT_LE(distinct.size(), 15u);
}

TEST(LinearTest, BadShapesThrow) {
  support::Rng rng(6);
  Linear lin(3, 2, true, rng);
  EXPECT_THROW((void)lin.forward(Tensor(Shape{1, 4}), false),
               std::invalid_argument);
  EXPECT_THROW((void)lin.forward(Tensor(Shape{3}), false), std::invalid_argument);
  EXPECT_THROW(Linear(0, 2, true, rng), std::invalid_argument);
}

TEST(LinearTest, BackwardBeforeForwardThrows) {
  support::Rng rng(7);
  Linear lin(3, 2, true, rng);
  EXPECT_THROW((void)lin.backward(Tensor(Shape{1, 2})), std::logic_error);
}

TEST(LinearTest, GradAccumulatesAcrossBackwards) {
  support::Rng rng(8);
  Linear lin(2, 2, false, rng);
  Tensor x = Tensor::randn(Shape{1, 2}, rng);
  Tensor g(Shape{1, 2}, 1.0F);
  (void)lin.forward(x, true);
  (void)lin.backward(g);
  Tensor first = lin.weight().grad;
  (void)lin.forward(x, true);
  (void)lin.backward(g);
  Tensor second = lin.weight().grad;
  for (std::int64_t i = 0; i < first.numel(); ++i) {
    EXPECT_NEAR(second[i], 2.0F * first[i], 1e-6F);
  }
}

}  // namespace
}  // namespace flightnn::nn
