#include "nn/conv2d.hpp"

#include <gtest/gtest.h>

#include "gradient_check.hpp"
#include "quant/lightnn.hpp"

namespace flightnn::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(Conv2dTest, OutputShape) {
  support::Rng rng(1);
  Conv2d conv(3, 8, 3, 1, 1, true, rng);
  Tensor x = Tensor::randn(Shape{2, 3, 16, 16}, rng);
  Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 8, 16, 16}));
}

TEST(Conv2dTest, StrideAndPaddingShapes) {
  support::Rng rng(2);
  Conv2d conv(4, 6, 3, 2, 1, false, rng);
  Tensor x = Tensor::randn(Shape{1, 4, 9, 9}, rng);
  EXPECT_EQ(conv.forward(x, false).shape(), (Shape{1, 6, 5, 5}));

  Conv2d valid(4, 6, 3, 1, 0, false, rng);
  EXPECT_EQ(valid.forward(x, false).shape(), (Shape{1, 6, 7, 7}));
}

TEST(Conv2dTest, KnownConvolutionValue) {
  support::Rng rng(3);
  Conv2d conv(1, 1, 3, 1, 0, false, rng);
  conv.weight().value.fill(1.0F);  // 3x3 box filter
  Tensor x(Shape{1, 1, 3, 3}, 2.0F);
  Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 18.0F);
}

TEST(Conv2dTest, BiasIsAdded) {
  support::Rng rng(4);
  Conv2d conv(1, 2, 1, 1, 0, true, rng);
  conv.weight().value.fill(0.0F);
  conv.bias().value[0] = 1.5F;
  conv.bias().value[1] = -2.0F;
  Tensor x = Tensor::randn(Shape{1, 1, 2, 2}, rng);
  Tensor y = conv.forward(x, false);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(y[i], 1.5F);
  for (int i = 4; i < 8; ++i) EXPECT_FLOAT_EQ(y[i], -2.0F);
}

TEST(Conv2dTest, InputGradientMatchesFiniteDifference) {
  support::Rng rng(5);
  Conv2d conv(2, 3, 3, 1, 1, true, rng);
  Tensor x = Tensor::randn(Shape{2, 2, 5, 5}, rng, 0.0F, 1.0F);
  testing::check_input_gradient(conv, x, 55);
}

TEST(Conv2dTest, WeightGradientMatchesFiniteDifference) {
  support::Rng rng(6);
  Conv2d conv(2, 2, 3, 1, 1, true, rng);
  Tensor x = Tensor::randn(Shape{1, 2, 4, 4}, rng, 0.0F, 1.0F);
  testing::check_param_gradient(conv, x, conv.weight(), 56);
}

TEST(Conv2dTest, BiasGradientMatchesFiniteDifference) {
  support::Rng rng(7);
  Conv2d conv(2, 3, 3, 2, 1, true, rng);
  Tensor x = Tensor::randn(Shape{2, 2, 5, 5}, rng, 0.0F, 1.0F);
  testing::check_param_gradient(conv, x, conv.bias(), 57);
}

TEST(Conv2dTest, StridedGradients) {
  support::Rng rng(8);
  Conv2d conv(1, 2, 3, 2, 1, false, rng);
  Tensor x = Tensor::randn(Shape{1, 1, 6, 6}, rng, 0.0F, 1.0F);
  testing::check_input_gradient(conv, x, 58);
  testing::check_param_gradient(conv, x, conv.weight(), 59);
}

TEST(Conv2dTest, TransformQuantizesForward) {
  support::Rng rng(9);
  Conv2d conv(1, 4, 3, 1, 1, false, rng);
  conv.set_transform(std::make_shared<quant::LightNNTransform>(1));
  Tensor x = Tensor::randn(Shape{1, 1, 4, 4}, rng);
  (void)conv.forward(x, false);
  EXPECT_TRUE(quant::is_pow2_representable(conv.effective_weight(),
                                           quant::Pow2Config{}));
  // Raw weights remain full precision.
  EXPECT_FALSE(quant::is_pow2_representable(conv.weight().value,
                                            quant::Pow2Config{}));
}

TEST(Conv2dTest, QuantizedWeightHelperMatchesForward) {
  support::Rng rng(10);
  Conv2d conv(2, 3, 3, 1, 1, false, rng);
  conv.set_transform(std::make_shared<quant::LightNNTransform>(2));
  Tensor wq = conv.quantized_weight();
  Tensor x = Tensor::randn(Shape{1, 2, 4, 4}, rng);
  (void)conv.forward(x, false);
  EXPECT_LT(tensor::max_abs_diff(wq, conv.effective_weight()), 1e-9F);
}

TEST(Conv2dTest, BackwardBeforeForwardThrows) {
  support::Rng rng(11);
  Conv2d conv(1, 1, 3, 1, 1, false, rng);
  Tensor g(Shape{1, 1, 4, 4});
  EXPECT_THROW((void)conv.backward(g), std::logic_error);
}

TEST(Conv2dTest, BadInputShapeThrows) {
  support::Rng rng(12);
  Conv2d conv(3, 4, 3, 1, 1, false, rng);
  Tensor wrong_channels = Tensor::randn(Shape{1, 2, 8, 8}, rng);
  EXPECT_THROW((void)conv.forward(wrong_channels, false), std::invalid_argument);
  Tensor wrong_rank = Tensor::randn(Shape{3, 8, 8}, rng);
  EXPECT_THROW((void)conv.forward(wrong_rank, false), std::invalid_argument);
}

TEST(Conv2dTest, InvalidGeometryThrows) {
  support::Rng rng(13);
  EXPECT_THROW(Conv2d(0, 1, 3, 1, 1, false, rng), std::invalid_argument);
  EXPECT_THROW(Conv2d(1, 1, 3, 0, 1, false, rng), std::invalid_argument);
  EXPECT_THROW(Conv2d(1, 1, 3, 1, -1, false, rng), std::invalid_argument);
}

TEST(Conv2dTest, ParametersExposed) {
  support::Rng rng(14);
  Conv2d with_bias(1, 1, 3, 1, 1, true, rng);
  EXPECT_EQ(with_bias.parameters().size(), 2u);
  Conv2d no_bias(1, 1, 3, 1, 1, false, rng);
  EXPECT_EQ(no_bias.parameters().size(), 1u);
  EXPECT_EQ(with_bias.quantized_parameter(), &with_bias.weight());
}

}  // namespace
}  // namespace flightnn::nn
