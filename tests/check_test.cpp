// Contract-API tests: the FLIGHTNN_CHECK family must (a) format useful
// messages, (b) respect the throw-vs-abort policy, and (c) actually fire at
// the library boundaries it guards -- death tests prove malformed shapes
// cannot sneak past conv2d/linear/engine entry points.

#include "support/check.hpp"

#include <gtest/gtest.h>

#include "inference/shift_engine.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "quant/lightnn.hpp"
#include "support/rng.hpp"
#include "tensor/tensor.hpp"

namespace {

using flightnn::support::CheckFailure;
using flightnn::support::CheckPolicy;
using flightnn::tensor::Shape;
using flightnn::tensor::Tensor;

TEST(CheckTest, PassingCheckIsSilent) {
  FLIGHTNN_CHECK(1 + 1 == 2, "arithmetic broke");
  FLIGHTNN_CHECK(true);  // message-free form
  SUCCEED();
}

TEST(CheckTest, FailingCheckThrowsCheckFailure) {
  EXPECT_THROW(FLIGHTNN_CHECK(false, "boom"), CheckFailure);
}

TEST(CheckTest, CheckFailureIsInvalidArgument) {
  // Contract violations are malformed-argument bugs; callers that caught the
  // standard type before the contract API existed must keep working.
  EXPECT_THROW(FLIGHTNN_CHECK(false, "boom"), std::invalid_argument);
  EXPECT_THROW(FLIGHTNN_CHECK(false, "boom"), std::logic_error);
}

TEST(CheckTest, MessageCarriesFormattedArgumentsAndLocation) {
  try {
    const int bits = 42;
    FLIGHTNN_CHECK(bits <= 16, "bits ", bits, " outside [2, 16]");
    FAIL() << "check did not fire";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bits <= 16"), std::string::npos) << what;
    EXPECT_NE(what.find("bits 42 outside [2, 16]"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
  }
}

TEST(CheckTest, MessageArgumentsNotEvaluatedOnSuccess) {
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return "side effect";
  };
  FLIGHTNN_CHECK(true, count());
  EXPECT_EQ(evaluations, 0);
}

TEST(CheckTest, CheckShapeComparesAndFormatsBothShapes) {
  const Shape a{2, 3};
  const Shape b{2, 3};
  FLIGHTNN_CHECK_SHAPE(a, b, "same");  // must not fire
  const Shape c{4};
  try {
    FLIGHTNN_CHECK_SHAPE(a, c, "CheckShapeTest");
    FAIL() << "shape check did not fire";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CheckShapeTest: shape mismatch [2, 3] vs [4]"),
              std::string::npos)
        << what;
  }
}

TEST(CheckTest, UnreachableAlwaysFires) {
  EXPECT_THROW(FLIGHTNN_UNREACHABLE("fell off a closed enum"), CheckFailure);
}

TEST(CheckTest, DcheckMatchesBuildConfiguration) {
#if FLIGHTNN_DCHECKS_ENABLED
  EXPECT_THROW(FLIGHTNN_DCHECK(false, "debug contract"), CheckFailure);
#else
  FLIGHTNN_DCHECK(false, "compiled out in release");
  SUCCEED();
#endif
}

TEST(CheckTest, PolicyDefaultsToThrow) {
  EXPECT_EQ(flightnn::support::check_policy(), CheckPolicy::kThrow);
}

// --- Death tests: the abort policy and the deployed boundary contracts -----

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, AbortPolicyAborts) {
  EXPECT_DEATH(
      {
        flightnn::support::set_check_policy(CheckPolicy::kAbort);
        FLIGHTNN_CHECK(false, "abort path");
      },
      "FLIGHTNN_CHECK failed.*abort path");
}

TEST(CheckDeathTest, TensorShapeMismatchDies) {
  EXPECT_DEATH(
      {
        flightnn::support::set_check_policy(CheckPolicy::kAbort);
        Tensor a(Shape{2, 2});
        Tensor b(Shape{3});
        a += b;
      },
      "shape mismatch \\[2, 2\\] vs \\[3\\]");
}

TEST(CheckDeathTest, Conv2dRejectsMismatchedInput) {
  EXPECT_DEATH(
      {
        flightnn::support::set_check_policy(CheckPolicy::kAbort);
        flightnn::support::Rng rng(7);
        flightnn::nn::Conv2d conv(3, 4, 3, 1, 1, /*with_bias=*/false, rng);
        // 5 channels into a 3-channel convolution.
        (void)conv.forward(Tensor(Shape{1, 5, 8, 8}), /*training=*/false);
      },
      "Conv2d::forward: expected \\[N, 3, H, W\\] input");
}

TEST(CheckDeathTest, LinearRejectsMismatchedInput) {
  EXPECT_DEATH(
      {
        flightnn::support::set_check_policy(CheckPolicy::kAbort);
        flightnn::support::Rng rng(7);
        flightnn::nn::Linear linear(8, 4, /*with_bias=*/true, rng);
        (void)linear.forward(Tensor(Shape{2, 6}), /*training=*/false);
      },
      "Linear::forward: expected \\[N, 8\\] input");
}

TEST(CheckDeathTest, ShiftEngineRejectsWrongChannelCount) {
  EXPECT_DEATH(
      {
        flightnn::support::set_check_policy(CheckPolicy::kAbort);
        flightnn::support::Rng rng(7);
        const flightnn::quant::Pow2Config pow2;
        const Tensor w = flightnn::quant::quantize_lightnn(
            Tensor::randn(Shape{2, 3, 3, 3}, rng, 0.0F, 0.25F), 2, pow2);
        const flightnn::inference::ShiftConv2d engine(w, 2, pow2, 1, 1);
        const auto input = flightnn::inference::quantize_image(
            Tensor::rand_uniform(Shape{5, 8, 8}, rng, -1.0F, 1.0F), 8);
        (void)engine.run(input);
      },
      "ShiftConv2d::run: expected \\[3, H, W\\] input");
}

}  // namespace
