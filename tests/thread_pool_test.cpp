// Property tests for the runtime thread pool: parallel_for covers every
// index exactly once under adversarial range/grain combinations, nested
// submission cannot deadlock, worker exceptions propagate to the caller,
// and destruction drains pending submitted work.

#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace flightnn::runtime {
namespace {

struct CoverageParam {
  int threads;
  std::int64_t begin;
  std::int64_t end;
  std::int64_t grain;
};

class CoverageProperty : public ::testing::TestWithParam<CoverageParam> {};

TEST_P(CoverageProperty, EveryIndexExactlyOnce) {
  const auto p = GetParam();
  ThreadPool pool(p.threads);
  const std::int64_t range = p.end > p.begin ? p.end - p.begin : 0;
  // One counter slot per index; chunks are disjoint so no atomics needed for
  // the increments themselves -- TSan would flag any overlap as a race.
  std::vector<int> seen(static_cast<std::size_t>(range), 0);
  std::atomic<int> calls{0};
  pool.parallel_for(p.begin, p.end, p.grain,
                    [&](std::int64_t lo, std::int64_t hi) {
                      calls.fetch_add(1);
                      ASSERT_LE(p.begin, lo);
                      ASSERT_LE(lo, hi);
                      ASSERT_LE(hi, p.end);
                      for (std::int64_t i = lo; i < hi; ++i) {
                        ++seen[static_cast<std::size_t>(i - p.begin)];
                      }
                    });
  for (std::int64_t i = 0; i < range; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], 1) << "index " << i;
  }
  if (range == 0) {
    EXPECT_EQ(calls.load(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AdversarialRanges, CoverageProperty,
    ::testing::Values(
        // Empty and single-element ranges.
        CoverageParam{4, 0, 0, 1}, CoverageParam{4, 5, 5, 3},
        CoverageParam{4, 0, 1, 1}, CoverageParam{1, 0, 1, 1},
        // Range smaller than thread count / than grain.
        CoverageParam{7, 0, 3, 1}, CoverageParam{4, 0, 10, 100},
        // Grain that does not divide the range; non-power-of-two threads.
        CoverageParam{3, 0, 100, 7}, CoverageParam{7, 0, 1000, 13},
        // Nonzero begin; serial pool on a large range.
        CoverageParam{4, 1000, 1777, 5}, CoverageParam{1, 0, 10000, 1},
        // Many tiny chunks hammering the claim path.
        CoverageParam{7, 0, 5000, 1}));

TEST(ThreadPoolTest, SizeClampsToAtLeastOne) {
  EXPECT_EQ(ThreadPool(0).size(), 1);
  EXPECT_EQ(ThreadPool(-3).size(), 1);
  EXPECT_EQ(ThreadPool(5).size(), 5);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);  // one worker: nesting must self-serve, not wait
  std::atomic<std::int64_t> total{0};
  pool.parallel_for(0, 8, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      pool.parallel_for(0, 64, 1, [&](std::int64_t ilo, std::int64_t ihi) {
        total.fetch_add(ihi - ilo);
      });
    }
  });
  EXPECT_EQ(total.load(), 8 * 64);
}

TEST(ThreadPoolTest, DeeplyNestedSubmissionCompletes) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  pool.parallel_for(0, 4, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      pool.parallel_for(0, 4, 1, [&](std::int64_t mlo, std::int64_t mhi) {
        for (std::int64_t m = mlo; m < mhi; ++m) {
          pool.parallel_for(0, 16, 1, [&](std::int64_t ilo, std::int64_t ihi) {
            total.fetch_add(ihi - ilo);
          });
        }
      });
    }
  });
  EXPECT_EQ(total.load(), 4 * 4 * 16);
}

TEST(ThreadPoolTest, WorkerExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100, 1,
                        [&](std::int64_t lo, std::int64_t /*hi*/) {
                          if (lo >= 40) throw std::runtime_error("chunk failed");
                        }),
      std::runtime_error);
  // The pool survives a failed loop and runs subsequent work.
  std::atomic<std::int64_t> total{0};
  pool.parallel_for(0, 100, 1, [&](std::int64_t lo, std::int64_t hi) {
    total.fetch_add(hi - lo);
  });
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPoolTest, ExceptionFromSerialPathPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(0, 10, 1,
                                 [](std::int64_t, std::int64_t) {
                                   throw std::invalid_argument("serial");
                                 }),
               std::invalid_argument);
}

TEST(ThreadPoolTest, DestructionDrainsPendingWork) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int t = 0; t < 64; ++t) {
      pool.submit([&executed] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        executed.fetch_add(1);
      });
    }
    // Destructor runs here with most tasks still queued.
  }
  EXPECT_EQ(executed.load(), 64);
}

TEST(ThreadPoolTest, SubmitRunsInlineWithoutWorkers) {
  ThreadPool pool(1);
  int ran = 0;
  pool.submit([&ran] { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPoolTest, BadGrainThrows) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 10, 0, [](std::int64_t, std::int64_t) {}),
               std::invalid_argument);
}

TEST(ThreadPoolConfigTest, SetNumThreadsControlsGlobalPool) {
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  EXPECT_EQ(global_pool().size(), 3);
  set_num_threads(7);
  EXPECT_EQ(global_pool().size(), 7);
  std::vector<int> seen(1000, 0);
  parallel_for(0, 1000, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) ++seen[static_cast<std::size_t>(i)];
  });
  EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), 0), 1000);
  set_num_threads(1);  // restore the serial default for other suites
}

TEST(ThreadPoolConfigTest, ZeroRestoresDefault) {
  set_num_threads(0);
  EXPECT_GE(num_threads(), 1);
  set_num_threads(1);
}

}  // namespace
}  // namespace flightnn::runtime
