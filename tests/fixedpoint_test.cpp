#include "quant/fixedpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"

namespace flightnn::quant {
namespace {

TEST(FixedPointTest, QMaxBySignBit) {
  EXPECT_EQ(FixedPointConfig{4}.q_max(), 7);
  EXPECT_EQ(FixedPointConfig{8}.q_max(), 127);
  EXPECT_EQ(FixedPointConfig{2}.q_max(), 1);
}

TEST(FixedPointTest, ScaleIsPowerOfTwoCoveringAbsMax) {
  FixedPointConfig config{8};
  tensor::Tensor x(tensor::Shape{3}, std::vector<float>{0.1F, -0.9F, 0.4F});
  const float scale = choose_pow2_scale(x, config);
  const float log_scale = std::log2(scale);
  EXPECT_FLOAT_EQ(log_scale, std::floor(log_scale));  // power of two
  EXPECT_GE(scale * static_cast<float>(config.q_max()), 0.9F);
  // One halving would no longer cover abs-max.
  EXPECT_LT(scale / 2.0F * static_cast<float>(config.q_max()), 0.9F);
}

TEST(FixedPointTest, ZeroTensorGetsUnitScale) {
  FixedPointConfig config{8};
  tensor::Tensor x(tensor::Shape{4});
  EXPECT_FLOAT_EQ(choose_pow2_scale(x, config), 1.0F);
}

TEST(FixedPointTest, QuantizedValuesAreMultiplesOfScale) {
  FixedPointConfig config{4};
  support::Rng rng(24);
  tensor::Tensor x = tensor::Tensor::randn(tensor::Shape{100}, rng, 0.0F, 0.5F);
  const float scale = choose_pow2_scale(x, config);
  tensor::Tensor q = quantize_fixed_point(x, scale, config);
  for (std::int64_t i = 0; i < q.numel(); ++i) {
    const float ratio = q[i] / scale;
    EXPECT_FLOAT_EQ(ratio, std::nearbyint(ratio));
    EXPECT_LE(std::fabs(ratio), static_cast<float>(config.q_max()));
  }
}

TEST(FixedPointTest, QuantizationErrorBoundedByHalfScale) {
  FixedPointConfig config{8};
  support::Rng rng(25);
  tensor::Tensor x = tensor::Tensor::randn(tensor::Shape{500}, rng, 0.0F, 0.5F);
  const float scale = choose_pow2_scale(x, config);
  tensor::Tensor q = quantize_fixed_point(x, scale, config);
  // Values inside the representable range round to within scale/2.
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x[i]) <= scale * static_cast<float>(config.q_max())) {
      EXPECT_LE(std::fabs(x[i] - q[i]), scale / 2.0F + 1e-7F);
    }
  }
}

TEST(FixedPointTest, SaturationClamps) {
  FixedPointConfig config{4};
  tensor::Tensor x(tensor::Shape{2}, std::vector<float>{100.0F, -100.0F});
  tensor::Tensor q = quantize_fixed_point(x, 1.0F, config);
  EXPECT_FLOAT_EQ(q[0], 7.0F);
  EXPECT_FLOAT_EQ(q[1], -7.0F);
}

TEST(FixedPointTest, InvalidScaleThrows) {
  FixedPointConfig config{4};
  tensor::Tensor x(tensor::Shape{1});
  EXPECT_THROW((void)quantize_fixed_point(x, 0.0F, config), std::invalid_argument);
  EXPECT_THROW((void)quantize_fixed_point(x, -1.0F, config), std::invalid_argument);
}

TEST(FixedPointTransformTest, DescribesAndValidates) {
  FixedPointTransform transform(FixedPointConfig{4});
  EXPECT_EQ(transform.describe(), "fixedpoint-4b");
  EXPECT_THROW(FixedPointTransform(FixedPointConfig{1}), std::invalid_argument);
  EXPECT_THROW(FixedPointTransform(FixedPointConfig{17}), std::invalid_argument);
}

TEST(FixedPointTransformTest, ForwardQuantizes) {
  FixedPointTransform transform(FixedPointConfig{4});
  support::Rng rng(26);
  tensor::Tensor w = tensor::Tensor::randn(tensor::Shape{10, 10}, rng, 0.0F, 0.3F);
  tensor::Tensor q = transform.forward(w);
  // At most 2 * q_max + 1 = 15 distinct values.
  std::set<float> distinct;
  for (std::int64_t i = 0; i < q.numel(); ++i) distinct.insert(q[i]);
  EXPECT_LE(distinct.size(), 15u);
}

TEST(ActivationQuantizeTest, RangeAndGranularity) {
  support::Rng rng(27);
  tensor::Tensor x = tensor::Tensor::randn(tensor::Shape{200}, rng, 0.0F, 1.0F);
  tensor::Tensor q = quantize_activations(x, 8);
  EXPECT_LE(q.abs_max(), x.abs_max() * 1.01F + 1e-6F);
  // 8-bit: error bounded by half the scale step.
  FixedPointConfig config{8};
  const float scale = choose_pow2_scale(x, config);
  EXPECT_LT(tensor::max_abs_diff(x, q), scale * 0.51F);
}

}  // namespace
}  // namespace flightnn::quant
