#include "inference/shift_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "quant/lightnn.hpp"
#include "support/rng.hpp"

namespace flightnn::inference {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(QuantizeImageTest, RoundTripError) {
  support::Rng rng(1);
  Tensor img = Tensor::randn(Shape{3, 8, 8}, rng);
  const auto q = quantize_image(img, 8);
  Tensor back = dequantize(q);
  const float scale = std::ldexp(1.0F, q.scale_exp);
  EXPECT_LT(tensor::max_abs_diff(img, back), scale * 0.51F);
}

TEST(QuantizeImageTest, AcceptsBatchOfOne) {
  support::Rng rng(2);
  Tensor img = Tensor::randn(Shape{1, 3, 4, 4}, rng);
  const auto q = quantize_image(img, 8);
  EXPECT_EQ(q.shape, (Shape{3, 4, 4}));
}

TEST(QuantizeImageTest, RejectsBadShapes) {
  EXPECT_THROW((void)quantize_image(Tensor(Shape{2, 3, 4, 4}), 8),
               std::invalid_argument);
  EXPECT_THROW((void)quantize_image(Tensor(Shape{4, 4}), 8), std::invalid_argument);
  EXPECT_THROW((void)quantize_image(Tensor(Shape{1, 2, 2}), 1), std::invalid_argument);
}

TEST(QuantizeImageTest, ValuesFitBitWidth) {
  support::Rng rng(3);
  Tensor img = Tensor::randn(Shape{1, 6, 6}, rng, 0.0F, 10.0F);
  const auto q = quantize_image(img, 8);
  for (const auto v : q.values) {
    EXPECT_LE(v, 127);
    EXPECT_GE(v, -127);
  }
}

// The central claim: the shift-add integer engine is bit-exact against real
// arithmetic on the quantized operands.
TEST(ShiftConvTest, BitExactAgainstReferenceConv) {
  support::Rng rng(4);
  const quant::Pow2Config config;
  Tensor w = Tensor::randn(Shape{4, 3, 3, 3}, rng, 0.0F, 0.3F);
  Tensor wq = quant::quantize_lightnn(w, 2, config);
  Tensor img = Tensor::randn(Shape{3, 8, 8}, rng);
  const auto qimg = quantize_image(img, 8);
  Tensor deq = dequantize(qimg);

  ShiftConv2d engine(wq, 2, config, 1, 1);
  Tensor engine_out = engine.run(qimg);
  Tensor reference = reference_conv(wq, deq, 1, 1);
  // Both compute the same exact rational values; only fp32 storage rounds.
  EXPECT_LT(tensor::max_abs_diff(engine_out, reference), 1e-4F);
}

TEST(ShiftConvTest, BitExactWithStrideAndPadding) {
  support::Rng rng(5);
  const quant::Pow2Config config;
  Tensor w = Tensor::randn(Shape{2, 2, 3, 3}, rng, 0.0F, 0.3F);
  Tensor wq = quant::quantize_lightnn(w, 1, config);
  Tensor img = Tensor::randn(Shape{2, 9, 9}, rng);
  const auto qimg = quantize_image(img, 8);

  for (std::int64_t stride : {1, 2}) {
    for (std::int64_t padding : {0, 1}) {
      ShiftConv2d engine(wq, 1, config, stride, padding);
      Tensor out = engine.run(qimg);
      Tensor ref = reference_conv(wq, dequantize(qimg), stride, padding);
      EXPECT_EQ(out.shape(), ref.shape());
      EXPECT_LT(tensor::max_abs_diff(out, ref), 1e-4F)
          << "stride=" << stride << " padding=" << padding;
    }
  }
}

TEST(ShiftConvTest, BiasIsApplied) {
  const quant::Pow2Config config;
  Tensor wq(Shape{1, 1, 1, 1}, std::vector<float>{0.5F});
  Tensor bias(Shape{1}, std::vector<float>{2.5F});
  Tensor img(Shape{1, 2, 2}, 1.0F);
  const auto qimg = quantize_image(img, 8);
  ShiftConv2d engine(wq, 1, config, 1, 0, bias);
  Tensor out = engine.run(qimg);
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_NEAR(out[i], 3.0F, 1e-5F);
  }
}

TEST(ShiftConvTest, OpCountsScaleWithK) {
  support::Rng rng(6);
  const quant::Pow2Config config;
  Tensor w = Tensor::randn(Shape{4, 2, 3, 3}, rng, 0.0F, 0.3F);
  Tensor img = Tensor::randn(Shape{2, 8, 8}, rng);
  const auto qimg = quantize_image(img, 8);

  OpCounts counts1{}, counts2{};
  Tensor wq1 = quant::quantize_lightnn(w, 1, config);
  Tensor wq2 = quant::quantize_lightnn(w, 2, config);
  ShiftConv2d e1(wq1, 1, config, 1, 1);
  ShiftConv2d e2(wq2, 2, config, 1, 1);
  (void)e1.run(qimg, &counts1);
  (void)e2.run(qimg, &counts2);
  EXPECT_GT(counts2.shifts, counts1.shifts);
  // k=2 at most doubles the single-shift workload.
  EXPECT_LE(counts2.shifts, 2 * counts1.shifts);
  EXPECT_EQ(counts1.shifts, counts1.adds);
}

TEST(ShiftConvTest, PrunedFiltersCostNothing) {
  const quant::Pow2Config config;
  Tensor wq(Shape{2, 1, 2, 2});  // both filters all-zero
  wq[0] = 0.25F;                 // one nonzero element in filter 0
  Tensor img(Shape{1, 4, 4}, 1.0F);
  const auto qimg = quantize_image(img, 8);
  ShiftConv2d engine(wq, 2, config, 1, 0);
  OpCounts counts{};
  Tensor out = engine.run(qimg, &counts);
  // Filter 1 contributes no ops and produces zeros.
  EXPECT_EQ(counts.shifts, 9);  // 3x3 output positions x 1 element
  for (std::int64_t i = 9; i < 18; ++i) EXPECT_FLOAT_EQ(out[i], 0.0F);
}

TEST(ShiftConvTest, TermCountMatchesDecomposition) {
  support::Rng rng(7);
  const quant::Pow2Config config;
  Tensor w = Tensor::randn(Shape{8, 2, 3, 3}, rng, 0.0F, 0.3F);
  Tensor wq = quant::quantize_lightnn(w, 2, config);
  ShiftConv2d engine(wq, 2, config, 1, 1);
  const auto d = core::decompose_to_lightnn1(wq, 2, config);
  EXPECT_EQ(engine.term_count(), d.term_count());
  EXPECT_EQ(engine.filter_k(), d.filter_k);
}

TEST(ShiftConvTest, InputValidation) {
  const quant::Pow2Config config;
  Tensor wq(Shape{1, 2, 3, 3});
  ShiftConv2d engine(wq, 1, config, 1, 1);
  QuantizedActivations wrong;
  wrong.shape = Shape{3, 8, 8};  // 3 channels, engine expects 2
  wrong.values.assign(192, 0);
  EXPECT_THROW((void)engine.run(wrong), std::invalid_argument);

  EXPECT_THROW(ShiftConv2d(Tensor(Shape{2, 2}), 1, config, 1, 0),
               std::invalid_argument);
  Tensor bad_bias(Shape{3});
  EXPECT_THROW(ShiftConv2d(wq, 1, config, 1, 0, bad_bias), std::invalid_argument);
}

TEST(ReferenceConvTest, KnownValue) {
  Tensor w(Shape{1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor img(Shape{1, 2, 2}, std::vector<float>{1, 1, 1, 1});
  Tensor out = reference_conv(w, img, 1, 0);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 1}));
  EXPECT_FLOAT_EQ(out[0], 10.0F);
}

}  // namespace
}  // namespace flightnn::inference
