// Zero-allocation steady state: after warm-up, repeated BatchRunner::run
// calls into a reused InferenceResult must perform no heap allocations. The test
// replaces the global operator new/delete pair with counting versions; every
// allocation anywhere in the process (any thread) increments the counter
// while counting is armed.
//
// Two regimes:
//  - 1 thread: strict. The calling thread owns every buffer; after the first
//    batch has populated the tensor pool, quantization scratch, arenas and
//    counter vectors, subsequent batches must allocate exactly nothing.
//  - 4 threads: converge-then-assert. Workers acquire pool buffers lazily and
//    batch elements can land on different workers run-to-run, so each worker
//    may pay a one-time transient of at most one buffer per size class. The
//    test runs batches until it observes consecutive allocation-free batches,
//    then asserts several more stay clean. Failure to converge fails the test.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/quantize_model.hpp"
#include "inference/memory_plan.hpp"
#include "inference/network_program.hpp"
#include "inference/quantized_network.hpp"
#include "models/networks.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/scratch_arena.hpp"
#include "runtime/thread_pool.hpp"
#include "serialize/artifact.hpp"
#include "serving/server.hpp"
#include "support/rng.hpp"
#include "tensor/tensor.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define FLIGHTNN_ARENA_TEST_HAS_PID 1
#endif

namespace {

std::atomic<long long> g_alloc_count{0};
std::atomic<bool> g_counting{false};

void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc(std::size_t size, std::align_val_t align) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) size = 1;
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               (size + static_cast<std::size_t>(align) - 1) &
                                   ~(static_cast<std::size_t>(align) - 1));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace flightnn {
namespace {

using tensor::Shape;
using tensor::Tensor;

inference::QuantizedNetwork make_network() {
  models::BuildOptions build;
  build.classes = 10;
  build.width_scale = 0.125F;
  build.seed = 17;
  auto model = models::build_network(models::table1_network(1), build);
  core::install_lightnn(*model, 2);
  return inference::QuantizedNetwork::compile(*model, Shape{1, 3, 16, 16});
}

runtime::InferenceRequest make_request(std::int64_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  runtime::InferenceRequest request;
  request.images.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    request.images.push_back(Tensor::randn(Shape{3, 16, 16}, rng));
  }
  return request;
}

long long count_allocs_in_batch(const runtime::BatchRunner& runner,
                                const runtime::InferenceRequest& request,
                                runtime::InferenceResult& result) {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_seq_cst);
  runner.run(request, result);
  g_counting.store(false, std::memory_order_seq_cst);
  return g_alloc_count.load(std::memory_order_relaxed);
}

TEST(ArenaAllocationTest, SingleThreadSteadyStateAllocatesNothing) {
  runtime::set_num_threads(1);
  const auto network = make_network();
  const runtime::BatchRunner runner(network);
  const auto request = make_request(6, 1001);

  runtime::InferenceResult result;
  // Warm-up: first batch builds the tensor pool, quantization scratch,
  // arena slots and counter vectors; second proves stability before arming.
  runner.run(request, result);
  runner.run(request, result);

  for (int batch = 0; batch < 5; ++batch) {
    const long long allocs = count_allocs_in_batch(runner, request, result);
    EXPECT_EQ(allocs, 0) << "steady-state batch " << batch
                         << " hit the heap " << allocs << " times";
  }
  EXPECT_EQ(result.logits.size(), request.images.size());
  EXPECT_EQ(result.argmax.size(), request.images.size());
  EXPECT_EQ(result.counts.images,
            static_cast<std::int64_t>(request.images.size()));
}

// Deployment regression: a network executed out of an mmap-loaded artifact
// (plan streams are zero-copy views into the read-only mapping; engines hold
// no weights) must reach the same zero-allocation steady state as the
// in-process compiled network above. Catches any loader change that starts
// materializing per-batch copies of the mapped plan data.
TEST(ArenaAllocationTest, ArtifactMmapLoadedSteadyStateAllocatesNothing) {
  runtime::set_num_threads(1);

  models::BuildOptions build;
  build.classes = 10;
  build.width_scale = 0.125F;
  build.seed = 17;
  auto model = models::build_network(models::table1_network(1), build);
  core::install_lightnn(*model, 2);
  const inference::NetworkProgram program =
      inference::compile_program(*model, Shape{1, 3, 16, 16});

#ifdef FLIGHTNN_ARENA_TEST_HAS_PID
  const std::string pid = std::to_string(static_cast<long>(::getpid()));
#else
  const std::string pid = "0";
#endif
  const std::string path =
      ::testing::TempDir() + "/arena_artifact_" + pid + ".flnart";
  serialize::save_artifact(program, path);

  {
    const serialize::ArtifactModel artifact =
        serialize::ArtifactModel::load(path);
    const runtime::BatchRunner runner(artifact.network());
    const auto request = make_request(6, 3003);

    runtime::InferenceResult result;
    runner.run(request, result);
    runner.run(request, result);

    for (int batch = 0; batch < 5; ++batch) {
      const long long allocs = count_allocs_in_batch(runner, request, result);
      EXPECT_EQ(allocs, 0)
          << "artifact-backed steady-state batch " << batch << " hit the heap "
          << allocs << " times";
    }
    EXPECT_EQ(result.logits.size(), request.images.size());
    EXPECT_EQ(result.argmax.size(), request.images.size());
  }
  std::remove(path.c_str());
}

// Memory-planned route (DESIGN.md §15): after BatchRunner::warm() the very
// FIRST batch must already be allocation-free -- the plan pre-sizes the
// arena, the pooled activation working set, the quantization scratch and
// the counter vectors offline, so there is no grow-once warmup left to pay.
// The client-owned result storage is reserved by the client (that is its
// cost, like the request tensors above).
TEST(ArenaAllocationTest, PlannedWarmMakesFirstBatchAllocationFree) {
  runtime::set_num_threads(1);
  const auto network = make_network();
  ASSERT_NE(network.memory_plan(), nullptr)
      << "network compiled without a memory plan";
  const runtime::BatchRunner runner(network);
  const auto request = make_request(1, 7007);

  runtime::InferenceResult result;
  result.logits.reserve(1);
  result.argmax.reserve(1);
  runner.warm(1);

  runtime::ScratchArena::current().reset_plan_counters();
  const long long allocs = count_allocs_in_batch(runner, request, result);
  EXPECT_EQ(allocs, 0) << "first planned batch hit the heap " << allocs
                       << " times";
  EXPECT_EQ(runtime::ScratchArena::current().plan_misses(), 0U);
  EXPECT_GT(runtime::ScratchArena::current().planned_hits(), 0U);
  EXPECT_EQ(result.logits.size(), 1U);

  // And it stays free, of course.
  for (int batch = 0; batch < 3; ++batch) {
    EXPECT_EQ(count_allocs_in_batch(runner, request, result), 0);
  }
}

// Same first-batch guarantee for a network served out of an mmap-loaded
// artifact: the in-loader plan rebuild must produce a plan as complete as
// the in-process one.
TEST(ArenaAllocationTest, PlannedWarmFirstBatchAllocationFreeFromArtifact) {
  runtime::set_num_threads(1);

  models::BuildOptions build;
  build.classes = 10;
  build.width_scale = 0.125F;
  build.seed = 17;
  auto model = models::build_network(models::table1_network(1), build);
  core::install_lightnn(*model, 2);
  const inference::NetworkProgram program =
      inference::compile_program(*model, Shape{1, 3, 16, 16});

#ifdef FLIGHTNN_ARENA_TEST_HAS_PID
  const std::string pid = std::to_string(static_cast<long>(::getpid()));
#else
  const std::string pid = "0";
#endif
  const std::string path =
      ::testing::TempDir() + "/arena_planned_artifact_" + pid + ".flnart";
  serialize::save_artifact(program, path);

  {
    const serialize::ArtifactModel artifact =
        serialize::ArtifactModel::load(path);
    ASSERT_NE(artifact.network().memory_plan(), nullptr)
        << "artifact loader did not rebuild the memory plan";
    const runtime::BatchRunner runner(artifact.network());
    const auto request = make_request(1, 8008);

    runtime::InferenceResult result;
    result.logits.reserve(1);
    result.argmax.reserve(1);
    runner.warm(1);

    const long long allocs = count_allocs_in_batch(runner, request, result);
    EXPECT_EQ(allocs, 0) << "first artifact-backed planned batch hit the heap "
                         << allocs << " times";
    for (int batch = 0; batch < 3; ++batch) {
      EXPECT_EQ(count_allocs_in_batch(runner, request, result), 0);
    }
  }
  std::remove(path.c_str());
}

TEST(ArenaAllocationTest, MultiThreadSteadyStateConverges) {
  runtime::set_num_threads(4);
  const auto network = make_network();
  const runtime::BatchRunner runner(network);
  const auto request = make_request(9, 2002);

  runtime::InferenceResult result;
  runner.run(request, result);  // spin up workers + first-touch warm-up

  // Converge: workers warm their thread-local pools lazily and image->worker
  // assignment varies run to run, so allow a bounded number of batches for
  // the per-worker transients to die out.
  constexpr int kMaxWarmupBatches = 50;
  constexpr int kRequiredCleanStreak = 3;
  int clean_streak = 0;
  int batch = 0;
  for (; batch < kMaxWarmupBatches && clean_streak < kRequiredCleanStreak;
       ++batch) {
    const long long allocs = count_allocs_in_batch(runner, request, result);
    clean_streak = allocs == 0 ? clean_streak + 1 : 0;
  }
  ASSERT_EQ(clean_streak, kRequiredCleanStreak)
      << "allocations never converged to zero within " << kMaxWarmupBatches
      << " batches";

  // Assert: once converged, the steady state must stay allocation-free.
  for (int i = 0; i < 5; ++i) {
    const long long allocs = count_allocs_in_batch(runner, request, result);
    EXPECT_EQ(allocs, 0) << "post-convergence batch " << i << " allocated";
  }
  runtime::set_num_threads(1);
}

// Full serving path: submit -> batcher flush -> future resolve. Unlike the
// bare BatchRunner loop, exact zero is impossible by design: each request
// crosses the client/batcher boundary through a promise/future pair, a
// queue node, and a result whose ownership transfers to the client (so its
// storage cannot be recycled batcher-side). What the design does guarantee
// is that the per-round allocation count converges to a *constant* that is
// small and independent of how many rounds have run -- no leak-like growth,
// no per-round rediscovery of pool buffers.
TEST(ArenaAllocationTest, ServingPathConvergesToConstantPerRequestBudget) {
  runtime::set_num_threads(1);
  constexpr std::int64_t kImages = 4;
  const auto network = make_network();
  const runtime::BatchRunner runner(network);
  serving::ServerConfig config;
  config.max_batch = kImages;  // a full request flushes immediately
  config.max_queue_delay_s = 0.050;
  serving::Server server(runner, config);

  // Requests are prepared outside the counting window: building the input
  // tensors is the client's cost, not the serving path's.
  constexpr int kMaxRounds = 40;
  std::vector<runtime::InferenceRequest> requests;
  requests.reserve(kMaxRounds + 5);
  for (int i = 0; i < kMaxRounds + 5; ++i) {
    requests.push_back(make_request(kImages, 3000 + i));
  }
  std::size_t next = 0;

  const auto measure_round = [&]() -> long long {
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_seq_cst);
    auto submission = server.submit(std::move(requests[next]));
    EXPECT_EQ(submission.status, serving::SubmitStatus::Ok);
    const runtime::InferenceResult result = submission.result.get();
    g_counting.store(false, std::memory_order_seq_cst);
    ++next;
    EXPECT_EQ(result.logits.size(), static_cast<std::size_t>(kImages));
    EXPECT_EQ(result.argmax.size(), static_cast<std::size_t>(kImages));
    return g_alloc_count.load(std::memory_order_relaxed);
  };

  // Converge: pools, the fused-batch scratch, and the stats histogram warm
  // up over the first rounds; after that every round must cost the same up
  // to kJitter (std::deque block caching makes a round cost +-1 depending
  // on whether the batcher thread pops before or after the next push).
  constexpr int kRequiredStableStreak = 3;
  constexpr long long kJitter = 1;
  long long stable_value = -1000;
  int streak = 0;
  int round = 0;
  for (; round < kMaxRounds && streak < kRequiredStableStreak; ++round) {
    const long long allocs = measure_round();
    if (std::llabs(allocs - stable_value) <= kJitter) {
      ++streak;
      stable_value = std::max(stable_value, allocs);
    } else {
      streak = 1;
      stable_value = allocs;
    }
  }
  ASSERT_EQ(streak, kRequiredStableStreak)
      << "per-round allocation count never stabilized within " << kMaxRounds
      << " rounds (last: " << stable_value << ")";

  // The stable cost must fit the per-request budget: promise/future shared
  // state, one queue node, the client-owned result vectors, and one logits
  // tensor per image. Anything beyond that indicates recycling broke.
  const long long kPerRoundBudget = 8 + 4 * kImages;
  EXPECT_LE(stable_value, kPerRoundBudget)
      << "steady-state serving round allocates " << stable_value
      << " times; budget is " << kPerRoundBudget;

  for (int i = 0; i < 5; ++i) {
    const long long allocs = measure_round();
    EXPECT_LE(allocs, stable_value + kJitter)
        << "post-convergence round " << i << " deviated";
  }
  server.shutdown();
  runtime::set_num_threads(1);
}

}  // namespace
}  // namespace flightnn
