// The deployment-artifact battery (DESIGN.md §13). Four legs:
//
//   1. Golden regression: a checked-in artifact built from a fully
//      deterministic ResNet must be byte-identical to a fresh build --
//      any layout drift (field order, alignment, section order, checksum)
//      fails loudly. Regenerate with FLIGHTNN_REGEN_GOLDEN=1.
//   2. Differential: logits from the mmap-loaded and heap-compiled paths
//      must be memcmp-identical, serial and under 4 threads.
//   3. Corruption matrix: every structural violation (truncation, bad
//      magic/version/checksum, misaligned or escaping sections, invalid
//      op records and plan streams) throws the matching typed
//      ArtifactError -- never UB, never a wild allocation.
//   4. Shared mapping: two processes mapping one artifact file produce
//      identical logits (fork-based, POSIX only).

#include "serialize/artifact.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/quantize_model.hpp"
#include "inference/network_program.hpp"
#include "inference/quantized_network.hpp"
#include "models/networks.hpp"
#include "runtime/thread_pool.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define FLIGHTNN_TEST_HAS_FORK 1
#else
#define FLIGHTNN_TEST_HAS_FORK 0
#endif

#ifndef FLIGHTNN_GOLDEN_DIR
#define FLIGHTNN_GOLDEN_DIR "tests/golden"
#endif

namespace flightnn::serialize {
namespace {

using inference::NetworkProgram;
using inference::ProgramOpKind;
using inference::QuantizedNetwork;
using tensor::Shape;
using tensor::Tensor;

// --- Deterministic fixture ------------------------------------------------
//
// The golden test needs byte-reproducibility across compilers and libms, so
// every parameter is overwritten with exact-grid values (n/64, |n| <= 64)
// from a fixed xorshift32 stream: quantization, plan lowering and batch-norm
// folding then involve only correctly-rounded float ops (+-*/ and sqrt).

std::uint32_t xorshift32(std::uint32_t& state) {
  state ^= state << 13;
  state ^= state >> 17;
  state ^= state << 5;
  return state;
}

void fill_grid(Tensor& tensor, std::uint32_t& state) {
  float* data = tensor.data();
  for (std::int64_t i = 0; i < tensor.numel(); ++i) {
    const auto raw = static_cast<int>(xorshift32(state) % 129U) - 64;
    data[i] = static_cast<float>(raw) / 64.0F;
  }
}

std::unique_ptr<nn::Sequential> deterministic_model() {
  models::BuildOptions build;
  build.classes = 10;
  build.in_channels = 3;
  build.width_scale = 0.125F;
  build.seed = 17;
  // ResNet (Table 1 id 2): residual blocks exercise the segment encoding.
  auto model = models::build_network(models::table1_network(2), build);
  std::uint32_t state = 0x9E3779B9U;
  for (nn::Parameter* parameter : model->parameters()) {
    fill_grid(parameter->value, state);
  }
  core::install_lightnn(*model, 2);
  return model;
}

const Shape kInputShape{1, 3, 16, 16};

Tensor deterministic_image(std::uint32_t salt) {
  Tensor image(Shape{3, 16, 16});
  std::uint32_t state = 0xB5297A4DU + salt;
  fill_grid(image, state);
  return image;
}

NetworkProgram deterministic_program() {
  auto model = deterministic_model();
  return inference::compile_program(*model, kInputShape);
}

std::string golden_path() {
  return std::string(FLIGHTNN_GOLDEN_DIR) + "/table1_resnet18_w8.flnart";
}

std::string unique_temp_path(const char* stem) {
  static int counter = 0;
  return ::testing::TempDir() + "/" + stem + "_" +
         std::to_string(static_cast<long>(::getpid())) + "_" +
         std::to_string(counter++) + ".flnart";
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return {};
  const auto size = static_cast<std::size_t>(file.tellg());
  std::vector<std::uint8_t> bytes(size);
  file.seekg(0);
  file.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(size));
  return bytes;
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(file.is_open()) << path;
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
}

// Logits as raw bytes so comparisons are memcmp, not EXPECT_NEAR.
std::vector<std::uint8_t> logits_bytes(const QuantizedNetwork& network,
                                       int images) {
  std::vector<std::uint8_t> bytes;
  for (int n = 0; n < images; ++n) {
    const Tensor logits = network.run(deterministic_image(
        static_cast<std::uint32_t>(n)));
    const auto* p = reinterpret_cast<const std::uint8_t*>(logits.data());
    bytes.insert(bytes.end(),
                 p, p + static_cast<std::size_t>(logits.numel()) * sizeof(float));
  }
  return bytes;
}

// --- Golden regression ----------------------------------------------------

TEST(GoldenArtifact, BuildIsByteIdenticalToCheckedInBlob) {
  const std::vector<std::uint8_t> blob = build_artifact(deterministic_program());
  if (std::getenv("FLIGHTNN_REGEN_GOLDEN") != nullptr) {
    write_file(golden_path(), blob);
    GTEST_SKIP() << "regenerated " << golden_path() << " (" << blob.size()
                 << " bytes)";
  }
  const std::vector<std::uint8_t> golden = read_file(golden_path());
  ASSERT_FALSE(golden.empty())
      << "missing golden blob " << golden_path()
      << "; regenerate with FLIGHTNN_REGEN_GOLDEN=1";
  ASSERT_EQ(blob.size(), golden.size()) << "artifact layout drifted";
  EXPECT_EQ(std::memcmp(blob.data(), golden.data(), blob.size()), 0)
      << "artifact bytes drifted from the golden blob; if the format "
         "changed intentionally, bump kArtifactVersion and regenerate";
}

TEST(GoldenArtifact, BuildIsDeterministicAcrossRuns) {
  const NetworkProgram program = deterministic_program();
  EXPECT_EQ(build_artifact(program), build_artifact(program));
}

TEST(GoldenArtifact, CheckedInBlobLoadsAndMatchesHeapLogits) {
  const std::vector<std::uint8_t> golden = read_file(golden_path());
  if (golden.empty()) GTEST_SKIP() << "no golden blob yet";
  const ArtifactModel model = ArtifactModel::load_buffer(golden.data(),
                                                         golden.size());
  EXPECT_EQ(model.input_c(), 3);
  EXPECT_EQ(model.input_h(), 16);
  EXPECT_EQ(model.input_w(), 16);
  const QuantizedNetwork heap =
      QuantizedNetwork::from_program(deterministic_program());
  EXPECT_EQ(logits_bytes(model.network(), 4), logits_bytes(heap, 4));
}

// --- Differential: mmap vs heap, serial and threaded ----------------------

TEST(ArtifactDifferential, MmapAndHeapLogitsAreMemcmpIdentical) {
  const NetworkProgram program = deterministic_program();
  const std::vector<std::uint8_t> blob = build_artifact(program);
  const std::string path = unique_temp_path("artifact_diff");
  write_file(path, blob);

  const ArtifactModel mapped = ArtifactModel::load(path);
  const ArtifactModel heap_copy = ArtifactModel::load_buffer(blob.data(),
                                                             blob.size());
  const QuantizedNetwork compiled =
      QuantizedNetwork::from_program(deterministic_program());

  for (const int threads : {1, 4}) {
    runtime::set_num_threads(threads);
    const auto reference = logits_bytes(compiled, 4);
    EXPECT_EQ(logits_bytes(mapped.network(), 4), reference)
        << "mmap path diverged at " << threads << " threads";
    EXPECT_EQ(logits_bytes(heap_copy.network(), 4), reference)
        << "heap-buffer path diverged at " << threads << " threads";
  }
  runtime::set_num_threads(1);
  std::remove(path.c_str());
}

// --- Zero-copy: plan streams must view the blob, not copies ---------------

TEST(ArtifactZeroCopy, PlanStreamsPointIntoTheBlob) {
  const std::vector<std::uint8_t> blob = build_artifact(deterministic_program());
  const NetworkProgram parsed = parse_artifact(blob.data(), blob.size());
  const auto* begin = blob.data();
  const auto* end = blob.data() + blob.size();
  const auto in_blob = [&](const void* p) {
    return p >= static_cast<const void*>(begin) &&
           p < static_cast<const void*>(end);
  };
  int shift_ops = 0;
  for (const auto& op : parsed.ops) {
    if (op.kind != ProgramOpKind::kShiftConv &&
        op.kind != ProgramOpKind::kShiftLinear) {
      continue;
    }
    ++shift_ops;
    EXPECT_TRUE(in_blob(op.plan.element.data()));
    EXPECT_TRUE(in_blob(op.plan.shift.data()));
    EXPECT_TRUE(in_blob(op.plan.sign.data()));
    EXPECT_TRUE(in_blob(op.plan.filter_begin.data()));
    EXPECT_TRUE(in_blob(op.plan.filter_gain.data()));
    // Streams of 8-byte elements must be naturally aligned in the mapping.
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(op.plan.filter_begin.data()) % 8,
              0U);
    // The artifact path carries plans, never the float weights.
    EXPECT_TRUE(op.weights.empty());
  }
  EXPECT_GT(shift_ops, 10) << "ResNet-18 should lower many shift layers";
}

// --- Corruption matrix ----------------------------------------------------

struct CorruptionCase {
  const char* name;
  ArtifactErrorCode expected;
  bool reseal;  // recompute the checksum so deeper validators are reached
  void (*mutate)(std::vector<std::uint8_t>& blob);
};

ArtifactHeader read_header(const std::vector<std::uint8_t>& blob) {
  ArtifactHeader header;
  std::memcpy(&header, blob.data(), sizeof(header));
  return header;
}

void write_header(std::vector<std::uint8_t>& blob, const ArtifactHeader& header) {
  std::memcpy(blob.data(), &header, sizeof(header));
}

std::vector<SectionDesc> read_sections(const std::vector<std::uint8_t>& blob) {
  const ArtifactHeader header = read_header(blob);
  std::vector<SectionDesc> sections(header.section_count);
  std::memcpy(sections.data(), blob.data() + sizeof(ArtifactHeader),
              sections.size() * sizeof(SectionDesc));
  return sections;
}

void write_section(std::vector<std::uint8_t>& blob, std::size_t index,
                   const SectionDesc& desc) {
  std::memcpy(blob.data() + sizeof(ArtifactHeader) + index * sizeof(SectionDesc),
              &desc, sizeof(desc));
}

// First section of `kind`; aborts the test if absent.
SectionDesc find_section(const std::vector<std::uint8_t>& blob,
                         SectionKind kind, std::size_t* index = nullptr) {
  const auto sections = read_sections(blob);
  for (std::size_t i = 0; i < sections.size(); ++i) {
    if (sections[i].kind == static_cast<std::uint32_t>(kind)) {
      if (index != nullptr) *index = i;
      return sections[i];
    }
  }
  ADD_FAILURE() << "no section of kind " << static_cast<int>(kind);
  return {};
}

const CorruptionCase kCorruptionMatrix[] = {
    {"empty file", ArtifactErrorCode::kTruncated, false,
     [](std::vector<std::uint8_t>& blob) { blob.clear(); }},
    {"file shorter than the header", ArtifactErrorCode::kTruncated, false,
     [](std::vector<std::uint8_t>& blob) { blob.resize(64); }},
    {"payload truncated mid-section", ArtifactErrorCode::kTruncated, false,
     [](std::vector<std::uint8_t>& blob) { blob.resize(blob.size() - 32); }},
    {"flipped magic byte", ArtifactErrorCode::kBadMagic, false,
     [](std::vector<std::uint8_t>& blob) { blob[0] ^= 0xFF; }},
    {"future format version", ArtifactErrorCode::kBadVersion, false,
     [](std::vector<std::uint8_t>& blob) {
       auto header = read_header(blob);
       header.version = kArtifactVersion + 7;
       write_header(blob, header);
     }},
    {"inconsistent header geometry", ArtifactErrorCode::kBadHeader, false,
     [](std::vector<std::uint8_t>& blob) {
       auto header = read_header(blob);
       header.section_table_offset = 64;
       write_header(blob, header);
     }},
    {"trailing garbage past file_bytes", ArtifactErrorCode::kBadHeader, false,
     [](std::vector<std::uint8_t>& blob) { blob.push_back(0xAB); }},
    {"zero input geometry", ArtifactErrorCode::kBadHeader, false,
     [](std::vector<std::uint8_t>& blob) {
       auto header = read_header(blob);
       header.input_c = 0;
       write_header(blob, header);
     }},
    {"single flipped payload bit", ArtifactErrorCode::kBadChecksum, false,
     [](std::vector<std::uint8_t>& blob) { blob.back() ^= 0x01; }},
    {"section count beyond the file", ArtifactErrorCode::kBadSection, false,
     [](std::vector<std::uint8_t>& blob) {
       auto header = read_header(blob);
       header.section_count = 0x10000000U;
       write_header(blob, header);
       // The count lives in the header, outside the checksum; no reseal.
     }},
    {"misaligned section offset", ArtifactErrorCode::kBadSection, true,
     [](std::vector<std::uint8_t>& blob) {
       auto sections = read_sections(blob);
       sections[1].offset += 8;
       write_section(blob, 1, sections[1]);
     }},
    {"section escaping the file", ArtifactErrorCode::kBadSection, true,
     [](std::vector<std::uint8_t>& blob) {
       auto sections = read_sections(blob);
       sections[1].bytes = ~std::uint64_t{0} - sections[1].offset + 1;
       write_section(blob, 1, sections[1]);
     }},
    {"unknown section kind", ArtifactErrorCode::kBadSection, true,
     [](std::vector<std::uint8_t>& blob) {
       auto sections = read_sections(blob);
       sections[1].kind = 0xDEAD;
       write_section(blob, 1, sections[1]);
     }},
    {"program section replaced", ArtifactErrorCode::kBadSection, true,
     [](std::vector<std::uint8_t>& blob) {
       auto sections = read_sections(blob);
       sections[0].kind = static_cast<std::uint32_t>(SectionKind::kBias);
       write_section(blob, 0, sections[0]);
     }},
    {"op count disagreeing with the program section",
     ArtifactErrorCode::kBadProgram, false,
     [](std::vector<std::uint8_t>& blob) {
       auto header = read_header(blob);
       header.op_count += 1;
       write_header(blob, header);
     }},
    {"unknown op kind", ArtifactErrorCode::kBadProgram, true,
     [](std::vector<std::uint8_t>& blob) {
       const SectionDesc program = find_section(blob, SectionKind::kProgram);
       OpRecord record;
       std::memcpy(&record, blob.data() + program.offset, sizeof(record));
       record.kind = 99;
       std::memcpy(blob.data() + program.offset, &record, sizeof(record));
     }},
    {"residual segment overrunning the op stream",
     ArtifactErrorCode::kBadProgram, true,
     [](std::vector<std::uint8_t>& blob) {
       const SectionDesc program = find_section(blob, SectionKind::kProgram);
       const ArtifactHeader header = read_header(blob);
       for (std::uint32_t i = 0; i < header.op_count; ++i) {
         OpRecord record;
         std::memcpy(&record, blob.data() + program.offset + i * sizeof(record),
                     sizeof(record));
         if (record.kind ==
             static_cast<std::uint32_t>(ProgramOpKind::kResidual)) {
           record.main_ops = header.op_count + 100;
           std::memcpy(blob.data() + program.offset + i * sizeof(record),
                       &record, sizeof(record));
           return;
         }
       }
       ADD_FAILURE() << "no residual op in the fixture network";
     }},
    {"plan sign outside {-1, +1}", ArtifactErrorCode::kBadProgram, true,
     [](std::vector<std::uint8_t>& blob) {
       const SectionDesc sign = find_section(blob, SectionKind::kPlanSign);
       blob[sign.offset] = 3;
     }},
    {"plan shift beyond the exponent range", ArtifactErrorCode::kBadProgram,
     true,
     [](std::vector<std::uint8_t>& blob) {
       const SectionDesc shift = find_section(blob, SectionKind::kPlanShift);
       blob[shift.offset] = 63;
     }},
    {"plan element out of bounds", ArtifactErrorCode::kBadProgram, true,
     [](std::vector<std::uint8_t>& blob) {
       const SectionDesc element = find_section(blob, SectionKind::kPlanElement);
       const std::int32_t hostile = 0x7FFFFFFF;
       std::memcpy(blob.data() + element.offset, &hostile, sizeof(hostile));
     }},
    {"non-monotone filter_begin", ArtifactErrorCode::kBadProgram, true,
     [](std::vector<std::uint8_t>& blob) {
       const SectionDesc begin = find_section(blob,
                                              SectionKind::kPlanFilterBegin);
       std::int64_t first = 0;
       std::memcpy(&first, blob.data() + begin.offset + 8, sizeof(first));
       first = -first - 1;
       std::memcpy(blob.data() + begin.offset + 8, &first, sizeof(first));
     }},
    {"filter gain disagreeing with its entries",
     ArtifactErrorCode::kBadProgram, true,
     [](std::vector<std::uint8_t>& blob) {
       const SectionDesc gain = find_section(blob, SectionKind::kPlanFilterGain);
       std::int64_t value = 0;
       std::memcpy(&value, blob.data() + gain.offset, sizeof(value));
       value += 1;
       std::memcpy(blob.data() + gain.offset, &value, sizeof(value));
     }},
};

TEST(ArtifactCorruption, EveryCorruptionClassYieldsItsTypedError) {
  const std::vector<std::uint8_t> pristine =
      build_artifact(deterministic_program());
  // The pristine blob must load -- otherwise the matrix proves nothing.
  ASSERT_NO_THROW(ArtifactModel::load_buffer(pristine.data(), pristine.size()));

  for (const CorruptionCase& test_case : kCorruptionMatrix) {
    std::vector<std::uint8_t> blob = pristine;
    test_case.mutate(blob);
    if (test_case.reseal) rewrite_artifact_checksum(blob);
    try {
      (void)ArtifactModel::load_buffer(blob.data(), blob.size());
      ADD_FAILURE() << test_case.name << ": loader accepted corrupt artifact";
    } catch (const ArtifactError& error) {
      EXPECT_EQ(error.code(), test_case.expected)
          << test_case.name << " threw \"" << error.what() << "\"";
    } catch (const std::exception& error) {
      ADD_FAILURE() << test_case.name << ": untyped exception " << error.what();
    }
  }
}

TEST(ArtifactCorruption, MmapLoadRejectsCorruptFileToo) {
  std::vector<std::uint8_t> blob = build_artifact(deterministic_program());
  blob[3] ^= 0x80;  // magic
  const std::string path = unique_temp_path("artifact_corrupt");
  write_file(path, blob);
  try {
    (void)ArtifactModel::load(path);
    ADD_FAILURE() << "mmap loader accepted corrupt artifact";
  } catch (const ArtifactError& error) {
    EXPECT_EQ(error.code(), ArtifactErrorCode::kBadMagic);
  }
  std::remove(path.c_str());
}

TEST(ArtifactCorruption, MissingFileIsATypedIoError) {
  try {
    (void)ArtifactModel::load(unique_temp_path("artifact_missing"));
    ADD_FAILURE() << "loader accepted a nonexistent path";
  } catch (const ArtifactError& error) {
    EXPECT_EQ(error.code(), ArtifactErrorCode::kIo);
  }
}

// --- Two processes, one mapping -------------------------------------------

#if FLIGHTNN_TEST_HAS_FORK
TEST(ArtifactSharedMapping, TwoProcessesProduceIdenticalLogits) {
  runtime::set_num_threads(1);  // keep the process single-threaded for fork
  const std::string path = unique_temp_path("artifact_shared");
  save_artifact(deterministic_program(), path);

  const ArtifactModel parent_model = ArtifactModel::load(path);
  const std::vector<std::uint8_t> parent_logits =
      logits_bytes(parent_model.network(), 2);

  int fds[2] = {-1, -1};
  ASSERT_EQ(::pipe(fds), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: map the same file independently and stream logits back.
    ::close(fds[0]);
    int status = 1;
    try {
      const ArtifactModel model = ArtifactModel::load(path);
      const std::vector<std::uint8_t> logits = logits_bytes(model.network(), 2);
      std::size_t written = 0;
      while (written < logits.size()) {
        const ssize_t n = ::write(fds[1], logits.data() + written,
                                  logits.size() - written);
        if (n <= 0) break;
        written += static_cast<std::size_t>(n);
      }
      status = written == logits.size() ? 0 : 1;
    } catch (...) {
      status = 2;
    }
    ::close(fds[1]);
    ::_exit(status);
  }
  ::close(fds[1]);
  std::vector<std::uint8_t> child_logits(parent_logits.size());
  std::size_t received = 0;
  while (received < child_logits.size()) {
    const ssize_t n = ::read(fds[0], child_logits.data() + received,
                             child_logits.size() - received);
    if (n <= 0) break;
    received += static_cast<std::size_t>(n);
  }
  ::close(fds[0]);
  int status = -1;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "child exit status " << status;
  ASSERT_EQ(received, parent_logits.size());
  EXPECT_EQ(child_logits, parent_logits);
  std::remove(path.c_str());
}
#endif  // FLIGHTNN_TEST_HAS_FORK

}  // namespace
}  // namespace flightnn::serialize
