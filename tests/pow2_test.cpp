#include "quant/pow2.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"

namespace flightnn::quant {
namespace {

TEST(Pow2Test, ExactPowersAreFixedPoints) {
  const Pow2Config config;
  for (int e = config.e_min; e <= config.e_max; ++e) {
    const float v = std::ldexp(1.0F, e);
    EXPECT_FLOAT_EQ(round_to_pow2(v, config).value(), v) << "e=" << e;
    EXPECT_FLOAT_EQ(round_to_pow2(-v, config).value(), -v) << "e=" << e;
  }
}

TEST(Pow2Test, ZeroMapsToZero) {
  const Pow2Config config;
  const Pow2Term t = round_to_pow2(0.0F, config);
  EXPECT_EQ(t.sign, 0);
  EXPECT_EQ(t.value(), 0.0F);
}

TEST(Pow2Test, RoundsInLogDomain) {
  const Pow2Config config;
  // log2(0.75) = -0.415 -> rounds to -0, i.e. 2^0? No: round(-0.415) = 0.
  EXPECT_FLOAT_EQ(round_to_pow2(0.75F, config).value(), 1.0F);
  // 0.7: log2 = -0.515 -> -1 -> 0.5
  EXPECT_FLOAT_EQ(round_to_pow2(0.7F, config).value(), 0.5F);
  // 1.5: log2 = 0.585 -> 1 -> 2, but e_max = 0 clamps to 1.
  EXPECT_FLOAT_EQ(round_to_pow2(1.5F, config).value(), 1.0F);
  // 3.0: log2 = 1.585 -> 2 -> clamped to e_max = 0 -> 1.
  EXPECT_FLOAT_EQ(round_to_pow2(3.0F, config).value(), 1.0F);
}

TEST(Pow2Test, SignIsPreserved) {
  const Pow2Config config;
  EXPECT_LT(round_to_pow2(-0.3F, config).value(), 0.0F);
  EXPECT_GT(round_to_pow2(0.3F, config).value(), 0.0F);
}

TEST(Pow2Test, FlushToZeroBelowHalfMinMagnitude) {
  Pow2Config config;
  config.e_min = -3;  // min magnitude 0.125; flush below 0.0625
  EXPECT_EQ(round_to_pow2(0.05F, config).value(), 0.0F);
  EXPECT_EQ(round_to_pow2(-0.05F, config).value(), 0.0F);
  EXPECT_NE(round_to_pow2(0.07F, config).value(), 0.0F);
}

TEST(Pow2Test, NoFlushClampsToMinExponent) {
  Pow2Config config;
  config.e_min = -3;
  config.flush_to_zero = false;
  EXPECT_FLOAT_EQ(round_to_pow2(0.001F, config).value(), 0.125F);
}

TEST(Pow2Test, ClampAtMaxExponent) {
  Pow2Config config;
  config.e_max = 2;
  EXPECT_FLOAT_EQ(round_to_pow2(100.0F, config).value(), 4.0F);
}

TEST(Pow2Test, ExponentLevels) {
  Pow2Config config;
  config.e_min = -7;
  config.e_max = 0;
  EXPECT_EQ(config.exponent_levels(), 8);  // fits 3 exponent bits
}

TEST(Pow2Test, TensorVariantMatchesScalar) {
  const Pow2Config config;
  support::Rng rng(17);
  tensor::Tensor w = tensor::Tensor::randn(tensor::Shape{100}, rng, 0.0F, 0.3F);
  tensor::Tensor q = round_to_pow2(w, config);
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_FLOAT_EQ(q[i], round_to_pow2(w[i], config).value());
  }
}

TEST(Pow2Test, RoundingMinimizesLogDistance) {
  // Property: among representable powers of two, the chosen one minimizes
  // |log2(|x|) - e| (up to exponent clamping).
  const Pow2Config config;
  support::Rng rng(18);
  for (int trial = 0; trial < 500; ++trial) {
    const float x = static_cast<float>(rng.uniform(0.01, 1.0));
    const Pow2Term t = round_to_pow2(x, config);
    if (t.sign == 0) continue;
    const double log_x = std::log2(x);
    const double dist = std::fabs(log_x - t.exponent);
    for (int e = config.e_min; e <= config.e_max; ++e) {
      EXPECT_LE(dist, std::fabs(log_x - e) + 1e-9);
    }
  }
}

TEST(Pow2Test, IsPow2Representable) {
  const Pow2Config config;
  tensor::Tensor good(tensor::Shape{3}, std::vector<float>{0.5F, -0.25F, 0.0F});
  EXPECT_TRUE(is_pow2_representable(good, config));
  tensor::Tensor bad(tensor::Shape{1}, std::vector<float>{0.3F});
  EXPECT_FALSE(is_pow2_representable(bad, config));
  tensor::Tensor out_of_range(tensor::Shape{1}, std::vector<float>{2.0F});
  EXPECT_FALSE(is_pow2_representable(out_of_range, config));  // e_max = 0
}

TEST(Pow2Test, IsSumOfPow2) {
  const Pow2Config config;
  // 0.75 = 0.5 + 0.25: two terms.
  tensor::Tensor v(tensor::Shape{1}, std::vector<float>{0.75F});
  EXPECT_FALSE(is_sum_of_pow2(v, 1, config));
  EXPECT_TRUE(is_sum_of_pow2(v, 2, config));
}

}  // namespace
}  // namespace flightnn::quant
