#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace flightnn::tensor {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t(Shape{2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0F);
}

TEST(TensorTest, FillConstructor) {
  Tensor t(Shape{4}, 2.5F);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5F);
}

TEST(TensorTest, DataConstructorValidatesSize) {
  EXPECT_THROW(Tensor(Shape{3}, std::vector<float>{1.0F, 2.0F}),
               std::invalid_argument);
  Tensor ok(Shape{2}, std::vector<float>{1.0F, 2.0F});
  EXPECT_EQ(ok[1], 2.0F);
}

TEST(TensorTest, MultiIndexAccess) {
  Tensor t(Shape{2, 2});
  t.at({1, 0}) = 7.0F;
  EXPECT_EQ(t[2], 7.0F);
  const Tensor& ct = t;
  EXPECT_EQ(ct.at({1, 0}), 7.0F);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t(Shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped(Shape{3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(r[i], t[i]);
  EXPECT_THROW((void)t.reshaped(Shape{5}), std::invalid_argument);
}

TEST(TensorTest, InPlaceArithmetic) {
  Tensor a(Shape{3}, std::vector<float>{1, 2, 3});
  Tensor b(Shape{3}, std::vector<float>{10, 20, 30});
  a += b;
  EXPECT_EQ(a[2], 33.0F);
  a -= b;
  EXPECT_EQ(a[2], 3.0F);
  a *= 2.0F;
  EXPECT_EQ(a[0], 2.0F);
}

TEST(TensorTest, ShapeMismatchThrows) {
  Tensor a(Shape{3});
  Tensor b(Shape{4});
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
  EXPECT_THROW(a.add_scaled(b, 1.0F), std::invalid_argument);
}

TEST(TensorTest, AddScaled) {
  Tensor a(Shape{2}, std::vector<float>{1, 1});
  Tensor b(Shape{2}, std::vector<float>{2, 4});
  a.add_scaled(b, -0.5F);
  EXPECT_EQ(a[0], 0.0F);
  EXPECT_EQ(a[1], -1.0F);
}

TEST(TensorTest, Reductions) {
  Tensor t(Shape{4}, std::vector<float>{-3, 1, 2, -0.5F});
  EXPECT_FLOAT_EQ(t.sum(), -0.5F);
  EXPECT_FLOAT_EQ(t.min(), -3.0F);
  EXPECT_FLOAT_EQ(t.max(), 2.0F);
  EXPECT_FLOAT_EQ(t.abs_max(), 3.0F);
  EXPECT_NEAR(t.l2_norm(), std::sqrt(9.0 + 1.0 + 4.0 + 0.25), 1e-6);
}

TEST(TensorTest, EmptyReductionsThrow) {
  Tensor t(Shape{0});
  EXPECT_THROW((void)t.min(), std::logic_error);
  EXPECT_THROW((void)t.max(), std::logic_error);
}

TEST(TensorTest, RandnStatistics) {
  support::Rng rng(5);
  Tensor t = Tensor::randn(Shape{10000}, rng, 1.0F, 2.0F);
  double sum = 0.0, sum_sq = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    sum += t[i];
    sum_sq += static_cast<double>(t[i]) * t[i];
  }
  const double mean = sum / 10000.0;
  const double var = sum_sq / 10000.0 - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(TensorTest, RandUniformBounds) {
  support::Rng rng(6);
  Tensor t = Tensor::rand_uniform(Shape{1000}, rng, -2.0F, 3.0F);
  EXPECT_GE(t.min(), -2.0F);
  EXPECT_LT(t.max(), 3.0F);
}

TEST(TensorTest, OutOfPlaceOperators) {
  Tensor a(Shape{2}, std::vector<float>{1, 2});
  Tensor b(Shape{2}, std::vector<float>{3, 4});
  Tensor c = a + b;
  EXPECT_EQ(c[0], 4.0F);
  Tensor d = b - a;
  EXPECT_EQ(d[1], 2.0F);
  Tensor e = a * 3.0F;
  EXPECT_EQ(e[1], 6.0F);
  // Originals untouched.
  EXPECT_EQ(a[0], 1.0F);
  EXPECT_EQ(b[0], 3.0F);
}

TEST(TensorTest, MaxAbsDiff) {
  Tensor a(Shape{3}, std::vector<float>{1, 2, 3});
  Tensor b(Shape{3}, std::vector<float>{1, 2.5F, 2});
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 1.0F);
  Tensor c(Shape{2});
  EXPECT_THROW((void)max_abs_diff(a, c), std::invalid_argument);
}

TEST(TensorTest, CopyIsDeep) {
  Tensor a(Shape{2}, std::vector<float>{1, 2});
  Tensor b = a;
  b[0] = 99.0F;
  EXPECT_EQ(a[0], 1.0F);
}

}  // namespace
}  // namespace flightnn::tensor
