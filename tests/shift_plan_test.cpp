// Property tests for the compiled shift-plan engine: over randomized layer
// geometries, k_max values and pruning fractions (including all-pruned and
// fully-dense extremes), the compiled plan path must produce BIT-IDENTICAL
// outputs and identical op counts to the pre-plan reference term-walk, and
// the plan itself must satisfy its structural invariants (sorted filter
// prefix, no zero-sign entries, shifts inside the barrel range, pruned
// filters with empty entry ranges).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/decompose.hpp"
#include "inference/shift_engine.hpp"
#include "inference/shift_plan.hpp"
#include "quant/lightnn.hpp"
#include "runtime/thread_pool.hpp"
#include "support/rng.hpp"
#include "tensor/tensor.hpp"

namespace flightnn {
namespace {

using tensor::Shape;
using tensor::Tensor;

void expect_bitwise_equal(const Tensor& expected, const Tensor& actual,
                          const char* what) {
  ASSERT_EQ(expected.shape(), actual.shape()) << what;
  EXPECT_EQ(std::memcmp(expected.data(), actual.data(),
                        static_cast<std::size_t>(expected.numel()) *
                            sizeof(float)),
            0)
      << what << ": plan output differs from reference term-walk";
}

// Zero out a fraction of whole filters (the paper's filter pruning). The
// first `pruned` filters are zeroed so fraction 1.0 reliably covers the
// all-pruned extreme and 0.0 the fully-dense one.
void prune_filters(Tensor& weights, double fraction) {
  const std::int64_t filters = weights.shape()[0];
  const std::int64_t filter_numel = weights.numel() / filters;
  const auto pruned =
      static_cast<std::int64_t>(fraction * static_cast<double>(filters) + 0.5);
  for (std::int64_t f = 0; f < pruned && f < filters; ++f) {
    float* row = weights.data() + f * filter_numel;
    for (std::int64_t i = 0; i < filter_numel; ++i) row[i] = 0.0F;
  }
}

void check_plan_invariants(const inference::ShiftPlan& plan,
                           const quant::Pow2Config& config, bool conv) {
  ASSERT_EQ(plan.filter_begin.size(),
            static_cast<std::size_t>(plan.filters) + 1);
  EXPECT_EQ(plan.filter_begin.front(), 0);
  EXPECT_EQ(plan.filter_begin.back(), plan.entries());
  for (std::size_t f = 1; f < plan.filter_begin.size(); ++f) {
    EXPECT_LE(plan.filter_begin[f - 1], plan.filter_begin[f]);
  }
  const auto n = static_cast<std::size_t>(plan.entries());
  ASSERT_EQ(plan.element.size(), n);
  ASSERT_EQ(plan.shift.size(), n);
  ASSERT_EQ(plan.sign.size(), n);
  if (conv) {
    ASSERT_EQ(plan.channel.size(), n);
    ASSERT_EQ(plan.ky.size(), n);
    ASSERT_EQ(plan.kx.size(), n);
  } else {
    EXPECT_TRUE(plan.channel.empty());
  }
  const int shift_levels = config.exponent_levels();
  for (std::size_t e = 0; e < n; ++e) {
    EXPECT_TRUE(plan.sign[e] == 1 || plan.sign[e] == -1)
        << "zero-sign entry survived compilation at " << e;
    EXPECT_GE(plan.shift[e], 0);
    EXPECT_LT(plan.shift[e], shift_levels);
  }
  ASSERT_EQ(plan.filter_gain.size(), static_cast<std::size_t>(plan.filters));
  for (std::int64_t f = 0; f < plan.filters; ++f) {
    const bool empty = plan.filter_begin[static_cast<std::size_t>(f)] ==
                       plan.filter_begin[static_cast<std::size_t>(f) + 1];
    if (empty) {
      EXPECT_EQ(plan.filter_gain[static_cast<std::size_t>(f)], 0)
          << "pruned filter " << f << " has nonzero gain";
    } else {
      EXPECT_GT(plan.filter_gain[static_cast<std::size_t>(f)], 0);
    }
  }
}

// Count nonzero elements of a quantized weight tensor, term by term: the
// plan must contain exactly one entry per nonzero single-shift term element.
std::int64_t expected_entries(const Tensor& wq, int k_max,
                              const quant::Pow2Config& config) {
  const auto decomposition = core::decompose_to_lightnn1(wq, k_max, config);
  std::int64_t entries = 0;
  for (const auto& term : decomposition.terms) {
    for (const auto& element : term.elements) {
      if (element.sign != 0) ++entries;
    }
  }
  return entries;
}

TEST(ShiftPlanPropertyTest, ConvPlanMatchesReferenceAcrossRandomConfigs) {
  const quant::Pow2Config config;
  const double kPruneFractions[] = {0.0, 0.35, 0.5, 1.0};
  support::Rng rng(20260805);
  int cases = 0;
  for (const int k_max : {1, 2, 3}) {
    for (const std::int64_t kernel : {1, 3, 5}) {
      for (const std::int64_t stride : {1, 2, 3}) {
        for (const std::int64_t padding : {0, 1, 2}) {
          const double fraction =
              kPruneFractions[cases % 4];  // cycle the pruning extremes
          ++cases;
          const std::int64_t in_ch = 1 + static_cast<std::int64_t>(
                                             rng.uniform_index(3));
          const std::int64_t out_ch = 2 + static_cast<std::int64_t>(
                                              rng.uniform_index(5));
          const std::int64_t in_h = kernel + static_cast<std::int64_t>(
                                                 rng.uniform_index(6));
          const std::int64_t in_w = kernel + static_cast<std::int64_t>(
                                                 rng.uniform_index(6));

          Tensor w = Tensor::randn(Shape{out_ch, in_ch, kernel, kernel}, rng);
          Tensor wq = quant::quantize_lightnn(w, k_max, config);
          prune_filters(wq, fraction);

          const inference::ShiftConv2d engine(wq, k_max, config, stride,
                                              padding);
          check_plan_invariants(engine.plan(), config, /*conv=*/true);
          EXPECT_EQ(engine.plan().entries(),
                    expected_entries(wq, k_max, config))
              << "plan did not elide exactly the zero elements";

          const Tensor image = Tensor::randn(Shape{in_ch, in_h, in_w}, rng);
          const auto q = inference::quantize_image(image, 8);

          inference::OpCounts plan_counts{};
          inference::OpCounts ref_counts{};
          const Tensor got = engine.run(q, &plan_counts);
          const Tensor want = engine.run_reference(q, &ref_counts);
          expect_bitwise_equal(want, got, "conv");
          EXPECT_EQ(plan_counts.shifts, ref_counts.shifts)
              << "k=" << k_max << " kernel=" << kernel << " stride=" << stride
              << " pad=" << padding << " prune=" << fraction;
          EXPECT_EQ(plan_counts.adds, ref_counts.adds);
        }
      }
    }
  }
}

// The conv plan path parallelizes across filters; its agreement with the
// serial reference must hold at every thread count (including a
// non-power-of-two).
TEST(ShiftPlanPropertyTest, ConvPlanThreadCountInvariant) {
  const quant::Pow2Config config;
  support::Rng rng(7);
  Tensor w = Tensor::randn(Shape{9, 3, 3, 3}, rng);
  Tensor wq = quant::quantize_lightnn(w, 2, config);
  prune_filters(wq, 0.3);
  const inference::ShiftConv2d engine(wq, 2, config, 1, 1);
  const Tensor image = Tensor::randn(Shape{3, 12, 12}, rng);
  const auto q = inference::quantize_image(image, 8);

  runtime::set_num_threads(1);
  const Tensor reference = engine.run_reference(q);
  for (const int threads : {1, 2, 4, 7}) {
    runtime::set_num_threads(threads);
    expect_bitwise_equal(reference, engine.run(q), "conv@threads");
  }
  runtime::set_num_threads(1);
}

TEST(ShiftPlanPropertyTest, LinearPlanMatchesReferenceAcrossRandomConfigs) {
  const quant::Pow2Config config;
  const double kPruneFractions[] = {0.0, 0.5, 1.0};
  support::Rng rng(99);
  for (const int k_max : {1, 2, 3}) {
    for (const double fraction : kPruneFractions) {
      const std::int64_t in_features =
          3 + static_cast<std::int64_t>(rng.uniform_index(30));
      const std::int64_t out_features =
          1 + static_cast<std::int64_t>(rng.uniform_index(8));
      Tensor w = Tensor::randn(Shape{out_features, in_features}, rng);
      Tensor wq = quant::quantize_lightnn(w, k_max, config);
      prune_filters(wq, fraction);

      const inference::ShiftLinear engine(wq, k_max, config);
      check_plan_invariants(engine.plan(), config, /*conv=*/false);
      EXPECT_EQ(engine.plan().entries(), expected_entries(wq, k_max, config));

      const Tensor x = Tensor::randn(Shape{in_features}, rng);
      const auto q = inference::quantize_tensor(x, 8);

      inference::OpCounts plan_counts{};
      inference::OpCounts ref_counts{};
      const Tensor got = engine.run(q, &plan_counts);
      const Tensor want = engine.run_reference(q, &ref_counts);
      expect_bitwise_equal(want, got, "linear");
      EXPECT_EQ(plan_counts.shifts, ref_counts.shifts)
          << "k=" << k_max << " prune=" << fraction;
      EXPECT_EQ(plan_counts.adds, ref_counts.adds);
    }
  }
}

// Hand-built single-entry plan: one +1.0 weight at element 0 must compile to
// exactly one entry with shift = -e_min (2^0 needs exponent 0) and sign +1.
TEST(ShiftPlanPropertyTest, SingleWeightCompilesToOneEntry) {
  const quant::Pow2Config config;
  Tensor wq = Tensor::zeros(Shape{2, 1, 3, 3});
  wq.data()[0] = 1.0F;  // filter 0, element (0, 0, 0); filter 1 pruned
  const inference::ShiftConv2d engine(wq, 1, config, 1, 1);
  const auto& plan = engine.plan();
  ASSERT_EQ(plan.entries(), 1);
  EXPECT_EQ(plan.element[0], 0);
  EXPECT_EQ(plan.channel[0], 0);
  EXPECT_EQ(plan.ky[0], 0);
  EXPECT_EQ(plan.kx[0], 0);
  EXPECT_EQ(plan.shift[0], -config.e_min);
  EXPECT_EQ(plan.sign[0], 1);
  EXPECT_EQ(plan.filter_begin[1], 1);
  EXPECT_EQ(plan.filter_begin[2], 1) << "pruned filter must have empty range";
  EXPECT_EQ(plan.filter_gain[1], 0);
}

// Bias handling must be identical on both paths (bias folds in after
// dequantization, independent of the entry walk).
TEST(ShiftPlanPropertyTest, BiasFoldsIdenticallyOnBothPaths) {
  const quant::Pow2Config config;
  support::Rng rng(5);
  Tensor w = Tensor::randn(Shape{4, 2, 3, 3}, rng);
  Tensor wq = quant::quantize_lightnn(w, 2, config);
  Tensor bias = Tensor::randn(Shape{4}, rng);
  const inference::ShiftConv2d engine(wq, 2, config, 2, 1, bias);
  const Tensor image = Tensor::randn(Shape{2, 9, 9}, rng);
  const auto q = inference::quantize_image(image, 8);
  expect_bitwise_equal(engine.run_reference(q), engine.run(q), "conv+bias");

  Tensor wl = Tensor::randn(Shape{5, 12}, rng);
  Tensor wlq = quant::quantize_lightnn(wl, 2, config);
  Tensor bl = Tensor::randn(Shape{5}, rng);
  const inference::ShiftLinear lin(wlq, 2, config, bl);
  const Tensor x = Tensor::randn(Shape{12}, rng);
  const auto qx = inference::quantize_tensor(x, 8);
  expect_bitwise_equal(lin.run_reference(qx), lin.run(qx), "linear+bias");
}

}  // namespace
}  // namespace flightnn
