#include "core/decompose.hpp"

#include <gtest/gtest.h>

#include "core/flightnn_transform.hpp"
#include "quant/lightnn.hpp"
#include "support/rng.hpp"

namespace flightnn::core {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(DecomposeTest, LightNN1YieldsOneTermPerNonzeroFilter) {
  support::Rng rng(1);
  Tensor w = Tensor::randn(Shape{4, 2, 3, 3}, rng, 0.0F, 0.3F);
  Tensor q = quant::quantize_lightnn(w, 1, quant::Pow2Config{});
  const auto d = decompose_to_lightnn1(q, 1, quant::Pow2Config{});
  EXPECT_EQ(d.filter_k.size(), 4u);
  for (int k : d.filter_k) EXPECT_LE(k, 1);
  EXPECT_EQ(d.elements_per_filter, 18);
}

TEST(DecomposeTest, ReconstructionIsExact) {
  support::Rng rng(2);
  Tensor w = Tensor::randn(Shape{6, 3, 3, 3}, rng, 0.0F, 0.3F);
  for (int k = 1; k <= 3; ++k) {
    Tensor q = quant::quantize_lightnn(w, k, quant::Pow2Config{});
    const auto d = decompose_to_lightnn1(q, k, quant::Pow2Config{});
    Tensor rebuilt = d.reconstruct(q.shape());
    EXPECT_LT(tensor::max_abs_diff(q, rebuilt), 1e-9F) << "k=" << k;
  }
}

TEST(DecomposeTest, EveryTermIsSingleShift) {
  support::Rng rng(3);
  Tensor w = Tensor::randn(Shape{4, 1, 3, 3}, rng, 0.0F, 0.3F);
  Tensor q = quant::quantize_lightnn(w, 2, quant::Pow2Config{});
  const auto d = decompose_to_lightnn1(q, 2, quant::Pow2Config{});
  const quant::Pow2Config config;
  for (const auto& term : d.terms) {
    for (const auto& element : term.elements) {
      if (element.sign == 0) continue;
      EXPECT_GE(element.exponent, config.e_min);
      EXPECT_LE(element.exponent, config.e_max);
      EXPECT_TRUE(element.sign == 1 || element.sign == -1);
    }
  }
}

TEST(DecomposeTest, FLightNNOutputDecomposesByFilterK) {
  FLightNNTransform transform;
  transform.set_thresholds({0.05F, 0.3F});
  support::Rng rng(4);
  Tensor w = Tensor::randn(Shape{8, 2, 3, 3}, rng, 0.0F, 0.3F);
  Tensor q = transform.forward(w);
  const auto d = decompose_to_lightnn1(q, 2, transform.config().pow2);
  // Term counts per filter can be below the transform's k_i (a level can
  // round to an all-zero term) but never above.
  const auto ks = transform.filter_k(w);
  for (std::size_t i = 0; i < ks.size(); ++i) {
    EXPECT_LE(d.filter_k[i], ks[i]) << "filter " << i;
  }
  EXPECT_LT(tensor::max_abs_diff(q, d.reconstruct(q.shape())), 1e-9F);
}

TEST(DecomposeTest, ZeroFilterProducesNoTerms) {
  Tensor q(Shape{2, 1, 2, 2});
  q[0] = 0.5F;  // filter 0 has one nonzero element; filter 1 all zero
  const auto d = decompose_to_lightnn1(q, 2, quant::Pow2Config{});
  EXPECT_EQ(d.filter_k[0], 1);
  EXPECT_EQ(d.filter_k[1], 0);
  EXPECT_EQ(d.term_count(), 1);
}

TEST(DecomposeTest, NonQuantizedInputThrows) {
  Tensor w(Shape{1, 1, 1, 3}, std::vector<float>{0.3F, 0.1F, 0.7F});
  EXPECT_THROW((void)decompose_to_lightnn1(w, 1, quant::Pow2Config{}),
               std::invalid_argument);
}

TEST(DecomposeTest, InvalidArgsThrow) {
  Tensor q(Shape{1, 1, 1, 1});
  EXPECT_THROW((void)decompose_to_lightnn1(q, 0, quant::Pow2Config{}),
               std::invalid_argument);
}

TEST(DecomposeTest, TermsGroupedByFilterAscending) {
  support::Rng rng(5);
  Tensor w = Tensor::randn(Shape{5, 1, 3, 3}, rng, 0.0F, 0.3F);
  Tensor q = quant::quantize_lightnn(w, 2, quant::Pow2Config{});
  const auto d = decompose_to_lightnn1(q, 2, quant::Pow2Config{});
  for (std::size_t i = 1; i < d.terms.size(); ++i) {
    EXPECT_GE(d.terms[i].filter, d.terms[i - 1].filter);
    if (d.terms[i].filter == d.terms[i - 1].filter) {
      EXPECT_EQ(d.terms[i].level, d.terms[i - 1].level + 1);
    }
  }
}

}  // namespace
}  // namespace flightnn::core
