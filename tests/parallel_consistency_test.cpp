// Differential test: every parallelized forward path must produce outputs
// BIT-IDENTICAL to serial execution, for 1, 2, 4 and 7 (non-power-of-two)
// threads, including odd batch sizes and batch < thread count. The integer
// shift-add engine partitions by output filter (integer accumulation has no
// reduction-order ambiguity) and the float layers partition by output
// element, so there is no tolerance here -- memcmp must agree.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/quantize_model.hpp"
#include "inference/quantized_network.hpp"
#include "inference/shift_engine.hpp"
#include "models/networks.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "quant/lightnn.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/inference_request.hpp"
#include "runtime/thread_pool.hpp"
#include "support/rng.hpp"

namespace flightnn {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr int kThreadCounts[] = {2, 4, 7};

void expect_bitwise_equal(const Tensor& expected, const Tensor& actual,
                          const char* what, int threads) {
  ASSERT_EQ(expected.shape(), actual.shape()) << what << " @" << threads;
  EXPECT_EQ(std::memcmp(expected.data(), actual.data(),
                        static_cast<std::size_t>(expected.numel()) *
                            sizeof(float)),
            0)
      << what << ": output differs from serial at " << threads << " threads";
}

// Run `fn` serially, then at each parallel thread count, asserting bitwise
// agreement. Restores the serial default afterwards.
template <typename Fn>
void check_thread_invariance(const char* what, Fn&& fn) {
  runtime::set_num_threads(1);
  const Tensor reference = fn();
  for (const int threads : kThreadCounts) {
    runtime::set_num_threads(threads);
    expect_bitwise_equal(reference, fn(), what, threads);
  }
  runtime::set_num_threads(1);
}

class ConvBatchSizes : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ConvBatchSizes, Conv2dForwardBitIdentical) {
  const std::int64_t batch = GetParam();
  support::Rng rng(11);
  nn::Conv2d conv(3, 8, 3, 1, 1, /*with_bias=*/true, rng);
  Tensor x = Tensor::randn(Shape{batch, 3, 10, 10}, rng);
  check_thread_invariance("conv2d", [&] { return conv.forward(x, false); });
}

TEST_P(ConvBatchSizes, StridedConv2dForwardBitIdentical) {
  const std::int64_t batch = GetParam();
  support::Rng rng(12);
  nn::Conv2d conv(4, 6, 3, 2, 0, /*with_bias=*/false, rng);
  Tensor x = Tensor::randn(Shape{batch, 4, 9, 9}, rng);
  check_thread_invariance("conv2d_strided",
                          [&] { return conv.forward(x, false); });
}

TEST_P(ConvBatchSizes, LinearForwardBitIdentical) {
  const std::int64_t batch = GetParam();
  support::Rng rng(13);
  nn::Linear lin(17, 9, /*with_bias=*/true, rng);
  Tensor x = Tensor::randn(Shape{batch, 17}, rng);
  check_thread_invariance("linear", [&] { return lin.forward(x, false); });
}

TEST_P(ConvBatchSizes, MaxPoolForwardBitIdentical) {
  const std::int64_t batch = GetParam();
  support::Rng rng(14);
  nn::MaxPool2d pool(2, 2);
  Tensor x = Tensor::randn(Shape{batch, 5, 8, 8}, rng);
  check_thread_invariance("maxpool", [&] { return pool.forward(x, false); });
}

TEST_P(ConvBatchSizes, GlobalAvgPoolForwardBitIdentical) {
  const std::int64_t batch = GetParam();
  support::Rng rng(15);
  nn::GlobalAvgPool gap;
  Tensor x = Tensor::randn(Shape{batch, 5, 6, 6}, rng);
  check_thread_invariance("gap", [&] { return gap.forward(x, false); });
}

// Batch 1, odd batch 3, and 5 (< the 7-thread configuration).
INSTANTIATE_TEST_SUITE_P(OddBatches, ConvBatchSizes,
                         ::testing::Values<std::int64_t>(1, 3, 5));

TEST(ParallelConsistencyTest, ShiftConv2dBitIdentical) {
  support::Rng rng(21);
  const quant::Pow2Config config;
  Tensor w = Tensor::randn(Shape{16, 6, 3, 3}, rng, 0.0F, 0.3F);
  Tensor wq = quant::quantize_lightnn(w, 2, config);
  Tensor bias = Tensor::randn(Shape{16}, rng);
  inference::ShiftConv2d engine(wq, 2, config, 1, 1, bias);
  Tensor img = Tensor::randn(Shape{6, 12, 12}, rng);
  const auto q = inference::quantize_image(img, 8);
  check_thread_invariance("shift_conv", [&] { return engine.run(q); });
}

TEST(ParallelConsistencyTest, ShiftLinearBitIdentical) {
  support::Rng rng(22);
  const quant::Pow2Config config;
  Tensor w = Tensor::randn(Shape{10, 48}, rng, 0.0F, 0.3F);
  Tensor wq = quant::quantize_lightnn(w, 2, config);
  Tensor bias = Tensor::randn(Shape{10}, rng);
  inference::ShiftLinear engine(wq, 2, config, bias);
  Tensor x = Tensor::randn(Shape{48}, rng);
  const auto q = inference::quantize_tensor(x, 8);
  check_thread_invariance("shift_linear", [&] { return engine.run(q); });
}

TEST(ParallelConsistencyTest, ShiftEngineOpCountsThreadInvariant) {
  support::Rng rng(23);
  const quant::Pow2Config config;
  Tensor w = Tensor::randn(Shape{12, 4, 3, 3}, rng, 0.0F, 0.3F);
  Tensor wq = quant::quantize_lightnn(w, 2, config);
  inference::ShiftConv2d engine(wq, 2, config, 1, 1);
  Tensor img = Tensor::randn(Shape{4, 9, 9}, rng);
  const auto q = inference::quantize_image(img, 8);

  runtime::set_num_threads(1);
  inference::OpCounts serial{};
  (void)engine.run(q, &serial);
  for (const int threads : kThreadCounts) {
    runtime::set_num_threads(threads);
    inference::OpCounts parallel{};
    (void)engine.run(q, &parallel);
    EXPECT_EQ(parallel.shifts, serial.shifts) << threads << " threads";
    EXPECT_EQ(parallel.adds, serial.adds) << threads << " threads";
  }
  runtime::set_num_threads(1);
}

// Full Table-1-style network through the compiled integer plan, run via
// BatchRunner at every thread count, for odd batch sizes including
// batch < thread count.
class NetworkBatchSizes : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(NetworkBatchSizes, QuantizedNetworkBatchBitIdentical) {
  const std::int64_t batch = GetParam();
  models::BuildOptions build;
  build.classes = 10;
  build.width_scale = 0.125F;
  build.seed = 31;
  auto model = models::build_network(models::table1_network(1), build);
  core::install_lightnn(*model, 2);
  runtime::set_num_threads(1);
  const auto network = inference::QuantizedNetwork::compile(
      *model, Shape{1, 3, 16, 16});
  const runtime::BatchRunner runner(network);

  support::Rng rng(32);
  runtime::InferenceRequest request;
  request.id = 77;
  request.images.reserve(static_cast<std::size_t>(batch));
  for (std::int64_t i = 0; i < batch; ++i) {
    request.images.push_back(Tensor::randn(Shape{3, 16, 16}, rng));
  }

  const runtime::InferenceResult serial = runner.run(request);
  ASSERT_EQ(serial.logits.size(), request.images.size());
  ASSERT_EQ(serial.argmax.size(), request.images.size());
  EXPECT_EQ(serial.id, 77u);
  EXPECT_EQ(serial.counts.images, batch);
  EXPECT_EQ(serial.timing.batch_size, batch);
  EXPECT_EQ(serial.timing.queue_seconds, 0.0);

  for (const int threads : kThreadCounts) {
    runtime::set_num_threads(threads);
    const runtime::InferenceResult parallel = runner.run(request);
    ASSERT_EQ(parallel.logits.size(), serial.logits.size());
    for (std::size_t i = 0; i < serial.logits.size(); ++i) {
      expect_bitwise_equal(serial.logits[i], parallel.logits[i],
                           "network logits", threads);
    }
    EXPECT_EQ(parallel.argmax, serial.argmax);
    EXPECT_EQ(parallel.counts.shifts, serial.counts.shifts);
    EXPECT_EQ(parallel.counts.adds, serial.counts.adds);
    EXPECT_EQ(parallel.counts.float_macs, serial.counts.float_macs);
    EXPECT_EQ(parallel.counts.images, serial.counts.images);
  }
  runtime::set_num_threads(1);
}

INSTANTIATE_TEST_SUITE_P(OddBatches, NetworkBatchSizes,
                         ::testing::Values<std::int64_t>(1, 3));

TEST(ParallelConsistencyTest, NchwRequestMatchesPerImageRuns) {
  models::BuildOptions build;
  build.classes = 10;
  build.width_scale = 0.125F;
  build.seed = 41;
  auto model = models::build_network(models::table1_network(1), build);
  core::install_lightnn(*model, 1);
  runtime::set_num_threads(1);
  const auto network = inference::QuantizedNetwork::compile(
      *model, Shape{1, 3, 16, 16});
  const runtime::BatchRunner runner(network);

  support::Rng rng(42);
  Tensor batch = Tensor::randn(Shape{3, 3, 16, 16}, rng);
  runtime::set_num_threads(4);
  const runtime::InferenceResult from_tensor =
      runner.run(runtime::InferenceRequest::from_nchw(batch));
  runtime::set_num_threads(1);
  ASSERT_EQ(from_tensor.logits.size(), 3u);
  for (std::int64_t i = 0; i < 3; ++i) {
    Tensor image(Shape{3, 16, 16});
    std::memcpy(image.data(), batch.data() + i * 3 * 16 * 16,
                sizeof(float) * 3 * 16 * 16);
    const Tensor expected = network.run(image);
    expect_bitwise_equal(expected, from_tensor.logits[static_cast<std::size_t>(i)],
                         "batch overload", 4);
  }
}

}  // namespace
}  // namespace flightnn
