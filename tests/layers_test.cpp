// Tests for the stateless / normalization layers: BatchNorm2d, LeakyReLU,
// ActivationQuant, MaxPool2d, GlobalAvgPool, Flatten.

#include <gtest/gtest.h>

#include "gradient_check.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/pooling.hpp"

namespace flightnn::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

// --- BatchNorm2d ------------------------------------------------------------

TEST(BatchNormTest, NormalizesPerChannelInTraining) {
  support::Rng rng(1);
  BatchNorm2d bn(2);
  Tensor x = Tensor::randn(Shape{4, 2, 5, 5}, rng, 3.0F, 2.0F);
  Tensor y = bn.forward(x, true);
  // Each channel of the output should be ~N(0, 1) (gamma=1, beta=0).
  for (std::int64_t c = 0; c < 2; ++c) {
    double sum = 0.0, sum_sq = 0.0;
    std::int64_t count = 0;
    for (std::int64_t n = 0; n < 4; ++n) {
      for (std::int64_t i = 0; i < 25; ++i) {
        const float v = y[(n * 2 + c) * 25 + i];
        sum += v;
        sum_sq += static_cast<double>(v) * v;
        ++count;
      }
    }
    const double mean = sum / static_cast<double>(count);
    const double var = sum_sq / static_cast<double>(count) - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, EvalUsesRunningStatistics) {
  support::Rng rng(2);
  BatchNorm2d bn(1);
  // Train on many batches so running stats converge towards (3, 4).
  for (int i = 0; i < 200; ++i) {
    Tensor x = Tensor::randn(Shape{8, 1, 4, 4}, rng, 3.0F, 2.0F);
    (void)bn.forward(x, true);
  }
  // A constant input at the running mean should map to ~beta = 0.
  Tensor probe(Shape{1, 1, 2, 2}, 3.0F);
  Tensor y = bn.forward(probe, false);
  EXPECT_NEAR(y[0], 0.0F, 0.15F);
}

TEST(BatchNormTest, GammaBetaApply) {
  BatchNorm2d bn(1);
  bn.gamma().value[0] = 2.0F;
  bn.beta().value[0] = 5.0F;
  support::Rng rng(3);
  Tensor x = Tensor::randn(Shape{4, 1, 4, 4}, rng);
  Tensor y = bn.forward(x, true);
  double sum = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) sum += y[i];
  EXPECT_NEAR(sum / static_cast<double>(y.numel()), 5.0, 1e-3);
}

TEST(BatchNormTest, InputGradient) {
  support::Rng rng(4);
  BatchNorm2d bn(2);
  Tensor x = Tensor::randn(Shape{3, 2, 3, 3}, rng);
  testing::check_input_gradient(bn, x, 63, 1e-2F, 3e-2F);
}

TEST(BatchNormTest, GammaBetaGradients) {
  support::Rng rng(5);
  BatchNorm2d bn(2);
  Tensor x = Tensor::randn(Shape{3, 2, 3, 3}, rng);
  testing::check_param_gradient(bn, x, bn.gamma(), 64, 1e-2F, 3e-2F);
  testing::check_param_gradient(bn, x, bn.beta(), 65, 1e-2F, 3e-2F);
}

TEST(BatchNormTest, BadShapeThrows) {
  BatchNorm2d bn(3);
  EXPECT_THROW((void)bn.forward(Tensor(Shape{1, 2, 4, 4}), true),
               std::invalid_argument);
  EXPECT_THROW(BatchNorm2d(0), std::invalid_argument);
}

// --- LeakyReLU ----------------------------------------------------------------

TEST(LeakyReLUTest, ForwardValues) {
  LeakyReLU act(0.1F);
  Tensor x(Shape{4}, std::vector<float>{-2.0F, -0.5F, 0.0F, 3.0F});
  Tensor y = act.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], -0.2F);
  EXPECT_FLOAT_EQ(y[1], -0.05F);
  EXPECT_FLOAT_EQ(y[2], 0.0F);
  EXPECT_FLOAT_EQ(y[3], 3.0F);
}

TEST(LeakyReLUTest, Gradient) {
  LeakyReLU act(0.01F);
  // Keep inputs away from the kink at 0.
  Tensor x(Shape{4}, std::vector<float>{-2.0F, -0.5F, 0.7F, 3.0F});
  testing::check_input_gradient(act, x, 66);
}

TEST(LeakyReLUTest, GradientSlopes) {
  LeakyReLU act(0.25F);
  Tensor x(Shape{2}, std::vector<float>{-1.0F, 1.0F});
  (void)act.forward(x, true);
  Tensor g(Shape{2}, 1.0F);
  Tensor gi = act.backward(g);
  EXPECT_FLOAT_EQ(gi[0], 0.25F);
  EXPECT_FLOAT_EQ(gi[1], 1.0F);
}

// --- ActivationQuant ---------------------------------------------------------

TEST(ActivationQuantTest, OutputIsQuantized) {
  ActivationQuant aq(8);
  support::Rng rng(6);
  Tensor x = Tensor::randn(Shape{1, 3, 8, 8}, rng);
  Tensor y = aq.forward(x, false);
  const float scale = aq.last_scale();
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    const float ratio = y[i] / scale;
    EXPECT_FLOAT_EQ(ratio, std::nearbyint(ratio));
  }
}

TEST(ActivationQuantTest, StraightThroughGradientInRange) {
  ActivationQuant aq(8);
  support::Rng rng(7);
  Tensor x = Tensor::randn(Shape{10}, rng);
  (void)aq.forward(x, true);
  Tensor g = Tensor::randn(Shape{10}, rng);
  Tensor gi = aq.backward(g);
  // Dynamic scaling covers abs-max, so nothing saturates: STE passes all.
  EXPECT_LT(tensor::max_abs_diff(gi, g), 1e-9F);
}

TEST(ActivationQuantTest, LowBitsCoarser) {
  support::Rng rng(8);
  Tensor x = Tensor::randn(Shape{1000}, rng);
  ActivationQuant a2(2), a8(8);
  const float err2 = tensor::max_abs_diff(a2.forward(x, false), x);
  const float err8 = tensor::max_abs_diff(a8.forward(x, false), x);
  EXPECT_GT(err2, err8);
}

TEST(ActivationQuantTest, InvalidBitsThrow) {
  EXPECT_THROW(ActivationQuant(1), std::invalid_argument);
  EXPECT_THROW(ActivationQuant(17), std::invalid_argument);
}

// --- MaxPool2d ----------------------------------------------------------------

TEST(MaxPoolTest, ForwardSelectsMaxima) {
  MaxPool2d pool(2);
  Tensor x(Shape{1, 1, 2, 4},
           std::vector<float>{1, 5, 2, 0, 3, -1, 7, 4});
  Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], 5.0F);
  EXPECT_FLOAT_EQ(y[1], 7.0F);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  Tensor x(Shape{1, 1, 2, 2}, std::vector<float>{1, 9, 3, 2});
  (void)pool.forward(x, true);
  Tensor g(Shape{1, 1, 1, 1}, 10.0F);
  Tensor gi = pool.backward(g);
  EXPECT_FLOAT_EQ(gi[0], 0.0F);
  EXPECT_FLOAT_EQ(gi[1], 10.0F);
  EXPECT_FLOAT_EQ(gi[2], 0.0F);
  EXPECT_FLOAT_EQ(gi[3], 0.0F);
}

TEST(MaxPoolTest, GradientFiniteDifference) {
  MaxPool2d pool(2);
  support::Rng rng(9);
  // Distinct values so the argmax is stable under the probe epsilon.
  Tensor x(Shape{1, 2, 4, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(i % 7) + 0.1F * static_cast<float>(i);
  }
  testing::check_input_gradient(pool, x, 67);
}

TEST(MaxPoolTest, WindowLargerThanInputThrows) {
  MaxPool2d pool(4);
  Tensor x(Shape{1, 1, 2, 2});
  EXPECT_THROW((void)pool.forward(x, false), std::invalid_argument);
}

// --- GlobalAvgPool -------------------------------------------------------------

TEST(GlobalAvgPoolTest, AveragesPerChannel) {
  GlobalAvgPool gap;
  Tensor x(Shape{1, 2, 2, 2}, std::vector<float>{1, 2, 3, 4, 10, 10, 10, 10});
  Tensor y = gap.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.5F);
  EXPECT_FLOAT_EQ(y[1], 10.0F);
}

TEST(GlobalAvgPoolTest, Gradient) {
  GlobalAvgPool gap;
  support::Rng rng(10);
  Tensor x = Tensor::randn(Shape{2, 3, 3, 3}, rng);
  testing::check_input_gradient(gap, x, 68);
}

// --- Flatten --------------------------------------------------------------------

TEST(FlattenTest, ShapeRoundTrip) {
  Flatten flat;
  support::Rng rng(11);
  Tensor x = Tensor::randn(Shape{2, 3, 4, 5}, rng);
  Tensor y = flat.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 60}));
  Tensor g = Tensor::randn(y.shape(), rng);
  Tensor gi = flat.backward(g);
  EXPECT_EQ(gi.shape(), x.shape());
  EXPECT_LT(tensor::max_abs_diff(gi, g.reshaped(x.shape())), 1e-9F);
}

}  // namespace
}  // namespace flightnn::nn
