// Parameterized property tests (TEST_P sweeps) over the quantization,
// decomposition, inference and hardware-model invariants.

#include <gtest/gtest.h>

#include <cmath>

#include "core/decompose.hpp"
#include "core/flightnn_transform.hpp"
#include "hw/asic_model.hpp"
#include "hw/fpga_model.hpp"
#include "inference/shift_engine.hpp"
#include "quant/fixedpoint.hpp"
#include "quant/lightnn.hpp"
#include "support/rng.hpp"

namespace flightnn {
namespace {

using tensor::Shape;
using tensor::Tensor;

// --- Pow2 rounding properties over exponent-range configs --------------------

struct Pow2Param {
  int e_min;
  int e_max;
  bool flush;
};

class Pow2Property : public ::testing::TestWithParam<Pow2Param> {};

TEST_P(Pow2Property, RoundingIsIdempotentAndRangeRespecting) {
  const auto p = GetParam();
  quant::Pow2Config config{p.e_min, p.e_max, p.flush};
  support::Rng rng(100 + p.e_min);
  for (int trial = 0; trial < 2000; ++trial) {
    const float x = static_cast<float>(rng.normal(0.0, 0.5));
    const quant::Pow2Term term = quant::round_to_pow2(x, config);
    const float v = term.value();
    // Idempotence: a representable value rounds to itself.
    EXPECT_FLOAT_EQ(quant::round_to_pow2(v, config).value(), v);
    if (term.sign != 0) {
      EXPECT_GE(term.exponent, p.e_min);
      EXPECT_LE(term.exponent, p.e_max);
      // Sign preservation.
      EXPECT_EQ(v > 0, x > 0);
    }
  }
}

TEST_P(Pow2Property, ResidualPeelingConverges) {
  // Each peeling step leaves |residual| <= |previous residual| (the nearest
  // power of two never overshoots by more than the value itself).
  const auto p = GetParam();
  quant::Pow2Config config{p.e_min, p.e_max, p.flush};
  const float min_magnitude = std::ldexp(1.0F, p.e_min);
  support::Rng rng(200 + p.e_max);
  for (int trial = 0; trial < 500; ++trial) {
    float residual = static_cast<float>(rng.normal(0.0, 0.4));
    float prev = std::fabs(residual);
    for (int step = 0; step < 4; ++step) {
      // Below the representable floor the clamped term overshoots (that is
      // exactly what flush_to_zero exists for), so the contraction property
      // only applies above it.
      if (!p.flush && std::fabs(residual) < 2.0F * min_magnitude) break;
      residual -= quant::round_to_pow2(residual, config).value();
      EXPECT_LE(std::fabs(residual), prev + 1e-7F);
      prev = std::fabs(residual);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ExponentRanges, Pow2Property,
    ::testing::Values(Pow2Param{-7, 0, true}, Pow2Param{-7, 0, false},
                      Pow2Param{-3, 2, true}, Pow2Param{-8, -1, true},
                      Pow2Param{-15, 7, false}));

// --- LightNN-k error decay over k --------------------------------------------

class LightNNProperty : public ::testing::TestWithParam<int> {};

TEST_P(LightNNProperty, QuantizationErrorBoundedAndRepresentable) {
  const int k = GetParam();
  const quant::Pow2Config config;
  support::Rng rng(300 + k);
  Tensor w = Tensor::randn(Shape{256}, rng, 0.0F, 0.25F);
  Tensor q = quant::quantize_lightnn(w, k, config);
  EXPECT_TRUE(quant::is_sum_of_pow2(q, k, config));
  // Log-domain rounding halves the worst-case relative error per level;
  // crude bound: error <= |w| * (2^(1/2) - 1)^k + flush threshold.
  const float flush = std::ldexp(1.0F, config.e_min - 1);
  const float factor = std::pow(std::sqrt(2.0F) - 1.0F, static_cast<float>(k));
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    const float bound =
        std::fabs(w[i]) * factor + flush * static_cast<float>(k) + 1e-6F;
    EXPECT_LE(std::fabs(w[i] - q[i]), bound) << "w=" << w[i] << " k=" << k;
  }
}

TEST_P(LightNNProperty, DecompositionRoundTrips) {
  const int k = GetParam();
  const quant::Pow2Config config;
  support::Rng rng(400 + k);
  Tensor w = Tensor::randn(Shape{8, 3, 3, 3}, rng, 0.0F, 0.25F);
  Tensor q = quant::quantize_lightnn(w, k, config);
  const auto d = core::decompose_to_lightnn1(q, k, config);
  EXPECT_LT(tensor::max_abs_diff(q, d.reconstruct(q.shape())), 1e-9F);
  for (int filter_k : d.filter_k) EXPECT_LE(filter_k, k);
}

INSTANTIATE_TEST_SUITE_P(Ks, LightNNProperty, ::testing::Values(1, 2, 3, 4));

// --- Shift engine bit-exactness over geometry and bit width -------------------

struct EngineParam {
  int k;
  std::int64_t stride;
  std::int64_t padding;
  int act_bits;
};

class ShiftEngineProperty : public ::testing::TestWithParam<EngineParam> {};

TEST_P(ShiftEngineProperty, MatchesRealArithmetic) {
  const auto p = GetParam();
  const quant::Pow2Config config;
  support::Rng rng(500 + p.k * 10 + p.act_bits);
  Tensor w = Tensor::randn(Shape{3, 2, 3, 3}, rng, 0.0F, 0.3F);
  Tensor wq = quant::quantize_lightnn(w, p.k, config);
  Tensor img = Tensor::randn(Shape{2, 7, 7}, rng);
  const auto qimg = inference::quantize_image(img, p.act_bits);

  inference::ShiftConv2d engine(wq, p.k, config, p.stride, p.padding);
  Tensor out = engine.run(qimg);
  Tensor ref = inference::reference_conv(wq, inference::dequantize(qimg),
                                         p.stride, p.padding);
  EXPECT_LT(tensor::max_abs_diff(out, ref), 1e-4F);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ShiftEngineProperty,
    ::testing::Values(EngineParam{1, 1, 0, 8}, EngineParam{1, 1, 1, 8},
                      EngineParam{1, 2, 1, 8}, EngineParam{2, 1, 1, 8},
                      EngineParam{2, 2, 0, 8}, EngineParam{2, 1, 1, 4},
                      EngineParam{2, 1, 1, 12}, EngineParam{3, 1, 1, 8}));

// --- FLightNN threshold monotonicity ------------------------------------------

class FLightNNThresholdProperty : public ::testing::TestWithParam<float> {};

TEST_P(FLightNNThresholdProperty, HigherThresholdsNeverIncreaseK) {
  const float t1 = GetParam();
  support::Rng rng(600);
  Tensor w = Tensor::randn(Shape{16, 27}, rng, 0.0F, 0.3F);

  core::FLightNNTransform low, high;
  low.set_thresholds({0.0F, t1});
  high.set_thresholds({0.0F, t1 + 0.2F});
  const auto k_low = low.filter_k(w);
  const auto k_high = high.filter_k(w);
  for (std::size_t i = 0; i < k_low.size(); ++i) {
    EXPECT_LE(k_high[i], k_low[i]) << "filter " << i;
  }
  EXPECT_LE(high.mean_k(w), low.mean_k(w));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, FLightNNThresholdProperty,
                         ::testing::Values(0.0F, 0.05F, 0.1F, 0.2F, 0.5F));

// --- Hardware model monotonicity over mean k ----------------------------------

class HwMeanKProperty : public ::testing::TestWithParam<double> {};

TEST_P(HwMeanKProperty, CostsAreMonotoneInMeanK) {
  const double mean_k = GetParam();
  const double higher = mean_k + 0.25;
  hw::LayerCost layer;
  layer.out_channels = layer.in_channels = 64;
  layer.kernel = 3;
  layer.in_h = layer.in_w = layer.out_h = layer.out_w = 8;

  const hw::AsicModel asic;
  EXPECT_LT(asic.mac_energy_pj(hw::QuantSpec::flightnn(mean_k)),
            asic.mac_energy_pj(hw::QuantSpec::flightnn(higher)));

  const hw::FpgaModel fpga;
  EXPECT_GT(fpga.evaluate(layer, hw::QuantSpec::flightnn(mean_k)).throughput,
            fpga.evaluate(layer, hw::QuantSpec::flightnn(higher)).throughput);
}

INSTANTIATE_TEST_SUITE_P(MeanKs, HwMeanKProperty,
                         ::testing::Values(0.5, 1.0, 1.25, 1.5, 1.75));

// --- Fixed-point quantization over bit widths ----------------------------------

class FixedPointProperty : public ::testing::TestWithParam<int> {};

TEST_P(FixedPointProperty, ErrorShrinksWithBits) {
  const int bits = GetParam();
  support::Rng rng(700 + bits);
  Tensor x = Tensor::randn(Shape{512}, rng);
  const quant::FixedPointConfig coarse{bits}, fine{bits + 2};
  const float err_coarse =
      tensor::max_abs_diff(x, quant::quantize_fixed_point(x, coarse));
  const float err_fine =
      tensor::max_abs_diff(x, quant::quantize_fixed_point(x, fine));
  EXPECT_LE(err_fine, err_coarse);
  // Error bound: half an LSB of the chosen scale.
  const float scale = quant::choose_pow2_scale(x, coarse);
  EXPECT_LE(err_coarse, scale * 0.5F + 1e-6F);
}

INSTANTIATE_TEST_SUITE_P(Bits, FixedPointProperty,
                         ::testing::Values(2, 3, 4, 6, 8, 10, 12));

}  // namespace
}  // namespace flightnn
