#include "optim/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"

namespace flightnn::optim {
namespace {

using tensor::Shape;
using tensor::Tensor;

// Minimize f(w) = 0.5 * ||w - target||^2 (gradient w - target).
void quadratic_grad(nn::Parameter& p, const Tensor& target) {
  p.zero_grad();
  for (std::int64_t i = 0; i < p.value.numel(); ++i) {
    p.grad[i] = p.value[i] - target[i];
  }
}

TEST(SgdTest, ConvergesOnQuadratic) {
  nn::Parameter p(Tensor(Shape{3}, std::vector<float>{5, -2, 1}), "w");
  Tensor target(Shape{3}, std::vector<float>{1, 2, 3});
  Sgd sgd({&p}, 0.1F);
  for (int i = 0; i < 200; ++i) {
    quadratic_grad(p, target);
    sgd.step();
  }
  EXPECT_LT(tensor::max_abs_diff(p.value, target), 1e-4F);
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  Tensor target(Shape{1}, std::vector<float>{0.0F});
  nn::Parameter plain(Tensor(Shape{1}, 10.0F), "w1");
  nn::Parameter with_mom(Tensor(Shape{1}, 10.0F), "w2");
  Sgd sgd_plain({&plain}, 0.01F);
  Sgd sgd_mom({&with_mom}, 0.01F, 0.9F);
  for (int i = 0; i < 50; ++i) {
    quadratic_grad(plain, target);
    sgd_plain.step();
    quadratic_grad(with_mom, target);
    sgd_mom.step();
  }
  EXPECT_LT(std::fabs(with_mom.value[0]), std::fabs(plain.value[0]));
}

TEST(SgdTest, WeightDecayShrinksUndrivenParams) {
  nn::Parameter p(Tensor(Shape{1}, 1.0F), "w");
  Sgd sgd({&p}, 0.1F, 0.0F, 0.5F);
  p.zero_grad();  // zero task gradient: only decay acts
  sgd.step();
  EXPECT_LT(p.value[0], 1.0F);
}

TEST(SgdTest, DecayExemptionRespected) {
  nn::Parameter p(Tensor(Shape{1}, 1.0F), "bn.gamma", /*apply_decay=*/false);
  Sgd sgd({&p}, 0.1F, 0.0F, 0.5F);
  p.zero_grad();
  sgd.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0F);
}

TEST(SgdTest, NonTrainableParamsUntouched) {
  nn::Parameter p(Tensor(Shape{1}, 1.0F), "frozen");
  p.trainable = false;
  p.grad.fill(10.0F);
  Sgd sgd({&p}, 0.1F);
  sgd.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0F);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  nn::Parameter p(Tensor(Shape{3}, std::vector<float>{5, -2, 1}), "w");
  Tensor target(Shape{3}, std::vector<float>{1, 2, 3});
  Adam adam({&p}, 0.1F);
  for (int i = 0; i < 500; ++i) {
    quadratic_grad(p, target);
    adam.step();
  }
  EXPECT_LT(tensor::max_abs_diff(p.value, target), 1e-2F);
}

TEST(AdamTest, FirstStepIsBoundedByLearningRate) {
  // Adam's bias correction makes the first step ~lr regardless of grad scale.
  nn::Parameter small(Tensor(Shape{1}, 0.0F), "a");
  nn::Parameter large(Tensor(Shape{1}, 0.0F), "b");
  Adam adam({&small, &large}, 0.01F);
  small.grad[0] = 1e-4F;
  large.grad[0] = 1e4F;
  adam.step();
  EXPECT_NEAR(std::fabs(small.value[0]), 0.01F, 2e-3F);
  EXPECT_NEAR(std::fabs(large.value[0]), 0.01F, 2e-3F);
}

TEST(AdamTest, ZeroGradKeepsValueOnFreshState) {
  nn::Parameter p(Tensor(Shape{1}, 3.0F), "w");
  Adam adam({&p});
  p.zero_grad();
  adam.step();
  EXPECT_FLOAT_EQ(p.value[0], 3.0F);
}

TEST(OptimizerTest, ZeroGradClearsAll) {
  nn::Parameter p(Tensor(Shape{2}), "w");
  p.grad.fill(5.0F);
  Sgd sgd({&p}, 0.1F);
  sgd.zero_grad();
  EXPECT_FLOAT_EQ(p.grad[0], 0.0F);
  EXPECT_FLOAT_EQ(p.grad[1], 0.0F);
}

TEST(ScalarAdamTest, ConvergesOnScalarQuadratic) {
  ScalarAdam adam(2);
  std::vector<float> values{4.0F, -3.0F};
  for (int i = 0; i < 600; ++i) {
    std::vector<float> grads{values[0] - 1.0F, values[1] - 2.0F};
    adam.step(values, grads, 0.05F);
  }
  EXPECT_NEAR(values[0], 1.0F, 0.05F);
  EXPECT_NEAR(values[1], 2.0F, 0.05F);
}

TEST(ScalarAdamTest, SizeMismatchThrows) {
  ScalarAdam adam(2);
  std::vector<float> values{1.0F};
  std::vector<float> grads{1.0F};
  EXPECT_THROW(adam.step(values, grads, 0.1F), std::invalid_argument);
}

}  // namespace
}  // namespace flightnn::optim
