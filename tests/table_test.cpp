#include "support/table.hpp"

#include <gtest/gtest.h>

namespace flightnn::support {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table table({"Model", "Acc"});
  table.add_row({"Full", "86.36"});
  table.add_row({"L-2", "86.17"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("Model"), std::string::npos);
  EXPECT_NE(out.find("86.36"), std::string::npos);
  EXPECT_NE(out.find("L-2"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TableTest, ShortRowsArePadded) {
  Table table({"A", "B", "C"});
  table.add_row({"x"});
  EXPECT_NE(table.to_string().find("x"), std::string::npos);
}

TEST(TableTest, CsvHasHeaderAndCommas) {
  Table table({"a", "b"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.to_csv(), "a,b\n1,2\n");
}

TEST(TableTest, SeparatorInsertsRule) {
  Table table({"x"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  const std::string out = table.to_string();
  // Rules: top, below header, separator, bottom = 4 lines starting with '+'.
  int rules = 0;
  for (std::size_t pos = 0; pos < out.size(); ++pos) {
    if (out[pos] == '+' && (pos == 0 || out[pos - 1] == '\n')) ++rules;
  }
  EXPECT_EQ(rules, 4);
}

TEST(FormatTest, FixedDigits) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 1), "-1.0");
}

TEST(FormatTest, SciMatchesPaperStyle) {
  EXPECT_EQ(format_sci(2200.0), "2.2e3");
  EXPECT_EQ(format_sci(320.0), "3.2e2");
  // Values below 100 print plainly (the paper mixes "7.4e1" and "39.2";
  // we standardize on plain below 1e2).
  EXPECT_EQ(format_sci(74.0), "74.0");
  EXPECT_EQ(format_sci(10.2), "10.2");
  EXPECT_EQ(format_sci(1.3), "1.3");
  EXPECT_EQ(format_sci(0.0), "0");
}

TEST(FormatTest, Speedup) {
  EXPECT_EQ(format_speedup(7.0), "7.00x");
  EXPECT_EQ(format_speedup(15.2), "15.2x");
}

TEST(FormatTest, Megabytes) {
  EXPECT_EQ(format_mb(0.08 * 1024 * 1024), "0.08");
  EXPECT_EQ(format_mb(18.5 * 1024 * 1024), "18.5");
}

}  // namespace
}  // namespace flightnn::support
