// Tests for storage accounting and Pareto utilities.

#include <gtest/gtest.h>

#include "core/quantize_model.hpp"
#include "eval/pareto.hpp"
#include "eval/storage.hpp"
#include "models/networks.hpp"

namespace flightnn::eval {
namespace {

std::unique_ptr<nn::Sequential> small_net() {
  models::BuildOptions opt;
  opt.width_scale = 0.5F;
  opt.act_bits = 8;
  return models::build_network(models::table1_network(4), opt);
}

TEST(StorageTest, FullPrecisionIsFourBytesPerParam) {
  auto model = small_net();
  const double bytes = model_storage_bytes(*model);
  const double expected =
      static_cast<double>(models::parameter_count(*model)) * 4.0;
  EXPECT_NEAR(bytes, expected, 1.0);
}

TEST(StorageTest, QuantizationRatiosMatchPaper) {
  // Table 2 pattern for every network: Full : L-2 : L-1 : FP4 storage is
  // roughly 32 : 8 : 4 : 4 on the conv/fc weights.
  auto model = small_net();
  const double full = model_storage_bytes(*model);
  core::install_lightnn(*model, 2);
  const double l2 = model_storage_bytes(*model);
  core::install_lightnn(*model, 1);
  const double l1 = model_storage_bytes(*model);
  core::install_fixed_point(*model, 4);
  const double fp4 = model_storage_bytes(*model);

  EXPECT_NEAR(full / l2, 4.0, 0.5);
  EXPECT_NEAR(full / l1, 8.0, 1.0);
  EXPECT_NEAR(l1, fp4, l1 * 0.01);
  EXPECT_NEAR(l2 / l1, 2.0, 0.2);
}

TEST(StorageTest, FLightNNStorageBetweenL1AndL2) {
  auto model = small_net();
  core::install_lightnn(*model, 1);
  const double l1 = model_storage_bytes(*model);
  core::install_lightnn(*model, 2);
  const double l2 = model_storage_bytes(*model);

  // Fresh thresholds (0): FLightNN starts at k = 2 everywhere, so storage
  // is about L-2 plus the per-filter tags.
  core::install_flightnn(*model, core::FLightNNConfig{});
  const double fl = model_storage_bytes(*model);
  EXPECT_GT(fl, l1);
  EXPECT_LE(fl, l2 * 1.05);
}

TEST(StorageTest, PrunedFiltersShrinkStorage) {
  auto model = small_net();
  const auto transforms = core::install_flightnn(*model, core::FLightNNConfig{});
  const double before = model_storage_bytes(*model);
  // Force every filter to k = 0.
  for (auto* transform : transforms) transform->set_thresholds({1e9F, 1e9F});
  const double after = model_storage_bytes(*model);
  EXPECT_LT(after, before * 0.5);
}

TEST(MeanKTest, TracksInstalledQuantizer) {
  auto model = small_net();
  EXPECT_DOUBLE_EQ(model_mean_k(*model), 1.0);  // no transform
  core::install_lightnn(*model, 2);
  EXPECT_DOUBLE_EQ(model_mean_k(*model), 2.0);
  core::install_lightnn(*model, 1);
  EXPECT_DOUBLE_EQ(model_mean_k(*model), 1.0);
  core::install_flightnn(*model, core::FLightNNConfig{});
  const double mk = model_mean_k(*model);
  EXPECT_GT(mk, 1.0);
  EXPECT_LE(mk, 2.0);
}

// --- Pareto -------------------------------------------------------------------

TEST(ParetoTest, Domination) {
  ParetoPoint cheap_good{1.0, 0.9, "a"};
  ParetoPoint pricey_bad{2.0, 0.8, "b"};
  ParetoPoint pricey_best{2.0, 0.95, "c"};
  EXPECT_TRUE(dominates(cheap_good, pricey_bad));
  EXPECT_FALSE(dominates(pricey_bad, cheap_good));
  EXPECT_FALSE(dominates(cheap_good, pricey_best));
  EXPECT_FALSE(dominates(pricey_best, cheap_good));
  EXPECT_FALSE(dominates(cheap_good, cheap_good));  // never self-dominates
}

TEST(ParetoTest, FrontExtraction) {
  std::vector<ParetoPoint> points{
      {1.0, 0.80, "l1"}, {2.0, 0.90, "l2"}, {1.5, 0.88, "fl"},
      {1.6, 0.82, "dominated"},  // beaten by fl
      {3.0, 0.85, "dominated2"},
  };
  const auto front = pareto_front(points);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0].label, "l1");
  EXPECT_EQ(front[1].label, "fl");
  EXPECT_EQ(front[2].label, "l2");
}

TEST(ParetoTest, DuplicatesKeptOnce) {
  std::vector<ParetoPoint> points{{1.0, 0.5, "a"}, {1.0, 0.5, "b"}};
  EXPECT_EQ(pareto_front(points).size(), 1u);
}

TEST(ParetoTest, EmptyInput) {
  EXPECT_TRUE(pareto_front({}).empty());
  EXPECT_EQ(hypervolume({}, 1.0, 0.0), 0.0);
}

TEST(ParetoTest, HypervolumeOfSinglePoint) {
  // One point at (1, 0.8) against ref (3, 0.5): rectangle 2 x 0.3.
  std::vector<ParetoPoint> front{{1.0, 0.8, "p"}};
  EXPECT_NEAR(hypervolume(front, 3.0, 0.5), 0.6, 1e-12);
}

TEST(ParetoTest, HypervolumeOfStaircase) {
  std::vector<ParetoPoint> front{{1.0, 0.6, "a"}, {2.0, 0.9, "b"}};
  // From ref (3, 0): [2,3] x 0.9 + [1,2] x 0.6 = 0.9 + 0.6.
  EXPECT_NEAR(hypervolume(front, 3.0, 0.0), 1.5, 1e-12);
}

TEST(ParetoTest, MorePointsNeverReduceHypervolume) {
  std::vector<ParetoPoint> base{{1.0, 0.6, "a"}, {2.0, 0.9, "b"}};
  std::vector<ParetoPoint> extended = base;
  extended.push_back({1.5, 0.8, "c"});
  EXPECT_GE(hypervolume(extended, 3.0, 0.0), hypervolume(base, 3.0, 0.0));
}

}  // namespace
}  // namespace flightnn::eval
