// Tests for the FPGA and ASIC hardware models: the resource/throughput
// orderings they must reproduce from the paper's Tables 2-6 and Fig. 5.

#include <gtest/gtest.h>

#include "hw/asic_model.hpp"
#include "hw/cost_model.hpp"
#include "hw/fpga_model.hpp"
#include "models/networks.hpp"

namespace flightnn::hw {
namespace {

LayerCost example_layer() {
  // Network 1's largest conv layer: 64 -> 64 at 8x8 after three poolings.
  LayerCost layer;
  layer.out_channels = 64;
  layer.in_channels = 64;
  layer.kernel = 3;
  layer.in_h = layer.in_w = 8;
  layer.out_h = layer.out_w = 8;
  return layer;
}

TEST(LayerCostTest, MacsAndCounts) {
  const LayerCost layer = example_layer();
  EXPECT_EQ(layer.macs(), 64LL * 64 * 8 * 8 * 9);
  EXPECT_EQ(layer.weight_count(), 64LL * 64 * 9);
  EXPECT_EQ(layer.activation_count(), 64LL * 64 + 64LL * 64);
}

TEST(TraceTest, FindsLargestLayer) {
  const auto config = models::table1_network(1);
  models::BuildOptions opt;
  opt.act_bits = 0;
  auto model = models::build_network(config, opt);
  const auto costs = trace_conv_costs(*model, tensor::Shape{1, 3, 32, 32});
  EXPECT_EQ(costs.size(), 7u);
  const LayerCost largest = largest_layer(*model, tensor::Shape{1, 3, 32, 32});
  for (const auto& cost : costs) EXPECT_LE(cost.macs(), largest.macs());
  EXPECT_GT(largest.macs(), 0);
}

TEST(QuantSpecTest, Labels) {
  EXPECT_EQ(QuantSpec::full().label(), "Full");
  EXPECT_EQ(QuantSpec::fixed_point(4, 8).label(), "FP4W8A");
  EXPECT_EQ(QuantSpec::lightnn(2).label(), "L-2");
  EXPECT_EQ(QuantSpec::flightnn(1.37).label(), "FL(k=1.37)");
}

// --- ASIC model ---------------------------------------------------------------

TEST(AsicModelTest, PerMacOrderingMatchesFig5) {
  const AsicModel asic;
  const double full = asic.mac_energy_pj(QuantSpec::full());
  const double fp4 = asic.mac_energy_pj(QuantSpec::fixed_point(4, 8));
  const double l1 = asic.mac_energy_pj(QuantSpec::lightnn(1));
  const double l2 = asic.mac_energy_pj(QuantSpec::lightnn(2));
  // L-1 < FP4 < L-2 << Full (Fig. 5's x-axis ordering).
  EXPECT_LT(l1, fp4);
  EXPECT_LT(fp4, l2);
  EXPECT_LT(l2, full / 10.0);
}

TEST(AsicModelTest, FLightNNInterpolatesBetweenL1AndL2) {
  const AsicModel asic;
  const double l1 = asic.mac_energy_pj(QuantSpec::lightnn(1));
  const double l2 = asic.mac_energy_pj(QuantSpec::lightnn(2));
  for (double k : {1.1, 1.5, 1.9}) {
    const double fl = asic.mac_energy_pj(QuantSpec::flightnn(k));
    EXPECT_GT(fl, l1);
    EXPECT_LT(fl, l2);
  }
  // Exactly linear in mean k.
  EXPECT_NEAR(asic.mac_energy_pj(QuantSpec::flightnn(1.5)), (l1 + l2) / 2, 1e-12);
}

TEST(AsicModelTest, LayerEnergyInPaperMicrojouleRange) {
  // Fig. 5 network 1: quantized models span roughly 0.05-0.25 uJ.
  const AsicModel asic;
  const LayerCost layer = example_layer();
  const double l1 = asic.layer_energy_uj(layer, QuantSpec::lightnn(1));
  const double l2 = asic.layer_energy_uj(layer, QuantSpec::lightnn(2));
  EXPECT_GT(l1, 0.02);
  EXPECT_LT(l2, 0.5);
  EXPECT_NEAR(l2 / l1, 2.0, 1e-9);
}

// --- FPGA model ---------------------------------------------------------------

TEST(FpgaModelTest, ThroughputOrderingMatchesTables) {
  const FpgaModel fpga;
  const LayerCost layer = example_layer();
  const double full = fpga.evaluate(layer, QuantSpec::full()).throughput;
  const double fp4 = fpga.evaluate(layer, QuantSpec::fixed_point(4, 8)).throughput;
  const double l1 = fpga.evaluate(layer, QuantSpec::lightnn(1)).throughput;
  const double l2 = fpga.evaluate(layer, QuantSpec::lightnn(2)).throughput;
  // Tables 2-4: Full < L-2 < FP4 < L-1, with L-1 about 2x L-2.
  EXPECT_LT(full, l2);
  EXPECT_LT(l2, fp4);
  EXPECT_LT(fp4, l1);
  EXPECT_NEAR(l1 / l2, 2.0, 0.2);
}

TEST(FpgaModelTest, HeadlineSpeedupsInPaperBallpark) {
  const FpgaModel fpga;
  const LayerCost layer = example_layer();
  const double full = fpga.evaluate(layer, QuantSpec::full()).throughput;
  const double fp4 = fpga.evaluate(layer, QuantSpec::fixed_point(4, 8)).throughput;
  const double l1 = fpga.evaluate(layer, QuantSpec::lightnn(1)).throughput;
  // Paper: L-1 up to ~2x over FP4 and ~14x over Full for network 1.
  EXPECT_GT(l1 / fp4, 1.3);
  EXPECT_LT(l1 / fp4, 3.0);
  EXPECT_GT(l1 / full, 5.0);
  EXPECT_LT(l1 / full, 40.0);
}

TEST(FpgaModelTest, FLightNNThroughputBetweenL1AndL2) {
  const FpgaModel fpga;
  const LayerCost layer = example_layer();
  const double l1 = fpga.evaluate(layer, QuantSpec::lightnn(1)).throughput;
  const double l2 = fpga.evaluate(layer, QuantSpec::lightnn(2)).throughput;
  const double fl = fpga.evaluate(layer, QuantSpec::flightnn(1.4)).throughput;
  EXPECT_GT(fl, l2);
  EXPECT_LT(fl, l1);
}

TEST(FpgaModelTest, DspCollapsesForShiftModels) {
  // Table 6: (F)LightNN designs use a small constant DSP count while Full /
  // FP designs consume hundreds of DSPs.
  const FpgaModel fpga;
  const LayerCost layer = example_layer();
  const auto l2 = fpga.evaluate(layer, QuantSpec::lightnn(2));
  const auto fp = fpga.evaluate(layer, QuantSpec::fixed_point(4, 8));
  const auto full = fpga.evaluate(layer, QuantSpec::full());
  EXPECT_LE(l2.dsp_used, 8);
  EXPECT_GT(fp.dsp_used, 100);
  EXPECT_GT(full.dsp_used, 100);
  // Shift designs burn more LUT than the fixed-point design.
  EXPECT_GT(l2.lut_used, fp.lut_used);
}

TEST(FpgaModelTest, ComputeBoundLabels) {
  const FpgaModel fpga;
  const LayerCost layer = example_layer();
  EXPECT_EQ(fpga.evaluate(layer, QuantSpec::full()).compute_bound, "DSP");
  EXPECT_EQ(fpga.evaluate(layer, QuantSpec::fixed_point(4, 8)).compute_bound,
            "DSP");
  // Shift units use no DSP: fabric (LUT/FF) binds.
  const auto shift_bound =
      fpga.evaluate(layer, QuantSpec::lightnn(1)).compute_bound;
  EXPECT_TRUE(shift_bound == "LUT" || shift_bound == "FF");
}

TEST(FpgaModelTest, ResourceUsageWithinDevice) {
  const FpgaModel fpga;
  const LayerCost layer = example_layer();
  for (const auto& spec :
       {QuantSpec::full(), QuantSpec::fixed_point(4, 8), QuantSpec::lightnn(1),
        QuantSpec::lightnn(2), QuantSpec::flightnn(1.5)}) {
    const auto report = fpga.evaluate(layer, spec);
    EXPECT_LE(report.bram_used, fpga.resources().bram18) << spec.label();
    EXPECT_LE(report.dsp_used, fpga.resources().dsp) << spec.label();
    EXPECT_LE(report.lut_used, fpga.resources().lut) << spec.label();
    EXPECT_LE(report.ff_used, fpga.resources().ff) << spec.label();
    EXPECT_GE(report.batch, 1) << spec.label();
  }
}

TEST(FpgaModelTest, SmallerWeightsAllowLargerBatches) {
  // The paper's explanation for the (F)LightNN throughput edge: less BRAM
  // spent on weights leaves room for more batched activations.
  const FpgaModel fpga;
  LayerCost layer = example_layer();
  // Blow up the weight footprint so it matters relative to activations.
  layer.in_channels = 512;
  layer.out_channels = 512;
  const auto full = fpga.evaluate(layer, QuantSpec::full());
  const auto l1 = fpga.evaluate(layer, QuantSpec::lightnn(1));
  EXPECT_GT(l1.batch, full.batch);
}

TEST(AsicModelTest, AreaOrderingMatchesPaperClaim) {
  // Sec. 2: shift operations are more area-efficient than multipliers.
  const AsicModel asic;
  const double l1 = asic.mac_area_um2(QuantSpec::lightnn(1));
  const double fp4 = asic.mac_area_um2(QuantSpec::fixed_point(4, 8));
  const double fp8 = asic.mac_area_um2(QuantSpec::fixed_point(8, 8));
  const double full = asic.mac_area_um2(QuantSpec::full());
  EXPECT_LT(l1, fp4);
  EXPECT_LT(fp4, fp8);
  EXPECT_LT(fp8, full);
  // Shift datapaths are sized by ceil(mean k): a fractional-k FLightNN
  // needs the full two-term unit.
  EXPECT_DOUBLE_EQ(asic.mac_area_um2(QuantSpec::flightnn(1.3)),
                   asic.mac_area_um2(QuantSpec::lightnn(2)));
}

TEST(FpgaModelTest, NetworkThroughputBelowLargestLayer) {
  const FpgaModel fpga;
  const auto config = models::table1_network(1);
  models::BuildOptions opt;
  opt.act_bits = 0;
  auto model = models::build_network(config, opt);
  const auto layers = trace_conv_costs(*model, tensor::Shape{1, 3, 32, 32});
  const auto spec = QuantSpec::lightnn(1);
  const double whole = network_throughput(fpga, layers, spec);
  const double largest_only =
      fpga.evaluate(largest_layer(*model, tensor::Shape{1, 3, 32, 32}), spec)
          .throughput;
  EXPECT_LT(whole, largest_only);
  EXPECT_GT(whole, largest_only / static_cast<double>(layers.size() * 2));
  EXPECT_THROW((void)network_throughput(fpga, {}, spec), std::invalid_argument);
}

TEST(FpgaModelTest, NetworkThroughputPreservesOrdering) {
  const FpgaModel fpga;
  const auto config = models::table1_network(4);
  models::BuildOptions opt;
  opt.act_bits = 0;
  auto model = models::build_network(config, opt);
  const auto layers = trace_conv_costs(*model, tensor::Shape{1, 3, 32, 32});
  const double l1 = network_throughput(fpga, layers, QuantSpec::lightnn(1));
  const double l2 = network_throughput(fpga, layers, QuantSpec::lightnn(2));
  const double full = network_throughput(fpga, layers, QuantSpec::full());
  EXPECT_GT(l1, l2);
  EXPECT_GT(l2, full);
}

TEST(FpgaModelTest, LargerLayersAreSlower) {
  const FpgaModel fpga;
  LayerCost small = example_layer();
  LayerCost big = example_layer();
  big.out_channels *= 4;
  const auto spec = QuantSpec::lightnn(1);
  EXPECT_GT(fpga.evaluate(small, spec).throughput,
            fpga.evaluate(big, spec).throughput);
}

}  // namespace
}  // namespace flightnn::hw
