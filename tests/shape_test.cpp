#include "tensor/shape.hpp"

#include <gtest/gtest.h>

namespace flightnn::tensor {
namespace {

TEST(ShapeTest, RankAndDims) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[1], 3);
  EXPECT_EQ(s[2], 4);
}

TEST(ShapeTest, Numel) {
  EXPECT_EQ((Shape{2, 3, 4}).numel(), 24);
  EXPECT_EQ((Shape{5}).numel(), 5);
  EXPECT_EQ(Shape{}.numel(), 1);  // scalar
  EXPECT_EQ((Shape{0, 7}).numel(), 0);
}

TEST(ShapeTest, RowMajorOffset) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.offset({0, 0, 0}), 0);
  EXPECT_EQ(s.offset({0, 0, 3}), 3);
  EXPECT_EQ(s.offset({0, 1, 0}), 4);
  EXPECT_EQ(s.offset({1, 0, 0}), 12);
  EXPECT_EQ(s.offset({1, 2, 3}), 23);
}

TEST(ShapeTest, OffsetRankMismatchThrows) {
  Shape s{2, 3};
  EXPECT_THROW((void)s.offset({1}), std::invalid_argument);
}

TEST(ShapeTest, NegativeDimensionThrows) {
  EXPECT_THROW(Shape({2, -1}), std::invalid_argument);
}

TEST(ShapeTest, DimOutOfRangeThrows) {
  Shape s{2};
  EXPECT_THROW((void)s.dim(1), std::out_of_range);
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ((Shape{1, 2}), (Shape{1, 2}));
  EXPECT_NE((Shape{1, 2}), (Shape{2, 1}));
  EXPECT_NE((Shape{1, 2}), (Shape{1, 2, 1}));
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ((Shape{2, 3}).to_string(), "[2, 3]");
  EXPECT_EQ(Shape{}.to_string(), "[]");
}

}  // namespace
}  // namespace flightnn::tensor
