#include "quant/lightnn.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"

namespace flightnn::quant {
namespace {

TEST(LightNNTest, K1IsPlainPow2Rounding) {
  const Pow2Config config;
  support::Rng rng(19);
  tensor::Tensor w = tensor::Tensor::randn(tensor::Shape{64}, rng, 0.0F, 0.3F);
  tensor::Tensor q1 = quantize_lightnn(w, 1, config);
  tensor::Tensor r = round_to_pow2(w, config);
  EXPECT_LT(tensor::max_abs_diff(q1, r), 1e-9F);
}

TEST(LightNNTest, OutputIsSumOfKPowers) {
  const Pow2Config config;
  support::Rng rng(20);
  tensor::Tensor w = tensor::Tensor::randn(tensor::Shape{256}, rng, 0.0F, 0.3F);
  for (int k = 1; k <= 3; ++k) {
    tensor::Tensor q = quantize_lightnn(w, k, config);
    EXPECT_TRUE(is_sum_of_pow2(q, k, config)) << "k=" << k;
  }
}

TEST(LightNNTest, HigherKNeverIncreasesError) {
  const Pow2Config config;
  support::Rng rng(21);
  tensor::Tensor w = tensor::Tensor::randn(tensor::Shape{512}, rng, 0.0F, 0.3F);
  double prev_error = 1e30;
  for (int k = 1; k <= 4; ++k) {
    tensor::Tensor q = quantize_lightnn(w, k, config);
    tensor::Tensor diff = w - q;
    const double error = diff.l2_norm();
    EXPECT_LE(error, prev_error + 1e-7) << "k=" << k;
    prev_error = error;
  }
}

TEST(LightNNTest, RecursiveDefinitionHolds) {
  // Q_k(w) = Q_{k-1}(w) + Q_1(w - Q_{k-1}(w))  (Sec. 3)
  const Pow2Config config;
  support::Rng rng(22);
  tensor::Tensor w = tensor::Tensor::randn(tensor::Shape{128}, rng, 0.0F, 0.3F);
  for (int k = 2; k <= 3; ++k) {
    tensor::Tensor q_k = quantize_lightnn(w, k, config);
    tensor::Tensor q_km1 = quantize_lightnn(w, k - 1, config);
    tensor::Tensor residual = w - q_km1;
    tensor::Tensor expected = q_km1 + quantize_lightnn(residual, 1, config);
    EXPECT_LT(tensor::max_abs_diff(q_k, expected), 1e-9F) << "k=" << k;
  }
}

TEST(LightNNTest, ExactValuesPassThrough) {
  const Pow2Config config;
  tensor::Tensor w(tensor::Shape{4},
                   std::vector<float>{0.5F, -0.125F, 0.0F, 1.0F});
  tensor::Tensor q = quantize_lightnn(w, 1, config);
  EXPECT_LT(tensor::max_abs_diff(w, q), 1e-9F);
}

TEST(LightNNTest, KnownTwoTermExpansion) {
  const Pow2Config config;
  tensor::Tensor w(tensor::Shape{1}, std::vector<float>{0.625F});
  // 0.625: R -> 0.5, residual 0.125 -> 0.125. Sum = 0.625 exactly.
  tensor::Tensor q2 = quantize_lightnn(w, 2, config);
  EXPECT_FLOAT_EQ(q2[0], 0.625F);
  tensor::Tensor q1 = quantize_lightnn(w, 1, config);
  EXPECT_FLOAT_EQ(q1[0], 0.5F);
}

TEST(LightNNTest, InvalidKThrows) {
  const Pow2Config config;
  tensor::Tensor w(tensor::Shape{1});
  EXPECT_THROW((void)quantize_lightnn(w, 0, config), std::invalid_argument);
  EXPECT_THROW(LightNNTransform(0), std::invalid_argument);
}

TEST(LightNNTransformTest, ForwardMatchesFreeFunction) {
  LightNNTransform transform(2);
  support::Rng rng(23);
  tensor::Tensor w = tensor::Tensor::randn(tensor::Shape{8, 4}, rng, 0.0F, 0.3F);
  tensor::Tensor q = transform.forward(w);
  tensor::Tensor expected = quantize_lightnn(w, 2, transform.config());
  EXPECT_LT(tensor::max_abs_diff(q, expected), 1e-9F);
  EXPECT_EQ(transform.describe(), "lightnn-k2");
}

TEST(LightNNTransformTest, BackwardIsStraightThrough) {
  LightNNTransform transform(2);
  tensor::Tensor w(tensor::Shape{4}, std::vector<float>{0.3F, -0.2F, 0.1F, 0.0F});
  tensor::Tensor grad_wq(tensor::Shape{4}, std::vector<float>{1, 2, 3, 4});
  tensor::Tensor grad_w(tensor::Shape{4}, std::vector<float>{10, 10, 10, 10});
  transform.backward(w, grad_wq, grad_w);
  EXPECT_FLOAT_EQ(grad_w[0], 11.0F);
  EXPECT_FLOAT_EQ(grad_w[3], 14.0F);
}

TEST(LightNNTransformTest, NoRegularizationOrInternalState) {
  LightNNTransform transform(1);
  tensor::Tensor w(tensor::Shape{4}, 0.3F);
  EXPECT_EQ(transform.regularization(w, nullptr), 0.0);
  transform.step_internal(0.1F);  // must be a no-op, not crash
}

}  // namespace
}  // namespace flightnn::quant
