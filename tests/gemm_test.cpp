// Differential tests for the blocked GEMM core: every variant against a
// double-accumulation oracle across awkward shapes (unit dims, exact tile
// multiples, one-past-tile edges, multiple KC blocks), plus the bitwise
// thread-count-invariance contract the training kernels rely on.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/gemm.hpp"
#include "runtime/thread_pool.hpp"
#include "support/rng.hpp"

namespace flightnn {
namespace {

std::vector<float> random_data(std::int64_t n, support::Rng& rng) {
  std::vector<float> out(static_cast<std::size_t>(n));
  for (auto& v : out) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return out;
}

// C = A * B (+ C) with double accumulation; a/b are addressed through
// explicit strides so one oracle covers all three layout variants.
void ref_gemm(const float* a, std::int64_t a_rs, std::int64_t a_cs,
              const float* b, std::int64_t b_rs, std::int64_t b_cs, float* c,
              std::int64_t m, std::int64_t k, std::int64_t n, bool accumulate) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = accumulate ? static_cast<double>(c[i * n + j]) : 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * a_rs + p * a_cs]) *
               b[p * b_rs + j * b_cs];
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

void expect_close(const std::vector<float>& actual,
                  const std::vector<float>& expected, std::int64_t k) {
  ASSERT_EQ(actual.size(), expected.size());
  // Worst-case float accumulation error grows with k; the operands are in
  // [-1, 1] so this bound is generous but catches indexing bugs outright.
  const float tol = 1e-5F * static_cast<float>(std::max<std::int64_t>(k, 1));
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const float scale = std::max(
        {1.0F, std::fabs(actual[i]), std::fabs(expected[i])});
    EXPECT_NEAR(actual[i] / scale, expected[i] / scale, tol) << "element " << i;
  }
}

struct Shape3 {
  std::int64_t m, k, n;
};

// Unit dims, sub-tile, exact register-tile and task-tile multiples, one past
// each, and k > kKc (multiple KC blocks).
const Shape3 kShapes[] = {{1, 1, 1},    {3, 5, 7},     {4, 8, 16},
                          {17, 33, 9},  {64, 64, 64},  {65, 127, 70},
                          {5, 300, 33}, {128, 257, 65}};

TEST(GemmTest, MatchesOracle) {
  support::Rng rng(42);
  for (const auto& s : kShapes) {
    const auto a = random_data(s.m * s.k, rng);
    const auto b = random_data(s.k * s.n, rng);
    std::vector<float> c(static_cast<std::size_t>(s.m * s.n));
    std::vector<float> want = c;
    core::gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n);
    ref_gemm(a.data(), s.k, 1, b.data(), s.n, 1, want.data(), s.m, s.k, s.n,
             false);
    expect_close(c, want, s.k);
  }
}

TEST(GemmTest, AccumulateAddsIntoC) {
  support::Rng rng(43);
  for (const auto& s : kShapes) {
    const auto a = random_data(s.m * s.k, rng);
    const auto b = random_data(s.k * s.n, rng);
    std::vector<float> c = random_data(s.m * s.n, rng);
    std::vector<float> want = c;
    core::gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n,
               /*accumulate=*/true);
    ref_gemm(a.data(), s.k, 1, b.data(), s.n, 1, want.data(), s.m, s.k, s.n,
             true);
    expect_close(c, want, s.k);
  }
}

TEST(GemmTest, TransposedAMatchesOracle) {
  support::Rng rng(44);
  for (const auto& s : kShapes) {
    // a stored [k x m] row-major.
    const auto a = random_data(s.k * s.m, rng);
    const auto b = random_data(s.k * s.n, rng);
    std::vector<float> c(static_cast<std::size_t>(s.m * s.n));
    std::vector<float> want = c;
    core::gemm_tn(a.data(), b.data(), c.data(), s.m, s.k, s.n);
    ref_gemm(a.data(), 1, s.m, b.data(), s.n, 1, want.data(), s.m, s.k, s.n,
             false);
    expect_close(c, want, s.k);
  }
}

TEST(GemmTest, TransposedBMatchesOracle) {
  support::Rng rng(45);
  for (const auto& s : kShapes) {
    const auto a = random_data(s.m * s.k, rng);
    // b stored [n x k] row-major.
    const auto b = random_data(s.n * s.k, rng);
    std::vector<float> c(static_cast<std::size_t>(s.m * s.n));
    std::vector<float> want = c;
    core::gemm_nt(a.data(), b.data(), c.data(), s.m, s.k, s.n);
    ref_gemm(a.data(), s.k, 1, b.data(), 1, s.k, want.data(), s.m, s.k, s.n,
             false);
    expect_close(c, want, s.k);
  }
}

TEST(GemmTest, ZeroKClearsOrKeepsC) {
  std::vector<float> c = {1.0F, 2.0F, 3.0F, 4.0F};
  const float a = 0.0F, b = 0.0F;
  core::gemm(&a, &b, c.data(), 2, 0, 2, /*accumulate=*/true);
  EXPECT_EQ(c[0], 1.0F);
  core::gemm(&a, &b, c.data(), 2, 0, 2, /*accumulate=*/false);
  EXPECT_EQ(c[3], 0.0F);
}

TEST(GemmTest, BitIdenticalAcrossThreadCounts) {
  support::Rng rng(46);
  const std::int64_t m = 65, k = 300, n = 70;
  const auto a = random_data(m * k, rng);
  const auto b = random_data(k * n, rng);

  runtime::set_num_threads(1);
  std::vector<float> baseline(static_cast<std::size_t>(m * n));
  core::gemm(a.data(), b.data(), baseline.data(), m, k, n);

  for (int threads : {2, 4, 7}) {
    runtime::set_num_threads(threads);
    std::vector<float> c(static_cast<std::size_t>(m * n));
    core::gemm(a.data(), b.data(), c.data(), m, k, n);
    EXPECT_EQ(std::memcmp(c.data(), baseline.data(),
                          c.size() * sizeof(float)),
              0)
        << "threads=" << threads;
  }
  runtime::set_num_threads(0);
}

}  // namespace
}  // namespace flightnn
