// Serving-layer test suite: the dynamic batcher's flush policies (size vs
// deadline), admission control under a seeded burst, graceful shutdown
// draining every accepted future, and the differential guarantee that
// server-path logits are bit-identical to direct BatchRunner output. Run
// under the debug-tsan preset (CI thread-sanitizer job) this is the
// data-race gate for the serving subsystem; the client threads, the batcher
// thread and the kernel pool all interleave here.
//
// Deterministic-by-construction where possible: the overload and drain
// tests pick configs where the batcher provably cannot flush during the
// submission window (huge deadline + huge max_batch), so accept/reject
// splits are exact, not timing-dependent.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "core/quantize_model.hpp"
#include "inference/quantized_network.hpp"
#include "models/networks.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/inference_request.hpp"
#include "runtime/thread_pool.hpp"
#include "serving/server.hpp"
#include "support/rng.hpp"

namespace flightnn {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr std::uint64_t kBaseSeed = 9100;

inference::QuantizedNetwork make_network(std::uint64_t seed = kBaseSeed) {
  models::BuildOptions build;
  build.classes = 10;
  build.width_scale = 0.125F;
  build.seed = seed;
  auto model = models::build_network(models::table1_network(1), build);
  core::install_lightnn(*model, 2);
  return inference::QuantizedNetwork::compile(*model, Shape{1, 3, 12, 12});
}

runtime::InferenceRequest make_request(std::uint64_t id, std::int64_t images,
                                       std::uint64_t seed) {
  support::Rng rng(seed);
  runtime::InferenceRequest request;
  request.id = id;
  request.images.reserve(static_cast<std::size_t>(images));
  for (std::int64_t i = 0; i < images; ++i) {
    request.images.push_back(Tensor::randn(Shape{3, 12, 12}, rng));
  }
  return request;
}

void expect_bitwise_equal(const Tensor& expected, const Tensor& actual,
                          const char* what) {
  ASSERT_EQ(expected.shape(), actual.shape()) << what;
  EXPECT_EQ(std::memcmp(expected.data(), actual.data(),
                        static_cast<std::size_t>(expected.numel()) *
                            sizeof(float)),
            0)
      << what << ": server-path logits differ from direct BatchRunner";
}

TEST(ServingTest, SizeFlushFusesAFullBatch) {
  runtime::set_num_threads(1);
  const auto network = make_network();
  const runtime::BatchRunner runner(network);
  serving::ServerConfig config;
  config.max_batch = 4;
  config.max_queue_delay_s = 10.0;  // deadline cannot fire; only size can
  serving::Server server(runner, config);

  std::vector<std::future<runtime::InferenceResult>> futures;
  for (std::uint64_t r = 0; r < 4; ++r) {
    auto submission = server.submit(make_request(r, 1, kBaseSeed + r));
    ASSERT_EQ(submission.status, serving::SubmitStatus::Ok);
    futures.push_back(std::move(submission.result));
  }
  for (auto& future : futures) {
    const auto result = future.get();
    ASSERT_EQ(result.logits.size(), 1u);
    // Every request rode in the one size-triggered flush of 4 images.
    EXPECT_EQ(result.timing.batch_size, 4);
    EXPECT_GE(result.timing.queue_seconds, 0.0);
    EXPECT_GT(result.timing.compute_seconds, 0.0);
  }
  server.shutdown();
  const auto stats = server.stats();
  EXPECT_EQ(stats.accepted, 4);
  EXPECT_EQ(stats.completed, 4);
  EXPECT_EQ(stats.batches, 1);
  ASSERT_EQ(stats.batch_size_histogram.size(), 5u);
  EXPECT_EQ(stats.batch_size_histogram[4], 1);
}

TEST(ServingTest, DeadlineFlushDeliversPartialBatch) {
  runtime::set_num_threads(1);
  const auto network = make_network();
  const runtime::BatchRunner runner(network);
  serving::ServerConfig config;
  config.max_batch = 64;             // size cannot trigger with 2 images
  config.max_queue_delay_s = 0.002;  // the deadline must do it
  serving::Server server(runner, config);

  auto first = server.submit(make_request(1, 1, kBaseSeed + 11));
  auto second = server.submit(make_request(2, 1, kBaseSeed + 12));
  ASSERT_EQ(first.status, serving::SubmitStatus::Ok);
  ASSERT_EQ(second.status, serving::SubmitStatus::Ok);
  const auto result_one = first.result.get();
  const auto result_two = second.result.get();
  // The deadline flushed a partial batch: strictly fewer images than
  // max_batch, so the future completed without 62 more images arriving.
  EXPECT_LT(result_one.timing.batch_size, 64);
  EXPECT_LT(result_two.timing.batch_size, 64);
  EXPECT_GE(result_one.timing.batch_size, 1);
  server.shutdown();
  EXPECT_EQ(server.stats().completed, 2);
}

// Deadline-flush vs size-flush race: an aggressive config (deadline 0, so
// every wakeup is past-deadline, while concurrent submits keep re-arming
// size triggers) hammered by multiple client threads. Every accepted future
// must complete with the right number of logits.
TEST(ServingTest, DeadlineVsSizeFlushRaceUnderConcurrentClients) {
  runtime::set_num_threads(2);
  const auto network = make_network();
  const runtime::BatchRunner runner(network);
  serving::ServerConfig config;
  config.max_batch = 4;
  config.max_queue_delay_s = 0.0;  // flush as soon as the batcher wakes
  config.max_queue_images = 1024;  // admission never interferes
  serving::Server server(runner, config);

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 6;
  std::vector<std::thread> clients;
  std::vector<std::vector<std::size_t>> logit_counts(kClients);
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const std::int64_t images = (t + r) % 3 + 1;
        auto submission = server.submit(make_request(
            static_cast<std::uint64_t>(t * 100 + r), images,
            kBaseSeed + static_cast<std::uint64_t>(t * 100 + r)));
        ASSERT_EQ(submission.status, serving::SubmitStatus::Ok);
        const auto result = submission.result.get();
        logit_counts[static_cast<std::size_t>(t)].push_back(
            result.logits.size());
        EXPECT_EQ(result.logits.size(), static_cast<std::size_t>(images));
        EXPECT_EQ(result.argmax.size(), static_cast<std::size_t>(images));
        EXPECT_EQ(result.counts.images, images);
      }
    });
  }
  for (auto& client : clients) client.join();
  server.shutdown();
  runtime::set_num_threads(1);
  const auto stats = server.stats();
  EXPECT_EQ(stats.accepted, kClients * kRequestsPerClient);
  EXPECT_EQ(stats.completed, kClients * kRequestsPerClient);
  EXPECT_EQ(stats.rejected, 0);
  for (const auto& counts : logit_counts) {
    EXPECT_EQ(counts.size(), static_cast<std::size_t>(kRequestsPerClient));
  }
}

// Overload rejection with an exact, timing-independent accept/reject split:
// the batcher provably cannot flush (huge deadline, huge max_batch), so a
// serial burst of 10 single-image requests against a 4-image queue bound
// accepts exactly 4 and rejects exactly 6; shutdown then drains the 4.
TEST(ServingTest, OverloadRejectsExactlyBeyondQueueBound) {
  runtime::set_num_threads(1);
  const auto network = make_network();
  const runtime::BatchRunner runner(network);
  serving::ServerConfig config;
  config.max_batch = 100;
  config.max_queue_delay_s = 10.0;
  config.max_queue_images = 4;
  config.block_on_full = false;
  serving::Server server(runner, config);

  std::vector<std::future<runtime::InferenceResult>> accepted;
  int rejected = 0;
  for (std::uint64_t r = 0; r < 10; ++r) {
    auto submission = server.submit(make_request(r, 1, kBaseSeed + 20 + r));
    if (submission.status == serving::SubmitStatus::Ok) {
      accepted.push_back(std::move(submission.result));
    } else {
      EXPECT_EQ(submission.status, serving::SubmitStatus::Overloaded);
      ++rejected;
    }
  }
  EXPECT_EQ(accepted.size(), 4u);
  EXPECT_EQ(rejected, 6);

  server.shutdown();  // drains the 4 queued requests
  for (auto& future : accepted) {
    const auto result = future.get();
    EXPECT_EQ(result.logits.size(), 1u);
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.accepted, 4);
  EXPECT_EQ(stats.rejected, 6);
  EXPECT_EQ(stats.completed, 4);
}

// Seeded concurrent burst against a tight queue: accept/reject counts must
// reconcile exactly and every accepted future must complete. (The split
// itself is timing-dependent here; the accounting must not be.)
TEST(ServingTest, BurstAccountingReconcilesUnderConcurrency) {
  runtime::set_num_threads(2);
  const auto network = make_network();
  const runtime::BatchRunner runner(network);
  serving::ServerConfig config;
  config.max_batch = 2;
  config.max_queue_delay_s = 0.001;
  config.max_queue_images = 4;
  serving::Server server(runner, config);

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 8;
  std::atomic<int> ok{0};
  std::atomic<int> overloaded{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        auto submission = server.submit(make_request(
            static_cast<std::uint64_t>(t * 100 + r), 1,
            kBaseSeed + 40 + static_cast<std::uint64_t>(t * 100 + r)));
        if (submission.status == serving::SubmitStatus::Ok) {
          ok.fetch_add(1);
          const auto result = submission.result.get();
          EXPECT_EQ(result.logits.size(), 1u);
        } else {
          ASSERT_EQ(submission.status, serving::SubmitStatus::Overloaded);
          overloaded.fetch_add(1);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  server.shutdown();
  runtime::set_num_threads(1);
  const auto stats = server.stats();
  EXPECT_EQ(ok.load() + overloaded.load(), kClients * kRequestsPerClient);
  EXPECT_EQ(stats.accepted, ok.load());
  EXPECT_EQ(stats.rejected, overloaded.load());
  EXPECT_EQ(stats.completed, ok.load());
}

TEST(ServingTest, BlockingModeAcceptsEverything) {
  runtime::set_num_threads(1);
  const auto network = make_network();
  const runtime::BatchRunner runner(network);
  serving::ServerConfig config;
  config.max_batch = 1;              // drain continuously
  config.max_queue_delay_s = 0.0;
  config.max_queue_images = 2;       // force submit() to block
  config.block_on_full = true;
  serving::Server server(runner, config);

  std::vector<std::future<runtime::InferenceResult>> futures;
  for (std::uint64_t r = 0; r < 8; ++r) {
    auto submission = server.submit(make_request(r, 1, kBaseSeed + 60 + r));
    ASSERT_EQ(submission.status, serving::SubmitStatus::Ok);
    futures.push_back(std::move(submission.result));
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.get().logits.size(), 1u);
  }
  server.shutdown();
  const auto stats = server.stats();
  EXPECT_EQ(stats.accepted, 8);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.completed, 8);
}

TEST(ServingTest, ShutdownDrainsEveryAcceptedFuture) {
  runtime::set_num_threads(1);
  const auto network = make_network();
  const runtime::BatchRunner runner(network);
  serving::ServerConfig config;
  config.max_batch = 100;
  config.max_queue_delay_s = 10.0;  // nothing flushes until shutdown
  serving::Server server(runner, config);

  std::vector<std::future<runtime::InferenceResult>> futures;
  for (std::uint64_t r = 0; r < 3; ++r) {
    auto submission =
        server.submit(make_request(r, r % 2 + 1, kBaseSeed + 70 + r));
    ASSERT_EQ(submission.status, serving::SubmitStatus::Ok);
    futures.push_back(std::move(submission.result));
  }
  server.shutdown();
  for (auto& future : futures) {
    EXPECT_FALSE(future.get().logits.empty());
  }
  EXPECT_EQ(server.stats().completed, 3);

  // Post-shutdown submissions get the typed status, never a broken promise.
  auto late = server.submit(make_request(99, 1, kBaseSeed + 79));
  EXPECT_EQ(late.status, serving::SubmitStatus::ShuttingDown);
  EXPECT_FALSE(late.result.valid());
}

// The serving differential: logits, argmax and per-request op counts coming
// back through the batcher must be bit-identical to running the same
// request directly on the BatchRunner, even while other clients' requests
// fuse into the same dynamic batches.
TEST(ServingTest, ServerPathBitIdenticalToDirectBatchRunner) {
  runtime::set_num_threads(1);
  const auto network = make_network(kBaseSeed + 1);
  const runtime::BatchRunner runner(network);

  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 4;
  // Direct references, computed before any concurrency starts.
  std::vector<std::vector<runtime::InferenceResult>> reference(kClients);
  for (int t = 0; t < kClients; ++t) {
    for (int r = 0; r < kRequestsPerClient; ++r) {
      const auto seed =
          kBaseSeed + 80 + static_cast<std::uint64_t>(t * 100 + r);
      reference[static_cast<std::size_t>(t)].push_back(runner.run(
          make_request(static_cast<std::uint64_t>(t * 100 + r),
                       (t + r) % 3 + 1, seed)));
    }
  }

  runtime::set_num_threads(4);
  serving::ServerConfig config;
  config.max_batch = 5;
  config.max_queue_delay_s = 0.001;
  config.max_queue_images = 1024;
  serving::Server server(runner, config);
  std::vector<std::vector<runtime::InferenceResult>> served(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const auto seed =
            kBaseSeed + 80 + static_cast<std::uint64_t>(t * 100 + r);
        auto submission = server.submit(
            make_request(static_cast<std::uint64_t>(t * 100 + r),
                         (t + r) % 3 + 1, seed));
        ASSERT_EQ(submission.status, serving::SubmitStatus::Ok);
        served[static_cast<std::size_t>(t)].push_back(
            submission.result.get());
      }
    });
  }
  for (auto& client : clients) client.join();
  server.shutdown();
  runtime::set_num_threads(1);

  for (int t = 0; t < kClients; ++t) {
    for (int r = 0; r < kRequestsPerClient; ++r) {
      const auto& expected =
          reference[static_cast<std::size_t>(t)][static_cast<std::size_t>(r)];
      const auto& actual =
          served[static_cast<std::size_t>(t)][static_cast<std::size_t>(r)];
      EXPECT_EQ(expected.id, actual.id);
      ASSERT_EQ(expected.logits.size(), actual.logits.size());
      for (std::size_t i = 0; i < expected.logits.size(); ++i) {
        expect_bitwise_equal(expected.logits[i], actual.logits[i],
                             "served logits");
      }
      EXPECT_EQ(expected.argmax, actual.argmax);
      // Per-request census attribution survives dynamic batching.
      EXPECT_EQ(expected.counts.shifts, actual.counts.shifts);
      EXPECT_EQ(expected.counts.adds, actual.counts.adds);
      EXPECT_EQ(expected.counts.float_macs, actual.counts.float_macs);
      EXPECT_EQ(expected.counts.images, actual.counts.images);
    }
  }
}

// The deprecated pre-request-API shims must keep forwarding faithfully for
// the one release they survive (DESIGN.md §11). This test opts out of the
// repo-wide -Werror=deprecated-declarations gate on purpose.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(ServingTest, DeprecatedShimsForwardToRequestPath) {
  runtime::set_num_threads(1);
  const auto network = make_network(kBaseSeed + 2);
  const runtime::BatchRunner runner(network);

  const auto request = make_request(7, 3, kBaseSeed + 90);
  const runtime::InferenceResult via_request = runner.run(request);

  // Owning vector shim.
  const runtime::BatchResult via_vector = runner.run(request.images);
  ASSERT_EQ(via_vector.logits.size(), via_request.logits.size());
  for (std::size_t i = 0; i < via_vector.logits.size(); ++i) {
    expect_bitwise_equal(via_request.logits[i], via_vector.logits[i],
                         "vector shim");
  }
  EXPECT_EQ(via_vector.counts.images, via_request.counts.images);
  EXPECT_EQ(via_vector.counts.shifts, via_request.counts.shifts);

  // NCHW shim vs InferenceRequest::from_nchw.
  support::Rng rng(kBaseSeed + 91);
  const Tensor batch = Tensor::randn(Shape{2, 3, 12, 12}, rng);
  const runtime::BatchResult via_nchw = runner.run(batch);
  const runtime::InferenceResult via_from_nchw =
      runner.run(runtime::InferenceRequest::from_nchw(batch));
  ASSERT_EQ(via_nchw.logits.size(), via_from_nchw.logits.size());
  for (std::size_t i = 0; i < via_nchw.logits.size(); ++i) {
    expect_bitwise_equal(via_from_nchw.logits[i], via_nchw.logits[i],
                         "nchw shim");
  }

  // Preallocated shim.
  runtime::BatchResult reused;
  runner.run(request.images, reused);
  runner.run(request.images, reused);
  ASSERT_EQ(reused.logits.size(), via_request.logits.size());
  for (std::size_t i = 0; i < reused.logits.size(); ++i) {
    expect_bitwise_equal(via_request.logits[i], reused.logits[i],
                         "preallocated shim");
  }
}
#pragma GCC diagnostic pop

}  // namespace
}  // namespace flightnn
