#include "tensor/ops.hpp"

#include <cstring>

#include "support/check.hpp"

namespace flightnn::tensor {

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n, bool accumulate) {
  FLIGHTNN_DCHECK(m >= 0 && k >= 0 && n >= 0,
                  "gemm: negative dimensions m=", m, " k=", k, " n=", n);
  FLIGHTNN_DCHECK(a != nullptr && b != nullptr && c != nullptr,
                  "gemm: null operand");
  if (!accumulate) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  }
  // i-k-j loop order keeps the inner loop streaming over contiguous rows of
  // B and C, which is the main thing that matters at these sizes.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (std::int64_t p = 0; p < k; ++p) {
      const float a_val = a_row[p];
      if (a_val == 0.0F) continue;  // quantized weights are often exactly 0
      const float* b_row = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) {
        c_row[j] += a_val * b_row[j];
      }
    }
  }
}

namespace {
void require_rank2(const Tensor& t, const char* what) {
  FLIGHTNN_CHECK(t.shape().rank() == 2, what, ": expected rank-2 tensor, got ",
                 t.shape().to_string());
}
}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul");
  require_rank2(b, "matmul");
  const std::int64_t m = a.shape()[0], k = a.shape()[1];
  FLIGHTNN_CHECK(b.shape()[0] == k, "matmul: inner dim mismatch ",
                 a.shape().to_string(), " x ", b.shape().to_string());
  const std::int64_t n = b.shape()[1];
  Tensor c(Shape{m, n});
  gemm(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul_tn");
  require_rank2(b, "matmul_tn");
  const std::int64_t k = a.shape()[0], m = a.shape()[1];
  FLIGHTNN_CHECK(b.shape()[0] == k, "matmul_tn: inner dim mismatch ",
                 a.shape().to_string(), " x ", b.shape().to_string());
  const std::int64_t n = b.shape()[1];
  Tensor c(Shape{m, n});
  // c[i, j] = sum_p a[p, i] * b[p, j]
  for (std::int64_t p = 0; p < k; ++p) {
    const float* a_row = a.data() + p * m;
    const float* b_row = b.data() + p * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float a_val = a_row[i];
      if (a_val == 0.0F) continue;
      float* c_row = c.data() + i * n;
      for (std::int64_t j = 0; j < n; ++j) c_row[j] += a_val * b_row[j];
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul_nt");
  require_rank2(b, "matmul_nt");
  const std::int64_t m = a.shape()[0], k = a.shape()[1];
  FLIGHTNN_CHECK(b.shape()[1] == k, "matmul_nt: inner dim mismatch ",
                 a.shape().to_string(), " x ", b.shape().to_string());
  const std::int64_t n = b.shape()[0];
  Tensor c(Shape{m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    const float* a_row = a.data() + i * k;
    float* c_row = c.data() + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* b_row = b.data() + j * k;
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) acc += static_cast<double>(a_row[p]) * b_row[p];
      c_row[j] = static_cast<float>(acc);
    }
  }
  return c;
}

void im2col(const float* image, const ConvGeometry& geom, float* columns) {
  FLIGHTNN_DCHECK(geom.stride > 0 && geom.kernel > 0 && geom.padding >= 0,
                  "im2col: bad geometry kernel=", geom.kernel,
                  " stride=", geom.stride, " padding=", geom.padding);
  FLIGHTNN_DCHECK(geom.out_h() > 0 && geom.out_w() > 0,
                  "im2col: empty output window for input ", geom.in_h, "x",
                  geom.in_w);
  const std::int64_t out_h = geom.out_h();
  const std::int64_t out_w = geom.out_w();
  const std::int64_t out_hw = out_h * out_w;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < geom.in_channels; ++c) {
    const float* plane = image + c * geom.in_h * geom.in_w;
    for (std::int64_t ky = 0; ky < geom.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < geom.kernel; ++kx, ++row) {
        float* out_row = columns + row * out_hw;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * geom.stride + ky - geom.padding;
          if (iy < 0 || iy >= geom.in_h) {
            std::memset(out_row + oy * out_w, 0,
                        static_cast<std::size_t>(out_w) * sizeof(float));
            continue;
          }
          const float* in_row = plane + iy * geom.in_w;
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * geom.stride + kx - geom.padding;
            out_row[oy * out_w + ox] =
                (ix >= 0 && ix < geom.in_w) ? in_row[ix] : 0.0F;
          }
        }
      }
    }
  }
}

void col2im(const float* columns, const ConvGeometry& geom, float* image) {
  FLIGHTNN_DCHECK(geom.stride > 0 && geom.kernel > 0 && geom.padding >= 0,
                  "col2im: bad geometry kernel=", geom.kernel,
                  " stride=", geom.stride, " padding=", geom.padding);
  const std::int64_t out_h = geom.out_h();
  const std::int64_t out_w = geom.out_w();
  const std::int64_t out_hw = out_h * out_w;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < geom.in_channels; ++c) {
    float* plane = image + c * geom.in_h * geom.in_w;
    for (std::int64_t ky = 0; ky < geom.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < geom.kernel; ++kx, ++row) {
        const float* in_row = columns + row * out_hw;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * geom.stride + ky - geom.padding;
          if (iy < 0 || iy >= geom.in_h) continue;
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * geom.stride + kx - geom.padding;
            if (ix < 0 || ix >= geom.in_w) continue;
            plane[iy * geom.in_w + ix] += in_row[oy * out_w + ox];
          }
        }
      }
    }
  }
}

}  // namespace flightnn::tensor
