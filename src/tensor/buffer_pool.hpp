#pragma once

// Per-thread recycling pool for tensor storage. Every `Tensor` acquires its
// float buffer from the current thread's pool and returns it on destruction,
// so steady-state workloads that churn through the same tensor sizes (one
// image's forward pass, repeated per batch) stop touching the allocator
// after warm-up. This is the storage half of the zero-allocation contract in
// DESIGN.md §9; the typed scratch half lives in runtime/scratch_arena.
//
// Design constraints:
//   - Pools are strictly thread-local: a buffer released on thread B enters
//     B's pool even if it was acquired on thread A. The handoff of the
//     owning Tensor already synchronizes the memory, and no pool is ever
//     touched by two threads, so the pool needs no locks and is trivially
//     race-free under TSan.
//   - Buffers are keyed by exact element count. Tensors never resize after
//     construction, so the release-time size always equals the acquire-time
//     request and repeat workloads hit the free list exactly.
//   - Cached bytes per thread are capped (kMaxPooledBytes); a release that
//     would exceed the cap frees the buffer instead, bounding memory for
//     workloads with unbounded size diversity (training sweeps).
//   - Thread-exit safety: after the thread-local pool is destroyed, releases
//     from still-live tensors degrade to plain deallocation (a trivially
//     destructible flag guards the teardown window), so static-storage
//     tensors cannot touch a dead pool.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/annotations.hpp"

namespace flightnn::tensor::pool {

// Upper bound on bytes cached per thread before releases start freeing.
inline constexpr std::size_t kMaxPooledBytes = std::size_t{64} << 20;  // 64 MiB

// A buffer of exactly `n` elements with unspecified contents. Reuses a
// cached buffer of the same size when one is available -- the refill
// boundary where FLIGHTNN_HOT traversal stops (steady-state workloads hit
// the free list and never reach the allocator).
FLIGHTNN_COLD_ALLOC std::vector<float> acquire(std::size_t n);

// Return a buffer to the current thread's pool (or free it past the cap).
// Never throws; an empty vector is a no-op.
FLIGHTNN_COLD_ALLOC void release(std::vector<float>&& buffer) noexcept;

// Park `count` buffers of exactly `n` elements in the calling thread's pool
// (topping up an existing free list, not adding to it blindly), so the first
// acquire of each hits the free list instead of the allocator. The memory
// planner's warm path uses this with the program's exact activation working
// set (DESIGN.md §15). Respects kMaxPooledBytes; requests past the cap are
// dropped.
FLIGHTNN_COLD_ALLOC void prewarm(std::size_t n, std::size_t count);

// --- Introspection / test hooks ----------------------------------------------

struct Stats {
  std::uint64_t acquires = 0;       // total acquire() calls on this thread
  std::uint64_t hits = 0;           // acquires served from the free list
  std::uint64_t releases = 0;       // total release() calls on this thread
  std::size_t cached_bytes = 0;     // bytes currently parked in the pool
};

// Counters for the calling thread.
[[nodiscard]] Stats stats();

// Free every cached buffer on the calling thread (tests; memory pressure).
void trim();

}  // namespace flightnn::tensor::pool
