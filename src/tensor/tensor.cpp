#include "tensor/tensor.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "support/check.hpp"
#include "support/simd.hpp"
#include "tensor/buffer_pool.hpp"

namespace flightnn::tensor {

Tensor::Tensor(Shape shape)
    : shape_(shape), data_(pool::acquire(static_cast<std::size_t>(shape_.numel()))) {
  std::fill(data_.begin(), data_.end(), 0.0F);
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(shape), data_(pool::acquire(static_cast<std::size_t>(shape_.numel()))) {
  std::fill(data_.begin(), data_.end(), fill);
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  FLIGHTNN_CHECK(static_cast<std::int64_t>(data_.size()) == shape_.numel(),
                 "Tensor: data size ", data_.size(),
                 " does not match shape ", shape_.to_string());
}

Tensor::~Tensor() { pool::release(std::move(data_)); }

Tensor::Tensor(const Tensor& other)
    : shape_(other.shape_), data_(pool::acquire(other.data_.size())) {
  std::copy(other.data_.begin(), other.data_.end(), data_.begin());
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  shape_ = other.shape_;
  if (data_.size() != other.data_.size()) {
    pool::release(std::move(data_));
    data_ = pool::acquire(other.data_.size());
  }
  std::copy(other.data_.begin(), other.data_.end(), data_.begin());
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(other.shape_), data_(std::move(other.data_)) {
  other.shape_ = Shape();
  other.data_.clear();
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  pool::release(std::move(data_));
  shape_ = other.shape_;
  data_ = std::move(other.data_);
  other.shape_ = Shape();
  other.data_.clear();
  return *this;
}

Tensor Tensor::uninitialized(Shape shape) {
  const auto n = static_cast<std::size_t>(shape.numel());
  return Tensor(std::move(shape), pool::acquire(n));
}

Tensor Tensor::randn(Shape shape, support::Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, support::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  FLIGHTNN_CHECK(new_shape.numel() == shape_.numel(),
                 "Tensor::reshaped: numel mismatch ", shape_.to_string(),
                 " -> ", new_shape.to_string());
  Tensor t(*this);  // pooled deep copy
  t.shape_ = std::move(new_shape);
  return t;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  FLIGHTNN_CHECK_SHAPE(shape(), other.shape(), "Tensor::operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  FLIGHTNN_CHECK_SHAPE(shape(), other.shape(), "Tensor::operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

void Tensor::add_scaled(const Tensor& other, float scale) {
  FLIGHTNN_CHECK_SHAPE(shape(), other.shape(), "Tensor::add_scaled");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::min() const {
  FLIGHTNN_CHECK(!data_.empty(), "Tensor::min on empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  FLIGHTNN_CHECK(!data_.empty(), "Tensor::max on empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

namespace {

// For non-negative IEEE-754 floats, the value ordering equals the ordering
// of the bit patterns as unsigned integers, so |.|-max reduces over
// `bits & 0x7FFFFFFF` as an integer max -- which the autovectorizer
// handles without the FP max/NaN semantics concerns that keep the float
// formulation scalar. Every activation quantizer calls this per forward.
FLIGHTNN_SIMD_CLONES
std::uint32_t abs_max_bits(const float* p, std::int64_t n) {
  std::uint32_t m = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    m = std::max(m, std::bit_cast<std::uint32_t>(p[i]) & 0x7FFFFFFFU);
  }
  return m;
}

}  // namespace

float Tensor::abs_max() const {
  return std::bit_cast<float>(
      abs_max_bits(data_.data(), static_cast<std::int64_t>(data_.size())));
}

double Tensor::l2_norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

Tensor operator+(Tensor lhs, const Tensor& rhs) {
  lhs += rhs;
  return lhs;
}

Tensor operator-(Tensor lhs, const Tensor& rhs) {
  lhs -= rhs;
  return lhs;
}

Tensor operator*(Tensor lhs, float scalar) {
  lhs *= scalar;
  return lhs;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  FLIGHTNN_CHECK_SHAPE(a.shape(), b.shape(), "max_abs_diff");
  float m = 0.0F;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

}  // namespace flightnn::tensor
