#pragma once

// Dense row-major float32 tensor. This is the single numeric container used
// throughout the library: activations (NCHW), convolution weights (OIHW),
// gradients and optimizer state all use it. The type has value semantics;
// copies are deep.
//
// Storage is acquired from and returned to a per-thread buffer pool
// (tensor/buffer_pool.hpp), so repeat workloads that churn through the same
// tensor sizes — batched inference in particular — reach a steady state where
// constructing and destroying tensors performs no heap allocation.

#include <cstdint>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "tensor/shape.hpp"

namespace flightnn::tensor {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);                   // zero-filled
  Tensor(Shape shape, float fill);
  Tensor(Shape shape, std::vector<float> data);   // takes ownership

  // Storage round-trips through the per-thread buffer pool: copies acquire a
  // pooled buffer, destruction and move-assignment release the old one.
  ~Tensor();
  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  // Pool-backed storage with unspecified contents; for outputs every element
  // of which is about to be overwritten (skips the zero-fill pass).
  static Tensor uninitialized(Shape shape);
  static Tensor full(Shape shape, float value) { return Tensor(std::move(shape), value); }
  // I.i.d. N(mean, stddev^2) entries.
  static Tensor randn(Shape shape, support::Rng& rng, float mean = 0.0F,
                      float stddev = 1.0F);
  // I.i.d. U[lo, hi) entries.
  static Tensor rand_uniform(Shape shape, support::Rng& rng, float lo, float hi);

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

  float& operator[](std::int64_t i) {
    FLIGHTNN_DCHECK(i >= 0 && i < numel(), "Tensor::operator[]: index ", i,
                    " out of range for numel ", numel());
    return data_[static_cast<std::size_t>(i)];
  }
  float operator[](std::int64_t i) const {
    FLIGHTNN_DCHECK(i >= 0 && i < numel(), "Tensor::operator[]: index ", i,
                    " out of range for numel ", numel());
    return data_[static_cast<std::size_t>(i)];
  }

  // Multi-index access (bounds-checked through Shape::offset in debug).
  float& at(const std::vector<std::int64_t>& index) { return data_[static_cast<std::size_t>(shape_.offset(index))]; }
  [[nodiscard]] float at(const std::vector<std::int64_t>& index) const {
    return data_[static_cast<std::size_t>(shape_.offset(index))];
  }

  // Reinterpret with a new shape of equal numel (no data movement).
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  void fill(float value);

  // In-place arithmetic; shapes must match exactly for the tensor variants.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar);

  // this += scale * other (axpy), the workhorse of optimizer updates.
  void add_scaled(const Tensor& other, float scale);

  // Reductions.
  [[nodiscard]] float sum() const;
  [[nodiscard]] float min() const;   // requires non-empty
  [[nodiscard]] float max() const;   // requires non-empty
  [[nodiscard]] float abs_max() const;
  [[nodiscard]] double l2_norm() const;

  [[nodiscard]] const std::vector<float>& storage() const { return data_; }

 private:
  Shape shape_;
  std::vector<float> data_;
};

// Out-of-place helpers.
Tensor operator+(Tensor lhs, const Tensor& rhs);
Tensor operator-(Tensor lhs, const Tensor& rhs);
Tensor operator*(Tensor lhs, float scalar);

// Max absolute element-wise difference; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace flightnn::tensor
