#pragma once

// Shape of a dense row-major tensor. Kept as a small value type; most
// tensors in this library are rank 1 (bias), 2 (linear weights / im2col
// matrices) or 4 (NCHW activations and OIHW convolution weights).

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace flightnn::tensor {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);
  explicit Shape(std::vector<std::int64_t> dims);

  [[nodiscard]] std::size_t rank() const { return dims_.size(); }
  [[nodiscard]] std::int64_t dim(std::size_t axis) const;
  [[nodiscard]] std::int64_t operator[](std::size_t axis) const { return dim(axis); }

  // Product of all dimensions; 1 for a rank-0 (scalar) shape.
  [[nodiscard]] std::int64_t numel() const;

  [[nodiscard]] const std::vector<std::int64_t>& dims() const { return dims_; }

  // Row-major flat offset of a multi-index. Bounds-checked in debug builds.
  [[nodiscard]] std::int64_t offset(const std::vector<std::int64_t>& index) const;

  [[nodiscard]] bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  [[nodiscard]] bool operator!=(const Shape& other) const { return !(*this == other); }

  // "[2, 3, 32, 32]"
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::int64_t> dims_;
};

}  // namespace flightnn::tensor
