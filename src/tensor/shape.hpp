#pragma once

// Shape of a dense row-major tensor. Kept as a small value type; most
// tensors in this library are rank 1 (bias), 2 (linear weights / im2col
// matrices) or 4 (NCHW activations and OIHW convolution weights).
//
// Dimensions live inline (no heap storage): shapes are constructed on every
// layer boundary of the inference hot path, and the zero-allocation
// steady-state contract of the batched runtime (DESIGN.md §9) requires that
// building one never touches the allocator.

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace flightnn::tensor {

class Shape {
 public:
  // Largest supported rank. NCHW/OIHW need 4; two spare axes keep room for
  // future layouts without reintroducing heap storage.
  static constexpr std::size_t kMaxRank = 6;

  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);
  explicit Shape(const std::vector<std::int64_t>& dims);

  [[nodiscard]] std::size_t rank() const { return rank_; }
  [[nodiscard]] std::int64_t dim(std::size_t axis) const;
  [[nodiscard]] std::int64_t operator[](std::size_t axis) const { return dim(axis); }

  // Product of all dimensions; 1 for a rank-0 (scalar) shape.
  [[nodiscard]] std::int64_t numel() const;

  // Row-major flat offset of a multi-index. Bounds-checked in debug builds.
  [[nodiscard]] std::int64_t offset(const std::vector<std::int64_t>& index) const;

  [[nodiscard]] bool operator==(const Shape& other) const {
    if (rank_ != other.rank_) return false;
    for (std::size_t axis = 0; axis < rank_; ++axis) {
      if (dims_[axis] != other.dims_[axis]) return false;
    }
    return true;
  }
  [[nodiscard]] bool operator!=(const Shape& other) const { return !(*this == other); }

  // "[2, 3, 32, 32]"
  [[nodiscard]] std::string to_string() const;

 private:
  std::array<std::int64_t, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

}  // namespace flightnn::tensor
