#pragma once

// Numeric kernels on tensors: GEMM and the im2col/col2im transforms that the
// convolution layers are built on. Everything is single-threaded CPU code;
// gemm is cache-blocked enough for the network sizes in the paper's Table 1
// at the reduced scales used by the benches.

#include "tensor/tensor.hpp"

namespace flightnn::tensor {

// C[m x n] = A[m x k] * B[k x n] (+ C if accumulate). Row-major raw-pointer
// kernel shared by the float and integer paths.
void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n, bool accumulate = false);

// Matrix product of rank-2 tensors.
Tensor matmul(const Tensor& a, const Tensor& b);

// A^T * B where a is [k x m], b is [k x n] -> [m x n]. Used for weight grads.
Tensor matmul_tn(const Tensor& a, const Tensor& b);

// A * B^T where a is [m x k], b is [n x k] -> [m x n]. Used for input grads.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

// Geometry of a 2-D convolution with square stride/padding.
struct ConvGeometry {
  std::int64_t in_channels = 0;
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t kernel = 0;    // square kernel
  std::int64_t stride = 1;
  std::int64_t padding = 0;

  [[nodiscard]] std::int64_t out_h() const {
    return (in_h + 2 * padding - kernel) / stride + 1;
  }
  [[nodiscard]] std::int64_t out_w() const {
    return (in_w + 2 * padding - kernel) / stride + 1;
  }
  [[nodiscard]] std::int64_t patch_size() const {
    return in_channels * kernel * kernel;
  }
};

// Unfold one image [C, H, W] into a patch matrix [patch_size, out_h*out_w].
// Out-of-bounds (padding) positions contribute zero.
void im2col(const float* image, const ConvGeometry& geom, float* columns);

// Fold a patch-matrix gradient back into an image gradient (accumulating).
void col2im(const float* columns, const ConvGeometry& geom, float* image);

}  // namespace flightnn::tensor
