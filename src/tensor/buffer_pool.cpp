#include "tensor/buffer_pool.hpp"

#include <unordered_map>
#include <utility>

namespace flightnn::tensor::pool {

namespace {

struct ThreadPool {
  // Free lists keyed by exact element count.
  std::unordered_map<std::size_t, std::vector<std::vector<float>>> free_lists;
  Stats counters;
};

// Guards the teardown window at thread exit: trivially destructible, so it
// stays readable after `tls_pool` has been destroyed. Releases arriving then
// (from tensors with longer storage duration) just free their buffer.
thread_local bool tls_pool_alive = false;

ThreadPool& tls() {
  thread_local struct Holder {
    ThreadPool pool;
    Holder() { tls_pool_alive = true; }
    ~Holder() { tls_pool_alive = false; }
  } holder;
  return holder.pool;
}

}  // namespace

std::vector<float> acquire(std::size_t n) {
  if (n == 0) return {};
  ThreadPool& p = tls();
  ++p.counters.acquires;
  auto it = p.free_lists.find(n);
  if (it != p.free_lists.end() && !it->second.empty()) {
    std::vector<float> buffer = std::move(it->second.back());
    it->second.pop_back();
    ++p.counters.hits;
    p.counters.cached_bytes -= n * sizeof(float);
    return buffer;
  }
  std::vector<float> buffer;
  buffer.resize(n);
  return buffer;
}

void release(std::vector<float>&& buffer) noexcept {
  if (buffer.empty()) return;
  if (!tls_pool_alive) {
    std::vector<float> drop = std::move(buffer);
    return;  // thread is tearing down; just free
  }
  const std::size_t bytes = buffer.size() * sizeof(float);
  try {
    ThreadPool& p = tls();
    ++p.counters.releases;
    if (p.counters.cached_bytes + bytes > kMaxPooledBytes) {
      std::vector<float> drop = std::move(buffer);
      return;
    }
    p.free_lists[buffer.size()].push_back(std::move(buffer));
    p.counters.cached_bytes += bytes;
  } catch (...) {
    // Map rehash or push_back failed under memory pressure: the buffer (if
    // not yet moved) is freed by its own destructor. release() stays noexcept.
  }
}

void prewarm(std::size_t n, std::size_t count) {
  if (n == 0 || count == 0) return;
  ThreadPool& p = tls();
  auto& list = p.free_lists[n];
  const std::size_t bytes = n * sizeof(float);
  while (list.size() < count &&
         p.counters.cached_bytes + bytes <= kMaxPooledBytes) {
    std::vector<float> buffer;
    buffer.resize(n);
    list.push_back(std::move(buffer));
    p.counters.cached_bytes += bytes;
  }
}

Stats stats() { return tls().counters; }

void trim() {
  ThreadPool& p = tls();
  p.free_lists.clear();
  p.counters.cached_bytes = 0;
}

}  // namespace flightnn::tensor::pool
