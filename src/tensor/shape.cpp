#include "tensor/shape.hpp"

#include <stdexcept>

#include "support/check.hpp"

namespace flightnn::tensor {

namespace {

template <typename Range>
void fill_dims(const Range& dims, std::array<std::int64_t, Shape::kMaxRank>& out,
               std::size_t& rank) {
  FLIGHTNN_CHECK(dims.size() <= Shape::kMaxRank, "Shape: rank ", dims.size(),
                 " exceeds the inline capacity ", Shape::kMaxRank);
  rank = dims.size();
  std::size_t axis = 0;
  for (const std::int64_t d : dims) {
    FLIGHTNN_CHECK(d >= 0, "Shape: negative dimension ", d);
    out[axis++] = d;
  }
}

}  // namespace

Shape::Shape(std::initializer_list<std::int64_t> dims) {
  fill_dims(dims, dims_, rank_);
}

Shape::Shape(const std::vector<std::int64_t>& dims) {
  fill_dims(dims, dims_, rank_);
}

std::int64_t Shape::dim(std::size_t axis) const {
  if (axis >= rank_) throw std::out_of_range("Shape::dim: axis out of range");
  return dims_[axis];
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (std::size_t axis = 0; axis < rank_; ++axis) n *= dims_[axis];
  return n;
}

std::int64_t Shape::offset(const std::vector<std::int64_t>& index) const {
  FLIGHTNN_CHECK(index.size() == rank_, "Shape::offset: index rank ",
                 index.size(), " does not match shape rank ", rank_);
  std::int64_t off = 0;
  for (std::size_t axis = 0; axis < rank_; ++axis) {
    FLIGHTNN_DCHECK(index[axis] >= 0 && index[axis] < dims_[axis],
                    "Shape::offset: index ", index[axis],
                    " out of range for axis ", axis, " of ", to_string());
    off = off * dims_[axis] + index[axis];
  }
  return off;
}

std::string Shape::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < rank_; ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(dims_[i]);
  }
  return out + "]";
}

}  // namespace flightnn::tensor
