#include "tensor/shape.hpp"

#include <cassert>
#include <stdexcept>

namespace flightnn::tensor {

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {
  for (auto d : dims_) {
    if (d < 0) throw std::invalid_argument("Shape: negative dimension");
  }
}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  for (auto d : dims_) {
    if (d < 0) throw std::invalid_argument("Shape: negative dimension");
  }
}

std::int64_t Shape::dim(std::size_t axis) const {
  if (axis >= dims_.size()) throw std::out_of_range("Shape::dim: axis out of range");
  return dims_[axis];
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (auto d : dims_) n *= d;
  return n;
}

std::int64_t Shape::offset(const std::vector<std::int64_t>& index) const {
  if (index.size() != dims_.size()) {
    throw std::invalid_argument("Shape::offset: index rank mismatch");
  }
  std::int64_t off = 0;
  for (std::size_t axis = 0; axis < dims_.size(); ++axis) {
    assert(index[axis] >= 0 && index[axis] < dims_[axis]);
    off = off * dims_[axis] + index[axis];
  }
  return off;
}

std::string Shape::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(dims_[i]);
  }
  return out + "]";
}

}  // namespace flightnn::tensor
