#include "tensor/shape.hpp"

#include <stdexcept>

#include "support/check.hpp"

namespace flightnn::tensor {

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {
  for (auto d : dims_) {
    FLIGHTNN_CHECK(d >= 0, "Shape: negative dimension ", d);
  }
}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  for (auto d : dims_) {
    FLIGHTNN_CHECK(d >= 0, "Shape: negative dimension ", d);
  }
}

std::int64_t Shape::dim(std::size_t axis) const {
  if (axis >= dims_.size()) throw std::out_of_range("Shape::dim: axis out of range");
  return dims_[axis];
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (auto d : dims_) n *= d;
  return n;
}

std::int64_t Shape::offset(const std::vector<std::int64_t>& index) const {
  FLIGHTNN_CHECK(index.size() == dims_.size(),
                 "Shape::offset: index rank ", index.size(),
                 " does not match shape rank ", dims_.size());
  std::int64_t off = 0;
  for (std::size_t axis = 0; axis < dims_.size(); ++axis) {
    FLIGHTNN_DCHECK(index[axis] >= 0 && index[axis] < dims_[axis],
                    "Shape::offset: index ", index[axis],
                    " out of range for axis ", axis, " of ", to_string());
    off = off * dims_[axis] + index[axis];
  }
  return off;
}

std::string Shape::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(dims_[i]);
  }
  return out + "]";
}

}  // namespace flightnn::tensor
