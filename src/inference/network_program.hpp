#pragma once

// NetworkProgram: the flat intermediate representation between a trained
// model and the executable QuantizedNetwork. compile_program() walks the
// layer tree once (the same dynamic_cast walk QuantizedNetwork::compile
// always did) and lowers every layer into a self-contained ProgramOp --
// shift layers carry their compiled ShiftPlan, batch norm arrives already
// folded into per-channel affines, residual blocks are flattened into
// pre-order segments with explicit child counts.
//
// The IR exists so the deployment artifact (serialize/artifact.hpp) has a
// stable, pointer-free description to serialize: every field is a scalar,
// a tensor, or a plan stream, so an op can be laid out into a flat blob
// and reconstituted without re-deriving anything from the float model.
// QuantizedNetwork::from_program() turns a program back into steps; for
// ops whose quantized weights are present (the in-memory compile path) the
// engines keep their reference decomposition, and for ops carrying only a
// plan (the artifact load path) the engines adopt the plan directly --
// run() is bit-identical either way because both execute the same plan.

#include <cstdint>
#include <vector>

#include "inference/shift_plan.hpp"
#include "quant/pow2.hpp"
#include "tensor/tensor.hpp"

namespace flightnn::nn {
class Sequential;
}  // namespace flightnn::nn

namespace flightnn::inference {

struct CompileOptions {
  // Activation bit width used where the model has no explicit quantizer.
  int act_bits = 8;
  // Maximum shift terms expected per weight (for decomposition).
  int k_max = 2;
  quant::Pow2Config pow2;
  // Execute shift layers through the pre-plan reference engine instead of
  // the compiled plan. Outputs are bit-identical; this exists so benchmarks
  // can measure the whole-network seed-vs-plan speedup.
  bool use_reference_engine = false;
};

// Serialization-stable op kinds (artifact format v1 records these values;
// append only, never renumber).
enum class ProgramOpKind : std::uint32_t {
  kQuantAct = 1,
  kShiftConv = 2,
  kFloatConv = 3,
  kAffine = 4,
  kLeakyRelu = 5,
  kMaxPool = 6,
  kGap = 7,
  kFlatten = 8,
  kShiftLinear = 9,
  kFloatLinear = 10,
  kResidual = 11,
};

// One lowered layer. Only the fields its kind reads are meaningful; the
// rest stay at their defaults.
struct ProgramOp {
  ProgramOpKind kind = ProgramOpKind::kQuantAct;

  int bits = 0;      // kQuantAct: activation quantizer width
  int act_bits = 8;  // shift ops: input re-quantization width
  float slope = 0.0F;  // kLeakyRelu

  // Geometry. Conv: out_channels/in_channels/kernel/stride/padding.
  // Linear: out_channels = out features, in_channels = in features.
  // MaxPool: window/stride.
  std::int64_t out_channels = 0;
  std::int64_t in_channels = 0;
  std::int64_t kernel = 0;
  std::int64_t window = 0;
  std::int64_t stride = 1;
  std::int64_t padding = 0;

  // Shift ops: compiled plan + the pow2 grid it shifts on, plus the
  // decomposition's term census (metadata reported by term_count()).
  std::int64_t term_count = 0;
  int k_max = 0;
  quant::Pow2Config pow2;
  ShiftPlan plan;

  // Shift ops, in-memory compile only: the quantized weight tensor the plan
  // was lowered from. Kept so from_program can build engines that retain
  // the reference term-walk (use_reference_engine, filter_k). Empty on the
  // artifact load path -- the artifact stores plans, not float weights.
  tensor::Tensor weights;  // also: kFloatConv/kFloatLinear weights
  tensor::Tensor bias;     // conv/linear bias; may be empty

  // kAffine (folded batch norm): y = scale[c] * x + affine_bias[c].
  std::vector<float> scale;
  std::vector<float> affine_bias;

  // kResidual: the ops vector continues with three flattened segments --
  // main, shortcut, post, in that order. Counts are TOTAL ops per segment,
  // nested residuals included, so a reader can skip a segment without
  // recursing.
  std::int64_t main_ops = 0;
  std::int64_t shortcut_ops = 0;
  std::int64_t post_ops = 0;
  bool has_shortcut = false;
};

// A compiled network: pre-order flat op list plus the input geometry the
// program was compiled for.
struct NetworkProgram {
  std::vector<ProgramOp> ops;
  std::int64_t input_c = 0;
  std::int64_t input_h = 0;
  std::int64_t input_w = 0;
};

// Lower a trained model. Walks the layer tree in execution order; throws on
// layer types it does not understand. The model is used in eval mode during
// compilation (one dummy forward fixes geometry and batch-norm statistics).
NetworkProgram compile_program(nn::Sequential& model,
                               const tensor::Shape& input_shape,
                               const CompileOptions& options = {});

}  // namespace flightnn::inference
