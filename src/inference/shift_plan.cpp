#include "inference/shift_plan.hpp"

#include <algorithm>
#include <limits>

#include "inference/shift_kernels.hpp"
#include "support/annotations.hpp"
#include "support/check.hpp"

namespace flightnn::inference {

namespace {

// Shared lowering: group terms by filter, stream out only nonzero elements.
// `spatial` toggles the conv-only channel/ky/kx streams.
ShiftPlan compile_impl(const core::Decomposition& decomposition,
                       const quant::Pow2Config& config, std::int64_t in_channels,
                       std::int64_t kernel, bool spatial) {
  const auto filters = static_cast<std::int64_t>(decomposition.filter_k.size());

  ShiftPlan plan;
  plan.filters = filters;

  // Terms grouped by filter in decomposition order (compile-time only; the
  // runtime structure is the flat entry stream).
  std::vector<std::vector<std::size_t>> terms_by_filter(
      static_cast<std::size_t>(filters));
  for (std::size_t t = 0; t < decomposition.terms.size(); ++t) {
    const std::int64_t filter = decomposition.terms[t].filter;
    // A term addressing a filter outside the decomposition's own range used
    // to write straight past terms_by_filter; decompositions built from
    // parsed (untrusted) packs reach this path, so the bound is a hard
    // check, not a DCHECK.
    FLIGHTNN_CHECK(filter >= 0 && filter < filters, "ShiftPlan: term ", t,
                   " addresses filter ", filter, " outside [0, ", filters,
                   ")");
    terms_by_filter[static_cast<std::size_t>(filter)].push_back(t);
  }

  plan.filter_begin.reserve(static_cast<std::size_t>(filters) + 1);
  plan.filter_gain.assign(static_cast<std::size_t>(filters), 0);
  plan.filter_begin.push_back(0);

  for (std::int64_t f = 0; f < filters; ++f) {
    std::int64_t gain = 0;
    for (const std::size_t t : terms_by_filter[static_cast<std::size_t>(f)]) {
      const auto& term = decomposition.terms[t];
      for (std::size_t e = 0; e < term.elements.size(); ++e) {
        const quant::Pow2Term w = term.elements[e];
        if (w.sign == 0) continue;  // elided: zero elements never reach run()
        FLIGHTNN_CHECK(w.sign == 1 || w.sign == -1, "ShiftPlan: term sign ",
                       static_cast<int>(w.sign), " must be -1, 0 or +1");
        const int shift = static_cast<int>(w.exponent) - config.e_min;
        FLIGHTNN_CHECK(shift >= 0 && shift < 62,
                       "ShiftPlan: shift ", shift,
                       " outside the barrel shifter's range");
        FLIGHTNN_CHECK(static_cast<std::int64_t>(e) <=
                           std::numeric_limits<std::int32_t>::max(),
                       "ShiftPlan: element index ", e, " overflows int32");
        plan.element.push_back(static_cast<std::int32_t>(e));
        if (spatial) {
          const auto ei = static_cast<std::int64_t>(e);
          const std::int64_t kk = kernel * kernel;
          plan.channel.push_back(static_cast<std::int32_t>(ei / kk));
          plan.ky.push_back(static_cast<std::int16_t>((ei % kk) / kernel));
          plan.kx.push_back(static_cast<std::int16_t>(ei % kernel));
        }
        plan.shift.push_back(static_cast<std::int8_t>(shift));
        plan.sign.push_back(w.sign);
        const std::int64_t g = std::int64_t{1} << shift;
        gain = gain > kShiftAccumulatorGuard - g ? kShiftAccumulatorGuard
                                                 : gain + g;
      }
    }
    plan.filter_gain[static_cast<std::size_t>(f)] = gain;
    plan.filter_begin.push_back(plan.entries());
  }

  plan.build_vector_streams();
  return plan;
}

}  // namespace

// Grow-once lowering of the derived SIMD streams; runs at compile/adopt time
// (never on the inference hot path), hence the allocation boundary marker.
FLIGHTNN_COLD_ALLOC void ShiftPlan::build_vector_streams() {
  if (vector_streams_built) return;
  const std::size_t n = element.size();
  // Read the core streams through const pointers: on an adopted plan they
  // are views, whose mutating operator[] must never be touched.
  const std::int8_t* shift_in = shift.data();
  const std::int8_t* sign_in = sign.data();
  const std::int32_t* element_in = element.data();
  const std::int64_t* begin_in = filter_begin.data();

  // Per-entry int32 multiplier sign * 2^shift. Shifts above 30 would not fit
  // (and mark a filter whose gain already fails the narrow bound), so they
  // store the never-read 0 sentinel instead of shifting out of range.
  mult.assign(n, 0);
  for (std::size_t e = 0; e < n; ++e) {
    const int s = shift_in[e];
    if (s >= 0 && s <= 30) {
      mult[e] = static_cast<std::int32_t>(sign_in[e]) * (std::int32_t{1} << s);
    }
  }
  const std::int32_t* mult_in = mult.data();

  // Linear plans additionally get the lane-padded gather streams. Conv plans
  // skip them: the conv vector kernel iterates output positions per entry,
  // so it needs no entry padding.
  if (channel.empty() && filters > 0 &&
      static_cast<std::int64_t>(filter_begin.size()) == filters + 1) {
    std::int64_t padded_total = 0;
    pad_begin.reserve(static_cast<std::size_t>(filters) + 1);
    pad_begin.push_back(0);
    const auto span_of = [&](std::int64_t f) -> std::int64_t {
      // Clamp hand-built out-of-range/non-monotone prefixes to an empty
      // span (the artifact loader validates these in depth; adopted test
      // plans may not). A clamped filter simply keeps the scalar path.
      const std::int64_t lo = begin_in[f], hi = begin_in[f + 1];
      if (lo < 0 || hi > static_cast<std::int64_t>(n) || hi < lo) return 0;
      return hi - lo;
    };
    for (std::int64_t f = 0; f < filters; ++f) {
      const std::int64_t len = span_of(f);
      padded_total += (len + kShiftVectorLane - 1) / kShiftVectorLane *
                      kShiftVectorLane;
      pad_begin.push_back(padded_total);
    }
    pad_element.assign(static_cast<std::size_t>(padded_total), 0);
    pad_mult.assign(static_cast<std::size_t>(padded_total), 0);
    const std::int64_t* pad_begin_in = pad_begin.data();
    for (std::int64_t f = 0; f < filters; ++f) {
      const std::int64_t src = begin_in[f];
      const std::int64_t dst = pad_begin_in[f];
      const std::int64_t len = span_of(f);
      for (std::int64_t i = 0; i < len; ++i) {
        pad_element[static_cast<std::size_t>(dst + i)] =
            element_in[src + i];
        pad_mult[static_cast<std::size_t>(dst + i)] = mult_in[src + i];
      }
    }
  }
  vector_streams_built = true;
}

FLIGHTNN_API_ENTRY ShiftPlan ShiftPlan::compile_conv(
    const core::Decomposition& decomposition, const quant::Pow2Config& config,
    std::int64_t in_channels, std::int64_t kernel) {
  FLIGHTNN_CHECK(in_channels > 0 && kernel > 0,
                 "ShiftPlan::compile_conv: bad conv geometry ", in_channels,
                 "x", kernel);
  return compile_impl(decomposition, config, in_channels, kernel,
                      /*spatial=*/true);
}

FLIGHTNN_API_ENTRY ShiftPlan ShiftPlan::compile_linear(
    const core::Decomposition& decomposition, const quant::Pow2Config& config) {
  FLIGHTNN_CHECK(decomposition.elements_per_filter >= 0,
                 "ShiftPlan::compile_linear: negative elements per filter ",
                 decomposition.elements_per_filter);
  return compile_impl(decomposition, config, 0, 0, /*spatial=*/false);
}

}  // namespace flightnn::inference
