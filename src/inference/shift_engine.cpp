#include "inference/shift_engine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>

#include "runtime/thread_pool.hpp"
#include "support/check.hpp"

namespace flightnn::inference {

namespace {

// Accumulators hold values scaled by 2^(scale_exp + e_min); anything nearing
// the int64 ceiling means a shift went wrong, not a big activation.
constexpr std::int64_t kAccumulatorGuard = std::int64_t{1} << 62;

// Shared engine-construction invariants: the decomposition's terms must
// address real filters, carry full-size element vectors, and hold exponents
// inside the barrel shifter's budget. A violation here means the quantizer
// and the engine disagree about the datapath.
void validate_decomposition(const core::Decomposition& decomposition,
                            std::int64_t filters, std::int64_t elements,
                            const quant::Pow2Config& config, const char* what) {
  FLIGHTNN_CHECK(
      static_cast<std::int64_t>(decomposition.filter_k.size()) == filters, what,
      ": decomposition covers ", decomposition.filter_k.size(),
      " filters, weights have ", filters);
  FLIGHTNN_CHECK(decomposition.elements_per_filter == elements, what,
                 ": decomposition elements per filter ",
                 decomposition.elements_per_filter, ", weights have ", elements);
  for (const auto& term : decomposition.terms) {
    FLIGHTNN_CHECK(term.filter >= 0 && term.filter < filters, what,
                   ": term filter index ", term.filter, " outside [0, ",
                   filters, ")");
    FLIGHTNN_CHECK(
        static_cast<std::int64_t>(term.elements.size()) == elements, what,
        ": term has ", term.elements.size(), " elements, expected ", elements);
    for (const auto& element : term.elements) {
      if (element.sign == 0) continue;
      FLIGHTNN_CHECK(element.exponent >= config.e_min &&
                         element.exponent <= config.e_max,
                     what, ": term exponent ",
                     static_cast<int>(element.exponent), " outside [",
                     config.e_min, ", ", config.e_max, "]");
    }
  }
}

// Group term indices by output filter (preserving decomposition order, so a
// filter's terms accumulate in the same order serial execution used) and
// precompute each filter's worst-case accumulator gain: the sum of 2^shift
// over its nonzero weight elements, saturated at the guard. With max|q| the
// largest input magnitude, |accumulator| never exceeds max|q| * gain, which
// is what lets run() hoist the overflow check out of the inner loop.
void index_terms_by_filter(const core::Decomposition& decomposition,
                           const quant::Pow2Config& config,
                           std::int64_t filters,
                           std::vector<std::vector<std::size_t>>& filter_terms,
                           std::vector<std::int64_t>& filter_gain) {
  filter_terms.assign(static_cast<std::size_t>(filters), {});
  filter_gain.assign(static_cast<std::size_t>(filters), 0);
  for (std::size_t t = 0; t < decomposition.terms.size(); ++t) {
    const auto& term = decomposition.terms[t];
    const auto f = static_cast<std::size_t>(term.filter);
    filter_terms[f].push_back(t);
    for (const auto& element : term.elements) {
      if (element.sign == 0) continue;
      const int shift = static_cast<int>(element.exponent) - config.e_min;
      const std::int64_t gain = std::int64_t{1} << shift;
      filter_gain[f] = filter_gain[f] > kAccumulatorGuard - gain
                           ? kAccumulatorGuard
                           : filter_gain[f] + gain;
    }
  }
}

// Largest input magnitude, for the hoisted overflow bound. Unused when
// DCHECKs are compiled out (NDEBUG without FLIGHTNN_FORCE_DCHECKS).
[[maybe_unused]] std::int64_t max_abs_value(
    const std::vector<std::int32_t>& values) {
  std::int64_t max_abs = 0;
  for (const std::int32_t v : values) {
    const std::int64_t a = v < 0 ? -static_cast<std::int64_t>(v) : v;
    if (a > max_abs) max_abs = a;
  }
  return max_abs;
}

}  // namespace

QuantizedActivations quantize_image(const tensor::Tensor& image, int bits) {
  const auto& s = image.shape();
  tensor::Shape chw;
  const float* data = image.data();
  FLIGHTNN_CHECK(s.rank() == 3 || (s.rank() == 4 && s[0] == 1),
                 "quantize_image: expected [C,H,W] or [1,C,H,W], got ",
                 s.to_string());
  if (s.rank() == 3) {
    chw = s;
  } else {
    chw = tensor::Shape{s[1], s[2], s[3]};
  }
  FLIGHTNN_CHECK(bits >= 2 && bits <= 16, "quantize_image: bits ", bits,
                 " outside [2, 16]");

  const std::int64_t q_max = (1LL << (bits - 1)) - 1;
  const float abs_max = image.abs_max();
  int scale_exp = 0;
  if (abs_max > 0.0F) {
    scale_exp = static_cast<int>(
        std::ceil(std::log2(abs_max / static_cast<float>(q_max))));
  }
  const float scale = std::ldexp(1.0F, scale_exp);

  QuantizedActivations out;
  out.scale_exp = scale_exp;
  out.shape = chw;
  out.values.resize(static_cast<std::size_t>(chw.numel()));
  for (std::int64_t i = 0; i < chw.numel(); ++i) {
    auto q = static_cast<std::int64_t>(std::nearbyint(data[i] / scale));
    q = std::min(q_max, std::max(-q_max, q));
    out.values[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(q);
  }
  return out;
}

QuantizedActivations quantize_tensor(const tensor::Tensor& x, int bits) {
  FLIGHTNN_CHECK(bits >= 2 && bits <= 16, "quantize_tensor: bits ", bits,
                 " outside [2, 16]");
  const std::int64_t q_max = (1LL << (bits - 1)) - 1;
  const float abs_max = x.abs_max();
  int scale_exp = 0;
  if (abs_max > 0.0F) {
    scale_exp = static_cast<int>(
        std::ceil(std::log2(abs_max / static_cast<float>(q_max))));
  }
  const float scale = std::ldexp(1.0F, scale_exp);

  QuantizedActivations out;
  out.scale_exp = scale_exp;
  out.shape = x.shape();
  out.values.resize(static_cast<std::size_t>(x.numel()));
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    auto q = static_cast<std::int64_t>(std::nearbyint(x[i] / scale));
    q = std::min(q_max, std::max(-q_max, q));
    out.values[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(q);
  }
  return out;
}

tensor::Tensor dequantize(const QuantizedActivations& activations) {
  FLIGHTNN_CHECK(static_cast<std::int64_t>(activations.values.size()) ==
                     activations.shape.numel(),
                 "dequantize: ", activations.values.size(),
                 " values do not fill shape ", activations.shape.to_string());
  tensor::Tensor out(activations.shape);
  const float scale = std::ldexp(1.0F, activations.scale_exp);
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    out[i] = static_cast<float>(activations.values[static_cast<std::size_t>(i)]) * scale;
  }
  return out;
}

ShiftConv2d::ShiftConv2d(const tensor::Tensor& quantized_weights, int k_max,
                         const quant::Pow2Config& config, std::int64_t stride,
                         std::int64_t padding, tensor::Tensor bias)
    : decomposition_(core::decompose_to_lightnn1(quantized_weights, k_max, config)),
      config_(config),
      stride_(stride),
      padding_(padding),
      bias_(std::move(bias)) {
  const auto& s = quantized_weights.shape();
  FLIGHTNN_CHECK(s.rank() == 4, "ShiftConv2d: OIHW weights required, got ",
                 s.to_string());
  out_channels_ = s[0];
  in_channels_ = s[1];
  kernel_ = s[2];
  FLIGHTNN_CHECK(s[2] == s[3], "ShiftConv2d: square kernels only, got ",
                 s.to_string());
  FLIGHTNN_CHECK(stride_ > 0 && padding_ >= 0, "ShiftConv2d: bad stride ",
                 stride_, " / padding ", padding_);
  FLIGHTNN_CHECK(bias_.empty() || bias_.numel() == out_channels_,
                 "ShiftConv2d: bias size ", bias_.numel(),
                 " does not match out channels ", out_channels_);
  validate_decomposition(decomposition_, out_channels_,
                         in_channels_ * kernel_ * kernel_, config_,
                         "ShiftConv2d");
  index_terms_by_filter(decomposition_, config_, out_channels_, filter_terms_,
                        filter_gain_);
}

tensor::Tensor ShiftConv2d::run(const QuantizedActivations& input,
                                OpCounts* counts) const {
  FLIGHTNN_CHECK(input.shape.rank() == 3 && input.shape[0] == in_channels_,
                 "ShiftConv2d::run: expected [", in_channels_,
                 ", H, W] input, got ", input.shape.to_string());
  FLIGHTNN_CHECK(static_cast<std::int64_t>(input.values.size()) ==
                     input.shape.numel(),
                 "ShiftConv2d::run: ", input.values.size(),
                 " values do not fill shape ", input.shape.to_string());
  const std::int64_t in_h = input.shape[1], in_w = input.shape[2];
  const tensor::ConvGeometry geom{in_channels_, in_h, in_w, kernel_, stride_,
                                  padding_};
  const std::int64_t out_h = geom.out_h(), out_w = geom.out_w();

  // Hoisted overflow contract: |accumulator| <= max|q| * filter_gain, so
  // one check per filter replaces the per-element DCHECK the inner loop
  // used to carry. (The bound sums absolute contributions, so it also
  // covers every intermediate partial sum.)
#if FLIGHTNN_DCHECKS_ENABLED
  {
    const std::int64_t max_q = max_abs_value(input.values);
    for (std::int64_t o = 0; o < out_channels_; ++o) {
      const std::int64_t gain = filter_gain_[static_cast<std::size_t>(o)];
      FLIGHTNN_DCHECK(gain == 0 ||
                          (gain < kAccumulatorGuard &&
                           max_q <= (kAccumulatorGuard - 1) / gain),
                      "ShiftConv2d::run: accumulator could overflow at "
                      "filter ", o, " (gain ", gain, ", max |q| ", max_q, ")");
    }
  }
#endif

  const std::int64_t out_hw = out_h * out_w;
  const float scale = std::ldexp(1.0F, input.scale_exp + config_.e_min);
  tensor::Tensor output(tensor::Shape{out_channels_, out_h, out_w});
  std::atomic<std::int64_t> total_shifts{0};
  std::atomic<std::int64_t> total_adds{0};

  // Parallel across output-filter blocks: each filter's accumulator plane is
  // owned by exactly one chunk, and its terms run in decomposition order, so
  // the integer result (and therefore the dequantized float plane) is
  // bit-identical to serial execution at any thread count.
  runtime::parallel_for(0, out_channels_, 1, [&](std::int64_t f_begin,
                                                 std::int64_t f_end) {
    std::vector<std::int64_t> accumulator(static_cast<std::size_t>(out_hw));
    OpCounts local{};
    for (std::int64_t f = f_begin; f < f_end; ++f) {
      // Integer accumulators at scale 2^(input.scale_exp + e_min): each
      // weight term sign * 2^e contributes sign * (q << (e - e_min)), a
      // non-negative left shift since e >= e_min.
      std::fill(accumulator.begin(), accumulator.end(), std::int64_t{0});
      for (const std::size_t t : filter_terms_[static_cast<std::size_t>(f)]) {
        const auto& term = decomposition_.terms[t];
        // Walk the filter elements; each nonzero element is one shifter lane.
        std::int64_t e = 0;
        for (std::int64_t c = 0; c < in_channels_; ++c) {
          const std::int32_t* in_plane = input.values.data() + c * in_h * in_w;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            for (std::int64_t kx = 0; kx < kernel_; ++kx, ++e) {
              const quant::Pow2Term w =
                  term.elements[static_cast<std::size_t>(e)];
              if (w.sign == 0) continue;
              const int shift = static_cast<int>(w.exponent) - config_.e_min;
              FLIGHTNN_DCHECK(shift >= 0 && shift < 62,
                              "ShiftConv2d::run: shift ", shift,
                              " outside the barrel shifter's range");
              for (std::int64_t oy = 0; oy < out_h; ++oy) {
                const std::int64_t iy = oy * stride_ + ky - padding_;
                if (iy < 0 || iy >= in_h) continue;
                for (std::int64_t ox = 0; ox < out_w; ++ox) {
                  const std::int64_t ix = ox * stride_ + kx - padding_;
                  if (ix < 0 || ix >= in_w) continue;
                  const std::int64_t q = in_plane[iy * in_w + ix];
                  accumulator[static_cast<std::size_t>(oy * out_w + ox)] +=
                      (w.sign > 0 ? q : -q) << shift;
                  ++local.shifts;
                  ++local.adds;
                }
              }
            }
          }
        }
      }
      // Dequantize and fold in the float bias.
      const float b = bias_.empty() ? 0.0F : bias_[f];
      float* out_plane = output.data() + f * out_hw;
      for (std::int64_t i = 0; i < out_hw; ++i) {
        out_plane[i] =
            static_cast<float>(accumulator[static_cast<std::size_t>(i)]) *
                scale +
            b;
      }
    }
    total_shifts.fetch_add(local.shifts, std::memory_order_relaxed);
    total_adds.fetch_add(local.adds, std::memory_order_relaxed);
  });

  if (counts != nullptr) {
    counts->shifts += total_shifts.load(std::memory_order_relaxed);
    counts->adds += total_adds.load(std::memory_order_relaxed);
  }
  return output;
}

ShiftLinear::ShiftLinear(const tensor::Tensor& quantized_weights, int k_max,
                         const quant::Pow2Config& config, tensor::Tensor bias)
    : decomposition_(core::decompose_to_lightnn1(quantized_weights, k_max, config)),
      config_(config),
      bias_(std::move(bias)) {
  const auto& s = quantized_weights.shape();
  FLIGHTNN_CHECK(s.rank() == 2, "ShiftLinear: [out, in] weights required, got ",
                 s.to_string());
  out_features_ = s[0];
  in_features_ = s[1];
  FLIGHTNN_CHECK(bias_.empty() || bias_.numel() == out_features_,
                 "ShiftLinear: bias size ", bias_.numel(),
                 " does not match out features ", out_features_);
  validate_decomposition(decomposition_, out_features_, in_features_, config_,
                         "ShiftLinear");
  index_terms_by_filter(decomposition_, config_, out_features_, filter_terms_,
                        filter_gain_);
}

tensor::Tensor ShiftLinear::run(const QuantizedActivations& input,
                                OpCounts* counts) const {
  FLIGHTNN_CHECK(input.shape.numel() == in_features_,
                 "ShiftLinear::run: input numel ", input.shape.numel(),
                 " does not match in features ", in_features_);
  FLIGHTNN_CHECK(static_cast<std::int64_t>(input.values.size()) ==
                     input.shape.numel(),
                 "ShiftLinear::run: ", input.values.size(),
                 " values do not fill shape ", input.shape.to_string());
  // Hoisted overflow contract, as in ShiftConv2d::run.
#if FLIGHTNN_DCHECKS_ENABLED
  {
    const std::int64_t max_q = max_abs_value(input.values);
    for (std::int64_t o = 0; o < out_features_; ++o) {
      const std::int64_t gain = filter_gain_[static_cast<std::size_t>(o)];
      FLIGHTNN_DCHECK(gain == 0 ||
                          (gain < kAccumulatorGuard &&
                           max_q <= (kAccumulatorGuard - 1) / gain),
                      "ShiftLinear::run: accumulator could overflow at "
                      "filter ", o, " (gain ", gain, ", max |q| ", max_q, ")");
    }
  }
#endif

  const float scale = std::ldexp(1.0F, input.scale_exp + config_.e_min);
  tensor::Tensor output(tensor::Shape{out_features_});
  std::atomic<std::int64_t> total_shifts{0};
  std::atomic<std::int64_t> total_adds{0};

  // Parallel across output features; each feature's accumulator is private
  // to one chunk and integer addition has no reduction-order ambiguity, so
  // the result is bit-identical to serial execution.
  runtime::parallel_for(0, out_features_, 1, [&](std::int64_t f_begin,
                                                 std::int64_t f_end) {
    OpCounts local{};
    for (std::int64_t f = f_begin; f < f_end; ++f) {
      std::int64_t filter_acc = 0;
      for (const std::size_t t : filter_terms_[static_cast<std::size_t>(f)]) {
        const auto& term = decomposition_.terms[t];
        std::int64_t acc = 0;
        for (std::int64_t e = 0; e < in_features_; ++e) {
          const quant::Pow2Term w = term.elements[static_cast<std::size_t>(e)];
          if (w.sign == 0) continue;
          const int shift = static_cast<int>(w.exponent) - config_.e_min;
          FLIGHTNN_DCHECK(shift >= 0 && shift < 62, "ShiftLinear::run: shift ",
                          shift, " outside the barrel shifter's range");
          const std::int64_t q = input.values[static_cast<std::size_t>(e)];
          acc += (w.sign > 0 ? q : -q) << shift;
          ++local.shifts;
          ++local.adds;
        }
        filter_acc += acc;
      }
      const float b = bias_.empty() ? 0.0F : bias_[f];
      output[f] = static_cast<float>(filter_acc) * scale + b;
    }
    total_shifts.fetch_add(local.shifts, std::memory_order_relaxed);
    total_adds.fetch_add(local.adds, std::memory_order_relaxed);
  });

  if (counts != nullptr) {
    counts->shifts += total_shifts.load(std::memory_order_relaxed);
    counts->adds += total_adds.load(std::memory_order_relaxed);
  }
  return output;
}

tensor::Tensor reference_conv(const tensor::Tensor& weights,
                              const tensor::Tensor& image, std::int64_t stride,
                              std::int64_t padding, const tensor::Tensor& bias) {
  const auto& ws = weights.shape();
  const auto& is = image.shape();
  FLIGHTNN_CHECK(ws.rank() == 4 && is.rank() == 3 && ws[1] == is[0] &&
                     ws[2] == ws[3],
                 "reference_conv: bad shapes, weights ", ws.to_string(),
                 " image ", is.to_string());
  const std::int64_t out_ch = ws[0], in_ch = ws[1], kernel = ws[2];
  const std::int64_t in_h = is[1], in_w = is[2];
  const tensor::ConvGeometry geom{in_ch, in_h, in_w, kernel, stride, padding};
  const std::int64_t out_h = geom.out_h(), out_w = geom.out_w();

  tensor::Tensor output(tensor::Shape{out_ch, out_h, out_w});
  for (std::int64_t o = 0; o < out_ch; ++o) {
    const float b = bias.empty() ? 0.0F : bias[o];
    for (std::int64_t oy = 0; oy < out_h; ++oy) {
      for (std::int64_t ox = 0; ox < out_w; ++ox) {
        double acc = b;
        for (std::int64_t c = 0; c < in_ch; ++c) {
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            const std::int64_t iy = oy * stride + ky - padding;
            if (iy < 0 || iy >= in_h) continue;
            for (std::int64_t kx = 0; kx < kernel; ++kx) {
              const std::int64_t ix = ox * stride + kx - padding;
              if (ix < 0 || ix >= in_w) continue;
              acc += static_cast<double>(
                         weights[((o * in_ch + c) * kernel + ky) * kernel + kx]) *
                     image[(c * in_h + iy) * in_w + ix];
            }
          }
        }
        output[(o * out_h + oy) * out_w + ox] = static_cast<float>(acc);
      }
    }
  }
  return output;
}

}  // namespace flightnn::inference
