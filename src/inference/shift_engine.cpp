#include "inference/shift_engine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <type_traits>

#include "inference/shift_kernels.hpp"
#include "runtime/scratch_arena.hpp"
#include "runtime/thread_pool.hpp"
#include "support/annotations.hpp"
#include "support/check.hpp"

namespace flightnn::inference {

namespace {

// Accumulators hold values scaled by 2^(scale_exp + e_min); anything nearing
// the int64 ceiling means a shift went wrong, not a big activation.
constexpr std::int64_t kAccumulatorGuard = kShiftAccumulatorGuard;

// Shared engine-construction invariants: the decomposition's terms must
// address real filters, carry full-size element vectors, and hold exponents
// inside the barrel shifter's budget. A violation here means the quantizer
// and the engine disagree about the datapath.
void validate_decomposition(const core::Decomposition& decomposition,
                            std::int64_t filters, std::int64_t elements,
                            const quant::Pow2Config& config, const char* what) {
  FLIGHTNN_CHECK(
      static_cast<std::int64_t>(decomposition.filter_k.size()) == filters, what,
      ": decomposition covers ", decomposition.filter_k.size(),
      " filters, weights have ", filters);
  FLIGHTNN_CHECK(decomposition.elements_per_filter == elements, what,
                 ": decomposition elements per filter ",
                 decomposition.elements_per_filter, ", weights have ", elements);
  for (const auto& term : decomposition.terms) {
    FLIGHTNN_CHECK(term.filter >= 0 && term.filter < filters, what,
                   ": term filter index ", term.filter, " outside [0, ",
                   filters, ")");
    FLIGHTNN_CHECK(
        static_cast<std::int64_t>(term.elements.size()) == elements, what,
        ": term has ", term.elements.size(), " elements, expected ", elements);
    for (const auto& element : term.elements) {
      if (element.sign == 0) continue;
      FLIGHTNN_CHECK(element.exponent >= config.e_min &&
                         element.exponent <= config.e_max,
                     what, ": term exponent ",
                     static_cast<int>(element.exponent), " outside [",
                     config.e_min, ", ", config.e_max, "]");
    }
  }
}

// Group term indices by output filter (preserving decomposition order, so a
// filter's terms accumulate in the same order serial execution used) and
// precompute each filter's worst-case accumulator gain: the sum of 2^shift
// over its nonzero weight elements, saturated at the guard. With max|q| the
// largest input magnitude, |accumulator| never exceeds max|q| * gain, which
// is what lets the run paths hoist the overflow check out of the inner loop.
void index_terms_by_filter(const core::Decomposition& decomposition,
                           const quant::Pow2Config& config,
                           std::int64_t filters,
                           std::vector<std::vector<std::size_t>>& filter_terms,
                           std::vector<std::int64_t>& filter_gain) {
  filter_terms.assign(static_cast<std::size_t>(filters), {});
  filter_gain.assign(static_cast<std::size_t>(filters), 0);
  for (std::size_t t = 0; t < decomposition.terms.size(); ++t) {
    const auto& term = decomposition.terms[t];
    const auto f = static_cast<std::size_t>(term.filter);
    filter_terms[f].push_back(t);
    for (const auto& element : term.elements) {
      if (element.sign == 0) continue;
      const int shift = static_cast<int>(element.exponent) - config.e_min;
      const std::int64_t gain = std::int64_t{1} << shift;
      filter_gain[f] = filter_gain[f] > kAccumulatorGuard - gain
                           ? kAccumulatorGuard
                           : filter_gain[f] + gain;
    }
  }
}

// Largest input magnitude (fallback when QuantizedActivations::max_abs was
// not populated at quantize time).
std::int64_t max_abs_value(const std::vector<std::int32_t>& values) {
  std::int64_t max_abs = 0;
  for (const std::int32_t v : values) {
    const std::int64_t a = v < 0 ? -static_cast<std::int64_t>(v) : v;
    if (a > max_abs) max_abs = a;
  }
  return max_abs;
}

// Hoisted overflow contract shared by all run paths: |accumulator| <=
// max|q| * filter_gain, so one check per filter replaces the per-element
// DCHECK the inner loop would otherwise carry. (The bound sums absolute
// contributions, so it also covers every intermediate partial sum.)
#if FLIGHTNN_DCHECKS_ENABLED
template <typename GainArray>  // std::vector or PlanArray of int64
void dcheck_no_overflow(const QuantizedActivations& input,
                        const GainArray& filter_gain, const char* what) {
  const std::int64_t max_q = input.abs_max();
  for (std::size_t o = 0; o < filter_gain.size(); ++o) {
    const std::int64_t gain = filter_gain[o];
    FLIGHTNN_DCHECK(gain == 0 || (gain < kAccumulatorGuard &&
                                  max_q <= (kAccumulatorGuard - 1) / gain),
                    what, ": accumulator could overflow at filter ", o,
                    " (gain ", gain, ", max |q| ", max_q, ")");
  }
}
#else
template <typename GainArray>
void dcheck_no_overflow(const QuantizedActivations&, const GainArray&,
                        const char*) {}
#endif

// Structural invariants shared by the plan-adopting constructors: stream
// sizes consistent, filter_begin a monotone prefix over `filters`. The
// artifact loader has already validated every entry in depth (bounds, sign,
// shift range, recomputed gains); this re-checks only what is cheap, so a
// corrupted adoption still fails fast instead of indexing wild.
void check_adopted_plan(const ShiftPlan& plan, std::int64_t filters,
                        bool conv, const char* what) {
  FLIGHTNN_CHECK(plan.filters == filters, what, ": plan covers ", plan.filters,
                 " filters, spec says ", filters);
  FLIGHTNN_CHECK(static_cast<std::int64_t>(plan.filter_begin.size()) ==
                     filters + 1,
                 what, ": filter_begin has ", plan.filter_begin.size(),
                 " entries, expected ", filters + 1);
  FLIGHTNN_CHECK(plan.filter_begin.front() == 0 &&
                     plan.filter_begin.back() == plan.entries(),
                 what, ": filter_begin does not span the entry stream");
  FLIGHTNN_CHECK(static_cast<std::int64_t>(plan.filter_gain.size()) == filters,
                 what, ": filter_gain has ", plan.filter_gain.size(),
                 " entries, expected ", filters);
  const auto entries = static_cast<std::size_t>(plan.entries());
  FLIGHTNN_CHECK(plan.shift.size() == entries && plan.sign.size() == entries,
                 what, ": shift/sign streams do not match the entry count");
  if (conv) {
    FLIGHTNN_CHECK(plan.channel.size() == entries &&
                       plan.ky.size() == entries && plan.kx.size() == entries,
                   what, ": conv plan needs channel/ky/kx streams of ",
                   entries, " entries");
  } else {
    FLIGHTNN_CHECK(plan.channel.empty() && plan.ky.empty() && plan.kx.empty(),
                   what, ": linear plan must not carry spatial streams");
  }
}

// Integer division helpers for the interior/valid-range arithmetic; both
// require b > 0 and round the true quotient toward -inf / +inf.
std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  return a >= 0 ? a / b : -((-a + b - 1) / b);
}
std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return a > 0 ? (a + b - 1) / b : a / b;
}

// Number of output positions o in [0, out_n) whose input index
// o*stride + k - padding lands inside [0, in_n). This is the closed form of
// the guarded path's per-position bounds check, used for the analytic op
// census (one accumulate per valid position per entry).
std::int64_t valid_positions(std::int64_t k, std::int64_t out_n,
                             std::int64_t in_n, std::int64_t stride,
                             std::int64_t padding) {
  const std::int64_t lo = std::max<std::int64_t>(0, ceil_div(padding - k, stride));
  const std::int64_t hi =
      std::min(out_n - 1, floor_div(in_n - 1 + padding - k, stride));
  return hi >= lo ? hi - lo + 1 : 0;
}

// Geometry bundle for the conv integer kernel: everything the inner loops
// need, precomputed by the caller so the kernel itself stays integer-only.
struct ConvKernelGeom {
  std::int64_t in_h = 0, in_w = 0, in_hw = 0;
  std::int64_t out_h = 0, out_w = 0, out_hw = 0;
  std::int64_t stride = 1, padding = 0;
  // Interior rectangle: rows [oy_lo, oy_hi) x cols [ox_lo, ox_hi) read
  // in-bounds for every kernel tap; everything outside takes the guarded
  // border path.
  std::int64_t oy_lo = 0, oy_hi = 0, ox_lo = 0, ox_hi = 0;
};

// Border half of the conv kernel: guarded accumulation of every output
// position outside the interior rectangle, for all of filter f's entries.
// Shared by the scalar path (via conv_accumulate_filter) and the vector
// path (which handles only the interior); keeping one copy of the guard
// logic keeps the two paths trivially in agreement. Accumulates on top of
// whatever is already in `acc` -- interior-then-border versus the old
// per-entry interleaving is a pure regrouping of exact integer adds, hence
// bit-identical (DESIGN.md §9).
template <typename AccT>
FLIGHTNN_HOT FLIGHTNN_INT_KERNEL void conv_border_filter(
    const ShiftPlan& plan, std::int64_t f, const ConvKernelGeom& g,
    const std::int32_t* in_data, AccT* acc) {
  const std::int64_t fb = plan.filter_begin[static_cast<std::size_t>(f)];
  const std::int64_t fe = plan.filter_begin[static_cast<std::size_t>(f) + 1];
  for (std::int64_t e = fb; e < fe; ++e) {
    const auto ei = static_cast<std::size_t>(e);
    const AccT m =
        static_cast<AccT>(plan.sign[ei]) * (AccT{1} << plan.shift[ei]);
    const std::int64_t kyv = plan.ky[ei], kxv = plan.kx[ei];
    const std::int64_t plane =
        static_cast<std::int64_t>(plan.channel[ei]) * g.in_hw;
    const auto border_span = [&](std::int64_t oy, std::int64_t x0,
                                 std::int64_t x1) {
      const std::int64_t iy = oy * g.stride + kyv - g.padding;
      if (iy < 0 || iy >= g.in_h) return;
      const std::int64_t row = plane + iy * g.in_w;
      AccT* arow = acc + oy * g.out_w;
      for (std::int64_t ox = x0; ox < x1; ++ox) {
        const std::int64_t ix = ox * g.stride + kxv - g.padding;
        if (ix < 0 || ix >= g.in_w) continue;
        arow[ox] += static_cast<AccT>(in_data[row + ix]) * m;
      }
    };
    for (std::int64_t oy = 0; oy < g.oy_lo; ++oy) border_span(oy, 0, g.out_w);
    for (std::int64_t oy = g.oy_hi; oy < g.out_h; ++oy) {
      border_span(oy, 0, g.out_w);
    }
    for (std::int64_t oy = g.oy_lo; oy < g.oy_hi; ++oy) {
      border_span(oy, 0, g.ox_lo);
      border_span(oy, g.ox_hi, g.out_w);
    }
  }
}

// Integer-only accumulation of one conv output plane (scalar tier). Each
// filter's accumulator plane is owned by exactly one caller chunk. The entry
// walk adds the same multiset of integer addends the reference term-walk
// adds (the multiplier q * sign*2^shift equals the shift-and-signed-add
// exactly -- no overflow by the gain bound), and integer addition without
// overflow is associative and commutative, so the integer plane is
// bit-identical to run_reference at any accumulator width and thread count.
// Dequantization (the only float arithmetic) stays in the caller, after
// this returns.
template <typename AccT>
FLIGHTNN_HOT FLIGHTNN_INT_KERNEL void conv_accumulate_filter(
    const ShiftPlan& plan, std::int64_t f, const ConvKernelGeom& g,
    const std::int32_t* in_data, const std::int64_t* off, AccT* acc) {
  // Integer accumulators at scale 2^(input.scale_exp + e_min): each weight
  // term sign * 2^e contributes sign * (q << (e - e_min)), a non-negative
  // left shift since e >= e_min.
  std::fill(acc, acc + g.out_hw, AccT{0});
  const std::int64_t fb = plan.filter_begin[static_cast<std::size_t>(f)];
  const std::int64_t fe = plan.filter_begin[static_cast<std::size_t>(f) + 1];
  for (std::int64_t e = fb; e < fe; ++e) {
    const auto ei = static_cast<std::size_t>(e);
    const AccT m =
        static_cast<AccT>(plan.sign[ei]) * (AccT{1} << plan.shift[ei]);
    // Interior: every (oy, ox) in the rectangle reads in-bounds, so the
    // inner loop is a straight multiply-accumulate; the stride-1 form is
    // contiguous and vectorizes.
    for (std::int64_t oy = g.oy_lo; oy < g.oy_hi; ++oy) {
      const std::int64_t rbase =
          off[e] + (oy * g.stride - g.padding) * g.in_w - g.padding;
      AccT* arow = acc + oy * g.out_w;
      if (g.stride == 1) {
        const std::int32_t* irow = in_data + rbase + g.ox_lo;
        AccT* a = arow + g.ox_lo;
        const std::int64_t n = g.ox_hi - g.ox_lo;
        for (std::int64_t i = 0; i < n; ++i) {
          a[i] += static_cast<AccT>(irow[i]) * m;
        }
      } else {
        for (std::int64_t ox = g.ox_lo; ox < g.ox_hi; ++ox) {
          arow[ox] += static_cast<AccT>(in_data[rbase + ox * g.stride]) * m;
        }
      }
    }
  }
  // Border: guarded path for rows/columns whose kernel tap may fall outside
  // the input.
  conv_border_filter(plan, f, g, in_data, acc);
}

// Integer-only dot product of one linear output feature against the plan's
// entry stream. Same regrouping argument as the conv kernel: bit-identical
// to the reference term-walk; dequantization stays in the caller.
FLIGHTNN_HOT FLIGHTNN_INT_KERNEL std::int64_t shift_dot(
    const ShiftPlan& plan, std::int64_t f, const std::int32_t* in_data) {
  const std::int64_t fb = plan.filter_begin[static_cast<std::size_t>(f)];
  const std::int64_t fe = plan.filter_begin[static_cast<std::size_t>(f) + 1];
  std::int64_t acc = 0;
  for (std::int64_t e = fb; e < fe; ++e) {
    const auto ei = static_cast<std::size_t>(e);
    // q * sign*2^shift equals the shift-and-signed-add exactly (no overflow
    // by the gain bound) and keeps the loop branch-free.
    const std::int64_t m = static_cast<std::int64_t>(plan.sign[ei]) *
                           (std::int64_t{1} << plan.shift[ei]);
    acc += static_cast<std::int64_t>(in_data[plan.element[ei]]) * m;
  }
  return acc;
}

// Largest per-filter accumulator gain of a plan (0 for an empty plan).
std::int64_t plan_max_gain(const ShiftPlan& plan) {
  std::int64_t max_gain = 0;
  for (const std::int64_t g : plan.filter_gain) {
    max_gain = std::max(max_gain, g);
  }
  return max_gain;
}

// Narrow (int32) accumulation bound: |any partial sum| <= max|q| * gain (the
// gain sums absolute contributions), so when the product fits int32 the
// whole accumulation can run in 32-bit lanes -- scalar or SIMD -- without
// any value differing from the int64 computation. The per-entry multiplier
// sign * 2^shift also fits (it is one of the gain's addends).
constexpr std::int64_t kNarrowMax = 0x7fffffff;
bool narrow_bound_ok(std::int64_t max_gain, std::int64_t amax) {
  return max_gain <= kNarrowMax &&
         (max_gain == 0 || amax <= kNarrowMax / max_gain);
}

// Shared core of the quantize functions: pow2 scale from the abs-max, values
// rounded-to-nearest and clamped symmetric, max|q| cached on the way.
void quantize_values_into(const float* data, std::int64_t n, int bits,
                          float abs_max, QuantizedActivations& out) {
  const std::int64_t q_max = (1LL << (bits - 1)) - 1;
  int scale_exp = 0;
  if (abs_max > 0.0F) {
    scale_exp = static_cast<int>(
        std::ceil(std::log2(abs_max / static_cast<float>(q_max))));
  }
  // The scale is a power of two, so dividing by it and multiplying by its
  // reciprocal are the same correctly-rounded value -- use the multiply.
  const float inv_scale = std::ldexp(1.0F, -scale_exp);
  // Round-to-nearest-even via the 1.5*2^23 constant: exact for |v| < 2^22,
  // guaranteed here because the scale covers the abs-max (|v| <= q_max <
  // 2^15). Identical results to std::nearbyint in the default rounding
  // mode, but branch-free, libm-free and vectorizable.
  constexpr float kRound = 12582912.0F;  // 1.5 * 2^23
  const auto q_lim = static_cast<std::int32_t>(q_max);

  out.scale_exp = scale_exp;
  out.values.resize(static_cast<std::size_t>(n));
  std::int32_t max_abs_q = 0;
  if (scale_exp >= -126) {
    for (std::int64_t i = 0; i < n; ++i) {
      const float v = data[i] * inv_scale;
      auto q = static_cast<std::int32_t>((v + kRound) - kRound);
      q = std::min(q_lim, std::max(-q_lim, q));
      out.values[static_cast<std::size_t>(i)] = q;
      max_abs_q = std::max(max_abs_q, q < 0 ? -q : q);
    }
  } else {
    // Pathologically tiny abs-max: 2^-scale_exp overflows float, so form the
    // quotient in double (exact: 24-bit mantissa times a power of two).
    const double inv = std::ldexp(1.0, -scale_exp);
    for (std::int64_t i = 0; i < n; ++i) {
      const auto v = static_cast<float>(static_cast<double>(data[i]) * inv);
      auto q = static_cast<std::int32_t>((v + kRound) - kRound);
      q = std::min(q_lim, std::max(-q_lim, q));
      out.values[static_cast<std::size_t>(i)] = q;
      max_abs_q = std::max(max_abs_q, q < 0 ? -q : q);
    }
  }
  out.max_abs = max_abs_q;
}

}  // namespace

std::int64_t QuantizedActivations::abs_max() const {
  return max_abs >= 0 ? max_abs : max_abs_value(values);
}

void quantize_image_into(const tensor::Tensor& image, int bits,
                         QuantizedActivations& out) {
  const auto& s = image.shape();
  FLIGHTNN_CHECK(s.rank() == 3 || (s.rank() == 4 && s[0] == 1),
                 "quantize_image: expected [C,H,W] or [1,C,H,W], got ",
                 s.to_string());
  FLIGHTNN_CHECK(bits >= 2 && bits <= 16, "quantize_image: bits ", bits,
                 " outside [2, 16]");
  out.shape = s.rank() == 3 ? s : tensor::Shape{s[1], s[2], s[3]};
  quantize_values_into(image.data(), image.numel(), bits, image.abs_max(), out);
}

void quantize_tensor_into(const tensor::Tensor& x, int bits,
                          QuantizedActivations& out) {
  FLIGHTNN_CHECK(bits >= 2 && bits <= 16, "quantize_tensor: bits ", bits,
                 " outside [2, 16]");
  out.shape = x.shape();
  quantize_values_into(x.data(), x.numel(), bits, x.abs_max(), out);
}

tensor::Tensor fake_quantize(const tensor::Tensor& x, int bits) {
  FLIGHTNN_CHECK(bits >= 2 && bits <= 16, "fake_quantize: bits ", bits,
                 " outside [2, 16]");
  const std::int64_t q_max = (1LL << (bits - 1)) - 1;
  const float abs_max = x.abs_max();
  int scale_exp = 0;
  if (abs_max > 0.0F) {
    scale_exp = static_cast<int>(
        std::ceil(std::log2(abs_max / static_cast<float>(q_max))));
  }
  if (scale_exp < -126) {
    // Pathologically tiny abs-max; take the exact two-step path.
    QuantizedActivations q;
    quantize_values_into(x.data(), x.numel(), bits, abs_max, q);
    q.shape = x.shape();
    return dequantize(q);
  }
  const float inv_scale = std::ldexp(1.0F, -scale_exp);
  const float scale = std::ldexp(1.0F, scale_exp);
  constexpr float kRound = 12582912.0F;  // 1.5 * 2^23, round-to-nearest-even
  const auto lim = static_cast<float>(q_max);
  tensor::Tensor out(x.shape());
  const float* in = x.data();
  float* o = out.data();
  const std::int64_t n = x.numel();
  // The rounded value is integral and |q| <= q_max < 2^15, so the float
  // clamp and the rescale q * 2^scale_exp are both exact -- element-wise
  // identical to quantize-then-dequantize.
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = in[i] * inv_scale;
    float r = (v + kRound) - kRound;
    r = std::min(lim, std::max(-lim, r));
    o[i] = r * scale;
  }
  return out;
}

QuantizedActivations quantize_image(const tensor::Tensor& image, int bits) {
  QuantizedActivations out;
  quantize_image_into(image, bits, out);
  return out;
}

QuantizedActivations quantize_tensor(const tensor::Tensor& x, int bits) {
  QuantizedActivations out;
  quantize_tensor_into(x, bits, out);
  return out;
}

tensor::Tensor dequantize(const QuantizedActivations& activations) {
  FLIGHTNN_CHECK(static_cast<std::int64_t>(activations.values.size()) ==
                     activations.shape.numel(),
                 "dequantize: ", activations.values.size(),
                 " values do not fill shape ", activations.shape.to_string());
  tensor::Tensor out(activations.shape);
  const float scale = std::ldexp(1.0F, activations.scale_exp);
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    out[i] = static_cast<float>(activations.values[static_cast<std::size_t>(i)]) * scale;
  }
  return out;
}

ShiftConv2d::ShiftConv2d(const tensor::Tensor& quantized_weights, int k_max,
                         const quant::Pow2Config& config, std::int64_t stride,
                         std::int64_t padding, tensor::Tensor bias)
    : decomposition_(core::decompose_to_lightnn1(quantized_weights, k_max, config)),
      config_(config),
      stride_(stride),
      padding_(padding),
      bias_(std::move(bias)) {
  const auto& s = quantized_weights.shape();
  FLIGHTNN_CHECK(s.rank() == 4, "ShiftConv2d: OIHW weights required, got ",
                 s.to_string());
  out_channels_ = s[0];
  in_channels_ = s[1];
  kernel_ = s[2];
  FLIGHTNN_CHECK(s[2] == s[3], "ShiftConv2d: square kernels only, got ",
                 s.to_string());
  FLIGHTNN_CHECK(stride_ > 0 && padding_ >= 0, "ShiftConv2d: bad stride ",
                 stride_, " / padding ", padding_);
  FLIGHTNN_CHECK(bias_.empty() || bias_.numel() == out_channels_,
                 "ShiftConv2d: bias size ", bias_.numel(),
                 " does not match out channels ", out_channels_);
  validate_decomposition(decomposition_, out_channels_,
                         in_channels_ * kernel_ * kernel_, config_,
                         "ShiftConv2d");
  plan_ = ShiftPlan::compile_conv(decomposition_, config_, in_channels_,
                                  kernel_);
  index_terms_by_filter(decomposition_, config_, out_channels_, filter_terms_,
                        filter_gain_);
  term_count_ = decomposition_.term_count();
  has_reference_ = true;
}

ShiftConv2d::ShiftConv2d(ShiftPlan plan, const ShiftConvSpec& spec,
                         const quant::Pow2Config& config, tensor::Tensor bias)
    : config_(config),
      out_channels_(spec.out_channels),
      in_channels_(spec.in_channels),
      kernel_(spec.kernel),
      stride_(spec.stride),
      padding_(spec.padding),
      term_count_(spec.term_count),
      bias_(std::move(bias)),
      plan_(std::move(plan)) {
  FLIGHTNN_CHECK(out_channels_ > 0 && in_channels_ > 0 && kernel_ > 0,
                 "ShiftConv2d: bad adopted geometry [", out_channels_, ", ",
                 in_channels_, ", ", kernel_, "]");
  FLIGHTNN_CHECK(stride_ > 0 && padding_ >= 0, "ShiftConv2d: bad stride ",
                 stride_, " / padding ", padding_);
  FLIGHTNN_CHECK(bias_.empty() || bias_.numel() == out_channels_,
                 "ShiftConv2d: bias size ", bias_.numel(),
                 " does not match out channels ", out_channels_);
  check_adopted_plan(plan_, out_channels_, /*conv=*/true, "ShiftConv2d");
  // In-loader repack for the vector tier: the adopted core streams stay
  // zero-copy views into the artifact mapping; only the derived mult stream
  // is materialized here (idempotent if the plan already carries it).
  plan_.build_vector_streams();
}

const std::vector<int>& ShiftConv2d::filter_k() const {
  FLIGHTNN_CHECK(has_reference_,
                 "ShiftConv2d::filter_k: engine was adopted from a compiled "
                 "plan; the decomposition is gone");
  return decomposition_.filter_k;
}

FLIGHTNN_HOT FLIGHTNN_API_ENTRY tensor::Tensor ShiftConv2d::run(
    const QuantizedActivations& input, OpCounts* counts,
    const runtime::PlanContext* ctx) const {
  FLIGHTNN_CHECK(input.shape.rank() == 3 && input.shape[0] == in_channels_,
                 "ShiftConv2d::run: expected [", in_channels_,
                 ", H, W] input, got ", input.shape.to_string());
  FLIGHTNN_CHECK(static_cast<std::int64_t>(input.values.size()) ==
                     input.shape.numel(),
                 "ShiftConv2d::run: ", input.values.size(),
                 " values do not fill shape ", input.shape.to_string());
  const std::int64_t in_h = input.shape[1], in_w = input.shape[2];
  const tensor::ConvGeometry geom{in_channels_, in_h, in_w, kernel_, stride_,
                                  padding_};
  const std::int64_t out_h = geom.out_h(), out_w = geom.out_w();
  const std::int64_t out_hw = out_h * out_w;
  const std::int64_t in_hw = in_h * in_w;

  dcheck_no_overflow(input, plan_.filter_gain, "ShiftConv2d::run");

  // Interior region: output rows/cols whose full kernel support lands inside
  // the input for every (ky, kx), so the hot loop needs no bounds checks.
  // Rows below oy_lo or at/above oy_hi (and the column fringes of interior
  // rows) take the guarded border path.
  const std::int64_t oy_lo = std::min(out_h, ceil_div(padding_, stride_));
  const std::int64_t ty = in_h + padding_ - kernel_;
  const std::int64_t oy_hi =
      ty < 0 ? oy_lo : std::max(oy_lo, std::min(out_h, ty / stride_ + 1));
  const std::int64_t ox_lo = std::min(out_w, ceil_div(padding_, stride_));
  const std::int64_t tx = in_w + padding_ - kernel_;
  const std::int64_t ox_hi =
      tx < 0 ? ox_lo : std::max(ox_lo, std::min(out_w, tx / stride_ + 1));

  // Per-entry input offsets for this geometry (channel plane + kernel tap),
  // built once into the caller's arena. Workers helping the parallel region
  // read it through a raw pointer; it stays valid because the caller blocks
  // inside parallel_for and slots are never shared between live kernels.
  const std::int64_t n_entries = plan_.entries();
  std::int64_t* offsets = runtime::ScratchArena::current().i64p(
      ctx, runtime::Scratch::kConvOffsets, static_cast<std::size_t>(n_entries));
  for (std::int64_t e = 0; e < n_entries; ++e) {
    const auto ei = static_cast<std::size_t>(e);
    offsets[static_cast<std::size_t>(e)] =
        static_cast<std::int64_t>(plan_.channel[ei]) * in_hw +
        static_cast<std::int64_t>(plan_.ky[ei]) * in_w + plan_.kx[ei];
  }
  const std::int64_t* off = offsets;
  const std::int32_t* in_data = input.values.data();
  const float scale = std::ldexp(1.0F, input.scale_exp + config_.e_min);
  tensor::Tensor output(tensor::Shape{out_channels_, out_h, out_w});

  // Accumulator width selection (narrow_bound_ok above). With 8-bit
  // activations and the default exponent range the int32 path is taken for
  // any realistic layer.
  const std::int64_t max_gain = plan_max_gain(plan_);
  const std::int64_t amax = input.abs_max();
  const bool narrow = narrow_bound_ok(max_gain, amax);

  const ConvKernelGeom geom_k{in_h,  in_w,  in_hw, out_h, out_w, out_hw,
                              stride_, padding_, oy_lo, oy_hi, ox_lo, ox_hi};

  // Kernel-tier dispatch (shift_kernels.hpp): the vector tier covers the
  // stride-1 interior through the plan's derived mult stream and leaves the
  // guarded border to the shared scalar conv_border_filter. It requires the
  // narrow bound (int32 lanes) and stride 1 (contiguous output rows);
  // everything else keeps the scalar plan path. Both tiers are bit-identical
  // by the regrouping argument on conv_accumulate_filter.
  const ShiftKernels& kern = active_shift_kernels();
  const bool use_vector = narrow && stride_ == 1 &&
                          kern.tier != KernelTier::kScalar &&
                          plan_.vector_streams_built;
  const ConvInteriorGeom interior{in_w, out_w, padding_,
                                  oy_lo, oy_hi, ox_lo, ox_hi};

  // Dequantize one accumulator plane and fold in the float bias.
  const auto dequant_plane = [&](const auto* acc, std::int64_t f) {
    const float b = bias_.empty() ? 0.0F : bias_[f];
    float* out_plane = output.data() + f * out_hw;
    for (std::int64_t i = 0; i < out_hw; ++i) {
      out_plane[i] = static_cast<float>(acc[i]) * scale + b;
    }
  };

  // One filter block, templated on the accumulator type: the integer kernel
  // (conv_accumulate_filter, bit-identical to run_reference by the
  // regrouping argument on its definition) followed by the float
  // dequantize-and-bias tail.
  const auto filter_block = [&](auto* acc, std::int64_t f_begin,
                                std::int64_t f_end) {
    for (std::int64_t f = f_begin; f < f_end; ++f) {
      conv_accumulate_filter(plan_, f, geom_k, in_data, off, acc);
      dequant_plane(acc, f);
    }
  };

  // Vector-tier filter block: zero the plane, run the dispatched interior
  // kernel over the derived mult stream, then the shared scalar border.
  const auto filter_block_vector = [&](std::int32_t* acc, std::int64_t f_begin,
                                       std::int64_t f_end) {
    for (std::int64_t f = f_begin; f < f_end; ++f) {
      std::fill(acc, acc + out_hw, std::int32_t{0});
      kern.conv_interior_i32(
          in_data, off, plan_.mult.data(),
          plan_.filter_begin[static_cast<std::size_t>(f)],
          plan_.filter_begin[static_cast<std::size_t>(f) + 1], interior, acc);
      conv_border_filter(plan_, f, geom_k, in_data, acc);
      dequant_plane(acc, f);
    }
  };

  // Parallel across output-filter blocks, on the width the bound allows. The
  // cost hint (~1 ns per accumulate, averaged over filters) routes the tiny
  // smoke-scale layers through the serial path: BENCH_shift_engine had
  // threads=4 at 0.94x of serial there before the gate.
  const runtime::CostHint filter_cost{
      static_cast<double>(n_entries) * static_cast<double>(out_hw) /
      static_cast<double>(out_channels_)};
  if (narrow) {
    runtime::parallel_for(0, out_channels_, 1, filter_cost,
                          [&](std::int64_t f_begin, std::int64_t f_end) {
      // Each helper thread fetches from its own thread-local arena; with a
      // plan context every replica serves the same planned extent from its
      // own adopted block.
      std::int32_t* acc_buf = runtime::ScratchArena::current().i32p(
          ctx, runtime::Scratch::kConvAccumulator,
          static_cast<std::size_t>(out_hw));
      if (use_vector) {
        filter_block_vector(acc_buf, f_begin, f_end);
      } else {
        filter_block(acc_buf, f_begin, f_end);
      }
    });
  } else {
    runtime::parallel_for(0, out_channels_, 1, filter_cost,
                          [&](std::int64_t f_begin, std::int64_t f_end) {
      std::int64_t* acc_buf = runtime::ScratchArena::current().i64p(
          ctx, runtime::Scratch::kConvAccumulator,
          static_cast<std::size_t>(out_hw));
      filter_block(acc_buf, f_begin, f_end);
    });
  }

  if (counts != nullptr) {
    // Analytic census: each entry accumulates once per output position whose
    // tap is in-bounds, which is vy(ky) * vx(kx). Matches the per-accumulate
    // counting of run_reference exactly.
    std::int64_t total = 0;
    for (std::int64_t e = 0; e < n_entries; ++e) {
      const auto ei = static_cast<std::size_t>(e);
      total += valid_positions(plan_.ky[ei], out_h, in_h, stride_, padding_) *
               valid_positions(plan_.kx[ei], out_w, in_w, stride_, padding_);
    }
    counts->shifts += total;
    counts->adds += total;
  }
  return output;
}

tensor::Tensor ShiftConv2d::run_reference(const QuantizedActivations& input,
                                          OpCounts* counts) const {
  FLIGHTNN_CHECK(has_reference_,
                 "ShiftConv2d::run_reference: engine was adopted from a "
                 "compiled plan; only run() is available");
  FLIGHTNN_CHECK(input.shape.rank() == 3 && input.shape[0] == in_channels_,
                 "ShiftConv2d::run: expected [", in_channels_,
                 ", H, W] input, got ", input.shape.to_string());
  FLIGHTNN_CHECK(static_cast<std::int64_t>(input.values.size()) ==
                     input.shape.numel(),
                 "ShiftConv2d::run: ", input.values.size(),
                 " values do not fill shape ", input.shape.to_string());
  const std::int64_t in_h = input.shape[1], in_w = input.shape[2];
  const tensor::ConvGeometry geom{in_channels_, in_h, in_w, kernel_, stride_,
                                  padding_};
  const std::int64_t out_h = geom.out_h(), out_w = geom.out_w();

  dcheck_no_overflow(input, filter_gain_, "ShiftConv2d::run_reference");

  const std::int64_t out_hw = out_h * out_w;
  const float scale = std::ldexp(1.0F, input.scale_exp + config_.e_min);
  tensor::Tensor output(tensor::Shape{out_channels_, out_h, out_w});
  std::atomic<std::int64_t> total_shifts{0};
  std::atomic<std::int64_t> total_adds{0};

  runtime::parallel_for(0, out_channels_, 1, [&](std::int64_t f_begin,
                                                 std::int64_t f_end) {
    std::vector<std::int64_t> accumulator(static_cast<std::size_t>(out_hw));
    OpCounts local{};
    for (std::int64_t f = f_begin; f < f_end; ++f) {
      std::fill(accumulator.begin(), accumulator.end(), std::int64_t{0});
      for (const std::size_t t : filter_terms_[static_cast<std::size_t>(f)]) {
        const auto& term = decomposition_.terms[t];
        // Walk the filter elements; each nonzero element is one shifter lane.
        std::int64_t e = 0;
        for (std::int64_t c = 0; c < in_channels_; ++c) {
          const std::int32_t* in_plane = input.values.data() + c * in_h * in_w;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            for (std::int64_t kx = 0; kx < kernel_; ++kx, ++e) {
              const quant::Pow2Term w =
                  term.elements[static_cast<std::size_t>(e)];
              if (w.sign == 0) continue;
              const int shift = static_cast<int>(w.exponent) - config_.e_min;
              FLIGHTNN_DCHECK(shift >= 0 && shift < 62,
                              "ShiftConv2d::run: shift ", shift,
                              " outside the barrel shifter's range");
              for (std::int64_t oy = 0; oy < out_h; ++oy) {
                const std::int64_t iy = oy * stride_ + ky - padding_;
                if (iy < 0 || iy >= in_h) continue;
                for (std::int64_t ox = 0; ox < out_w; ++ox) {
                  const std::int64_t ix = ox * stride_ + kx - padding_;
                  if (ix < 0 || ix >= in_w) continue;
                  const std::int64_t q = in_plane[iy * in_w + ix];
                  accumulator[static_cast<std::size_t>(oy * out_w + ox)] +=
                      (w.sign > 0 ? q : -q) << shift;
                  ++local.shifts;
                  ++local.adds;
                }
              }
            }
          }
        }
      }
      // Dequantize and fold in the float bias.
      const float b = bias_.empty() ? 0.0F : bias_[f];
      float* out_plane = output.data() + f * out_hw;
      for (std::int64_t i = 0; i < out_hw; ++i) {
        out_plane[i] =
            static_cast<float>(accumulator[static_cast<std::size_t>(i)]) *
                scale +
            b;
      }
    }
    total_shifts.fetch_add(local.shifts, std::memory_order_relaxed);
    total_adds.fetch_add(local.adds, std::memory_order_relaxed);
  });

  if (counts != nullptr) {
    counts->shifts += total_shifts.load(std::memory_order_relaxed);
    counts->adds += total_adds.load(std::memory_order_relaxed);
  }
  return output;
}

ShiftLinear::ShiftLinear(const tensor::Tensor& quantized_weights, int k_max,
                         const quant::Pow2Config& config, tensor::Tensor bias)
    : decomposition_(core::decompose_to_lightnn1(quantized_weights, k_max, config)),
      config_(config),
      bias_(std::move(bias)) {
  const auto& s = quantized_weights.shape();
  FLIGHTNN_CHECK(s.rank() == 2, "ShiftLinear: [out, in] weights required, got ",
                 s.to_string());
  out_features_ = s[0];
  in_features_ = s[1];
  FLIGHTNN_CHECK(bias_.empty() || bias_.numel() == out_features_,
                 "ShiftLinear: bias size ", bias_.numel(),
                 " does not match out features ", out_features_);
  validate_decomposition(decomposition_, out_features_, in_features_, config_,
                         "ShiftLinear");
  plan_ = ShiftPlan::compile_linear(decomposition_, config_);
  index_terms_by_filter(decomposition_, config_, out_features_, filter_terms_,
                        filter_gain_);
  term_count_ = decomposition_.term_count();
  has_reference_ = true;
}

ShiftLinear::ShiftLinear(ShiftPlan plan, const ShiftLinearSpec& spec,
                         const quant::Pow2Config& config, tensor::Tensor bias)
    : config_(config),
      out_features_(spec.out_features),
      in_features_(spec.in_features),
      term_count_(spec.term_count),
      bias_(std::move(bias)),
      plan_(std::move(plan)) {
  FLIGHTNN_CHECK(out_features_ > 0 && in_features_ > 0,
                 "ShiftLinear: bad adopted geometry [", out_features_, ", ",
                 in_features_, "]");
  FLIGHTNN_CHECK(bias_.empty() || bias_.numel() == out_features_,
                 "ShiftLinear: bias size ", bias_.numel(),
                 " does not match out features ", out_features_);
  check_adopted_plan(plan_, out_features_, /*conv=*/false, "ShiftLinear");
  // In-loader repack for the vector tier (see the ShiftConv2d overload);
  // linear plans additionally get the lane-padded gather streams.
  plan_.build_vector_streams();
}

FLIGHTNN_HOT FLIGHTNN_API_ENTRY tensor::Tensor ShiftLinear::run(
    const QuantizedActivations& input, OpCounts* counts) const {
  FLIGHTNN_CHECK(input.shape.numel() == in_features_,
                 "ShiftLinear::run: input numel ", input.shape.numel(),
                 " does not match in features ", in_features_);
  FLIGHTNN_CHECK(static_cast<std::int64_t>(input.values.size()) ==
                     input.shape.numel(),
                 "ShiftLinear::run: ", input.values.size(),
                 " values do not fill shape ", input.shape.to_string());
  dcheck_no_overflow(input, plan_.filter_gain, "ShiftLinear::run");

  const float scale = std::ldexp(1.0F, input.scale_exp + config_.e_min);
  tensor::Tensor output(tensor::Shape{out_features_});
  const std::int32_t* in_data = input.values.data();

  // Kernel-tier dispatch: the 8-wide gather kernel runs over the plan's
  // lane-padded element/mult streams when the narrow bound admits int32
  // lane partials (see shift_kernels.hpp for the overflow argument); the
  // scalar int64 shift_dot remains the fallback and oracle. Bit-identical
  // either way -- same addend multiset, no overflow, exact regrouping.
  const ShiftKernels& kern = active_shift_kernels();
  const bool use_vector =
      kern.tier != KernelTier::kScalar && plan_.vector_streams_built &&
      !plan_.pad_begin.empty() &&
      narrow_bound_ok(plan_max_gain(plan_), input.abs_max());

  // Parallel across output features; each feature's accumulator is private
  // to one chunk and the entry walk regroups the reference path's exact
  // integer addends, so the result is bit-identical to run_reference at any
  // thread count. Linear layers are small (one accumulate per plan entry);
  // the cost hint keeps them serial until the work amortizes pool dispatch.
  const runtime::CostHint feature_cost{static_cast<double>(plan_.entries()) /
                                       static_cast<double>(out_features_)};
  runtime::parallel_for(0, out_features_, 1, feature_cost,
                        [&](std::int64_t f_begin, std::int64_t f_end) {
    for (std::int64_t f = f_begin; f < f_end; ++f) {
      const std::int64_t acc =
          use_vector
              ? kern.shift_dot_i32(
                    in_data, plan_.pad_element.data(), plan_.pad_mult.data(),
                    plan_.pad_begin[static_cast<std::size_t>(f)],
                    plan_.pad_begin[static_cast<std::size_t>(f) + 1])
              : shift_dot(plan_, f, in_data);
      const float b = bias_.empty() ? 0.0F : bias_[f];
      output[f] = static_cast<float>(acc) * scale + b;
    }
  });

  if (counts != nullptr) {
    // One accumulate per plan entry; matches run_reference's counting.
    counts->shifts += plan_.entries();
    counts->adds += plan_.entries();
  }
  return output;
}

tensor::Tensor ShiftLinear::run_reference(const QuantizedActivations& input,
                                          OpCounts* counts) const {
  FLIGHTNN_CHECK(has_reference_,
                 "ShiftLinear::run_reference: engine was adopted from a "
                 "compiled plan; only run() is available");
  FLIGHTNN_CHECK(input.shape.numel() == in_features_,
                 "ShiftLinear::run: input numel ", input.shape.numel(),
                 " does not match in features ", in_features_);
  FLIGHTNN_CHECK(static_cast<std::int64_t>(input.values.size()) ==
                     input.shape.numel(),
                 "ShiftLinear::run: ", input.values.size(),
                 " values do not fill shape ", input.shape.to_string());
  dcheck_no_overflow(input, filter_gain_, "ShiftLinear::run_reference");

  const float scale = std::ldexp(1.0F, input.scale_exp + config_.e_min);
  tensor::Tensor output(tensor::Shape{out_features_});
  std::atomic<std::int64_t> total_shifts{0};
  std::atomic<std::int64_t> total_adds{0};

  runtime::parallel_for(0, out_features_, 1, [&](std::int64_t f_begin,
                                                 std::int64_t f_end) {
    OpCounts local{};
    for (std::int64_t f = f_begin; f < f_end; ++f) {
      std::int64_t filter_acc = 0;
      for (const std::size_t t : filter_terms_[static_cast<std::size_t>(f)]) {
        const auto& term = decomposition_.terms[t];
        std::int64_t acc = 0;
        for (std::int64_t e = 0; e < in_features_; ++e) {
          const quant::Pow2Term w = term.elements[static_cast<std::size_t>(e)];
          if (w.sign == 0) continue;
          const int shift = static_cast<int>(w.exponent) - config_.e_min;
          FLIGHTNN_DCHECK(shift >= 0 && shift < 62, "ShiftLinear::run: shift ",
                          shift, " outside the barrel shifter's range");
          const std::int64_t q = input.values[static_cast<std::size_t>(e)];
          acc += (w.sign > 0 ? q : -q) << shift;
          ++local.shifts;
          ++local.adds;
        }
        filter_acc += acc;
      }
      const float b = bias_.empty() ? 0.0F : bias_[f];
      output[f] = static_cast<float>(filter_acc) * scale + b;
    }
    total_shifts.fetch_add(local.shifts, std::memory_order_relaxed);
    total_adds.fetch_add(local.adds, std::memory_order_relaxed);
  });

  if (counts != nullptr) {
    counts->shifts += total_shifts.load(std::memory_order_relaxed);
    counts->adds += total_adds.load(std::memory_order_relaxed);
  }
  return output;
}

const char* ShiftConv2d::kernel_tier(int act_bits) const {
  const ShiftKernels& kern = active_shift_kernels();
  // Static eligibility: |q| <= 2^(bits-1) - 1 for any properly quantized
  // activation, so if the narrow bound holds at that ceiling it holds for
  // every batch and run() will dispatch the vector tier. (An individual
  // batch with smaller abs-max may vectorize even when this reports
  // scalar; the report is the conservative steady-state answer.)
  const std::int64_t q_max = (std::int64_t{1} << (act_bits - 1)) - 1;
  const bool vector = kern.tier != KernelTier::kScalar && stride_ == 1 &&
                      plan_.vector_streams_built &&
                      narrow_bound_ok(plan_max_gain(plan_), q_max);
  return kernel_tier_name(vector ? kern.tier : KernelTier::kScalar);
}

const char* ShiftLinear::kernel_tier(int act_bits) const {
  const ShiftKernels& kern = active_shift_kernels();
  const std::int64_t q_max = (std::int64_t{1} << (act_bits - 1)) - 1;
  const bool vector = kern.tier != KernelTier::kScalar &&
                      plan_.vector_streams_built &&
                      !plan_.pad_begin.empty() &&
                      narrow_bound_ok(plan_max_gain(plan_), q_max);
  return kernel_tier_name(vector ? kern.tier : KernelTier::kScalar);
}

bool plan_narrow_accumulator(const ShiftPlan& plan, int act_bits) {
  const std::int64_t q_max = (std::int64_t{1} << (act_bits - 1)) - 1;
  return narrow_bound_ok(plan_max_gain(plan), q_max);
}

tensor::Tensor reference_conv(const tensor::Tensor& weights,
                              const tensor::Tensor& image, std::int64_t stride,
                              std::int64_t padding, const tensor::Tensor& bias) {
  const auto& ws = weights.shape();
  const auto& is = image.shape();
  FLIGHTNN_CHECK(ws.rank() == 4 && is.rank() == 3 && ws[1] == is[0] &&
                     ws[2] == ws[3],
                 "reference_conv: bad shapes, weights ", ws.to_string(),
                 " image ", is.to_string());
  const std::int64_t out_ch = ws[0], in_ch = ws[1], kernel = ws[2];
  const std::int64_t in_h = is[1], in_w = is[2];
  const tensor::ConvGeometry geom{in_ch, in_h, in_w, kernel, stride, padding};
  const std::int64_t out_h = geom.out_h(), out_w = geom.out_w();

  tensor::Tensor output(tensor::Shape{out_ch, out_h, out_w});
  for (std::int64_t o = 0; o < out_ch; ++o) {
    const float b = bias.empty() ? 0.0F : bias[o];
    for (std::int64_t oy = 0; oy < out_h; ++oy) {
      for (std::int64_t ox = 0; ox < out_w; ++ox) {
        double acc = b;
        for (std::int64_t c = 0; c < in_ch; ++c) {
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            const std::int64_t iy = oy * stride + ky - padding;
            if (iy < 0 || iy >= in_h) continue;
            for (std::int64_t kx = 0; kx < kernel; ++kx) {
              const std::int64_t ix = ox * stride + kx - padding;
              if (ix < 0 || ix >= in_w) continue;
              acc += static_cast<double>(
                         weights[((o * in_ch + c) * kernel + ky) * kernel + kx]) *
                     image[(c * in_h + iy) * in_w + ix];
            }
          }
        }
        output[(o * out_h + oy) * out_w + ox] = static_cast<float>(acc);
      }
    }
  }
  return output;
}

}  // namespace flightnn::inference
