#include "inference/shift_engine.hpp"

#include <cmath>
#include <stdexcept>

namespace flightnn::inference {

QuantizedActivations quantize_image(const tensor::Tensor& image, int bits) {
  const auto& s = image.shape();
  tensor::Shape chw;
  const float* data = image.data();
  if (s.rank() == 3) {
    chw = s;
  } else if (s.rank() == 4 && s[0] == 1) {
    chw = tensor::Shape{s[1], s[2], s[3]};
  } else {
    throw std::invalid_argument("quantize_image: expected [C,H,W] or [1,C,H,W]");
  }
  if (bits < 2 || bits > 16) throw std::invalid_argument("quantize_image: bad bits");

  const std::int64_t q_max = (1LL << (bits - 1)) - 1;
  const float abs_max = image.abs_max();
  int scale_exp = 0;
  if (abs_max > 0.0F) {
    scale_exp = static_cast<int>(
        std::ceil(std::log2(abs_max / static_cast<float>(q_max))));
  }
  const float scale = std::ldexp(1.0F, scale_exp);

  QuantizedActivations out;
  out.scale_exp = scale_exp;
  out.shape = chw;
  out.values.resize(static_cast<std::size_t>(chw.numel()));
  for (std::int64_t i = 0; i < chw.numel(); ++i) {
    auto q = static_cast<std::int64_t>(std::nearbyint(data[i] / scale));
    q = std::min(q_max, std::max(-q_max, q));
    out.values[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(q);
  }
  return out;
}

QuantizedActivations quantize_tensor(const tensor::Tensor& x, int bits) {
  if (bits < 2 || bits > 16) throw std::invalid_argument("quantize_tensor: bad bits");
  const std::int64_t q_max = (1LL << (bits - 1)) - 1;
  const float abs_max = x.abs_max();
  int scale_exp = 0;
  if (abs_max > 0.0F) {
    scale_exp = static_cast<int>(
        std::ceil(std::log2(abs_max / static_cast<float>(q_max))));
  }
  const float scale = std::ldexp(1.0F, scale_exp);

  QuantizedActivations out;
  out.scale_exp = scale_exp;
  out.shape = x.shape();
  out.values.resize(static_cast<std::size_t>(x.numel()));
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    auto q = static_cast<std::int64_t>(std::nearbyint(x[i] / scale));
    q = std::min(q_max, std::max(-q_max, q));
    out.values[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(q);
  }
  return out;
}

tensor::Tensor dequantize(const QuantizedActivations& activations) {
  tensor::Tensor out(activations.shape);
  const float scale = std::ldexp(1.0F, activations.scale_exp);
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    out[i] = static_cast<float>(activations.values[static_cast<std::size_t>(i)]) * scale;
  }
  return out;
}

ShiftConv2d::ShiftConv2d(const tensor::Tensor& quantized_weights, int k_max,
                         const quant::Pow2Config& config, std::int64_t stride,
                         std::int64_t padding, tensor::Tensor bias)
    : decomposition_(core::decompose_to_lightnn1(quantized_weights, k_max, config)),
      config_(config),
      stride_(stride),
      padding_(padding),
      bias_(std::move(bias)) {
  const auto& s = quantized_weights.shape();
  if (s.rank() != 4) throw std::invalid_argument("ShiftConv2d: OIHW weights required");
  out_channels_ = s[0];
  in_channels_ = s[1];
  kernel_ = s[2];
  if (s[2] != s[3]) throw std::invalid_argument("ShiftConv2d: square kernels only");
  if (!bias_.empty() && bias_.numel() != out_channels_) {
    throw std::invalid_argument("ShiftConv2d: bias size mismatch");
  }
}

tensor::Tensor ShiftConv2d::run(const QuantizedActivations& input,
                                OpCounts* counts) const {
  if (input.shape.rank() != 3 || input.shape[0] != in_channels_) {
    throw std::invalid_argument("ShiftConv2d::run: bad input shape");
  }
  const std::int64_t in_h = input.shape[1], in_w = input.shape[2];
  const tensor::ConvGeometry geom{in_channels_, in_h, in_w, kernel_, stride_,
                                  padding_};
  const std::int64_t out_h = geom.out_h(), out_w = geom.out_w();

  // Integer accumulators at scale 2^(input.scale_exp + e_min): each weight
  // term sign * 2^e contributes sign * (q << (e - e_min)), a non-negative
  // left shift since e >= e_min.
  std::vector<std::int64_t> accumulator(
      static_cast<std::size_t>(out_channels_ * out_h * out_w), 0);

  OpCounts local{};
  for (const auto& term : decomposition_.terms) {
    std::int64_t* out_plane =
        accumulator.data() + term.filter * out_h * out_w;
    // Walk the filter elements; each nonzero element is one shifter lane.
    std::int64_t e = 0;
    for (std::int64_t c = 0; c < in_channels_; ++c) {
      const std::int32_t* in_plane = input.values.data() + c * in_h * in_w;
      for (std::int64_t ky = 0; ky < kernel_; ++ky) {
        for (std::int64_t kx = 0; kx < kernel_; ++kx, ++e) {
          const quant::Pow2Term w = term.elements[static_cast<std::size_t>(e)];
          if (w.sign == 0) continue;
          const int shift = static_cast<int>(w.exponent) - config_.e_min;
          for (std::int64_t oy = 0; oy < out_h; ++oy) {
            const std::int64_t iy = oy * stride_ + ky - padding_;
            if (iy < 0 || iy >= in_h) continue;
            for (std::int64_t ox = 0; ox < out_w; ++ox) {
              const std::int64_t ix = ox * stride_ + kx - padding_;
              if (ix < 0 || ix >= in_w) continue;
              const std::int64_t q = in_plane[iy * in_w + ix];
              const std::int64_t contribution =
                  (w.sign > 0 ? q : -q) << shift;
              out_plane[oy * out_w + ox] += contribution;
              ++local.shifts;
              ++local.adds;
            }
          }
        }
      }
    }
  }
  if (counts != nullptr) {
    counts->shifts += local.shifts;
    counts->adds += local.adds;
  }

  // Dequantize and fold in the float bias.
  const float scale = std::ldexp(1.0F, input.scale_exp + config_.e_min);
  tensor::Tensor output(tensor::Shape{out_channels_, out_h, out_w});
  for (std::int64_t o = 0; o < out_channels_; ++o) {
    const float b = bias_.empty() ? 0.0F : bias_[o];
    const std::int64_t* acc = accumulator.data() + o * out_h * out_w;
    float* out_plane = output.data() + o * out_h * out_w;
    for (std::int64_t i = 0; i < out_h * out_w; ++i) {
      out_plane[i] = static_cast<float>(acc[i]) * scale + b;
    }
  }
  return output;
}

ShiftLinear::ShiftLinear(const tensor::Tensor& quantized_weights, int k_max,
                         const quant::Pow2Config& config, tensor::Tensor bias)
    : decomposition_(core::decompose_to_lightnn1(quantized_weights, k_max, config)),
      config_(config),
      bias_(std::move(bias)) {
  const auto& s = quantized_weights.shape();
  if (s.rank() != 2) throw std::invalid_argument("ShiftLinear: [out, in] weights");
  out_features_ = s[0];
  in_features_ = s[1];
  if (!bias_.empty() && bias_.numel() != out_features_) {
    throw std::invalid_argument("ShiftLinear: bias size mismatch");
  }
}

tensor::Tensor ShiftLinear::run(const QuantizedActivations& input,
                                OpCounts* counts) const {
  if (input.shape.numel() != in_features_) {
    throw std::invalid_argument("ShiftLinear::run: bad input size");
  }
  std::vector<std::int64_t> accumulator(static_cast<std::size_t>(out_features_), 0);
  OpCounts local{};
  for (const auto& term : decomposition_.terms) {
    std::int64_t acc = 0;
    for (std::int64_t e = 0; e < in_features_; ++e) {
      const quant::Pow2Term w = term.elements[static_cast<std::size_t>(e)];
      if (w.sign == 0) continue;
      const int shift = static_cast<int>(w.exponent) - config_.e_min;
      const std::int64_t q = input.values[static_cast<std::size_t>(e)];
      acc += (w.sign > 0 ? q : -q) << shift;
      ++local.shifts;
      ++local.adds;
    }
    accumulator[static_cast<std::size_t>(term.filter)] += acc;
  }
  if (counts != nullptr) {
    counts->shifts += local.shifts;
    counts->adds += local.adds;
  }
  const float scale = std::ldexp(1.0F, input.scale_exp + config_.e_min);
  tensor::Tensor output(tensor::Shape{out_features_});
  for (std::int64_t o = 0; o < out_features_; ++o) {
    const float b = bias_.empty() ? 0.0F : bias_[o];
    output[o] = static_cast<float>(accumulator[static_cast<std::size_t>(o)]) * scale + b;
  }
  return output;
}

tensor::Tensor reference_conv(const tensor::Tensor& weights,
                              const tensor::Tensor& image, std::int64_t stride,
                              std::int64_t padding, const tensor::Tensor& bias) {
  const auto& ws = weights.shape();
  const auto& is = image.shape();
  if (ws.rank() != 4 || is.rank() != 3 || ws[1] != is[0] || ws[2] != ws[3]) {
    throw std::invalid_argument("reference_conv: bad shapes");
  }
  const std::int64_t out_ch = ws[0], in_ch = ws[1], kernel = ws[2];
  const std::int64_t in_h = is[1], in_w = is[2];
  const tensor::ConvGeometry geom{in_ch, in_h, in_w, kernel, stride, padding};
  const std::int64_t out_h = geom.out_h(), out_w = geom.out_w();

  tensor::Tensor output(tensor::Shape{out_ch, out_h, out_w});
  for (std::int64_t o = 0; o < out_ch; ++o) {
    const float b = bias.empty() ? 0.0F : bias[o];
    for (std::int64_t oy = 0; oy < out_h; ++oy) {
      for (std::int64_t ox = 0; ox < out_w; ++ox) {
        double acc = b;
        for (std::int64_t c = 0; c < in_ch; ++c) {
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            const std::int64_t iy = oy * stride + ky - padding;
            if (iy < 0 || iy >= in_h) continue;
            for (std::int64_t kx = 0; kx < kernel; ++kx) {
              const std::int64_t ix = ox * stride + kx - padding;
              if (ix < 0 || ix >= in_w) continue;
              acc += static_cast<double>(
                         weights[((o * in_ch + c) * kernel + ky) * kernel + kx]) *
                     image[(c * in_h + iy) * in_w + ix];
            }
          }
        }
        output[(o * out_h + oy) * out_w + ox] = static_cast<float>(acc);
      }
    }
  }
  return output;
}

}  // namespace flightnn::inference
