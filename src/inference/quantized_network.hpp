#pragma once

// Whole-network integer inference: compile a trained model into an
// execution plan whose convolutions and fully-connected layers run on the
// shift-add integer engine (Fig. 3's LightNN-1 datapath), with batch norm
// folded into per-channel affine steps and activations re-quantized to
// fixed point between layers -- the structure of a pipelined (F)LightNN
// accelerator where shifts/adds are the datapath and the per-channel scale
// is a fixed-function stage.
//
// The plan mirrors the model's eval-mode forward pass: the same
// quantization points (the model's ActivationQuant layers), the same
// quantized weights, the same folded statistics. One deliberate addition:
// inputs to shift-coded layers are always re-quantized (hardware feeds the
// integer datapath integer codes), which adds a quantization point before
// the classifier that the float model lacks -- logits agree to that step's
// 8-bit granularity, convolution outputs bit-exactly.
//
// Layers with shift-codable weights (LightNN-k / FLightNN transforms, or
// full-precision weights after `quantize_weights_to(k)`) run on the
// integer engine; fixed-point / full-precision layers fall back to float
// math on their (quantized) weights so that any model variant can be
// compiled and compared.

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "inference/network_program.hpp"
#include "inference/shift_engine.hpp"
#include "nn/sequential.hpp"

namespace flightnn::inference {

class MemoryPlan;  // inference/memory_plan.hpp

struct NetworkOpCounts {
  std::int64_t shifts = 0;
  std::int64_t adds = 0;
  // MAC-equivalents executed in float fallback (non-shift layers).
  std::int64_t float_macs = 0;
  std::int64_t images = 0;
};

// Per-step observability record produced by QuantizedNetwork::profile().
struct StepProfile {
  std::string name;        // step->describe()
  double seconds = 0.0;    // mean wall time per run of this step
  std::int64_t shifts = 0;
  std::int64_t adds = 0;
  std::int64_t float_macs = 0;
  std::int64_t terms = 0;  // single-shift filter terms (0 for non-shift steps)
  // Kernel tier the step dispatches to ("scalar" / "avx2"; "reference" for
  // term-walk steps, "-" for steps that do not run on the shift engine).
  std::string kernel_tier = "-";
  // Planned arena scratch this step's kernels fetch (0 when the network
  // runs on the dynamic arena or the step uses no arena scratch).
  std::size_t planned_scratch_bytes = 0;
  // Planned placement, "slot@offset+bytes" per extent ("-" when none), e.g.
  // "off@0+1.1KiB acc@1.2K+4.0KiB".
  std::string planned_layout = "-";
};

class QuantizedNetwork {
 public:
  // Compile a trained model. Walks the layer tree in execution order;
  // throws on layer types it does not understand. The model is used in
  // eval mode during compilation (one dummy forward fixes geometry).
  static QuantizedNetwork compile(nn::Sequential& model,
                                  const tensor::Shape& input_shape,
                                  const CompileOptions& options = {});

  // Build an executable network from a lowered program (the IR
  // compile_program emits and the deployment artifact stores). Ops whose
  // quantized weights are present get engines with the full reference
  // term-walk; plan-only ops (artifact load path) get plan-adopting
  // engines. run() is bit-identical either way. `use_reference_engine`
  // requires the weights to be present.
  static QuantizedNetwork from_program(NetworkProgram program,
                                       bool use_reference_engine = false);

  // Run one image [C, H, W] (or [1, C, H, W]) to logits.
  [[nodiscard]] tensor::Tensor run(const tensor::Tensor& image,
                                   NetworkOpCounts* counts = nullptr) const;

  // Top-k classification accuracy over a dataset.
  [[nodiscard]] double evaluate(const data::Dataset& dataset, int top_k = 1,
                                NetworkOpCounts* counts = nullptr) const;

  // Per-layer wall time and op census: runs the image through the network
  // step by step, timing each step over `repeats` runs (the first run of
  // each step also collects its op counts). Observability only -- outputs
  // are discarded.
  [[nodiscard]] std::vector<StepProfile> profile(const tensor::Tensor& image,
                                                 int repeats = 10) const;

  // Number of executable steps (for introspection / tests).
  [[nodiscard]] std::size_t step_count() const { return steps_.size(); }

  // The memory plan attached at from_program time, or nullptr when the
  // network runs on the dynamic arena (reference engines,
  // FLIGHTNN_FORCE_DYNAMIC_ARENA, or the planning override). Valid for the
  // network's lifetime; BatchRunner's warm path adopts it per worker.
  [[nodiscard]] const MemoryPlan* memory_plan() const {
    return memory_plan_.get();
  }

  // Human-readable plan ("quant(8b) -> shift_conv[16f/25t] -> affine ...").
  [[nodiscard]] std::string describe() const;

  // One step of the compiled plan. Public so tests can extend/inspect.
  class Step {
   public:
    virtual ~Step() = default;
    virtual tensor::Tensor run(const tensor::Tensor& input,
                               NetworkOpCounts* counts) const = 0;
    [[nodiscard]] virtual std::string describe() const = 0;
    // Single-shift filter terms executed by this step (0 for steps that do
    // not run on the shift engine).
    [[nodiscard]] virtual std::int64_t term_count() const { return 0; }
    // Kernel tier this step dispatches to (see StepProfile::kernel_tier).
    [[nodiscard]] virtual const char* kernel_tier() const { return "-"; }
  };

 private:
  std::vector<std::unique_ptr<Step>> steps_;
  // Shared so the steps' PlanContext pointers into the layout stay valid
  // across moves of the network object.
  std::shared_ptr<const MemoryPlan> memory_plan_;
  // Flat-op index range [begin, end) each top-level step was built from;
  // parallel to steps_. profile() joins this with MemoryPlan::per_op().
  std::vector<std::pair<std::uint32_t, std::uint32_t>> step_ops_;
};

// Pre-reserve the calling thread's shared quantization scratch for `values`
// int32 codes (warm path; MemoryPlan::warm_thread calls this with the
// largest shift-layer input so steady state starts allocation-free).
void reserve_quant_scratch(std::size_t values);

}  // namespace flightnn::inference
