#pragma once

// Whole-network integer inference: compile a trained model into an
// execution plan whose convolutions and fully-connected layers run on the
// shift-add integer engine (Fig. 3's LightNN-1 datapath), with batch norm
// folded into per-channel affine steps and activations re-quantized to
// fixed point between layers -- the structure of a pipelined (F)LightNN
// accelerator where shifts/adds are the datapath and the per-channel scale
// is a fixed-function stage.
//
// The plan mirrors the model's eval-mode forward pass: the same
// quantization points (the model's ActivationQuant layers), the same
// quantized weights, the same folded statistics. One deliberate addition:
// inputs to shift-coded layers are always re-quantized (hardware feeds the
// integer datapath integer codes), which adds a quantization point before
// the classifier that the float model lacks -- logits agree to that step's
// 8-bit granularity, convolution outputs bit-exactly.
//
// Layers with shift-codable weights (LightNN-k / FLightNN transforms, or
// full-precision weights after `quantize_weights_to(k)`) run on the
// integer engine; fixed-point / full-precision layers fall back to float
// math on their (quantized) weights so that any model variant can be
// compiled and compared.

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "inference/shift_engine.hpp"
#include "nn/sequential.hpp"

namespace flightnn::inference {

struct CompileOptions {
  // Activation bit width used where the model has no explicit quantizer.
  int act_bits = 8;
  // Maximum shift terms expected per weight (for decomposition).
  int k_max = 2;
  quant::Pow2Config pow2;
};

struct NetworkOpCounts {
  std::int64_t shifts = 0;
  std::int64_t adds = 0;
  // MAC-equivalents executed in float fallback (non-shift layers).
  std::int64_t float_macs = 0;
  std::int64_t images = 0;
};

class QuantizedNetwork {
 public:
  // Compile a trained model. Walks the layer tree in execution order;
  // throws on layer types it does not understand. The model is used in
  // eval mode during compilation (one dummy forward fixes geometry).
  static QuantizedNetwork compile(nn::Sequential& model,
                                  const tensor::Shape& input_shape,
                                  const CompileOptions& options = {});

  // Run one image [C, H, W] (or [1, C, H, W]) to logits.
  [[nodiscard]] tensor::Tensor run(const tensor::Tensor& image,
                                   NetworkOpCounts* counts = nullptr) const;

  // Top-k classification accuracy over a dataset.
  [[nodiscard]] double evaluate(const data::Dataset& dataset, int top_k = 1,
                                NetworkOpCounts* counts = nullptr) const;

  // Number of executable steps (for introspection / tests).
  [[nodiscard]] std::size_t step_count() const { return steps_.size(); }

  // Human-readable plan ("quant(8b) -> shift_conv[16f/25t] -> affine ...").
  [[nodiscard]] std::string describe() const;

  // One step of the compiled plan. Public so tests can extend/inspect.
  class Step {
   public:
    virtual ~Step() = default;
    virtual tensor::Tensor run(const tensor::Tensor& input,
                               NetworkOpCounts* counts) const = 0;
    [[nodiscard]] virtual std::string describe() const = 0;
  };

 private:
  std::vector<std::unique_ptr<Step>> steps_;
};

}  // namespace flightnn::inference
