#include "inference/shift_kernels.hpp"

#include <atomic>

#include "support/annotations.hpp"
#include "support/env.hpp"
#include "support/simd.hpp"

#if FLIGHTNN_X86_DISPATCH
#include <immintrin.h>
#endif

namespace flightnn::inference {

namespace {

// Portable scalar tier: entry-outer over the interior rectangle, exactly the
// stride-1 interior loop of conv_accumulate_filter. It is both the fallback
// on non-AVX2 hosts and the oracle the differential tests pin the vector
// tier against.
FLIGHTNN_HOT FLIGHTNN_INT_KERNEL void conv_interior_i32_scalar(
    const std::int32_t* in, const std::int64_t* off, const std::int32_t* mult,
    std::int64_t fb, std::int64_t fe, const ConvInteriorGeom& geom,
    std::int32_t* acc) {
  const std::int64_t n = geom.ox_hi - geom.ox_lo;
  for (std::int64_t e = fb; e < fe; ++e) {
    const std::int32_t m = mult[e];
    for (std::int64_t oy = geom.oy_lo; oy < geom.oy_hi; ++oy) {
      const std::int32_t* irow = in + off[e] + (oy - geom.padding) * geom.in_w -
                                 geom.padding + geom.ox_lo;
      std::int32_t* a = acc + oy * geom.out_w + geom.ox_lo;
      for (std::int64_t i = 0; i < n; ++i) a[i] += irow[i] * m;
    }
  }
}

FLIGHTNN_HOT FLIGHTNN_INT_KERNEL std::int64_t shift_dot_i32_scalar(
    const std::int32_t* in, const std::int32_t* element,
    const std::int32_t* mult, std::int64_t pb, std::int64_t pe) {
  std::int64_t acc = 0;
  for (std::int64_t e = pb; e < pe; ++e) {
    acc += static_cast<std::int64_t>(in[element[e]]) * mult[e];
  }
  return acc;
}

#if FLIGHTNN_X86_DISPATCH

// AVX2 interior conv: output-stationary register blocking. Accumulators for
// a 2-row x 16-column macro-block (four ymm) stay in registers across the
// whole entry walk -- the scalar path streams the accumulator plane through
// L1 once per entry, so besides the 8-wide multiply-add this removes
// (entries - 1) round trips of accumulator traffic per block and walks the
// entry stream (off/mult loads, loop control) once per 32 outputs instead
// of once per output row. Column remainders step down to one ymm, then a
// masked ymm covering any 1..7 tail (maskload never touches disabled
// lanes, so the kernel reads no input or accumulator bytes the scalar tier
// would not). All regroupings are exact-integer, hence bit-identical
// (overflow excluded by the caller's narrow bound; see the header).
FLIGHTNN_HOT FLIGHTNN_INT_KERNEL
__attribute__((target("avx2"))) void conv_interior_i32_avx2(
    const std::int32_t* in, const std::int64_t* off, const std::int32_t* mult,
    std::int64_t fb, std::int64_t fe, const ConvInteriorGeom& geom,
    std::int32_t* acc) {
  const std::int64_t n = geom.ox_hi - geom.ox_lo;
  const std::int64_t in_w = geom.in_w;
  // Lanes [0..w) enabled; the tail mask for n % 8 columns.
  const __m256i tail_mask =
      n % 8 == 0
          ? _mm256_setzero_si256()
          : _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int>(n % 8)),
                               _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
  std::int64_t oy = geom.oy_lo;
  for (; oy + 2 <= geom.oy_hi; oy += 2) {
    const std::int32_t* base =
        in + (oy - geom.padding) * in_w - geom.padding + geom.ox_lo;
    std::int32_t* a0 = acc + oy * geom.out_w + geom.ox_lo;
    std::int32_t* a1 = a0 + geom.out_w;
    std::int64_t x = 0;
    for (; x + 16 <= n; x += 16) {
      __m256i v00 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a0 + x));
      __m256i v01 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a0 + x + 8));
      __m256i v10 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a1 + x));
      __m256i v11 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a1 + x + 8));
      for (std::int64_t e = fb; e < fe; ++e) {
        const std::int32_t* p = base + off[e] + x;
        const __m256i m = _mm256_set1_epi32(mult[e]);
        v00 = _mm256_add_epi32(
            v00, _mm256_mullo_epi32(
                     _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)),
                     m));
        v01 = _mm256_add_epi32(
            v01,
            _mm256_mullo_epi32(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 8)),
                m));
        v10 = _mm256_add_epi32(
            v10,
            _mm256_mullo_epi32(_mm256_loadu_si256(
                                   reinterpret_cast<const __m256i*>(p + in_w)),
                               m));
        v11 = _mm256_add_epi32(
            v11, _mm256_mullo_epi32(
                     _mm256_loadu_si256(
                         reinterpret_cast<const __m256i*>(p + in_w + 8)),
                     m));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(a0 + x), v00);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(a0 + x + 8), v01);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(a1 + x), v10);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(a1 + x + 8), v11);
    }
    if (x + 8 <= n) {
      __m256i v0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a0 + x));
      __m256i v1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a1 + x));
      for (std::int64_t e = fb; e < fe; ++e) {
        const std::int32_t* p = base + off[e] + x;
        const __m256i m = _mm256_set1_epi32(mult[e]);
        v0 = _mm256_add_epi32(
            v0, _mm256_mullo_epi32(
                    _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)),
                    m));
        v1 = _mm256_add_epi32(
            v1,
            _mm256_mullo_epi32(_mm256_loadu_si256(
                                   reinterpret_cast<const __m256i*>(p + in_w)),
                               m));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(a0 + x), v0);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(a1 + x), v1);
      x += 8;
    }
    if (x < n) {
      __m256i v0 = _mm256_maskload_epi32(a0 + x, tail_mask);
      __m256i v1 = _mm256_maskload_epi32(a1 + x, tail_mask);
      for (std::int64_t e = fb; e < fe; ++e) {
        const std::int32_t* p = base + off[e] + x;
        const __m256i m = _mm256_set1_epi32(mult[e]);
        v0 = _mm256_add_epi32(
            v0, _mm256_mullo_epi32(_mm256_maskload_epi32(p, tail_mask), m));
        v1 = _mm256_add_epi32(
            v1, _mm256_mullo_epi32(_mm256_maskload_epi32(p + in_w, tail_mask),
                                   m));
      }
      _mm256_maskstore_epi32(a0 + x, tail_mask, v0);
      _mm256_maskstore_epi32(a1 + x, tail_mask, v1);
    }
  }
  if (oy < geom.oy_hi) {
    const std::int32_t* base =
        in + (oy - geom.padding) * in_w - geom.padding + geom.ox_lo;
    std::int32_t* a = acc + oy * geom.out_w + geom.ox_lo;
    std::int64_t x = 0;
    for (; x + 8 <= n; x += 8) {
      __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + x));
      for (std::int64_t e = fb; e < fe; ++e) {
        v0 = _mm256_add_epi32(
            v0, _mm256_mullo_epi32(
                    _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(base + off[e] + x)),
                    _mm256_set1_epi32(mult[e])));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + x), v0);
    }
    if (x < n) {
      __m256i v0 = _mm256_maskload_epi32(a + x, tail_mask);
      for (std::int64_t e = fb; e < fe; ++e) {
        v0 = _mm256_add_epi32(
            v0, _mm256_mullo_epi32(
                    _mm256_maskload_epi32(base + off[e] + x, tail_mask),
                    _mm256_set1_epi32(mult[e])));
      }
      _mm256_maskstore_epi32(a + x, tail_mask, v0);
    }
  }
}

// AVX2 linear dot: 8-wide gather over the plan's padded element stream. The
// eight int32 lane partials are each bounded by the filter's absolute-sum
// gain times max|q| (a subset of the terms the narrow bound covers), so
// int32 lanes cannot wrap; the final cross-lane reduction widens each lane
// to int64 -- the saturation-safe widening step for whole-filter sums
// beyond int32. Pad entries are (element 0, mult 0) no-ops, so running to
// the padded end is exact and never reads past any stream.
FLIGHTNN_HOT FLIGHTNN_INT_KERNEL
__attribute__((target("avx2"))) std::int64_t shift_dot_i32_avx2(
    const std::int32_t* in, const std::int32_t* element,
    const std::int32_t* mult, std::int64_t pb, std::int64_t pe) {
  __m256i acc = _mm256_setzero_si256();
  for (std::int64_t e = pb; e < pe; e += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(element + e));
    const __m256i q = _mm256_i32gather_epi32(in, idx, 4);
    const __m256i m =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mult + e));
    acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(q, m));
  }
  alignas(32) std::int32_t lane[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane), acc);
  std::int64_t total = 0;
  for (int i = 0; i < 8; ++i) total += lane[i];
  return total;
}

#endif  // FLIGHTNN_X86_DISPATCH

constexpr ShiftKernels kScalarKernels{KernelTier::kScalar,
                                      &conv_interior_i32_scalar,
                                      &shift_dot_i32_scalar};
#if FLIGHTNN_X86_DISPATCH
constexpr ShiftKernels kAvx2Kernels{KernelTier::kAvx2, &conv_interior_i32_avx2,
                                    &shift_dot_i32_avx2};
#endif

// -1 = no override; otherwise a KernelTier value forced by tests.
std::atomic<int> g_tier_override{-1};

}  // namespace

const char* kernel_tier_name(KernelTier tier) {
  return tier == KernelTier::kAvx2 ? "avx2" : "scalar";
}

const ShiftKernels& shift_kernels_for(KernelTier tier) {
#if FLIGHTNN_X86_DISPATCH
  if (tier == KernelTier::kAvx2 && support::cpu_has_avx2()) {
    return kAvx2Kernels;
  }
#else
  (void)tier;
#endif
  return kScalarKernels;
}

KernelTier detected_kernel_tier() {
  static const KernelTier tier = [] {
    if (support::env_int("FLIGHTNN_FORCE_SCALAR").value_or(0) != 0) {
      return KernelTier::kScalar;
    }
    return support::cpu_has_avx2() ? KernelTier::kAvx2 : KernelTier::kScalar;
  }();
  return tier;
}

const ShiftKernels& active_shift_kernels() {
  const int forced = g_tier_override.load(std::memory_order_relaxed);
  if (forced >= 0) return shift_kernels_for(static_cast<KernelTier>(forced));
  return shift_kernels_for(detected_kernel_tier());
}

void set_kernel_tier_override(int tier) {
  g_tier_override.store(tier, std::memory_order_relaxed);
}

}  // namespace flightnn::inference
