#include "inference/network_program.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/decompose.hpp"
#include "core/flightnn_transform.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/residual.hpp"
#include "nn/sequential.hpp"
#include "quant/lightnn.hpp"
#include "support/check.hpp"

namespace flightnn::inference {

namespace {

struct ProgramState {
  const CompileOptions* options;
  int current_act_bits;  // bits of the most recent activation quantizer
};

// Shift-coding parameters of a weight transform: k_max > 0 when the layer's
// weights are sums of at most k_max powers of two (LightNN-k / FLightNN).
struct ShiftCoding {
  int k_max = 0;
  quant::Pow2Config pow2;
};

ShiftCoding shift_coding(quant::WeightTransform* transform,
                         const CompileOptions& options) {
  ShiftCoding coding;
  coding.pow2 = options.pow2;
  if (auto* lightnn = dynamic_cast<quant::LightNNTransform*>(transform)) {
    coding.k_max = lightnn->k();
    coding.pow2 = lightnn->config();
  } else if (auto* fl = dynamic_cast<core::FLightNNTransform*>(transform)) {
    coding.k_max = fl->config().k_max;
    coding.pow2 = fl->config().pow2;
  }
  return coding;
}

void program_into(nn::Sequential& seq, ProgramState& state,
                  std::vector<ProgramOp>& ops);

void program_layer(nn::Layer& layer, ProgramState& state,
                   std::vector<ProgramOp>& ops) {
  if (auto* seq = dynamic_cast<nn::Sequential*>(&layer)) {
    program_into(*seq, state, ops);
    return;
  }
  if (auto* aq = dynamic_cast<nn::ActivationQuant*>(&layer)) {
    state.current_act_bits = aq->bits();
    ProgramOp op;
    op.kind = ProgramOpKind::kQuantAct;
    op.bits = aq->bits();
    ops.push_back(std::move(op));
    return;
  }
  if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
    tensor::Tensor wq = conv->quantized_weight();
    tensor::Tensor bias =
        conv->has_bias() ? conv->bias().value : tensor::Tensor();
    const ShiftCoding coding =
        shift_coding(conv->weight_transform(), *state.options);
    ProgramOp op;
    const auto& ws = wq.shape();
    op.out_channels = ws[0];
    op.in_channels = ws[1];
    op.kernel = ws[2];
    op.stride = conv->stride();
    op.padding = conv->padding();
    op.bias = std::move(bias);
    if (coding.k_max > 0) {
      op.kind = ProgramOpKind::kShiftConv;
      op.act_bits = state.current_act_bits;
      op.k_max = coding.k_max;
      op.pow2 = coding.pow2;
      const core::Decomposition decomposition =
          core::decompose_to_lightnn1(wq, coding.k_max, coding.pow2);
      op.term_count = decomposition.term_count();
      op.plan = ShiftPlan::compile_conv(decomposition, coding.pow2,
                                        op.in_channels, op.kernel);
      op.weights = std::move(wq);
    } else {
      op.kind = ProgramOpKind::kFloatConv;
      op.weights = std::move(wq);
    }
    ops.push_back(std::move(op));
    return;
  }
  if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&layer)) {
    const auto& mean = bn->running_mean();
    const auto& var = bn->running_var();
    const auto channels = static_cast<std::size_t>(mean.numel());
    ProgramOp op;
    op.kind = ProgramOpKind::kAffine;
    op.scale.resize(channels);
    op.affine_bias.resize(channels);
    for (std::size_t c = 0; c < channels; ++c) {
      const auto i = static_cast<std::int64_t>(c);
      const float inv_std = 1.0F / std::sqrt(var[i] + 1e-5F);
      op.scale[c] = bn->gamma().value[i] * inv_std;
      op.affine_bias[c] = bn->beta().value[i] - mean[i] * op.scale[c];
    }
    ops.push_back(std::move(op));
    return;
  }
  if (auto* act = dynamic_cast<nn::LeakyReLU*>(&layer)) {
    ProgramOp op;
    op.kind = ProgramOpKind::kLeakyRelu;
    op.slope = act->negative_slope();
    ops.push_back(std::move(op));
    return;
  }
  if (auto* pool = dynamic_cast<nn::MaxPool2d*>(&layer)) {
    ProgramOp op;
    op.kind = ProgramOpKind::kMaxPool;
    op.window = pool->window();
    op.stride = pool->stride();
    ops.push_back(std::move(op));
    return;
  }
  if (dynamic_cast<nn::GlobalAvgPool*>(&layer) != nullptr) {
    ProgramOp op;
    op.kind = ProgramOpKind::kGap;
    ops.push_back(std::move(op));
    return;
  }
  if (dynamic_cast<nn::Flatten*>(&layer) != nullptr) {
    ProgramOp op;
    op.kind = ProgramOpKind::kFlatten;
    ops.push_back(std::move(op));
    return;
  }
  if (auto* linear = dynamic_cast<nn::Linear*>(&layer)) {
    tensor::Tensor wq = linear->quantized_weight();
    const ShiftCoding coding =
        shift_coding(linear->weight_transform(), *state.options);
    ProgramOp op;
    op.out_channels = wq.shape()[0];
    op.in_channels = wq.shape()[1];
    op.bias = linear->bias().value;
    if (coding.k_max > 0) {
      op.kind = ProgramOpKind::kShiftLinear;
      op.act_bits = state.current_act_bits;
      op.k_max = coding.k_max;
      op.pow2 = coding.pow2;
      const core::Decomposition decomposition =
          core::decompose_to_lightnn1(wq, coding.k_max, coding.pow2);
      op.term_count = decomposition.term_count();
      op.plan = ShiftPlan::compile_linear(decomposition, coding.pow2);
      op.weights = std::move(wq);
    } else {
      op.kind = ProgramOpKind::kFloatLinear;
      op.weights = std::move(wq);
    }
    ops.push_back(std::move(op));
    return;
  }
  if (auto* block = dynamic_cast<nn::ResidualBlock*>(&layer)) {
    // Pre-order flattening: the residual op first, then the main, shortcut
    // and post segments. Counts are patched in after each segment is
    // emitted, so they are total (nested-inclusive) op counts. Each branch
    // sees the same incoming activation-quantization state.
    const std::size_t at = ops.size();
    ops.emplace_back();
    ops[at].kind = ProgramOpKind::kResidual;

    ProgramState main_state = state;
    const std::size_t main_begin = ops.size();
    program_into(block->main_path(), main_state, ops);
    const auto main_count = static_cast<std::int64_t>(ops.size() - main_begin);

    ProgramState skip_state = state;
    const bool has_shortcut = block->shortcut() != nullptr;
    const std::size_t skip_begin = ops.size();
    if (has_shortcut) {
      program_into(*block->shortcut(), skip_state, ops);
    }
    const auto skip_count = static_cast<std::int64_t>(ops.size() - skip_begin);

    ProgramState post_state = main_state;
    const std::size_t post_begin = ops.size();
    program_into(block->post(), post_state, ops);
    const auto post_count = static_cast<std::int64_t>(ops.size() - post_begin);

    ops[at].main_ops = main_count;
    ops[at].shortcut_ops = skip_count;
    ops[at].post_ops = post_count;
    ops[at].has_shortcut = has_shortcut;
    state = post_state;
    return;
  }
  throw std::invalid_argument("compile_program: unsupported layer '" +
                              layer.name() + "'");
}

void program_into(nn::Sequential& seq, ProgramState& state,
                  std::vector<ProgramOp>& ops) {
  for (const auto& layer : seq.layers()) {
    program_layer(*layer, state, ops);
  }
}

}  // namespace

NetworkProgram compile_program(nn::Sequential& model,
                               const tensor::Shape& input_shape,
                               const CompileOptions& options) {
  FLIGHTNN_CHECK(input_shape.rank() == 4 && input_shape[0] == 1,
                 "compile_program: expected [1, C, H, W] input shape, got ",
                 input_shape.to_string());
  // One eval forward so batch-norm statistics and conv geometry are final.
  tensor::Tensor dummy(input_shape);
  (void)model.forward(dummy, /*training=*/false);

  NetworkProgram program;
  program.input_c = input_shape[1];
  program.input_h = input_shape[2];
  program.input_w = input_shape[3];
  ProgramState state{&options, options.act_bits};
  program_into(model, state, program.ops);
  return program;
}

}  // namespace flightnn::inference
