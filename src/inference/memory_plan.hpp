#pragma once

// Offline buffer-liveness analysis over a NetworkProgram (DESIGN.md §15).
// At plan-compile time (and again in-loader for artifact-adopted programs,
// like PR 9's vector-stream rebuild -- the format stays v1) the planner
// simulates the program's execution shape-by-shape and derives, for every
// op, exactly which buffers its kernel will touch and for how long:
//
//   - Arena scratch (conv im2row offset tables and accumulator planes):
//     packed into one 64-byte-aligned per-thread arena by the interval
//     coloring in runtime/memory_plan.hpp. Accumulator extents use the
//     *static* narrow gate (plan_narrow_accumulator), so a plan that always
//     runs int32 is planned at 4 bytes/element, not the worst-case 8.
//   - Activations (step outputs, residual chain-entry copies, reshapes):
//     value-semantic pooled tensors, so they stay in tensor::pool; the
//     planner accounts their live intervals and prewarms the pool with the
//     exact working set (per-numel max simultaneous live count), which
//     removes the first-batch warmup allocations on that route too.
//   - Quantization scratch (the per-thread QuantizedActivations buffer):
//     sized to the largest shift-layer input and pre-reserved.
//
// The dynamic grow-once arena remains both the fallback (a fetch that
// misses its planned extent degrades to the dynamic slot and bumps a miss
// counter) and the differential oracle: FLIGHTNN_FORCE_DYNAMIC_ARENA=1 (or
// set_memory_planning_override) disables planning so tests can memcmp
// planned-vs-dynamic logits.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "inference/network_program.hpp"
#include "runtime/memory_plan.hpp"
#include "tensor/tensor.hpp"

namespace flightnn::inference {

// Per-op memory census (observability: --profile's scratch column, the
// memory bench, DESIGN §15's planned-vs-measured table).
struct OpMemory {
  std::uint32_t op = 0;
  ProgramOpKind kind = ProgramOpKind::kQuantAct;
  // Arena-backed scratch this op's kernel fetches (planned extents).
  std::size_t offsets_bytes = 0;
  std::size_t accumulator_bytes = 0;
  std::size_t scratch_bytes = 0;  // offsets + accumulator
  // Lowest planned arena offset among this op's extents (kUnassignedOffset
  // when the op uses no arena scratch).
  std::size_t scratch_offset = runtime::kUnassignedOffset;
  std::size_t activation_bytes = 0;  // output tensor bytes (pool-backed)
  std::size_t quant_bytes = 0;       // quant-scratch bytes while running
};

// One live activation interval (pool accounting; not arena-backed).
struct ActivationInterval {
  std::size_t numel = 0;
  std::uint32_t def_op = 0;
  std::uint32_t last_use_op = 0;
};

class MemoryPlan {
 public:
  // Analyzes `program` and colors the arena layout. Throws CheckFailure on
  // structurally invalid programs (same conditions from_program rejects);
  // use try_build when the caller wants the canonical from_program error
  // instead.
  explicit MemoryPlan(const NetworkProgram& program);

  // Builds a plan, or returns nullptr when the program is structurally
  // invalid (the subsequent from_program walk then reports the canonical
  // error) -- planning must never mask the builder's diagnostics.
  static std::shared_ptr<const MemoryPlan> try_build(
      const NetworkProgram& program);

  [[nodiscard]] const runtime::ArenaLayout& layout() const { return layout_; }
  [[nodiscard]] std::size_t arena_capacity_bytes() const {
    return layout_.capacity_bytes();
  }
  // Peak of the summed live activation bytes over the program (pool-backed
  // working set of the thread driving run()).
  [[nodiscard]] std::size_t activation_peak_bytes() const {
    return activation_peak_bytes_;
  }
  [[nodiscard]] std::size_t quant_peak_values() const {
    return quant_peak_values_;
  }
  [[nodiscard]] std::size_t quant_peak_bytes() const {
    return quant_peak_values_ * sizeof(std::int32_t);
  }
  // Planned bytes one worker thread holds in steady state: the arena block
  // plus its quantization scratch. (The thread running the step loop
  // additionally carries the activation working set.)
  [[nodiscard]] std::size_t planned_per_thread_bytes() const {
    return arena_capacity_bytes() + quant_peak_bytes();
  }
  [[nodiscard]] const std::vector<OpMemory>& per_op() const { return per_op_; }
  [[nodiscard]] const std::vector<ActivationInterval>& activations() const {
    return activations_;
  }
  // Exact pool prewarm recipe: (numel, max simultaneous live tensors of
  // that numel) over the whole program.
  [[nodiscard]] const std::vector<std::pair<std::size_t, std::size_t>>&
  activation_working_set() const {
    return working_set_;
  }

  // Prepare the calling thread for allocation-free planned execution from
  // the first batch: adopt the arena layout, prewarm the buffer pool with
  // the activation working set, and pre-reserve the quantization scratch.
  void warm_thread() const;

 private:
  struct Analysis;
  explicit MemoryPlan(Analysis&& analysis);

  runtime::ArenaLayout layout_;
  std::vector<OpMemory> per_op_;
  std::vector<ActivationInterval> activations_;
  std::vector<std::pair<std::size_t, std::size_t>> working_set_;
  std::size_t activation_peak_bytes_ = 0;
  std::size_t quant_peak_values_ = 0;
};

// --- Planned-arena policy ----------------------------------------------------
//
// Planning is on by default for plan-executing networks (never for
// reference-engine networks, which bypass the arena-backed kernels).
// FLIGHTNN_FORCE_DYNAMIC_ARENA=1 disables it process-wide; the programmatic
// override wins over the environment (differential tests flip it between
// runs of the same program).

// Whether from_program should attach a MemoryPlan right now.
[[nodiscard]] bool memory_planning_enabled();

// Test hook: 0 = force dynamic, 1 = force planned, -1 = clear (environment
// decides again).
void set_memory_planning_override(int mode);

}  // namespace flightnn::inference
