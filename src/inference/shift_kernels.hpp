#pragma once

// Vectorized uniform shift-stream kernels (DESIGN.md §14). The paper's
// Fig. 3 argument -- a k_i=2 filter is two k=1 filters whose feature maps
// add -- means every compiled ShiftPlan is already a uniform stream of
// (input index, signed power-of-two multiplier) entries. These kernels
// execute that stream in 8-wide int32 lanes: the conv interior as
// output-stationary register-blocked multiply-accumulate over contiguous
// rows, the linear dot as a gather over the plan's padded element stream.
//
// Tiers. kScalar is the portable fallback and the bit-exact oracle; kAvx2
// is compiled with a per-function target attribute (the portable build
// carries no -march flags, same idiom as the GEMM microkernel) and only
// dispatched after __builtin_cpu_supports confirms AVX2. Both tiers add
// the same multiset of integer addends to every accumulator and no partial
// sum can overflow its lane (see the narrow-path bound below), so integer
// associativity/commutativity makes their outputs bit-identical -- any
// lane/block/thread regrouping is exact (DESIGN.md §9, §14).
//
// Overflow contract. Callers may use these kernels only when the layer's
// narrow bound holds: max|q| * max_f filter_gain[f] <= INT32_MAX. That
// bound sums absolute contributions, so it covers every int32 lane partial
// sum, every scalar partial sum, and the per-entry multiplier
// sign * 2^shift itself (shift <= 30 follows from the bound). The linear
// kernel widens its eight lane partials into one int64 at the end -- the
// saturation-safe widening step; the whole-filter sum may exceed int32 but
// never int64 (gain is saturated far below the int64 guard).
//
// Dispatch. active_shift_kernels() resolves once from the CPU, the
// FLIGHTNN_FORCE_SCALAR environment knob, and an optional per-process test
// override. shift_kernels_for() exposes both tables so differential tests
// can drive each tier explicitly.

#include <cstdint>

namespace flightnn::inference {

// Lane width of the vector tier. ShiftPlan::build_vector_streams pads the
// linear gather streams to a multiple of this so the 8-wide kernel can run
// to the padded end without tail masking or overread.
inline constexpr std::int64_t kShiftVectorLane = 8;

enum class KernelTier : int { kScalar = 0, kAvx2 = 1 };

// Stable lowercase name for bench JSON / --profile output.
const char* kernel_tier_name(KernelTier tier);

// Geometry the interior-conv stream kernels need. Contract: stride 1 (the
// engine routes strided layers to the scalar plan path), interior rectangle
// rows [oy_lo, oy_hi) x cols [ox_lo, ox_hi) in-bounds for every entry
// offset in `off` (the engine's interior computation guarantees this).
struct ConvInteriorGeom {
  std::int64_t in_w = 0;
  std::int64_t out_w = 0;
  std::int64_t padding = 0;
  std::int64_t oy_lo = 0, oy_hi = 0, ox_lo = 0, ox_hi = 0;
};

// Accumulate filter entries [fb, fe) of a plan's interior region into the
// int32 plane `acc` (caller zeroes it): for each interior output (oy, ox),
// acc[oy*out_w+ox] += in[off[e] + (oy-padding)*in_w - padding + ox] * mult[e].
// `mult` is the plan's derived sign*2^shift stream.
using ConvInteriorFn = void (*)(const std::int32_t* in, const std::int64_t* off,
                                const std::int32_t* mult, std::int64_t fb,
                                std::int64_t fe, const ConvInteriorGeom& geom,
                                std::int32_t* acc);

// Dot of one linear filter over the plan's padded gather streams:
// sum over e in [pb, pe) of in[element[e]] * mult[e], returned widened to
// int64. pe - pb must be a multiple of kShiftVectorLane (pad entries are
// (element 0, mult 0) no-ops).
using ShiftDotFn = std::int64_t (*)(const std::int32_t* in,
                                    const std::int32_t* element,
                                    const std::int32_t* mult, std::int64_t pb,
                                    std::int64_t pe);

struct ShiftKernels {
  KernelTier tier = KernelTier::kScalar;
  ConvInteriorFn conv_interior_i32 = nullptr;
  ShiftDotFn shift_dot_i32 = nullptr;
};

// Kernel table for a tier. Requesting kAvx2 on a CPU without AVX2 returns
// the scalar table, so the result is always safe to call.
const ShiftKernels& shift_kernels_for(KernelTier tier);

// Tier resolved once per process from FLIGHTNN_FORCE_SCALAR (any nonzero
// integer forces kScalar) and the CPU's capabilities.
KernelTier detected_kernel_tier();

// detected_kernel_tier() unless a test override is installed.
const ShiftKernels& active_shift_kernels();

// Test hook: force a tier for subsequent active_shift_kernels() calls
// (0 = scalar, 1 = avx2, -1 = clear the override). Differential tests flip
// this between runs of the same engine; not for production use.
void set_kernel_tier_override(int tier);

}  // namespace flightnn::inference
