#pragma once

// Integer shift-add inference engine: the CPU realization of the hardware
// the paper maps (F)LightNNs onto. Activations are 8-bit fixed point with a
// power-of-two scale; weights are decomposed into single power-of-two terms
// (Fig. 3), so every multiply is a barrel shift and the accumulation is
// integer adds -- exactly the LightNN-1 datapath plus per-layer feature-map
// summation. The engine is bit-exact: its dequantized output equals the
// real-arithmetic convolution of the quantized operands.
//
// Execution is plan-compiled (inference/shift_plan.hpp): construction lowers
// the decomposition into a sparsity-elided SoA entry stream, and run() walks
// only nonzero weight elements, splitting each output plane into a
// padding-free interior and guarded border rows. The pre-plan term-walk
// survives as run_reference() -- the differential oracle the property tests
// compare against and the seed engine the benchmarks measure speedups over.
// Both paths produce bit-identical output: every accumulator receives the
// same multiset of integer addends, and int64 addition is associative and
// commutative (DESIGN.md §9).
//
// Like the paper's FPGA evaluation (Sec. 5.2), the engine operates at layer
// granularity -- convolutions dominate >90% of CNN compute, so the largest
// conv layer is the implementation target.

#include <cstdint>
#include <vector>

#include "core/decompose.hpp"
#include "inference/shift_plan.hpp"
#include "quant/pow2.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace flightnn::runtime {
struct PlanContext;  // runtime/memory_plan.hpp
}  // namespace flightnn::runtime

namespace flightnn::inference {

// Activations quantized to signed integers with scale 2^scale_exp.
struct QuantizedActivations {
  std::vector<std::int32_t> values;  // q; real value = q * 2^scale_exp
  int scale_exp = 0;
  tensor::Shape shape;  // [C, H, W] (single image)
  // Largest |q|, cached at quantize time so the engines' hoisted overflow
  // checks never rescan the activation vector. -1 = unknown (hand-built
  // activations); abs_max() then falls back to a scan.
  std::int64_t max_abs = -1;

  [[nodiscard]] std::int64_t abs_max() const;
};

// Symmetric `bits`-bit quantization with a power-of-two scale covering the
// abs-max. `image` must be [C, H, W] or [1, C, H, W].
QuantizedActivations quantize_image(const tensor::Tensor& image, int bits = 8);

// Same quantization for a tensor of any shape (rank preserved); used for
// the flat feature vectors feeding linear layers.
QuantizedActivations quantize_tensor(const tensor::Tensor& x, int bits = 8);

// Allocation-reusing variants: quantize into `out`, reusing its value buffer
// (no heap traffic once the buffer has reached its high-water size). These
// are what the compiled network's steps call in steady state.
void quantize_image_into(const tensor::Tensor& image, int bits,
                         QuantizedActivations& out);
void quantize_tensor_into(const tensor::Tensor& x, int bits,
                          QuantizedActivations& out);

// Dequantize back to float (for comparisons).
tensor::Tensor dequantize(const QuantizedActivations& activations);

// dequantize(quantize_tensor(x, bits)) fused into one float pass: snaps every
// element to the `bits`-bit pow2-scaled grid without materializing the
// integer codes. Element-wise identical to the two-step form; used by the
// compiled network's activation-quantization steps.
tensor::Tensor fake_quantize(const tensor::Tensor& x, int bits);

// Operation census of one engine run.
struct OpCounts {
  std::int64_t shifts = 0;  // one per nonzero weight term element per output
  std::int64_t adds = 0;    // accumulator additions
};

// Geometry bundle for engines rebuilt from an already-compiled plan (the
// deployment-artifact load path, where the original weight tensor is gone).
struct ShiftConvSpec {
  std::int64_t out_channels = 0;
  std::int64_t in_channels = 0;
  std::int64_t kernel = 0;
  std::int64_t stride = 1;
  std::int64_t padding = 0;
  // Single-shift filter terms the plan was lowered from (metadata only;
  // reported by term_count()).
  std::int64_t term_count = 0;
};

struct ShiftLinearSpec {
  std::int64_t out_features = 0;
  std::int64_t in_features = 0;
  std::int64_t term_count = 0;
};

// A convolution compiled to the single-shift datapath.
class ShiftConv2d {
 public:
  // `quantized_weights` is an OIHW tensor whose elements are sums of at most
  // `k_max` powers of two (output of LightNN-k / FLightNN quantization).
  // `bias` may be empty.
  ShiftConv2d(const tensor::Tensor& quantized_weights, int k_max,
              const quant::Pow2Config& config, std::int64_t stride,
              std::int64_t padding, tensor::Tensor bias = {});

  // Adopt an already-compiled plan (deployment-artifact load path: the plan's
  // streams may be zero-copy views into a mapped blob). The caller vouches
  // for the plan's per-entry validity (the artifact loader validates every
  // stream before construction); this constructor re-checks the cheap
  // structural invariants. run_reference()/filter_k() are unavailable -- no
  // decomposition exists.
  ShiftConv2d(ShiftPlan plan, const ShiftConvSpec& spec,
              const quant::Pow2Config& config, tensor::Tensor bias = {});

  // Run on one quantized image; returns the dequantized float output
  // [out_channels, out_h, out_w]. Accumulates op counts into `counts` if
  // non-null. Executes the compiled plan: zero elements and pruned filters
  // cost nothing, interior pixels run without padding bounds checks, and
  // scratch comes from the per-thread arena (zero steady-state allocation
  // beyond the pooled output tensor). With a non-null `ctx` the scratch is
  // served from the planned arena at offsets the memory planner assigned
  // offline (DESIGN.md §15); null keeps the dynamic grow-once route.
  [[nodiscard]] tensor::Tensor run(
      const QuantizedActivations& input, OpCounts* counts = nullptr,
      const runtime::PlanContext* ctx = nullptr) const;

  // The pre-plan engine: walks the decomposition's term vectors directly,
  // zero elements and all. Kept as the differential oracle / seed baseline;
  // output and op counts are bit-identical to run(). Requires a
  // weights-built engine (has_reference()); plan-adopting engines throw.
  [[nodiscard]] tensor::Tensor run_reference(const QuantizedActivations& input,
                                             OpCounts* counts = nullptr) const;

  // Number of single-shift filter terms (the LightNN-1 engine's workload).
  [[nodiscard]] std::int64_t term_count() const { return term_count_; }
  // Whether the decomposition (run_reference / filter_k) is available.
  [[nodiscard]] bool has_reference() const { return has_reference_; }
  [[nodiscard]] const std::vector<int>& filter_k() const;
  [[nodiscard]] std::int64_t out_channels() const { return out_channels_; }
  [[nodiscard]] const ShiftPlan& plan() const { return plan_; }
  // Name of the kernel tier run() dispatches to for activations quantized
  // at `act_bits` ("scalar" / "avx2"): the static form of run()'s dynamic
  // gate, using |q| <= 2^(bits-1)-1. Reflects the currently active dispatch
  // (CPU, FLIGHTNN_FORCE_SCALAR, test override).
  [[nodiscard]] const char* kernel_tier(int act_bits) const;

 private:
  core::Decomposition decomposition_;  // empty for plan-adopting engines
  quant::Pow2Config config_;
  std::int64_t out_channels_, in_channels_, kernel_, stride_, padding_;
  std::int64_t term_count_ = 0;
  bool has_reference_ = false;
  tensor::Tensor bias_;  // float; folded in after dequantization
  // Compiled SoA execution plan (run()'s workload).
  ShiftPlan plan_;
  // Term indices grouped by output filter, preserving decomposition order;
  // run_reference()'s workload. Both paths parallelize across filter blocks,
  // so each filter's accumulator plane is written by exactly one thread and
  // parallel results are bit-identical to serial execution.
  std::vector<std::vector<std::size_t>> filter_terms_;
  // Per-filter sum of 2^shift over nonzero weight elements, saturated at the
  // accumulator guard: |accumulator| <= max|q| * filter_gain_[f], which lets
  // both run paths check for overflow once per filter instead of per element.
  std::vector<std::int64_t> filter_gain_;
};

// A fully-connected layer compiled to the single-shift datapath: weights
// [out, in] decomposed into power-of-two terms, input a quantized flat
// vector, accumulation in int64.
class ShiftLinear {
 public:
  ShiftLinear(const tensor::Tensor& quantized_weights, int k_max,
              const quant::Pow2Config& config, tensor::Tensor bias = {});

  // Adopt an already-compiled plan (see the ShiftConv2d overload).
  ShiftLinear(ShiftPlan plan, const ShiftLinearSpec& spec,
              const quant::Pow2Config& config, tensor::Tensor bias = {});

  // `input.shape` must be rank-1 [in_features]. Returns the dequantized
  // float output [out_features]. Plan-compiled, like ShiftConv2d::run.
  [[nodiscard]] tensor::Tensor run(const QuantizedActivations& input,
                                   OpCounts* counts = nullptr) const;

  // Pre-plan term walk (differential oracle / seed baseline); requires a
  // weights-built engine (has_reference()).
  [[nodiscard]] tensor::Tensor run_reference(const QuantizedActivations& input,
                                             OpCounts* counts = nullptr) const;

  [[nodiscard]] std::int64_t term_count() const { return term_count_; }
  [[nodiscard]] bool has_reference() const { return has_reference_; }
  [[nodiscard]] std::int64_t out_features() const { return out_features_; }
  [[nodiscard]] std::int64_t in_features() const { return in_features_; }
  [[nodiscard]] const ShiftPlan& plan() const { return plan_; }
  // Kernel-tier name for `act_bits` activations (see ShiftConv2d).
  [[nodiscard]] const char* kernel_tier(int act_bits) const;

 private:
  core::Decomposition decomposition_;  // empty for plan-adopting engines
  quant::Pow2Config config_;
  std::int64_t out_features_, in_features_;
  std::int64_t term_count_ = 0;
  bool has_reference_ = false;
  tensor::Tensor bias_;
  ShiftPlan plan_;
  // Same per-filter term grouping / overflow-gain precomputation as
  // ShiftConv2d (see there); run_reference()'s workload.
  std::vector<std::vector<std::size_t>> filter_terms_;
  std::vector<std::int64_t> filter_gain_;
};

// Whether ShiftConv2d::run takes the int32 narrow-accumulator path for ANY
// properly quantized `act_bits` input executing `plan` -- the static form of
// run()'s dynamic gate, using |q| <= 2^(act_bits-1) - 1 (same predicate as
// kernel_tier). The memory planner sizes conv accumulator extents with this:
// 4 bytes/element when the bound holds for every batch, 8 otherwise. A
// planned-narrow layer can never see a wider request from a properly
// quantized input, and a planned-wide layer's extent covers both widths.
[[nodiscard]] bool plan_narrow_accumulator(const ShiftPlan& plan, int act_bits);

// Reference float convolution of one image (for bit-exactness tests):
// weights [O, I, K, K], image [C, H, W] -> [O, OH, OW]. Accumulates in
// double so it serves as the "real arithmetic" oracle.
tensor::Tensor reference_conv(const tensor::Tensor& weights,
                              const tensor::Tensor& image, std::int64_t stride,
                              std::int64_t padding,
                              const tensor::Tensor& bias = {});

}  // namespace flightnn::inference
