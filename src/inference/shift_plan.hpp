#pragma once

// Compiled execution plan for the shift-add engine. A `core::Decomposition`
// is a faithful record of the quantizer's output: per-term element vectors
// that still contain zero elements (sign == 0) and per-filter term lists
// that may be empty (pruned filters). Walking that record at inference time
// makes the inner loop pay for weights that contribute nothing -- exactly
// the cost the paper's per-filter k_i is supposed to eliminate (Fig. 3).
//
// `ShiftPlan` lowers the decomposition once, at engine construction, into a
// flat structure-of-arrays: one contiguous stream of (element, shift, sign)
// entries per filter, with every zero element and every pruned filter elided.
// Steady-state kernel work is then exactly proportional to
// Σ_i k_i · nnz_i -- the paper's energy-proportionality, realized in
// software.
//
// Entry order is: filters ascending; within a filter, terms in decomposition
// order; within a term, elements in index order. The order is stable and
// documented, but the engine's correctness does not depend on it: each
// output accumulator receives the same multiset of integer addends as the
// reference term-walk, and int64 addition is associative and commutative, so
// any regrouping produces bit-identical results (DESIGN.md §9).

#include <cstdint>
#include <vector>

#include "core/decompose.hpp"
#include "quant/pow2.hpp"

namespace flightnn::inference {

struct ShiftPlan {
  // --- SoA entry streams, indexed [filter_begin[f], filter_begin[f+1]) ------
  // Flat weight-element index of the entry: for conv, c*K*K + ky*K + kx into
  // the OIHW filter; for linear, the input-feature index.
  std::vector<std::int32_t> element;
  // Conv-only spatial split of `element` (ky/kx drive the border path and
  // the analytic op counts; channel the input-plane offset). Empty for
  // linear plans.
  std::vector<std::int32_t> channel;
  std::vector<std::int16_t> ky;
  std::vector<std::int16_t> kx;
  // Barrel-shifter amount (exponent - e_min, always >= 0) and sign (+1/-1;
  // zero-sign elements never make it into a plan).
  std::vector<std::int8_t> shift;
  std::vector<std::int8_t> sign;

  // Prefix array over filters: filter f's entries are
  // [filter_begin[f], filter_begin[f+1]); size filters + 1. A pruned filter
  // has an empty range and costs nothing at run time.
  std::vector<std::int64_t> filter_begin;

  // Per-filter worst-case accumulator gain: sum of 2^shift over the filter's
  // entries, saturated at the accumulator guard. |accumulator| <= max|q| *
  // filter_gain[f] bounds every intermediate partial sum, enabling one
  // overflow check per filter instead of per accumulate.
  std::vector<std::int64_t> filter_gain;

  std::int64_t filters = 0;

  [[nodiscard]] std::int64_t entries() const {
    return static_cast<std::int64_t>(element.size());
  }
  [[nodiscard]] bool is_conv() const { return !channel.empty() || element.empty(); }

  // Lower a conv decomposition (OIHW weights [filters, in_channels, K, K]).
  static ShiftPlan compile_conv(const core::Decomposition& decomposition,
                                const quant::Pow2Config& config,
                                std::int64_t in_channels, std::int64_t kernel);

  // Lower a linear decomposition (weights [filters, in_features]).
  static ShiftPlan compile_linear(const core::Decomposition& decomposition,
                                  const quant::Pow2Config& config);
};

// Saturation ceiling shared with the engine's overflow contract.
inline constexpr std::int64_t kShiftAccumulatorGuard = std::int64_t{1} << 62;

}  // namespace flightnn::inference
