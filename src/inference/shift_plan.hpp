#pragma once

// Compiled execution plan for the shift-add engine. A `core::Decomposition`
// is a faithful record of the quantizer's output: per-term element vectors
// that still contain zero elements (sign == 0) and per-filter term lists
// that may be empty (pruned filters). Walking that record at inference time
// makes the inner loop pay for weights that contribute nothing -- exactly
// the cost the paper's per-filter k_i is supposed to eliminate (Fig. 3).
//
// `ShiftPlan` lowers the decomposition once, at engine construction, into a
// flat structure-of-arrays: one contiguous stream of (element, shift, sign)
// entries per filter, with every zero element and every pruned filter elided.
// Steady-state kernel work is then exactly proportional to
// Σ_i k_i · nnz_i -- the paper's energy-proportionality, realized in
// software.
//
// Entry order is: filters ascending; within a filter, terms in decomposition
// order; within a term, elements in index order. The order is stable and
// documented, but the engine's correctness does not depend on it: each
// output accumulator receives the same multiset of integer addends as the
// reference term-walk, and int64 addition is associative and commutative, so
// any regrouping produces bit-identical results (DESIGN.md §9).

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/decompose.hpp"
#include "quant/pow2.hpp"
#include "support/check.hpp"

namespace flightnn::inference {

// Own-or-view array for the plan's SoA streams. A plan built by
// compile_conv/compile_linear owns its storage (push_back during lowering);
// a plan fixed up from a mapped deployment artifact *views* the blob's
// sections directly -- zero copies, the mapping is the storage. The read API
// (data/size/operator[]/iteration) is identical in both modes, so the
// kernels never know the difference; mutation is owning-mode only.
template <typename T>
class PlanArray {
 public:
  PlanArray() = default;

  // A non-owning window into `count` elements at `data`. The caller
  // guarantees the backing memory (e.g. an artifact mapping) outlives the
  // plan; alignment must satisfy alignof(T).
  static PlanArray view(const T* data, std::size_t count) {
    PlanArray array;
    array.viewing_ = true;
    array.data_ = data;
    array.size_ = count;
    return array;
  }

  // Copies rebind data_ to the copy's own storage; a copied view stays a
  // view of the same memory.
  PlanArray(const PlanArray& other) { *this = other; }
  PlanArray& operator=(const PlanArray& other) {
    if (this == &other) return *this;
    viewing_ = other.viewing_;
    own_ = other.own_;
    if (viewing_) {
      data_ = other.data_;
      size_ = other.size_;
    } else {
      rebind();
    }
    return *this;
  }
  PlanArray(PlanArray&& other) noexcept { *this = std::move(other); }
  PlanArray& operator=(PlanArray&& other) noexcept {
    if (this == &other) return *this;
    viewing_ = other.viewing_;
    own_ = std::move(other.own_);
    if (viewing_) {
      data_ = other.data_;
      size_ = other.size_;
    } else {
      rebind();
    }
    other.viewing_ = false;
    other.own_.clear();
    other.rebind();
    return *this;
  }

  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool is_view() const { return viewing_; }

  const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] const T& front() const { return data_[0]; }
  [[nodiscard]] const T& back() const { return data_[size_ - 1]; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }

  // --- owning-mode mutation (compile-time lowering only) -------------------
  T& operator[](std::size_t i) {
    FLIGHTNN_DCHECK(!viewing_, "PlanArray: mutation of a view");
    return own_[i];
  }
  void push_back(T value) {
    FLIGHTNN_DCHECK(!viewing_, "PlanArray: mutation of a view");
    own_.push_back(value);
    rebind();
  }
  void reserve(std::size_t count) {
    FLIGHTNN_DCHECK(!viewing_, "PlanArray: mutation of a view");
    own_.reserve(count);
  }
  void assign(std::size_t count, T value) {
    FLIGHTNN_DCHECK(!viewing_, "PlanArray: mutation of a view");
    own_.assign(count, value);
    rebind();
  }

 private:
  void rebind() {
    data_ = own_.data();
    size_ = own_.size();
  }

  bool viewing_ = false;
  const T* data_ = nullptr;
  std::size_t size_ = 0;
  std::vector<T> own_;  // empty in view mode
};

struct ShiftPlan {
  // --- SoA entry streams, indexed [filter_begin[f], filter_begin[f+1]) ------
  // Flat weight-element index of the entry: for conv, c*K*K + ky*K + kx into
  // the OIHW filter; for linear, the input-feature index.
  PlanArray<std::int32_t> element;
  // Conv-only spatial split of `element` (ky/kx drive the border path and
  // the analytic op counts; channel the input-plane offset). Empty for
  // linear plans.
  PlanArray<std::int32_t> channel;
  PlanArray<std::int16_t> ky;
  PlanArray<std::int16_t> kx;
  // Barrel-shifter amount (exponent - e_min, always >= 0) and sign (+1/-1;
  // zero-sign elements never make it into a plan).
  PlanArray<std::int8_t> shift;
  PlanArray<std::int8_t> sign;

  // Prefix array over filters: filter f's entries are
  // [filter_begin[f], filter_begin[f+1]); size filters + 1. A pruned filter
  // has an empty range and costs nothing at run time.
  PlanArray<std::int64_t> filter_begin;

  // Per-filter worst-case accumulator gain: sum of 2^shift over the filter's
  // entries, saturated at the accumulator guard. |accumulator| <= max|q| *
  // filter_gain[f] bounds every intermediate partial sum, enabling one
  // overflow check per filter instead of per accumulate.
  PlanArray<std::int64_t> filter_gain;

  // --- Derived uniform vector streams (Fig. 3 lowering; DESIGN.md §14) -----
  // Built by build_vector_streams() once the core streams exist; always
  // owned, never serialized. An artifact-adopted plan keeps its core streams
  // as zero-copy views into the mapping and repacks only these derived
  // streams at load time -- the `.flnart` format stays at v1.
  //
  // mult[e] = sign[e] * 2^shift[e] as int32: the exact per-entry multiplier
  // the narrow (int32) kernel tier uses. Entries with shift > 30 store 0;
  // they are unreachable, because such a filter's gain already exceeds the
  // int32 bound and the engine takes the int64 scalar path before reading
  // mult.
  PlanArray<std::int32_t> mult;
  // Linear-only gather streams, zero-padded per filter to a multiple of
  // kShiftVectorLane (shift_kernels.hpp): filter f's padded entries are
  // [pad_begin[f], pad_begin[f+1]), both ends lane-aligned. Pad entries are
  // (element 0, mult 0) no-ops -- in-bounds for any layer (in_features >= 1)
  // and contributing nothing -- so the 8-wide gather kernel runs to the
  // padded end without tail masking or overreading any stream. Empty for
  // conv plans (the conv kernels iterate output positions, not entries).
  PlanArray<std::int32_t> pad_element;
  PlanArray<std::int32_t> pad_mult;
  PlanArray<std::int64_t> pad_begin;
  // True once build_vector_streams() has run (it is idempotent).
  bool vector_streams_built = false;

  std::int64_t filters = 0;

  // Derive the vector streams above from the core streams. Called by the
  // compilers and by the plan-adopting engine constructors (the in-loader
  // repack for artifact plans); safe on any structurally-valid plan --
  // out-of-range shifts map to mult 0 and negative filter spans pad to
  // empty, so even a hostile hand-built plan cannot make this index wild.
  void build_vector_streams();

  [[nodiscard]] std::int64_t entries() const {
    return static_cast<std::int64_t>(element.size());
  }
  [[nodiscard]] bool is_conv() const { return !channel.empty() || element.empty(); }

  // Lower a conv decomposition (OIHW weights [filters, in_channels, K, K]).
  static ShiftPlan compile_conv(const core::Decomposition& decomposition,
                                const quant::Pow2Config& config,
                                std::int64_t in_channels, std::int64_t kernel);

  // Lower a linear decomposition (weights [filters, in_features]).
  static ShiftPlan compile_linear(const core::Decomposition& decomposition,
                                  const quant::Pow2Config& config);
};

// Saturation ceiling shared with the engine's overflow contract.
inline constexpr std::int64_t kShiftAccumulatorGuard = std::int64_t{1} << 62;

}  // namespace flightnn::inference
