#include "inference/quantized_network.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "support/annotations.hpp"
#include "support/check.hpp"

#include "core/flightnn_transform.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/pooling.hpp"
#include "nn/residual.hpp"
#include "quant/lightnn.hpp"

namespace flightnn::inference {

namespace {

using Step = QuantizedNetwork::Step;
using StepPtr = std::unique_ptr<Step>;

// Quantization scratch shared by the steps on one thread. Safe because a
// thread runs its forward pass step by step: the quantized values are
// consumed (by dequantize or an engine run) before the next step overwrites
// them. Reusing one buffer across layers keeps steady-state quantization
// allocation-free once the largest layer has sized it.
QuantizedActivations& quant_scratch() {
  thread_local QuantizedActivations scratch;
  return scratch;
}

// --- Steps --------------------------------------------------------------------

class QuantizeActStep final : public Step {
 public:
  explicit QuantizeActStep(int bits) : bits_(bits) {}
  tensor::Tensor run(const tensor::Tensor& input,
                     NetworkOpCounts* /*counts*/) const override {
    return fake_quantize(input, bits_);
  }
  [[nodiscard]] std::string describe() const override {
    return "quant(" + std::to_string(bits_) + "b)";
  }

 private:
  int bits_;
};

class ShiftConvStep final : public Step {
 public:
  ShiftConvStep(ShiftConv2d engine, int act_bits, bool use_reference)
      : engine_(std::move(engine)),
        act_bits_(act_bits),
        use_reference_(use_reference) {}
  tensor::Tensor run(const tensor::Tensor& input,
                     NetworkOpCounts* counts) const override {
    // Inputs arriving here are already on the activation-quantizer grid, so
    // this re-quantization is lossless (same abs-max-driven pow2 scale).
    QuantizedActivations& q = quant_scratch();
    quantize_image_into(input, act_bits_, q);
    OpCounts ops{};
    tensor::Tensor out = use_reference_
                             ? engine_.run_reference(q, counts ? &ops : nullptr)
                             : engine_.run(q, counts ? &ops : nullptr);
    if (counts != nullptr) {
      counts->shifts += ops.shifts;
      counts->adds += ops.adds;
    }
    return out;
  }
  [[nodiscard]] std::string describe() const override {
    return "shift_conv[" + std::to_string(engine_.out_channels()) + "f/" +
           std::to_string(engine_.term_count()) + "t]";
  }
  [[nodiscard]] std::int64_t term_count() const override {
    return engine_.term_count();
  }

 private:
  ShiftConv2d engine_;
  int act_bits_;
  bool use_reference_;
};

class FloatConvStep final : public Step {
 public:
  FloatConvStep(tensor::Tensor weights, tensor::Tensor bias, std::int64_t stride,
                std::int64_t padding)
      : weights_(std::move(weights)),
        bias_(std::move(bias)),
        stride_(stride),
        padding_(padding) {}
  tensor::Tensor run(const tensor::Tensor& input,
                     NetworkOpCounts* counts) const override {
    if (counts != nullptr) {
      const auto& ws = weights_.shape();
      const std::int64_t out_h =
          (input.shape()[1] + 2 * padding_ - ws[2]) / stride_ + 1;
      const std::int64_t out_w =
          (input.shape()[2] + 2 * padding_ - ws[3]) / stride_ + 1;
      counts->float_macs += ws[0] * ws[1] * ws[2] * ws[3] * out_h * out_w;
    }
    return reference_conv(weights_, input, stride_, padding_, bias_);
  }
  [[nodiscard]] std::string describe() const override {
    return "float_conv[" + std::to_string(weights_.shape()[0]) + "f]";
  }

 private:
  tensor::Tensor weights_, bias_;
  std::int64_t stride_, padding_;
};

// Per-channel y = scale[c] * x + bias[c] (folded batch norm).
class AffineStep final : public Step {
 public:
  AffineStep(std::vector<float> scale, std::vector<float> bias)
      : scale_(std::move(scale)), bias_(std::move(bias)) {}
  tensor::Tensor run(const tensor::Tensor& input,
                     NetworkOpCounts* /*counts*/) const override {
    const auto& s = input.shape();
    FLIGHTNN_CHECK(s.rank() == 3 &&
                       s[0] == static_cast<std::int64_t>(scale_.size()),
                   "AffineStep: expected [", scale_.size(),
                   ", H, W] input, got ", s.to_string());
    tensor::Tensor out(s);
    const std::int64_t hw = s[1] * s[2];
    for (std::size_t c = 0; c < scale_.size(); ++c) {
      const float* in_plane = input.data() + static_cast<std::int64_t>(c) * hw;
      float* out_plane = out.data() + static_cast<std::int64_t>(c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        out_plane[i] = scale_[c] * in_plane[i] + bias_[c];
      }
    }
    return out;
  }
  [[nodiscard]] std::string describe() const override { return "affine"; }

 private:
  std::vector<float> scale_, bias_;
};

class LeakyReLUStep final : public Step {
 public:
  explicit LeakyReLUStep(float slope) : slope_(slope) {}
  tensor::Tensor run(const tensor::Tensor& input,
                     NetworkOpCounts* /*counts*/) const override {
    tensor::Tensor out(input.shape());
    for (std::int64_t i = 0; i < input.numel(); ++i) {
      const float v = input[i];
      out[i] = v > 0.0F ? v : slope_ * v;
    }
    return out;
  }
  [[nodiscard]] std::string describe() const override { return "leaky_relu"; }

 private:
  float slope_;
};

class MaxPoolStep final : public Step {
 public:
  MaxPoolStep(std::int64_t window, std::int64_t stride)
      : window_(window), stride_(stride) {}
  tensor::Tensor run(const tensor::Tensor& input,
                     NetworkOpCounts* /*counts*/) const override {
    const auto& s = input.shape();
    FLIGHTNN_CHECK(s.rank() == 3, "MaxPoolStep: CHW input expected, got ",
                   s.to_string());
    const std::int64_t channels = s[0], in_h = s[1], in_w = s[2];
    FLIGHTNN_CHECK(in_h >= window_ && in_w >= window_,
                   "MaxPoolStep: window ", window_, " larger than input ",
                   s.to_string());
    const std::int64_t out_h = (in_h - window_) / stride_ + 1;
    const std::int64_t out_w = (in_w - window_) / stride_ + 1;
    tensor::Tensor out(tensor::Shape{channels, out_h, out_w});
    for (std::int64_t c = 0; c < channels; ++c) {
      const float* plane = input.data() + c * in_h * in_w;
      float* out_plane = out.data() + c * out_h * out_w;
      for (std::int64_t oy = 0; oy < out_h; ++oy) {
        for (std::int64_t ox = 0; ox < out_w; ++ox) {
          float best = plane[(oy * stride_) * in_w + ox * stride_];
          for (std::int64_t ky = 0; ky < window_; ++ky) {
            for (std::int64_t kx = 0; kx < window_; ++kx) {
              best = std::max(best, plane[(oy * stride_ + ky) * in_w +
                                          ox * stride_ + kx]);
            }
          }
          out_plane[oy * out_w + ox] = best;
        }
      }
    }
    return out;
  }
  [[nodiscard]] std::string describe() const override { return "maxpool"; }

 private:
  std::int64_t window_, stride_;
};

class GapStep final : public Step {
 public:
  tensor::Tensor run(const tensor::Tensor& input,
                     NetworkOpCounts* /*counts*/) const override {
    const auto& s = input.shape();
    FLIGHTNN_CHECK(s.rank() == 3, "GapStep: CHW input expected, got ",
                   s.to_string());
    const std::int64_t channels = s[0], hw = s[1] * s[2];
    tensor::Tensor out(tensor::Shape{channels});
    for (std::int64_t c = 0; c < channels; ++c) {
      const float* plane = input.data() + c * hw;
      double acc = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) acc += plane[i];
      out[c] = static_cast<float>(acc / static_cast<double>(hw));
    }
    return out;
  }
  [[nodiscard]] std::string describe() const override { return "gap"; }
};

class FlattenStep final : public Step {
 public:
  tensor::Tensor run(const tensor::Tensor& input,
                     NetworkOpCounts* /*counts*/) const override {
    return input.reshaped(tensor::Shape{input.numel()});
  }
  [[nodiscard]] std::string describe() const override { return "flatten"; }
};

class ShiftLinearStep final : public Step {
 public:
  ShiftLinearStep(ShiftLinear engine, int act_bits, bool use_reference)
      : engine_(std::move(engine)),
        act_bits_(act_bits),
        use_reference_(use_reference) {}
  tensor::Tensor run(const tensor::Tensor& input,
                     NetworkOpCounts* counts) const override {
    // No explicit flatten: quantization is shape-oblivious and the engine
    // validates numel, so the values stream straight through.
    QuantizedActivations& q = quant_scratch();
    quantize_tensor_into(input, act_bits_, q);
    q.shape = tensor::Shape{input.numel()};
    OpCounts ops{};
    tensor::Tensor out = use_reference_
                             ? engine_.run_reference(q, counts ? &ops : nullptr)
                             : engine_.run(q, counts ? &ops : nullptr);
    if (counts != nullptr) {
      counts->shifts += ops.shifts;
      counts->adds += ops.adds;
    }
    return out;
  }
  [[nodiscard]] std::string describe() const override {
    return "shift_linear[" + std::to_string(engine_.out_features()) + "]";
  }
  [[nodiscard]] std::int64_t term_count() const override {
    return engine_.term_count();
  }

 private:
  ShiftLinear engine_;
  int act_bits_;
  bool use_reference_;
};

class FloatLinearStep final : public Step {
 public:
  FloatLinearStep(tensor::Tensor weights, tensor::Tensor bias)
      : weights_(std::move(weights)), bias_(std::move(bias)) {}
  tensor::Tensor run(const tensor::Tensor& input,
                     NetworkOpCounts* counts) const override {
    const std::int64_t out_features = weights_.shape()[0];
    const std::int64_t in_features = weights_.shape()[1];
    tensor::Tensor flat = input.shape().rank() == 1
                              ? input
                              : input.reshaped(tensor::Shape{input.numel()});
    FLIGHTNN_CHECK(flat.numel() == in_features,
                   "FloatLinearStep: input numel ", flat.numel(),
                   " does not match in features ", in_features);
    if (counts != nullptr) counts->float_macs += out_features * in_features;
    tensor::Tensor out(tensor::Shape{out_features});
    for (std::int64_t o = 0; o < out_features; ++o) {
      double acc = bias_.empty() ? 0.0 : bias_[o];
      const float* row = weights_.data() + o * in_features;
      for (std::int64_t e = 0; e < in_features; ++e) {
        acc += static_cast<double>(row[e]) * flat[e];
      }
      out[o] = static_cast<float>(acc);
    }
    return out;
  }
  [[nodiscard]] std::string describe() const override {
    return "float_linear[" + std::to_string(weights_.shape()[0]) + "]";
  }

 private:
  tensor::Tensor weights_, bias_;
};

class ResidualStep final : public Step {
 public:
  ResidualStep(std::vector<StepPtr> main_steps, std::vector<StepPtr> shortcut_steps,
               bool has_shortcut, std::vector<StepPtr> post_steps)
      : main_(std::move(main_steps)),
        shortcut_(std::move(shortcut_steps)),
        has_shortcut_(has_shortcut),
        post_(std::move(post_steps)) {}

  tensor::Tensor run(const tensor::Tensor& input,
                     NetworkOpCounts* counts) const override {
    tensor::Tensor main_out = run_chain(main_, input, counts);
    tensor::Tensor skip_out =
        has_shortcut_ ? run_chain(shortcut_, input, counts) : input;
    main_out += skip_out;
    return run_chain(post_, main_out, counts);
  }
  [[nodiscard]] std::string describe() const override { return "residual"; }

 private:
  static tensor::Tensor run_chain(const std::vector<StepPtr>& steps,
                                  const tensor::Tensor& input,
                                  NetworkOpCounts* counts) {
    tensor::Tensor current = input;
    for (const auto& step : steps) current = step->run(current, counts);
    return current;
  }

  std::vector<StepPtr> main_, shortcut_;
  bool has_shortcut_;
  std::vector<StepPtr> post_;
};

// --- Compilation ----------------------------------------------------------------

struct CompileState {
  const CompileOptions* options;
  int current_act_bits;  // bits of the most recent activation quantizer
};

void compile_into(nn::Sequential& seq, CompileState& state,
                  std::vector<StepPtr>& steps);

void compile_layer(nn::Layer& layer, CompileState& state,
                   std::vector<StepPtr>& steps) {
  if (auto* seq = dynamic_cast<nn::Sequential*>(&layer)) {
    compile_into(*seq, state, steps);
    return;
  }
  if (auto* aq = dynamic_cast<nn::ActivationQuant*>(&layer)) {
    state.current_act_bits = aq->bits();
    steps.push_back(std::make_unique<QuantizeActStep>(aq->bits()));
    return;
  }
  if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
    tensor::Tensor wq = conv->quantized_weight();
    tensor::Tensor bias =
        conv->has_bias() ? conv->bias().value : tensor::Tensor();
    int k_max = 0;
    quant::Pow2Config pow2 = state.options->pow2;
    if (auto* lightnn =
            dynamic_cast<quant::LightNNTransform*>(conv->weight_transform())) {
      k_max = lightnn->k();
      pow2 = lightnn->config();
    } else if (auto* fl = dynamic_cast<core::FLightNNTransform*>(
                   conv->weight_transform())) {
      k_max = fl->config().k_max;
      pow2 = fl->config().pow2;
    }
    if (k_max > 0) {
      steps.push_back(std::make_unique<ShiftConvStep>(
          ShiftConv2d(wq, k_max, pow2, conv->stride(), conv->padding(),
                      std::move(bias)),
          state.current_act_bits, state.options->use_reference_engine));
    } else {
      steps.push_back(std::make_unique<FloatConvStep>(
          std::move(wq), std::move(bias), conv->stride(), conv->padding()));
    }
    return;
  }
  if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&layer)) {
    const auto& mean = bn->running_mean();
    const auto& var = bn->running_var();
    const auto channels = static_cast<std::size_t>(mean.numel());
    std::vector<float> scale(channels), bias(channels);
    for (std::size_t c = 0; c < channels; ++c) {
      const auto i = static_cast<std::int64_t>(c);
      const float inv_std = 1.0F / std::sqrt(var[i] + 1e-5F);
      scale[c] = bn->gamma().value[i] * inv_std;
      bias[c] = bn->beta().value[i] - mean[i] * scale[c];
    }
    steps.push_back(std::make_unique<AffineStep>(std::move(scale), std::move(bias)));
    return;
  }
  if (auto* act = dynamic_cast<nn::LeakyReLU*>(&layer)) {
    steps.push_back(std::make_unique<LeakyReLUStep>(act->negative_slope()));
    return;
  }
  if (auto* pool = dynamic_cast<nn::MaxPool2d*>(&layer)) {
    steps.push_back(std::make_unique<MaxPoolStep>(pool->window(), pool->stride()));
    return;
  }
  if (dynamic_cast<nn::GlobalAvgPool*>(&layer) != nullptr) {
    steps.push_back(std::make_unique<GapStep>());
    return;
  }
  if (dynamic_cast<nn::Flatten*>(&layer) != nullptr) {
    steps.push_back(std::make_unique<FlattenStep>());
    return;
  }
  if (auto* linear = dynamic_cast<nn::Linear*>(&layer)) {
    tensor::Tensor wq = linear->quantized_weight();
    tensor::Tensor bias = linear->bias().value;
    int k_max = 0;
    quant::Pow2Config pow2 = state.options->pow2;
    if (auto* lightnn =
            dynamic_cast<quant::LightNNTransform*>(linear->weight_transform())) {
      k_max = lightnn->k();
      pow2 = lightnn->config();
    } else if (auto* fl = dynamic_cast<core::FLightNNTransform*>(
                   linear->weight_transform())) {
      k_max = fl->config().k_max;
      pow2 = fl->config().pow2;
    }
    if (k_max > 0) {
      steps.push_back(std::make_unique<ShiftLinearStep>(
          ShiftLinear(wq, k_max, pow2, std::move(bias)),
          state.current_act_bits, state.options->use_reference_engine));
    } else {
      steps.push_back(
          std::make_unique<FloatLinearStep>(std::move(wq), std::move(bias)));
    }
    return;
  }
  if (auto* block = dynamic_cast<nn::ResidualBlock*>(&layer)) {
    // Each branch sees the same incoming activation-quantization state.
    std::vector<StepPtr> main_steps, shortcut_steps, post_steps;
    CompileState main_state = state;
    compile_into(block->main_path(), main_state, main_steps);
    CompileState skip_state = state;
    const bool has_shortcut = block->shortcut() != nullptr;
    if (has_shortcut) {
      compile_into(*block->shortcut(), skip_state, shortcut_steps);
    }
    CompileState post_state = main_state;
    compile_into(block->post(), post_state, post_steps);
    state = post_state;
    steps.push_back(std::make_unique<ResidualStep>(
        std::move(main_steps), std::move(shortcut_steps), has_shortcut,
        std::move(post_steps)));
    return;
  }
  throw std::invalid_argument("QuantizedNetwork: unsupported layer '" +
                              layer.name() + "'");
}

void compile_into(nn::Sequential& seq, CompileState& state,
                  std::vector<StepPtr>& steps) {
  for (const auto& layer : seq.layers()) {
    compile_layer(*layer, state, steps);
  }
}

}  // namespace

QuantizedNetwork QuantizedNetwork::compile(nn::Sequential& model,
                                           const tensor::Shape& input_shape,
                                           const CompileOptions& options) {
  FLIGHTNN_CHECK(input_shape.rank() == 4 && input_shape[0] == 1,
                 "QuantizedNetwork: expected [1, C, H, W] input shape, got ",
                 input_shape.to_string());
  // One eval forward so batch-norm statistics and conv geometry are final.
  tensor::Tensor dummy(input_shape);
  (void)model.forward(dummy, /*training=*/false);

  QuantizedNetwork network;
  CompileState state{&options, options.act_bits};
  compile_into(model, state, network.steps_);
  return network;
}

FLIGHTNN_HOT FLIGHTNN_API_ENTRY tensor::Tensor QuantizedNetwork::run(
    const tensor::Tensor& image, NetworkOpCounts* counts) const {
  tensor::Tensor current;
  const auto& s = image.shape();
  FLIGHTNN_CHECK(s.rank() == 3 || (s.rank() == 4 && s[0] == 1),
                 "QuantizedNetwork::run: expected [C,H,W] or [1,C,H,W], got ",
                 s.to_string());
  if (s.rank() == 3) {
    current = image;
  } else {
    current = image.reshaped(tensor::Shape{s[1], s[2], s[3]});
  }
  for (const auto& step : steps_) {
    current = step->run(current, counts);
  }
  if (counts != nullptr) ++counts->images;
  return current;
}

std::vector<StepProfile> QuantizedNetwork::profile(const tensor::Tensor& image,
                                                   int repeats) const {
  FLIGHTNN_CHECK(repeats >= 1, "QuantizedNetwork::profile: repeats ", repeats,
                 " must be >= 1");
  tensor::Tensor current;
  const auto& s = image.shape();
  FLIGHTNN_CHECK(s.rank() == 3 || (s.rank() == 4 && s[0] == 1),
                 "QuantizedNetwork::profile: expected [C,H,W] or [1,C,H,W], "
                 "got ", s.to_string());
  if (s.rank() == 3) {
    current = image;
  } else {
    current = image.reshaped(tensor::Shape{s[1], s[2], s[3]});
  }

  std::vector<StepProfile> profiles;
  profiles.reserve(steps_.size());
  for (const auto& step : steps_) {
    StepProfile p;
    p.name = step->describe();
    p.terms = step->term_count();
    NetworkOpCounts ops{};
    tensor::Tensor out;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      out = step->run(current, r == 0 ? &ops : nullptr);
    }
    const auto t1 = std::chrono::steady_clock::now();
    p.seconds = std::chrono::duration<double>(t1 - t0).count() / repeats;
    p.shifts = ops.shifts;
    p.adds = ops.adds;
    p.float_macs = ops.float_macs;
    profiles.push_back(std::move(p));
    current = std::move(out);
  }
  return profiles;
}

double QuantizedNetwork::evaluate(const data::Dataset& dataset, int top_k,
                                  NetworkOpCounts* counts) const {
  std::int64_t hits = 0;
  for (std::int64_t n = 0; n < dataset.size(); ++n) {
    tensor::Tensor logits = run(dataset.image(n), counts);
    const tensor::Tensor row =
        logits.reshaped(tensor::Shape{1, logits.numel()});
    hits += nn::top_k_accuracy(row, {dataset.labels[static_cast<std::size_t>(n)]},
                               top_k) > 0.5
                ? 1
                : 0;
  }
  return dataset.size() > 0
             ? static_cast<double>(hits) / static_cast<double>(dataset.size())
             : 0.0;
}

std::string QuantizedNetwork::describe() const {
  std::string out;
  for (const auto& step : steps_) {
    if (!out.empty()) out += " -> ";
    out += step->describe();
  }
  return out;
}

}  // namespace flightnn::inference
