#include "inference/quantized_network.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "support/annotations.hpp"
#include "support/check.hpp"

#include "inference/memory_plan.hpp"
#include "nn/loss.hpp"

namespace flightnn::inference {

namespace {

using Step = QuantizedNetwork::Step;
using StepPtr = std::unique_ptr<Step>;

// Quantization scratch shared by the steps on one thread. Safe because a
// thread runs its forward pass step by step: the quantized values are
// consumed (by dequantize or an engine run) before the next step overwrites
// them. Reusing one buffer across layers keeps steady-state quantization
// allocation-free once the largest layer has sized it.
QuantizedActivations& quant_scratch() {
  thread_local QuantizedActivations scratch;
  return scratch;
}

// --- Steps --------------------------------------------------------------------

class QuantizeActStep final : public Step {
 public:
  explicit QuantizeActStep(int bits) : bits_(bits) {}
  tensor::Tensor run(const tensor::Tensor& input,
                     NetworkOpCounts* /*counts*/) const override {
    return fake_quantize(input, bits_);
  }
  [[nodiscard]] std::string describe() const override {
    return "quant(" + std::to_string(bits_) + "b)";
  }

 private:
  int bits_;
};

class ShiftConvStep final : public Step {
 public:
  ShiftConvStep(ShiftConv2d engine, int act_bits, bool use_reference,
                runtime::PlanContext ctx = {})
      : engine_(std::move(engine)),
        act_bits_(act_bits),
        use_reference_(use_reference),
        ctx_(ctx) {}
  tensor::Tensor run(const tensor::Tensor& input,
                     NetworkOpCounts* counts) const override {
    // Inputs arriving here are already on the activation-quantizer grid, so
    // this re-quantization is lossless (same abs-max-driven pow2 scale).
    QuantizedActivations& q = quant_scratch();
    quantize_image_into(input, act_bits_, q);
    OpCounts ops{};
    tensor::Tensor out =
        use_reference_
            ? engine_.run_reference(q, counts ? &ops : nullptr)
            : engine_.run(q, counts ? &ops : nullptr,
                          ctx_.layout != nullptr ? &ctx_ : nullptr);
    if (counts != nullptr) {
      counts->shifts += ops.shifts;
      counts->adds += ops.adds;
    }
    return out;
  }
  [[nodiscard]] std::string describe() const override {
    return "shift_conv[" + std::to_string(engine_.out_channels()) + "f/" +
           std::to_string(engine_.term_count()) + "t]";
  }
  [[nodiscard]] std::int64_t term_count() const override {
    return engine_.term_count();
  }
  [[nodiscard]] const char* kernel_tier() const override {
    return use_reference_ ? "reference" : engine_.kernel_tier(act_bits_);
  }

 private:
  ShiftConv2d engine_;
  int act_bits_;
  bool use_reference_;
  // Planned-arena context; layout lives in the owning network's shared
  // MemoryPlan, so the pointer stays valid across network moves.
  runtime::PlanContext ctx_;
};

class FloatConvStep final : public Step {
 public:
  FloatConvStep(tensor::Tensor weights, tensor::Tensor bias, std::int64_t stride,
                std::int64_t padding)
      : weights_(std::move(weights)),
        bias_(std::move(bias)),
        stride_(stride),
        padding_(padding) {}
  tensor::Tensor run(const tensor::Tensor& input,
                     NetworkOpCounts* counts) const override {
    if (counts != nullptr) {
      const auto& ws = weights_.shape();
      const std::int64_t out_h =
          (input.shape()[1] + 2 * padding_ - ws[2]) / stride_ + 1;
      const std::int64_t out_w =
          (input.shape()[2] + 2 * padding_ - ws[3]) / stride_ + 1;
      counts->float_macs += ws[0] * ws[1] * ws[2] * ws[3] * out_h * out_w;
    }
    return reference_conv(weights_, input, stride_, padding_, bias_);
  }
  [[nodiscard]] std::string describe() const override {
    return "float_conv[" + std::to_string(weights_.shape()[0]) + "f]";
  }

 private:
  tensor::Tensor weights_, bias_;
  std::int64_t stride_, padding_;
};

// Per-channel y = scale[c] * x + bias[c] (folded batch norm).
class AffineStep final : public Step {
 public:
  AffineStep(std::vector<float> scale, std::vector<float> bias)
      : scale_(std::move(scale)), bias_(std::move(bias)) {}
  tensor::Tensor run(const tensor::Tensor& input,
                     NetworkOpCounts* /*counts*/) const override {
    const auto& s = input.shape();
    FLIGHTNN_CHECK(s.rank() == 3 &&
                       s[0] == static_cast<std::int64_t>(scale_.size()),
                   "AffineStep: expected [", scale_.size(),
                   ", H, W] input, got ", s.to_string());
    tensor::Tensor out(s);
    const std::int64_t hw = s[1] * s[2];
    for (std::size_t c = 0; c < scale_.size(); ++c) {
      const float* in_plane = input.data() + static_cast<std::int64_t>(c) * hw;
      float* out_plane = out.data() + static_cast<std::int64_t>(c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        out_plane[i] = scale_[c] * in_plane[i] + bias_[c];
      }
    }
    return out;
  }
  [[nodiscard]] std::string describe() const override { return "affine"; }

 private:
  std::vector<float> scale_, bias_;
};

class LeakyReLUStep final : public Step {
 public:
  explicit LeakyReLUStep(float slope) : slope_(slope) {}
  tensor::Tensor run(const tensor::Tensor& input,
                     NetworkOpCounts* /*counts*/) const override {
    tensor::Tensor out(input.shape());
    for (std::int64_t i = 0; i < input.numel(); ++i) {
      const float v = input[i];
      out[i] = v > 0.0F ? v : slope_ * v;
    }
    return out;
  }
  [[nodiscard]] std::string describe() const override { return "leaky_relu"; }

 private:
  float slope_;
};

class MaxPoolStep final : public Step {
 public:
  MaxPoolStep(std::int64_t window, std::int64_t stride)
      : window_(window), stride_(stride) {}
  tensor::Tensor run(const tensor::Tensor& input,
                     NetworkOpCounts* /*counts*/) const override {
    const auto& s = input.shape();
    FLIGHTNN_CHECK(s.rank() == 3, "MaxPoolStep: CHW input expected, got ",
                   s.to_string());
    const std::int64_t channels = s[0], in_h = s[1], in_w = s[2];
    FLIGHTNN_CHECK(in_h >= window_ && in_w >= window_,
                   "MaxPoolStep: window ", window_, " larger than input ",
                   s.to_string());
    const std::int64_t out_h = (in_h - window_) / stride_ + 1;
    const std::int64_t out_w = (in_w - window_) / stride_ + 1;
    tensor::Tensor out(tensor::Shape{channels, out_h, out_w});
    for (std::int64_t c = 0; c < channels; ++c) {
      const float* plane = input.data() + c * in_h * in_w;
      float* out_plane = out.data() + c * out_h * out_w;
      for (std::int64_t oy = 0; oy < out_h; ++oy) {
        for (std::int64_t ox = 0; ox < out_w; ++ox) {
          float best = plane[(oy * stride_) * in_w + ox * stride_];
          for (std::int64_t ky = 0; ky < window_; ++ky) {
            for (std::int64_t kx = 0; kx < window_; ++kx) {
              best = std::max(best, plane[(oy * stride_ + ky) * in_w +
                                          ox * stride_ + kx]);
            }
          }
          out_plane[oy * out_w + ox] = best;
        }
      }
    }
    return out;
  }
  [[nodiscard]] std::string describe() const override { return "maxpool"; }

 private:
  std::int64_t window_, stride_;
};

class GapStep final : public Step {
 public:
  tensor::Tensor run(const tensor::Tensor& input,
                     NetworkOpCounts* /*counts*/) const override {
    const auto& s = input.shape();
    FLIGHTNN_CHECK(s.rank() == 3, "GapStep: CHW input expected, got ",
                   s.to_string());
    const std::int64_t channels = s[0], hw = s[1] * s[2];
    tensor::Tensor out(tensor::Shape{channels});
    for (std::int64_t c = 0; c < channels; ++c) {
      const float* plane = input.data() + c * hw;
      double acc = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) acc += plane[i];
      out[c] = static_cast<float>(acc / static_cast<double>(hw));
    }
    return out;
  }
  [[nodiscard]] std::string describe() const override { return "gap"; }
};

class FlattenStep final : public Step {
 public:
  tensor::Tensor run(const tensor::Tensor& input,
                     NetworkOpCounts* /*counts*/) const override {
    return input.reshaped(tensor::Shape{input.numel()});
  }
  [[nodiscard]] std::string describe() const override { return "flatten"; }
};

class ShiftLinearStep final : public Step {
 public:
  ShiftLinearStep(ShiftLinear engine, int act_bits, bool use_reference)
      : engine_(std::move(engine)),
        act_bits_(act_bits),
        use_reference_(use_reference) {}
  tensor::Tensor run(const tensor::Tensor& input,
                     NetworkOpCounts* counts) const override {
    // No explicit flatten: quantization is shape-oblivious and the engine
    // validates numel, so the values stream straight through.
    QuantizedActivations& q = quant_scratch();
    quantize_tensor_into(input, act_bits_, q);
    q.shape = tensor::Shape{input.numel()};
    OpCounts ops{};
    tensor::Tensor out = use_reference_
                             ? engine_.run_reference(q, counts ? &ops : nullptr)
                             : engine_.run(q, counts ? &ops : nullptr);
    if (counts != nullptr) {
      counts->shifts += ops.shifts;
      counts->adds += ops.adds;
    }
    return out;
  }
  [[nodiscard]] std::string describe() const override {
    return "shift_linear[" + std::to_string(engine_.out_features()) + "]";
  }
  [[nodiscard]] std::int64_t term_count() const override {
    return engine_.term_count();
  }
  [[nodiscard]] const char* kernel_tier() const override {
    return use_reference_ ? "reference" : engine_.kernel_tier(act_bits_);
  }

 private:
  ShiftLinear engine_;
  int act_bits_;
  bool use_reference_;
};

class FloatLinearStep final : public Step {
 public:
  FloatLinearStep(tensor::Tensor weights, tensor::Tensor bias)
      : weights_(std::move(weights)), bias_(std::move(bias)) {}
  tensor::Tensor run(const tensor::Tensor& input,
                     NetworkOpCounts* counts) const override {
    const std::int64_t out_features = weights_.shape()[0];
    const std::int64_t in_features = weights_.shape()[1];
    tensor::Tensor flat = input.shape().rank() == 1
                              ? input
                              : input.reshaped(tensor::Shape{input.numel()});
    FLIGHTNN_CHECK(flat.numel() == in_features,
                   "FloatLinearStep: input numel ", flat.numel(),
                   " does not match in features ", in_features);
    if (counts != nullptr) counts->float_macs += out_features * in_features;
    tensor::Tensor out(tensor::Shape{out_features});
    for (std::int64_t o = 0; o < out_features; ++o) {
      double acc = bias_.empty() ? 0.0 : bias_[o];
      const float* row = weights_.data() + o * in_features;
      for (std::int64_t e = 0; e < in_features; ++e) {
        acc += static_cast<double>(row[e]) * flat[e];
      }
      out[o] = static_cast<float>(acc);
    }
    return out;
  }
  [[nodiscard]] std::string describe() const override {
    return "float_linear[" + std::to_string(weights_.shape()[0]) + "]";
  }

 private:
  tensor::Tensor weights_, bias_;
};

class ResidualStep final : public Step {
 public:
  ResidualStep(std::vector<StepPtr> main_steps, std::vector<StepPtr> shortcut_steps,
               bool has_shortcut, std::vector<StepPtr> post_steps)
      : main_(std::move(main_steps)),
        shortcut_(std::move(shortcut_steps)),
        has_shortcut_(has_shortcut),
        post_(std::move(post_steps)) {}

  tensor::Tensor run(const tensor::Tensor& input,
                     NetworkOpCounts* counts) const override {
    tensor::Tensor main_out = run_chain(main_, input, counts);
    tensor::Tensor skip_out =
        has_shortcut_ ? run_chain(shortcut_, input, counts) : input;
    main_out += skip_out;
    return run_chain(post_, main_out, counts);
  }
  [[nodiscard]] std::string describe() const override { return "residual"; }

 private:
  static tensor::Tensor run_chain(const std::vector<StepPtr>& steps,
                                  const tensor::Tensor& input,
                                  NetworkOpCounts* counts) {
    tensor::Tensor current = input;
    for (const auto& step : steps) current = step->run(current, counts);
    return current;
  }

  std::vector<StepPtr> main_, shortcut_;
  bool has_shortcut_;
  std::vector<StepPtr> post_;
};

// --- Program -> steps -----------------------------------------------------
//
// from_program consumes the flat pre-order op list with a cursor. Residual
// segments are length-delimited (op.main_ops etc. are total counts), so the
// builder checks exact consumption at every nesting level: a program whose
// counts lie -- truncated, overlapping, or out of range -- fails with a
// typed CheckFailure instead of misassembling a network. The artifact
// loader leans on this as its final structural gate.

StepPtr build_step(std::vector<ProgramOp>& ops, std::size_t& cursor,
                   std::size_t end, bool use_reference,
                   const runtime::ArenaLayout* layout);

std::vector<StepPtr> build_segment(std::vector<ProgramOp>& ops,
                                   std::size_t& cursor, std::int64_t count,
                                   std::size_t end, bool use_reference,
                                   const runtime::ArenaLayout* layout,
                                   const char* what) {
  FLIGHTNN_CHECK(count >= 0 && static_cast<std::size_t>(count) <= end - cursor,
                 "from_program: residual ", what, " segment claims ", count,
                 " ops but only ", end - cursor, " remain");
  const std::size_t segment_end = cursor + static_cast<std::size_t>(count);
  std::vector<StepPtr> steps;
  steps.reserve(static_cast<std::size_t>(count));
  while (cursor < segment_end) {
    steps.push_back(build_step(ops, cursor, segment_end, use_reference, layout));
  }
  return steps;
}

StepPtr build_step(std::vector<ProgramOp>& ops, std::size_t& cursor,
                   std::size_t end, bool use_reference,
                   const runtime::ArenaLayout* layout) {
  FLIGHTNN_CHECK(cursor < end, "from_program: op stream exhausted");
  // The planner keyed this op's arena extents by its flat index.
  const auto op_index = static_cast<std::uint32_t>(cursor);
  const runtime::PlanContext ctx{layout, op_index};
  ProgramOp op = std::move(ops[cursor]);
  ++cursor;
  switch (op.kind) {
    case ProgramOpKind::kQuantAct:
      FLIGHTNN_CHECK(op.bits >= 2 && op.bits <= 16, "from_program: quant op ",
                     op.bits, " bits outside [2, 16]");
      return std::make_unique<QuantizeActStep>(op.bits);
    case ProgramOpKind::kShiftConv: {
      FLIGHTNN_CHECK(op.act_bits >= 2 && op.act_bits <= 16,
                     "from_program: shift conv act bits ", op.act_bits,
                     " outside [2, 16]");
      if (!op.weights.empty()) {
        // In-memory compile: rebuild from the quantized weights so the
        // engine keeps its reference decomposition.
        return std::make_unique<ShiftConvStep>(
            ShiftConv2d(op.weights, op.k_max, op.pow2, op.stride, op.padding,
                        std::move(op.bias)),
            op.act_bits, use_reference, ctx);
      }
      FLIGHTNN_CHECK(!use_reference,
                     "from_program: reference engine requested but the "
                     "program carries plans only (artifact load path)");
      const ShiftConvSpec spec{op.out_channels, op.in_channels, op.kernel,
                               op.stride,       op.padding,     op.term_count};
      return std::make_unique<ShiftConvStep>(
          ShiftConv2d(std::move(op.plan), spec, op.pow2, std::move(op.bias)),
          op.act_bits, /*use_reference=*/false, ctx);
    }
    case ProgramOpKind::kFloatConv:
      FLIGHTNN_CHECK(op.weights.shape().rank() == 4,
                     "from_program: float conv weights must be OIHW");
      return std::make_unique<FloatConvStep>(std::move(op.weights),
                                             std::move(op.bias), op.stride,
                                             op.padding);
    case ProgramOpKind::kAffine:
      FLIGHTNN_CHECK(op.scale.size() == op.affine_bias.size(),
                     "from_program: affine scale/bias size mismatch (",
                     op.scale.size(), " vs ", op.affine_bias.size(), ")");
      return std::make_unique<AffineStep>(std::move(op.scale),
                                          std::move(op.affine_bias));
    case ProgramOpKind::kLeakyRelu:
      return std::make_unique<LeakyReLUStep>(op.slope);
    case ProgramOpKind::kMaxPool:
      FLIGHTNN_CHECK(op.window > 0 && op.stride > 0,
                     "from_program: max pool window ", op.window, " / stride ",
                     op.stride, " must be positive");
      return std::make_unique<MaxPoolStep>(op.window, op.stride);
    case ProgramOpKind::kGap:
      return std::make_unique<GapStep>();
    case ProgramOpKind::kFlatten:
      return std::make_unique<FlattenStep>();
    case ProgramOpKind::kShiftLinear: {
      FLIGHTNN_CHECK(op.act_bits >= 2 && op.act_bits <= 16,
                     "from_program: shift linear act bits ", op.act_bits,
                     " outside [2, 16]");
      if (!op.weights.empty()) {
        return std::make_unique<ShiftLinearStep>(
            ShiftLinear(op.weights, op.k_max, op.pow2, std::move(op.bias)),
            op.act_bits, use_reference);
      }
      FLIGHTNN_CHECK(!use_reference,
                     "from_program: reference engine requested but the "
                     "program carries plans only (artifact load path)");
      const ShiftLinearSpec spec{op.out_channels, op.in_channels,
                                 op.term_count};
      return std::make_unique<ShiftLinearStep>(
          ShiftLinear(std::move(op.plan), spec, op.pow2, std::move(op.bias)),
          op.act_bits, /*use_reference=*/false);
    }
    case ProgramOpKind::kFloatLinear:
      FLIGHTNN_CHECK(op.weights.shape().rank() == 2,
                     "from_program: float linear weights must be [out, in]");
      return std::make_unique<FloatLinearStep>(std::move(op.weights),
                                               std::move(op.bias));
    case ProgramOpKind::kResidual: {
      FLIGHTNN_CHECK(op.has_shortcut || op.shortcut_ops == 0,
                     "from_program: residual without shortcut claims ",
                     op.shortcut_ops, " shortcut ops");
      auto main_steps = build_segment(ops, cursor, op.main_ops, end,
                                      use_reference, layout, "main");
      auto shortcut_steps = build_segment(ops, cursor, op.shortcut_ops, end,
                                          use_reference, layout, "shortcut");
      auto post_steps = build_segment(ops, cursor, op.post_ops, end,
                                      use_reference, layout, "post");
      return std::make_unique<ResidualStep>(
          std::move(main_steps), std::move(shortcut_steps), op.has_shortcut,
          std::move(post_steps));
    }
  }
  FLIGHTNN_CHECK(false, "from_program: unknown op kind ",
                 static_cast<std::uint32_t>(op.kind));
  return nullptr;  // unreachable
}

// Compact byte count for the profile table ("832B", "4.5K", "1.2M").
std::string format_bytes(std::size_t bytes) {
  char buffer[32];
  if (bytes < 1024) {
    std::snprintf(buffer, sizeof(buffer), "%zuB", bytes);
  } else if (bytes < (std::size_t{1} << 20)) {
    std::snprintf(buffer, sizeof(buffer), "%.1fK",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1fM",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  }
  return buffer;
}

// Fill a step's planned-scratch column from the memory plan: the flat ops
// [begin, end) the step was built from (a single op for plain steps, the
// whole subtree for residuals). Single-buffer steps show the exact
// placement; aggregates summarize.
void fill_planned_scratch(const MemoryPlan& plan, std::uint32_t begin,
                          std::uint32_t end, StepProfile& out) {
  std::size_t total = 0;
  std::size_t buffers = 0;
  std::string detail;
  for (std::uint32_t op = begin; op < end && op < plan.per_op().size(); ++op) {
    const OpMemory& mem = plan.per_op()[op];
    if (mem.scratch_bytes == 0) continue;
    total += mem.scratch_bytes;
    if (mem.offsets_bytes > 0) ++buffers;
    if (mem.accumulator_bytes > 0) ++buffers;
    if (detail.empty()) {
      const auto off = plan.layout().find(op, runtime::Scratch::kConvOffsets);
      const auto acc =
          plan.layout().find(op, runtime::Scratch::kConvAccumulator);
      if (off.offset != runtime::kUnassignedOffset) {
        detail += "off@" + std::to_string(off.offset) + "+" +
                  format_bytes(off.bytes);
      }
      if (acc.offset != runtime::kUnassignedOffset) {
        if (!detail.empty()) detail += " ";
        detail += "acc@" + std::to_string(acc.offset) + "+" +
                  format_bytes(acc.bytes);
      }
    }
  }
  out.planned_scratch_bytes = total;
  if (total == 0) {
    out.planned_layout = "-";
  } else if (buffers <= 2) {
    out.planned_layout = detail;
  } else {
    out.planned_layout =
        std::to_string(buffers) + " bufs " + format_bytes(total);
  }
}

}  // namespace

void reserve_quant_scratch(std::size_t values) {
  quant_scratch().values.reserve(values);
}

QuantizedNetwork QuantizedNetwork::compile(nn::Sequential& model,
                                           const tensor::Shape& input_shape,
                                           const CompileOptions& options) {
  return from_program(compile_program(model, input_shape, options),
                      options.use_reference_engine);
}

QuantizedNetwork QuantizedNetwork::from_program(NetworkProgram program,
                                                bool use_reference_engine) {
  QuantizedNetwork network;
  // Plan the memory layout before build_step consumes the ops. Reference
  // engines bypass the arena-backed kernels, so they stay unplanned; on the
  // artifact load path this is the in-loader rebuild (format stays v1).
  if (!use_reference_engine && memory_planning_enabled()) {
    network.memory_plan_ = MemoryPlan::try_build(program);
  }
  const runtime::ArenaLayout* layout =
      network.memory_plan_ ? &network.memory_plan_->layout() : nullptr;
  std::size_t cursor = 0;
  const std::size_t end = program.ops.size();
  network.steps_.reserve(end);
  while (cursor < end) {
    const auto begin = static_cast<std::uint32_t>(cursor);
    network.steps_.push_back(
        build_step(program.ops, cursor, end, use_reference_engine, layout));
    network.step_ops_.emplace_back(begin, static_cast<std::uint32_t>(cursor));
  }
  return network;
}

FLIGHTNN_HOT FLIGHTNN_API_ENTRY tensor::Tensor QuantizedNetwork::run(
    const tensor::Tensor& image, NetworkOpCounts* counts) const {
  tensor::Tensor current;
  const auto& s = image.shape();
  FLIGHTNN_CHECK(s.rank() == 3 || (s.rank() == 4 && s[0] == 1),
                 "QuantizedNetwork::run: expected [C,H,W] or [1,C,H,W], got ",
                 s.to_string());
  if (s.rank() == 3) {
    current = image;
  } else {
    current = image.reshaped(tensor::Shape{s[1], s[2], s[3]});
  }
  for (const auto& step : steps_) {
    current = step->run(current, counts);
  }
  if (counts != nullptr) ++counts->images;
  return current;
}

std::vector<StepProfile> QuantizedNetwork::profile(const tensor::Tensor& image,
                                                   int repeats) const {
  FLIGHTNN_CHECK(repeats >= 1, "QuantizedNetwork::profile: repeats ", repeats,
                 " must be >= 1");
  tensor::Tensor current;
  const auto& s = image.shape();
  FLIGHTNN_CHECK(s.rank() == 3 || (s.rank() == 4 && s[0] == 1),
                 "QuantizedNetwork::profile: expected [C,H,W] or [1,C,H,W], "
                 "got ", s.to_string());
  if (s.rank() == 3) {
    current = image;
  } else {
    current = image.reshaped(tensor::Shape{s[1], s[2], s[3]});
  }

  std::vector<StepProfile> profiles;
  profiles.reserve(steps_.size());
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const auto& step = steps_[i];
    StepProfile p;
    p.name = step->describe();
    p.terms = step->term_count();
    p.kernel_tier = step->kernel_tier();
    if (memory_plan_ != nullptr && i < step_ops_.size()) {
      fill_planned_scratch(*memory_plan_, step_ops_[i].first,
                           step_ops_[i].second, p);
    }
    NetworkOpCounts ops{};
    tensor::Tensor out;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      out = step->run(current, r == 0 ? &ops : nullptr);
    }
    const auto t1 = std::chrono::steady_clock::now();
    p.seconds = std::chrono::duration<double>(t1 - t0).count() / repeats;
    p.shifts = ops.shifts;
    p.adds = ops.adds;
    p.float_macs = ops.float_macs;
    profiles.push_back(std::move(p));
    current = std::move(out);
  }
  return profiles;
}

double QuantizedNetwork::evaluate(const data::Dataset& dataset, int top_k,
                                  NetworkOpCounts* counts) const {
  std::int64_t hits = 0;
  for (std::int64_t n = 0; n < dataset.size(); ++n) {
    tensor::Tensor logits = run(dataset.image(n), counts);
    const tensor::Tensor row =
        logits.reshaped(tensor::Shape{1, logits.numel()});
    hits += nn::top_k_accuracy(row, {dataset.labels[static_cast<std::size_t>(n)]},
                               top_k) > 0.5
                ? 1
                : 0;
  }
  return dataset.size() > 0
             ? static_cast<double>(hits) / static_cast<double>(dataset.size())
             : 0.0;
}

std::string QuantizedNetwork::describe() const {
  std::string out;
  for (const auto& step : steps_) {
    if (!out.empty()) out += " -> ";
    out += step->describe();
  }
  return out;
}

}  // namespace flightnn::inference
