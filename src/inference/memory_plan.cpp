#include "inference/memory_plan.hpp"

#include <algorithm>
#include <atomic>
#include <map>

#include "inference/quantized_network.hpp"
#include "inference/shift_engine.hpp"
#include "runtime/scratch_arena.hpp"
#include "support/check.hpp"
#include "support/env.hpp"
#include "support/logging.hpp"
#include "tensor/buffer_pool.hpp"
#include "tensor/ops.hpp"

namespace flightnn::inference {

namespace {

using tensor::Shape;

std::atomic<int> g_planning_override{-1};

}  // namespace

bool memory_planning_enabled() {
  const int forced = g_planning_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return support::env_int("FLIGHTNN_FORCE_DYNAMIC_ARENA").value_or(0) == 0;
}

void set_memory_planning_override(int mode) {
  g_planning_override.store(mode, std::memory_order_relaxed);
}

// Shape-and-liveness simulation of one program. Mirrors the semantics of
// QuantizedNetwork::run / from_program exactly: flat pre-order op indices
// are the time axis (main -> shortcut -> post segment order equals
// execution order), every step output is a fresh pooled tensor, and chain
// entries (`current = input` in run/run_chain) are deep copies that the
// analysis models as their own short-lived activations. The structural
// checks shadow from_program's; a program this walker rejects would be
// rejected there too (try_build turns that into "no plan" so the builder
// reports the canonical error).
struct MemoryPlan::Analysis {
  const NetworkProgram& program;
  std::vector<runtime::BufferInterval> intervals;
  std::vector<OpMemory> per_op;
  std::vector<ActivationInterval> acts;
  std::vector<Shape> act_shapes;  // parallel to acts
  std::size_t quant_peak_values = 0;

  explicit Analysis(const NetworkProgram& p) : program(p) {
    const std::size_t n = p.ops.size();
    per_op.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      per_op[i].op = static_cast<std::uint32_t>(i);
      per_op[i].kind = p.ops[i].kind;
    }
    if (n == 0) return;
    FLIGHTNN_CHECK(p.input_c > 0 && p.input_h > 0 && p.input_w > 0,
                   "memory plan: bad input geometry [", p.input_c, ", ",
                   p.input_h, ", ", p.input_w, "]");
    // run()'s entry copy (`current = image`).
    std::size_t cur = define(0, Shape{p.input_c, p.input_h, p.input_w});
    std::size_t cursor = 0;
    while (cursor < n) cur = walk_op(cursor, cur);
    // The logits tensor is handed to the caller, so it lives through the
    // last op.
    use(cur, static_cast<std::uint32_t>(n - 1));
  }

  std::size_t define(std::uint32_t t, Shape shape) {
    acts.push_back(ActivationInterval{
        static_cast<std::size_t>(shape.numel()), t, t});
    act_shapes.push_back(std::move(shape));
    if (t < per_op.size()) {
      per_op[t].activation_bytes = acts.back().numel * sizeof(float);
    }
    return acts.size() - 1;
  }

  void use(std::size_t act, std::uint32_t t) {
    acts[act].last_use_op = std::max(acts[act].last_use_op, t);
  }

  void note_quant(OpMemory& mem, std::int64_t values) {
    mem.quant_bytes =
        static_cast<std::size_t>(values) * sizeof(std::int32_t);
    quant_peak_values =
        std::max(quant_peak_values, static_cast<std::size_t>(values));
  }

  // Walk the ops of a residual segment as a chain: entry deep copy, then
  // each op consuming the previous output. `t_fallback` is the time an
  // empty chain's pass-through copy happens at.
  std::size_t walk_chain(std::size_t& cursor, std::int64_t count,
                         std::size_t input_act, std::uint32_t t_fallback) {
    if (count == 0) {
      use(input_act, t_fallback);
      return define(t_fallback, act_shapes[input_act]);
    }
    const auto entry = static_cast<std::uint32_t>(cursor);
    use(input_act, entry);
    std::size_t chain = define(entry, act_shapes[input_act]);
    const std::size_t seg_end = cursor + static_cast<std::size_t>(count);
    while (cursor < seg_end) chain = walk_op(cursor, chain);
    return chain;
  }

  std::size_t walk_op(std::size_t& cursor, std::size_t cur) {  // NOLINT(misc-no-recursion)
    const auto t = static_cast<std::uint32_t>(cursor);
    const ProgramOp& op = program.ops[cursor];
    ++cursor;
    OpMemory& mem = per_op[t];
    const Shape in = act_shapes[cur];  // copy: acts may reallocate below
    switch (op.kind) {
      case ProgramOpKind::kQuantAct:
      case ProgramOpKind::kAffine:
      case ProgramOpKind::kLeakyRelu: {
        use(cur, t);
        return define(t, in);
      }
      case ProgramOpKind::kShiftConv: {
        FLIGHTNN_CHECK(in.rank() == 3, "memory plan: shift conv at op ", t,
                       " expects CHW input, got ", in.to_string());
        // In-memory programs describe geometry through the weight tensor;
        // artifact programs through the scalar fields.
        std::int64_t out_c = op.out_channels, in_c = op.in_channels,
                     kernel = op.kernel;
        if (!op.weights.empty()) {
          const auto& ws = op.weights.shape();
          FLIGHTNN_CHECK(ws.rank() == 4, "memory plan: shift conv weights at op ",
                         t, " must be OIHW, got ", ws.to_string());
          out_c = ws[0];
          in_c = ws[1];
          kernel = ws[2];
        }
        FLIGHTNN_CHECK(out_c > 0 && in_c > 0 && kernel > 0 && op.stride > 0 &&
                           op.padding >= 0,
                       "memory plan: bad shift conv geometry at op ", t);
        const tensor::ConvGeometry geom{in_c, in[1], in[2], kernel, op.stride,
                                        op.padding};
        const std::int64_t out_h = geom.out_h(), out_w = geom.out_w();
        FLIGHTNN_CHECK(out_h > 0 && out_w > 0,
                       "memory plan: shift conv at op ", t,
                       " produces empty output from ", in.to_string());
        note_quant(mem, in.numel());
        mem.offsets_bytes =
            static_cast<std::size_t>(op.plan.entries()) * sizeof(std::int64_t);
        const std::size_t acc_elem =
            plan_narrow_accumulator(op.plan, op.act_bits)
                ? sizeof(std::int32_t)
                : sizeof(std::int64_t);
        mem.accumulator_bytes =
            static_cast<std::size_t>(out_h * out_w) * acc_elem;
        mem.scratch_bytes = mem.offsets_bytes + mem.accumulator_bytes;
        intervals.push_back(runtime::BufferInterval{
            t, runtime::Scratch::kConvOffsets, mem.offsets_bytes, t, t,
            runtime::kUnassignedOffset});
        intervals.push_back(runtime::BufferInterval{
            t, runtime::Scratch::kConvAccumulator, mem.accumulator_bytes, t, t,
            runtime::kUnassignedOffset});
        use(cur, t);
        return define(t, Shape{out_c, out_h, out_w});
      }
      case ProgramOpKind::kFloatConv: {
        FLIGHTNN_CHECK(in.rank() == 3, "memory plan: float conv at op ", t,
                       " expects CHW input, got ", in.to_string());
        const auto& ws = op.weights.shape();
        FLIGHTNN_CHECK(ws.rank() == 4, "memory plan: float conv weights at op ",
                       t, " must be OIHW");
        const tensor::ConvGeometry geom{ws[1], in[1], in[2], ws[2], op.stride,
                                        op.padding};
        FLIGHTNN_CHECK(geom.out_h() > 0 && geom.out_w() > 0,
                       "memory plan: float conv at op ", t,
                       " produces empty output");
        use(cur, t);
        return define(t, Shape{ws[0], geom.out_h(), geom.out_w()});
      }
      case ProgramOpKind::kMaxPool: {
        FLIGHTNN_CHECK(in.rank() == 3 && op.window > 0 && op.stride > 0 &&
                           in[1] >= op.window && in[2] >= op.window,
                       "memory plan: bad max pool at op ", t, " on input ",
                       in.to_string());
        const std::int64_t out_h = (in[1] - op.window) / op.stride + 1;
        const std::int64_t out_w = (in[2] - op.window) / op.stride + 1;
        use(cur, t);
        return define(t, Shape{in[0], out_h, out_w});
      }
      case ProgramOpKind::kGap: {
        FLIGHTNN_CHECK(in.rank() == 3, "memory plan: gap at op ", t,
                       " expects CHW input, got ", in.to_string());
        use(cur, t);
        return define(t, Shape{in[0]});
      }
      case ProgramOpKind::kFlatten: {
        use(cur, t);
        return define(t, Shape{in.numel()});
      }
      case ProgramOpKind::kShiftLinear: {
        std::int64_t out_f = op.out_channels;
        if (!op.weights.empty()) out_f = op.weights.shape()[0];
        FLIGHTNN_CHECK(out_f > 0, "memory plan: bad shift linear at op ", t);
        note_quant(mem, in.numel());
        use(cur, t);
        return define(t, Shape{out_f});
      }
      case ProgramOpKind::kFloatLinear: {
        const auto& ws = op.weights.shape();
        FLIGHTNN_CHECK(ws.rank() == 2, "memory plan: float linear weights at op ",
                       t, " must be [out, in]");
        if (in.rank() != 1) {
          // FloatLinearStep reshapes to a flat copy before the dot.
          define(t, Shape{in.numel()});
        }
        use(cur, t);
        return define(t, Shape{ws[0]});
      }
      case ProgramOpKind::kResidual: {
        const auto remaining =
            static_cast<std::int64_t>(program.ops.size() - cursor);
        FLIGHTNN_CHECK(op.main_ops >= 0 && op.shortcut_ops >= 0 &&
                           op.post_ops >= 0 &&
                           op.main_ops + op.shortcut_ops + op.post_ops <=
                               remaining,
                       "memory plan: residual at op ", t, " claims ",
                       op.main_ops + op.shortcut_ops + op.post_ops,
                       " child ops but only ", remaining, " remain");
        FLIGHTNN_CHECK(op.has_shortcut || op.shortcut_ops == 0,
                       "memory plan: residual without shortcut claims ",
                       op.shortcut_ops, " shortcut ops");
        // ResidualStep::run: main chain, then shortcut chain (both deep-copy
        // the input at entry), then `main_out += skip_out` in place, then the
        // post chain on main_out's buffer.
        const std::size_t main_out = walk_chain(cursor, op.main_ops, cur, t);
        std::size_t skip_out = acts.size();  // placeholder
        const bool skip_is_chain = op.has_shortcut && op.shortcut_ops > 0;
        if (skip_is_chain) {
          skip_out = walk_chain(cursor, op.shortcut_ops, cur,
                                static_cast<std::uint32_t>(cursor - 1));
        }
        // The add happens after both chains; its time is the last executed
        // child op (or the header itself when both chains are empty).
        const auto t_add = static_cast<std::uint32_t>(cursor - 1);
        if (!skip_is_chain) {
          // skip_out is a plain copy of the input made at the add.
          use(cur, t_add);
          skip_out = define(t_add, in);
        }
        use(main_out, t_add);
        use(skip_out, t_add);
        if (op.post_ops == 0) return main_out;
        return walk_chain(cursor, op.post_ops, main_out, t_add);
      }
    }
    FLIGHTNN_CHECK(false, "memory plan: unknown op kind ",
                   static_cast<std::uint32_t>(op.kind));
    return cur;  // unreachable
  }
};

MemoryPlan::MemoryPlan(const NetworkProgram& program)
    : MemoryPlan(Analysis(program)) {}

MemoryPlan::MemoryPlan(Analysis&& analysis)
    : layout_(std::move(analysis.intervals),
              static_cast<std::uint32_t>(analysis.per_op.size())),
      per_op_(std::move(analysis.per_op)),
      activations_(std::move(analysis.acts)),
      quant_peak_values_(analysis.quant_peak_values) {
  // Propagate the colored offsets back into the per-op census.
  for (const runtime::BufferInterval& interval : layout_.intervals()) {
    OpMemory& mem = per_op_[interval.op];
    mem.scratch_offset = std::min(mem.scratch_offset, interval.offset);
  }
  // Activation peak and per-numel working set: sweep every op time and count
  // the live intervals. O(ops * activations) -- trivially fast at network
  // sizes and only run at plan-compile time.
  std::map<std::size_t, std::size_t> peak_by_numel;
  std::map<std::size_t, std::size_t> live_by_numel;
  for (std::uint32_t t = 0; t < per_op_.size(); ++t) {
    std::size_t live_bytes = 0;
    live_by_numel.clear();
    for (const ActivationInterval& act : activations_) {
      if (act.def_op <= t && t <= act.last_use_op) {
        live_bytes += act.numel * sizeof(float);
        ++live_by_numel[act.numel];
      }
    }
    activation_peak_bytes_ = std::max(activation_peak_bytes_, live_bytes);
    for (const auto& [numel, count] : live_by_numel) {
      std::size_t& best = peak_by_numel[numel];
      best = std::max(best, count);
    }
  }
  working_set_.assign(peak_by_numel.begin(), peak_by_numel.end());
}

std::shared_ptr<const MemoryPlan> MemoryPlan::try_build(
    const NetworkProgram& program) {
  try {
    return std::make_shared<const MemoryPlan>(program);
  } catch (const support::CheckFailure& failure) {
    // Structurally invalid program: skip planning so from_program's walk
    // reports the canonical diagnostic (or, if only the planner objects,
    // execution stays on the dynamic route).
    support::log_debug() << "memory plan: analysis failed, staying dynamic: "
                         << failure.what();
    return nullptr;
  }
}

void MemoryPlan::warm_thread() const {
  runtime::ScratchArena::current().adopt_layout(layout_);
  for (const auto& [numel, count] : working_set_) {
    tensor::pool::prewarm(numel, count);
  }
  reserve_quant_scratch(quant_peak_values_);
}

}  // namespace flightnn::inference
