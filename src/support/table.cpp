#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace flightnn::support {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::add_separator() {
  separators_.push_back(rows_.size());
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_rule = [&] {
    std::string line = "+";
    for (std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string out = render_rule() + render_row(header_) + render_rule();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(separators_.begin(), separators_.end(), r) != separators_.end() && r > 0) {
      out += render_rule();
    }
    out += render_row(rows_[r]);
  }
  out += render_rule();
  return out;
}

std::string Table::to_csv() const {
  auto join = [](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) line += ",";
      line += cells[c];
    }
    return line + "\n";
  };
  std::string out = join(header_);
  for (const auto& row : rows_) out += join(row);
  return out;
}

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string format_sci(double value, int digits) {
  if (value == 0.0) return "0";
  const double magnitude = std::floor(std::log10(std::fabs(value)));
  // Small values print plainly, matching the paper ("1.3", "10.2", "39.2").
  if (magnitude < 2.0) return format_fixed(value, 1);
  const double mantissa = value / std::pow(10.0, magnitude);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fe%d", digits, mantissa,
                static_cast<int>(magnitude));
  return buf;
}

std::string format_speedup(double value) {
  char buf[64];
  if (value >= 10.0) {
    std::snprintf(buf, sizeof(buf), "%.1fx", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fx", value);
  }
  return buf;
}

std::string format_mb(double bytes) {
  const double mb = bytes / (1024.0 * 1024.0);
  if (mb >= 10.0) return format_fixed(mb, 1);
  return format_fixed(mb, 2);
}

}  // namespace flightnn::support
