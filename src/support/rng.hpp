#pragma once

// Deterministic pseudo-random number generation for all stochastic parts of
// the library (weight init, synthetic data, shuffling). Every consumer takes
// an explicit seed so that experiments are reproducible run-to-run.

#include <cstdint>
#include <vector>

namespace flightnn::support {

// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
// Used instead of std::mt19937 so that results are identical across
// standard-library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit word.
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  // Standard normal via Box-Muller (cached second value).
  double normal();

  // Normal with given mean / stddev.
  double normal(double mean, double stddev);

  // Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<std::size_t>& indices);

  // Derive an independent stream (for per-worker / per-dataset use).
  Rng split();

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace flightnn::support
