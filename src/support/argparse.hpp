#pragma once

// Minimal command-line argument parsing for the CLI tool: subcommand +
// `--flag value` pairs with typed accessors and defaults. Unknown flags are
// an error; every flag must be declared before parse().

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace flightnn::support {

class ArgParser {
 public:
  // `description` is printed by usage().
  explicit ArgParser(std::string program, std::string description);

  // Declare a flag ("--epochs") with a help string and optional default.
  void add_flag(const std::string& name, const std::string& help,
                std::optional<std::string> default_value = std::nullopt);

  // Parse argv after the subcommand. Returns false (and sets error()) on
  // unknown flags, missing values, or missing required flags.
  bool parse(const std::vector<std::string>& args);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] int get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::string usage() const;

 private:
  struct Flag {
    std::string help;
    std::optional<std::string> default_value;
    std::optional<std::string> value;
  };

  std::string program_, description_, error_;
  std::map<std::string, Flag> flags_;  // ordered for stable usage() output
};

}  // namespace flightnn::support
