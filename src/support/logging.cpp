#include "support/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace flightnn::support {

namespace {

LogLevel initial_level() {
  // Read once from a function-local static's initializer, before any worker
  // threads exist; nothing in the process calls setenv.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("FLIGHTNN_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

LogLevel& level_storage() {
  static LogLevel level = initial_level();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return level_storage(); }

void set_log_level(LogLevel level) { level_storage() = level; }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace flightnn::support
