#pragma once

// Typed environment-variable access for runtime configuration knobs
// (FLIGHTNN_NUM_THREADS, FLIGHTNN_LOG_LEVEL, ...). Malformed values are
// reported once via the logging layer and treated as unset, so a typo in a
// deployment script degrades to the built-in default instead of silently
// picking up a garbage configuration.

#include <optional>
#include <string>

namespace flightnn::support {

// Raw lookup; nullopt when the variable is unset or empty.
std::optional<std::string> env_string(const char* name);

// Integer lookup. Returns nullopt when unset; logs a warning and returns
// nullopt when the value is present but not a (fully consumed) integer.
std::optional<long long> env_int(const char* name);

}  // namespace flightnn::support
