#pragma once

// Clang thread-safety-analysis wrappers over the standard synchronization
// primitives. Every mutex in the library (src/) goes through this header so
// the relationship between locks and the state they guard is part of the
// type system, not a comment: clang's -Wthread-safety proves, at compile
// time, that annotated state is only touched with the right mutex held and
// that every acquire has a matching release on all paths. GCC compiles the
// annotations away to nothing, so the portable build is unaffected.
//
// Usage pattern (see runtime/thread_pool and serving/server for real uses):
//
//   support::Mutex mutex_;
//   std::deque<Task> queue_ FLIGHTNN_GUARDED_BY(mutex_);
//
//   void push(Task t) {
//     const support::MutexLock lock(mutex_);
//     queue_.push_back(std::move(t));        // OK: mutex_ held
//   }
//
// Condition waits use support::CondVar, whose wait functions are annotated
// FLIGHTNN_REQUIRES(mutex) -- the analysis checks the caller holds the lock
// across the wait, which is exactly the invariant std::condition_variable
// leaves to comments. CondVar does not take predicates: write the `while
// (!cond) cv.wait(mu);` loop at the call site, where the analysis can see
// the guarded reads happen under the mutex.
//
// The raw-mutex lint rule (tools/flightnn_lint) rejects `std::mutex` /
// `std::condition_variable` in src/ outside this header, so new concurrent
// state cannot silently opt out of the analysis.

#include <chrono>
#include <condition_variable>
#include <mutex>

// Annotation macros: thin spellings of clang's capability attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), empty elsewhere.
#if defined(__clang__)
#define FLIGHTNN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FLIGHTNN_THREAD_ANNOTATION(x)
#endif

// Declares a class to be a capability (a lock). The string names the
// capability kind in diagnostics ("mutex 'mutex_' is not held ...").
#define FLIGHTNN_CAPABILITY(x) FLIGHTNN_THREAD_ANNOTATION(capability(x))

// Declares a RAII class that acquires a capability in its constructor and
// releases it in its destructor.
#define FLIGHTNN_SCOPED_CAPABILITY FLIGHTNN_THREAD_ANNOTATION(scoped_lockable)

// Field annotation: reads and writes require holding `x`.
#define FLIGHTNN_GUARDED_BY(x) FLIGHTNN_THREAD_ANNOTATION(guarded_by(x))

// Field annotation for pointers: the pointed-to data is guarded by `x`.
#define FLIGHTNN_PT_GUARDED_BY(x) FLIGHTNN_THREAD_ANNOTATION(pt_guarded_by(x))

// Function annotation: the caller must hold the given capabilities.
#define FLIGHTNN_REQUIRES(...) \
  FLIGHTNN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// Function annotation: the function acquires / releases the capabilities.
#define FLIGHTNN_ACQUIRE(...) \
  FLIGHTNN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define FLIGHTNN_RELEASE(...) \
  FLIGHTNN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define FLIGHTNN_TRY_ACQUIRE(...) \
  FLIGHTNN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Function annotation: the function must be called *without* the capability
// held (wards off self-deadlock on non-recursive mutexes).
#define FLIGHTNN_EXCLUDES(...) \
  FLIGHTNN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Escape hatch for code the analysis cannot follow (e.g. lock handoff
// through std::adopt_lock). Every use carries a justifying comment.
#define FLIGHTNN_NO_THREAD_SAFETY_ANALYSIS \
  FLIGHTNN_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace flightnn::support {

// std::mutex with its lock/unlock operations visible to the analysis.
class FLIGHTNN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FLIGHTNN_ACQUIRE() { mutex_.lock(); }
  void unlock() FLIGHTNN_RELEASE() { mutex_.unlock(); }
  bool try_lock() FLIGHTNN_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

// RAII lock over Mutex. Relockable: unlock()/lock() members let a scope
// drop the mutex around a blocking call (the batcher's execute phase, a
// worker running a task) while the analysis still verifies the state is
// reacquired before the next guarded access.
class FLIGHTNN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) FLIGHTNN_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() FLIGHTNN_RELEASE() {
    if (owns_) mutex_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() FLIGHTNN_ACQUIRE() {
    mutex_.lock();
    owns_ = true;
  }
  void unlock() FLIGHTNN_RELEASE() {
    mutex_.unlock();
    owns_ = false;
  }

 private:
  Mutex& mutex_;
  bool owns_ = true;
};

// Condition variable that waits on support::Mutex. The wait functions
// require the mutex: clang checks the caller holds it, mirroring the
// undefined-behavior contract of std::condition_variable::wait. Internally
// the mutex is handed to a std::unique_lock via std::adopt_lock for the
// duration of the wait and released back untouched -- ownership never
// actually changes hands, which is why the analysis suppression on the
// implementation is sound.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  // Atomically releases `mutex`, blocks, and reacquires before returning.
  // Spurious wakeups happen; call in a `while (!condition)` loop.
  void wait(Mutex& mutex) FLIGHTNN_REQUIRES(mutex) {
    // Adopt/release handoff: the analysis cannot follow ownership through
    // std::unique_lock, but the lock state on exit equals the state on
    // entry, so hiding the interior is safe.
    borrow(mutex, [this](std::unique_lock<std::mutex>& lock) {
      cv_.wait(lock);
    });
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(Mutex& mutex,
                            const std::chrono::time_point<Clock, Duration>&
                                deadline) FLIGHTNN_REQUIRES(mutex) {
    std::cv_status status = std::cv_status::no_timeout;
    borrow(mutex, [this, &status, &deadline](
                      std::unique_lock<std::mutex>& lock) {
      status = cv_.wait_until(lock, deadline);
    });
    return status;
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mutex,
                          const std::chrono::duration<Rep, Period>& timeout)
      FLIGHTNN_REQUIRES(mutex) {
    std::cv_status status = std::cv_status::no_timeout;
    borrow(mutex,
           [this, &status, &timeout](std::unique_lock<std::mutex>& lock) {
             status = cv_.wait_for(lock, timeout);
           });
    return status;
  }

 private:
  // Runs `body` with a std::unique_lock temporarily adopting `mutex`. The
  // lock is released (not unlocked) on exit, so the caller still holds the
  // mutex exactly as before.
  template <typename Body>
  void borrow(Mutex& mutex, const Body& body)
      FLIGHTNN_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    body(lock);
    lock.release();
  }

  std::condition_variable cv_;
};

}  // namespace flightnn::support
