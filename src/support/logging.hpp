#pragma once

// Minimal leveled logging. Benches use INFO for progress so long-running
// training sweeps show liveness; tests run at WARN by default.

#include <sstream>
#include <string>

namespace flightnn::support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Process-wide minimum level. Defaults to kInfo; honours FLIGHTNN_LOG_LEVEL
// (debug|info|warn|error) on first use.
LogLevel log_level();
void set_log_level(LogLevel level);

void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace flightnn::support
