#pragma once

// Contract-checking macros used at every library boundary. Quantized
// pipelines fail silently -- a wrong shift exponent or a narrowed index still
// "trains" -- so preconditions are machine-checked instead of eyeballed:
//
//   FLIGHTNN_CHECK(cond, msg...)        always-on precondition; streams msg
//   FLIGHTNN_CHECK_SHAPE(a, b, what)    shape agreement with both shapes in
//                                       the failure message
//   FLIGHTNN_DCHECK(cond, msg...)       debug-only (compiled out when NDEBUG
//                                       and not FLIGHTNN_FORCE_DCHECKS)
//   FLIGHTNN_UNREACHABLE(msg...)        marks impossible control flow;
//                                       always fatal
//
// Failure policy is a process-wide switch (set_check_policy):
//   kThrow (default)  raise support::CheckFailure, which derives from
//                     std::invalid_argument so existing callers and tests
//                     that catch the standard type keep working.
//   kAbort            print the formatted message to stderr and abort();
//                     the mode used by death tests and by sanitizer runs,
//                     where an exception would unwind past the bug.
// The FLIGHTNN_CHECK_ABORT=1 environment variable selects kAbort at first
// use, so sanitizer CI jobs can flip the policy without code changes.

#include <sstream>
#include <stdexcept>
#include <string>

namespace flightnn::support {

enum class CheckPolicy {
  kThrow,  // raise CheckFailure (default)
  kAbort,  // print to stderr and std::abort()
};

// Thrown by failed checks under CheckPolicy::kThrow. Derives from
// std::invalid_argument: a failed contract is a malformed-argument bug at
// some library boundary, and pre-contract call sites threw exactly that.
class CheckFailure : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

// Process-wide failure policy. The first call (either accessor) also honors
// the FLIGHTNN_CHECK_ABORT environment variable.
[[nodiscard]] CheckPolicy check_policy();
void set_check_policy(CheckPolicy policy);

// Report a failed contract at file:line. Throws or aborts per policy.
[[noreturn]] void check_failed(const char* file, int line, const char* condition,
                               const std::string& message);

namespace detail {

// Stream-format a variadic message: concat(1, " vs ", shape.to_string()).
// An empty pack yields an empty string, so FLIGHTNN_CHECK(cond) is legal.
template <typename... Args>
std::string concat(const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return std::string();
  } else {
    std::ostringstream stream;
    (stream << ... << args);
    return stream.str();
  }
}

}  // namespace detail
}  // namespace flightnn::support

// Always-on contract check. The message arguments are only evaluated on
// failure, so call sites may format freely without a hot-path cost.
#define FLIGHTNN_CHECK(condition, ...)                                    \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::flightnn::support::check_failed(                                  \
          __FILE__, __LINE__, #condition,                                 \
          ::flightnn::support::detail::concat(__VA_ARGS__));              \
    }                                                                     \
  } while (false)

// Shape agreement between two tensor::Shape values (anything with
// operator!= and to_string()). `what` names the operation for the message.
#define FLIGHTNN_CHECK_SHAPE(lhs, rhs, what)                              \
  do {                                                                    \
    const auto& flightnn_check_lhs = (lhs);                               \
    const auto& flightnn_check_rhs = (rhs);                               \
    if (flightnn_check_lhs != flightnn_check_rhs) {                       \
      ::flightnn::support::check_failed(                                  \
          __FILE__, __LINE__, #lhs " == " #rhs,                           \
          ::flightnn::support::detail::concat(                            \
              what, ": shape mismatch ", flightnn_check_lhs.to_string(),  \
              " vs ", flightnn_check_rhs.to_string()));                   \
    }                                                                     \
  } while (false)

// Debug-only check: active in debug builds (or when FLIGHTNN_FORCE_DCHECKS
// is defined, which the sanitizer presets set so Release+ASan still checks).
#if !defined(NDEBUG) || defined(FLIGHTNN_FORCE_DCHECKS)
#define FLIGHTNN_DCHECKS_ENABLED 1
#define FLIGHTNN_DCHECK(condition, ...) FLIGHTNN_CHECK(condition, __VA_ARGS__)
#else
#define FLIGHTNN_DCHECKS_ENABLED 0
// Keeps the condition syntactically checked but never evaluated.
#define FLIGHTNN_DCHECK(condition, ...) \
  do {                                  \
    (void)sizeof((condition) ? 1 : 0);  \
  } while (false)
#endif

// Impossible control flow (e.g. an exhausted switch over a closed enum).
// Always fatal regardless of build type.
#define FLIGHTNN_UNREACHABLE(...)                                 \
  ::flightnn::support::check_failed(                              \
      __FILE__, __LINE__, "unreachable",                          \
      ::flightnn::support::detail::concat(__VA_ARGS__))
