#pragma once

// Function multiversioning for hot pointwise loops.
//
// The project builds one portable binary (baseline SSE2; see
// FLIGHTNN_NATIVE_ARCH in the top-level CMakeLists). For straight-line
// elementwise kernels we do not hand-write intrinsics the way the GEMM
// microkernel does -- the autovectorizer produces good code as soon as it
// is allowed to target AVX2. FLIGHTNN_SIMD_CLONES compiles the annotated
// function twice (baseline + avx2) and installs a glibc ifunc resolver
// that picks the widest version the CPU supports at load time.
//
// Keep annotated functions small, leaf-like, and free of observable
// side effects beyond their output arrays: the two clones may contract
// multiplies and adds differently (FMA), so results must only be consumed
// where that tolerance is acceptable. Reductions that must be bit-stable
// across machines (e.g. the regularizer's double accumulations) must NOT
// be cloned.
#if defined(__x86_64__) && defined(__GNUC__)
#define FLIGHTNN_SIMD_CLONES __attribute__((target_clones("default", "avx2")))
#else
#define FLIGHTNN_SIMD_CLONES
#endif
