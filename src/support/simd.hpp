#pragma once

// Function multiversioning for hot pointwise loops.
//
// The project builds one portable binary (baseline SSE2; see
// FLIGHTNN_NATIVE_ARCH in the top-level CMakeLists). For straight-line
// elementwise kernels we do not hand-write intrinsics the way the GEMM
// microkernel does -- the autovectorizer produces good code as soon as it
// is allowed to target AVX2. FLIGHTNN_SIMD_CLONES compiles the annotated
// function twice (baseline + avx2) and installs a glibc ifunc resolver
// that picks the widest version the CPU supports at load time.
//
// Keep annotated functions small, leaf-like, and free of observable
// side effects beyond their output arrays: the two clones may contract
// multiplies and adds differently (FMA), so results must only be consumed
// where that tolerance is acceptable. Reductions that must be bit-stable
// across machines (e.g. the regularizer's double accumulations) must NOT
// be cloned.
#if defined(__x86_64__) && defined(__GNUC__)
#define FLIGHTNN_SIMD_CLONES __attribute__((target_clones("default", "avx2")))
#define FLIGHTNN_X86_DISPATCH 1
#else
#define FLIGHTNN_SIMD_CLONES
#define FLIGHTNN_X86_DISPATCH 0
#endif

namespace flightnn::support {

// CPU capability probes backing both the explicit kernel dispatch tables
// (inference/shift_kernels, core/gemm) and the bench metadata every
// BENCH_*.json records. Same mechanism the ifunc resolvers behind
// FLIGHTNN_SIMD_CLONES use, exposed as callable predicates so dispatch
// decisions are observable and overridable (FLIGHTNN_FORCE_SCALAR).
inline bool cpu_has_avx2() {
#if FLIGHTNN_X86_DISPATCH
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

inline bool cpu_has_fma() {
#if FLIGHTNN_X86_DISPATCH
  return __builtin_cpu_supports("fma") != 0;
#else
  return false;
#endif
}

}  // namespace flightnn::support
