#include "support/env.hpp"

#include <cerrno>
#include <cstdlib>

#include "support/logging.hpp"

namespace flightnn::support {

std::optional<std::string> env_string(const char* name) {
  // Configuration reads happen during startup, before the thread pool
  // spins up; nothing in the process calls setenv.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return std::nullopt;
  return std::string(value);
}

std::optional<long long> env_int(const char* name) {
  const auto raw = env_string(name);
  if (!raw) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(raw->c_str(), &end, 10);
  if (errno != 0 || end == raw->c_str() || *end != '\0') {
    log_warn() << name << "='" << *raw
               << "' is not an integer; ignoring the variable";
    return std::nullopt;
  }
  return value;
}

}  // namespace flightnn::support
