#include "support/argparse.hpp"

#include <stdexcept>

namespace flightnn::support {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_flag(const std::string& name, const std::string& help,
                         std::optional<std::string> default_value) {
  if (name.rfind("--", 0) != 0) {
    throw std::invalid_argument("add_flag: flags must start with --");
  }
  flags_[name] = Flag{help, std::move(default_value), std::nullopt};
}

bool ArgParser::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      error_ = "unknown flag: " + arg;
      return false;
    }
    if (i + 1 >= args.size()) {
      error_ = "missing value for " + arg;
      return false;
    }
    it->second.value = args[++i];
  }
  for (const auto& [name, flag] : flags_) {
    if (!flag.value.has_value() && !flag.default_value.has_value()) {
      error_ = "missing required flag: " + name;
      return false;
    }
  }
  return true;
}

bool ArgParser::has(const std::string& name) const {
  auto it = flags_.find(name);
  return it != flags_.end() &&
         (it->second.value.has_value() || it->second.default_value.has_value());
}

std::string ArgParser::get(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) throw std::invalid_argument("get: undeclared flag " + name);
  if (it->second.value.has_value()) return *it->second.value;
  if (it->second.default_value.has_value()) return *it->second.default_value;
  throw std::invalid_argument("get: no value for " + name);
}

int ArgParser::get_int(const std::string& name) const {
  return std::stoi(get(name));
}

double ArgParser::get_double(const std::string& name) const {
  return std::stod(get(name));
}

std::string ArgParser::usage() const {
  std::string out = program_ + ": " + description_ + "\n";
  for (const auto& [name, flag] : flags_) {
    out += "  " + name + "  " + flag.help;
    if (flag.default_value.has_value()) {
      out += " (default: " + *flag.default_value + ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace flightnn::support
