#include "support/check.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace flightnn::support {

namespace {

std::atomic<CheckPolicy>& policy_storage() {
  static std::atomic<CheckPolicy> policy{[] {
    // Magic-static initializer: runs exactly once under the C++11 static
    // guard, and nothing in the process calls setenv.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* env = std::getenv("FLIGHTNN_CHECK_ABORT");
    const bool abort_requested =
        env != nullptr && env[0] != '\0' && env[0] != '0';
    return abort_requested ? CheckPolicy::kAbort : CheckPolicy::kThrow;
  }()};
  return policy;
}

}  // namespace

CheckPolicy check_policy() { return policy_storage().load(); }

void set_check_policy(CheckPolicy policy) { policy_storage().store(policy); }

void check_failed(const char* file, int line, const char* condition,
                  const std::string& message) {
  std::string full = "FLIGHTNN_CHECK failed";
  if (condition != nullptr && condition[0] != '\0') {
    full += ": ";
    full += condition;
  }
  if (!message.empty()) {
    full += ": ";
    full += message;
  }
  full += " (";
  full += file;
  full += ":";
  full += std::to_string(line);
  full += ")";
  if (check_policy() == CheckPolicy::kAbort) {
    std::fprintf(stderr, "%s\n", full.c_str());
    std::fflush(stderr);
    std::abort();
  }
  throw CheckFailure(full);
}

}  // namespace flightnn::support
