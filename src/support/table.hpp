#pragma once

// Plain-text table rendering used by the benchmark harnesses to print
// paper-style tables (Tables 2-6) with aligned columns, plus CSV export so
// results can be plotted externally.

#include <string>
#include <vector>

namespace flightnn::support {

// A simple column-aligned text table. Cells are strings; callers format
// numbers themselves (see format_* helpers below).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // Insert a horizontal separator before the next added row.
  void add_separator();

  // Render with box-drawing-free ASCII so output is terminal/CI friendly.
  [[nodiscard]] std::string to_string() const;

  // Comma-separated export (no separators, header first).
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  // row indices preceded by a rule
};

// Fixed-precision float formatting ("3.14").
std::string format_fixed(double value, int digits);

// Scientific-style formatting matching the paper's tables ("2.2e3").
std::string format_sci(double value, int digits = 1);

// Speedup formatting ("7.0x").
std::string format_speedup(double value);

// Human-readable byte size in MB with sensible precision ("0.08", "18.5").
std::string format_mb(double bytes);

}  // namespace flightnn::support
