#pragma once

// Semantic function markers read by the FLightNN lint (tools/flightnn_lint).
// Each macro states an invariant the lint then enforces on every run of
// tools/run_static_analysis.sh and in CI -- the static half of guarantees
// the runtime tests (arena_allocation_test, parallel_consistency_test,
// check_test) probe dynamically. DESIGN.md §12 documents the rules.
//
// Placement: on the function *definition*, before the return type:
//
//   FLIGHTNN_HOT tensor::Tensor ShiftConv2d::run(...) const { ... }
//
// Violations are suppressed per line, never per file, with a justified
//
//   // FLIGHTNN_LINT_SUPPRESS(rule-name): why this line is safe
//
// comment on (or immediately above) the offending line; the lint rejects
// suppressions with an empty justification.

// Steady-state hot path: no heap allocation may be reachable from this
// function -- no new/malloc, no allocating container calls, transitively
// through every repo-defined callee the lint can resolve. Traversal stops at
// functions that are themselves FLIGHTNN_HOT (independently checked) or
// FLIGHTNN_COLD_ALLOC (allocation allowed by design, see below). Also a real
// optimizer hint: hot functions are optimized more aggressively and placed
// together for locality.
#define FLIGHTNN_HOT __attribute__((hot))

// Grow-once / cold-path allocator: this function may allocate, by design,
// because its allocations die out in steady state (scratch-arena high-water
// growth, tensor-pool refill) or happen once at construction. Marks the
// boundary where FLIGHTNN_HOT traversal stops; the dynamic operator-new
// hook in tests/arena_allocation_test is what verifies the "dies out in
// steady state" half of the claim.
#define FLIGHTNN_COLD_ALLOC

// Pure integer shift kernel: the body must not mention float/double at all.
// The paper's datapath argument (and the int32 narrow-accumulator proof in
// DESIGN.md §9) holds only while accumulation stays integer; a float that
// sneaks into one of these functions silently re-introduces rounding and
// breaks bit-identical parallel reduction. Dequantization lives in the
// callers, after the kernel returns.
#define FLIGHTNN_INT_KERNEL

// Public API entry point: the body must state its precondition contract with
// a FLIGHTNN_CHECK / FLIGHTNN_CHECK_SHAPE within its first few statements,
// so malformed calls fail at the boundary with a typed CheckFailure instead
// of corrupting state deeper in the stack (support/check.hpp policy).
#define FLIGHTNN_API_ENTRY
