#pragma once

// The per-network experiment of Sec. 5: build one Table-1 topology, train
// the paper's model variants on a dataset (Full, L-2, L-1, FP4, and two
// FLightNNs at different regularization strengths), then attach storage,
// FPGA throughput and ASIC energy to each -- everything Tables 2-5, Table 6
// and Fig. 5 need.

#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "hw/asic_model.hpp"
#include "hw/fpga_model.hpp"
#include "models/networks.hpp"

namespace flightnn::eval {

// Which paper model variant a result row describes.
enum class Variant { kFull, kLightNN2, kLightNN1, kFixedPoint4, kFLightNN };

struct VariantResult {
  Variant variant = Variant::kFull;
  std::string label;          // "Full", "L-2 8W8A", "FL7a", ...
  double accuracy = 0.0;      // top-1 (or top-5 for the ImageNet proxy)
  double storage_bytes = 0.0;
  double mean_k = 1.0;        // shift terms per weight (shift-add variants)
  hw::QuantSpec spec;         // hardware-model descriptor
  hw::FpgaReport fpga;        // throughput + resources (largest layer)
  double speedup = 0.0;       // vs the experiment's baseline variant
  double energy_uj = 0.0;     // ASIC computational energy (largest layer)
  core::FitResult fit;        // training curve
};

// One FLightNN training recipe: group-lasso coefficients plus the
// threshold learning rate. The defaults below are calibrated (at the
// benches' reduced scale) to land at the paper's two operating points.
struct FLightNNRecipe {
  std::vector<float> lambdas;
  float threshold_learning_rate = 0.05F;
};

struct ExperimentConfig {
  int network_id = 1;
  data::DatasetSpec dataset;
  core::TrainConfig train;
  models::BuildOptions build;   // classes/in_channels set from dataset
  int top_k = 1;
  // The two FLightNN runs of each table: "a" drives most filters to one
  // shift (L-1-like storage, higher accuracy via gradual quantization); "b"
  // keeps a mix (storage between L-1 and L-2, accuracy near L-2).
  FLightNNRecipe recipe_a{{1e-5F, 1e-3F}, 0.1F};
  FLightNNRecipe recipe_b{{8e-5F, 2.4e-4F}, 0.02F};
  // Tables 2-4 include Full and FP4; Table 5 (ImageNet) omits them.
  bool include_full = true;
  bool include_fixed_point = true;
  // Baseline for the speedup column: Full when present, else L-2 (Table 5).
  std::uint64_t seed = 1;
};

struct ExperimentResult {
  ExperimentConfig config;
  models::NetworkConfig network;
  std::vector<VariantResult> variants;
};

// Run the full variant sweep. Training happens at config.build.width_scale;
// the hardware models are evaluated on the *unscaled* topology so
// throughput/energy reflect the paper's network sizes.
ExperimentResult run_experiment(const ExperimentConfig& config);

// Render an ExperimentResult as one block of a paper-style table
// (columns: Model, Accuracy(%), Storage(MB), Throughput(images/s), Speedup).
std::vector<std::vector<std::string>> table_rows(const ExperimentResult& result);

}  // namespace flightnn::eval
