#include "eval/pareto.hpp"

#include <algorithm>

namespace flightnn::eval {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  const bool no_worse = a.cost <= b.cost && a.quality >= b.quality;
  const bool strictly_better = a.cost < b.cost || a.quality > b.quality;
  return no_worse && strictly_better;
}

std::vector<ParetoPoint> pareto_front(std::vector<ParetoPoint> points) {
  std::vector<ParetoPoint> front;
  for (const auto& candidate : points) {
    bool dominated = false;
    for (const auto& other : points) {
      if (&other != &candidate && dominates(other, candidate)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    // Keep duplicates once.
    const bool already = std::any_of(
        front.begin(), front.end(), [&](const ParetoPoint& p) {
          return p.cost == candidate.cost && p.quality == candidate.quality;
        });
    if (!already) front.push_back(candidate);
  }
  std::sort(front.begin(), front.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              return a.cost < b.cost;
            });
  return front;
}

double hypervolume(const std::vector<ParetoPoint>& front, double ref_cost,
                   double ref_quality) {
  auto sorted = pareto_front(front);
  double volume = 0.0;
  double previous_cost = ref_cost;
  // Sweep from the highest-cost point leftwards; each point contributes a
  // rectangle up to the previous (more expensive) point's cost.
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    if (it->cost > ref_cost || it->quality < ref_quality) continue;
    volume += (previous_cost - it->cost) * (it->quality - ref_quality);
    previous_cost = it->cost;
  }
  return volume;
}

}  // namespace flightnn::eval
