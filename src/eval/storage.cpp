#include "eval/storage.hpp"

#include "core/flightnn_transform.hpp"
#include "core/quantize_model.hpp"
#include "quant/fixedpoint.hpp"
#include "quant/lightnn.hpp"

namespace flightnn::eval {

namespace {

// Bits consumed by one quantizable layer's weight tensor.
double layer_weight_bits(const core::QuantizableLayer& layer) {
  const auto& w = layer.weight->value;
  const auto count = static_cast<double>(w.numel());
  if (layer.transform == nullptr) return count * 32.0;
  if (auto* lightnn = dynamic_cast<quant::LightNNTransform*>(layer.transform)) {
    return count * static_cast<double>(lightnn->k() * kShiftTermBits);
  }
  if (auto* fxp = dynamic_cast<quant::FixedPointTransform*>(layer.transform)) {
    return count * static_cast<double>(fxp->config().bits);
  }
  if (auto* fl = dynamic_cast<core::FLightNNTransform*>(layer.transform)) {
    const auto ks = fl->filter_k(w);
    const double per_filter_elems =
        count / static_cast<double>(ks.empty() ? 1 : ks.size());
    double bits = 0.0;
    for (int k : ks) {
      bits += per_filter_elems * k * kShiftTermBits + kFilterTagBits;
    }
    return bits;
  }
  return count * 32.0;  // unknown transform: assume full precision
}

}  // namespace

double model_storage_bytes(nn::Sequential& model) {
  double bits = 0.0;
  // Quantizable weights at their encoded width.
  const auto layers = core::quantizable_layers(model);
  for (const auto& layer : layers) bits += layer_weight_bits(layer);
  // Everything else (biases, batch-norm parameters) at 32 bits.
  std::int64_t quantized_numel = 0;
  for (const auto& layer : layers) quantized_numel += layer.weight->value.numel();
  std::int64_t total_numel = 0;
  for (auto* param : model.parameters()) total_numel += param->value.numel();
  bits += static_cast<double>(total_numel - quantized_numel) * 32.0;
  return bits / 8.0;
}

double reference_storage_bytes(nn::Sequential& reference_model,
                               const hw::QuantSpec& spec) {
  double bits_per_weight = 32.0;
  switch (spec.kind) {
    case hw::ArithKind::kFloat32:
      bits_per_weight = 32.0;
      break;
    case hw::ArithKind::kFixedPoint:
      bits_per_weight = spec.weight_bits;
      break;
    case hw::ArithKind::kShiftAdd:
      bits_per_weight = spec.mean_k * spec.weight_bits;
      break;
  }
  std::int64_t quantized_numel = 0;
  const auto layers = core::quantizable_layers(reference_model);
  for (const auto& layer : layers) quantized_numel += layer.weight->value.numel();
  std::int64_t total_numel = 0;
  for (auto* param : reference_model.parameters()) {
    total_numel += param->value.numel();
  }
  double bits = static_cast<double>(quantized_numel) * bits_per_weight;
  if (spec.kind == hw::ArithKind::kShiftAdd &&
      spec.mean_k != static_cast<int>(spec.mean_k)) {
    // FLightNN carries a small per-filter k tag.
    for (const auto& layer : layers) {
      bits += static_cast<double>(layer.weight->value.shape()[0]) * kFilterTagBits;
    }
  }
  bits += static_cast<double>(total_numel - quantized_numel) * 32.0;
  return bits / 8.0;
}

double model_mean_k(nn::Sequential& model) {
  double weighted_k = 0.0, total = 0.0;
  for (const auto& layer : core::quantizable_layers(model)) {
    const auto count = static_cast<double>(layer.weight->value.numel());
    double k = 1.0;
    if (auto* lightnn = dynamic_cast<quant::LightNNTransform*>(layer.transform)) {
      k = lightnn->k();
    } else if (auto* fl =
                   dynamic_cast<core::FLightNNTransform*>(layer.transform)) {
      k = fl->mean_k(layer.weight->value);
    }
    weighted_k += k * count;
    total += count;
  }
  return total > 0.0 ? weighted_k / total : 1.0;
}

}  // namespace flightnn::eval
