#include "eval/experiment.hpp"

#include <cmath>

#include "core/quantize_model.hpp"
#include "eval/storage.hpp"
#include "support/logging.hpp"
#include "support/table.hpp"

namespace flightnn::eval {

namespace {

// Train one variant and fill in accuracy / storage / mean-k.
VariantResult train_variant(Variant variant, const std::string& label,
                            const ExperimentConfig& config,
                            const data::TrainTest& split,
                            const models::NetworkConfig& network,
                            const FLightNNRecipe* recipe = nullptr) {
  models::BuildOptions build = config.build;
  build.in_channels = config.dataset.channels;
  build.classes = config.dataset.classes;
  build.seed = config.seed;
  if (variant == Variant::kFull) build.act_bits = 0;

  auto model = models::build_network(network, build);
  switch (variant) {
    case Variant::kFull:
      break;
    case Variant::kLightNN2:
      core::install_lightnn(*model, 2);
      break;
    case Variant::kLightNN1:
      core::install_lightnn(*model, 1);
      break;
    case Variant::kFixedPoint4:
      core::install_fixed_point(*model, 4);
      break;
    case Variant::kFLightNN: {
      core::FLightNNConfig fl;
      fl.lambdas = recipe->lambdas;
      core::install_flightnn(*model, fl);
      break;
    }
  }

  core::TrainConfig train = config.train;
  train.seed = config.seed + static_cast<std::uint64_t>(variant) * 97;
  if (recipe != nullptr) {
    train.threshold_learning_rate = recipe->threshold_learning_rate;
  }
  core::Trainer trainer(*model, train);
  support::log_info() << "net " << network.id << " [" << label << "] training "
                      << train.epochs << " epochs on " << config.dataset.name;
  VariantResult result;
  result.variant = variant;
  result.label = label;
  result.fit = trainer.fit(split.train, split.test, config.top_k);
  result.accuracy = result.fit.test_accuracy * 100.0;
  result.storage_bytes = model_storage_bytes(*model);
  result.mean_k = model_mean_k(*model);

  switch (variant) {
    case Variant::kFull:
      result.spec = hw::QuantSpec::full();
      break;
    case Variant::kLightNN2:
      result.spec = hw::QuantSpec::lightnn(2);
      break;
    case Variant::kLightNN1:
      result.spec = hw::QuantSpec::lightnn(1);
      break;
    case Variant::kFixedPoint4:
      result.spec = hw::QuantSpec::fixed_point(4, 8);
      break;
    case Variant::kFLightNN:
      result.spec = hw::QuantSpec::flightnn(result.mean_k);
      break;
  }
  return result;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  ExperimentResult result;
  result.config = config;
  result.network = models::table1_network(config.network_id);

  const data::TrainTest split = data::make_synthetic(config.dataset);

  std::vector<VariantResult>& variants = result.variants;
  if (config.include_full) {
    variants.push_back(train_variant(Variant::kFull, "Full", config, split,
                                     result.network));
  }
  variants.push_back(train_variant(Variant::kLightNN2, "L-2 8W8A", config,
                                   split, result.network));
  variants.push_back(train_variant(Variant::kLightNN1, "L-1 4W8A", config,
                                   split, result.network));
  if (config.include_fixed_point) {
    variants.push_back(train_variant(Variant::kFixedPoint4, "FP 4W8A", config,
                                     split, result.network));
  }
  const std::string id = std::to_string(config.network_id);
  variants.push_back(train_variant(Variant::kFLightNN, "FL" + id + "a", config,
                                   split, result.network, &config.recipe_a));
  variants.push_back(train_variant(Variant::kFLightNN, "FL" + id + "b", config,
                                   split, result.network, &config.recipe_b));

  // Hardware models run on the unscaled topology: throughput and energy are
  // properties of the paper-size network, independent of how small a proxy
  // we trained.
  models::BuildOptions full_size = config.build;
  full_size.in_channels = config.dataset.channels;
  full_size.classes = config.dataset.classes;
  full_size.width_scale = 1.0F;
  full_size.act_bits = 0;  // transform-free trace build
  auto reference_model = models::build_network(result.network, full_size);
  const hw::LayerCost layer = hw::largest_layer(
      *reference_model,
      tensor::Shape{1, config.dataset.channels, config.dataset.height,
                    config.dataset.width});

  const hw::FpgaModel fpga;
  const hw::AsicModel asic;
  for (auto& variant : variants) {
    variant.fpga = fpga.evaluate(layer, variant.spec);
    variant.energy_uj = asic.layer_energy_uj(layer, variant.spec);
    // Report the paper-size network's storage (the proxy's mean k carries
    // over as bits-per-weight).
    variant.storage_bytes = reference_storage_bytes(*reference_model, variant.spec);
  }

  // Speedup column: relative to Full when present, else the first variant
  // (L-2, matching Table 5's ImageNet baseline).
  const double baseline = variants.front().fpga.throughput;
  for (auto& variant : variants) {
    variant.speedup = variant.fpga.throughput / baseline;
  }
  return result;
}

std::vector<std::vector<std::string>> table_rows(const ExperimentResult& result) {
  std::vector<std::vector<std::string>> rows;
  for (const auto& variant : result.variants) {
    rows.push_back({
        std::to_string(result.network.id),
        variant.label,
        support::format_fixed(variant.accuracy, 2),
        support::format_mb(variant.storage_bytes),
        support::format_sci(variant.fpga.throughput),
        support::format_speedup(variant.speedup),
    });
  }
  return rows;
}

}  // namespace flightnn::eval
