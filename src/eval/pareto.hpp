#pragma once

// Pareto-front extraction over (cost, quality) points, used for the Fig. 1 /
// Fig. 6 analyses: lower cost is better, higher quality is better.

#include <string>
#include <vector>

namespace flightnn::eval {

struct ParetoPoint {
  double cost = 0.0;     // energy, latency, or storage -- lower is better
  double quality = 0.0;  // accuracy -- higher is better
  std::string label;
};

// True if `a` dominates `b` (no worse on both axes, strictly better on one).
bool dominates(const ParetoPoint& a, const ParetoPoint& b);

// The non-dominated subset, sorted by ascending cost. Duplicate points are
// kept once.
std::vector<ParetoPoint> pareto_front(std::vector<ParetoPoint> points);

// Hypervolume indicator w.r.t. a reference point (ref_cost >= all costs,
// ref_quality <= all qualities): the area dominated by the front. Larger is
// better; used to compare the FLightNN front against the LightNN-only front
// (Fig. 6's "upper bound" claim).
double hypervolume(const std::vector<ParetoPoint>& front, double ref_cost,
                   double ref_quality);

}  // namespace flightnn::eval
