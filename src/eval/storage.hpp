#pragma once

// Model storage accounting matching the paper's "Storage (MB)" columns:
// each quantized weight costs its encoding width (4 bits per shift term for
// (F)LightNNs -- 1 sign + 3 exponent bits -- 4 bits for FP4, 32 bits for
// full precision), FLightNN filters additionally carry a 2-bit k tag, and
// non-quantized parameters (biases, batch-norm) count at full precision.

#include "hw/cost_model.hpp"
#include "nn/sequential.hpp"

namespace flightnn::eval {

// Bits per shift term in the (F)LightNN encoding (sign + 3-bit exponent).
inline constexpr int kShiftTermBits = 4;
// Per-filter k tag for FLightNN (k in {0, 1, 2} needs 2 bits).
inline constexpr int kFilterTagBits = 2;

// Total storage of a model in bytes, honouring each layer's installed
// transform. For FLightNN layers, the current weights' per-filter k values
// determine the cost (so storage shrinks as training sparsifies filters).
double model_storage_bytes(nn::Sequential& model);

// Storage the *reference* (typically full-size) model would need under a
// quantization spec: quantizable weights at the spec's bits per weight
// (mean_k x 4 for shift-coded models), everything else at 32 bits. Used by
// the table benches, which train reduced proxies but report the paper-size
// network's storage.
double reference_storage_bytes(nn::Sequential& reference_model,
                               const hw::QuantSpec& spec);

// Weighted mean shift count over all quantized weights in the model: k for
// LightNN-k layers, mean k_i for FLightNN layers, 1 for everything else
// (used as the FPGA/ASIC cost of the multiplier replacement).
double model_mean_k(nn::Sequential& model);

}  // namespace flightnn::eval
