#pragma once

// Uniform (fixed-point) quantization, the paper's "FP_xWyA" baseline:
// symmetric signed integers with a per-tensor power-of-two scale so that the
// hardware realization stays multiplier+shift only. Used for the 4-bit
// weight baseline and for 8-bit activation quantization in all quantized
// models (Sec. 5.1).

#include "quant/transform.hpp"

namespace flightnn::quant {

struct FixedPointConfig {
  int bits = 4;  // total bits including sign

  // Integer range is symmetric: [-(2^(bits-1) - 1), +(2^(bits-1) - 1)].
  [[nodiscard]] int q_max() const { return (1 << (bits - 1)) - 1; }
};

// Per-tensor power-of-two scale chosen so q_max * scale covers abs-max.
// Returns the scale (2^e); abs-max of zero yields scale 1.
float choose_pow2_scale(const tensor::Tensor& x, const FixedPointConfig& config);

// Quantize to fixed point with an explicit scale: round(x / scale) clamped
// to the symmetric integer range, returned in float realization
// (value = q * scale).
tensor::Tensor quantize_fixed_point(const tensor::Tensor& x, float scale,
                                    const FixedPointConfig& config);

// Convenience: choose scale then quantize.
tensor::Tensor quantize_fixed_point(const tensor::Tensor& x,
                                    const FixedPointConfig& config);

// Fixed-point weights as a WeightTransform (STE backward).
class FixedPointTransform final : public WeightTransform {
 public:
  explicit FixedPointTransform(FixedPointConfig config = {});

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& w) override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] const FixedPointConfig& config() const { return config_; }

 private:
  FixedPointConfig config_;
};

// Activation fake-quantization: symmetric `bits`-bit fixed point with a
// dynamic per-tensor power-of-two scale. Identity for non-finite-safe
// ranges. STE is applied by the ActivationQuant layer in nn/.
tensor::Tensor quantize_activations(const tensor::Tensor& x, int bits);

}  // namespace flightnn::quant
