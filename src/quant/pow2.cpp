#include "quant/pow2.hpp"

#include <cmath>

#include "support/check.hpp"

namespace flightnn::quant {

// Pow2Term::value() and the scalar round_to_pow2 live in the header: they
// sit on the per-weight hot path of every quantizer and must inline.

tensor::Tensor round_to_pow2(const tensor::Tensor& x, const Pow2Config& config) {
  FLIGHTNN_CHECK(config.e_min <= config.e_max, "round_to_pow2: e_min ",
                 config.e_min, " > e_max ", config.e_max);
  tensor::Tensor out(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    out[i] = round_to_pow2(x[i], config).value();
  }
  return out;
}

bool is_pow2_representable(const tensor::Tensor& x, const Pow2Config& config) {
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float v = x[i];
    if (v == 0.0F) continue;
    const float mag = std::fabs(v);
    const float e = std::log2(mag);
    if (e != std::floor(e)) return false;
    const int ei = static_cast<int>(e);
    if (ei < config.e_min || ei > config.e_max) return false;
  }
  return true;
}

bool is_sum_of_pow2(const tensor::Tensor& x, int k, const Pow2Config& config) {
  FLIGHTNN_CHECK(k >= 1, "is_sum_of_pow2: k must be >= 1, got ", k);
  // Greedy residual peeling: a value is a sum of <= k representable terms iff
  // peeling the nearest power of two k times reaches (close to) zero. The
  // greedy check matches how the quantizers construct values, so it is exact
  // for their outputs.
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    float residual = x[i];
    for (int j = 0; j < k && residual != 0.0F; ++j) {
      residual -= round_to_pow2(residual, config).value();
    }
    if (residual != 0.0F) return false;
  }
  return true;
}

}  // namespace flightnn::quant
