#include "quant/pow2.hpp"

#include <cmath>

#include "support/check.hpp"

namespace flightnn::quant {

float Pow2Term::value() const {
  FLIGHTNN_DCHECK(sign >= -1 && sign <= 1, "Pow2Term: sign ",
                  static_cast<int>(sign), " not in {-1, 0, 1}");
  if (sign == 0) return 0.0F;
  return static_cast<float>(sign) * std::ldexp(1.0F, exponent);
}

Pow2Term round_to_pow2(float x, const Pow2Config& config) {
  FLIGHTNN_DCHECK(config.e_min <= config.e_max, "Pow2Config: e_min ",
                  config.e_min, " > e_max ", config.e_max);
  Pow2Term term;
  if (x == 0.0F || std::isnan(x)) return term;
  const float mag = std::fabs(x);
  if (config.flush_to_zero && mag < std::ldexp(1.0F, config.e_min - 1)) {
    return term;  // exact zero
  }
  // Nearest power of two in log domain: exponent = round(log2(mag)).
  int e = static_cast<int>(std::lround(std::log2(mag)));
  if (e < config.e_min) e = config.e_min;
  if (e > config.e_max) e = config.e_max;
  term.sign = static_cast<std::int8_t>(x > 0.0F ? 1 : -1);
  term.exponent = static_cast<std::int8_t>(e);
  // The clamped exponent must sit inside the representable budget; a term
  // outside it cannot be realized by the shift engine's barrel shifter.
  FLIGHTNN_DCHECK(term.exponent >= config.e_min && term.exponent <= config.e_max,
                  "round_to_pow2: exponent ", static_cast<int>(term.exponent),
                  " outside [", config.e_min, ", ", config.e_max, "]");
  return term;
}

tensor::Tensor round_to_pow2(const tensor::Tensor& x, const Pow2Config& config) {
  FLIGHTNN_CHECK(config.e_min <= config.e_max, "round_to_pow2: e_min ",
                 config.e_min, " > e_max ", config.e_max);
  tensor::Tensor out(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    out[i] = round_to_pow2(x[i], config).value();
  }
  return out;
}

bool is_pow2_representable(const tensor::Tensor& x, const Pow2Config& config) {
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float v = x[i];
    if (v == 0.0F) continue;
    const float mag = std::fabs(v);
    const float e = std::log2(mag);
    if (e != std::floor(e)) return false;
    const int ei = static_cast<int>(e);
    if (ei < config.e_min || ei > config.e_max) return false;
  }
  return true;
}

bool is_sum_of_pow2(const tensor::Tensor& x, int k, const Pow2Config& config) {
  FLIGHTNN_CHECK(k >= 1, "is_sum_of_pow2: k must be >= 1, got ", k);
  // Greedy residual peeling: a value is a sum of <= k representable terms iff
  // peeling the nearest power of two k times reaches (close to) zero. The
  // greedy check matches how the quantizers construct values, so it is exact
  // for their outputs.
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    float residual = x[i];
    for (int j = 0; j < k && residual != 0.0F; ++j) {
      residual -= round_to_pow2(residual, config).value();
    }
    if (residual != 0.0F) return false;
  }
  return true;
}

}  // namespace flightnn::quant
