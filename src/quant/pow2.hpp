#pragma once

// Power-of-two arithmetic primitives shared by every quantizer in the
// library. The paper's R(x) = sign(x) * 2^[log2(|x|)] (Sec. 3) rounds a value
// to the nearest power of two in the *log* domain; hardware then realizes a
// multiply by R(x) as a barrel shift.

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "support/check.hpp"
#include "tensor/tensor.hpp"

namespace flightnn::quant {

// Exponent budget for a power-of-two coded weight term. A 4-bit term
// (1 sign bit + 3 magnitude bits) encodes exact zero plus sign * 2^e for
// 7 exponent values -- matching the paper's "L-1 4W" / "L-2 8W" encodings
// and the nibble packing in serialize/ (code 0 = zero, 15 signed
// exponents).
struct Pow2Config {
  int e_min = -6;
  int e_max = 0;
  // Magnitudes below 2^(e_min - 1) round to exact zero instead of being
  // clamped up to 2^e_min; keeps tiny residuals from gaining energy.
  bool flush_to_zero = true;

  [[nodiscard]] int exponent_levels() const { return e_max - e_min + 1; }
};

// 2^e as a float for e in the normal exponent range, built directly from
// the IEEE-754 bit layout. ldexp is a libm call; this is one shift. The
// quantizers call it (via round_to_pow2 below) once per weight per residual
// level every training step, so it must inline.
inline float exp2_int(int e) {
  FLIGHTNN_DCHECK(e >= -126 && e <= 127, "exp2_int: exponent ", e,
                  " outside the normal float range");
  return std::bit_cast<float>(static_cast<std::uint32_t>(e + 127) << 23);
}

// One shift term: value = sign * 2^exponent, or exact zero when sign == 0.
struct Pow2Term {
  std::int8_t sign = 0;     // -1, 0, +1
  std::int8_t exponent = 0; // valid only when sign != 0

  [[nodiscard]] float value() const {
    FLIGHTNN_DCHECK(sign >= -1 && sign <= 1, "Pow2Term: sign ",
                    static_cast<int>(sign), " not in {-1, 0, 1}");
    if (sign == 0) return 0.0F;
    return static_cast<float>(sign) * exp2_int(exponent);
  }
};

// Round a scalar to the nearest power of two under `config`. Returns the
// term; use term.value() for the float realization.
//
// "Nearest in the log domain" (round(log2|x|)) is computed from the float
// bit pattern: split |x| = 2^e * m with m in [1, 2) and bump e when
// log2(m) > 1/2, i.e. when m > sqrt(2). sqrt(2) is irrational, hence never
// a float, so the strict compare against its nearest float realizes the
// infinitely precise cutoff exactly -- unlike the former libm
// lround(log2f(.)) formulation, which was off by the log2f rounding error
// for mantissas adjacent to the cutoff (and ~50ns slower per call).
inline Pow2Term round_to_pow2(float x, const Pow2Config& config) {
  FLIGHTNN_DCHECK(config.e_min <= config.e_max, "Pow2Config: e_min ",
                  config.e_min, " > e_max ", config.e_max);
  Pow2Term term;
  if (x == 0.0F || std::isnan(x)) return term;
  const float mag = std::fabs(x);
  if (config.flush_to_zero && mag < 0.5F * exp2_int(config.e_min)) {
    return term;  // exact zero
  }
  const auto bits = std::bit_cast<std::uint32_t>(mag);
  int e = static_cast<int>(bits >> 23) - 127;
  const float mantissa =
      std::bit_cast<float>((bits & 0x007FFFFFU) | 0x3F800000U);
  constexpr float kSqrt2 = 1.41421356237309504880F;
  if (mantissa > kSqrt2) ++e;
  // Subnormal |x| decodes as e = -127 with a garbage mantissa; both land
  // below any sane e_min and the clamp absorbs them, matching the old
  // log-domain result. Infinities decode as e = 128 and clamp to e_max.
  e = std::clamp(e, config.e_min, config.e_max);
  term.sign = static_cast<std::int8_t>(x > 0.0F ? 1 : -1);
  term.exponent = static_cast<std::int8_t>(e);
  return term;
}

// Elementwise R(x) over a tensor (float realization).
tensor::Tensor round_to_pow2(const tensor::Tensor& x, const Pow2Config& config);

// True if every element of `x` is exactly representable as sign * 2^e with
// e in [config.e_min, config.e_max] or exact zero.
bool is_pow2_representable(const tensor::Tensor& x, const Pow2Config& config);

// True if every element is a sum of at most k representable terms. Verifies
// LightNN-k / FLightNN quantizer outputs in tests.
bool is_sum_of_pow2(const tensor::Tensor& x, int k, const Pow2Config& config);

}  // namespace flightnn::quant
