#pragma once

// Power-of-two arithmetic primitives shared by every quantizer in the
// library. The paper's R(x) = sign(x) * 2^[log2(|x|)] (Sec. 3) rounds a value
// to the nearest power of two in the *log* domain; hardware then realizes a
// multiply by R(x) as a barrel shift.

#include <cstdint>

#include "tensor/tensor.hpp"

namespace flightnn::quant {

// Exponent budget for a power-of-two coded weight term. A 4-bit term
// (1 sign bit + 3 magnitude bits) encodes exact zero plus sign * 2^e for
// 7 exponent values -- matching the paper's "L-1 4W" / "L-2 8W" encodings
// and the nibble packing in serialize/ (code 0 = zero, 15 signed
// exponents).
struct Pow2Config {
  int e_min = -6;
  int e_max = 0;
  // Magnitudes below 2^(e_min - 1) round to exact zero instead of being
  // clamped up to 2^e_min; keeps tiny residuals from gaining energy.
  bool flush_to_zero = true;

  [[nodiscard]] int exponent_levels() const { return e_max - e_min + 1; }
};

// One shift term: value = sign * 2^exponent, or exact zero when sign == 0.
struct Pow2Term {
  std::int8_t sign = 0;     // -1, 0, +1
  std::int8_t exponent = 0; // valid only when sign != 0

  [[nodiscard]] float value() const;
};

// Round a scalar to the nearest power of two under `config`. Returns the
// term; use term.value() for the float realization.
Pow2Term round_to_pow2(float x, const Pow2Config& config);

// Elementwise R(x) over a tensor (float realization).
tensor::Tensor round_to_pow2(const tensor::Tensor& x, const Pow2Config& config);

// True if every element of `x` is exactly representable as sign * 2^e with
// e in [config.e_min, config.e_max] or exact zero.
bool is_pow2_representable(const tensor::Tensor& x, const Pow2Config& config);

// True if every element is a sum of at most k representable terms. Verifies
// LightNN-k / FLightNN quantizer outputs in tests.
bool is_sum_of_pow2(const tensor::Tensor& x, int k, const Pow2Config& config);

}  // namespace flightnn::quant
