#include "quant/fixedpoint.hpp"

#include <cmath>

#include "support/check.hpp"

namespace flightnn::quant {

float choose_pow2_scale(const tensor::Tensor& x, const FixedPointConfig& config) {
  FLIGHTNN_DCHECK(config.bits >= 2 && config.bits <= 16,
                  "choose_pow2_scale: bits ", config.bits, " outside [2, 16]");
  const float abs_max = x.abs_max();
  if (abs_max == 0.0F) return 1.0F;
  // Smallest power-of-two scale with q_max * scale >= abs_max.
  const int e = static_cast<int>(
      std::ceil(std::log2(abs_max / static_cast<float>(config.q_max()))));
  return std::ldexp(1.0F, e);
}

tensor::Tensor quantize_fixed_point(const tensor::Tensor& x, float scale,
                                    const FixedPointConfig& config) {
  FLIGHTNN_CHECK(scale > 0.0F, "quantize_fixed_point: scale must be > 0, got ",
                 scale);
  const float q_max = static_cast<float>(config.q_max());
  tensor::Tensor out(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    float q = std::nearbyint(x[i] / scale);
    if (q > q_max) q = q_max;
    if (q < -q_max) q = -q_max;
    out[i] = q * scale;
  }
  return out;
}

tensor::Tensor quantize_fixed_point(const tensor::Tensor& x,
                                    const FixedPointConfig& config) {
  return quantize_fixed_point(x, choose_pow2_scale(x, config), config);
}

FixedPointTransform::FixedPointTransform(FixedPointConfig config)
    : config_(config) {
  FLIGHTNN_CHECK(config.bits >= 2 && config.bits <= 16,
                 "FixedPointTransform: bits ", config.bits, " outside [2, 16]");
}

tensor::Tensor FixedPointTransform::forward(const tensor::Tensor& w) {
  return quantize_fixed_point(w, config_);
}

std::string FixedPointTransform::describe() const {
  return "fixedpoint-" + std::to_string(config_.bits) + "b";
}

tensor::Tensor quantize_activations(const tensor::Tensor& x, int bits) {
  FixedPointConfig config{bits};
  return quantize_fixed_point(x, choose_pow2_scale(x, config), config);
}

}  // namespace flightnn::quant
