#include "quant/transform.hpp"

namespace flightnn::quant {

void WeightTransform::backward(const tensor::Tensor& /*w*/,
                               const tensor::Tensor& grad_wq,
                               tensor::Tensor& grad_w) {
  // Straight-through estimator: d(wq)/d(w) := 1.
  grad_w += grad_wq;
}

double WeightTransform::regularization(const tensor::Tensor& /*w*/,
                                       tensor::Tensor* /*grad_w*/) {
  return 0.0;
}

void WeightTransform::step_internal(float /*learning_rate*/) {}

void WeightTransform::zero_internal_grads() {}

}  // namespace flightnn::quant
