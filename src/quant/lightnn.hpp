#pragma once

// LightNN-k weight quantization (Ding et al., GLSVLSI'17; Sec. 3 of the
// FLightNN paper): every weight becomes the sum of exactly-at-most k powers
// of two, built by recursive residual peeling
//   Q_k(w) = Q_{k-1}(w) + Q_1(w - Q_{k-1}(w)),  Q_1(w) = R(w).
// The same k applies to every filter; this is the baseline FLightNN
// generalizes.

#include "quant/pow2.hpp"
#include "quant/transform.hpp"

namespace flightnn::quant {

// Elementwise Q_k over a tensor.
tensor::Tensor quantize_lightnn(const tensor::Tensor& w, int k,
                                const Pow2Config& config);

// LightNN-k as a WeightTransform (STE backward, no internal state).
class LightNNTransform final : public WeightTransform {
 public:
  LightNNTransform(int k, Pow2Config config = {});

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& w) override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] const Pow2Config& config() const { return config_; }

 private:
  int k_;
  Pow2Config config_;
};

}  // namespace flightnn::quant
