#include "quant/lightnn.hpp"

#include "runtime/thread_pool.hpp"
#include "support/check.hpp"

namespace flightnn::quant {

tensor::Tensor quantize_lightnn(const tensor::Tensor& w, int k,
                                const Pow2Config& config) {
  FLIGHTNN_CHECK(k >= 1, "quantize_lightnn: k must be >= 1, got ", k);
  FLIGHTNN_CHECK(config.e_min <= config.e_max, "quantize_lightnn: e_min ",
                 config.e_min, " > e_max ", config.e_max);
  tensor::Tensor out(w.shape());
  // Elementwise and independent, so the parallel partition cannot change any
  // result; the cost hint keeps small weight tensors on the calling thread.
  runtime::parallel_for(
      0, w.numel(), 1024, runtime::CostHint{static_cast<double>(k) * 5.0},
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          float acc = 0.0F;
          float residual = w[i];
          for (int j = 0; j < k; ++j) {
            const float term = round_to_pow2(residual, config).value();
            if (term == 0.0F) break;  // residual already representable as zero
            acc += term;
            residual -= term;
          }
          out[i] = acc;
        }
      });
  // Every output must decompose back into <= k shifter terms; anything else
  // is a quantizer bug the inference engine would silently mis-execute.
  FLIGHTNN_DCHECK(is_sum_of_pow2(out, k, config),
                  "quantize_lightnn: output not a sum of <= ", k,
                  " power-of-two terms");
  return out;
}

LightNNTransform::LightNNTransform(int k, Pow2Config config)
    : k_(k), config_(config) {
  FLIGHTNN_CHECK(k >= 1, "LightNNTransform: k must be >= 1, got ", k);
}

tensor::Tensor LightNNTransform::forward(const tensor::Tensor& w) {
  return quantize_lightnn(w, k_, config_);
}

std::string LightNNTransform::describe() const {
  return "lightnn-k" + std::to_string(k_);
}

}  // namespace flightnn::quant
