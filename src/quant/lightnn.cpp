#include "quant/lightnn.hpp"

#include <stdexcept>

namespace flightnn::quant {

tensor::Tensor quantize_lightnn(const tensor::Tensor& w, int k,
                                const Pow2Config& config) {
  if (k < 1) throw std::invalid_argument("quantize_lightnn: k must be >= 1");
  tensor::Tensor out(w.shape());
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    float acc = 0.0F;
    float residual = w[i];
    for (int j = 0; j < k; ++j) {
      const float term = round_to_pow2(residual, config).value();
      if (term == 0.0F) break;  // residual already representable as zero
      acc += term;
      residual -= term;
    }
    out[i] = acc;
  }
  return out;
}

LightNNTransform::LightNNTransform(int k, Pow2Config config)
    : k_(k), config_(config) {
  if (k < 1) throw std::invalid_argument("LightNNTransform: k must be >= 1");
}

tensor::Tensor LightNNTransform::forward(const tensor::Tensor& w) {
  return quantize_lightnn(w, k_, config_);
}

std::string LightNNTransform::describe() const {
  return "lightnn-k" + std::to_string(k_);
}

}  // namespace flightnn::quant
