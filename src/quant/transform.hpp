#pragma once

// WeightTransform: the hook through which quantizers plug into parameterized
// layers. A layer holding a transform runs `forward` on its full-precision
// weights before using them (Algorithm 1, step 1) and routes the gradient of
// the loss w.r.t. the quantized weights back through `backward`
// (straight-through estimation by default, Sec. 4.2).
//
// Transforms with trainable internal state (the FLightNN thresholds t) also
// expose a regularization term (Sec. 4.3) and an internal update step so the
// trainer can run Algorithm 1 without knowing which quantizer is installed.

#include <memory>
#include <string>

#include "tensor/tensor.hpp"

namespace flightnn::quant {

class WeightTransform {
 public:
  virtual ~WeightTransform() = default;

  // Quantize full-precision weights `w` (layout: filter-major, i.e. the
  // first axis indexes filters for conv weights / output units for linear).
  [[nodiscard]] virtual tensor::Tensor forward(const tensor::Tensor& w) = 0;

  // Given dL/d(quantized w), accumulate dL/dw into `grad_w` and any internal
  // gradients (thresholds). Default: straight-through, grad_w += grad_wq.
  virtual void backward(const tensor::Tensor& w, const tensor::Tensor& grad_wq,
                        tensor::Tensor& grad_w);

  // Regularization loss evaluated on the full-precision weights; if
  // `grad_w` is non-null also accumulates its gradient. Default: none.
  virtual double regularization(const tensor::Tensor& w, tensor::Tensor* grad_w);

  // Update internal trainable state (thresholds) from gradients accumulated
  // by `backward`, then clear them. Default: no internal state.
  virtual void step_internal(float learning_rate);

  // Clear internal gradient accumulators (start of a mini-batch).
  virtual void zero_internal_grads();

  // Human-readable description ("lightnn-k2", "flightnn[kmax=2]", ...).
  [[nodiscard]] virtual std::string describe() const = 0;
};

using WeightTransformPtr = std::shared_ptr<WeightTransform>;

}  // namespace flightnn::quant
