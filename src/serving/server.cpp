#include "serving/server.hpp"

#include <algorithm>
#include <utility>

#include "support/annotations.hpp"
#include "support/check.hpp"

namespace flightnn::serving {

const char* to_string(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::Ok: return "ok";
    case SubmitStatus::Overloaded: return "overloaded";
    case SubmitStatus::ShuttingDown: return "shutting_down";
  }
  FLIGHTNN_UNREACHABLE("invalid SubmitStatus");
}

Server::Server(const runtime::BatchRunner& runner, ServerConfig config)
    : runner_(&runner), config_(config) {
  FLIGHTNN_CHECK(config_.max_batch >= 1,
                 "serving::Server: max_batch must be >= 1, got ",
                 config_.max_batch);
  FLIGHTNN_CHECK(config_.max_queue_delay_s >= 0.0,
                 "serving::Server: max_queue_delay_s must be >= 0, got ",
                 config_.max_queue_delay_s);
  FLIGHTNN_CHECK(config_.max_queue_images >= 1,
                 "serving::Server: max_queue_images must be >= 1, got ",
                 config_.max_queue_images);
  max_delay_ = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(config_.max_queue_delay_s));
  // Pay the memory-plan warmup (planned arenas + pool prewarm on every
  // inference thread) at construction so the first request's latency is
  // steady-state, not cold-start.
  runner_->warm(static_cast<std::size_t>(config_.max_batch));
  batcher_ = std::thread([this] { batcher_loop(); });
}

Server::~Server() { shutdown(); }

void Server::shutdown() {
  std::call_once(shutdown_once_, [this] {
    {
      const support::MutexLock lock(mutex_);
      stopping_ = true;
    }
    work_available_.notify_all();
    space_available_.notify_all();
    if (batcher_.joinable()) batcher_.join();
  });
}

FLIGHTNN_API_ENTRY Server::Submission Server::submit(
    runtime::InferenceRequest request) {
  FLIGHTNN_CHECK(!request.images.empty(),
                 "serving::Server::submit: request must carry >= 1 image");
  const auto images = static_cast<std::int64_t>(request.images.size());
  const support::MutexLock lock(mutex_);
  for (;;) {
    if (stopping_) return {SubmitStatus::ShuttingDown, {}};
    // An oversized request (> max_queue_images by itself) is admitted into
    // an empty queue rather than being unsatisfiable.
    const bool fits =
        queued_images_ + images <=
            static_cast<std::int64_t>(config_.max_queue_images) ||
        queue_.empty();
    if (fits) break;
    if (!config_.block_on_full) {
      ++stats_.rejected;
      return {SubmitStatus::Overloaded, {}};
    }
    space_available_.wait(mutex_);
  }
  Pending pending;
  pending.request = std::move(request);
  pending.enqueued = std::chrono::steady_clock::now();
  Submission submission{SubmitStatus::Ok, pending.promise.get_future()};
  queue_.push_back(std::move(pending));
  queued_images_ += images;
  ++stats_.accepted;
  work_available_.notify_one();
  return submission;
}

ServerStats Server::stats() const {
  const support::MutexLock lock(mutex_);
  return stats_;
}

void Server::batcher_loop() {
  // The batcher thread participates in its own parallel_for when executing
  // batches, so it needs the plan warmup too (the ctor warmed its own
  // thread and the pool workers, not this one).
  runner_->warm(static_cast<std::size_t>(config_.max_batch));
  std::vector<Pending> batch;
  support::MutexLock lock(mutex_);
  for (;;) {
    if (queue_.empty()) {
      if (stopping_) break;  // drained; graceful exit
      work_available_.wait(mutex_);
      continue;
    }
    // Flush on max-batch-OR-deadline. During shutdown everything still
    // queued flushes immediately (in max_batch-sized chunks).
    const auto deadline = queue_.front().enqueued + max_delay_;
    if (queued_images_ < config_.max_batch && !stopping_ &&
        std::chrono::steady_clock::now() < deadline) {
      // Woken early by new arrivals (possibly completing a full batch), by
      // shutdown, or spuriously; the loop re-evaluates either way.
      work_available_.wait_until(mutex_, deadline);
      continue;
    }
    // Take whole requests while the fused batch stays within max_batch;
    // always at least one so an oversized request still runs (alone).
    batch.clear();
    std::int64_t fused_images = 0;
    while (!queue_.empty()) {
      const auto next =
          static_cast<std::int64_t>(queue_.front().request.images.size());
      if (!batch.empty() && fused_images + next > config_.max_batch) break;
      fused_images += next;
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    queued_images_ -= fused_images;
    space_available_.notify_all();
    lock.unlock();
    execute_batch(batch);
    lock.lock();
    ++stats_.batches;
    stats_.completed += static_cast<std::int64_t>(batch.size());
    auto& histogram = stats_.batch_size_histogram;
    if (static_cast<std::int64_t>(histogram.size()) <= fused_images) {
      histogram.resize(static_cast<std::size_t>(fused_images) + 1, 0);
    }
    ++histogram[static_cast<std::size_t>(fused_images)];
  }
}

FLIGHTNN_HOT void Server::execute_batch(std::vector<Pending>& batch) {
  const auto dispatched = std::chrono::steady_clock::now();
  fused_.images.clear();
  for (auto& pending : batch) {
    for (auto& image : pending.request.images) {
      // FLIGHTNN_LINT_SUPPRESS(hot-no-alloc): grow-once; fused_ is reused across flushes (DESIGN.md §9)
      fused_.images.push_back(std::move(image));
    }
  }
  const auto fused_images = static_cast<std::int64_t>(fused_.images.size());

  try {
    runner_->run(fused_, fused_result_, &per_image_counts_);
  } catch (...) {
    const auto error = std::current_exception();
    for (auto& pending : batch) pending.promise.set_exception(error);
    return;
  }

  // Hand each request its slice of the fused results. queue_seconds is the
  // measured admission-to-dispatch wait; compute_seconds and batch_size
  // describe the fused forward pass the request rode in.
  std::size_t offset = 0;
  for (auto& pending : batch) {
    const std::size_t count = pending.request.images.size();
    runtime::InferenceResult result;
    result.id = pending.request.id;
    // Per-request result storage is handed to the client through the future,
    // so it cannot be recycled batcher-side; these are the only steady-state
    // allocations on the serving path and they are bounded per request
    // (asserted by tests/arena_allocation_test's serving case).
    // FLIGHTNN_LINT_SUPPRESS(hot-no-alloc): result ownership transfers to the client via the future
    result.logits.reserve(count);
    // FLIGHTNN_LINT_SUPPRESS(hot-no-alloc): result ownership transfers to the client via the future
    result.argmax.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      // FLIGHTNN_LINT_SUPPRESS(hot-no-alloc): within the reserve above; never reallocates
      result.logits.push_back(std::move(fused_result_.logits[offset + i]));
      // FLIGHTNN_LINT_SUPPRESS(hot-no-alloc): within the reserve above; never reallocates
      result.argmax.push_back(fused_result_.argmax[offset + i]);
      result.counts.shifts += per_image_counts_[offset + i].shifts;
      result.counts.adds += per_image_counts_[offset + i].adds;
      result.counts.float_macs += per_image_counts_[offset + i].float_macs;
      result.counts.images += per_image_counts_[offset + i].images;
    }
    result.timing.queue_seconds =
        std::chrono::duration<double>(dispatched - pending.enqueued).count();
    result.timing.compute_seconds = fused_result_.timing.compute_seconds;
    result.timing.batch_size = fused_images;
    offset += count;
    pending.promise.set_value(std::move(result));
  }
}

}  // namespace flightnn::serving
