#pragma once

// Traffic-shaped serving front-end for the batched inference runtime: many
// concurrent clients each submit small InferenceRequests (1-4 images in
// production shapes); a dedicated batcher thread fuses them into dynamic
// batches that the BatchRunner executes on the shared thread pool. This is
// the deployment layer the FLightNN paper's "fast inference" pitch implies:
// kernel speedups only matter to users through the latency/throughput curve
// this layer (and bench/serving_load) makes measurable.
//
// Mechanics (DESIGN.md §11):
//   - submit() enqueues the request into a bounded MPMC queue and returns a
//     std::future<InferenceResult> the caller redeems whenever it likes.
//   - The batcher thread flushes on max-batch-size-OR-deadline: as soon as
//     `max_batch` images are pending, or when the oldest queued request has
//     waited `max_queue_delay_s` (the latency SLO knob), whichever first.
//     Requests are never split: a flush takes whole requests while the
//     fused batch stays within max_batch (always at least one request, so
//     a request larger than max_batch still runs, alone).
//   - Admission control: when the queue already holds `max_queue_images`
//     images, submit() either rejects with SubmitStatus::Overloaded
//     (default; the caller sheds load) or, with `block_on_full`, blocks
//     until the batcher drains space (caller-side backpressure).
//   - Shutdown is graceful: every accepted request's future is fulfilled
//     before the batcher exits; submissions racing shutdown get a typed
//     ShuttingDown status, never a broken promise.
//
// Determinism: the batcher only changes which forward passes share a
// parallel_for; per-image logits are bit-identical to a direct
// BatchRunner::run of the same image (asserted by tests/serving_test).

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/batch_runner.hpp"
#include "runtime/inference_request.hpp"
#include "support/annotated_mutex.hpp"

namespace flightnn::serving {

enum class SubmitStatus {
  Ok,            // accepted; the Submission carries a valid future
  Overloaded,    // bounded queue full and block_on_full is off
  ShuttingDown,  // shutdown() already initiated; request not accepted
};

[[nodiscard]] const char* to_string(SubmitStatus status);

struct ServerConfig {
  // Flush as soon as this many images are pending (the throughput knob).
  int max_batch = 8;
  // Flush when the oldest queued request has waited this long, even if the
  // batch is not full (the latency-SLO knob).
  double max_queue_delay_s = 0.002;
  // Admission bound: maximum images queued (not yet dispatched) before
  // submit() rejects or blocks.
  std::size_t max_queue_images = 64;
  // Overload behavior: false = reject with Overloaded (open-loop shedding),
  // true = block the submitting caller until space frees (backpressure).
  bool block_on_full = false;
};

struct ServerStats {
  std::int64_t accepted = 0;   // requests admitted
  std::int64_t rejected = 0;   // requests refused with Overloaded
  std::int64_t completed = 0;  // requests whose future was fulfilled
  std::int64_t batches = 0;    // dynamic batches executed
  // batch_size_histogram[k] = number of executed batches fusing exactly k
  // images (index 0 unused). Sized to the largest batch seen.
  std::vector<std::int64_t> batch_size_histogram;
};

class Server {
 public:
  struct Submission {
    SubmitStatus status = SubmitStatus::Ok;
    // Valid only when status == Ok. Redeem with .get(); the result carries
    // per-request queue/compute timing and the fused batch size it rode in.
    std::future<runtime::InferenceResult> result;
  };

  // The runner (and the network behind it) must outlive the server.
  explicit Server(const runtime::BatchRunner& runner, ServerConfig config = {});
  ~Server();  // graceful: drains all accepted work, then joins the batcher
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Thread-safe; callable from any number of client threads concurrently.
  // The request must carry at least one image.
  [[nodiscard]] Submission submit(runtime::InferenceRequest request)
      FLIGHTNN_EXCLUDES(mutex_);

  // Stop accepting new work, flush everything already accepted, join the
  // batcher thread. Idempotent and safe to call concurrently.
  void shutdown() FLIGHTNN_EXCLUDES(mutex_);

  [[nodiscard]] ServerStats stats() const FLIGHTNN_EXCLUDES(mutex_);
  [[nodiscard]] const ServerConfig& config() const { return config_; }

 private:
  struct Pending {
    runtime::InferenceRequest request;
    std::promise<runtime::InferenceResult> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void batcher_loop() FLIGHTNN_EXCLUDES(mutex_);
  // Fuse `batch` into one BatchRunner request, execute it, and fulfill
  // every promise with its slice of the results. Runs without the lock.
  void execute_batch(std::vector<Pending>& batch) FLIGHTNN_EXCLUDES(mutex_);

  const runtime::BatchRunner* runner_;
  ServerConfig config_;
  std::chrono::steady_clock::duration max_delay_;

  mutable support::Mutex mutex_;
  support::CondVar work_available_;   // batcher waits here
  support::CondVar space_available_;  // blocking submitters wait here
  std::deque<Pending> queue_ FLIGHTNN_GUARDED_BY(mutex_);
  std::int64_t queued_images_ FLIGHTNN_GUARDED_BY(mutex_) = 0;
  bool stopping_ FLIGHTNN_GUARDED_BY(mutex_) = false;
  ServerStats stats_ FLIGHTNN_GUARDED_BY(mutex_);

  // Batcher-thread scratch, reused across flushes (see DESIGN.md §9).
  runtime::InferenceRequest fused_;
  runtime::InferenceResult fused_result_;
  std::vector<inference::NetworkOpCounts> per_image_counts_;

  std::once_flag shutdown_once_;
  std::thread batcher_;  // last member: starts after everything above exists
};

}  // namespace flightnn::serving
