#include "hw/fpga_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace flightnn::hw {

namespace {
constexpr std::int64_t kBram18Bits = 18 * 1024;
// Pipeline fill penalty in image-equivalents: the cost a small batch pays.
constexpr double kPipelineFill = 32.0;
// Per-filter k tag bits FLightNN stores alongside the shift terms.
constexpr double kFilterTagBits = 2.0;
}  // namespace

FpgaModel::FpgaModel(FpgaResources resources, PeCosts costs)
    : resources_(resources), costs_(costs) {}

FpgaReport FpgaModel::evaluate(const LayerCost& layer,
                               const QuantSpec& spec) const {
  FpgaReport report;

  // --- Per-PE cost by arithmetic style -----------------------------------
  std::int64_t pe_dsp = 0, pe_lut = 0, pe_ff = 0;
  switch (spec.kind) {
    case ArithKind::kFloat32:
      pe_dsp = costs_.fp32_dsp;
      pe_lut = costs_.fp32_lut;
      pe_ff = costs_.fp32_ff;
      break;
    case ArithKind::kFixedPoint:
      pe_dsp = costs_.fxp_dsp;
      pe_lut = costs_.fxp_lut;
      pe_ff = costs_.fxp_ff;
      break;
    case ArithKind::kShiftAdd:
      pe_dsp = costs_.shift_dsp;
      pe_lut = costs_.shift_lut;
      pe_ff = costs_.shift_ff;
      break;
  }

  const auto cap = [&](std::int64_t amount) {
    return static_cast<std::int64_t>(
        std::floor(static_cast<double>(amount) * resources_.utilization_cap));
  };

  // --- Parallel unit count: tightest of DSP / LUT / FF -------------------
  std::int64_t pe_count = std::numeric_limits<std::int64_t>::max();
  report.compute_bound = "none";
  const auto consider = [&](std::int64_t avail, std::int64_t base,
                            std::int64_t per_pe, const char* label) {
    if (per_pe <= 0) return;
    const std::int64_t limit = std::max<std::int64_t>(0, cap(avail) - base) / per_pe;
    if (limit < pe_count) {
      pe_count = limit;
      report.compute_bound = label;
    }
  };
  consider(resources_.dsp, costs_.base_dsp, pe_dsp, "DSP");
  consider(resources_.lut, costs_.base_lut, pe_lut, "LUT");
  consider(resources_.ff, costs_.base_ff, pe_ff, "FF");
  if (pe_count < 1) {
    throw std::logic_error("FpgaModel: layer does not fit (no PE budget)");
  }
  // No point instantiating more PEs than output-pixel parallelism allows.
  pe_count = std::min(pe_count, layer.macs());
  report.pe_count = pe_count;

  // --- BRAM budget: weights first, then the largest batch that fits ------
  const double weight_bits_per_value =
      spec.kind == ArithKind::kShiftAdd
          ? spec.mean_k * spec.weight_bits +
                kFilterTagBits / std::max<double>(1.0, static_cast<double>(
                                                           layer.weight_count() /
                                                           layer.out_channels))
          : static_cast<double>(spec.weight_bits);
  const double weight_bits_total =
      static_cast<double>(layer.weight_count()) * weight_bits_per_value;
  const double act_bits_per_image =
      static_cast<double>(layer.activation_count()) * spec.act_bits;
  const double bram_bits = static_cast<double>(cap(resources_.bram18)) * kBram18Bits;

  std::int64_t batch = 1;
  if (weight_bits_total + act_bits_per_image > bram_bits) {
    report.bram_bound = true;  // even batch 1 streams; keep batch = 1
  } else {
    batch = static_cast<std::int64_t>(
        std::floor((bram_bits - weight_bits_total) / act_bits_per_image));
    batch = std::clamp<std::int64_t>(batch, 1, 1024);
    report.bram_bound = batch < 1024;
  }
  report.batch = batch;

  // --- Throughput ---------------------------------------------------------
  const double ops_per_image =
      static_cast<double>(layer.macs()) *
      (spec.kind == ArithKind::kShiftAdd ? spec.mean_k : 1.0);
  const double utilization =
      static_cast<double>(batch) / (static_cast<double>(batch) + kPipelineFill);
  report.throughput = resources_.freq_mhz * 1e6 *
                      static_cast<double>(pe_count) * utilization / ops_per_image;

  // --- Resource usage (Table 6 columns) -----------------------------------
  const double used_bits =
      weight_bits_total + static_cast<double>(batch) * act_bits_per_image;
  report.bram_used = std::min<std::int64_t>(
      resources_.bram18,
      static_cast<std::int64_t>(std::ceil(used_bits / kBram18Bits)));
  report.dsp_used = costs_.base_dsp + pe_count * pe_dsp;
  report.lut_used = costs_.base_lut + pe_count * pe_lut;
  report.ff_used = costs_.base_ff + pe_count * pe_ff;
  return report;
}

double network_throughput(const FpgaModel& fpga,
                          const std::vector<LayerCost>& layers,
                          const QuantSpec& spec) {
  if (layers.empty()) {
    throw std::invalid_argument("network_throughput: no layers");
  }
  double seconds_per_image = 0.0;
  for (const auto& layer : layers) {
    seconds_per_image += 1.0 / fpga.evaluate(layer, spec).throughput;
  }
  return 1.0 / seconds_per_image;
}

}  // namespace flightnn::hw
