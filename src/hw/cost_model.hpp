#pragma once

// Layer op census and the quantization-style descriptor shared by the FPGA
// and ASIC models. Following the paper's methodology (Sec. 5.2/5.3), the
// hardware models cost the *largest convolutional layer* of each network --
// convolutions take over 90% of CNN compute, so the largest layer determines
// who wins and by how much.

#include <string>
#include <vector>

#include "nn/sequential.hpp"
#include "tensor/shape.hpp"

namespace flightnn::hw {

// One convolution layer's compute geometry.
struct LayerCost {
  std::int64_t out_channels = 0;
  std::int64_t in_channels = 0;
  std::int64_t kernel = 0;
  std::int64_t out_h = 0;
  std::int64_t out_w = 0;
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;

  // Multiply-accumulates per image.
  [[nodiscard]] std::int64_t macs() const {
    return out_channels * out_h * out_w * in_channels * kernel * kernel;
  }
  [[nodiscard]] std::int64_t weight_count() const {
    return out_channels * in_channels * kernel * kernel;
  }
  // Input + output activations per image.
  [[nodiscard]] std::int64_t activation_count() const {
    return in_channels * in_h * in_w + out_channels * out_h * out_w;
  }
};

// Trace every Conv2d in the model by running a single dummy image through
// it (eval mode); geometry comes from the convolutions' recorded shapes.
std::vector<LayerCost> trace_conv_costs(nn::Sequential& model,
                                        const tensor::Shape& input_shape);

// The layer with the most MACs (the FPGA/ASIC implementation target).
LayerCost largest_layer(nn::Sequential& model, const tensor::Shape& input_shape);

// Which arithmetic style a model variant uses.
enum class ArithKind {
  kFloat32,     // "Full"
  kFixedPoint,  // "FP xW yA": integer multiplier
  kShiftAdd,    // LightNN-k / FLightNN: barrel shift + add
};

// Quantization descriptor of a model variant, as consumed by the hardware
// models and the storage accounting.
struct QuantSpec {
  ArithKind kind = ArithKind::kFloat32;
  int weight_bits = 32;  // per shift term for kShiftAdd (4 = sign + 3-bit exp)
  int act_bits = 32;
  // Shift terms per weight: k for LightNN-k, the per-layer mean k_i for
  // FLightNN (fractional), unused for other kinds.
  double mean_k = 1.0;

  [[nodiscard]] std::string label() const;

  // Paper model shorthands.
  static QuantSpec full();
  static QuantSpec fixed_point(int weight_bits = 4, int act_bits = 8);
  static QuantSpec lightnn(int k, int act_bits = 8);
  static QuantSpec flightnn(double mean_k, int act_bits = 8);
};

}  // namespace flightnn::hw
