#pragma once

// ASIC computational-energy model: the stand-in for the paper's 65 nm
// Design Compiler + PrimeTime flow (Sec. 5.3). Energy of one layer =
// op census x per-operation energy. The per-op constants are 65 nm-class
// values in the spirit of published energy tables (Horowitz, ISSCC'14),
// chosen so that the paper's orderings -- and, for the shift-based models,
// roughly its absolute microjoule ranges -- are reproduced:
//
//   per-MAC energy: L-1 (1 shift + 1 add)   <  FP4W8A (4x8 mult + add)
//                   <  L-2 (2 shifts + 2 adds)  <<  Full (fp32 mult + add)
//
// FLightNN sits between L-1 and L-2 in proportion to its mean k.

#include "hw/cost_model.hpp"

namespace flightnn::hw {

struct AsicEnergyConstants {
  // Energies in picojoules per operation, 65 nm-class.
  double shift_pj = 0.012;        // 8-bit barrel shifter
  double int_add_pj_per_bit = 0.0016;  // ripple-carry-class adder, per bit
  double int_mult_pj_per_bit2 = 0.00065;  // array multiplier, per (bit x bit)
  double fp32_mult_pj = 3.7;
  double fp32_add_pj = 0.9;
  // Accumulator width for integer datapaths (the adds in a MAC tree).
  int accumulator_bits = 16;

  // Cell areas in um^2, 65 nm-class (the paper's Sec. 2 claim that shifts
  // are more area-efficient than multipliers).
  double shift_um2 = 320.0;            // 8-bit barrel shifter
  double int_add_um2_per_bit = 18.0;   // adder, per bit
  double int_mult_um2_per_bit2 = 28.0; // array multiplier, per (bit x bit)
  double fp32_mult_um2 = 30000.0;
  double fp32_add_um2 = 12000.0;
};

class AsicModel {
 public:
  explicit AsicModel(AsicEnergyConstants constants = {});

  // Energy of one multiply(-equivalent) + accumulate under a quantization
  // style, in picojoules.
  [[nodiscard]] double mac_energy_pj(const QuantSpec& spec) const;

  // Computational energy of one layer for one image, in microjoules
  // (Fig. 5's unit).
  [[nodiscard]] double layer_energy_uj(const LayerCost& layer,
                                       const QuantSpec& spec) const;

  // Silicon area of one multiply(-equivalent)-accumulate datapath, in um^2.
  // For shift-add styles the datapath is sized for ceil(mean_k) pipelined
  // terms (a fractional mean k still needs the k_max-deep unit; the energy
  // model, not the area model, is where fractional k pays off).
  [[nodiscard]] double mac_area_um2(const QuantSpec& spec) const;

  [[nodiscard]] const AsicEnergyConstants& constants() const { return constants_; }

 private:
  AsicEnergyConstants constants_;
};

}  // namespace flightnn::hw
