#pragma once

// FPGA throughput and resource model: the stand-in for the paper's Vivado
// HLS implementation on the Xilinx Zynq ZC706 (Sec. 5.2, Table 6). The model
// implements the paper's resource argument directly:
//
//  * Full / fixed-point multipliers occupy scarce DSP48 slices; shift-add
//    units for (F)LightNNs occupy plentiful LUTs (DSP usage collapses to a
//    small constant for control/accumulation, as in Table 6's "4").
//  * Weights and batched activations live in BRAM; the maximum batch size is
//    whatever fits after the weights (the paper picks the largest batch that
//    does not run out of resources). Larger batches amortize the pipeline
//    fill, so smaller weight footprints buy throughput.
//  * Throughput = frequency x parallel-unit count x batch utilization /
//    ops per image, where ops per image scales with the model's mean k.

#include "hw/cost_model.hpp"

namespace flightnn::hw {

// Zynq ZC706 (XC7Z045) budget, matching Table 6's "Available" row.
struct FpgaResources {
  std::int64_t bram18 = 1090;   // 18 Kb blocks
  std::int64_t dsp = 900;
  std::int64_t ff = 437200;
  std::int64_t lut = 218600;
  double freq_mhz = 100.0;
  // Fraction of each resource the design may consume (routing headroom).
  double utilization_cap = 0.94;
};

// Per-processing-element implementation cost by arithmetic style.
struct PeCosts {
  // fp32 MAC: DSP-heavy (multiplier + adder assembled from DSP48s).
  std::int64_t fp32_dsp = 5, fp32_lut = 120, fp32_ff = 100;
  // Fixed-point (<=8x8) MAC: one DSP48 plus control fabric.
  std::int64_t fxp_dsp = 1, fxp_lut = 40, fxp_ff = 40;
  // Shift-add unit: barrel shifter + accumulator entirely in fabric. The
  // LUT cost is the calibration point of the whole model: it sets the
  // shift-vs-DSP-multiplier parallelism ratio, and 140 LUT/unit reproduces
  // the paper's L-1 ~ 1.5-2x FP4 ~ 2x L-2 ordering on the ZC706 budget.
  std::int64_t shift_dsp = 0, shift_lut = 140, shift_ff = 55;
  // Fixed overhead independent of PE count (AXI/control); gives the
  // (F)LightNN designs their small constant DSP usage, as in Table 6.
  std::int64_t base_dsp = 4, base_lut = 9000, base_ff = 2500;
};

struct FpgaReport {
  std::int64_t pe_count = 0;        // parallel arithmetic units instantiated
  std::int64_t batch = 0;           // selected batch size
  double throughput = 0.0;          // images/s for the largest layer
  // Resource usage (Table 6 columns).
  std::int64_t bram_used = 0;
  std::int64_t dsp_used = 0;
  std::int64_t ff_used = 0;
  std::int64_t lut_used = 0;
  // Which resource limited the PE count ("DSP", "LUT", "FF") and whether
  // BRAM capped the batch ("BRAM"); mirrors the bound discussion in Sec. 5.2.
  std::string compute_bound;
  bool bram_bound = false;
};

class FpgaModel {
 public:
  explicit FpgaModel(FpgaResources resources = {}, PeCosts costs = {});

  // Evaluate one layer under a quantization style.
  [[nodiscard]] FpgaReport evaluate(const LayerCost& layer,
                                    const QuantSpec& spec) const;

  [[nodiscard]] const FpgaResources& resources() const { return resources_; }

 private:
  FpgaResources resources_;
  PeCosts costs_;
};

// Whole-network throughput when layers execute serially on one reconfigured
// design per layer (the paper evaluates the largest layer only, arguing
// convolutions dominate; this extension sums all conv layers' times).
double network_throughput(const FpgaModel& fpga, const std::vector<LayerCost>& layers,
                          const QuantSpec& spec);

}  // namespace flightnn::hw
