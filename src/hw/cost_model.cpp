#include "hw/cost_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/conv2d.hpp"

namespace flightnn::hw {

std::vector<LayerCost> trace_conv_costs(nn::Sequential& model,
                                        const tensor::Shape& input_shape) {
  if (input_shape.rank() != 4 || input_shape[0] != 1) {
    throw std::invalid_argument("trace_conv_costs: expected [1, C, H, W] input");
  }
  tensor::Tensor dummy(input_shape);
  (void)model.forward(dummy, /*training=*/false);

  std::vector<LayerCost> costs;
  model.visit([&](nn::Layer& layer) {
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      const auto& g = conv->last_geometry();
      LayerCost cost;
      cost.out_channels = conv->out_channels();
      cost.in_channels = conv->in_channels();
      cost.kernel = conv->kernel();
      cost.in_h = g.in_h;
      cost.in_w = g.in_w;
      cost.out_h = g.out_h();
      cost.out_w = g.out_w();
      costs.push_back(cost);
    }
  });
  return costs;
}

LayerCost largest_layer(nn::Sequential& model, const tensor::Shape& input_shape) {
  const auto costs = trace_conv_costs(model, input_shape);
  if (costs.empty()) throw std::invalid_argument("largest_layer: no conv layers");
  return *std::max_element(costs.begin(), costs.end(),
                           [](const LayerCost& a, const LayerCost& b) {
                             return a.macs() < b.macs();
                           });
}

std::string QuantSpec::label() const {
  switch (kind) {
    case ArithKind::kFloat32:
      return "Full";
    case ArithKind::kFixedPoint:
      return "FP" + std::to_string(weight_bits) + "W" + std::to_string(act_bits) + "A";
    case ArithKind::kShiftAdd: {
      if (mean_k == static_cast<int>(mean_k)) {
        return "L-" + std::to_string(static_cast<int>(mean_k));
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "FL(k=%.2f)", mean_k);
      return buf;
    }
  }
  return "?";
}

QuantSpec QuantSpec::full() { return {ArithKind::kFloat32, 32, 32, 1.0}; }

QuantSpec QuantSpec::fixed_point(int weight_bits, int act_bits) {
  return {ArithKind::kFixedPoint, weight_bits, act_bits, 1.0};
}

QuantSpec QuantSpec::lightnn(int k, int act_bits) {
  return {ArithKind::kShiftAdd, 4, act_bits, static_cast<double>(k)};
}

QuantSpec QuantSpec::flightnn(double mean_k, int act_bits) {
  return {ArithKind::kShiftAdd, 4, act_bits, mean_k};
}

}  // namespace flightnn::hw
