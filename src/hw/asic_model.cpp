#include "hw/asic_model.hpp"

#include <cmath>
#include <stdexcept>

namespace flightnn::hw {

AsicModel::AsicModel(AsicEnergyConstants constants) : constants_(constants) {}

double AsicModel::mac_energy_pj(const QuantSpec& spec) const {
  const double add =
      constants_.int_add_pj_per_bit * constants_.accumulator_bits;
  switch (spec.kind) {
    case ArithKind::kFloat32:
      return constants_.fp32_mult_pj + constants_.fp32_add_pj;
    case ArithKind::kFixedPoint:
      return constants_.int_mult_pj_per_bit2 *
                 static_cast<double>(spec.weight_bits) * spec.act_bits +
             add;
    case ArithKind::kShiftAdd:
      // k shifts and k accumulator adds per original multiply (Fig. 3: one
      // add folds each single-shift term's partial product in).
      return spec.mean_k * (constants_.shift_pj + add);
  }
  throw std::logic_error("AsicModel::mac_energy_pj: unknown arithmetic kind");
}

double AsicModel::layer_energy_uj(const LayerCost& layer,
                                  const QuantSpec& spec) const {
  const double pj = static_cast<double>(layer.macs()) * mac_energy_pj(spec);
  return pj * 1e-6;  // pJ -> uJ
}

double AsicModel::mac_area_um2(const QuantSpec& spec) const {
  const double add = constants_.int_add_um2_per_bit * constants_.accumulator_bits;
  switch (spec.kind) {
    case ArithKind::kFloat32:
      return constants_.fp32_mult_um2 + constants_.fp32_add_um2;
    case ArithKind::kFixedPoint:
      return constants_.int_mult_um2_per_bit2 *
                 static_cast<double>(spec.weight_bits) * spec.act_bits +
             add;
    case ArithKind::kShiftAdd: {
      const double depth = std::ceil(spec.mean_k);
      return depth * (constants_.shift_um2 + add);
    }
  }
  throw std::logic_error("AsicModel::mac_area_um2: unknown arithmetic kind");
}

}  // namespace flightnn::hw
