#pragma once

// Shared little-endian byte-stream helpers for the serialization formats
// (checkpoints, deployment packs, deployment artifacts). One hardened
// reader/writer pair instead of per-format copies: the reader's bounds
// arithmetic is overflow-proof (a hostile length near SIZE_MAX cannot wrap
// past the end), and every format's length fields are clamped against
// remaining() before any allocation, so a kilobyte file can never request a
// multi-gigabyte vector.

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace flightnn::serialize {

class ByteWriter {
 public:
  void bytes(const void* data, std::size_t count) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + count);
  }
  void u32(std::uint32_t value) { bytes(&value, sizeof(value)); }
  void u64(std::uint64_t value) { bytes(&value, sizeof(value)); }
  void i64(std::int64_t value) { bytes(&value, sizeof(value)); }
  void f32(float value) { bytes(&value, sizeof(value)); }
  void floats(const float* data, std::int64_t count) {
    bytes(data, static_cast<std::size_t>(count) * sizeof(float));
  }
  // Zero-pad until the next multiple of `alignment` (a power of two).
  void align_to(std::size_t alignment) {
    while (buffer_.size() % alignment != 0) buffer_.push_back(0);
  }
  void reserve(std::size_t capacity) { buffer_.reserve(capacity); }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& buffer)
      : ByteReader(buffer.data(), buffer.size()) {}

  void bytes(void* out, std::size_t count) {
    // Overflow-proof form of `cursor_ + count > size_`: a hostile length
    // near SIZE_MAX must not wrap the sum and slip past the bound.
    if (count > size_ - cursor_) {
      throw std::runtime_error("serialize: truncated buffer");
    }
    std::memcpy(out, data_ + cursor_, count);
    cursor_ += count;
  }
  std::uint32_t u32() {
    std::uint32_t value = 0;
    bytes(&value, sizeof(value));
    return value;
  }
  std::uint64_t u64() {
    std::uint64_t value = 0;
    bytes(&value, sizeof(value));
    return value;
  }
  std::int64_t i64() {
    std::int64_t value = 0;
    bytes(&value, sizeof(value));
    return value;
  }
  float f32() {
    float value = 0;
    bytes(&value, sizeof(value));
    return value;
  }
  void floats(float* out, std::int64_t count) {
    bytes(out, static_cast<std::size_t>(count) * sizeof(float));
  }
  [[nodiscard]] bool exhausted() const { return cursor_ == size_; }
  // Bytes left to read. Length fields parsed from the buffer are clamped
  // against this before any resize: a count can never describe more payload
  // than the buffer still holds.
  [[nodiscard]] std::size_t remaining() const { return size_ - cursor_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t cursor_ = 0;
};

}  // namespace flightnn::serialize
