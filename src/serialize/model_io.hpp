#pragma once

// Model persistence, two formats:
//
//  1. Checkpoints (`save_state` / `load_state`): every trainable parameter,
//     batch-norm running statistics, and FLightNN thresholds, written in
//     layer-traversal order. The architecture itself is code (the builders
//     in models/), so a checkpoint restores state into a freshly built
//     model of the same shape -- mismatches are detected and rejected.
//
//  2. Deployment packs (`pack_quantized` / `unpack_quantized`): the
//     quantized weights of every quantizable layer decomposed into shift
//     terms and nibble-packed at 4 bits per term (1 sign + 3 exponent bits)
//     with a 2-bit k tag per filter -- the bit-for-bit realization of the
//     storage numbers in the paper's tables. Unpacking reconstructs the
//     quantized weight tensors exactly.

#include <cstdint>
#include <string>
#include <vector>

#include "nn/sequential.hpp"
#include "quant/pow2.hpp"

namespace flightnn::serialize {

// --- Checkpoints ---------------------------------------------------------------

// Serialize model state to a buffer / file. Includes parameters, batch-norm
// running stats and FLightNN thresholds.
std::vector<std::uint8_t> save_state(nn::Sequential& model);
void save_state(nn::Sequential& model, const std::string& path);

// Restore state saved by save_state into a structurally identical model.
// Throws std::runtime_error on magic/shape mismatch.
void load_state(nn::Sequential& model, const std::vector<std::uint8_t>& buffer);
void load_state(nn::Sequential& model, const std::string& path);

// --- Deployment packs ----------------------------------------------------------

// One quantizable layer's packed shift-term representation.
struct PackedLayer {
  std::int64_t filters = 0;
  std::int64_t elements_per_filter = 0;
  std::vector<std::uint8_t> filter_k;  // 2 bits would do; stored as bytes here,
                                       // counted as 2 bits in packed_bits()
  // Nibble stream: for each filter, k_i levels x elements_per_filter terms,
  // each 4 bits (sign bit + 3-bit exponent offset from e_min; 0xF = zero).
  std::vector<std::uint8_t> nibbles;   // two terms per byte

  [[nodiscard]] std::int64_t term_count() const;
  // Exact deployment size in bits (4 bits/term + 2-bit k tags).
  [[nodiscard]] std::int64_t packed_bits() const;
};

struct PackedModel {
  quant::Pow2Config pow2;
  int k_max = 2;
  std::vector<PackedLayer> layers;

  [[nodiscard]] double total_bytes() const;
};

// Pack every quantizable layer's *quantized* weights (through the installed
// transforms). Throws if a layer's quantized weights are not sums of at
// most k_max powers of two under its transform's encoding.
PackedModel pack_quantized(nn::Sequential& model);

// Reconstruct the quantized weight tensor of one packed layer.
tensor::Tensor unpack_layer(const PackedLayer& layer, const quant::Pow2Config& pow2,
                            const tensor::Shape& shape);

// Serialize / parse a PackedModel (for writing deployment artifacts).
std::vector<std::uint8_t> serialize_packed(const PackedModel& model);
PackedModel parse_packed(const std::vector<std::uint8_t>& buffer);

}  // namespace flightnn::serialize
