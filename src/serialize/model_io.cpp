#include "serialize/model_io.hpp"

#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "core/decompose.hpp"
#include "core/flightnn_transform.hpp"
#include "core/quantize_model.hpp"
#include "nn/batchnorm.hpp"
#include "quant/lightnn.hpp"
#include "serialize/wire.hpp"

namespace flightnn::serialize {

namespace {

constexpr char kCheckpointMagic[] = "FLNNCKPT1";
constexpr char kPackMagic[] = "FLNNPACK1";

// Hardened byte-stream helpers shared with the artifact format (wire.hpp).
using Writer = ByteWriter;
using Reader = ByteReader;

void write_tensor(Writer& writer, const tensor::Tensor& t) {
  writer.u32(static_cast<std::uint32_t>(t.shape().rank()));
  for (std::size_t axis = 0; axis < t.shape().rank(); ++axis) {
    writer.i64(t.shape()[axis]);
  }
  writer.floats(t.data(), t.numel());
}

void read_tensor_into(Reader& reader, tensor::Tensor& t, const char* what) {
  const std::uint32_t rank = reader.u32();
  // Each dim costs 8 bytes of payload; bound the rank by what the buffer
  // can actually hold before sizing the dims vector (a hostile rank of
  // 2^32-1 would otherwise request a 32 GiB allocation up front).
  if (rank > reader.remaining() / sizeof(std::int64_t)) {
    throw std::runtime_error(std::string("serialize: rank exceeds buffer for ") +
                             what);
  }
  std::vector<std::int64_t> dims(rank);
  for (auto& d : dims) d = reader.i64();
  if (tensor::Shape(dims) != t.shape()) {
    throw std::runtime_error(std::string("serialize: shape mismatch for ") + what);
  }
  reader.floats(t.data(), t.numel());
}

// Batch-norm layers in deterministic traversal order.
std::vector<nn::BatchNorm2d*> batchnorm_layers(nn::Sequential& model) {
  std::vector<nn::BatchNorm2d*> layers;
  model.visit([&](nn::Layer& layer) {
    if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&layer)) layers.push_back(bn);
  });
  return layers;
}

std::vector<core::FLightNNTransform*> flightnn_transforms(nn::Sequential& model) {
  std::vector<core::FLightNNTransform*> transforms;
  for (auto* transform : model.transforms()) {
    if (auto* fl = dynamic_cast<core::FLightNNTransform*>(transform)) {
      transforms.push_back(fl);
    }
  }
  return transforms;
}

}  // namespace

// --- Checkpoints -----------------------------------------------------------------

std::vector<std::uint8_t> save_state(nn::Sequential& model) {
  Writer writer;
  writer.bytes(kCheckpointMagic, sizeof(kCheckpointMagic));

  const auto params = model.parameters();
  writer.u32(static_cast<std::uint32_t>(params.size()));
  for (auto* param : params) write_tensor(writer, param->value);

  const auto bns = batchnorm_layers(model);
  writer.u32(static_cast<std::uint32_t>(bns.size()));
  for (auto* bn : bns) {
    write_tensor(writer, bn->running_mean());
    write_tensor(writer, bn->running_var());
  }

  const auto transforms = flightnn_transforms(model);
  writer.u32(static_cast<std::uint32_t>(transforms.size()));
  for (auto* transform : transforms) {
    const auto& thresholds = transform->thresholds();
    writer.u32(static_cast<std::uint32_t>(thresholds.size()));
    for (float t : thresholds) writer.f32(t);
  }
  return writer.take();
}

void save_state(nn::Sequential& model, const std::string& path) {
  const auto buffer = save_state(model);
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("save_state: cannot open " + path);
  file.write(reinterpret_cast<const char*>(buffer.data()),
             static_cast<std::streamsize>(buffer.size()));
  if (!file) throw std::runtime_error("save_state: write failed for " + path);
}

void load_state(nn::Sequential& model, const std::vector<std::uint8_t>& buffer) {
  Reader reader(buffer);
  char magic[sizeof(kCheckpointMagic)] = {};
  reader.bytes(magic, sizeof(magic));
  if (std::memcmp(magic, kCheckpointMagic, sizeof(magic)) != 0) {
    throw std::runtime_error("load_state: bad magic");
  }

  const auto params = model.parameters();
  if (reader.u32() != params.size()) {
    throw std::runtime_error("load_state: parameter count mismatch");
  }
  for (auto* param : params) read_tensor_into(reader, param->value, param->name.c_str());

  const auto bns = batchnorm_layers(model);
  if (reader.u32() != bns.size()) {
    throw std::runtime_error("load_state: batch-norm count mismatch");
  }
  for (auto* bn : bns) {
    // running stats are exposed const; cast through the accessors' storage.
    read_tensor_into(reader, const_cast<tensor::Tensor&>(bn->running_mean()),
                     "bn.running_mean");
    read_tensor_into(reader, const_cast<tensor::Tensor&>(bn->running_var()),
                     "bn.running_var");
  }

  const auto transforms = flightnn_transforms(model);
  if (reader.u32() != transforms.size()) {
    throw std::runtime_error("load_state: transform count mismatch");
  }
  for (auto* transform : transforms) {
    const std::uint32_t count = reader.u32();
    if (count > reader.remaining() / sizeof(float)) {
      throw std::runtime_error("load_state: threshold count exceeds buffer");
    }
    std::vector<float> thresholds(count);
    for (auto& t : thresholds) t = reader.f32();
    transform->set_thresholds(std::move(thresholds));
  }
  if (!reader.exhausted()) {
    throw std::runtime_error("load_state: trailing bytes");
  }
}

void load_state(nn::Sequential& model, const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("load_state: cannot open " + path);
  std::vector<std::uint8_t> buffer(
      (std::istreambuf_iterator<char>(file)), std::istreambuf_iterator<char>());
  load_state(model, buffer);
}

// --- Deployment packs -------------------------------------------------------------

namespace {

// Nibble code: 0 = zero term; otherwise bit3 = sign (1 = negative) and
// bits 0..2 = (exponent - e_min + 1) in [1, 7].
std::uint8_t encode_term(const quant::Pow2Term& term, const quant::Pow2Config& pow2) {
  if (term.sign == 0) return 0;
  const int offset = term.exponent - pow2.e_min + 1;
  if (offset < 1 || offset > 7) {
    throw std::invalid_argument("pack: exponent out of the 3-bit range");
  }
  return static_cast<std::uint8_t>(((term.sign < 0 ? 1 : 0) << 3) | offset);
}

quant::Pow2Term decode_term(std::uint8_t code, const quant::Pow2Config& pow2) {
  quant::Pow2Term term;
  if (code == 0) return term;
  term.sign = (code & 0x8) != 0 ? -1 : 1;
  const int exponent = pow2.e_min + (code & 0x7) - 1;
  // The 3-bit offset can name exponents up to e_min + 6, which a hostile
  // pack can push past the config's own e_max (encode_term never emits
  // those); reject instead of materializing an out-of-budget weight.
  if (exponent > pow2.e_max) {
    throw std::invalid_argument("unpack_layer: exponent code above e_max");
  }
  term.exponent = static_cast<std::int8_t>(exponent);
  return term;
}

}  // namespace

std::int64_t PackedLayer::term_count() const {
  std::int64_t count = 0;
  for (std::uint8_t k : filter_k) count += k;
  return count * elements_per_filter;
}

std::int64_t PackedLayer::packed_bits() const {
  return term_count() * 4 + static_cast<std::int64_t>(filter_k.size()) * 2;
}

double PackedModel::total_bytes() const {
  std::int64_t bits = 0;
  for (const auto& layer : layers) bits += layer.packed_bits();
  return static_cast<double>(bits) / 8.0;
}

PackedModel pack_quantized(nn::Sequential& model) {
  PackedModel packed;
  bool config_set = false;
  for (const auto& entry : core::quantizable_layers(model)) {
    int k_max = 0;
    quant::Pow2Config pow2;
    if (auto* lightnn = dynamic_cast<quant::LightNNTransform*>(entry.transform)) {
      k_max = lightnn->k();
      pow2 = lightnn->config();
    } else if (auto* fl =
                   dynamic_cast<core::FLightNNTransform*>(entry.transform)) {
      k_max = fl->config().k_max;
      pow2 = fl->config().pow2;
    } else {
      throw std::invalid_argument(
          "pack_quantized: layer has no shift-coded transform");
    }
    if (!config_set) {
      packed.pow2 = pow2;
      packed.k_max = k_max;
      config_set = true;
    }
    packed.k_max = std::max(packed.k_max, k_max);

    const tensor::Tensor wq = entry.transform->forward(entry.weight->value);
    const auto decomposition = core::decompose_to_lightnn1(wq, k_max, pow2);

    PackedLayer layer;
    layer.filters = wq.shape()[0];
    layer.elements_per_filter = decomposition.elements_per_filter;
    layer.filter_k.assign(decomposition.filter_k.begin(),
                          decomposition.filter_k.end());

    std::vector<std::uint8_t> codes;
    codes.reserve(static_cast<std::size_t>(decomposition.term_count() *
                                           layer.elements_per_filter));
    for (const auto& term : decomposition.terms) {
      for (const auto& element : term.elements) {
        codes.push_back(encode_term(element, pow2));
      }
    }
    layer.nibbles.resize((codes.size() + 1) / 2, 0);
    for (std::size_t i = 0; i < codes.size(); ++i) {
      layer.nibbles[i / 2] |= static_cast<std::uint8_t>(
          codes[i] << ((i % 2) * 4));
    }
    packed.layers.push_back(std::move(layer));
  }
  return packed;
}

tensor::Tensor unpack_layer(const PackedLayer& layer, const quant::Pow2Config& pow2,
                            const tensor::Shape& shape) {
  if (shape.numel() != layer.filters * layer.elements_per_filter) {
    throw std::invalid_argument("unpack_layer: shape mismatch");
  }
  tensor::Tensor out(shape);
  std::size_t code_index = 0;
  auto next_code = [&]() {
    const std::uint8_t byte = layer.nibbles[code_index / 2];
    const std::uint8_t code =
        static_cast<std::uint8_t>((byte >> ((code_index % 2) * 4)) & 0xF);
    ++code_index;
    return code;
  };
  for (std::int64_t filter = 0; filter < layer.filters; ++filter) {
    const int k = layer.filter_k[static_cast<std::size_t>(filter)];
    float* base = out.data() + filter * layer.elements_per_filter;
    for (int level = 0; level < k; ++level) {
      for (std::int64_t e = 0; e < layer.elements_per_filter; ++e) {
        base[e] += decode_term(next_code(), pow2).value();
      }
    }
  }
  return out;
}

std::vector<std::uint8_t> serialize_packed(const PackedModel& model) {
  Writer writer;
  writer.bytes(kPackMagic, sizeof(kPackMagic));
  writer.u32(static_cast<std::uint32_t>(model.pow2.e_min + 128));
  writer.u32(static_cast<std::uint32_t>(model.pow2.e_max + 128));
  writer.u32(model.pow2.flush_to_zero ? 1 : 0);
  writer.u32(static_cast<std::uint32_t>(model.k_max));
  writer.u32(static_cast<std::uint32_t>(model.layers.size()));
  for (const auto& layer : model.layers) {
    writer.i64(layer.filters);
    writer.i64(layer.elements_per_filter);
    writer.bytes(layer.filter_k.data(), layer.filter_k.size());
    writer.i64(static_cast<std::int64_t>(layer.nibbles.size()));
    writer.bytes(layer.nibbles.data(), layer.nibbles.size());
  }
  return writer.take();
}

PackedModel parse_packed(const std::vector<std::uint8_t>& buffer) {
  Reader reader(buffer);
  char magic[sizeof(kPackMagic)] = {};
  reader.bytes(magic, sizeof(magic));
  if (std::memcmp(magic, kPackMagic, sizeof(magic)) != 0) {
    throw std::runtime_error("parse_packed: bad magic");
  }
  PackedModel model;
  model.pow2.e_min = static_cast<int>(reader.u32()) - 128;
  model.pow2.e_max = static_cast<int>(reader.u32()) - 128;
  const std::uint32_t flush = reader.u32();
  // Strict parse (0 or 1 only) keeps parse -> serialize byte-lossless, the
  // invariant the fuzz harness asserts on every accepted input.
  if (flush > 1) {
    throw std::runtime_error("parse_packed: invalid flush_to_zero flag");
  }
  model.pow2.flush_to_zero = flush == 1;
  model.k_max = static_cast<int>(reader.u32());
  // Decoded exponents must stay inside the normal float range exp2_int
  // realizes ([-126, 127]), and an inverted range cannot have been produced
  // by serialize_packed.
  if (model.pow2.e_min < -126 || model.pow2.e_max > 127 ||
      model.pow2.e_min > model.pow2.e_max) {
    throw std::runtime_error("parse_packed: invalid exponent range");
  }
  if (model.k_max < 0 || model.k_max > 255) {
    throw std::runtime_error("parse_packed: invalid k_max");
  }
  const std::uint32_t layer_count = reader.u32();
  // A layer's header alone is filters + elements + nibble count = 24 bytes;
  // bounding the count by the remaining payload keeps a hostile header from
  // forcing a huge up-front vector allocation.
  if (layer_count > reader.remaining() / 24) {
    throw std::runtime_error("parse_packed: layer count exceeds buffer");
  }
  model.layers.resize(layer_count);
  for (auto& layer : model.layers) {
    layer.filters = reader.i64();
    layer.elements_per_filter = reader.i64();
    if (layer.filters < 0 || layer.elements_per_filter < 0) {
      throw std::runtime_error("parse_packed: negative dimensions");
    }
    // One byte of filter_k payload per filter must still be in the buffer.
    if (static_cast<std::uint64_t>(layer.filters) > reader.remaining()) {
      throw std::runtime_error("parse_packed: filter count exceeds buffer");
    }
    layer.filter_k.resize(static_cast<std::size_t>(layer.filters));
    reader.bytes(layer.filter_k.data(), layer.filter_k.size());
    // Every per-filter term count must respect the model's k_max; a larger
    // value would make unpack_layer walk more nibbles than the pack holds.
    for (std::uint8_t k : layer.filter_k) {
      if (k > model.k_max) {
        throw std::runtime_error("parse_packed: filter k exceeds k_max");
      }
    }
    const std::int64_t nibble_bytes = reader.i64();
    if (nibble_bytes < 0 ||
        static_cast<std::uint64_t>(nibble_bytes) > reader.remaining()) {
      throw std::runtime_error("parse_packed: nibble count exceeds buffer");
    }
    // The nibble stream length is fully determined by filter_k and the
    // element count (4 bits per term element, rounded up to a byte); an
    // inconsistent length means either truncated codes (unpack_layer would
    // read out of bounds) or smuggled trailing payload. term_count() cannot
    // overflow here: sum(filter_k) <= 255 * filters <= 255 * remaining()
    // and elements_per_filter is about to be bounded by the same product.
    std::int64_t term_sum = 0;
    for (std::uint8_t k : layer.filter_k) term_sum += k;
    if (layer.elements_per_filter > 0 &&
        term_sum > (std::numeric_limits<std::int64_t>::max)() /
                       layer.elements_per_filter) {
      throw std::runtime_error("parse_packed: term count overflows");
    }
    const std::int64_t terms = term_sum * layer.elements_per_filter;
    if (nibble_bytes != (terms + 1) / 2) {
      throw std::runtime_error(
          "parse_packed: nibble stream does not match filter_k");
    }
    layer.nibbles.resize(static_cast<std::size_t>(nibble_bytes));
    reader.bytes(layer.nibbles.data(), layer.nibbles.size());
  }
  if (!reader.exhausted()) throw std::runtime_error("parse_packed: trailing bytes");
  return model;
}

}  // namespace flightnn::serialize
