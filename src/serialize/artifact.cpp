#include "serialize/artifact.hpp"

#include <cmath>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <new>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define FLIGHTNN_ARTIFACT_HAS_MMAP 1
#else
#define FLIGHTNN_ARTIFACT_HAS_MMAP 0
#endif

#include "serialize/wire.hpp"
#include "support/annotations.hpp"
#include "support/check.hpp"

namespace flightnn::serialize {

namespace {

using inference::NetworkProgram;
using inference::PlanArray;
using inference::ProgramOp;
using inference::ProgramOpKind;
using inference::ShiftPlan;

// Structural sanity caps. A valid artifact never gets near them; a hostile
// one cannot use a 24-byte section descriptor to demand gigabytes of work.
constexpr std::int64_t kGeomCap = std::int64_t{1} << 24;   // any single dim
constexpr std::int64_t kEntryCap = std::int64_t{1} << 31;  // plan entries
constexpr std::int64_t kTermCap = std::int64_t{1} << 40;   // term census
constexpr int kMaxResidualDepth = 64;  // caps validation/build recursion
constexpr int kMaxShift = 61;  // barrel budget: 1 << shift stays in int64

[[noreturn]] void fail(ArtifactErrorCode code, const std::string& message) {
  throw ArtifactError(code, message);
}

std::size_t align_up(std::size_t value, std::size_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

// --- Build ----------------------------------------------------------------

struct PendingSection {
  SectionKind kind;
  std::uint32_t op_index;
  const void* data;
  std::size_t bytes;
};

// Register `op`'s payload arrays as sections and point its record at them.
// Role order here IS the serialized section order per op -- part of the
// format's determinism contract.
void plan_sections(const ProgramOp& op, std::uint32_t op_index, bool conv,
                   OpRecord& record, std::vector<PendingSection>& sections) {
  const auto add = [&](int role, SectionKind kind, const void* data,
                       std::size_t bytes) {
    record.sec[role] = static_cast<std::uint32_t>(sections.size());
    sections.push_back(PendingSection{kind, op_index, data, bytes});
  };
  const ShiftPlan& plan = op.plan;
  const auto n = static_cast<std::size_t>(plan.entries());
  add(kRoleElement, SectionKind::kPlanElement, plan.element.data(),
      n * sizeof(std::int32_t));
  if (conv) {
    add(kRoleChannel, SectionKind::kPlanChannel, plan.channel.data(),
        n * sizeof(std::int32_t));
    add(kRoleKy, SectionKind::kPlanKy, plan.ky.data(),
        n * sizeof(std::int16_t));
    add(kRoleKx, SectionKind::kPlanKx, plan.kx.data(),
        n * sizeof(std::int16_t));
  }
  add(kRoleShift, SectionKind::kPlanShift, plan.shift.data(), n);
  add(kRoleSign, SectionKind::kPlanSign, plan.sign.data(), n);
  add(kRoleFilterBegin, SectionKind::kPlanFilterBegin, plan.filter_begin.data(),
      plan.filter_begin.size() * sizeof(std::int64_t));
  add(kRoleFilterGain, SectionKind::kPlanFilterGain, plan.filter_gain.data(),
      plan.filter_gain.size() * sizeof(std::int64_t));
}

OpRecord encode_op(const ProgramOp& op, std::uint32_t op_index,
                   std::vector<PendingSection>& sections) {
  OpRecord record;
  for (auto& s : record.sec) s = kAbsentSection;
  record.kind = static_cast<std::uint32_t>(op.kind);
  record.bits = op.bits;
  record.act_bits = op.act_bits;
  record.slope = op.slope;
  record.out_channels = op.out_channels;
  record.in_channels = op.in_channels;
  record.kernel = op.kernel;
  record.window = op.window;
  record.stride = op.stride;
  record.padding = op.padding;
  record.term_count = op.term_count;
  record.main_ops = op.main_ops;
  record.shortcut_ops = op.shortcut_ops;
  record.post_ops = op.post_ops;
  record.k_max = op.k_max;
  record.e_min = op.pow2.e_min;
  record.e_max = op.pow2.e_max;
  record.flush_to_zero = op.pow2.flush_to_zero ? 1 : 0;
  record.has_shortcut = op.has_shortcut ? 1 : 0;

  const auto add = [&](int role, SectionKind kind, const void* data,
                       std::size_t bytes) {
    record.sec[role] = static_cast<std::uint32_t>(sections.size());
    sections.push_back(PendingSection{kind, op_index, data, bytes});
  };
  const bool shift_op = op.kind == ProgramOpKind::kShiftConv ||
                        op.kind == ProgramOpKind::kShiftLinear;
  const bool float_op = op.kind == ProgramOpKind::kFloatConv ||
                        op.kind == ProgramOpKind::kFloatLinear;
  if (shift_op) {
    plan_sections(op, op_index, op.kind == ProgramOpKind::kShiftConv, record,
                  sections);
  }
  if (float_op) {
    const auto& shape = op.weights.shape();
    record.weight_rank = static_cast<std::uint32_t>(shape.rank());
    for (std::size_t axis = 0; axis < shape.rank(); ++axis) {
      record.weight_dims[axis] = shape[axis];
    }
    add(kRoleWeights, SectionKind::kWeights, op.weights.data(),
        static_cast<std::size_t>(op.weights.numel()) * sizeof(float));
  }
  if ((shift_op || float_op) && !op.bias.empty()) {
    add(kRoleBias, SectionKind::kBias, op.bias.data(),
        static_cast<std::size_t>(op.bias.numel()) * sizeof(float));
  }
  if (op.kind == ProgramOpKind::kAffine) {
    add(kRoleAffineScale, SectionKind::kAffineScale, op.scale.data(),
        op.scale.size() * sizeof(float));
    add(kRoleAffineBias, SectionKind::kAffineBias, op.affine_bias.data(),
        op.affine_bias.size() * sizeof(float));
  }
  return record;
}

// --- Parse helpers --------------------------------------------------------

// Validated view of one section's payload.
struct SectionView {
  const std::uint8_t* data = nullptr;
  std::size_t bytes = 0;
};

// Resolve a role's section for `op_index`, checking kind and ownership.
// Returns nullopt-style {nullptr, 0} for absent optional roles.
SectionView resolve_section(const std::uint8_t* base,
                            const SectionDesc* sections,
                            std::uint32_t section_count, const OpRecord& record,
                            std::uint32_t op_index, int role,
                            SectionKind expected, bool required) {
  const std::uint32_t index = record.sec[role];
  if (index == kAbsentSection) {
    if (required) {
      fail(ArtifactErrorCode::kBadProgram,
           "op " + std::to_string(op_index) + " misses required section role " +
               std::to_string(role));
    }
    return {};
  }
  if (index >= section_count) {
    fail(ArtifactErrorCode::kBadProgram,
         "op " + std::to_string(op_index) + " references section " +
             std::to_string(index) + " of " + std::to_string(section_count));
  }
  const SectionDesc& desc = sections[index];
  if (desc.kind != static_cast<std::uint32_t>(expected) ||
      desc.op_index != op_index) {
    fail(ArtifactErrorCode::kBadProgram,
         "op " + std::to_string(op_index) + " section " +
             std::to_string(index) + " has wrong kind or owner");
  }
  return SectionView{base + desc.offset, static_cast<std::size_t>(desc.bytes)};
}

// Typed element count of a section whose payload is `elem_bytes`-sized.
std::size_t section_count_of(const SectionView& view, std::size_t elem_bytes,
                             std::uint32_t op_index, const char* what) {
  if (view.bytes % elem_bytes != 0) {
    fail(ArtifactErrorCode::kBadProgram,
         "op " + std::to_string(op_index) + " " + what +
             " section is not a whole number of elements");
  }
  return view.bytes / elem_bytes;
}

void check_geom(std::int64_t value, std::int64_t lo, std::uint32_t op_index,
                const char* what) {
  if (value < lo || value > kGeomCap) {
    fail(ArtifactErrorCode::kBadProgram,
         "op " + std::to_string(op_index) + " " + what + " " +
             std::to_string(value) + " outside [" + std::to_string(lo) + ", 2^24]");
  }
}

// Deep per-entry plan validation. The hot kernels index these streams
// unchecked, so everything they trust is proven here: entry bounds, sign
// and shift domains, the filter prefix, and the overflow gains (recomputed
// with the same guard saturation the compiler uses). Only the core streams
// live in the artifact (format v1, unchanged): the derived vector streams
// (mult, 8-lane-padded linear streams; DESIGN.md §14) are rebuilt from
// these validated views by the plan-adopting engine constructors -- an
// in-loader repack, so mapped plans stay zero-copy and still reach the
// vectorized kernel tier.
ShiftPlan validate_plan(const std::uint8_t* base, const SectionDesc* sections,
                        std::uint32_t section_count, const OpRecord& record,
                        std::uint32_t op_index, bool conv) {
  const auto resolve = [&](int role, SectionKind kind) {
    return resolve_section(base, sections, section_count, record, op_index,
                           role, kind, /*required=*/true);
  };
  const SectionView element_view = resolve(kRoleElement, SectionKind::kPlanElement);
  const std::size_t entries =
      section_count_of(element_view, sizeof(std::int32_t), op_index, "element");
  if (static_cast<std::int64_t>(entries) > kEntryCap) {
    fail(ArtifactErrorCode::kBadProgram,
         "op " + std::to_string(op_index) + " plan entry count " +
             std::to_string(entries) + " exceeds the 2^31 cap");
  }
  const auto expect_entries = [&](const SectionView& view,
                                  std::size_t elem_bytes, const char* what) {
    if (section_count_of(view, elem_bytes, op_index, what) != entries) {
      fail(ArtifactErrorCode::kBadProgram,
           "op " + std::to_string(op_index) + " " + what +
               " stream does not match the entry count");
    }
  };
  const SectionView shift_view = resolve(kRoleShift, SectionKind::kPlanShift);
  const SectionView sign_view = resolve(kRoleSign, SectionKind::kPlanSign);
  expect_entries(shift_view, 1, "shift");
  expect_entries(sign_view, 1, "sign");

  const std::int64_t filters = record.out_channels;
  const SectionView begin_view =
      resolve(kRoleFilterBegin, SectionKind::kPlanFilterBegin);
  const SectionView gain_view =
      resolve(kRoleFilterGain, SectionKind::kPlanFilterGain);
  if (section_count_of(begin_view, sizeof(std::int64_t), op_index,
                       "filter_begin") != static_cast<std::size_t>(filters) + 1) {
    fail(ArtifactErrorCode::kBadProgram,
         "op " + std::to_string(op_index) + " filter_begin does not cover " +
             std::to_string(filters) + " filters");
  }
  if (section_count_of(gain_view, sizeof(std::int64_t), op_index,
                       "filter_gain") != static_cast<std::size_t>(filters)) {
    fail(ArtifactErrorCode::kBadProgram,
         "op " + std::to_string(op_index) + " filter_gain does not cover " +
             std::to_string(filters) + " filters");
  }

  ShiftPlan plan;
  plan.filters = filters;
  plan.element = PlanArray<std::int32_t>::view(
      reinterpret_cast<const std::int32_t*>(element_view.data), entries);
  plan.shift = PlanArray<std::int8_t>::view(
      reinterpret_cast<const std::int8_t*>(shift_view.data), entries);
  plan.sign = PlanArray<std::int8_t>::view(
      reinterpret_cast<const std::int8_t*>(sign_view.data), entries);
  plan.filter_begin = PlanArray<std::int64_t>::view(
      reinterpret_cast<const std::int64_t*>(begin_view.data),
      static_cast<std::size_t>(filters) + 1);
  plan.filter_gain = PlanArray<std::int64_t>::view(
      reinterpret_cast<const std::int64_t*>(gain_view.data),
      static_cast<std::size_t>(filters));
  if (conv) {
    const SectionView channel_view =
        resolve(kRoleChannel, SectionKind::kPlanChannel);
    const SectionView ky_view = resolve(kRoleKy, SectionKind::kPlanKy);
    const SectionView kx_view = resolve(kRoleKx, SectionKind::kPlanKx);
    expect_entries(channel_view, sizeof(std::int32_t), "channel");
    expect_entries(ky_view, sizeof(std::int16_t), "ky");
    expect_entries(kx_view, sizeof(std::int16_t), "kx");
    plan.channel = PlanArray<std::int32_t>::view(
        reinterpret_cast<const std::int32_t*>(channel_view.data), entries);
    plan.ky = PlanArray<std::int16_t>::view(
        reinterpret_cast<const std::int16_t*>(ky_view.data), entries);
    plan.kx = PlanArray<std::int16_t>::view(
        reinterpret_cast<const std::int16_t*>(kx_view.data), entries);
  }

  // Shift budget: exponents live in [e_min, e_max], so shifts live in
  // [0, e_max - e_min]; the whole range must fit the barrel budget.
  const int shift_levels = record.e_max - record.e_min;
  if (shift_levels < 0 || shift_levels > kMaxShift) {
    fail(ArtifactErrorCode::kBadProgram,
         "op " + std::to_string(op_index) + " exponent range [" +
             std::to_string(record.e_min) + ", " + std::to_string(record.e_max) +
             "] outside the barrel shifter budget");
  }
  // Read the streams through a const alias: the plan's arrays are views,
  // and only PlanArray's const accessors read through a view.
  const ShiftPlan& streams = plan;
  // filter_begin: a monotone prefix spanning exactly the entry stream.
  if (streams.filter_begin.front() != 0 ||
      streams.filter_begin.back() != static_cast<std::int64_t>(entries)) {
    fail(ArtifactErrorCode::kBadProgram,
         "op " + std::to_string(op_index) +
             " filter_begin does not span the entry stream");
  }
  for (std::size_t f = 1; f < plan.filter_begin.size(); ++f) {
    if (streams.filter_begin[f - 1] > streams.filter_begin[f]) {
      fail(ArtifactErrorCode::kBadProgram,
           "op " + std::to_string(op_index) + " filter_begin not monotone at " +
               std::to_string(f));
    }
  }
  // Per-entry domains + recomputed per-filter gains.
  const std::int64_t kernel = record.kernel;
  const std::int64_t in_span = conv ? record.in_channels * kernel * kernel
                                    : record.in_channels;
  for (std::int64_t f = 0; f < filters; ++f) {
    const std::int64_t fb = streams.filter_begin[static_cast<std::size_t>(f)];
    const std::int64_t fe = streams.filter_begin[static_cast<std::size_t>(f) + 1];
    std::int64_t gain = 0;
    for (std::int64_t e = fb; e < fe; ++e) {
      const auto ei = static_cast<std::size_t>(e);
      const int sign = streams.sign[ei];
      const int shift = streams.shift[ei];
      if (sign != 1 && sign != -1) {
        fail(ArtifactErrorCode::kBadProgram,
             "op " + std::to_string(op_index) + " entry " + std::to_string(e) +
                 " sign " + std::to_string(sign) + " not in {-1, +1}");
      }
      if (shift < 0 || shift > shift_levels) {
        fail(ArtifactErrorCode::kBadProgram,
             "op " + std::to_string(op_index) + " entry " + std::to_string(e) +
                 " shift " + std::to_string(shift) + " outside [0, " +
                 std::to_string(shift_levels) + "]");
      }
      const std::int64_t element = streams.element[ei];
      if (element < 0 || element >= in_span) {
        fail(ArtifactErrorCode::kBadProgram,
             "op " + std::to_string(op_index) + " entry " + std::to_string(e) +
                 " element " + std::to_string(element) + " outside [0, " +
                 std::to_string(in_span) + ")");
      }
      if (conv) {
        const std::int64_t channel = streams.channel[ei];
        const std::int64_t ky = streams.ky[ei];
        const std::int64_t kx = streams.kx[ei];
        if (channel < 0 || channel >= record.in_channels || ky < 0 ||
            ky >= kernel || kx < 0 || kx >= kernel ||
            element != (channel * kernel + ky) * kernel + kx) {
          fail(ArtifactErrorCode::kBadProgram,
               "op " + std::to_string(op_index) + " entry " +
                   std::to_string(e) + " spatial split disagrees with element");
        }
      }
      const std::int64_t step = std::int64_t{1} << shift;
      gain = gain > inference::kShiftAccumulatorGuard - step
                 ? inference::kShiftAccumulatorGuard
                 : gain + step;
    }
    if (streams.filter_gain[static_cast<std::size_t>(f)] != gain) {
      fail(ArtifactErrorCode::kBadProgram,
           "op " + std::to_string(op_index) + " filter " + std::to_string(f) +
               " gain does not match its entries");
    }
  }
  return plan;
}

tensor::Tensor copy_floats(const SectionView& view, const tensor::Shape& shape) {
  tensor::Tensor out(shape);
  std::memcpy(out.data(), view.data, view.bytes);
  return out;
}

// Residual segment-count audit over the raw records: every segment must
// consume exactly its claimed ops, with bounded nesting so a hostile
// artifact cannot drive the recursive builders into stack exhaustion.
void consume_op(const OpRecord* records, std::size_t& cursor, std::size_t end,
                int depth);

void consume_segment(const OpRecord* records, std::size_t& cursor,
                     std::int64_t count, std::size_t end, int depth) {
  if (count < 0 || static_cast<std::size_t>(count) > end - cursor) {
    fail(ArtifactErrorCode::kBadProgram,
         "residual segment claims " + std::to_string(count) + " ops but " +
             std::to_string(end - cursor) + " remain");
  }
  const std::size_t segment_end = cursor + static_cast<std::size_t>(count);
  while (cursor < segment_end) consume_op(records, cursor, segment_end, depth);
}

void consume_op(const OpRecord* records, std::size_t& cursor, std::size_t end,
                int depth) {
  const OpRecord& record = records[cursor];
  ++cursor;
  if (record.kind != static_cast<std::uint32_t>(ProgramOpKind::kResidual)) {
    return;
  }
  if (depth >= kMaxResidualDepth) {
    fail(ArtifactErrorCode::kBadProgram, "residual nesting exceeds depth cap");
  }
  consume_segment(records, cursor, record.main_ops, end, depth + 1);
  consume_segment(records, cursor, record.shortcut_ops, end, depth + 1);
  consume_segment(records, cursor, record.post_ops, end, depth + 1);
}

ProgramOp decode_op(const std::uint8_t* base, const SectionDesc* sections,
                    std::uint32_t section_count, const OpRecord& record,
                    std::uint32_t op_index) {
  ProgramOp op;
  const auto kind_value = record.kind;
  if (kind_value < static_cast<std::uint32_t>(ProgramOpKind::kQuantAct) ||
      kind_value > static_cast<std::uint32_t>(ProgramOpKind::kResidual)) {
    fail(ArtifactErrorCode::kBadProgram,
         "op " + std::to_string(op_index) + " has unknown kind " +
             std::to_string(kind_value));
  }
  op.kind = static_cast<ProgramOpKind>(kind_value);
  op.bits = record.bits;
  op.act_bits = record.act_bits;
  op.slope = record.slope;
  op.out_channels = record.out_channels;
  op.in_channels = record.in_channels;
  op.kernel = record.kernel;
  op.window = record.window;
  op.stride = record.stride;
  op.padding = record.padding;
  op.term_count = record.term_count;
  op.k_max = record.k_max;
  op.pow2.e_min = record.e_min;
  op.pow2.e_max = record.e_max;
  op.pow2.flush_to_zero = record.flush_to_zero != 0;
  op.main_ops = record.main_ops;
  op.shortcut_ops = record.shortcut_ops;
  op.post_ops = record.post_ops;
  op.has_shortcut = record.has_shortcut != 0;

  const auto optional_floats = [&](int role, SectionKind kind,
                                   std::int64_t expect_count,
                                   const char* what) -> tensor::Tensor {
    const SectionView view = resolve_section(base, sections, section_count,
                                             record, op_index, role, kind,
                                             /*required=*/false);
    if (view.data == nullptr) return {};
    if (view.bytes != static_cast<std::size_t>(expect_count) * sizeof(float)) {
      fail(ArtifactErrorCode::kBadProgram,
           "op " + std::to_string(op_index) + " " + what + " section holds " +
               std::to_string(view.bytes / sizeof(float)) + " floats, expected " +
               std::to_string(expect_count));
    }
    return copy_floats(view, tensor::Shape{expect_count});
  };

  switch (op.kind) {
    case ProgramOpKind::kQuantAct:
      if (record.bits < 2 || record.bits > 16) {
        fail(ArtifactErrorCode::kBadProgram,
             "op " + std::to_string(op_index) + " quant bits " +
                 std::to_string(record.bits) + " outside [2, 16]");
      }
      break;
    case ProgramOpKind::kShiftConv:
    case ProgramOpKind::kShiftLinear: {
      const bool conv = op.kind == ProgramOpKind::kShiftConv;
      if (record.act_bits < 2 || record.act_bits > 16) {
        fail(ArtifactErrorCode::kBadProgram,
             "op " + std::to_string(op_index) + " act bits " +
                 std::to_string(record.act_bits) + " outside [2, 16]");
      }
      check_geom(record.out_channels, 1, op_index, "out channels");
      check_geom(record.in_channels, 1, op_index, "in channels");
      if (conv) {
        check_geom(record.kernel, 1, op_index, "kernel");
        check_geom(record.stride, 1, op_index, "stride");
        check_geom(record.padding, 0, op_index, "padding");
      }
      if (record.term_count < 0 || record.term_count > kTermCap) {
        fail(ArtifactErrorCode::kBadProgram,
             "op " + std::to_string(op_index) + " term count " +
                 std::to_string(record.term_count) + " out of range");
      }
      op.plan = validate_plan(base, sections, section_count, record, op_index,
                              conv);
      op.bias = optional_floats(kRoleBias, SectionKind::kBias,
                                record.out_channels, "bias");
      break;
    }
    case ProgramOpKind::kFloatConv:
    case ProgramOpKind::kFloatLinear: {
      const bool conv = op.kind == ProgramOpKind::kFloatConv;
      const std::uint32_t expect_rank = conv ? 4 : 2;
      if (record.weight_rank != expect_rank) {
        fail(ArtifactErrorCode::kBadProgram,
             "op " + std::to_string(op_index) + " float weights rank " +
                 std::to_string(record.weight_rank) + ", expected " +
                 std::to_string(expect_rank));
      }
      std::vector<std::int64_t> dims(expect_rank);
      std::int64_t numel = 1;
      for (std::uint32_t axis = 0; axis < expect_rank; ++axis) {
        const std::int64_t d = record.weight_dims[axis];
        check_geom(d, 1, op_index, "weight dim");
        dims[axis] = d;
        numel *= d;  // bounded: kGeomCap^4 < 2^63 does not hold; cap below
        if (numel > (std::int64_t{1} << 40)) {
          fail(ArtifactErrorCode::kBadProgram,
               "op " + std::to_string(op_index) + " float weights too large");
        }
      }
      if (dims[0] != record.out_channels || dims[1] != record.in_channels ||
          (conv && (dims[2] != record.kernel || dims[3] != record.kernel))) {
        fail(ArtifactErrorCode::kBadProgram,
             "op " + std::to_string(op_index) +
                 " weight dims disagree with the op geometry");
      }
      if (conv) {
        check_geom(record.stride, 1, op_index, "stride");
        check_geom(record.padding, 0, op_index, "padding");
      }
      const SectionView weights_view = resolve_section(
          base, sections, section_count, record, op_index, kRoleWeights,
          SectionKind::kWeights, /*required=*/true);
      if (weights_view.bytes !=
          static_cast<std::size_t>(numel) * sizeof(float)) {
        fail(ArtifactErrorCode::kBadProgram,
             "op " + std::to_string(op_index) +
                 " weights section does not match its dims");
      }
      op.weights = copy_floats(weights_view, tensor::Shape(dims));
      op.bias = optional_floats(kRoleBias, SectionKind::kBias,
                                record.out_channels, "bias");
      break;
    }
    case ProgramOpKind::kAffine: {
      const SectionView scale_view = resolve_section(
          base, sections, section_count, record, op_index, kRoleAffineScale,
          SectionKind::kAffineScale, /*required=*/true);
      const SectionView bias_view = resolve_section(
          base, sections, section_count, record, op_index, kRoleAffineBias,
          SectionKind::kAffineBias, /*required=*/true);
      const std::size_t channels =
          section_count_of(scale_view, sizeof(float), op_index, "scale");
      if (static_cast<std::int64_t>(channels) > kGeomCap || channels == 0) {
        fail(ArtifactErrorCode::kBadProgram,
             "op " + std::to_string(op_index) + " affine channel count " +
                 std::to_string(channels) + " out of range");
      }
      if (section_count_of(bias_view, sizeof(float), op_index, "bias") !=
          channels) {
        fail(ArtifactErrorCode::kBadProgram,
             "op " + std::to_string(op_index) + " affine scale/bias disagree");
      }
      const auto* scale = reinterpret_cast<const float*>(scale_view.data);
      const auto* bias = reinterpret_cast<const float*>(bias_view.data);
      op.scale.assign(scale, scale + channels);
      op.affine_bias.assign(bias, bias + channels);
      break;
    }
    case ProgramOpKind::kLeakyRelu:
      if (!std::isfinite(record.slope)) {
        fail(ArtifactErrorCode::kBadProgram,
             "op " + std::to_string(op_index) + " leaky-relu slope not finite");
      }
      break;
    case ProgramOpKind::kMaxPool:
      check_geom(record.window, 1, op_index, "window");
      check_geom(record.stride, 1, op_index, "stride");
      break;
    case ProgramOpKind::kGap:
    case ProgramOpKind::kFlatten:
      break;
    case ProgramOpKind::kResidual:
      if (record.main_ops < 0 || record.shortcut_ops < 0 ||
          record.post_ops < 0 ||
          (record.has_shortcut == 0 && record.shortcut_ops != 0)) {
        fail(ArtifactErrorCode::kBadProgram,
             "op " + std::to_string(op_index) + " residual counts invalid");
      }
      break;
  }
  return op;
}

}  // namespace

const char* artifact_error_name(ArtifactErrorCode code) {
  switch (code) {
    case ArtifactErrorCode::kIo: return "artifact io error";
    case ArtifactErrorCode::kTruncated: return "artifact truncated";
    case ArtifactErrorCode::kBadMagic: return "artifact bad magic";
    case ArtifactErrorCode::kBadVersion: return "artifact bad version";
    case ArtifactErrorCode::kBadHeader: return "artifact bad header";
    case ArtifactErrorCode::kBadChecksum: return "artifact bad checksum";
    case ArtifactErrorCode::kBadSection: return "artifact bad section";
    case ArtifactErrorCode::kBadProgram: return "artifact bad program";
  }
  return "artifact error";
}

std::uint64_t artifact_checksum64(const std::uint8_t* data,
                                  std::size_t size) {
  // Interleaved FNV-1a-64: eight independent lanes stripe the payload
  // (lane j consumes bytes j, j+8, ...), then a final FNV pass folds the
  // lane states and the length. Plain FNV-1a is a single dependent
  // multiply chain (~1 byte/multiply-latency); eight chains keep the
  // multiplier pipelined, which matters because this checksum gates every
  // cold start and the artifact is sized in megabytes.
  constexpr std::uint64_t kBasis = 14695981039346656037ULL;
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t lane[8];
  for (std::uint64_t j = 0; j < 8; ++j) lane[j] = kBasis ^ (j * kPrime);
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    for (std::size_t j = 0; j < 8; ++j) {
      lane[j] = (lane[j] ^ data[i + j]) * kPrime;
    }
  }
  for (std::size_t j = 0; i < size; ++i, ++j) {
    lane[j] = (lane[j] ^ data[i]) * kPrime;
  }
  std::uint64_t hash = kBasis ^ static_cast<std::uint64_t>(size);
  for (const std::uint64_t state : lane) {
    hash = (hash ^ (state & 0xFFFFFFFFULL)) * kPrime;
    hash = (hash ^ (state >> 32)) * kPrime;
  }
  return hash;
}

FLIGHTNN_API_ENTRY std::vector<std::uint8_t> build_artifact(
    const NetworkProgram& program) {
  FLIGHTNN_CHECK(!program.ops.empty(), "build_artifact: empty program");
  FLIGHTNN_CHECK(program.input_c > 0 && program.input_h > 0 &&
                     program.input_w > 0,
                 "build_artifact: bad input geometry [", program.input_c, ", ",
                 program.input_h, ", ", program.input_w, "]");
  FLIGHTNN_CHECK(program.ops.size() < kAbsentSection,
                 "build_artifact: too many ops");

  // Pass 1: encode records and collect the section list in role order.
  std::vector<OpRecord> records;
  records.reserve(program.ops.size());
  std::vector<PendingSection> sections;
  sections.push_back(PendingSection{SectionKind::kProgram, kAbsentSection,
                                    nullptr, 0});  // patched below
  for (std::size_t i = 0; i < program.ops.size(); ++i) {
    records.push_back(
        encode_op(program.ops[i], static_cast<std::uint32_t>(i), sections));
  }
  sections[0].data = records.data();
  sections[0].bytes = records.size() * sizeof(OpRecord);

  // Pass 2: lay out -- header, table, then 64-byte-aligned sections.
  ArtifactHeader header;
  std::memcpy(header.magic, kArtifactMagic, sizeof(header.magic));
  header.version = kArtifactVersion;
  header.header_bytes = sizeof(ArtifactHeader);
  header.section_table_offset = sizeof(ArtifactHeader);
  header.section_count = static_cast<std::uint32_t>(sections.size());
  header.op_count = static_cast<std::uint32_t>(records.size());
  header.input_c = program.input_c;
  header.input_h = program.input_h;
  header.input_w = program.input_w;

  std::vector<SectionDesc> table(sections.size());
  std::size_t cursor =
      sizeof(ArtifactHeader) + sections.size() * sizeof(SectionDesc);
  for (std::size_t i = 0; i < sections.size(); ++i) {
    cursor = align_up(cursor, kArtifactAlignment);
    table[i].kind = static_cast<std::uint32_t>(sections[i].kind);
    table[i].op_index = sections[i].op_index;
    table[i].offset = cursor;
    table[i].bytes = sections[i].bytes;
    cursor += sections[i].bytes;
  }
  header.file_bytes = cursor;

  ByteWriter writer;
  writer.reserve(cursor);
  writer.bytes(&header, sizeof(header));
  writer.bytes(table.data(), table.size() * sizeof(SectionDesc));
  for (std::size_t i = 0; i < sections.size(); ++i) {
    writer.align_to(kArtifactAlignment);
    if (sections[i].bytes > 0) {
      writer.bytes(sections[i].data, sections[i].bytes);
    }
  }
  std::vector<std::uint8_t> blob = writer.take();
  FLIGHTNN_CHECK(blob.size() == cursor,
                 "build_artifact: layout/write size mismatch (", blob.size(),
                 " vs ", cursor, ")");
  rewrite_artifact_checksum(blob);
  return blob;
}

void rewrite_artifact_checksum(std::vector<std::uint8_t>& blob) {
  FLIGHTNN_CHECK(blob.size() >= sizeof(ArtifactHeader),
                 "rewrite_artifact_checksum: blob smaller than a header");
  const std::uint64_t checksum = artifact_checksum64(blob.data() + sizeof(ArtifactHeader),
                                         blob.size() - sizeof(ArtifactHeader));
  std::memcpy(blob.data() + offsetof(ArtifactHeader, payload_checksum),
              &checksum, sizeof(checksum));
}

FLIGHTNN_API_ENTRY void save_artifact(const NetworkProgram& program,
                                      const std::string& path) {
  FLIGHTNN_CHECK(!path.empty(), "save_artifact: empty path");
  const std::vector<std::uint8_t> blob = build_artifact(program);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    fail(ArtifactErrorCode::kIo, "cannot open " + path + " for writing");
  }
  file.write(reinterpret_cast<const char*>(blob.data()),
             static_cast<std::streamsize>(blob.size()));
  file.flush();
  if (!file) fail(ArtifactErrorCode::kIo, "write failed for " + path);
}

FLIGHTNN_API_ENTRY inference::NetworkProgram parse_artifact(
    const std::uint8_t* data, std::size_t size) {
  FLIGHTNN_CHECK(data != nullptr || size == 0,
                 "parse_artifact: null data with nonzero size");
  // --- header ---
  if (size < sizeof(ArtifactHeader)) {
    fail(ArtifactErrorCode::kTruncated,
         "file is " + std::to_string(size) + " bytes, header needs " +
             std::to_string(sizeof(ArtifactHeader)));
  }
  ArtifactHeader header;
  std::memcpy(&header, data, sizeof(header));
  if (std::memcmp(header.magic, kArtifactMagic, sizeof(kArtifactMagic)) != 0) {
    fail(ArtifactErrorCode::kBadMagic, "not a FLightNN artifact");
  }
  if (header.version != kArtifactVersion) {
    fail(ArtifactErrorCode::kBadVersion,
         "format version " + std::to_string(header.version) +
             ", this loader reads " + std::to_string(kArtifactVersion));
  }
  if (header.header_bytes != sizeof(ArtifactHeader) ||
      header.section_table_offset != sizeof(ArtifactHeader)) {
    fail(ArtifactErrorCode::kBadHeader,
         "header geometry fields are inconsistent");
  }
  if (header.file_bytes > size) {
    fail(ArtifactErrorCode::kTruncated,
         "header claims " + std::to_string(header.file_bytes) +
             " bytes, file holds " + std::to_string(size));
  }
  if (header.file_bytes != size) {
    fail(ArtifactErrorCode::kBadHeader,
         "trailing bytes beyond the declared file size");
  }
  if (header.input_c < 1 || header.input_c > kGeomCap || header.input_h < 1 ||
      header.input_h > kGeomCap || header.input_w < 1 ||
      header.input_w > kGeomCap) {
    fail(ArtifactErrorCode::kBadHeader, "input geometry out of range");
  }
  // --- checksum (everything after the header) ---
  const std::uint64_t checksum =
      artifact_checksum64(data + sizeof(ArtifactHeader), size - sizeof(ArtifactHeader));
  if (checksum != header.payload_checksum) {
    fail(ArtifactErrorCode::kBadChecksum, "payload checksum mismatch");
  }
  // --- section table ---
  const std::size_t table_capacity =
      (size - sizeof(ArtifactHeader)) / sizeof(SectionDesc);
  if (header.section_count == 0 || header.section_count > table_capacity) {
    fail(ArtifactErrorCode::kBadSection,
         "section count " + std::to_string(header.section_count) +
             " does not fit the file");
  }
  const auto* sections =
      reinterpret_cast<const SectionDesc*>(data + sizeof(ArtifactHeader));
  const std::size_t table_end =
      sizeof(ArtifactHeader) + header.section_count * sizeof(SectionDesc);
  for (std::uint32_t i = 0; i < header.section_count; ++i) {
    const SectionDesc& desc = sections[i];
    if (desc.kind < static_cast<std::uint32_t>(SectionKind::kProgram) ||
        desc.kind > static_cast<std::uint32_t>(SectionKind::kAffineBias)) {
      fail(ArtifactErrorCode::kBadSection,
           "section " + std::to_string(i) + " has unknown kind " +
               std::to_string(desc.kind));
    }
    if (desc.offset % kArtifactAlignment != 0) {
      fail(ArtifactErrorCode::kBadSection,
           "section " + std::to_string(i) + " offset " +
               std::to_string(desc.offset) + " is not 64-byte aligned");
    }
    // Overflow-proof range check: offset and bytes each bounded by the file
    // size before their sum is formed.
    if (desc.offset < table_end || desc.offset > size ||
        desc.bytes > size - desc.offset) {
      fail(ArtifactErrorCode::kBadSection,
           "section " + std::to_string(i) + " range [" +
               std::to_string(desc.offset) + ", +" +
               std::to_string(desc.bytes) + ") escapes the file");
    }
  }
  // --- program section ---
  if (sections[0].kind != static_cast<std::uint32_t>(SectionKind::kProgram) ||
      sections[0].op_index != kAbsentSection) {
    fail(ArtifactErrorCode::kBadSection,
         "section 0 must be the program section");
  }
  for (std::uint32_t i = 1; i < header.section_count; ++i) {
    if (sections[i].kind == static_cast<std::uint32_t>(SectionKind::kProgram)) {
      fail(ArtifactErrorCode::kBadSection, "duplicate program section");
    }
  }
  if (header.op_count == 0 ||
      sections[0].bytes !=
          static_cast<std::uint64_t>(header.op_count) * sizeof(OpRecord)) {
    fail(ArtifactErrorCode::kBadProgram,
         "program section does not hold " + std::to_string(header.op_count) +
             " op records");
  }
  const auto* records =
      reinterpret_cast<const OpRecord*>(data + sections[0].offset);
  // --- residual segment audit before any decode ---
  std::size_t cursor = 0;
  consume_segment(records, cursor, header.op_count, header.op_count, 0);
  // --- per-op decode + deep plan validation ---
  NetworkProgram program;
  program.input_c = header.input_c;
  program.input_h = header.input_h;
  program.input_w = header.input_w;
  program.ops.reserve(header.op_count);
  for (std::uint32_t i = 0; i < header.op_count; ++i) {
    program.ops.push_back(
        decode_op(data, sections, header.section_count, records[i], i));
  }
  return program;
}

// --- ArtifactModel --------------------------------------------------------

ArtifactModel::Mapping::~Mapping() {
  if (data_ == nullptr) return;
  if (mmapped_) {
#if FLIGHTNN_ARTIFACT_HAS_MMAP
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
#endif
  } else {
    ::operator delete(const_cast<std::uint8_t*>(data_),
                      std::align_val_t{kArtifactAlignment});
  }
}

ArtifactModel::ArtifactModel(std::unique_ptr<Mapping> mapping,
                             inference::NetworkProgram program)
    : mapping_(std::move(mapping)),
      input_c_(program.input_c),
      input_h_(program.input_h),
      input_w_(program.input_w) {
  try {
    network_ = inference::QuantizedNetwork::from_program(std::move(program));
  } catch (const support::CheckFailure& failure) {
    // A program that passed the format validators but still trips an engine
    // contract is a malformed artifact, not a caller bug.
    fail(ArtifactErrorCode::kBadProgram, failure.what());
  }
}

namespace {

// kArtifactAlignment-aligned heap block so the plan streams' int64 views
// are aligned exactly as they would be under mmap (page-aligned base).
std::uint8_t* aligned_alloc_bytes(std::size_t size) {
  return static_cast<std::uint8_t*>(
      ::operator new(size, std::align_val_t{kArtifactAlignment}));
}

}  // namespace

// FLIGHTNN_COLD_ALLOC: cold-start boundary -- the mapping wrapper and the
// adopted network are built exactly once per load, never on the hot path.
// (Also keeps the name-matching lint from conflating this `load` with
// std::atomic::load calls inside FLIGHTNN_HOT bodies.)
FLIGHTNN_COLD_ALLOC FLIGHTNN_API_ENTRY ArtifactModel ArtifactModel::load(
    const std::string& path) {
  FLIGHTNN_CHECK(!path.empty(), "ArtifactModel::load: empty path");
#if FLIGHTNN_ARTIFACT_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail(ArtifactErrorCode::kIo, "cannot open " + path);
  struct stat st = {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    fail(ArtifactErrorCode::kIo, "cannot stat " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    fail(ArtifactErrorCode::kTruncated, path + " is empty");
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) fail(ArtifactErrorCode::kIo, "mmap failed for " + path);
  auto mapping = std::make_unique<Mapping>(
      static_cast<const std::uint8_t*>(base), size, /*mmapped=*/true);
  inference::NetworkProgram program =
      parse_artifact(mapping->data(), mapping->size());
  return ArtifactModel(std::move(mapping), std::move(program));
#else
  // No mmap on this platform: stream the file into an aligned buffer.
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) fail(ArtifactErrorCode::kIo, "cannot open " + path);
  const std::streamsize stream_size = file.tellg();
  if (stream_size <= 0) fail(ArtifactErrorCode::kTruncated, path + " is empty");
  const auto size = static_cast<std::size_t>(stream_size);
  std::uint8_t* buffer = aligned_alloc_bytes(size);
  auto mapping = std::make_unique<Mapping>(buffer, size, /*mmapped=*/false);
  file.seekg(0);
  file.read(reinterpret_cast<char*>(buffer), stream_size);
  if (!file) fail(ArtifactErrorCode::kIo, "read failed for " + path);
  inference::NetworkProgram program = parse_artifact(buffer, size);
  return ArtifactModel(std::move(mapping), std::move(program));
#endif
}

FLIGHTNN_COLD_ALLOC FLIGHTNN_API_ENTRY ArtifactModel ArtifactModel::load_buffer(
    const std::uint8_t* data, std::size_t size) {
  FLIGHTNN_CHECK(data != nullptr || size == 0,
                 "ArtifactModel::load_buffer: null data with nonzero size");
  std::uint8_t* buffer = aligned_alloc_bytes(size == 0 ? 1 : size);
  auto mapping = std::make_unique<Mapping>(buffer, size, /*mmapped=*/false);
  if (size > 0) std::memcpy(buffer, data, size);
  inference::NetworkProgram program = parse_artifact(buffer, size);
  return ArtifactModel(std::move(mapping), std::move(program));
}

}  // namespace flightnn::serialize
