#pragma once

// The zero-copy deployable model artifact: a compiled NetworkProgram laid
// out into one flat, relocatable, mmap-able blob. This is the FINN-R /
// FlexNN deployment unit for FLightNNs -- all planning (decomposition,
// ShiftPlan lowering, batch-norm folding) happens offline in
// build_artifact; loading is mmap plus an O(#sections) pointer fixup that
// binds PlanArray views straight into the mapping. N serving replicas that
// map the same file share one physical copy of every plan stream.
//
// Format v1 (DESIGN.md §13 is the normative spec):
//
//   [ArtifactHeader: 128 bytes]
//   [section table: section_count x SectionDesc (24 bytes each)]
//   [sections: each 64-byte aligned, zero-padded between]
//
// All multi-byte fields are little-endian native; offsets are absolute file
// offsets (never pointers), so the blob is position-independent. The header
// carries a checksum (8-lane interleaved FNV-1a-64, see
// artifact_checksum64) over everything after itself. Section order
// is deterministic: the program section first, then each op's arrays in
// role order -- so build_artifact is byte-reproducible for a given program
// (the golden test pins this).
//
// Versioning: `version` is bumped on any layout change; loaders reject
// versions they do not know (no silent forward compat). New op kinds or
// section kinds append enum values, never renumber.
//
// The loader treats the file as untrusted input: every structural field is
// range-checked before use, every plan stream is validated entry by entry
// (bounds, sign, shift range, recomputed overflow gains), and residual
// segment counts are proven consistent by the exact-consumption program
// builder. Any violation throws ArtifactError with a typed code -- never
// UB, never an unchecked allocation driven by a hostile length.

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "inference/network_program.hpp"
#include "inference/quantized_network.hpp"

namespace flightnn::serialize {

// --- Error taxonomy -------------------------------------------------------

enum class ArtifactErrorCode : int {
  kIo = 1,          // open/stat/map/read failure
  kTruncated,       // file shorter than its structures claim
  kBadMagic,        // not an artifact
  kBadVersion,      // artifact from an unknown format revision
  kBadHeader,       // header field out of range / inconsistent
  kBadChecksum,     // payload checksum mismatch
  kBadSection,      // section table entry out of range / misaligned
  kBadProgram,      // op records or plan streams fail validation
};

const char* artifact_error_name(ArtifactErrorCode code);

class ArtifactError : public std::runtime_error {
 public:
  ArtifactError(ArtifactErrorCode code, const std::string& message)
      : std::runtime_error(std::string(artifact_error_name(code)) + ": " +
                           message),
        code_(code) {}
  [[nodiscard]] ArtifactErrorCode code() const { return code_; }

 private:
  ArtifactErrorCode code_;
};

// --- On-disk structures (POD, fixed layout) -------------------------------

inline constexpr char kArtifactMagic[8] = {'F', 'L', 'N', 'A',
                                           'R', 'T', '0', '1'};
inline constexpr std::uint32_t kArtifactVersion = 1;
inline constexpr std::size_t kArtifactAlignment = 64;

struct ArtifactHeader {
  char magic[8] = {};
  std::uint32_t version = 0;
  std::uint32_t header_bytes = 0;  // sizeof(ArtifactHeader)
  std::uint64_t file_bytes = 0;    // total artifact size
  std::uint64_t section_table_offset = 0;
  std::uint32_t section_count = 0;
  std::uint32_t op_count = 0;
  // artifact_checksum64 over [header_bytes, file_bytes) -- everything
  // after the header, section table and padding included.
  std::uint64_t payload_checksum = 0;
  std::int64_t input_c = 0;
  std::int64_t input_h = 0;
  std::int64_t input_w = 0;
  std::uint8_t reserved[56] = {};
};
static_assert(sizeof(ArtifactHeader) == 128, "artifact header layout drift");

// Serialization-stable section kinds (append only, never renumber).
enum class SectionKind : std::uint32_t {
  kProgram = 1,  // op_count x OpRecord
  kPlanElement = 2,
  kPlanChannel = 3,
  kPlanKy = 4,
  kPlanKx = 5,
  kPlanShift = 6,
  kPlanSign = 7,
  kPlanFilterBegin = 8,
  kPlanFilterGain = 9,
  kBias = 10,         // float[out_channels]
  kWeights = 11,      // float fallback layers, row-major
  kAffineScale = 12,  // float[channels]
  kAffineBias = 13,   // float[channels]
};

struct SectionDesc {
  std::uint32_t kind = 0;      // SectionKind
  std::uint32_t op_index = 0;  // owning op; 0xffffffff for kProgram
  std::uint64_t offset = 0;    // absolute, kArtifactAlignment-aligned
  std::uint64_t bytes = 0;     // payload bytes (padding not included)
};
static_assert(sizeof(SectionDesc) == 24, "section descriptor layout drift");

// Index of an op's section per role; kAbsentSection = role not present.
inline constexpr std::uint32_t kAbsentSection = 0xffffffffU;

// Section-reference roles inside OpRecord::sec, in serialization order.
enum OpSectionRole : int {
  kRoleElement = 0,
  kRoleChannel,
  kRoleKy,
  kRoleKx,
  kRoleShift,
  kRoleSign,
  kRoleFilterBegin,
  kRoleFilterGain,
  kRoleBias,
  kRoleWeights,
  kRoleAffineScale,
  kRoleAffineBias,
  kOpSectionRoles,
};

struct OpRecord {
  std::uint32_t kind = 0;  // inference::ProgramOpKind
  std::int32_t bits = 0;
  std::int32_t act_bits = 0;
  float slope = 0.0F;
  std::int64_t out_channels = 0;
  std::int64_t in_channels = 0;
  std::int64_t kernel = 0;
  std::int64_t window = 0;
  std::int64_t stride = 0;
  std::int64_t padding = 0;
  std::int64_t term_count = 0;
  std::int64_t main_ops = 0;
  std::int64_t shortcut_ops = 0;
  std::int64_t post_ops = 0;
  std::int32_t k_max = 0;
  std::int32_t e_min = 0;
  std::int32_t e_max = 0;
  std::int32_t flush_to_zero = 0;
  std::int32_t has_shortcut = 0;
  std::uint32_t weight_rank = 0;
  std::int64_t weight_dims[4] = {};
  std::uint32_t sec[kOpSectionRoles] = {};  // section indices per role
  std::uint8_t reserved[24] = {};
};
static_assert(sizeof(OpRecord) == 224, "op record layout drift");

// --- Compiler -------------------------------------------------------------

// Lay the program out into one artifact blob. Deterministic: the same
// program produces the same bytes. Shift ops store their compiled plans
// (never float weights); float fallback ops store their weight tensors.
std::vector<std::uint8_t> build_artifact(
    const inference::NetworkProgram& program);

// build_artifact + atomic-ish write to `path` (throws ArtifactError{kIo}).
void save_artifact(const inference::NetworkProgram& program,
                   const std::string& path);

// Recompute the payload checksum of an in-memory artifact and patch the
// header. Test hook: the corruption-matrix tests mutate structured fields
// and then re-seal the blob so the loader exercises the *structural*
// validation behind the checksum gate, not just the checksum itself.
void rewrite_artifact_checksum(std::vector<std::uint8_t>& blob);

// The artifact's payload checksum primitive (exposed for tests): FNV-1a-64
// computed over eight interleaved byte lanes, folded with the length. The
// striping keeps the multiply chains pipelined so checksumming does not
// dominate cold start; the result is as deterministic and portable as the
// plain byte-serial form.
std::uint64_t artifact_checksum64(const std::uint8_t* data, std::size_t size);

// --- Loader ---------------------------------------------------------------

// Validate `data` as an artifact and reconstitute its NetworkProgram. Plan
// streams become PlanArray *views* into `data` -- zero copies; the caller
// guarantees `data` outlives the returned program (ArtifactModel does).
// Bias/affine/weight tensors are small and are copied out. Throws
// ArtifactError on any malformation.
inference::NetworkProgram parse_artifact(const std::uint8_t* data,
                                         std::size_t size);

// A deployable model bound to its backing artifact bytes. Owns the mapping
// (mmap on POSIX, aligned heap elsewhere or via load_buffer) and the
// executable network whose plans view straight into it. Move-only.
class ArtifactModel {
 public:
  // mmap `path` read-only and fix up. O(#sections) work after the map.
  static ArtifactModel load(const std::string& path);

  // Copy `size` bytes into a 64-byte-aligned heap block and fix up. For
  // callers that already hold the blob (tests, fuzzers, network receive).
  static ArtifactModel load_buffer(const std::uint8_t* data, std::size_t size);

  ArtifactModel(ArtifactModel&&) noexcept = default;
  ArtifactModel& operator=(ArtifactModel&&) noexcept = default;
  ArtifactModel(const ArtifactModel&) = delete;
  ArtifactModel& operator=(const ArtifactModel&) = delete;
  ~ArtifactModel() = default;

  [[nodiscard]] const inference::QuantizedNetwork& network() const {
    return network_;
  }
  [[nodiscard]] std::int64_t input_c() const { return input_c_; }
  [[nodiscard]] std::int64_t input_h() const { return input_h_; }
  [[nodiscard]] std::int64_t input_w() const { return input_w_; }

  // Backing bytes (tests assert the plans' zero-copy views land in here).
  [[nodiscard]] const std::uint8_t* data() const { return mapping_->data(); }
  [[nodiscard]] std::size_t size() const { return mapping_->size(); }

 private:
  // Read-only byte mapping; unmaps / frees on destruction.
  class Mapping {
   public:
    Mapping(const std::uint8_t* data, std::size_t size, bool mmapped)
        : data_(data), size_(size), mmapped_(mmapped) {}
    Mapping(const Mapping&) = delete;
    Mapping& operator=(const Mapping&) = delete;
    ~Mapping();
    [[nodiscard]] const std::uint8_t* data() const { return data_; }
    [[nodiscard]] std::size_t size() const { return size_; }

   private:
    const std::uint8_t* data_;
    std::size_t size_;
    bool mmapped_;
  };

  ArtifactModel(std::unique_ptr<Mapping> mapping,
                inference::NetworkProgram program);

  std::unique_ptr<Mapping> mapping_;
  inference::QuantizedNetwork network_;
  std::int64_t input_c_ = 0;
  std::int64_t input_h_ = 0;
  std::int64_t input_w_ = 0;
};

}  // namespace flightnn::serialize
