#include "optim/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace flightnn::optim {

void Optimizer::zero_grad() {
  for (auto* p : params_) p->zero_grad();
}

Sgd::Sgd(std::vector<nn::Parameter*> params, float learning_rate,
         float momentum, float weight_decay)
    : Optimizer(std::move(params)),
      learning_rate_(learning_rate),
      momentum_(momentum),
      weight_decay_(weight_decay) {}

void Sgd::step() {
  for (auto* p : params_) {
    if (!p->trainable) continue;
    tensor::Tensor grad = p->grad;
    if (weight_decay_ != 0.0F && p->decay) {
      grad.add_scaled(p->value, weight_decay_);
    }
    if (momentum_ != 0.0F) {
      auto [it, inserted] = velocity_.try_emplace(p, p->value.shape());
      tensor::Tensor& vel = it->second;
      (void)inserted;
      vel *= momentum_;
      vel += grad;
      p->value.add_scaled(vel, -learning_rate_);
    } else {
      p->value.add_scaled(grad, -learning_rate_);
    }
  }
}

Adam::Adam(std::vector<nn::Parameter*> params, float learning_rate, float beta1,
           float beta2, float epsilon, float weight_decay)
    : Optimizer(std::move(params)),
      learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {}

void Adam::step() {
  ++step_count_;
  const float bias1 = 1.0F - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0F - std::pow(beta2_, static_cast<float>(step_count_));
  for (auto* p : params_) {
    if (!p->trainable) continue;
    auto [it, inserted] = moments_.try_emplace(
        p, Moments{tensor::Tensor(p->value.shape()), tensor::Tensor(p->value.shape())});
    (void)inserted;
    tensor::Tensor& m = it->second.m;
    tensor::Tensor& v = it->second.v;
    const std::int64_t n = p->value.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      float g = p->grad[i];
      if (weight_decay_ != 0.0F && p->decay) g += weight_decay_ * p->value[i];
      m[i] = beta1_ * m[i] + (1.0F - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0F - beta2_) * g * g;
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      p->value[i] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

ScalarAdam::ScalarAdam(std::size_t size, float beta1, float beta2, float epsilon)
    : beta1_(beta1), beta2_(beta2), epsilon_(epsilon), m_(size, 0.0F), v_(size, 0.0F) {}

void ScalarAdam::step(std::vector<float>& values, const std::vector<float>& grads,
                      float lr) {
  if (values.size() != m_.size() || grads.size() != m_.size()) {
    throw std::invalid_argument("ScalarAdam::step: size mismatch");
  }
  ++step_count_;
  const float bias1 = 1.0F - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0F - std::pow(beta2_, static_cast<float>(step_count_));
  for (std::size_t i = 0; i < values.size(); ++i) {
    const float g = grads[i];
    m_[i] = beta1_ * m_[i] + (1.0F - beta1_) * g;
    v_[i] = beta2_ * v_[i] + (1.0F - beta2_) * g * g;
    values[i] -= lr * (m_[i] / bias1) / (std::sqrt(v_[i] / bias2) + epsilon_);
  }
}

}  // namespace flightnn::optim
