#pragma once

// Optimizers over the Parameter set of a model. Adam is the paper's choice
// (Sec. 5.1); SGD with momentum is provided for ablations. State is keyed by
// parameter identity, so the optimizer must outlive nothing and the layers
// must outlive the optimizer.

#include <unordered_map>
#include <vector>

#include "nn/parameter.hpp"

namespace flightnn::optim {

class Optimizer {
 public:
  explicit Optimizer(std::vector<nn::Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  void zero_grad();
  virtual void step() = 0;

  [[nodiscard]] const std::vector<nn::Parameter*>& parameters() const {
    return params_;
  }

 protected:
  std::vector<nn::Parameter*> params_;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<nn::Parameter*> params, float learning_rate,
      float momentum = 0.0F, float weight_decay = 0.0F);

  void step() override;

  void set_learning_rate(float lr) { learning_rate_ = lr; }
  [[nodiscard]] float learning_rate() const { return learning_rate_; }

 private:
  float learning_rate_, momentum_, weight_decay_;
  std::unordered_map<nn::Parameter*, tensor::Tensor> velocity_;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<nn::Parameter*> params, float learning_rate = 1e-3F,
       float beta1 = 0.9F, float beta2 = 0.999F, float epsilon = 1e-8F,
       float weight_decay = 0.0F);

  void step() override;

  void set_learning_rate(float lr) { learning_rate_ = lr; }
  [[nodiscard]] float learning_rate() const { return learning_rate_; }
  [[nodiscard]] std::int64_t step_count() const { return step_count_; }

 private:
  float learning_rate_, beta1_, beta2_, epsilon_, weight_decay_;
  std::int64_t step_count_ = 0;
  struct Moments {
    tensor::Tensor m;
    tensor::Tensor v;
  };
  std::unordered_map<nn::Parameter*, Moments> moments_;
};

// Scalar Adam state, used by the FLightNN transform for its threshold
// vector without pulling the transform into the Parameter machinery.
class ScalarAdam {
 public:
  explicit ScalarAdam(std::size_t size, float beta1 = 0.9F, float beta2 = 0.999F,
                      float epsilon = 1e-8F);

  // Apply one Adam update to `values` given `grads`, with learning rate lr.
  void step(std::vector<float>& values, const std::vector<float>& grads, float lr);

 private:
  float beta1_, beta2_, epsilon_;
  std::int64_t step_count_ = 0;
  std::vector<float> m_, v_;
};

}  // namespace flightnn::optim
