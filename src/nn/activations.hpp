#pragma once

// Pointwise layers: LeakyReLU (the paper's activation, Sec. 5.1) and the
// 8-bit activation fake-quantizer applied in every quantized model. The
// quantizer uses a straight-through gradient with saturation clipping.
//
// Both layers cache a one-byte-per-element decision mask for backward
// (sign for LeakyReLU, saturation for the quantizer) instead of a deep
// copy of the input: the backward pass only consumes that predicate, and
// the mask is a quarter of the memory traffic of a float copy.

#include <cstdint>
#include <vector>

#include "nn/layer.hpp"

namespace flightnn::nn {

class LeakyReLU final : public Layer {
 public:
  explicit LeakyReLU(float negative_slope = 0.01F)
      : negative_slope_(negative_slope) {}

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "leaky_relu"; }

  [[nodiscard]] float negative_slope() const { return negative_slope_; }

 private:
  float negative_slope_;
  std::vector<std::uint8_t> positive_mask_;  // input > 0, per element
  tensor::Shape cached_shape_;
};

// Symmetric fixed-point fake-quantization of activations with a dynamic
// per-tensor power-of-two scale. Backward is straight-through inside the
// representable range and zero outside it (saturated values carry no
// gradient).
class ActivationQuant final : public Layer {
 public:
  explicit ActivationQuant(int bits = 8);

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "act_quant"; }

  [[nodiscard]] int bits() const { return bits_; }
  // Scale used by the most recent forward (for export to the integer
  // inference engine).
  [[nodiscard]] float last_scale() const { return last_scale_; }

 private:
  int bits_;
  float last_scale_ = 1.0F;
  std::vector<std::uint8_t> saturated_mask_;  // |input| > q_max*scale
  tensor::Shape cached_shape_;
};

}  // namespace flightnn::nn
