#pragma once

// Batch normalization over NCHW activations (per-channel statistics), as
// used after every convolution in the paper's networks (Sec. 5.1).

#include "nn/layer.hpp"

namespace flightnn::nn {

class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1F,
                       float epsilon = 1e-5F);

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::string name() const override { return "batchnorm2d"; }

  [[nodiscard]] Parameter& gamma() { return gamma_; }
  [[nodiscard]] Parameter& beta() { return beta_; }
  [[nodiscard]] const tensor::Tensor& running_mean() const { return running_mean_; }
  [[nodiscard]] const tensor::Tensor& running_var() const { return running_var_; }

 private:
  std::int64_t channels_;
  float momentum_, epsilon_;
  Parameter gamma_;  // scale, init 1
  Parameter beta_;   // shift, init 0
  tensor::Tensor running_mean_;
  tensor::Tensor running_var_;

  // Cached batch statistics and normalized input for backward (the input
  // itself is not needed again: backward runs entirely on x_hat).
  tensor::Tensor normalized_cache_;
  std::vector<float> batch_mean_, batch_inv_std_;
};

}  // namespace flightnn::nn
