#pragma once

// Fully-connected layer over [N, features] inputs, with the same optional
// WeightTransform hook as Conv2d (axis 0 of the weight = output unit, which
// plays the role of a "filter" for per-filter quantization).

#include "nn/layer.hpp"
#include "support/rng.hpp"
#include "tensor/ops.hpp"

namespace flightnn::nn {

class Linear final : public Layer {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, bool with_bias,
         support::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;

  // The original naive kernels, kept as differential oracles for the GEMM
  // fast path (same pattern as ShiftPlan::run_reference).
  tensor::Tensor forward_reference(const tensor::Tensor& input, bool training);
  tensor::Tensor backward_reference(const tensor::Tensor& grad_output);

  std::vector<Parameter*> parameters() override;
  quant::WeightTransform* weight_transform() override { return transform_.get(); }
  Parameter* quantized_parameter() override { return &weight_; }
  [[nodiscard]] std::string name() const override { return "linear"; }

  void set_transform(quant::WeightTransformPtr transform) {
    transform_ = std::move(transform);
  }

  [[nodiscard]] Parameter& weight() { return weight_; }
  [[nodiscard]] Parameter& bias() { return bias_; }
  [[nodiscard]] std::int64_t in_features() const { return in_features_; }
  [[nodiscard]] std::int64_t out_features() const { return out_features_; }

  [[nodiscard]] tensor::Tensor quantized_weight();

 private:
  void prepare_forward(const tensor::Tensor& input, bool training);
  void check_backward(const tensor::Tensor& grad_output) const;
  void finish_backward(const tensor::Tensor& grad_output,
                       const tensor::Tensor& grad_wq);

  tensor::Tensor forward_gemm(const tensor::Tensor& input);
  tensor::Tensor forward_naive(const tensor::Tensor& input);
  tensor::Tensor backward_gemm(const tensor::Tensor& grad_output);
  tensor::Tensor backward_naive(const tensor::Tensor& grad_output);

  std::int64_t in_features_, out_features_;
  bool has_bias_;
  Parameter weight_;  // [out, in]
  Parameter bias_;    // [out]
  quant::WeightTransformPtr transform_;

  tensor::Tensor input_cache_;
  tensor::Tensor effective_weight_;
};

}  // namespace flightnn::nn
