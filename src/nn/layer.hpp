#pragma once

// Layer: the unit of forward/backward computation. The library uses explicit
// layer-level backprop (each layer caches what it needs during forward)
// rather than a general autograd tape -- Algorithm 1 in the paper only
// requires forward, backward and a quantize-before-forward hook, all of
// which this interface provides.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/parameter.hpp"
#include "quant/transform.hpp"
#include "tensor/tensor.hpp"

namespace flightnn::nn {

// Which implementation the training-path kernels (Conv2d/Linear forward and
// backward) run on. kGemm is the blocked, thread-parallel fast path built on
// core/gemm; kReference is the original naive nested-loop code, kept alive
// as the differential oracle (same pattern as ShiftPlan::run_reference).
// Process-wide because the trainer and benches flip whole networks at once.
enum class TrainKernelPath { kGemm, kReference };

// Select / query the active training kernel path. Not safe to flip while a
// forward or backward pass is in flight.
void set_train_kernel_path(TrainKernelPath path);
[[nodiscard]] TrainKernelPath train_kernel_path();

class Layer {
 public:
  virtual ~Layer() = default;

  // Compute the layer output. `training` selects batch-norm statistics and
  // enables caching for backward.
  virtual tensor::Tensor forward(const tensor::Tensor& input, bool training) = 0;

  // Propagate dL/d(output) to dL/d(input), accumulating parameter gradients.
  // Must be called after a forward with training == true.
  virtual tensor::Tensor backward(const tensor::Tensor& grad_output) = 0;

  // Trainable parameters (empty for stateless layers).
  virtual std::vector<Parameter*> parameters() { return {}; }

  // The weight transform installed on this layer, if it is a quantizable
  // layer that has one; nullptr otherwise.
  virtual quant::WeightTransform* weight_transform() { return nullptr; }

  // The parameter the weight transform applies to (the layer's main weight),
  // or nullptr for layers without quantizable weights.
  virtual Parameter* quantized_parameter() { return nullptr; }

  [[nodiscard]] virtual std::string name() const = 0;

  // Invoke `visitor` on each direct child layer (containers only).
  virtual void for_each_child(const std::function<void(Layer&)>& visitor) {
    (void)visitor;
  }
};

using LayerPtr = std::unique_ptr<Layer>;

// Depth-first visit of `root` and every transitive child.
void visit_layers(Layer& root, const std::function<void(Layer&)>& visitor);

// Collect all weight transforms installed in a layer tree.
std::vector<quant::WeightTransform*> collect_transforms(Layer& root);

}  // namespace flightnn::nn
