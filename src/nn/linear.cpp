#include "nn/linear.hpp"

#include <cmath>

#include "core/gemm.hpp"
#include "runtime/thread_pool.hpp"
#include "support/check.hpp"

namespace flightnn::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features,
               bool with_bias, support::Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(with_bias),
      weight_(tensor::Tensor::randn(
                  tensor::Shape{out_features, in_features}, rng, 0.0F,
                  std::sqrt(2.0F / static_cast<float>(in_features))),
              "linear.weight"),
      bias_(tensor::Tensor(tensor::Shape{out_features}), "linear.bias",
            /*apply_decay=*/false) {
  FLIGHTNN_CHECK(in_features > 0 && out_features > 0,
                 "Linear: invalid dimensions in=", in_features,
                 " out=", out_features);
}

tensor::Tensor Linear::quantized_weight() {
  return transform_ ? transform_->forward(weight_.value) : weight_.value;
}

void Linear::prepare_forward(const tensor::Tensor& input, bool training) {
  const auto& s = input.shape();
  FLIGHTNN_CHECK(s.rank() == 2 && s[1] == in_features_,
                 "Linear::forward: expected [N, ", in_features_,
                 "] input, got ", s.to_string());
  effective_weight_ = quantized_weight();
  if (training) input_cache_ = input;
}

tensor::Tensor Linear::forward(const tensor::Tensor& input, bool training) {
  prepare_forward(input, training);
  return train_kernel_path() == TrainKernelPath::kGemm ? forward_gemm(input)
                                                       : forward_naive(input);
}

tensor::Tensor Linear::forward_reference(const tensor::Tensor& input,
                                         bool training) {
  prepare_forward(input, training);
  return forward_naive(input);
}

tensor::Tensor Linear::forward_gemm(const tensor::Tensor& input) {
  // y = x * W^T (+ b): one blocked GEMM over the whole batch. The GEMM
  // partitions C into private tiles, so results stay bit-identical to serial
  // execution at any thread count.
  const std::int64_t batch = input.shape()[0];
  tensor::Tensor output(tensor::Shape{batch, out_features_});
  core::gemm_nt(input.data(), effective_weight_.data(), output.data(), batch,
                in_features_, out_features_);
  if (has_bias_) {
    for (std::int64_t n = 0; n < batch; ++n) {
      float* out_row = output.data() + n * out_features_;
      for (std::int64_t o = 0; o < out_features_; ++o) {
        out_row[o] += bias_.value[o];
      }
    }
  }
  return output;
}

tensor::Tensor Linear::forward_naive(const tensor::Tensor& input) {
  // y = x * W^T (+ b). Range kernel over batch rows: every output element is
  // computed entirely by one thread with the same inner-loop order as
  // matmul_nt (double accumulation over in_features), so the result is
  // bit-identical at any thread count.
  const std::int64_t batch = input.shape()[0];
  tensor::Tensor output(tensor::Shape{batch, out_features_});
  const float* w = effective_weight_.data();
  const runtime::CostHint row_cost{
      static_cast<double>(out_features_ * in_features_) * 2.0};
  runtime::parallel_for(0, batch, 1, row_cost, [&](std::int64_t n_begin,
                                                   std::int64_t n_end) {
    for (std::int64_t n = n_begin; n < n_end; ++n) {
      const float* x_row = input.data() + n * in_features_;
      float* out_row = output.data() + n * out_features_;
      for (std::int64_t o = 0; o < out_features_; ++o) {
        const float* w_row = w + o * in_features_;
        double acc = 0.0;
        for (std::int64_t e = 0; e < in_features_; ++e) {
          acc += static_cast<double>(x_row[e]) * w_row[e];
        }
        float value = static_cast<float>(acc);
        if (has_bias_) value += bias_.value[o];
        out_row[o] = value;
      }
    }
  });
  return output;
}

void Linear::check_backward(const tensor::Tensor& grad_output) const {
  FLIGHTNN_CHECK(!input_cache_.empty(),
                 "Linear::backward before forward(training=true)");
  FLIGHTNN_CHECK_SHAPE(grad_output.shape(),
                       (tensor::Shape{input_cache_.shape()[0], out_features_}),
                       "Linear::backward");
}

void Linear::finish_backward(const tensor::Tensor& grad_output,
                             const tensor::Tensor& grad_wq) {
  if (has_bias_) {
    const std::int64_t batch = grad_output.shape()[0];
    for (std::int64_t n = 0; n < batch; ++n) {
      const float* row = grad_output.data() + n * out_features_;
      for (std::int64_t o = 0; o < out_features_; ++o) bias_.grad[o] += row[o];
    }
  }
  if (transform_) {
    transform_->backward(weight_.value, grad_wq, weight_.grad);
  } else {
    weight_.grad += grad_wq;
  }
}

tensor::Tensor Linear::backward(const tensor::Tensor& grad_output) {
  check_backward(grad_output);
  return train_kernel_path() == TrainKernelPath::kGemm
             ? backward_gemm(grad_output)
             : backward_naive(grad_output);
}

tensor::Tensor Linear::backward_reference(const tensor::Tensor& grad_output) {
  check_backward(grad_output);
  return backward_naive(grad_output);
}

tensor::Tensor Linear::backward_gemm(const tensor::Tensor& grad_output) {
  // dW = dY^T * X; dX = dY * W; db = column sums of dY. Both products run on
  // the blocked GEMM core (deterministic tiling, see core/gemm.hpp).
  const std::int64_t batch = input_cache_.shape()[0];
  tensor::Tensor grad_wq(weight_.value.shape());
  tensor::Tensor grad_input(input_cache_.shape());
  core::gemm_tn(grad_output.data(), input_cache_.data(), grad_wq.data(),
                out_features_, batch, in_features_);
  core::gemm(grad_output.data(), effective_weight_.data(), grad_input.data(),
             batch, out_features_, in_features_);
  finish_backward(grad_output, grad_wq);
  return grad_input;
}

tensor::Tensor Linear::backward_naive(const tensor::Tensor& grad_output) {
  tensor::Tensor grad_wq = tensor::matmul_tn(grad_output, input_cache_);
  tensor::Tensor grad_input = tensor::matmul(grad_output, effective_weight_);
  finish_backward(grad_output, grad_wq);
  return grad_input;
}

std::vector<Parameter*> Linear::parameters() {
  std::vector<Parameter*> params{&weight_};
  if (has_bias_) params.push_back(&bias_);
  return params;
}

}  // namespace flightnn::nn
